// Churn walkthrough: the paper's dynamic topology (an increasing stage of
// continuous joins followed by a decreasing stage of departures), with
// rank queries issued at every snapshot to show that answers stay exact
// while the overlay reshapes itself and tuples migrate between peers.
//
//   $ ./build/examples/overlay_churn

#include <cstdio>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/midas/midas.h"
#include "queries/topk_driver.h"
#include "store/local_algos.h"

using namespace ripple;

int main() {
  Rng rng(4242);
  const TupleVec tuples = data::MakeClusteredZipf(20000, 4, 1000, 0.1, 0.05,
                                                  &rng);

  MidasOptions options;
  options.dims = 4;
  options.seed = 31;
  options.split_rule = MidasSplitRule::kDataMedian;
  MidasOverlay overlay(options);
  for (const Tuple& t : tuples) overlay.InsertTuple(t);

  LinearScorer scorer({-0.4, -0.3, -0.2, -0.1});
  TopKQuery query{&scorer, 10};
  const TupleVec oracle = SelectTopK(
      tuples, [&](const Point& p) { return scorer.Score(p); }, query.k);

  bool all_exact = true;
  auto check = [&](const char* stage) {
    Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
    const auto result = SeededTopK(overlay, engine,
                                   {.initiator = overlay.RandomPeer(&rng),
                                    .query = query});
    bool exact = result.answer.size() == oracle.size();
    for (size_t i = 0; exact && i < oracle.size(); ++i) {
      exact = result.answer[i].id == oracle[i].id;
    }
    const Status health = overlay.Validate();
    all_exact = all_exact && exact && health.ok();
    std::printf("%-12s peers=%6zu depth=%2d tuples=%zu  top-10 %s  "
                "overlay %s  (%llu hops, %llu peers)\n",
                stage, overlay.NumPeers(), overlay.MaxDepth(),
                overlay.TotalTuples(), exact ? "EXACT" : "WRONG!",
                health.ok() ? "consistent" : health.ToString().c_str(),
                static_cast<unsigned long long>(result.stats.latency_hops),
                static_cast<unsigned long long>(result.stats.peers_visited));
  };

  // Increasing stage: 1 -> 4096 peers.
  std::printf("-- increasing stage --\n");
  for (size_t target : {64u, 256u, 1024u, 4096u}) {
    while (overlay.NumPeers() < target) overlay.Join();
    check("grown");
  }

  // Decreasing stage: 4096 -> 64 peers.
  std::printf("-- decreasing stage --\n");
  Rng churn(77);
  for (size_t target : {1024u, 256u, 64u}) {
    while (overlay.NumPeers() > target) {
      const Status s = overlay.LeaveRandom(&churn);
      if (!s.ok()) {
        std::printf("leave failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    check("shrunk");
  }
  if (all_exact) {
    std::printf("every snapshot answered exactly; zones, links and data "
                "survived the full churn cycle.\n");
    return 0;
  }
  std::printf("FAILURE: some snapshot answered incorrectly.\n");
  return 1;
}
