// Quickstart: build a MIDAS overlay, store tuples, and run the three rank
// queries of the paper — top-k, skyline, k-diversification — through the
// RIPPLE engine at different ripple parameters.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/midas/midas.h"
#include "queries/diversify_driver.h"
#include "queries/skyline_driver.h"
#include "queries/topk_driver.h"

using namespace ripple;

int main() {
  // 1. A 256-peer MIDAS overlay over [0,1]^3 with load-balancing splits.
  MidasOptions options;
  options.dims = 3;
  options.seed = 42;
  options.split_rule = MidasSplitRule::kDataMedian;
  MidasOverlay overlay(options);

  // 2. Store 5,000 tuples (smaller coordinates are better), then grow the
  //    network; zones split at data medians as peers join.
  Rng rng(7);
  const TupleVec tuples = data::MakeUniform(5000, 3, &rng);
  for (const Tuple& t : tuples) overlay.InsertTuple(t);
  while (overlay.NumPeers() < 256) overlay.Join();
  std::printf("overlay: %zu peers, depth %d, %zu tuples\n",
              overlay.NumPeers(), overlay.MaxDepth(), overlay.TotalTuples());

  // 3. Top-k: the 5 best tuples under a weighted preference.
  LinearScorer scorer({-0.5, -0.3, -0.2});
  TopKQuery topk{&scorer, 5};
  Engine<MidasOverlay, TopKPolicy> topk_engine(&overlay, TopKPolicy{});
  const PeerId me = overlay.RandomPeer(&rng);
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Slow()}) {
    const auto result = SeededTopK(overlay, topk_engine,
                                   {.initiator = me,
                                    .query = topk,
                                    .ripple = r});
    std::printf("\ntop-5 (%s): %s\n", r.ToString().c_str(),
                result.stats.ToString().c_str());
    for (const Tuple& t : result.answer) {
      std::printf("  %s  score=%.4f\n", t.ToString().c_str(),
                  scorer.Score(t.key));
    }
  }

  // 4. Skyline: all Pareto-optimal tuples.
  Engine<MidasOverlay, SkylinePolicy> sky_engine(&overlay, SkylinePolicy{});
  const auto sky = SeededSkyline(overlay, sky_engine, {.initiator = me});
  std::printf("\nskyline: %zu tuples, %s\n", sky.answer.size(),
              sky.stats.ToString().c_str());

  // 5. k-diversification: 5 tuples balancing closeness to a query point
  //    against mutual distance (lambda = 0.5).
  DiversifyObjective objective;
  objective.query = Point{0.5, 0.5, 0.5};
  objective.lambda = 0.5;
  objective.norm = Norm::kL1;
  RippleDivService<MidasOverlay> service(
      &overlay, {.initiator = me, .ripple = RippleParam::Fast()});
  DiversifyOptions div_options;
  div_options.k = 5;
  div_options.service_init = true;
  const DiversifyResult div = Diversify(&service, objective, {}, div_options);
  std::printf("\n5-diversified set (objective %.4f, %d improve rounds, %s)\n",
              div.objective, div.improve_rounds, div.stats.ToString().c_str());
  for (const Tuple& t : div.set) std::printf("  %s\n", t.ToString().c_str());
  return 0;
}
