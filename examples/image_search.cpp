// Diversified image search: the paper's k-diversification scenario. Images
// are represented by five-bucket edge histograms (MPEG-7 style) under the
// L1 metric; given a query image, we want k results that are close to it
// yet mutually diverse. The lambda knob moves between pure relevance
// (lambda = 1) and pure diversity (lambda = 0).
//
//   $ ./build/examples/image_search

#include <cstdio>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/midas/midas.h"
#include "queries/diversify_driver.h"

using namespace ripple;

int main() {
  Rng rng(99);
  const TupleVec images = data::MakeMirflickrLike(50000, 5, &rng);

  MidasOptions options;
  options.dims = 5;
  options.seed = 23;
  options.split_rule = MidasSplitRule::kDataMedian;
  MidasOverlay overlay(options);
  for (const Tuple& t : images) overlay.InsertTuple(t);
  while (overlay.NumPeers() < 1024) overlay.Join();
  std::printf("image collection: %zu histograms over %zu peers\n",
              overlay.TotalTuples(), overlay.NumPeers());

  const Tuple& query_image = images[123];
  std::printf("query image %s\n", query_image.ToString().c_str());

  const PeerId me = overlay.RandomPeer(&rng);
  for (double lambda : {1.0, 0.5, 0.0}) {
    DiversifyObjective objective;
    objective.query = query_image.key;
    objective.lambda = lambda;
    objective.norm = Norm::kL1;
    RippleDivService<MidasOverlay> service(
        &overlay, {.initiator = me, .ripple = RippleParam::Fast()});
    DiversifyOptions div_options;
    div_options.k = 6;
    div_options.service_init = true;
    const DiversifyResult result =
        Diversify(&service, objective, {}, div_options);
    std::printf("\nlambda = %.1f  (objective %.4f, %llu hops, %llu peers)\n",
                lambda, result.objective,
                static_cast<unsigned long long>(result.stats.latency_hops),
                static_cast<unsigned long long>(result.stats.peers_visited));
    double min_pair = 2.0, max_rel = 0.0;
    for (size_t i = 0; i < result.set.size(); ++i) {
      max_rel = std::max(max_rel,
                         L1Distance(result.set[i].key, query_image.key));
      for (size_t j = i + 1; j < result.set.size(); ++j) {
        min_pair = std::min(
            min_pair, L1Distance(result.set[i].key, result.set[j].key));
      }
      std::printf("  %s  d(query)=%.3f\n", result.set[i].ToString().c_str(),
                  L1Distance(result.set[i].key, query_image.key));
    }
    std::printf("  -> worst relevance %.3f, closest pair %.3f\n", max_rel,
                min_pair);
  }
  std::printf("\nNote how lambda = 1 hugs the query image while lambda = 0 "
              "spreads the set out.\n");
  return 0;
}
