// NBA scouting: the paper's motivating top-k/skyline scenario. A league of
// 22,000 stat lines (points, rebounds, assists, steals, blocks, minutes —
// oriented so 0 is the best) is spread over a P2P network of scouts; we
// ask for the best all-around players under different preference weights
// and for the players who excel in some combination of stats (the
// skyline), comparing the cost of the ripple settings.
//
//   $ ./build/examples/nba_scouting

#include <cstdio>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/midas/midas.h"
#include "queries/skyline_driver.h"
#include "queries/topk_driver.h"

using namespace ripple;

namespace {

const char* kStatNames[6] = {"PTS", "REB", "AST", "STL", "BLK", "MIN"};

void PrintPlayer(const Tuple& t) {
  std::printf("  player #%-6llu", static_cast<unsigned long long>(t.id));
  for (int d = 0; d < 6; ++d) {
    // Keys store 1 - stat/ceiling; print "excellence" percentages.
    std::printf(" %s:%3.0f%%", kStatNames[d], 100.0 * (1.0 - t.key[d]));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Rng rng(2014);
  const TupleVec league = data::MakeNbaLike(22000, 6, &rng);

  MidasOptions options;
  options.dims = 6;
  options.seed = 17;
  options.split_rule = MidasSplitRule::kDataMedian;
  options.border_pattern_links = true;  // §5.2, pays off for the skyline
  MidasOverlay overlay(options);
  for (const Tuple& t : league) overlay.InsertTuple(t);
  while (overlay.NumPeers() < 2048) overlay.Join();
  std::printf("league of %zu stat lines over %zu scout peers (depth %d)\n",
              overlay.TotalTuples(), overlay.NumPeers(), overlay.MaxDepth());

  Engine<MidasOverlay, TopKPolicy> topk_engine(&overlay, TopKPolicy{});
  const PeerId scout = overlay.RandomPeer(&rng);

  struct Profile {
    const char* name;
    std::vector<double> weights;
  };
  const Profile profiles[] = {
      {"all-around", {-0.25, -0.2, -0.2, -0.1, -0.1, -0.15}},
      {"rim protector", {-0.05, -0.35, -0.05, -0.05, -0.45, -0.05}},
      {"playmaker", {-0.15, -0.05, -0.55, -0.15, -0.02, -0.08}},
  };
  for (const Profile& profile : profiles) {
    LinearScorer scorer(profile.weights);
    TopKQuery query{&scorer, 5};
    const auto fast = SeededTopK(overlay, topk_engine,
                                 {.initiator = scout, .query = query});
    const auto slow = SeededTopK(overlay, topk_engine,
                                 {.initiator = scout,
                                  .query = query,
                                  .ripple = RippleParam::Slow()});
    std::printf("\ntop-5 %s  [fast: %llu hops, %llu peers | slow: %llu "
                "hops, %llu peers]\n",
                profile.name,
                static_cast<unsigned long long>(fast.stats.latency_hops),
                static_cast<unsigned long long>(fast.stats.peers_visited),
                static_cast<unsigned long long>(slow.stats.latency_hops),
                static_cast<unsigned long long>(slow.stats.peers_visited));
    for (const Tuple& t : fast.answer) PrintPlayer(t);
  }

  Engine<MidasOverlay, SkylinePolicy> sky_engine(&overlay, SkylinePolicy{});
  const auto sky = SeededSkyline(overlay, sky_engine, {.initiator = scout});
  std::printf("\nskyline: %zu players excel in some stat combination "
              "(%llu hops, %llu peers visited)\n",
              sky.answer.size(),
              static_cast<unsigned long long>(sky.stats.latency_hops),
              static_cast<unsigned long long>(sky.stats.peers_visited));
  size_t shown = 0;
  for (const Tuple& t : sky.answer) {
    PrintPlayer(t);
    if (++shown == 8) {
      std::printf("  ... and %zu more\n", sky.answer.size() - shown);
      break;
    }
  }
  return 0;
}
