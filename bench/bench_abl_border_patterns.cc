// Ablation A1: the MIDAS border-pattern structural optimization (§5.2),
// on vs off, for skyline queries. The optimization steers links (via
// back-link reassignment on splits) towards peers at the lower domain
// borders — the ones that can host skyline tuples — so the optimized
// overlay should reach fewer irrelevant peers.

#include "bench_common.h"
#include "queries/skyline.h"
#include "ripple/engine.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Ablation A1",
              "skyline with/without the border-pattern link optimization "
              "(NBA-like, d=6)");
  Rng data_rng(config.seed * 7919 + 17);
  const TupleVec nba = data::MakeNbaLike(22000, 6, &data_rng);
  const size_t queries = std::max<size_t>(1, config.queries / 4);

  const char* variants[4] = {"fast/plain", "fast/patterns", "slow/plain",
                             "slow/patterns"};
  std::vector<std::string> xs;
  std::vector<Series> latency(4), congestion(4);
  for (int i = 0; i < 4; ++i) {
    latency[i].name = variants[i];
    congestion[i].name = variants[i];
  }
  for (size_t n : config.NetworkSizes()) {
    StatsAccumulator acc[4];
    for (size_t net = 0; net < config.nets; ++net) {
      const uint64_t seed = config.seed + 1000 * net + n;
      const MidasOverlay plain = BuildMidas(n, 6, seed, nba, false);
      const MidasOverlay optimized = BuildMidas(n, 6, seed, nba, true);
      Engine<MidasOverlay, SkylinePolicy> e_plain(&plain, SkylinePolicy{});
      Engine<MidasOverlay, SkylinePolicy> e_opt(&optimized, SkylinePolicy{});
      Rng rng(seed ^ 0x1234);
      for (size_t q = 0; q < queries; ++q) {
        const PeerId p1 = plain.RandomPeer(&rng);
        const PeerId p2 = optimized.RandomPeer(&rng);
        acc[0].Add(e_plain.Run({.initiator = p1}).stats);
        acc[1].Add(e_opt.Run({.initiator = p2}).stats);
        acc[2].Add(e_plain.Run({.initiator = p1,
                                .ripple = RippleParam::Slow()})
                       .stats);
        acc[3].Add(e_opt.Run({.initiator = p2,
                              .ripple = RippleParam::Slow()})
                       .stats);
      }
    }
    xs.push_back(std::to_string(n));
    for (int i = 0; i < 4; ++i) {
      latency[i].values.push_back(acc[i].MeanLatency());
      congestion[i].values.push_back(acc[i].MeanCongestion());
    }
  }
  PrintPanel("(a) latency (hops)", "network size", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "network size", xs,
             congestion);
  return 0;
}
