#ifndef RIPPLE_BENCH_BENCH_COMMON_H_
#define RIPPLE_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/datasets.h"
#include "geom/scoring.h"
#include "net/metrics.h"
#include "obs/bench_report.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "overlay/baton/baton.h"
#include "overlay/can/can.h"
#include "overlay/midas/midas.h"
#include "queries/diversify.h"
#include "store/tuple.h"

namespace ripple::bench {

/// Scale knobs for the figure benches, read from the environment. The
/// paper runs 65,536 queries over 16 networks of up to 131,072 peers; the
/// defaults here keep the full suite in laptop territory while preserving
/// curve shapes. Raise them to approach the paper's scale:
///
///   RIPPLE_BENCH_MAX_LOG_N   largest overlay 2^x     (default 13 -> 8192)
///   RIPPLE_BENCH_MIN_LOG_N   smallest overlay 2^x    (default 10 -> 1024)
///   RIPPLE_BENCH_QUERIES     queries per data point  (default 32)
///   RIPPLE_BENCH_DIV_QUERIES diversification queries (default 2)
///   RIPPLE_BENCH_NETS        networks per data point (default 2)
///   RIPPLE_BENCH_TUPLES      synthetic tuples        (default 100000)
///   RIPPLE_BENCH_SEED        master seed             (default 1)
///
/// Output destinations:
///
///   RIPPLE_BENCH_JSON_DIR    directory receiving BENCH_<suite>.json
///                            (default "."); see docs/OBSERVABILITY.md
///   RIPPLE_BENCH_CSV         directory receiving per-panel CSVs under
///                            <dir>/<suite>/ (unset = no CSV)
struct BenchConfig {
  int min_log_n = 10;
  int max_log_n = 13;
  size_t queries = 32;
  size_t div_queries = 2;
  size_t nets = 2;
  size_t tuples = 100000;
  uint64_t seed = 1;

  std::vector<size_t> NetworkSizes() const {
    std::vector<size_t> out;
    for (int x = min_log_n; x <= max_log_n; ++x) {
      out.push_back(size_t{1} << x);
    }
    return out;
  }
  size_t DefaultNetworkSize() const {
    // Table 1's default is 2^14; scaled down to the harness maximum.
    return size_t{1} << std::min(max_log_n, 14);
  }
};

BenchConfig LoadConfig();

/// Prints the experiment banner: figure id, what the paper shows, and the
/// Table 1 configuration in effect. Also initializes the process-wide
/// BenchReporter: the suite is derived from the figure id ("Ablation ..."
/// -> ablations, anything else -> figs), the binary prefix is the slug of
/// the figure id, and the merged BENCH_<suite>.json is flushed to
/// RIPPLE_BENCH_JSON_DIR at process exit.
void PrintHeader(const BenchConfig& config, const std::string& figure,
                 const std::string& description);

/// The process-wide bench result sink (valid after PrintHeader; before it,
/// a placeholder reporter is used and its cases are folded into the real
/// one at PrintHeader time). All BENCH_<suite>.json and result-CSV
/// emission must flow through this reporter — tools/lint_deprecated.sh
/// enforces it.
obs::BenchReporter& Reporter();

/// Writes the merged BENCH_<suite>.json now (also happens automatically at
/// exit). Exposed so tests can flush without exiting.
void FlushBenchReport();

/// One plotted line: a method/parameter setting across the x sweep.
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Prints one metric panel (latency or congestion) as an aligned table,
/// one row per x value, one column per series — the same rows the paper's
/// figures plot. Every cell is also recorded in the Reporter() as case
/// `<slug-of-title>/x=<x>` with one metric per series, and when
/// RIPPLE_BENCH_CSV names a directory the panel is written as CSV to
/// <dir>/<suite>/<binary>-<slug-of-title>.csv for plotting.
void PrintPanel(const std::string& title, const std::string& x_label,
                const std::vector<std::string>& x_values,
                const std::vector<Series>& series);

/// Records one x point of a query sweep in the Reporter() as cases
/// `query/<x>/<series-name>`, one per series. Deterministic metrics
/// (gated by tools/bench_check.py): latency_hops_mean, congestion_mean,
/// messages_mean, tuples_mean, and — when the matching profiler saw any
/// spans — peak_peer_load and load_gini. Wall-clock metrics (informational
/// only, never gated): wall_ms_p50/p95/p99 from the matching histogram.
/// `wall` and `profs` may be null; `count` bounds all three arrays.
void ReportQueryPoint(const std::string& x,
                      const std::vector<std::string>& names,
                      const StatsAccumulator* accs, const obs::Histogram* wall,
                      const obs::Profiler* profs, size_t count);

/// True when RIPPLE_BENCH_HIST=1: the figure benches then follow their
/// mean panels with nearest-rank percentile summaries (p50/p90/p99/max
/// per cost metric). Off by default, so default bench output stays
/// byte-identical to a build without the observability layer.
bool HistSummariesEnabled();

/// Prints the percentile summary block for one batch of accumulators
/// (one row per series name, the four QueryStats costs as columns).
/// No-op unless HistSummariesEnabled().
void PrintStatsSummary(const std::string& title,
                       const std::vector<std::string>& names,
                       const StatsAccumulator* accs, size_t count);

/// Builders ------------------------------------------------------------------

MidasOverlay BuildMidas(size_t peers, int dims, uint64_t seed,
                        const TupleVec& tuples,
                        bool border_patterns = false);
CanOverlay BuildCan(size_t peers, int dims, uint64_t seed,
                    const TupleVec& tuples);
BatonOverlay BuildBaton(size_t peers, int dims, const TupleVec& tuples);

/// Per-query top-k scorers: random non-negative preference weights applied
/// with negative sign (smaller coordinates are better in all datasets).
LinearScorer RandomPreferenceScorer(int dims, Rng* rng);

/// A diversification workload: query point near a random tuple plus a
/// deterministic initial set of k tuples (the same for every method, per
/// the paper's fairness setup).
struct DivWorkload {
  DiversifyObjective objective;
  TupleVec initial;
};
DivWorkload MakeDivWorkload(const TupleVec& tuples, size_t k, double lambda,
                            Rng* rng);

/// Sweep runners -------------------------------------------------------------
///
/// Each point struct carries, besides the QueryStats accumulators, one
/// per-query wall-clock histogram (milliseconds, steady clock) and one
/// per-peer load profiler per series; the RIPPLE-engine series feed the
/// profiler (baselines leave theirs empty). ReportQueryPoint turns all
/// three into BENCH_<suite>.json metrics.

/// Figures 4-6: top-k under the four canonical ripple settings
/// r in {0, Delta/3, 2*Delta/3, Delta}. Index order matches
/// kTopKVariantNames.
inline constexpr const char* kTopKVariantNames[4] = {"r=0", "r=D/3", "r=2D/3",
                                                     "r=D"};
struct FourWay {
  StatsAccumulator acc[4];
  obs::Histogram wall[4];
  obs::Profiler prof[4];
};
void RunTopKFourWay(const MidasOverlay& overlay, size_t k, size_t queries,
                    uint64_t seed, FourWay* out);

/// Figures 7-8: skyline methods. Index order matches kSkylineMethodNames.
inline constexpr const char* kSkylineMethodNames[4] = {
    "ripple-fast", "ripple-slow", "dsl(can)", "ssp(baton)"};
struct SkylinePoint {
  StatsAccumulator acc[4];
  obs::Histogram wall[4];
  obs::Profiler prof[4];
};
void RunSkylineMethods(size_t peers, int dims, const TupleVec& tuples,
                       size_t queries, uint64_t seed, SkylinePoint* out);

/// Figures 9-12: diversification methods. Index order matches
/// kDivMethodNames. All methods are driven through the paper's
/// forced-result fairness device, so they walk identical greedy
/// trajectories and the stats isolate network cost.
inline constexpr const char* kDivMethodNames[3] = {"ripple-fast",
                                                   "ripple-slow",
                                                   "baseline(can)"};
struct DivPoint {
  StatsAccumulator acc[3];
  obs::Histogram wall[3];
  obs::Profiler prof[3];
};
void RunDivMethods(size_t peers, int dims, const TupleVec& tuples, size_t k,
                   double lambda, size_t queries, uint64_t seed,
                   DivPoint* out);

}  // namespace ripple::bench

#endif  // RIPPLE_BENCH_BENCH_COMMON_H_
