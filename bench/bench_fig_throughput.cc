// Throughput figure: multi-query workload throughput of the concurrent
// executor (src/exec/) as the worker pool grows. Not a figure of the
// paper — RIPPLE evaluates per-query cost; this bench evaluates the
// system's capacity to run many rank queries at once, which is the regime
// a deployed initiator actually faces.
//
// Series: threads in {1, 2, 4} over one fixed overlay and one fixed mixed
// workload (4:2:1:1 topk/skyline/skyband/range, exec::DefaultWorkloadMix).
// Deterministic metrics (messages, visits, tuples, answer sizes) are
// byte-identical across thread counts — that is the executor's
// determinism contract, and the bench gate holds it to baseline.
// Throughput/latency metrics carry the `wall_` prefix (informational,
// machine-dependent), EXCEPT the scaling floor: the `speedup` case emits
// `wall_floor_speedup_tN` next to the measured `wall_speedup_tN`, and
// tools/bench_check.py fails the gate when a measured speedup sits below
// its floor. The floor adapts to the machine so the gate is meaningful
// everywhere: with >= 4 hardware threads the 4-thread floor is the 2.5x
// target; with fewer, threads can only interleave, and the floor degrades
// to 0.55x per effective core (i.e. "not pathologically slower").

#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "exec/compile.h"
#include "exec/executor.h"
#include "exec/workload.h"

using namespace ripple;
using namespace ripple::bench;

namespace {

double FloorFor(int threads) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned eff = std::min<unsigned>(threads, hw);
  return eff >= static_cast<unsigned>(threads) && threads >= 4
             ? 2.5
             : 0.55 * static_cast<double>(eff);
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Figure T",
              "workload throughput vs executor threads (mixed rank queries)");

  const size_t peers = config.DefaultNetworkSize();
  Rng data_rng(config.seed * 7919 + 5);
  const TupleVec tuples =
      data::MakeUniform(std::min<size_t>(config.tuples, 50000), 4, &data_rng);
  const MidasOverlay overlay = BuildMidas(peers, 4, config.seed, tuples);

  const size_t queries = config.queries * 8;
  const std::vector<exec::WorkloadItem> items =
      exec::DefaultWorkloadMix(queries);

  constexpr int kThreads[3] = {1, 2, 4};
  double qps[3] = {0, 0, 0};
  std::vector<std::string> xs;
  // Panel series names keep the wall_ prefix: PrintPanel records every
  // cell in the Reporter, and wall-clock cells must stay informational.
  Series s_qps{"wall_qps", {}}, s_p95{"wall_ms_p95", {}};

  for (int ti = 0; ti < 3; ++ti) {
    const int threads = kThreads[ti];
    exec::CompileOptions copts;
    copts.seed = config.seed;
    exec::CompiledWorkload compiled =
        exec::CompileWorkload(overlay, items, copts);
    exec::ExecutorOptions opts;
    opts.threads = threads;
    opts.seed = config.seed;
    opts.queue_capacity = 64;
    exec::Executor executor(opts);
    const exec::WorkloadResult result =
        executor.Run(compiled.jobs, overlay.NumPeers());
    qps[ti] = result.qps;

    uint64_t answers = 0;
    for (const exec::QueryOutcome& out : result.queries) {
      answers += out.answer.size();
    }
    const std::string case_id = "workload/threads=" + std::to_string(threads);
    // Deterministic across runs, machines AND thread counts (the
    // executor's determinism contract) — gated by tools/bench_check.py.
    Reporter().AddMetric(case_id, "completed",
                         static_cast<double>(result.completed));
    Reporter().AddMetric(case_id, "messages",
                         static_cast<double>(result.total_stats.messages));
    Reporter().AddMetric(
        case_id, "peers_visited",
        static_cast<double>(result.total_stats.peers_visited));
    Reporter().AddMetric(
        case_id, "tuples_shipped",
        static_cast<double>(result.total_stats.tuples_shipped));
    Reporter().AddMetric(case_id, "answer_tuples",
                         static_cast<double>(answers));
    // Wall-clock: informational, machine-dependent.
    Reporter().AddMetric(case_id, "wall_qps", result.qps);
    Reporter().AddMetric(case_id, "wall_s", result.wall_s);
    Reporter().AddMetric(case_id, "wall_ms_p50",
                         result.latency_ms.Percentile(50));
    Reporter().AddMetric(case_id, "wall_ms_p95",
                         result.latency_ms.Percentile(95));
    Reporter().AddMetric(case_id, "wall_ms_p99",
                         result.latency_ms.Percentile(99));

    xs.push_back(std::to_string(threads));
    s_qps.values.push_back(result.qps);
    s_p95.values.push_back(result.latency_ms.Percentile(95));
    std::printf("  threads=%d  %s\n", threads, result.Summary().c_str());
  }

  // Scaling case: measured speedups plus their machine-adapted floors.
  // bench_check.py enforces wall_speedup_tN >= wall_floor_speedup_tN
  // within this document (the floor rule), so a scaling collapse fails
  // the gate even though wall metrics are otherwise informational.
  const double t2 = qps[0] > 0 ? qps[1] / qps[0] : 0.0;
  const double t4 = qps[0] > 0 ? qps[2] / qps[0] : 0.0;
  Reporter().AddMetric("workload/speedup", "wall_speedup_t2", t2);
  Reporter().AddMetric("workload/speedup", "wall_speedup_t4", t4);
  Reporter().AddMetric("workload/speedup", "wall_floor_speedup_t2",
                       FloorFor(2));
  Reporter().AddMetric("workload/speedup", "wall_floor_speedup_t4",
                       FloorFor(4));
  Reporter().AddMetric(
      "workload/speedup", "wall_hw_threads",
      static_cast<double>(std::thread::hardware_concurrency()));
  std::printf(
      "  speedup: t2=%.2fx (floor %.2f)  t4=%.2fx (floor %.2f)  "
      "[%u hardware threads]\n",
      t2, FloorFor(2), t4, FloorFor(4),
      std::thread::hardware_concurrency());

  PrintPanel("(a) throughput (queries per second)", "threads", xs, {s_qps});
  PrintPanel("(b) p95 latency (ms)", "threads", xs, {s_p95});
  return 0;
}
