// Figure 5: top-k query performance in terms of dimensionality (paper
// §7.2.1). SYNTH dataset, d = 2..10, default overlay size, k = 10.
// Expected shape: near-flat — MIDAS's core structure is unaffected by d.

#include "bench_common.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Figure 5",
              "top-k vs dimensionality (SYNTH, default overlay, k=10)");
  const size_t n = config.DefaultNetworkSize();

  std::vector<std::string> xs;
  std::vector<Series> latency(4), congestion(4);
  for (int i = 0; i < 4; ++i) {
    latency[i].name = kTopKVariantNames[i];
    congestion[i].name = kTopKVariantNames[i];
  }
  for (int dims = 2; dims <= 10; ++dims) {
    FourWay point;
    for (size_t net = 0; net < config.nets; ++net) {
      const uint64_t seed = config.seed + 1000 * net + dims;
      Rng data_rng(seed * 104729);
      const TupleVec synth =
          data::MakeByName("synth", config.tuples, dims, &data_rng);
      const MidasOverlay overlay = BuildMidas(n, dims, seed, synth);
      RunTopKFourWay(overlay, 10, config.queries, seed ^ 0x9e37, &point);
    }
    xs.push_back(std::to_string(dims));
    for (int i = 0; i < 4; ++i) {
      latency[i].values.push_back(point.acc[i].MeanLatency());
      congestion[i].values.push_back(point.acc[i].MeanCongestion());
    }
    ReportQueryPoint("d=" + std::to_string(dims),
                     {kTopKVariantNames, kTopKVariantNames + 4}, point.acc,
                     point.wall, point.prof, 4);
  }
  PrintPanel("(a) latency (hops)", "dimensionality", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "dimensionality", xs,
             congestion);
  return 0;
}
