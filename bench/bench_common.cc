#include "bench_common.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "baselines/div_baseline.h"
#include "baselines/dsl.h"
#include "baselines/ssp.h"
#include "common/env.h"
#include "queries/diversify_driver.h"
#include "queries/skyline.h"
#include "queries/skyline_driver.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"

namespace ripple::bench {

BenchConfig LoadConfig() {
  BenchConfig c;
  c.min_log_n = static_cast<int>(GetEnvInt("RIPPLE_BENCH_MIN_LOG_N", 10));
  c.max_log_n = static_cast<int>(GetEnvInt("RIPPLE_BENCH_MAX_LOG_N", 13));
  c.queries = static_cast<size_t>(GetEnvInt("RIPPLE_BENCH_QUERIES", 32));
  c.div_queries =
      static_cast<size_t>(GetEnvInt("RIPPLE_BENCH_DIV_QUERIES", 2));
  c.nets = static_cast<size_t>(GetEnvInt("RIPPLE_BENCH_NETS", 2));
  c.tuples = static_cast<size_t>(GetEnvInt("RIPPLE_BENCH_TUPLES", 100000));
  c.seed = static_cast<uint64_t>(GetEnvInt("RIPPLE_BENCH_SEED", 1));
  return c;
}

namespace {

/// Set by PrintHeader; prefixes CSV file names so panels from different
/// figure binaries do not collide. Plain char buffer: trivially
/// destructible static state.
char g_figure_slug[64] = "";

std::string Slug(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(std::tolower(c)));
    } else if (!out.empty() && out.back() != '-') {
      out.push_back('-');
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

}  // namespace

void PrintHeader(const BenchConfig& config, const std::string& figure,
                 const std::string& description) {
  std::snprintf(g_figure_slug, sizeof(g_figure_slug), "%s",
                Slug(figure).c_str());
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("Config (Table 1, scaled): overlays 2^%d..2^%d, %zu queries x "
              "%zu networks per point, %zu synthetic tuples, seed %llu\n",
              config.min_log_n, config.max_log_n, config.queries, config.nets,
              config.tuples, static_cast<unsigned long long>(config.seed));
  std::printf("Scale up with RIPPLE_BENCH_MAX_LOG_N / RIPPLE_BENCH_QUERIES / "
              "RIPPLE_BENCH_NETS / RIPPLE_BENCH_TUPLES.\n");
  std::printf("==============================================================="
              "=========\n");
}

namespace {

void MaybeWriteCsv(const std::string& title, const std::string& x_label,
                   const std::vector<std::string>& x_values,
                   const std::vector<Series>& series) {
  const std::string dir = GetEnvString("RIPPLE_BENCH_CSV", "");
  if (dir.empty()) return;
  const std::string path =
      dir + "/" + g_figure_slug + "-" + Slug(title) + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "RIPPLE_BENCH_CSV: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "%s", x_label.c_str());
  for (const Series& s : series) std::fprintf(f, ",%s", s.name.c_str());
  std::fprintf(f, "\n");
  for (size_t row = 0; row < x_values.size(); ++row) {
    std::fprintf(f, "%s", x_values[row].c_str());
    for (const Series& s : series) {
      if (row < s.values.size()) {
        std::fprintf(f, ",%.6g", s.values[row]);
      } else {
        std::fprintf(f, ",");
      }
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
}

}  // namespace

void PrintPanel(const std::string& title, const std::string& x_label,
                const std::vector<std::string>& x_values,
                const std::vector<Series>& series) {
  MaybeWriteCsv(title, x_label, x_values, series);
  std::printf("\n-- %s --\n", title.c_str());
  std::printf("%14s", x_label.c_str());
  for (const Series& s : series) {
    std::printf("%16s", s.name.c_str());
  }
  std::printf("\n");
  for (size_t row = 0; row < x_values.size(); ++row) {
    std::printf("%14s", x_values[row].c_str());
    for (const Series& s : series) {
      if (row < s.values.size()) {
        std::printf("%16.2f", s.values[row]);
      } else {
        std::printf("%16s", "-");
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

bool HistSummariesEnabled() { return GetEnvInt("RIPPLE_BENCH_HIST", 0) != 0; }

void PrintStatsSummary(const std::string& title,
                       const std::vector<std::string>& names,
                       const StatsAccumulator* accs, size_t count) {
  if (!HistSummariesEnabled()) return;
  std::printf("\n-- %s: percentiles (p50/p90/p99/max) --\n", title.c_str());
  static constexpr struct {
    const char* label;
    uint64_t QueryStats::* field;
  } kFields[] = {
      {"latency", &QueryStats::latency_hops},
      {"congestion", &QueryStats::peers_visited},
      {"messages", &QueryStats::messages},
      {"tuples", &QueryStats::tuples_shipped},
  };
  for (size_t i = 0; i < count; ++i) {
    const StatsAccumulator& acc = accs[i];
    std::printf("%16s", i < names.size() ? names[i].c_str() : "?");
    for (const auto& f : kFields) {
      std::printf("  %s %llu/%llu/%llu/%llu", f.label,
                  static_cast<unsigned long long>(acc.Percentile(f.field, 50)),
                  static_cast<unsigned long long>(acc.Percentile(f.field, 90)),
                  static_cast<unsigned long long>(acc.Percentile(f.field, 99)),
                  static_cast<unsigned long long>(acc.Percentile(f.field,
                                                                 100)));
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

MidasOverlay BuildMidas(size_t peers, int dims, uint64_t seed,
                        const TupleVec& tuples, bool border_patterns) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.border_pattern_links = border_patterns;
  // Data-bearing experiments use load-balancing median splits (real MIDAS
  // deployments balance storage); the data must be present while the
  // overlay grows so splits can follow it.
  opt.split_rule = MidasSplitRule::kDataMedian;
  MidasOverlay overlay(opt);
  for (const Tuple& t : tuples) overlay.InsertTuple(t);
  while (overlay.NumPeers() < peers) overlay.Join();
  return overlay;
}

CanOverlay BuildCan(size_t peers, int dims, uint64_t seed,
                    const TupleVec& tuples) {
  CanOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  CanOverlay overlay(opt);
  while (overlay.NumPeers() < peers) overlay.Join();
  for (const Tuple& t : tuples) overlay.InsertTuple(t);
  return overlay;
}

BatonOverlay BuildBaton(size_t peers, int dims, const TupleVec& tuples) {
  BatonOverlay overlay(peers, BatonOptions{.dims = dims});
  overlay.RebalanceToData(tuples);
  for (const Tuple& t : tuples) overlay.InsertTuple(t);
  return overlay;
}

LinearScorer RandomPreferenceScorer(int dims, Rng* rng) {
  std::vector<double> weights(dims);
  double sum = 0.0;
  for (double& w : weights) {
    w = 0.05 + rng->UniformDouble();
    sum += w;
  }
  // Negative normalized weights: maximizing the score minimizes the
  // weighted attribute sum (0 = best orientation in all datasets).
  for (double& w : weights) w = -w / sum;
  return LinearScorer(weights);
}

DivWorkload MakeDivWorkload(const TupleVec& tuples, size_t k, double lambda,
                            Rng* rng) {
  DivWorkload w;
  w.objective.query = tuples[rng->UniformU64(tuples.size())].key;
  w.objective.lambda = lambda;
  w.objective.norm = Norm::kL1;
  // Initial set: k distinct random tuples (the "as simple as retrieving k
  // random tuples" initialization of Section 6.3), fixed per query so that
  // every method starts identically.
  std::vector<size_t> picks;
  while (picks.size() < k) {
    const size_t i = rng->UniformU64(tuples.size());
    if (std::find(picks.begin(), picks.end(), i) == picks.end()) {
      picks.push_back(i);
    }
  }
  for (size_t i : picks) w.initial.push_back(tuples[i]);
  return w;
}

void RunTopKFourWay(const MidasOverlay& overlay, size_t k, size_t queries,
                    uint64_t seed, FourWay* out) {
  const int delta = overlay.MaxDepth();
  const RippleParam rs[4] = {RippleParam::Fast(), RippleParam::Hops(delta / 3),
                             RippleParam::Hops(2 * delta / 3),
                             RippleParam::Slow()};
  Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  Rng rng(seed);
  for (size_t q = 0; q < queries; ++q) {
    const LinearScorer scorer = RandomPreferenceScorer(overlay.dims(), &rng);
    const TopKQuery query{&scorer, k};
    const PeerId initiator = overlay.RandomPeer(&rng);
    for (int i = 0; i < 4; ++i) {
      out->acc[i].Add(SeededTopK(overlay, engine,
                                 {.initiator = initiator,
                                  .query = query,
                                  .ripple = rs[i]})
                          .stats);
    }
  }
}

void RunSkylineMethods(size_t peers, int dims, const TupleVec& tuples,
                       size_t queries, uint64_t seed, SkylinePoint* out) {
  // RIPPLE over MIDAS runs with the Section 5.2 border-pattern
  // optimization, as in the paper's skyline evaluation.
  const MidasOverlay midas =
      BuildMidas(peers, dims, seed, tuples, /*border_patterns=*/true);
  const CanOverlay can = BuildCan(peers, dims, seed + 1, tuples);
  const BatonOverlay baton = BuildBaton(peers, dims, tuples);
  Engine<MidasOverlay, SkylinePolicy> engine(&midas, SkylinePolicy{});
  Rng rng(seed ^ 0x5bd1e995);
  for (size_t q = 0; q < queries; ++q) {
    const PeerId m_init = midas.RandomPeer(&rng);
    const PeerId c_init = can.RandomPeer(&rng);
    const PeerId b_init = baton.RandomPeer(&rng);
    out->acc[0].Add(SeededSkyline(midas, engine,
                                  {.initiator = m_init,
                                   .ripple = RippleParam::Fast()})
                        .stats);
    out->acc[1].Add(SeededSkyline(midas, engine,
                                  {.initiator = m_init,
                                   .ripple = RippleParam::Slow()})
                        .stats);
    out->acc[2].Add(RunDslSkyline(can, c_init).stats);
    out->acc[3].Add(RunSspSkyline(baton, b_init).stats);
  }
}

void RunDivMethods(size_t peers, int dims, const TupleVec& tuples, size_t k,
                   double lambda, size_t queries, uint64_t seed,
                   DivPoint* out) {
  const MidasOverlay midas = BuildMidas(peers, dims, seed, tuples);
  const CanOverlay can = BuildCan(peers, dims, seed + 1, tuples);
  Rng rng(seed ^ 0x2545f491);
  DiversifyOptions options;
  options.k = k;
  options.max_iters = 2;
  // The elaborate §6.3 initialization: k single-tuple queries per method
  // (forced to the same trajectory below), as in the paper's cost profile.
  options.service_init = true;
  for (size_t q = 0; q < queries; ++q) {
    const DivWorkload w = MakeDivWorkload(tuples, k, lambda, &rng);
    const PeerId m_init = midas.RandomPeer(&rng);
    const PeerId c_init = can.RandomPeer(&rng);
    RippleDivService<MidasOverlay> fast(
        &midas, {.initiator = m_init, .ripple = RippleParam::Fast()});
    RippleDivService<MidasOverlay> slow(
        &midas, {.initiator = m_init, .ripple = RippleParam::Slow()});
    CanFloodDivService flood(&can, c_init);
    SingleTupleService* measured[3] = {&fast, &slow, &flood};
    for (int m = 0; m < 3; ++m) {
      CentralizedDivService reference(&tuples);
      ForcedResultService forced(measured[m], &reference);
      out->acc[m].Add(Diversify(&forced, w.objective, w.initial, options)
                          .stats);
    }
  }
}

}  // namespace ripple::bench
