#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "baselines/div_baseline.h"
#include "baselines/dsl.h"
#include "baselines/ssp.h"
#include "common/env.h"
#include "queries/diversify_driver.h"
#include "queries/skyline.h"
#include "queries/skyline_driver.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"

// Build provenance stamped into BENCH_<suite>.json (defined by
// bench/CMakeLists.txt at configure time; fallbacks keep non-CMake builds
// compiling).
#ifndef RIPPLE_GIT_SHA
#define RIPPLE_GIT_SHA "unknown"
#endif
#ifndef RIPPLE_BUILD_TYPE
#define RIPPLE_BUILD_TYPE "unknown"
#endif

namespace ripple::bench {

BenchConfig LoadConfig() {
  BenchConfig c;
  c.min_log_n = static_cast<int>(GetEnvInt("RIPPLE_BENCH_MIN_LOG_N", 10));
  c.max_log_n = static_cast<int>(GetEnvInt("RIPPLE_BENCH_MAX_LOG_N", 13));
  c.queries = static_cast<size_t>(GetEnvInt("RIPPLE_BENCH_QUERIES", 32));
  c.div_queries =
      static_cast<size_t>(GetEnvInt("RIPPLE_BENCH_DIV_QUERIES", 2));
  c.nets = static_cast<size_t>(GetEnvInt("RIPPLE_BENCH_NETS", 2));
  c.tuples = static_cast<size_t>(GetEnvInt("RIPPLE_BENCH_TUPLES", 100000));
  c.seed = static_cast<uint64_t>(GetEnvInt("RIPPLE_BENCH_SEED", 1));
  return c;
}

namespace {

/// The process-wide reporter. Before PrintHeader, a placeholder collects
/// any early AddMetric calls; PrintHeader replaces it with the real one
/// (suite + provenance) and folds the placeholder's cases over.
std::unique_ptr<obs::BenchReporter> g_reporter;

void FlushAtExit() { FlushBenchReport(); }

obs::BenchReporter MakeReporter(const BenchConfig& config,
                                const std::string& figure) {
  obs::BenchMeta meta;
  // "Ablation A8" -> ablations suite; "Figure 4" (and everything else)
  // -> figs. One file per suite, shared by all that suite's binaries.
  meta.suite =
      figure.rfind("Ablation", 0) == 0 ? "ablations" : "figs";
  meta.binary = obs::Slug(figure);
  meta.git_sha = RIPPLE_GIT_SHA;
  meta.build_type = RIPPLE_BUILD_TYPE;
  meta.seed = config.seed;
  meta.config = {
      {"min_log_n", static_cast<double>(config.min_log_n)},
      {"max_log_n", static_cast<double>(config.max_log_n)},
      {"queries", static_cast<double>(config.queries)},
      {"div_queries", static_cast<double>(config.div_queries)},
      {"nets", static_cast<double>(config.nets)},
      {"tuples", static_cast<double>(config.tuples)},
  };
  return obs::BenchReporter(std::move(meta));
}

}  // namespace

obs::BenchReporter& Reporter() {
  if (g_reporter == nullptr) {
    obs::BenchMeta placeholder;
    placeholder.suite = "figs";
    placeholder.binary = "unnamed";
    g_reporter = std::make_unique<obs::BenchReporter>(std::move(placeholder));
  }
  return *g_reporter;
}

void FlushBenchReport() {
  if (g_reporter == nullptr) return;
  const std::string dir = GetEnvString("RIPPLE_BENCH_JSON_DIR", ".");
  const Status status = g_reporter->WriteMerged(dir);
  if (!status.ok()) {
    std::fprintf(stderr, "BENCH json: %s\n", status.ToString().c_str());
  }
}

void PrintHeader(const BenchConfig& config, const std::string& figure,
                 const std::string& description) {
  obs::BenchReporter fresh = MakeReporter(config, figure);
  if (g_reporter != nullptr) {
    // Early metrics were recorded under the placeholder prefix; re-home
    // them (id is "<old-binary>/<case>", keep the case part).
    for (const auto& [id, metrics] : g_reporter->cases()) {
      const size_t slash = id.find('/');
      const std::string case_id =
          slash == std::string::npos ? id : id.substr(slash + 1);
      for (const auto& [name, value] : metrics) {
        fresh.AddMetric(case_id, name, value);
      }
    }
  }
  g_reporter = std::make_unique<obs::BenchReporter>(std::move(fresh));
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit(FlushAtExit);
  }
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("Config (Table 1, scaled): overlays 2^%d..2^%d, %zu queries x "
              "%zu networks per point, %zu synthetic tuples, seed %llu\n",
              config.min_log_n, config.max_log_n, config.queries, config.nets,
              config.tuples, static_cast<unsigned long long>(config.seed));
  std::printf("Scale up with RIPPLE_BENCH_MAX_LOG_N / RIPPLE_BENCH_QUERIES / "
              "RIPPLE_BENCH_NETS / RIPPLE_BENCH_TUPLES.\n");
  std::printf("==============================================================="
              "=========\n");
}

void PrintPanel(const std::string& title, const std::string& x_label,
                const std::vector<std::string>& x_values,
                const std::vector<Series>& series) {
  obs::BenchReporter& reporter = Reporter();
  const std::string panel = obs::Slug(title);
  for (size_t row = 0; row < x_values.size(); ++row) {
    for (const Series& s : series) {
      if (row < s.values.size()) {
        reporter.AddMetric(panel + "/x=" + x_values[row], s.name,
                           s.values[row]);
      }
    }
  }
  const std::string csv_dir = GetEnvString("RIPPLE_BENCH_CSV", "");
  if (!csv_dir.empty()) {
    std::vector<std::string> names;
    std::vector<std::vector<double>> values;
    for (const Series& s : series) {
      names.push_back(s.name);
      values.push_back(s.values);
    }
    const Status status = reporter.WritePanelCsv(csv_dir, title, x_label,
                                                 x_values, names, values);
    if (!status.ok()) {
      std::fprintf(stderr, "RIPPLE_BENCH_CSV: %s\n",
                   status.ToString().c_str());
    }
  }
  std::printf("\n-- %s --\n", title.c_str());
  std::printf("%14s", x_label.c_str());
  for (const Series& s : series) {
    std::printf("%16s", s.name.c_str());
  }
  std::printf("\n");
  for (size_t row = 0; row < x_values.size(); ++row) {
    std::printf("%14s", x_values[row].c_str());
    for (const Series& s : series) {
      if (row < s.values.size()) {
        std::printf("%16.2f", s.values[row]);
      } else {
        std::printf("%16s", "-");
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

void ReportQueryPoint(const std::string& x,
                      const std::vector<std::string>& names,
                      const StatsAccumulator* accs, const obs::Histogram* wall,
                      const obs::Profiler* profs, size_t count) {
  obs::BenchReporter& reporter = Reporter();
  for (size_t i = 0; i < count; ++i) {
    const std::string id =
        "query/" + x + "/" + (i < names.size() ? names[i] : "?");
    reporter.AddMetric(id, "latency_hops_mean", accs[i].MeanLatency());
    reporter.AddMetric(id, "congestion_mean", accs[i].MeanCongestion());
    reporter.AddMetric(id, "messages_mean", accs[i].MeanMessages());
    reporter.AddMetric(id, "tuples_mean", accs[i].MeanTuplesShipped());
    reporter.AddMetric(id, "bytes_on_wire_mean", accs[i].MeanBytesOnWire());
    if (wall != nullptr && wall[i].count() > 0) {
      reporter.AddMetric(id, "wall_ms_p50", wall[i].Percentile(50));
      reporter.AddMetric(id, "wall_ms_p95", wall[i].Percentile(95));
      reporter.AddMetric(id, "wall_ms_p99", wall[i].Percentile(99));
    }
    if (profs != nullptr) {
      const obs::SkewStats skew = profs[i].Skew(&obs::PeerLoad::spans);
      if (skew.total > 0) {
        reporter.AddMetric(id, "peak_peer_load",
                           static_cast<double>(skew.max));
        reporter.AddMetric(id, "load_gini", skew.gini);
      }
    }
  }
}

bool HistSummariesEnabled() { return GetEnvInt("RIPPLE_BENCH_HIST", 0) != 0; }

void PrintStatsSummary(const std::string& title,
                       const std::vector<std::string>& names,
                       const StatsAccumulator* accs, size_t count) {
  if (!HistSummariesEnabled()) return;
  std::printf("\n-- %s: percentiles (p50/p90/p99/max) --\n", title.c_str());
  static constexpr struct {
    const char* label;
    uint64_t QueryStats::* field;
  } kFields[] = {
      {"latency", &QueryStats::latency_hops},
      {"congestion", &QueryStats::peers_visited},
      {"messages", &QueryStats::messages},
      {"tuples", &QueryStats::tuples_shipped},
  };
  for (size_t i = 0; i < count; ++i) {
    const StatsAccumulator& acc = accs[i];
    std::printf("%16s", i < names.size() ? names[i].c_str() : "?");
    for (const auto& f : kFields) {
      std::printf("  %s %llu/%llu/%llu/%llu", f.label,
                  static_cast<unsigned long long>(acc.Percentile(f.field, 50)),
                  static_cast<unsigned long long>(acc.Percentile(f.field, 90)),
                  static_cast<unsigned long long>(acc.Percentile(f.field, 99)),
                  static_cast<unsigned long long>(acc.Percentile(f.field,
                                                                 100)));
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

MidasOverlay BuildMidas(size_t peers, int dims, uint64_t seed,
                        const TupleVec& tuples, bool border_patterns) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.border_pattern_links = border_patterns;
  // Data-bearing experiments use load-balancing median splits (real MIDAS
  // deployments balance storage); the data must be present while the
  // overlay grows so splits can follow it.
  opt.split_rule = MidasSplitRule::kDataMedian;
  MidasOverlay overlay(opt);
  for (const Tuple& t : tuples) overlay.InsertTuple(t);
  while (overlay.NumPeers() < peers) overlay.Join();
  return overlay;
}

CanOverlay BuildCan(size_t peers, int dims, uint64_t seed,
                    const TupleVec& tuples) {
  CanOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  CanOverlay overlay(opt);
  while (overlay.NumPeers() < peers) overlay.Join();
  for (const Tuple& t : tuples) overlay.InsertTuple(t);
  return overlay;
}

BatonOverlay BuildBaton(size_t peers, int dims, const TupleVec& tuples) {
  BatonOverlay overlay(peers, BatonOptions{.dims = dims});
  overlay.RebalanceToData(tuples);
  for (const Tuple& t : tuples) overlay.InsertTuple(t);
  return overlay;
}

LinearScorer RandomPreferenceScorer(int dims, Rng* rng) {
  std::vector<double> weights(dims);
  double sum = 0.0;
  for (double& w : weights) {
    w = 0.05 + rng->UniformDouble();
    sum += w;
  }
  // Negative normalized weights: maximizing the score minimizes the
  // weighted attribute sum (0 = best orientation in all datasets).
  for (double& w : weights) w = -w / sum;
  return LinearScorer(weights);
}

DivWorkload MakeDivWorkload(const TupleVec& tuples, size_t k, double lambda,
                            Rng* rng) {
  DivWorkload w;
  w.objective.query = tuples[rng->UniformU64(tuples.size())].key;
  w.objective.lambda = lambda;
  w.objective.norm = Norm::kL1;
  // Initial set: k distinct random tuples (the "as simple as retrieving k
  // random tuples" initialization of Section 6.3), fixed per query so that
  // every method starts identically.
  std::vector<size_t> picks;
  while (picks.size() < k) {
    const size_t i = rng->UniformU64(tuples.size());
    if (std::find(picks.begin(), picks.end(), i) == picks.end()) {
      picks.push_back(i);
    }
  }
  for (size_t i : picks) w.initial.push_back(tuples[i]);
  return w;
}

namespace {

/// Milliseconds elapsed since `t0` on the steady clock — the wall metric
/// the wall[] histograms observe (reported, never regression-gated).
double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void RunTopKFourWay(const MidasOverlay& overlay, size_t k, size_t queries,
                    uint64_t seed, FourWay* out) {
  const int delta = overlay.MaxDepth();
  const RippleParam rs[4] = {RippleParam::Fast(), RippleParam::Hops(delta / 3),
                             RippleParam::Hops(2 * delta / 3),
                             RippleParam::Slow()};
  Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  for (int i = 0; i < 4; ++i) out->prof[i].SetPeerUniverse(overlay.NumPeers());
  Rng rng(seed);
  for (size_t q = 0; q < queries; ++q) {
    const LinearScorer scorer = RandomPreferenceScorer(overlay.dims(), &rng);
    const TopKQuery query{&scorer, k};
    const PeerId initiator = overlay.RandomPeer(&rng);
    for (int i = 0; i < 4; ++i) {
      engine.SetProfiler(&out->prof[i]);
      const auto t0 = std::chrono::steady_clock::now();
      const auto result = SeededTopK(overlay, engine,
                                     {.initiator = initiator,
                                      .query = query,
                                      .ripple = rs[i]});
      out->wall[i].Observe(MsSince(t0));
      out->acc[i].Add(result.stats);
    }
  }
  engine.SetProfiler(nullptr);
}

void RunSkylineMethods(size_t peers, int dims, const TupleVec& tuples,
                       size_t queries, uint64_t seed, SkylinePoint* out) {
  // RIPPLE over MIDAS runs with the Section 5.2 border-pattern
  // optimization, as in the paper's skyline evaluation.
  const MidasOverlay midas =
      BuildMidas(peers, dims, seed, tuples, /*border_patterns=*/true);
  const CanOverlay can = BuildCan(peers, dims, seed + 1, tuples);
  const BatonOverlay baton = BuildBaton(peers, dims, tuples);
  Engine<MidasOverlay, SkylinePolicy> engine(&midas, SkylinePolicy{});
  out->prof[0].SetPeerUniverse(midas.NumPeers());
  out->prof[1].SetPeerUniverse(midas.NumPeers());
  Rng rng(seed ^ 0x5bd1e995);
  for (size_t q = 0; q < queries; ++q) {
    const PeerId m_init = midas.RandomPeer(&rng);
    const PeerId c_init = can.RandomPeer(&rng);
    const PeerId b_init = baton.RandomPeer(&rng);
    engine.SetProfiler(&out->prof[0]);
    auto t0 = std::chrono::steady_clock::now();
    out->acc[0].Add(SeededSkyline(midas, engine,
                                  {.initiator = m_init,
                                   .ripple = RippleParam::Fast()})
                        .stats);
    out->wall[0].Observe(MsSince(t0));
    engine.SetProfiler(&out->prof[1]);
    t0 = std::chrono::steady_clock::now();
    out->acc[1].Add(SeededSkyline(midas, engine,
                                  {.initiator = m_init,
                                   .ripple = RippleParam::Slow()})
                        .stats);
    out->wall[1].Observe(MsSince(t0));
    // The baselines run outside the RIPPLE engine, so only their wall
    // clock and QueryStats are observable — their profilers stay empty.
    t0 = std::chrono::steady_clock::now();
    out->acc[2].Add(RunDslSkyline(can, c_init).stats);
    out->wall[2].Observe(MsSince(t0));
    t0 = std::chrono::steady_clock::now();
    out->acc[3].Add(RunSspSkyline(baton, b_init).stats);
    out->wall[3].Observe(MsSince(t0));
  }
  engine.SetProfiler(nullptr);
}

void RunDivMethods(size_t peers, int dims, const TupleVec& tuples, size_t k,
                   double lambda, size_t queries, uint64_t seed,
                   DivPoint* out) {
  const MidasOverlay midas = BuildMidas(peers, dims, seed, tuples);
  const CanOverlay can = BuildCan(peers, dims, seed + 1, tuples);
  out->prof[0].SetPeerUniverse(midas.NumPeers());
  out->prof[1].SetPeerUniverse(midas.NumPeers());
  Rng rng(seed ^ 0x2545f491);
  DiversifyOptions options;
  options.k = k;
  options.max_iters = 2;
  // The elaborate §6.3 initialization: k single-tuple queries per method
  // (forced to the same trajectory below), as in the paper's cost profile.
  options.service_init = true;
  for (size_t q = 0; q < queries; ++q) {
    const DivWorkload w = MakeDivWorkload(tuples, k, lambda, &rng);
    const PeerId m_init = midas.RandomPeer(&rng);
    const PeerId c_init = can.RandomPeer(&rng);
    RippleDivService<MidasOverlay> fast(
        &midas, {.initiator = m_init, .ripple = RippleParam::Fast()});
    RippleDivService<MidasOverlay> slow(
        &midas, {.initiator = m_init, .ripple = RippleParam::Slow()});
    fast.mutable_engine()->SetProfiler(&out->prof[0]);
    slow.mutable_engine()->SetProfiler(&out->prof[1]);
    CanFloodDivService flood(&can, c_init);
    SingleTupleService* measured[3] = {&fast, &slow, &flood};
    for (int m = 0; m < 3; ++m) {
      CentralizedDivService reference(&tuples);
      ForcedResultService forced(measured[m], &reference);
      const auto t0 = std::chrono::steady_clock::now();
      out->acc[m].Add(Diversify(&forced, w.objective, w.initial, options)
                          .stats);
      out->wall[m].Observe(MsSince(t0));
    }
  }
}

}  // namespace ripple::bench
