// Ablation A4: generic RIPPLE over Chord vs RIPPLE over MIDAS (top-k).
// The paper's Section 3.1 defines Chord regions (arcs between finger zone
// starts); the same engine and top-k policy run unchanged over both
// overlays, with arc areas decomposed into rectangles for f+ bounds.
// Expected: MIDAS's multi-dimensional regions prune far better than
// Z-curve arcs — the reason the paper pairs RIPPLE with MIDAS.

#include "bench_common.h"
#include "overlay/chord/chord.h"
#include "queries/topk.h"
#include "ripple/engine.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Ablation A4",
              "generic RIPPLE over Chord vs MIDAS (uniform, d=3, k=10, "
              "slow mode)");
  const int dims = 3;
  const size_t tuples_n = std::min<size_t>(config.tuples, 30000);

  std::vector<std::string> xs;
  std::vector<Series> latency(2), congestion(2);
  latency[0].name = congestion[0].name = "midas";
  latency[1].name = congestion[1].name = "chord";
  for (size_t n : config.NetworkSizes()) {
    if (n > 4096) break;  // arc decomposition makes Chord points pricey
    StatsAccumulator acc[2];
    for (size_t net = 0; net < config.nets; ++net) {
      const uint64_t seed = config.seed + 1000 * net + n;
      Rng data_rng(seed * 104729);
      const TupleVec tuples = data::MakeUniform(tuples_n, dims, &data_rng);
      const MidasOverlay midas = BuildMidas(n, dims, seed, tuples);
      ChordOverlay chord(n, ChordOptions{.dims = dims, .seed = seed});
      for (const Tuple& t : tuples) chord.InsertTuple(t);
      Engine<MidasOverlay, TopKPolicy> e_midas(&midas, TopKPolicy{});
      Engine<ChordOverlay, TopKPolicy> e_chord(&chord, TopKPolicy{});
      Rng rng(seed ^ 0xfeed);
      const size_t queries = std::max<size_t>(1, config.queries / 4);
      for (size_t q = 0; q < queries; ++q) {
        const LinearScorer scorer = RandomPreferenceScorer(dims, &rng);
        const TopKQuery query{&scorer, 10};
        acc[0].Add(e_midas.Run({.initiator = midas.RandomPeer(&rng),
                                .query = query,
                                .ripple = RippleParam::Slow()})
                       .stats);
        acc[1].Add(e_chord.Run({.initiator = chord.RandomPeer(&rng),
                                .query = query,
                                .ripple = RippleParam::Slow()})
                       .stats);
      }
    }
    xs.push_back(std::to_string(n));
    for (int i = 0; i < 2; ++i) {
      latency[i].values.push_back(acc[i].MeanLatency());
      congestion[i].values.push_back(acc[i].MeanCongestion());
    }
  }
  PrintPanel("(a) latency (hops)", "network size", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "network size", xs,
             congestion);
  return 0;
}
