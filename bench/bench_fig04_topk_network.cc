// Figure 4: top-k query performance in terms of overlay size (paper §7.2.1).
// NBA dataset, d = 6, k = 10; series: r = 0, Delta/3, 2*Delta/3, Delta.
// Expected shape: latency grows with r (fast lowest, slow highest) and
// scales polylogarithmically; congestion orders the other way around.

#include "bench_common.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Figure 4",
              "top-k vs overlay size (NBA-like, d=6, k=10)");
  Rng data_rng(config.seed * 7919 + 1);
  const TupleVec nba = data::MakeNbaLike(22000, 6, &data_rng);

  std::vector<std::string> xs;
  std::vector<Series> latency(4), congestion(4);
  for (int i = 0; i < 4; ++i) {
    latency[i].name = kTopKVariantNames[i];
    congestion[i].name = kTopKVariantNames[i];
  }
  for (size_t n : config.NetworkSizes()) {
    FourWay point;
    for (size_t net = 0; net < config.nets; ++net) {
      const uint64_t seed = config.seed + 1000 * net + n;
      const MidasOverlay overlay = BuildMidas(n, 6, seed, nba);
      RunTopKFourWay(overlay, 10, config.queries, seed ^ 0x9e37, &point);
    }
    xs.push_back(std::to_string(n));
    for (int i = 0; i < 4; ++i) {
      latency[i].values.push_back(point.acc[i].MeanLatency());
      congestion[i].values.push_back(point.acc[i].MeanCongestion());
    }
    ReportQueryPoint("n=" + std::to_string(n),
                     {kTopKVariantNames, kTopKVariantNames + 4}, point.acc,
                     point.wall, point.prof, 4);
    PrintStatsSummary(
        "n=" + std::to_string(n),
        {kTopKVariantNames, kTopKVariantNames + 4}, point.acc, 4);
  }
  PrintPanel("(a) latency (hops)", "network size", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "network size", xs,
             congestion);
  return 0;
}
