// Ablation A3: measured worst-case latency vs the paper's Lemmas 1-3.
// On a perfect MIDAS tree and a never-pruning policy, the engine's
// latency accounting must hit the analytic values exactly:
//   fast   (Lemma 1): Delta
//   slow   (Lemma 2): 2^Delta - 1
//   ripple (Lemma 3): the recurrence L(d,r) = 1 + L(d+1,r) + L(d+1,r-1).
// Also prints the recurrence's closed forms (the paper's r=1 form; for
// r=2 the recurrence solves to x^3/6 + 5x/6, not the form printed in the
// paper — see EXPERIMENTS.md).

#include <vector>

#include "baselines/naive.h"
#include "bench_common.h"
#include "queries/topk.h"
#include "ripple/engine.h"

using namespace ripple;
using namespace ripple::bench;

namespace {

uint64_t LemmaLatency(int delta, int r, int big_delta) {
  if (delta >= big_delta) return 0;
  if (r == 0) return static_cast<uint64_t>(big_delta - delta);
  uint64_t total = 0;
  for (int l = delta + 1; l <= big_delta; ++l) {
    total += 1 + LemmaLatency(l, r - 1, big_delta);
  }
  return total;
}

MidasOverlay PerfectMidas(int levels) {
  MidasOptions opt;
  opt.dims = 2;
  opt.seed = 7;
  MidasOverlay overlay(opt);
  for (int round = 0; round < levels; ++round) {
    std::vector<Point> centers;
    for (PeerId id : overlay.LivePeers()) {
      centers.push_back(overlay.GetPeer(id).zone.Center());
    }
    for (const Point& c : centers) overlay.JoinAt(c);
  }
  return overlay;
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Ablation A3",
              "engine latency vs Lemmas 1-3 on perfect trees (no pruning)");

  std::vector<std::string> xs;
  std::vector<Series> series(6);
  series[0].name = "fast:meas";
  series[1].name = "fast:lemma";
  series[2].name = "r=2:meas";
  series[3].name = "r=2:lemma";
  series[4].name = "slow:meas";
  series[5].name = "slow:lemma";
  for (int levels = 3; levels <= 9; ++levels) {
    MidasOverlay overlay = PerfectMidas(levels);
    LinearScorer scorer({-1.0, -1.0});
    TopKQuery q{&scorer, 1};
    Engine<MidasOverlay, NaiveTopKPolicy> engine(&overlay,
                                                 NaiveTopKPolicy{});
    Rng rng(13);
    const PeerId initiator = overlay.RandomPeer(&rng);
    xs.push_back("D=" + std::to_string(levels));
    series[0].values.push_back(static_cast<double>(
        engine.Run({.initiator = initiator, .query = q})
            .stats.latency_hops));
    series[1].values.push_back(static_cast<double>(levels));
    series[2].values.push_back(static_cast<double>(
        engine.Run({.initiator = initiator,
                    .query = q,
                    .ripple = RippleParam::Hops(2)})
            .stats.latency_hops));
    series[3].values.push_back(
        static_cast<double>(LemmaLatency(0, 2, levels)));
    series[4].values.push_back(static_cast<double>(
        engine.Run({.initiator = initiator,
                    .query = q,
                    .ripple = RippleParam::Slow()})
            .stats.latency_hops));
    series[5].values.push_back(
        static_cast<double>((uint64_t{1} << levels) - 1));
  }
  PrintPanel("measured vs analytic worst-case latency (hops)",
             "tree depth", xs, series);
  std::printf("\nEvery meas column must equal its lemma column exactly.\n");
  return 0;
}
