// Figure 9: diversification performance in terms of overlay size (paper
// §7.2.3). MIRFLICKR-like dataset, d = 5, k = 10, lambda = 0.5; methods:
// ripple-fast / ripple-slow over MIDAS, streaming baseline over CAN. All
// three walk the same forced greedy trajectory (the paper's fairness
// device), so costs are directly comparable.
// Expected shape: ripple-fast far below baseline on latency; ripple-slow
// lowest congestion; baseline congestion ~ network size per step.

#include "bench_common.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Figure 9",
              "diversification vs overlay size (MIRFLICKR-like, d=5, k=10, "
              "lambda=0.5)");
  Rng data_rng(config.seed * 7919 + 7);
  const size_t tuples_n = std::min<size_t>(config.tuples, 50000);
  const TupleVec flickr = data::MakeMirflickrLike(tuples_n, 5, &data_rng);

  std::vector<std::string> xs;
  std::vector<Series> latency(3), congestion(3);
  for (int i = 0; i < 3; ++i) {
    latency[i].name = kDivMethodNames[i];
    congestion[i].name = kDivMethodNames[i];
  }
  for (size_t n : config.NetworkSizes()) {
    DivPoint point;
    for (size_t net = 0; net < config.nets; ++net) {
      RunDivMethods(n, 5, flickr, 10, 0.5, config.div_queries,
                    config.seed + 1000 * net + n, &point);
    }
    xs.push_back(std::to_string(n));
    for (int i = 0; i < 3; ++i) {
      latency[i].values.push_back(point.acc[i].MeanLatency());
      congestion[i].values.push_back(point.acc[i].MeanCongestion());
    }
    ReportQueryPoint("n=" + std::to_string(n),
                     {kDivMethodNames, kDivMethodNames + 3}, point.acc,
                     point.wall, point.prof, 3);
    PrintStatsSummary(
        "n=" + std::to_string(n),
        {kDivMethodNames, kDivMethodNames + 3}, point.acc, 3);
  }
  PrintPanel("(a) latency (hops)", "network size", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "network size", xs,
             congestion);
  return 0;
}
