// Figure 6: top-k query performance in terms of result size (paper §7.2.1).
// NBA dataset, d = 6, k = 10..100, default overlay size.
// Expected shape: latency and congestion grow with k (more peers hold
// contributing tuples).

#include "bench_common.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Figure 6",
              "top-k vs result size k (NBA-like, d=6, default overlay)");
  Rng data_rng(config.seed * 7919 + 3);
  const TupleVec nba = data::MakeNbaLike(22000, 6, &data_rng);
  const size_t n = config.DefaultNetworkSize();

  std::vector<std::string> xs;
  std::vector<Series> latency(4), congestion(4);
  for (int i = 0; i < 4; ++i) {
    latency[i].name = kTopKVariantNames[i];
    congestion[i].name = kTopKVariantNames[i];
  }
  // One overlay per net, reused across the k sweep (k is query-side).
  std::vector<MidasOverlay> overlays;
  for (size_t net = 0; net < config.nets; ++net) {
    overlays.push_back(BuildMidas(n, 6, config.seed + 1000 * net, nba));
  }
  for (size_t k = 10; k <= 100; k += 10) {
    FourWay point;
    for (size_t net = 0; net < config.nets; ++net) {
      RunTopKFourWay(overlays[net], k, config.queries,
                     config.seed + k * 31 + net, &point);
    }
    xs.push_back(std::to_string(k));
    for (int i = 0; i < 4; ++i) {
      latency[i].values.push_back(point.acc[i].MeanLatency());
      congestion[i].values.push_back(point.acc[i].MeanCongestion());
    }
    ReportQueryPoint("k=" + std::to_string(k),
                     {kTopKVariantNames, kTopKVariantNames + 4}, point.acc,
                     point.wall, point.prof, 4);
    PrintStatsSummary(
        "k=" + std::to_string(k),
        {kTopKVariantNames, kTopKVariantNames + 4}, point.acc, 4);
  }
  PrintPanel("(a) latency (hops)", "result size k", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "result size k", xs,
             congestion);
  return 0;
}
