// Figure 7: skyline computation in terms of overlay size (paper §7.2.2).
// NBA dataset, d = 6; methods: ripple-fast / ripple-slow over MIDAS (with
// the §5.2 optimization), DSL over CAN, SSP over BATON.
// Expected shape: ripple-fast fastest; ripple-slow lowest congestion; DSL
// slowest (strictly adjacent forwarding); SSP in between with Z-curve
// false positives.

#include "bench_common.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Figure 7",
              "skyline vs overlay size (NBA-like, d=6)");
  Rng data_rng(config.seed * 7919 + 5);
  const TupleVec nba = data::MakeNbaLike(22000, 6, &data_rng);
  const size_t queries = std::max<size_t>(1, config.queries / 4);

  std::vector<std::string> xs;
  std::vector<Series> latency(4), congestion(4);
  for (int i = 0; i < 4; ++i) {
    latency[i].name = kSkylineMethodNames[i];
    congestion[i].name = kSkylineMethodNames[i];
  }
  for (size_t n : config.NetworkSizes()) {
    SkylinePoint point;
    for (size_t net = 0; net < config.nets; ++net) {
      RunSkylineMethods(n, 6, nba, queries,
                        config.seed + 1000 * net + n, &point);
    }
    xs.push_back(std::to_string(n));
    for (int i = 0; i < 4; ++i) {
      latency[i].values.push_back(point.acc[i].MeanLatency());
      congestion[i].values.push_back(point.acc[i].MeanCongestion());
    }
    ReportQueryPoint("n=" + std::to_string(n),
                     {kSkylineMethodNames, kSkylineMethodNames + 4},
                     point.acc, point.wall, point.prof, 4);
    PrintStatsSummary(
        "n=" + std::to_string(n),
        {kSkylineMethodNames, kSkylineMethodNames + 4}, point.acc, 4);
  }
  PrintPanel("(a) latency (hops)", "network size", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "network size", xs,
             congestion);
  return 0;
}
