// Ablation A6: the paper's dynamic topology methodology (§7.1). The
// network grows from its minimum to its maximum size (increasing stage),
// then shrinks back (decreasing stage); top-k cost is measured at matched
// snapshot sizes in both directions. The paper reports the decreasing
// stage to be "analogous" to the increasing one — this bench makes that
// claim checkable: paired columns should be close at every size.

#include "bench_common.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"

using namespace ripple;
using namespace ripple::bench;

namespace {

void Measure(const MidasOverlay& overlay, size_t queries, uint64_t seed,
             StatsAccumulator* latency_acc) {
  Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  Rng rng(seed);
  for (size_t q = 0; q < queries; ++q) {
    const LinearScorer scorer = RandomPreferenceScorer(overlay.dims(), &rng);
    const TopKQuery query{&scorer, 10};
    latency_acc->Add(
        SeededTopK(overlay, engine, overlay.RandomPeer(&rng), query, 0)
            .stats);
  }
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Ablation A6",
              "top-k cost in the increasing vs decreasing churn stage "
              "(NBA-like, d=6, k=10, ripple-fast)");
  Rng data_rng(config.seed * 7919 + 29);
  const TupleVec nba = data::MakeNbaLike(22000, 6, &data_rng);

  const std::vector<size_t> sizes = config.NetworkSizes();
  std::vector<StatsAccumulator> up(sizes.size()), down(sizes.size());

  for (size_t net = 0; net < config.nets; ++net) {
    MidasOptions opt;
    opt.dims = 6;
    opt.seed = config.seed + net * 131;
    opt.split_rule = MidasSplitRule::kDataMedian;
    MidasOverlay overlay(opt);
    for (const Tuple& t : nba) overlay.InsertTuple(t);
    // Increasing stage: snapshot at every size on the way up.
    for (size_t i = 0; i < sizes.size(); ++i) {
      while (overlay.NumPeers() < sizes[i]) overlay.Join();
      Measure(overlay, config.queries, opt.seed ^ (i * 7 + 1), &up[i]);
    }
    // Decreasing stage: snapshot at every size on the way down.
    Rng churn(opt.seed ^ 0xdead);
    for (size_t i = sizes.size(); i-- > 0;) {
      while (overlay.NumPeers() > sizes[i]) {
        if (!overlay.LeaveRandom(&churn).ok()) break;
      }
      Measure(overlay, config.queries, opt.seed ^ (i * 7 + 2), &down[i]);
    }
  }

  std::vector<std::string> xs;
  std::vector<Series> latency(2), congestion(2);
  latency[0].name = congestion[0].name = "increasing";
  latency[1].name = congestion[1].name = "decreasing";
  for (size_t i = 0; i < sizes.size(); ++i) {
    xs.push_back(std::to_string(sizes[i]));
    latency[0].values.push_back(up[i].MeanLatency());
    latency[1].values.push_back(down[i].MeanLatency());
    congestion[0].values.push_back(up[i].MeanCongestion());
    congestion[1].values.push_back(down[i].MeanCongestion());
  }
  PrintPanel("(a) latency (hops)", "network size", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "network size", xs,
             congestion);
  return 0;
}
