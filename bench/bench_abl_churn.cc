// Ablation A6: the paper's dynamic topology methodology (§7.1), in two
// regimes (see EXPERIMENTS.md for the semantics split):
//
//  * Between-query churn, panels (a)-(b): the network grows from its
//    minimum to its maximum size (increasing stage), then shrinks back
//    (decreasing stage); top-k cost is measured at matched snapshot sizes
//    in both directions, each query running on a quiescent topology. The
//    paper reports the decreasing stage to be "analogous" to the
//    increasing one — the paired columns make that claim checkable.
//
//  * Mid-query churn, panel (c): peers crash *while a query is in
//    flight*, via the fault layer's deterministic crash schedule hooked
//    into the event simulator — a crashed peer goes silent mid-protocol
//    and its requester must time out, retry and eventually give the
//    subtree up. This is the regime the snapshot methodology cannot see.

#include "bench_common.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"
#include "sim/async_engine.h"

using namespace ripple;
using namespace ripple::bench;

namespace {

void Measure(const MidasOverlay& overlay, size_t queries, uint64_t seed,
             StatsAccumulator* latency_acc) {
  Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  Rng rng(seed);
  for (size_t q = 0; q < queries; ++q) {
    const LinearScorer scorer = RandomPreferenceScorer(overlay.dims(), &rng);
    const TopKQuery query{&scorer, 10};
    latency_acc->Add(SeededTopK(overlay, engine,
                                {.initiator = overlay.RandomPeer(&rng),
                                 .query = query})
                         .stats);
  }
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Ablation A6",
              "top-k cost in the increasing vs decreasing churn stage "
              "(NBA-like, d=6, k=10, ripple-fast)");
  Rng data_rng(config.seed * 7919 + 29);
  const TupleVec nba = data::MakeNbaLike(22000, 6, &data_rng);

  const std::vector<size_t> sizes = config.NetworkSizes();
  std::vector<StatsAccumulator> up(sizes.size()), down(sizes.size());

  for (size_t net = 0; net < config.nets; ++net) {
    MidasOptions opt;
    opt.dims = 6;
    opt.seed = config.seed + net * 131;
    opt.split_rule = MidasSplitRule::kDataMedian;
    MidasOverlay overlay(opt);
    for (const Tuple& t : nba) overlay.InsertTuple(t);
    // Increasing stage: snapshot at every size on the way up.
    for (size_t i = 0; i < sizes.size(); ++i) {
      while (overlay.NumPeers() < sizes[i]) overlay.Join();
      Measure(overlay, config.queries, opt.seed ^ (i * 7 + 1), &up[i]);
    }
    // Decreasing stage: snapshot at every size on the way down.
    Rng churn(opt.seed ^ 0xdead);
    for (size_t i = sizes.size(); i-- > 0;) {
      while (overlay.NumPeers() > sizes[i]) {
        if (!overlay.LeaveRandom(&churn).ok()) break;
      }
      Measure(overlay, config.queries, opt.seed ^ (i * 7 + 2), &down[i]);
    }
  }

  std::vector<std::string> xs;
  std::vector<Series> latency(2), congestion(2);
  latency[0].name = congestion[0].name = "increasing";
  latency[1].name = congestion[1].name = "decreasing";
  for (size_t i = 0; i < sizes.size(); ++i) {
    xs.push_back(std::to_string(sizes[i]));
    latency[0].values.push_back(up[i].MeanLatency());
    latency[1].values.push_back(down[i].MeanLatency());
    congestion[0].values.push_back(up[i].MeanCongestion());
    congestion[1].values.push_back(down[i].MeanCongestion());
  }
  PrintPanel("(a) latency (hops)", "network size", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "network size", xs,
             congestion);

  // Panel (c): mid-query churn. Crashes are drawn per peer from the fault
  // seed and fire during the simulated run; the crash window is sized to
  // the query lifetime so most drawn crashes actually interrupt it.
  {
    const size_t n = std::min(config.DefaultNetworkSize(), size_t{4096});
    const double rates[4] = {0.0, 0.005, 0.01, 0.02};
    std::vector<std::string> churn_xs;
    std::vector<Series> mid(4);
    mid[0].name = "time(unit)";
    mid[1].name = "unreachable";
    mid[2].name = "retries";
    mid[3].name = "complete%";
    for (double rate : rates) {
      double time_sum = 0, unreachable = 0, retries = 0, complete = 0;
      size_t samples = 0;
      for (size_t net = 0; net < config.nets; ++net) {
        const uint64_t seed = config.seed + net * 131 + n;
        const MidasOverlay overlay = BuildMidas(n, 6, seed, nba);
        AsyncEngine<MidasOverlay, TopKPolicy> async(&overlay, TopKPolicy{});
        Rng rng(seed ^ 0xc4a5);
        const size_t queries = std::max<size_t>(1, config.queries / 4);
        for (size_t q = 0; q < queries; ++q) {
          const LinearScorer scorer = RandomPreferenceScorer(6, &rng);
          const TopKQuery query{&scorer, 10};
          const QueryRequest<TopKPolicy> request{
              .initiator = overlay.RandomPeer(&rng),
              .query = query,
              .fault = {.crash_rate = rate,
                        .crash_window = 32.0,
                        .seed = seed + q}};
          const auto result = async.Run(request);
          time_sum += result.completion_time;
          unreachable +=
              static_cast<double>(result.coverage.unreachable_peers.size());
          retries += static_cast<double>(result.coverage.retries);
          complete += result.complete ? 1.0 : 0.0;
          ++samples;
        }
      }
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.1f%%", rate * 100.0);
      churn_xs.push_back(buf);
      const double d = static_cast<double>(samples);
      mid[0].values.push_back(time_sum / d);
      mid[1].values.push_back(unreachable / d);
      mid[2].values.push_back(retries / d);
      mid[3].values.push_back(100.0 * complete / d);
    }
    PrintPanel("(c) mid-query crashes (ripple-fast, n=" + std::to_string(n) +
                   ")",
               "crash rate", churn_xs, mid);
  }
  return 0;
}
