// Observability overhead: the same seeded top-k workload run twice over
// one MIDAS overlay — once bare, once with a sampled trace mirrored into
// per-peer journals (the docs/OBSERVABILITY.md wire-tracing pipeline at
// its most expensive setting: every query sampled). Not a figure of the
// paper; it gates the cost of this repo's own instrumentation.
//
// Deterministic metrics (messages, answer tuples, span and journal-event
// counts) are seed-stable and gated against baseline like any other
// bench. Wall clock is informational as usual, EXCEPT the ceiling: the
// overhead case emits `wall_ceiling_traced_ms_mean` next to the measured
// `wall_traced_ms_mean`, and tools/bench_check.py fails the gate when the
// traced wall clock sits above its ceiling. The ceiling is derived from
// the untraced wall clock measured on the same machine in the same run
// (2.5x + 1ms slack), so it gates the overhead RATIO of tracing, not
// absolute machine speed — a journal hot path regression fails the gate
// on any hardware; a slow machine does not.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_common.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"

using namespace ripple;
using namespace ripple::bench;

namespace {

struct ModeResult {
  double wall_ms_total = 0;
  uint64_t messages = 0;
  uint64_t answers = 0;
};

// One full pass over the workload; `tracer`/`journal` null = bare mode.
ModeResult RunWorkload(const MidasOverlay& overlay, size_t queries, int dims,
                       uint64_t seed, obs::Tracer* tracer,
                       obs::JournalSet* journal) {
  ModeResult out;
  Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  if (tracer != nullptr) engine.SetTracer(tracer);
  if (journal != nullptr) engine.SetJournal(journal);
  Rng rng(seed);
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t q = 0; q < queries; ++q) {
    LinearScorer scorer = RandomPreferenceScorer(dims, &rng);
    QueryRequest<TopKPolicy> req;
    req.initiator = overlay.RandomPeer(&rng);
    req.query = TopKQuery{&scorer, 16};
    req.ripple = RippleParam::Fast();
    // Head-based sampling decision at the initiator: every query sampled
    // (worst case for overhead), odd ids so 0 never collides with
    // "unsampled".
    if (tracer != nullptr) req.trace_id = (seed << 16) + q * 2 + 1;
    const auto result = SeededTopK(overlay, engine, req);
    out.messages += result.stats.messages;
    out.answers += result.answer.size();
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms_total =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Figure O",
              "wall-clock overhead of wire tracing + per-peer journals");

  const size_t peers = config.DefaultNetworkSize();
  const int dims = 4;
  Rng data_rng(config.seed * 7919 + 11);
  const TupleVec tuples =
      data::MakeUniform(std::min<size_t>(config.tuples, 50000), dims,
                        &data_rng);
  const MidasOverlay overlay = BuildMidas(peers, dims, config.seed, tuples);
  const size_t queries = config.queries;

  // Best-of-3 per mode to shave scheduler noise; the two modes run the
  // byte-identical query sequence (same Rng stream), so their
  // deterministic outputs must agree.
  constexpr int kReps = 3;
  double bare_ms = std::numeric_limits<double>::infinity();
  double traced_ms = std::numeric_limits<double>::infinity();
  ModeResult bare, traced;
  uint64_t spans = 0, journal_events = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    bare = RunWorkload(overlay, queries, dims, config.seed, nullptr, nullptr);
    bare_ms = std::min(bare_ms, bare.wall_ms_total);
  }
  for (int rep = 0; rep < kReps; ++rep) {
    obs::Tracer tracer;
    obs::JournalSet journal;
    traced = RunWorkload(overlay, queries, dims, config.seed, &tracer,
                         &journal);
    traced_ms = std::min(traced_ms, traced.wall_ms_total);
    spans = tracer.span_count();
    journal_events = journal.TotalEvents();
  }

  const double bare_mean = bare_ms / static_cast<double>(queries);
  const double traced_mean = traced_ms / static_cast<double>(queries);
  const double ceiling_mean = 2.5 * bare_mean + 1.0;

  const std::string case_id = "obs/overhead";
  // Deterministic: identical across machines and across the two modes.
  Reporter().AddMetric(case_id, "messages",
                       static_cast<double>(bare.messages));
  Reporter().AddMetric(case_id, "messages_traced",
                       static_cast<double>(traced.messages));
  Reporter().AddMetric(case_id, "answer_tuples",
                       static_cast<double>(bare.answers));
  Reporter().AddMetric(case_id, "trace_spans", static_cast<double>(spans));
  Reporter().AddMetric(case_id, "journal_events",
                       static_cast<double>(journal_events));
  // Wall clock: informational, except the ceiling rule pins
  // wall_traced_ms_mean <= wall_ceiling_traced_ms_mean.
  Reporter().AddMetric(case_id, "wall_ms_mean", bare_mean);
  Reporter().AddMetric(case_id, "wall_traced_ms_mean", traced_mean);
  Reporter().AddMetric(case_id, "wall_ceiling_traced_ms_mean", ceiling_mean);
  Reporter().AddMetric(case_id, "wall_overhead_ratio",
                       bare_mean > 0 ? traced_mean / bare_mean : 0.0);

  std::printf(
      "  %zu queries over n=%zu: bare %.4f ms/query, traced %.4f ms/query "
      "(%.2fx, ceiling %.4f)\n"
      "  trace: %llu spans, %llu journal events\n",
      queries, peers, bare_mean, traced_mean,
      bare_mean > 0 ? traced_mean / bare_mean : 0.0, ceiling_mean,
      static_cast<unsigned long long>(spans),
      static_cast<unsigned long long>(journal_events));
  if (bare.messages != traced.messages || bare.answers != traced.answers) {
    std::fprintf(stderr,
                 "bench_fig_obs_overhead: tracing changed the workload "
                 "(messages %llu vs %llu, answers %llu vs %llu)\n",
                 static_cast<unsigned long long>(bare.messages),
                 static_cast<unsigned long long>(traced.messages),
                 static_cast<unsigned long long>(bare.answers),
                 static_cast<unsigned long long>(traced.answers));
    return 1;
  }
  return 0;
}
