// Micro-benchmarks (google-benchmark) for the per-peer kernels every
// distributed query run is built from: local skyline computation, k-d
// index top-k / argmin, Z-order encode/decompose, phi evaluation,
// MIDAS overlay maintenance, SoA-vs-scalar kernel pairs swept over
// dimensionality and score-series shape, and wire frame encode/decode.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "data/datasets.h"
#include "geom/zorder.h"
#include "net/envelope.h"
#include "overlay/midas/midas.h"
#include "queries/diversify.h"
#include "queries/topk.h"
#include "ripple/wire_codec.h"
#include "store/kd_index.h"
#include "store/local_algos.h"

namespace ripple {
namespace {

TupleVec MakeTuples(size_t n, int dims, uint64_t seed) {
  Rng rng(seed);
  return data::MakeUniform(n, dims, &rng);
}

// Score-series shapes for the SoA-vs-scalar sweep: 0 = increasing (every
// row admits into the top-k queue), 1 = decreasing (only the first k
// admit), 2 = random (expected case).
std::vector<double> SweepWeights(int dims) {
  Rng rng(41 + static_cast<uint64_t>(dims));
  std::vector<double> w(dims);
  for (double& x : w) x = -rng.UniformDouble();
  return w;
}

TupleVec ShapedTuples(size_t n, int dims, int series, const Scorer& scorer,
                      uint64_t seed) {
  TupleVec out = MakeTuples(n, dims, seed);
  if (series == 2) return out;
  std::stable_sort(out.begin(), out.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     return scorer.Score(a.key) < scorer.Score(b.key);
                   });
  if (series == 1) std::reverse(out.begin(), out.end());
  return out;
}

void BM_ComputeSkyline(benchmark::State& state) {
  const TupleVec tuples =
      MakeTuples(static_cast<size_t>(state.range(0)), 4, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSkyline(tuples));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeSkyline)->Arg(128)->Arg(1024)->Arg(8192);

void BM_KdIndexBuild(benchmark::State& state) {
  const TupleVec tuples =
      MakeTuples(static_cast<size_t>(state.range(0)), 4, 13);
  for (auto _ : state) {
    KdIndex idx(tuples);
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdIndexBuild)->Arg(256)->Arg(4096);

void BM_KdIndexTopK(benchmark::State& state) {
  const TupleVec tuples =
      MakeTuples(static_cast<size_t>(state.range(0)), 4, 17);
  KdIndex idx(tuples);
  LinearScorer scorer({-0.4, -0.3, -0.2, -0.1});
  auto score = [&](const Point& p) { return scorer.Score(p); };
  auto upper = [&](const Rect& r) { return scorer.UpperBound(r); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.TopK(score, upper, 10));
  }
}
BENCHMARK(BM_KdIndexTopK)->Arg(1024)->Arg(16384);

void BM_KdIndexArgMinPhi(benchmark::State& state) {
  const TupleVec tuples = MakeTuples(4096, 5, 19);
  KdIndex idx(tuples);
  const DivQuery q = MakeDivQuery(
      DiversifyObjective{Point{0.4, 0.4, 0.4, 0.4, 0.4}, 0.5, Norm::kL1},
      TupleVec(tuples.begin(), tuples.begin() + state.range(0)));
  auto cost = [&](const Point& p) { return q.Phi(p); };
  auto lower = [&](const Rect& r) { return q.PhiLowerBound(r); };
  auto admit = [&](const Tuple& t) { return !q.IsExcluded(t.id); };
  for (auto _ : state) {
    double best = 0;
    benchmark::DoNotOptimize(idx.ArgMin(cost, lower, admit, &best));
  }
}
BENCHMARK(BM_KdIndexArgMinPhi)->Arg(2)->Arg(10)->Arg(50);

void BM_ZOrderEncode(benchmark::State& state) {
  ZOrder z(5, Rect::Unit(5));
  Rng rng(23);
  Point p{0.1, 0.9, 0.4, 0.6, 0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.Encode(p));
  }
}
BENCHMARK(BM_ZOrderEncode);

void BM_ZOrderDecompose(benchmark::State& state) {
  ZOrder z(3, Rect::Unit(3));
  const uint64_t n = z.key_space_size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.DecomposeInterval(n / 7, 5 * n / 7));
  }
}
BENCHMARK(BM_ZOrderDecompose);

void BM_MidasJoin(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    MidasOptions opt;
    opt.dims = 4;
    opt.seed = 29;
    MidasOverlay overlay(opt);
    state.ResumeTiming();
    while (overlay.NumPeers() < static_cast<size_t>(state.range(0))) {
      overlay.Join();
    }
    benchmark::DoNotOptimize(overlay.NumPeers());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MidasJoin)->Arg(1024)->Arg(8192);

// --- SoA kernels vs scalar oracles: dims x series sweep -------------------
// Args: {dims, series} with dims in {2,4,8,10}, series 0/1/2 as above.

void BM_SelectTopKSoA(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const int series = static_cast<int>(state.range(1));
  const LinearScorer scorer(SweepWeights(dims));
  const TupleVec tuples = ShapedTuples(4096, dims, series, scorer, 43);
  auto score = [&](const Point& p) { return scorer.Score(p); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectTopK(tuples, score, 16));
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
}

void BM_SelectTopKScalar(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const int series = static_cast<int>(state.range(1));
  const LinearScorer scorer(SweepWeights(dims));
  const TupleVec tuples = ShapedTuples(4096, dims, series, scorer, 43);
  auto score = [&](const Point& p) { return scorer.Score(p); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectTopKScalar(tuples, score, 16));
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
}

void BM_ComputeSkylineSoA(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const int series = static_cast<int>(state.range(1));
  const LinearScorer scorer(SweepWeights(dims));
  const TupleVec tuples = ShapedTuples(2048, dims, series, scorer, 47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSkyline(tuples));
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
}

void BM_ComputeSkylineScalar(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const int series = static_cast<int>(state.range(1));
  const LinearScorer scorer(SweepWeights(dims));
  const TupleVec tuples = ShapedTuples(2048, dims, series, scorer, 47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSkylineScalar(tuples));
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
}

void SweepArgs(benchmark::internal::Benchmark* b) {
  for (int dims : {2, 4, 8, 10}) {
    for (int series : {0, 1, 2}) b->Args({dims, series});
  }
}
BENCHMARK(BM_SelectTopKSoA)->Apply(SweepArgs);
BENCHMARK(BM_SelectTopKScalar)->Apply(SweepArgs);
BENCHMARK(BM_ComputeSkylineSoA)->Apply(SweepArgs);
BENCHMARK(BM_ComputeSkylineScalar)->Apply(SweepArgs);

// --- Wire frame encode/decode ---------------------------------------------
// One query frame plus one answer frame carrying state.range(0) tuples —
// the datagrams every hop of a distributed top-k run exchanges.

void BM_FrameEncode(benchmark::State& state) {
  MidasOptions opt;
  opt.dims = 4;
  opt.seed = 53;
  MidasOverlay overlay(opt);
  for (int i = 0; i < 15; ++i) overlay.Join();
  const TopKPolicy policy;
  const WireCodec<MidasOverlay, TopKPolicy> codec(&overlay, &policy);
  const LinearScorer scorer({-0.4, -0.3, -0.2, -0.1});
  const TopKQuery q{&scorer, 16, 0.0};
  const TopKState g{4, 0.5};
  const TupleVec answer =
      MakeTuples(static_cast<size_t>(state.range(0)), 4, 59);
  const net::Envelope qenv{7, 1, 2, net::MessageKind::kQuery, 0};
  const net::Envelope aenv{7, 2, 1, net::MessageKind::kAnswer, 0};
  wire::Buffer buf;
  size_t bytes = 0;
  for (auto _ : state) {
    buf.Clear();
    bytes = codec.EncodeQueryMessage(qenv, q, g, overlay.FullArea(), 3, &buf);
    bytes += codec.EncodeAnswerMessage(aenv, answer, &buf);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_FrameEncode)->Arg(16)->Arg(256);

void BM_FrameDecode(benchmark::State& state) {
  MidasOptions opt;
  opt.dims = 4;
  opt.seed = 53;
  MidasOverlay overlay(opt);
  for (int i = 0; i < 15; ++i) overlay.Join();
  const TopKPolicy policy;
  const WireCodec<MidasOverlay, TopKPolicy> codec(&overlay, &policy);
  const LinearScorer scorer({-0.4, -0.3, -0.2, -0.1});
  const TopKQuery q{&scorer, 16, 0.0};
  const TopKState g{4, 0.5};
  const TupleVec answer =
      MakeTuples(static_cast<size_t>(state.range(0)), 4, 59);
  wire::Buffer qbuf;
  codec.EncodeQueryMessage({7, 1, 2, net::MessageKind::kQuery, 0}, q, g,
                           overlay.FullArea(), 3, &qbuf);
  wire::Buffer abuf;
  codec.EncodeAnswerMessage({7, 2, 1, net::MessageKind::kAnswer, 0}, answer,
                            &abuf);
  for (auto _ : state) {
    wire::Reader qr(qbuf.bytes());
    net::Envelope env;
    TopKQuery qd{};
    TopKState gd{};
    MidasOverlay::Area area;
    int64_t hops = 0;
    bool ok = net::DecodeEnvelopeFrame(&qr, &env) &&
              codec.DecodeQueryPayload(&qr, &qd, &gd, &area, &hops);
    wire::Reader ar(abuf.bytes());
    TupleVec ad;
    ok = ok && net::DecodeEnvelopeFrame(&ar, &env) &&
         codec.DecodeAnswerPayload(&ar, &ad);
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<int64_t>(qbuf.size() + abuf.size()));
}
BENCHMARK(BM_FrameDecode)->Arg(16)->Arg(256);

void BM_MidasRoute(benchmark::State& state) {
  MidasOptions opt;
  opt.dims = 4;
  opt.seed = 31;
  MidasOverlay overlay(opt);
  while (overlay.NumPeers() < 8192) overlay.Join();
  Rng rng(37);
  const auto live = overlay.LivePeers();
  for (auto _ : state) {
    Point p{rng.UniformDouble(), rng.UniformDouble(), rng.UniformDouble(),
            rng.UniformDouble()};
    uint64_t hops = 0;
    benchmark::DoNotOptimize(
        overlay.RouteFrom(live[rng.UniformU64(live.size())], p, &hops));
  }
}
BENCHMARK(BM_MidasRoute);

}  // namespace
}  // namespace ripple

BENCHMARK_MAIN();
