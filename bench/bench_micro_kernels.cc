// Micro-benchmarks (google-benchmark) for the per-peer kernels every
// distributed query run is built from: local skyline computation, k-d
// index top-k / argmin, Z-order encode/decompose, phi evaluation, and
// MIDAS overlay maintenance.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "data/datasets.h"
#include "geom/zorder.h"
#include "overlay/midas/midas.h"
#include "queries/diversify.h"
#include "store/kd_index.h"
#include "store/local_algos.h"

namespace ripple {
namespace {

TupleVec MakeTuples(size_t n, int dims, uint64_t seed) {
  Rng rng(seed);
  return data::MakeUniform(n, dims, &rng);
}

void BM_ComputeSkyline(benchmark::State& state) {
  const TupleVec tuples =
      MakeTuples(static_cast<size_t>(state.range(0)), 4, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSkyline(tuples));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeSkyline)->Arg(128)->Arg(1024)->Arg(8192);

void BM_KdIndexBuild(benchmark::State& state) {
  const TupleVec tuples =
      MakeTuples(static_cast<size_t>(state.range(0)), 4, 13);
  for (auto _ : state) {
    KdIndex idx(tuples);
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdIndexBuild)->Arg(256)->Arg(4096);

void BM_KdIndexTopK(benchmark::State& state) {
  const TupleVec tuples =
      MakeTuples(static_cast<size_t>(state.range(0)), 4, 17);
  KdIndex idx(tuples);
  LinearScorer scorer({-0.4, -0.3, -0.2, -0.1});
  auto score = [&](const Point& p) { return scorer.Score(p); };
  auto upper = [&](const Rect& r) { return scorer.UpperBound(r); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.TopK(score, upper, 10));
  }
}
BENCHMARK(BM_KdIndexTopK)->Arg(1024)->Arg(16384);

void BM_KdIndexArgMinPhi(benchmark::State& state) {
  const TupleVec tuples = MakeTuples(4096, 5, 19);
  KdIndex idx(tuples);
  const DivQuery q = MakeDivQuery(
      DiversifyObjective{Point{0.4, 0.4, 0.4, 0.4, 0.4}, 0.5, Norm::kL1},
      TupleVec(tuples.begin(), tuples.begin() + state.range(0)));
  auto cost = [&](const Point& p) { return q.Phi(p); };
  auto lower = [&](const Rect& r) { return q.PhiLowerBound(r); };
  auto admit = [&](const Tuple& t) { return !q.IsExcluded(t.id); };
  for (auto _ : state) {
    double best = 0;
    benchmark::DoNotOptimize(idx.ArgMin(cost, lower, admit, &best));
  }
}
BENCHMARK(BM_KdIndexArgMinPhi)->Arg(2)->Arg(10)->Arg(50);

void BM_ZOrderEncode(benchmark::State& state) {
  ZOrder z(5, Rect::Unit(5));
  Rng rng(23);
  Point p{0.1, 0.9, 0.4, 0.6, 0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.Encode(p));
  }
}
BENCHMARK(BM_ZOrderEncode);

void BM_ZOrderDecompose(benchmark::State& state) {
  ZOrder z(3, Rect::Unit(3));
  const uint64_t n = z.key_space_size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.DecomposeInterval(n / 7, 5 * n / 7));
  }
}
BENCHMARK(BM_ZOrderDecompose);

void BM_MidasJoin(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    MidasOptions opt;
    opt.dims = 4;
    opt.seed = 29;
    MidasOverlay overlay(opt);
    state.ResumeTiming();
    while (overlay.NumPeers() < static_cast<size_t>(state.range(0))) {
      overlay.Join();
    }
    benchmark::DoNotOptimize(overlay.NumPeers());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MidasJoin)->Arg(1024)->Arg(8192);

void BM_MidasRoute(benchmark::State& state) {
  MidasOptions opt;
  opt.dims = 4;
  opt.seed = 31;
  MidasOverlay overlay(opt);
  while (overlay.NumPeers() < 8192) overlay.Join();
  Rng rng(37);
  const auto live = overlay.LivePeers();
  for (auto _ : state) {
    Point p{rng.UniformDouble(), rng.UniformDouble(), rng.UniformDouble(),
            rng.UniformDouble()};
    uint64_t hops = 0;
    benchmark::DoNotOptimize(
        overlay.RouteFrom(live[rng.UniformU64(live.size())], p, &hops));
  }
}
BENCHMARK(BM_MidasRoute);

}  // namespace
}  // namespace ripple

BENCHMARK_MAIN();
