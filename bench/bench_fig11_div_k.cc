// Figure 11: diversification performance in terms of result size (paper
// §7.2.3). MIRFLICKR-like dataset, k = 10..100, default overlay,
// lambda = 0.5.
// Expected shape: baseline grows steeply with k (k FindBest floods per
// pass); ripple-fast grows mildly — the k-1 member restrictions shrink the
// admissible search area (the paper's "bilateral impact") until processing
// cost dominates at large k.

#include "bench_common.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Figure 11",
              "diversification vs result size k (MIRFLICKR-like, d=5, "
              "lambda=0.5)");
  Rng data_rng(config.seed * 7919 + 11);
  // phi evaluation is O(k) per tuple and the greedy issues O(k) searches
  // per pass, so the k = 100 end is quadratically heavier than Figure 9's
  // default point; this sweep runs on a smaller deployment (scale up via
  // the env knobs).
  const size_t tuples_n = std::min<size_t>(config.tuples, 5000);
  const TupleVec flickr = data::MakeMirflickrLike(tuples_n, 5, &data_rng);
  const size_t n = config.DefaultNetworkSize() / 16;
  const size_t queries = std::max<size_t>(1, config.div_queries / 2);

  std::vector<std::string> xs;
  std::vector<Series> latency(3), congestion(3);
  for (int i = 0; i < 3; ++i) {
    latency[i].name = kDivMethodNames[i];
    congestion[i].name = kDivMethodNames[i];
  }
  for (size_t k = 10; k <= 100; k += 10) {
    DivPoint point;
    for (size_t net = 0; net < config.nets; ++net) {
      RunDivMethods(n, 5, flickr, k, 0.5, queries,
                    config.seed + 1000 * net + k, &point);
    }
    xs.push_back(std::to_string(k));
    for (int i = 0; i < 3; ++i) {
      latency[i].values.push_back(point.acc[i].MeanLatency());
      congestion[i].values.push_back(point.acc[i].MeanCongestion());
    }
    ReportQueryPoint("k=" + std::to_string(k),
                     {kDivMethodNames, kDivMethodNames + 3}, point.acc,
                     point.wall, point.prof, 3);
  }
  PrintPanel("(a) latency (hops)", "result size k", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "result size k", xs,
             congestion);
  return 0;
}
