// Figure 10: diversification performance in terms of dimensionality (paper
// §7.2.3). SYNTH dataset, d = 2..10, default overlay, k = 10, lambda = 0.5.
// Expected shape (the paper plots log axes): RIPPLE wins throughout; the
// baseline's flooding cost dominates at every d.

#include "bench_common.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Figure 10",
              "diversification vs dimensionality (SYNTH, default overlay, "
              "k=10, lambda=0.5)");
  const size_t n = config.DefaultNetworkSize() / 2;
  const size_t tuples_n = std::min<size_t>(config.tuples, 50000);

  std::vector<std::string> xs;
  std::vector<Series> latency(3), congestion(3);
  for (int i = 0; i < 3; ++i) {
    latency[i].name = kDivMethodNames[i];
    congestion[i].name = kDivMethodNames[i];
  }
  for (int dims = 2; dims <= 10; ++dims) {
    DivPoint point;
    for (size_t net = 0; net < config.nets; ++net) {
      const uint64_t seed = config.seed + 1000 * net + dims;
      Rng data_rng(seed * 104729);
      const TupleVec synth = data::MakeByName("synth", tuples_n, dims,
                                              &data_rng);
      RunDivMethods(n, dims, synth, 10, 0.5, config.div_queries, seed,
                    &point);
    }
    xs.push_back(std::to_string(dims));
    for (int i = 0; i < 3; ++i) {
      latency[i].values.push_back(point.acc[i].MeanLatency());
      congestion[i].values.push_back(point.acc[i].MeanCongestion());
    }
    ReportQueryPoint("d=" + std::to_string(dims),
                     {kDivMethodNames, kDivMethodNames + 3}, point.acc,
                     point.wall, point.prof, 3);
  }
  PrintPanel("(a) latency (hops)", "dimensionality", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "dimensionality", xs,
             congestion);
  return 0;
}
