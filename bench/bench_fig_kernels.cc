// Kernel work-profile figure: the per-peer SoA kernels (bounded top-k over
// block-scored columns, column-wise mask dominance) against the retained
// scalar oracles, swept over dimensionality d in {2, 4, 8, 10} and the
// three PISA-style score-series shapes (increasing, decreasing, random).
// Not a figure of the paper — it gates the hot-path refactor itself.
//
// Gating (tools/bench_check.py): every kernel exports machine-independent
// work counters (common/kernel_counters.h) that are exact functions of
// (seed, n, d, k, series), reported under the exact_ prefix so the gate
// allows ZERO drift against the committed baseline:
//   exact_topk_tuples_scanned      rows the top-k scan visited
//   exact_topk_heap_pushes         admissions into the bounded queue
//   exact_skyline_tuples_scanned   skyline candidates examined
//   exact_skyline_dominance_cmps   pair tests by the dominance kernel
//   exact_oracle_mismatch          0 iff SoA results byte-match the oracles
// Wall-clock for the SoA and scalar paths rides along under the
// informational wall_ prefix (the before/after evidence, never gated).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/kernel_counters.h"
#include "store/local_algos.h"

using namespace ripple;
using namespace ripple::bench;

namespace {

constexpr size_t kTopK = 16;
constexpr int kTimedReps = 5;

enum class Shape { kIncreasing, kDecreasing, kRandom };
constexpr Shape kAllSeries[] = {Shape::kIncreasing, Shape::kDecreasing,
                                 Shape::kRandom};

const char* Name(Shape s) {
  switch (s) {
    case Shape::kIncreasing: return "increasing";
    case Shape::kDecreasing: return "decreasing";
    case Shape::kRandom: return "random";
  }
  return "?";
}

/// Rows ordered so the scores SelectTopK consumes arrive in the given
/// series shape — increasing admits every row into the queue (worst case
/// for heap maintenance), decreasing admits only the first k (best case),
/// random is the expected case.
TupleVec ShapedTuples(size_t n, int dims, Shape series,
                      const Scorer& scorer, uint64_t seed) {
  Rng rng(seed);
  TupleVec out = data::MakeUniform(n, dims, &rng);
  if (series == Shape::kRandom) return out;
  std::stable_sort(out.begin(), out.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     return scorer.Score(a.key) < scorer.Score(b.key);
                   });
  if (series == Shape::kDecreasing) std::reverse(out.begin(), out.end());
  return out;
}

bool BitIdentical(const TupleVec& a, const TupleVec& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].key.dims() != b[i].key.dims()) return false;
    for (int d = 0; d < a[i].key.dims(); ++d) {
      const double x = a[i].key[d];
      const double y = b[i].key[d];
      if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

template <typename Fn>
double TimeMs(const Fn& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kTimedReps; ++rep) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() /
         kTimedReps;
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Figure K",
              "per-peer kernel work profile: SoA kernels vs scalar oracles");

  const size_t n = std::min<size_t>(config.tuples, 4096);
  std::printf("  n=%zu k=%zu, d in {2,4,8,10} x 3 series shapes\n", n, kTopK);
  std::printf("  %-22s %12s %12s %14s %12s %12s\n", "case", "soa_topk_ms",
              "sca_topk_ms", "soa_skyline_ms", "sca_sky_ms", "mismatch");

  uint64_t total_mismatches = 0;
  for (int dims : {2, 4, 8, 10}) {
    Rng wrng(config.seed * 131 + static_cast<uint64_t>(dims));
    std::vector<double> weights(dims);
    for (double& w : weights) w = -wrng.UniformDouble();
    const LinearScorer scorer(weights);
    auto score = [&](const Point& p) { return scorer.Score(p); };
    for (Shape series : kAllSeries) {
      const TupleVec tuples = ShapedTuples(
          n, dims, series, scorer,
          config.seed * 977 + static_cast<uint64_t>(dims) * 3 +
              static_cast<uint64_t>(series));
      const std::string case_id = "kernels/d=" + std::to_string(dims) + "/" +
                                  Name(series);

      // One instrumented pass per kernel: the counters are exact
      // functions of the workload, independent of repetition count.
      ResetKernelCounters();
      const TupleVec topk = SelectTopK(tuples, score, kTopK);
      const KernelCounters topk_work = LocalKernelCounters();
      ResetKernelCounters();
      const TupleVec sky = ComputeSkyline(tuples);
      const KernelCounters sky_work = LocalKernelCounters();
      ResetKernelCounters();

      // Byte-identity against the retained scalar oracles.
      uint64_t mismatch = 0;
      if (!BitIdentical(topk, SelectTopKScalar(tuples, score, kTopK))) {
        ++mismatch;
      }
      if (!BitIdentical(sky, ComputeSkylineScalar(tuples))) ++mismatch;
      total_mismatches += mismatch;

      // Wall clock, informational: the SoA-vs-scalar before/after evidence.
      const double soa_topk_ms =
          TimeMs([&] { (void)SelectTopK(tuples, score, kTopK); });
      const double scalar_topk_ms =
          TimeMs([&] { (void)SelectTopKScalar(tuples, score, kTopK); });
      const double soa_sky_ms = TimeMs([&] { (void)ComputeSkyline(tuples); });
      const double scalar_sky_ms =
          TimeMs([&] { (void)ComputeSkylineScalar(tuples); });

      Reporter().AddMetric(case_id, "exact_topk_tuples_scanned",
                           static_cast<double>(topk_work.tuples_scanned));
      Reporter().AddMetric(case_id, "exact_topk_heap_pushes",
                           static_cast<double>(topk_work.heap_pushes));
      Reporter().AddMetric(case_id, "exact_skyline_tuples_scanned",
                           static_cast<double>(sky_work.tuples_scanned));
      Reporter().AddMetric(case_id, "exact_skyline_dominance_cmps",
                           static_cast<double>(sky_work.dominance_cmps));
      Reporter().AddMetric(case_id, "exact_oracle_mismatch",
                           static_cast<double>(mismatch));
      Reporter().AddMetric(case_id, "wall_soa_topk_ms", soa_topk_ms);
      Reporter().AddMetric(case_id, "wall_scalar_topk_ms", scalar_topk_ms);
      Reporter().AddMetric(case_id, "wall_soa_skyline_ms", soa_sky_ms);
      Reporter().AddMetric(case_id, "wall_scalar_skyline_ms", scalar_sky_ms);

      std::printf("  %-22s %12.3f %12.3f %14.3f %12.3f %12llu\n",
                  (std::string("d=") + std::to_string(dims) + "/" +
                   Name(series))
                      .c_str(),
                  soa_topk_ms, scalar_topk_ms, soa_sky_ms, scalar_sky_ms,
                  static_cast<unsigned long long>(mismatch));
    }
  }

  std::printf("  total oracle mismatches: %llu\n",
              static_cast<unsigned long long>(total_mismatches));
  return total_mismatches == 0 ? 0 : 1;
}
