// Figure 8: skyline computation in terms of dimensionality (paper §7.2.2).
// SYNTH dataset, d = 2..10, default overlay size.
// Expected shape: DSL improves with d (CAN neighborhoods grow, routing
// gets richer) while being poor at low d; ripple methods stay moderate;
// congestion is high for all methods at high d (skylines grow).

#include "bench_common.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Figure 8",
              "skyline vs dimensionality (SYNTH, default overlay)");
  const size_t n = config.DefaultNetworkSize();
  const size_t queries = std::max<size_t>(1, config.queries / 4);
  // The anti-correlated growth of skylines makes high-d sweeps heavy;
  // cap the tuple count for this figure.
  const size_t tuples = std::min<size_t>(config.tuples, 50000);

  std::vector<std::string> xs;
  std::vector<Series> latency(4), congestion(4);
  for (int i = 0; i < 4; ++i) {
    latency[i].name = kSkylineMethodNames[i];
    congestion[i].name = kSkylineMethodNames[i];
  }
  for (int dims = 2; dims <= 10; ++dims) {
    SkylinePoint point;
    for (size_t net = 0; net < config.nets; ++net) {
      const uint64_t seed = config.seed + 1000 * net + dims;
      Rng data_rng(seed * 104729);
      const TupleVec synth = data::MakeByName("synth", tuples, dims,
                                              &data_rng);
      RunSkylineMethods(n, dims, synth, queries, seed, &point);
    }
    xs.push_back(std::to_string(dims));
    for (int i = 0; i < 4; ++i) {
      latency[i].values.push_back(point.acc[i].MeanLatency());
      congestion[i].values.push_back(point.acc[i].MeanCongestion());
    }
    ReportQueryPoint("d=" + std::to_string(dims),
                     {kSkylineMethodNames, kSkylineMethodNames + 4},
                     point.acc, point.wall, point.prof, 4);
  }
  PrintPanel("(a) latency (hops)", "dimensionality", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "dimensionality", xs,
             congestion);
  return 0;
}
