// Ablation A7: hop-count accounting vs message-level simulation. The
// recursive engine charges latency the way Lemmas 1-3 do (forward hops
// only); the asynchronous simulator runs the same queries as explicit
// messages with unit link delays, where responses also ride the clock.
// Work (visits, messages) must match exactly; completion time shows what
// an operator would actually wait, under uniform and heterogeneous
// (10x cross-partition) delay models.
//
// Panel (c) arms the fault layer: the same workload under increasing
// message loss, reporting what reliability costs (retransmissions, spent
// timeouts, stretched completion time) and what it buys (fraction of
// queries still answered completely within the retry budget).

#include "bench_common.h"
#include "queries/topk.h"
#include "ripple/engine.h"
#include "sim/async_engine.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Ablation A7",
              "lemma-style hop accounting vs asynchronous message "
              "simulation (NBA-like, d=6, k=10)");
  Rng data_rng(config.seed * 7919 + 31);
  const TupleVec nba = data::MakeNbaLike(22000, 6, &data_rng);

  const char* cols[4] = {"hops(engine)", "time(unit)", "time(wan10x)",
                         "visits"};
  std::vector<std::string> xs;
  std::vector<Series> fast(4), slow(4);
  for (int i = 0; i < 4; ++i) {
    fast[i].name = cols[i];
    slow[i].name = cols[i];
  }
  size_t fault_n = 0;  // largest size the perfect-network sweep reached
  for (size_t n : config.NetworkSizes()) {
    if (n > 4096) break;  // the async run allocates per-session state
    fault_n = n;
    StatsAccumulator hop_f, hop_s;
    double unit_f = 0, unit_s = 0, wan_f = 0, wan_s = 0, vis_f = 0,
           vis_s = 0;
    size_t samples = 0;
    for (size_t net = 0; net < config.nets; ++net) {
      const uint64_t seed = config.seed + net * 151 + n;
      const MidasOverlay overlay = BuildMidas(n, 6, seed, nba);
      Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
      AsyncEngine<MidasOverlay, TopKPolicy> unit(&overlay, TopKPolicy{});
      const PeerId half = static_cast<PeerId>(n / 2);
      AsyncEngine<MidasOverlay, TopKPolicy> wan(
          &overlay, TopKPolicy{}, [half](PeerId a, PeerId b) {
            return ((a < half) != (b < half)) ? 10.0 : 1.0;
          });
      Rng rng(seed ^ 0x777);
      const size_t queries = std::max<size_t>(1, config.queries / 4);
      for (size_t q = 0; q < queries; ++q) {
        const LinearScorer scorer = RandomPreferenceScorer(6, &rng);
        const TopKQuery query{&scorer, 10};
        const PeerId initiator = overlay.RandomPeer(&rng);
        for (const RippleParam ripple :
             {RippleParam::Fast(), RippleParam::Slow()}) {
          const QueryRequest<TopKPolicy> request{
              .initiator = initiator, .query = query, .ripple = ripple};
          const auto sync = engine.Run(request);
          const auto a_unit = unit.Run(request);
          const auto a_wan = wan.Run(request);
          const bool is_fast = ripple.is_fast();
          (is_fast ? hop_f : hop_s).Add(sync.stats);
          (is_fast ? unit_f : unit_s) += a_unit.completion_time;
          (is_fast ? wan_f : wan_s) += a_wan.completion_time;
          (is_fast ? vis_f : vis_s) += a_unit.stats.peers_visited;
        }
        ++samples;
      }
    }
    xs.push_back(std::to_string(n));
    const double d = static_cast<double>(samples);
    fast[0].values.push_back(hop_f.MeanLatency());
    fast[1].values.push_back(unit_f / d);
    fast[2].values.push_back(wan_f / d);
    fast[3].values.push_back(vis_f / d);
    slow[0].values.push_back(hop_s.MeanLatency());
    slow[1].values.push_back(unit_s / d);
    slow[2].values.push_back(wan_s / d);
    slow[3].values.push_back(vis_s / d);
  }
  PrintPanel("(a) ripple-fast", "network size", xs, fast);
  PrintPanel("(b) ripple-slow", "network size", xs, slow);

  // Panel (c): fault sweep at the largest size above, ripple-fast.
  if (fault_n > 0) {
    const double losses[4] = {0.0, 0.01, 0.05, 0.10};
    std::vector<std::string> loss_xs;
    std::vector<Series> faulty(5);
    faulty[0].name = "time(unit)";
    faulty[1].name = "retries";
    faulty[2].name = "timeouts";
    faulty[3].name = "messages";
    faulty[4].name = "complete%";
    for (double loss : losses) {
      double time_sum = 0, retries = 0, timeouts = 0, msgs = 0, complete = 0;
      size_t samples = 0;
      for (size_t net = 0; net < config.nets; ++net) {
        const uint64_t seed = config.seed + net * 151 + fault_n;
        const MidasOverlay overlay = BuildMidas(fault_n, 6, seed, nba);
        AsyncEngine<MidasOverlay, TopKPolicy> async(&overlay, TopKPolicy{});
        Rng rng(seed ^ 0x777);
        const size_t queries = std::max<size_t>(1, config.queries / 4);
        for (size_t q = 0; q < queries; ++q) {
          const LinearScorer scorer = RandomPreferenceScorer(6, &rng);
          const TopKQuery query{&scorer, 10};
          const QueryRequest<TopKPolicy> request{
              .initiator = overlay.RandomPeer(&rng),
              .query = query,
              .ripple = RippleParam::Fast(),
              .fault = {.loss_rate = loss, .seed = seed + q}};
          const auto result = async.Run(request);
          time_sum += result.completion_time;
          retries += static_cast<double>(result.coverage.retries);
          timeouts += static_cast<double>(result.coverage.timeouts);
          msgs += static_cast<double>(result.stats.messages);
          complete += result.complete ? 1.0 : 0.0;
          ++samples;
        }
      }
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.0f%%", loss * 100.0);
      loss_xs.push_back(buf);
      const double d = static_cast<double>(samples);
      faulty[0].values.push_back(time_sum / d);
      faulty[1].values.push_back(retries / d);
      faulty[2].values.push_back(timeouts / d);
      faulty[3].values.push_back(msgs / d);
      faulty[4].values.push_back(100.0 * complete / d);
    }
    PrintPanel("(c) ripple-fast under message loss, n=" +
                   std::to_string(fault_n),
               "loss rate", loss_xs, faulty);
  }
  return 0;
}
