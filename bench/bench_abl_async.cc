// Ablation A7: hop-count accounting vs message-level simulation. The
// recursive engine charges latency the way Lemmas 1-3 do (forward hops
// only); the asynchronous simulator runs the same queries as explicit
// messages with unit link delays, where responses also ride the clock.
// Work (visits, messages) must match exactly; completion time shows what
// an operator would actually wait, under uniform and heterogeneous
// (10x cross-partition) delay models.

#include "bench_common.h"
#include "queries/topk.h"
#include "ripple/engine.h"
#include "sim/async_engine.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Ablation A7",
              "lemma-style hop accounting vs asynchronous message "
              "simulation (NBA-like, d=6, k=10)");
  Rng data_rng(config.seed * 7919 + 31);
  const TupleVec nba = data::MakeNbaLike(22000, 6, &data_rng);

  const char* cols[4] = {"hops(engine)", "time(unit)", "time(wan10x)",
                         "visits"};
  std::vector<std::string> xs;
  std::vector<Series> fast(4), slow(4);
  for (int i = 0; i < 4; ++i) {
    fast[i].name = cols[i];
    slow[i].name = cols[i];
  }
  for (size_t n : config.NetworkSizes()) {
    if (n > 4096) break;  // the async run allocates per-session state
    StatsAccumulator hop_f, hop_s;
    double unit_f = 0, unit_s = 0, wan_f = 0, wan_s = 0, vis_f = 0,
           vis_s = 0;
    size_t samples = 0;
    for (size_t net = 0; net < config.nets; ++net) {
      const uint64_t seed = config.seed + net * 151 + n;
      const MidasOverlay overlay = BuildMidas(n, 6, seed, nba);
      Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
      AsyncEngine<MidasOverlay, TopKPolicy> unit(&overlay, TopKPolicy{});
      const PeerId half = static_cast<PeerId>(n / 2);
      AsyncEngine<MidasOverlay, TopKPolicy> wan(
          &overlay, TopKPolicy{}, [half](PeerId a, PeerId b) {
            return ((a < half) != (b < half)) ? 10.0 : 1.0;
          });
      Rng rng(seed ^ 0x777);
      const size_t queries = std::max<size_t>(1, config.queries / 4);
      for (size_t q = 0; q < queries; ++q) {
        const LinearScorer scorer = RandomPreferenceScorer(6, &rng);
        const TopKQuery query{&scorer, 10};
        const PeerId initiator = overlay.RandomPeer(&rng);
        for (int r : {0, kRippleSlow}) {
          const auto sync = engine.Run(initiator, query, r);
          const auto a_unit = unit.Run(initiator, query, r);
          const auto a_wan = wan.Run(initiator, query, r);
          (r == 0 ? hop_f : hop_s).Add(sync.stats);
          (r == 0 ? unit_f : unit_s) += a_unit.completion_time;
          (r == 0 ? wan_f : wan_s) += a_wan.completion_time;
          (r == 0 ? vis_f : vis_s) += a_unit.stats.peers_visited;
        }
        ++samples;
      }
    }
    xs.push_back(std::to_string(n));
    const double d = static_cast<double>(samples);
    fast[0].values.push_back(hop_f.MeanLatency());
    fast[1].values.push_back(unit_f / d);
    fast[2].values.push_back(wan_f / d);
    fast[3].values.push_back(vis_f / d);
    slow[0].values.push_back(hop_s.MeanLatency());
    slow[1].values.push_back(unit_s / d);
    slow[2].values.push_back(wan_s / d);
    slow[3].values.push_back(vis_s / d);
  }
  PrintPanel("(a) ripple-fast", "network size", xs, fast);
  PrintPanel("(b) ripple-slow", "network size", xs, slow);
  return 0;
}
