// Ablation A8: per-peer load distribution. The paper's congestion metric
// is the MEAN number of queries a peer processes when n uniform queries
// are issued; this ablation exposes the SKEW. RIPPLE's pruning (and the
// seeded initiation at score peaks) concentrates work on the peers owning
// the promising areas, so the maximum load exceeds the mean by orders of
// magnitude — the flip side of low total congestion.
//
// The measurement runs entirely on the obs::Profiler attached to the
// engine (span counts per peer), so its numbers are the same shape any
// profile export (ripple_cli --profile-out, WriteProfileJson) reports.

#include <algorithm>

#include "bench_common.h"
#include "obs/profile.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Ablation A8",
              "per-peer load skew under uniform top-k queries "
              "(NBA-like, d=6, k=10, ripple-fast)");
  Rng data_rng(config.seed * 7919 + 37);
  const TupleVec nba = data::MakeNbaLike(22000, 6, &data_rng);

  const char* cols[6] = {"mean", "p99", "max", "peak/mean", "gini", "idle%"};
  std::vector<std::string> xs;
  std::vector<Series> series(6);
  for (int i = 0; i < 6; ++i) series[i].name = cols[i];

  for (size_t n : config.NetworkSizes()) {
    const MidasOverlay overlay = BuildMidas(n, 6, config.seed + n, nba);
    Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
    obs::Profiler profiler;
    profiler.SetPeerUniverse(overlay.NumPeers());
    engine.SetProfiler(&profiler);
    Rng rng(config.seed ^ n);
    const size_t queries = std::max<size_t>(config.queries, 64);
    for (size_t q = 0; q < queries; ++q) {
      const LinearScorer scorer = RandomPreferenceScorer(6, &rng);
      const TopKQuery query{&scorer, 10};
      (void)SeededTopK(overlay, engine,
                       {.initiator = overlay.RandomPeer(&rng),
                        .query = query});
    }
    const obs::SkewStats skew = profiler.Skew(&obs::PeerLoad::spans);
    // p99 via the sorted per-peer span loads (SkewStats keeps only the
    // extremes; the panel wants one interior percentile too).
    std::vector<uint64_t> load;
    load.reserve(skew.peers);
    for (const obs::Hotspot& h :
         profiler.TopN(&obs::PeerLoad::spans, skew.peers)) {
      load.push_back(h.load.spans);
    }
    std::sort(load.begin(), load.end());
    // Nearest-rank p99 of the per-peer loads.
    const uint64_t p99 =
        load.empty() ? 0 : load[(load.size() * 99 + 99) / 100 - 1];
    const double pct = 100.0 / static_cast<double>(queries);
    xs.push_back(std::to_string(n));
    series[0].values.push_back(skew.mean * pct);
    series[1].values.push_back(static_cast<double>(p99) * pct);
    series[2].values.push_back(static_cast<double>(skew.max) * pct);
    series[3].values.push_back(skew.peak_to_mean);
    series[4].values.push_back(skew.gini);
    series[5].values.push_back(100.0 * skew.idle_fraction);
  }
  PrintPanel("load as % of queries processed per peer", "network size", xs,
             series);
  std::printf("\nmean is the paper's congestion / n; max shows the hot "
              "peak-region peers that every seeded query touches.\n"
              "peak/mean and gini quantify the skew the profile export "
              "reports for any workload.\n");
  return 0;
}
