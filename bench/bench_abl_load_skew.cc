// Ablation A8: per-peer load distribution. The paper's congestion metric
// is the MEAN number of queries a peer processes when n uniform queries
// are issued; this ablation exposes the SKEW. RIPPLE's pruning (and the
// seeded initiation at score peaks) concentrates work on the peers owning
// the promising areas, so the maximum load exceeds the mean by orders of
// magnitude — the flip side of low total congestion.

#include <algorithm>

#include "bench_common.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Ablation A8",
              "per-peer load skew under uniform top-k queries "
              "(NBA-like, d=6, k=10, ripple-fast)");
  Rng data_rng(config.seed * 7919 + 37);
  const TupleVec nba = data::MakeNbaLike(22000, 6, &data_rng);

  const char* cols[4] = {"mean", "p99", "max", "idle%"};
  std::vector<std::string> xs;
  std::vector<Series> series(4);
  for (int i = 0; i < 4; ++i) series[i].name = cols[i];

  for (size_t n : config.NetworkSizes()) {
    const MidasOverlay overlay = BuildMidas(n, 6, config.seed + n, nba);
    Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
    std::vector<uint64_t> load(overlay.NumPeers() + n, 0);
    engine.SetVisitObserver([&](PeerId id) { ++load[id]; });
    Rng rng(config.seed ^ n);
    const size_t queries = std::max<size_t>(config.queries, 64);
    for (size_t q = 0; q < queries; ++q) {
      const LinearScorer scorer = RandomPreferenceScorer(6, &rng);
      const TopKQuery query{&scorer, 10};
      (void)SeededTopK(overlay, engine,
                       {.initiator = overlay.RandomPeer(&rng),
                        .query = query});
    }
    std::sort(load.begin(), load.end());
    const double total = [&] {
      double s = 0;
      for (uint64_t v : load) s += static_cast<double>(v);
      return s;
    }();
    const size_t peers = overlay.NumPeers();
    const size_t idle =
        static_cast<size_t>(std::count(load.end() - peers, load.end(), 0u));
    xs.push_back(std::to_string(n));
    series[0].values.push_back(total / static_cast<double>(peers) /
                               static_cast<double>(queries) * 100.0);
    series[1].values.push_back(
        static_cast<double>(load[load.size() - 1 - peers / 100]) /
        static_cast<double>(queries) * 100.0);
    series[2].values.push_back(static_cast<double>(load.back()) /
                               static_cast<double>(queries) * 100.0);
    series[3].values.push_back(100.0 * static_cast<double>(idle) /
                               static_cast<double>(peers));
  }
  PrintPanel("load as % of queries processed per peer", "network size", xs,
             series);
  std::printf("\nmean is the paper's congestion / n; max shows the hot "
              "peak-region peers that every seeded query touches.\n");
  return 0;
}
