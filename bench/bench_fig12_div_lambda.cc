// Figure 12: diversification performance for the relevance/diversity
// trade-off lambda (paper §7.2.3). MIRFLICKR-like dataset, lambda swept
// over Table 1's values, default overlay, k = 10.
// Expected shape: cost peaks around lambda = 0.5 and drops towards both
// extremes — near 0 or 1 the qualifying search area collapses to small
// parts of the domain.

#include "bench_common.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Figure 12",
              "diversification vs lambda (MIRFLICKR-like, d=5, k=10)");
  Rng data_rng(config.seed * 7919 + 13);
  const size_t tuples_n = std::min<size_t>(config.tuples, 50000);
  const TupleVec flickr = data::MakeMirflickrLike(tuples_n, 5, &data_rng);
  const size_t n = config.DefaultNetworkSize() / 2;

  const double lambdas[] = {0.0, 0.2, 0.3, 0.5, 0.7, 0.8, 1.0};
  std::vector<std::string> xs;
  std::vector<Series> latency(3), congestion(3);
  for (int i = 0; i < 3; ++i) {
    latency[i].name = kDivMethodNames[i];
    congestion[i].name = kDivMethodNames[i];
  }
  int idx = 0;
  for (double lambda : lambdas) {
    DivPoint point;
    for (size_t net = 0; net < config.nets; ++net) {
      RunDivMethods(n, 5, flickr, 10, lambda, config.div_queries,
                    config.seed + 1000 * net + idx, &point);
    }
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f", lambda);
    xs.push_back(buf);
    for (int i = 0; i < 3; ++i) {
      latency[i].values.push_back(point.acc[i].MeanLatency());
      congestion[i].values.push_back(point.acc[i].MeanCongestion());
    }
    ReportQueryPoint(std::string("lambda=") + buf,
                     {kDivMethodNames, kDivMethodNames + 3}, point.acc,
                     point.wall, point.prof, 3);
    ++idx;
  }
  PrintPanel("(a) latency (hops)", "lambda", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "lambda", xs, congestion);
  return 0;
}
