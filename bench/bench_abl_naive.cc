// Ablation A5: naive broadcast (the paper's introduction strawman) vs
// RIPPLE top-k. The broadcast has diameter-optimal latency but visits
// every peer and ships k tuples from each; RIPPLE trades a few hops for
// orders of magnitude less traffic.

#include "baselines/naive.h"
#include "bench_common.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Ablation A5",
              "naive broadcast vs RIPPLE top-k (NBA-like, d=6, k=10)");
  Rng data_rng(config.seed * 7919 + 23);
  const TupleVec nba = data::MakeNbaLike(22000, 6, &data_rng);

  const char* methods[3] = {"naive", "ripple-fast", "ripple-slow"};
  std::vector<std::string> xs;
  std::vector<Series> latency(3), congestion(3), tuples_shipped(3);
  for (int i = 0; i < 3; ++i) {
    latency[i].name = methods[i];
    congestion[i].name = methods[i];
    tuples_shipped[i].name = methods[i];
  }
  for (size_t n : config.NetworkSizes()) {
    StatsAccumulator acc[3];
    for (size_t net = 0; net < config.nets; ++net) {
      const uint64_t seed = config.seed + 1000 * net + n;
      const MidasOverlay overlay = BuildMidas(n, 6, seed, nba);
      Engine<MidasOverlay, NaiveTopKPolicy> naive(&overlay,
                                                  NaiveTopKPolicy{});
      Engine<MidasOverlay, TopKPolicy> smart(&overlay, TopKPolicy{});
      Rng rng(seed ^ 0xbeef);
      for (size_t q = 0; q < config.queries; ++q) {
        const LinearScorer scorer = RandomPreferenceScorer(6, &rng);
        const TopKQuery query{&scorer, 10};
        const PeerId initiator = overlay.RandomPeer(&rng);
        acc[0].Add(
            naive.Run({.initiator = initiator, .query = query}).stats);
        acc[1].Add(SeededTopK(overlay, smart,
                              {.initiator = initiator, .query = query})
                       .stats);
        acc[2].Add(SeededTopK(overlay, smart,
                              {.initiator = initiator,
                               .query = query,
                               .ripple = RippleParam::Slow()})
                       .stats);
      }
    }
    xs.push_back(std::to_string(n));
    for (int i = 0; i < 3; ++i) {
      latency[i].values.push_back(acc[i].MeanLatency());
      congestion[i].values.push_back(acc[i].MeanCongestion());
      tuples_shipped[i].values.push_back(acc[i].MeanTuplesShipped());
    }
  }
  PrintPanel("(a) latency (hops)", "network size", xs, latency);
  PrintPanel("(b) congestion (peers per query)", "network size", xs,
             congestion);
  PrintPanel("(c) tuples shipped per query", "network size", xs,
             tuples_shipped);
  return 0;
}
