// Ablation A2: the full latency/congestion frontier of the ripple
// parameter, r = 0..Delta, for top-k at the default overlay size. The
// paper samples four r values (Figure 4); this sweep exposes the whole
// trade-off curve the single knob controls.

#include "bench_common.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Ablation A2",
              "top-k latency/congestion frontier over r = 0..Delta "
              "(NBA-like, d=6, k=10, default overlay)");
  Rng data_rng(config.seed * 7919 + 19);
  const TupleVec nba = data::MakeNbaLike(22000, 6, &data_rng);
  const size_t n = config.DefaultNetworkSize();

  std::vector<std::string> xs;
  std::vector<Series> panels(2);
  panels[0].name = "latency";
  panels[1].name = "congestion";

  const MidasOverlay overlay = BuildMidas(n, 6, config.seed, nba);
  Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  const int delta = overlay.MaxDepth();
  for (int r = 0; r <= delta; ++r) {
    StatsAccumulator acc;
    Rng rng(config.seed * 31 + r);
    for (size_t q = 0; q < config.queries; ++q) {
      const LinearScorer scorer = RandomPreferenceScorer(6, &rng);
      const TopKQuery query{&scorer, 10};
      acc.Add(SeededTopK(overlay, engine,
                         {.initiator = overlay.RandomPeer(&rng),
                          .query = query,
                          .ripple = RippleParam::Hops(r)})
                  .stats);
    }
    xs.push_back("r=" + std::to_string(r));
    panels[0].values.push_back(acc.MeanLatency());
    panels[1].values.push_back(acc.MeanCongestion());
  }
  PrintPanel("latency and congestion across the ripple parameter",
             "ripple r", xs, panels);
  return 0;
}
