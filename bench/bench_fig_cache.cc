// Cache figure: wire cost of a locality workload with the initiator-side
// query cache (src/cache/) on versus off, at executor-level concurrency.
// Not a figure of the paper — RIPPLE prices a single cold query; this
// bench prices the regime an initiator actually faces, where overlapping
// queries repeat (docs/CACHING.md).
//
// Workload: locality groups (exec::WorkloadItem::group) make members of a
// group draw the identical query instance, and the whole workload runs
// twice through the same cache, so the second pass is pure hits. The
// cache-off side runs the same two passes through the legacy path.
//
// Gating (tools/bench_check.py): the per-mode cost metrics are
// deterministic and diffed against the committed baseline, and the gate
// case carries intra-document bounds that hold on any machine:
//   bytes_ratio        <= ceiling_bytes_ratio (1.0): a cache must never
//                         add wire bytes;
//   cache_hit_rate     >= floor_cache_hit_rate: the locality workload
//                         must actually hit;
//   answer_mismatch    <= ceiling_answer_mismatch (0): cached answers are
//                         byte-identical to cold ones.
// Wall-clock p99 rides along under the informational wall_ prefix.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cache/query_cache.h"
#include "exec/batch.h"
#include "exec/compile.h"
#include "exec/executor.h"
#include "exec/workload.h"

using namespace ripple;
using namespace ripple::bench;

namespace {

constexpr int kPasses = 2;
constexpr int kThreads = 4;
constexpr size_t kGroupRepeats = 4;

bool SameAnswer(const TupleVec& a, const TupleVec& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id) return false;
    if (a[i].key.dims() != b[i].key.dims()) return false;
    for (int d = 0; d < a[i].key.dims(); ++d) {
      if (a[i].key[d] != b[i].key[d]) return false;
    }
  }
  return true;
}

/// A locality mix: groups of identical instances across all four kinds.
std::vector<exec::WorkloadItem> LocalityWorkload(size_t total) {
  std::vector<exec::WorkloadItem> items;
  const size_t groups = std::max<size_t>(1, total / kGroupRepeats);
  for (size_t g = 0; g < groups; ++g) {
    exec::WorkloadItem item;
    switch (g % 4) {
      case 0:
        item.kind = exec::WorkloadItem::Kind::kTopK;
        item.k = 10;
        break;
      case 1:
        item.kind = exec::WorkloadItem::Kind::kSkyline;
        break;
      case 2:
        item.kind = exec::WorkloadItem::Kind::kRange;
        item.radius = 0.15;
        break;
      default:
        item.kind = exec::WorkloadItem::Kind::kSkyband;
        item.band = 2;
        break;
    }
    item.group = static_cast<int>(g);
    item.label = std::string(exec::WorkloadKindName(item.kind)) + " group=" +
                 std::to_string(g);
    for (size_t rep = 0; rep < kGroupRepeats; ++rep) items.push_back(item);
  }
  return items;
}

struct ModeRun {
  QueryStats stats;       // summed over all passes
  double wall_p99 = 0.0;  // worst pass
  size_t completed = 0;
  std::vector<TupleVec> answers;  // per (pass, item), pass-major
};

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  PrintHeader(config, "Figure C",
              "initiator cache: wire bytes vs cache-off (locality workload)");

  const size_t peers = config.DefaultNetworkSize();
  Rng data_rng(config.seed * 7919 + 11);
  const TupleVec tuples =
      data::MakeUniform(std::min<size_t>(config.tuples, 50000), 4, &data_rng);
  const MidasOverlay overlay = BuildMidas(peers, 4, config.seed, tuples);
  const std::vector<exec::WorkloadItem> items =
      LocalityWorkload(config.queries * 4);
  std::printf("  %zu queries (%zu groups x %zu), %d passes, %d threads\n",
              items.size(), items.size() / kGroupRepeats, kGroupRepeats,
              kPasses, kThreads);

  exec::CompileOptions copts;
  copts.seed = config.seed;
  exec::ExecutorOptions eopts;
  eopts.threads = kThreads;
  eopts.seed = config.seed;
  eopts.queue_capacity = 64;

  // Cache-off: the legacy compile-and-run path, same passes.
  ModeRun off;
  {
    exec::Executor executor(eopts);
    exec::CompiledWorkload compiled =
        exec::CompileWorkload(overlay, items, copts);
    for (int pass = 0; pass < kPasses; ++pass) {
      const exec::WorkloadResult result =
          executor.Run(compiled.jobs, overlay.NumPeers());
      off.stats += result.total_stats;
      off.wall_p99 = std::max(off.wall_p99, result.latency_ms.Percentile(99));
      off.completed += result.completed;
      for (const exec::QueryOutcome& out : result.queries) {
        off.answers.push_back(out.answer);
      }
    }
  }

  // Cache-on: batched execution over a shared cache; the second pass hits
  // everything the first inserted.
  ModeRun on;
  cache::QueryCache qcache(cache::CacheOptions{items.size() * 2, 0});
  {
    exec::Executor executor(eopts);
    exec::BatchOptions bopts;
    bopts.cache = &qcache;
    bopts.merge_duplicates = true;
    for (int pass = 0; pass < kPasses; ++pass) {
      exec::BatchPlan plan;
      const exec::WorkloadResult result = exec::RunBatchedWorkload(
          executor, overlay, items, copts, bopts, &plan);
      on.stats += result.total_stats;
      on.wall_p99 = std::max(on.wall_p99, result.latency_ms.Percentile(99));
      on.completed += result.completed;
      for (const exec::QueryOutcome& out : result.queries) {
        on.answers.push_back(out.answer);
      }
      std::printf("  pass %d: %zu lead, %zu merged, %zu cache hit\n",
                  pass + 1, plan.leads, plan.follows, plan.hits);
    }
  }

  // Cached/merged answers must be byte-identical to the cold ones.
  uint64_t mismatches = 0;
  for (size_t i = 0; i < off.answers.size() && i < on.answers.size(); ++i) {
    if (!SameAnswer(off.answers[i], on.answers[i])) ++mismatches;
  }

  const double queries_run = static_cast<double>(items.size() * kPasses);
  const cache::CacheStats& cs = qcache.stats();
  const double lookups = static_cast<double>(cs.hits + cs.misses);
  const double hit_rate =
      lookups > 0 ? static_cast<double>(cs.hits) / lookups : 0.0;
  const double bytes_ratio =
      off.stats.bytes_on_wire > 0
          ? static_cast<double>(on.stats.bytes_on_wire) /
                static_cast<double>(off.stats.bytes_on_wire)
          : 0.0;

  Reporter().AddMetric("cache/locality/off", "completed",
                       static_cast<double>(off.completed));
  Reporter().AddMetric("cache/locality/off", "messages_mean",
                       static_cast<double>(off.stats.messages) / queries_run);
  Reporter().AddMetric(
      "cache/locality/off", "bytes_on_wire_mean",
      static_cast<double>(off.stats.bytes_on_wire) / queries_run);
  Reporter().AddMetric("cache/locality/off", "wall_ms_p99", off.wall_p99);

  Reporter().AddMetric("cache/locality/on", "completed",
                       static_cast<double>(on.completed));
  Reporter().AddMetric("cache/locality/on", "messages_mean",
                       static_cast<double>(on.stats.messages) / queries_run);
  Reporter().AddMetric(
      "cache/locality/on", "bytes_on_wire_mean",
      static_cast<double>(on.stats.bytes_on_wire) / queries_run);
  Reporter().AddMetric("cache/locality/on", "wall_ms_p99", on.wall_p99);

  // The machine-independent contract (intra-document bounds, see header).
  // The second pass is pure hits and the first pure misses, so the hit
  // rate is 1/2 by construction; the floor leaves headroom for workload
  // tweaks without ever letting the cache silently stop hitting.
  Reporter().AddMetric("cache/locality/gate", "bytes_ratio", bytes_ratio);
  Reporter().AddMetric("cache/locality/gate", "ceiling_bytes_ratio", 1.0);
  Reporter().AddMetric("cache/locality/gate", "cache_hit_rate", hit_rate);
  Reporter().AddMetric("cache/locality/gate", "floor_cache_hit_rate", 0.45);
  Reporter().AddMetric("cache/locality/gate", "answer_mismatch",
                       static_cast<double>(mismatches));
  Reporter().AddMetric("cache/locality/gate", "ceiling_answer_mismatch", 0.0);

  std::printf(
      "  bytes: off=%llu on=%llu ratio=%.3f | hit rate %.2f | "
      "%llu mismatches | p99 off=%.2fms on=%.2fms\n",
      static_cast<unsigned long long>(off.stats.bytes_on_wire),
      static_cast<unsigned long long>(on.stats.bytes_on_wire), bytes_ratio,
      hit_rate, static_cast<unsigned long long>(mismatches), off.wall_p99,
      on.wall_p99);

  const std::vector<std::string> xs = {"off", "on"};
  PrintPanel("(a) mean wire bytes per query", "cache", xs,
             {{"bytes_on_wire_mean",
               {static_cast<double>(off.stats.bytes_on_wire) / queries_run,
                static_cast<double>(on.stats.bytes_on_wire) / queries_run}}});
  PrintPanel("(b) p99 latency (ms)", "cache", xs,
             {{"wall_ms_p99", {off.wall_p99, on.wall_p99}}});
  return mismatches == 0 ? 0 : 1;
}
