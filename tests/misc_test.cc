#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.h"
#include "net/metrics.h"

namespace ripple {
namespace {

TEST(EnvTest, IntParsingAndFallbacks) {
  ::setenv("RIPPLE_TEST_INT", "42", 1);
  EXPECT_EQ(GetEnvInt("RIPPLE_TEST_INT", 7), 42);
  ::setenv("RIPPLE_TEST_INT", "-13", 1);
  EXPECT_EQ(GetEnvInt("RIPPLE_TEST_INT", 7), -13);
  ::setenv("RIPPLE_TEST_INT", "abc", 1);
  EXPECT_EQ(GetEnvInt("RIPPLE_TEST_INT", 7), 7);
  ::setenv("RIPPLE_TEST_INT", "12xy", 1);
  EXPECT_EQ(GetEnvInt("RIPPLE_TEST_INT", 7), 7);
  ::setenv("RIPPLE_TEST_INT", "", 1);
  EXPECT_EQ(GetEnvInt("RIPPLE_TEST_INT", 7), 7);
  ::unsetenv("RIPPLE_TEST_INT");
  EXPECT_EQ(GetEnvInt("RIPPLE_TEST_INT", 7), 7);
}

TEST(EnvTest, DoubleParsingAndFallbacks) {
  ::setenv("RIPPLE_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("RIPPLE_TEST_DBL", 1.0), 2.5);
  ::setenv("RIPPLE_TEST_DBL", "nope", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("RIPPLE_TEST_DBL", 1.0), 1.0);
  ::unsetenv("RIPPLE_TEST_DBL");
  EXPECT_DOUBLE_EQ(GetEnvDouble("RIPPLE_TEST_DBL", 1.0), 1.0);
}

TEST(EnvTest, StringFallback) {
  ::setenv("RIPPLE_TEST_STR", "hello", 1);
  EXPECT_EQ(GetEnvString("RIPPLE_TEST_STR", "d"), "hello");
  ::unsetenv("RIPPLE_TEST_STR");
  EXPECT_EQ(GetEnvString("RIPPLE_TEST_STR", "d"), "d");
}

TEST(MetricsTest, QueryStatsAccumulateAndPrint) {
  QueryStats a{3, 4, 5, 6};
  QueryStats b{1, 1, 1, 1};
  a += b;
  EXPECT_EQ(a.latency_hops, 4u);
  EXPECT_EQ(a.peers_visited, 5u);
  EXPECT_EQ(a.messages, 6u);
  EXPECT_EQ(a.tuples_shipped, 7u);
  const std::string s = a.ToString();
  EXPECT_NE(s.find("latency=4"), std::string::npos);
  EXPECT_NE(s.find("visited=5"), std::string::npos);
}

TEST(MetricsTest, EmptyAccumulator) {
  StatsAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.MeanLatency(), 0.0);
  EXPECT_EQ(acc.MaxLatency(), 0u);
  EXPECT_EQ(acc.LatencyPercentile(50), 0u);
}

TEST(MetricsTest, PercentilesAreNearestRank) {
  StatsAccumulator acc;
  for (uint64_t v : {10u, 20u, 30u, 40u, 50u, 60u, 70u, 80u, 90u, 100u}) {
    acc.Add(QueryStats{v, 0, 0, 0});
  }
  EXPECT_EQ(acc.LatencyPercentile(0), 10u);
  // Nearest rank: ceil(50/100 * 10) = 5 -> the 5th smallest sample.
  EXPECT_EQ(acc.LatencyPercentile(50), 50u);
  EXPECT_EQ(acc.LatencyPercentile(90), 90u);
  EXPECT_EQ(acc.LatencyPercentile(99), 100u);
  EXPECT_EQ(acc.LatencyPercentile(100), 100u);
  EXPECT_EQ(acc.LatencyPercentile(-5), 10u);   // clamped
  EXPECT_EQ(acc.LatencyPercentile(250), 100u);  // clamped
}

}  // namespace
}  // namespace ripple
