#include "overlay/baton/baton.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ripple {
namespace {

TEST(BatonTest, SinglePeerOwnsEverything) {
  BatonOverlay overlay(1, BatonOptions{.dims = 2});
  EXPECT_TRUE(overlay.Validate().ok());
  EXPECT_EQ(overlay.GetPeer(0).range_lo, 0u);
  EXPECT_EQ(overlay.GetPeer(0).range_hi, overlay.zorder().key_space_size());
}

TEST(BatonTest, StructureInvariantsAcrossSizes) {
  for (size_t n : {2u, 3u, 7u, 64u, 100u, 255u, 1000u}) {
    BatonOverlay overlay(n, BatonOptions{.dims = 3});
    ASSERT_TRUE(overlay.Validate().ok())
        << "n=" << n << ": " << overlay.Validate().ToString();
  }
}

TEST(BatonTest, RoutingTableSizesAreLogarithmic) {
  BatonOverlay overlay(1024, BatonOptions{.dims = 2});
  for (PeerId id = 0; id < overlay.NumPeers(); ++id) {
    const auto& p = overlay.GetPeer(id);
    EXPECT_LE(p.left_table.size() + p.right_table.size(), 2u * 10u);
  }
}

TEST(BatonTest, RoutingReachesKeyOwner) {
  BatonOverlay overlay(500, BatonOptions{.dims = 3});
  Rng rng(7);
  uint64_t max_hops = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t key = rng.UniformU64(overlay.zorder().key_space_size());
    const PeerId from = overlay.RandomPeer(&rng);
    uint64_t hops = 0;
    EXPECT_EQ(overlay.RouteToKey(from, key, &hops),
              overlay.ResponsibleForKey(key));
    max_hops = std::max(max_hops, hops);
  }
  // BATON guarantees O(log n) routing; allow generous slack.
  EXPECT_LE(max_hops, 4 * 9u);  // 4 * log2(500)
}

TEST(BatonTest, TupleInsertionLandsInRange) {
  BatonOverlay overlay(64, BatonOptions{.dims = 2});
  Rng rng(11);
  for (uint64_t i = 0; i < 500; ++i) {
    overlay.InsertTuple(
        Tuple{i, Point{rng.UniformDouble(), rng.UniformDouble()}});
  }
  EXPECT_EQ(overlay.TotalTuples(), 500u);
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
}

TEST(BatonTest, RegionsTileTheDomain) {
  BatonOverlay overlay(37, BatonOptions{.dims = 2});
  double volume = 0.0;
  for (PeerId id = 0; id < overlay.NumPeers(); ++id) {
    for (const Rect& r : overlay.RegionOf(id)) volume += r.Volume();
  }
  EXPECT_NEAR(volume, 1.0, 1e-9);
}

TEST(BatonTest, RegionContainsOwnTuples) {
  BatonOverlay overlay(50, BatonOptions{.dims = 3});
  Rng rng(13);
  for (uint64_t i = 0; i < 300; ++i) {
    overlay.InsertTuple(Tuple{i, Point{rng.UniformDouble(),
                                       rng.UniformDouble(),
                                       rng.UniformDouble()}});
  }
  for (PeerId id = 0; id < overlay.NumPeers(); ++id) {
    const auto region = overlay.RegionOf(id);
    for (const Tuple& t : overlay.GetPeer(id).store.Snapshot()) {
      bool contained = false;
      for (const Rect& r : region) {
        if (r.Contains(t.key)) {
          contained = true;
          break;
        }
      }
      EXPECT_TRUE(contained) << t.ToString();
    }
  }
}

TEST(BatonTest, AdjacentLinksFollowInOrder) {
  BatonOverlay overlay(31, BatonOptions{.dims = 2});
  for (PeerId id = 0; id < overlay.NumPeers(); ++id) {
    const auto& p = overlay.GetPeer(id);
    if (p.adj_left != kInvalidPeer) {
      EXPECT_EQ(overlay.GetPeer(p.adj_left).range_hi, p.range_lo);
    } else {
      EXPECT_EQ(p.range_lo, 0u);
    }
    if (p.adj_right != kInvalidPeer) {
      EXPECT_EQ(overlay.GetPeer(p.adj_right).range_lo, p.range_hi);
    } else {
      EXPECT_EQ(p.range_hi, overlay.zorder().key_space_size());
    }
  }
}

}  // namespace
}  // namespace ripple
