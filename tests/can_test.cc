#include "overlay/can/can.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace ripple {
namespace {

CanOverlay GrowCan(size_t peers, int dims, uint64_t seed) {
  CanOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  CanOverlay overlay(opt);
  while (overlay.NumPeers() < peers) overlay.Join();
  return overlay;
}

TEST(CanTest, Bootstrap) {
  CanOverlay overlay(CanOptions{.dims = 2, .seed = 1});
  EXPECT_EQ(overlay.NumPeers(), 1u);
  EXPECT_TRUE(overlay.Validate().ok());
}

TEST(CanTest, FirstJoinCreatesMutualNeighbors) {
  CanOverlay overlay(CanOptions{.dims = 2, .seed = 1});
  overlay.Join();
  ASSERT_EQ(overlay.NumPeers(), 2u);
  const auto live = overlay.LivePeers();
  EXPECT_EQ(overlay.GetPeer(live[0]).neighbors.size(), 1u);
  EXPECT_EQ(overlay.GetPeer(live[1]).neighbors.size(), 1u);
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
}

TEST(CanTest, GrowthInvariants) {
  for (int dims : {2, 3, 5}) {
    CanOverlay overlay = GrowCan(128, dims, 17);
    ASSERT_TRUE(overlay.Validate().ok())
        << "dims=" << dims << ": " << overlay.Validate().ToString();
  }
}

TEST(CanTest, NeighborCountGrowsWithDims) {
  // The paper notes DSL exploits CAN's larger neighborhoods at high
  // dimensionality.
  auto avg_neighbors = [](const CanOverlay& overlay) {
    size_t total = 0;
    for (PeerId id : overlay.LivePeers()) {
      total += overlay.GetPeer(id).neighbors.size();
    }
    return static_cast<double>(total) / overlay.NumPeers();
  };
  CanOverlay low = GrowCan(256, 2, 5);
  CanOverlay high = GrowCan(256, 6, 5);
  EXPECT_GT(avg_neighbors(high), avg_neighbors(low));
}

TEST(CanTest, RoutingReachesResponsiblePeer) {
  CanOverlay overlay = GrowCan(200, 3, 23);
  Rng rng(7);
  const auto live = overlay.LivePeers();
  for (int trial = 0; trial < 100; ++trial) {
    Point p{rng.UniformDouble(), rng.UniformDouble(), rng.UniformDouble()};
    const PeerId from = live[rng.UniformU64(live.size())];
    uint64_t hops = 0;
    EXPECT_EQ(overlay.RouteFrom(from, p, &hops), overlay.ResponsiblePeer(p));
    EXPECT_LT(hops, overlay.NumPeers());
  }
}

TEST(CanTest, FloodVisitsEveryPeerOnce) {
  CanOverlay overlay = GrowCan(100, 2, 29);
  Rng rng(11);
  std::set<PeerId> visited;
  uint64_t depth = overlay.Flood(overlay.RandomPeer(&rng),
                                 [&](PeerId id, uint64_t) {
                                   EXPECT_TRUE(visited.insert(id).second);
                                 });
  EXPECT_EQ(visited.size(), overlay.NumPeers());
  EXPECT_GT(depth, 0u);
  EXPECT_LT(depth, overlay.NumPeers());
}

TEST(CanTest, TuplesFollowZoneSplits) {
  CanOverlay overlay(CanOptions{.dims = 2, .seed = 31});
  Rng rng(13);
  for (uint64_t i = 0; i < 300; ++i) {
    overlay.InsertTuple(
        Tuple{i, Point{rng.UniformDouble(), rng.UniformDouble()}});
  }
  while (overlay.NumPeers() < 64) overlay.Join();
  EXPECT_EQ(overlay.TotalTuples(), 300u);
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
}

TEST(CanTest, ChurnKeepsInvariantsAndData) {
  CanOverlay overlay = GrowCan(96, 3, 37);
  Rng rng(17);
  for (uint64_t i = 0; i < 400; ++i) {
    overlay.InsertTuple(Tuple{i, Point{rng.UniformDouble(),
                                       rng.UniformDouble(),
                                       rng.UniformDouble()}});
  }
  Rng churn(19);
  while (overlay.NumPeers() > 10) {
    ASSERT_TRUE(overlay.LeaveRandom(&churn).ok());
    ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
  }
  EXPECT_EQ(overlay.TotalTuples(), 400u);
  while (overlay.NumPeers() < 50) overlay.Join();
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
  EXPECT_EQ(overlay.TotalTuples(), 400u);
}

TEST(CanTest, LeaveLastPeerFails) {
  CanOverlay overlay(CanOptions{.dims = 2, .seed = 1});
  EXPECT_EQ(overlay.Leave(overlay.LivePeers()[0]).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ripple
