// Distributed-tracing journal tests (docs/OBSERVABILITY.md): JSONL
// round-trips, per-peer file I/O, and the offline assembler — including
// the load-bearing guarantee that assembling the per-peer journals of a
// traced run reproduces the in-process tracer's span tree byte for byte,
// across overlays, engines and fault schedules.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/datasets.h"
#include "geom/scoring.h"
#include "obs/assemble.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "overlay/chord/chord.h"
#include "overlay/midas/midas.h"
#include "queries/skyline.h"
#include "queries/skyline_driver.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"
#include "sim/async_engine.h"

namespace ripple {
namespace {

// --- JSONL round-trips ------------------------------------------------------

// The serialized form is kind-dependent (span events carry span fields,
// frame events carry frame fields), so "every field" takes one of each.
obs::JournalEvent FullSpanEvent() {
  obs::JournalEvent e;
  e.kind = obs::JournalEventKind::kSpanEnd;
  e.peer = 17;
  e.sim_time = 3.25;
  e.wall_ns = 123456789;
  e.trace_id = 0xdeadbeefcafef00dULL;
  e.parent_span = 5;
  e.span = 6;
  e.span_kind = 1;
  e.r = -2;
  e.start = 1.5;
  e.end = 3.25;
  e.tuples_in = 10;
  e.links_pruned = 4;
  e.links_forwarded = 2;
  e.states_merged = 3;
  e.state_tuples = 7;
  e.answer_tuples = 8;
  e.retries = 1;
  e.timeouts = 2;
  return e;
}

obs::JournalEvent FullFrameEvent() {
  obs::JournalEvent e;
  e.kind = obs::JournalEventKind::kRetransmit;
  e.peer = 9;
  e.sim_time = 7.5;
  e.wall_ns = 42;
  e.trace_id = 0xabcULL;
  e.msg_id = 41;
  e.msg_kind = 2;
  e.parent_span = 3;
  e.bytes = 990;
  e.attempt = 3;
  return e;
}

void ExpectEventsEqual(const obs::JournalEvent& a, const obs::JournalEvent& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.peer, b.peer);
  EXPECT_EQ(a.sim_time, b.sim_time);
  EXPECT_EQ(a.wall_ns, b.wall_ns);
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.msg_id, b.msg_id);
  EXPECT_EQ(a.msg_kind, b.msg_kind);
  EXPECT_EQ(a.parent_span, b.parent_span);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.attempt, b.attempt);
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.span_kind, b.span_kind);
  EXPECT_EQ(a.r, b.r);
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.tuples_in, b.tuples_in);
  EXPECT_EQ(a.links_pruned, b.links_pruned);
  EXPECT_EQ(a.links_forwarded, b.links_forwarded);
  EXPECT_EQ(a.states_merged, b.states_merged);
  EXPECT_EQ(a.state_tuples, b.state_tuples);
  EXPECT_EQ(a.answer_tuples, b.answer_tuples);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.timeouts, b.timeouts);
}

TEST(JournalJsonTest, EveryFieldRoundTrips) {
  for (const obs::JournalEvent& e : {FullSpanEvent(), FullFrameEvent()}) {
    const Result<obs::JournalEvent> back =
        obs::ParseJournalLine(obs::JournalEventToJson(e));
    ASSERT_TRUE(back.ok()) << back.status().message();
    ExpectEventsEqual(e, *back);
  }
}

TEST(JournalJsonTest, DefaultEventRoundTripsAndUnknownKeysIgnored) {
  obs::JournalEvent e;
  e.kind = obs::JournalEventKind::kFrameRecv;
  e.peer = 3;
  const std::string line = obs::JournalEventToJson(e);
  const Result<obs::JournalEvent> back = obs::ParseJournalLine(line);
  ASSERT_TRUE(back.ok());
  ExpectEventsEqual(e, *back);

  // Forward compatibility: a journal written by a newer build may carry
  // keys this build does not know; they must parse as noise, not errors.
  std::string extended = line;
  extended.insert(extended.size() - 1, ",\"future_key\":42");
  const Result<obs::JournalEvent> ext = obs::ParseJournalLine(extended);
  ASSERT_TRUE(ext.ok()) << ext.status().message();
  ExpectEventsEqual(e, *ext);
}

TEST(JournalJsonTest, MalformedLinesRejected) {
  EXPECT_FALSE(obs::ParseJournalLine("").ok());
  EXPECT_FALSE(obs::ParseJournalLine("not json").ok());
  EXPECT_FALSE(obs::ParseJournalLine("{\"ev\":\"no_such_kind\"}").ok());
}

TEST(JournalIoTest, WriteDirReadJournalsRoundTrip) {
  obs::JournalSet set;
  obs::JournalEvent a = FullSpanEvent();
  a.peer = 3;
  obs::JournalEvent b;
  b.kind = obs::JournalEventKind::kFrameSend;
  b.peer = 9;
  b.trace_id = 12;
  b.msg_id = 5;
  b.bytes = 35;
  b.attempt = 1;
  set.Record(a);
  set.Record(b);

  const std::string dir = ::testing::TempDir() + "/journal_io_rt";
  ASSERT_TRUE(set.WriteDir(dir).ok());
  const Result<std::vector<obs::PeerJournal>> back = obs::ReadJournals(dir);
  ASSERT_TRUE(back.ok()) << back.status().message();
  ASSERT_EQ(back->size(), 2u);
  // ReadJournals walks the directory in sorted filename order: peer-3
  // before peer-9.
  ASSERT_EQ((*back)[0].events.size(), 1u);
  ASSERT_EQ((*back)[1].events.size(), 1u);
  EXPECT_EQ((*back)[0].peer, 3u);
  EXPECT_EQ((*back)[1].peer, 9u);
  // Record stamps wall_ns itself; align before the field-wise compare.
  obs::JournalEvent want_a = a;
  want_a.wall_ns = (*back)[0].events[0].wall_ns;
  ExpectEventsEqual(want_a, (*back)[0].events[0]);
  obs::JournalEvent want_b = b;
  want_b.wall_ns = (*back)[1].events[0].wall_ns;
  ExpectEventsEqual(want_b, (*back)[1].events[0]);
}

// --- Assembly: byte-equivalence with the in-process tracer ------------------

std::vector<obs::PeerJournal> Snapshots(const obs::JournalSet& set) {
  std::vector<obs::PeerJournal> out;
  for (uint32_t p : set.Peers()) out.push_back(set.Snapshot(p));
  return out;
}

/// Runs a traced top-k and skyline over `overlay` through EngineT with a
/// shared tracer and journal, then asserts the journal-assembled forest is
/// byte-identical to the in-process tracer's. `kSeeded` selects the
/// seeded drivers (MIDAS overlays) vs. plain engine runs (Chord has no
/// point routing).
template <template <class, class> class EngineT, bool kSeeded,
          typename Overlay>
void ExpectAssemblyMatchesTracer(const Overlay& overlay, uint64_t seed) {
  obs::Tracer tracer;
  obs::JournalSet journal;
  Rng rng(seed);
  std::vector<double> weights(2);  // every fixture here is 2-d
  for (double& w : weights) w = -(0.2 + 0.6 * rng.UniformDouble());
  LinearScorer scorer(weights);

  {
    EngineT<Overlay, TopKPolicy> engine(&overlay, TopKPolicy{});
    engine.SetTracer(&tracer);
    engine.SetJournal(&journal);
    QueryRequest<TopKPolicy> req;
    req.initiator = overlay.RandomPeer(&rng);
    req.query = TopKQuery{&scorer, 8};
    req.ripple = RippleParam::Fast();
    req.trace_id = (seed << 2) | 1;
    typename EngineT<Overlay, TopKPolicy>::Result result;
    if constexpr (kSeeded) {
      result = SeededTopK(overlay, engine, req);
    } else {
      result = engine.Run(req);
    }
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.answer.size(), 8u);
  }
  {
    EngineT<Overlay, SkylinePolicy> engine(&overlay, SkylinePolicy{});
    engine.SetTracer(&tracer);
    engine.SetJournal(&journal);
    QueryRequest<SkylinePolicy> req;
    req.initiator = overlay.RandomPeer(&rng);
    req.ripple = RippleParam::Slow();
    // Larger than the top-k trace id: the assembler emits traces in
    // ascending id order, which must equal the tracer's recording order.
    req.trace_id = (seed << 2) | 3;
    typename EngineT<Overlay, SkylinePolicy>::Result result;
    if constexpr (kSeeded) {
      result = SeededSkyline(overlay, engine, req);
    } else {
      result = engine.Run(req);
    }
    EXPECT_TRUE(result.complete);
    EXPECT_FALSE(result.answer.empty());
  }

  ASSERT_GT(tracer.span_count(), 0u);
  const Result<obs::AssembleReport> report =
      obs::AssembleJournals(Snapshots(journal));
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->complete);
  EXPECT_EQ(report->traces, 2u);
  EXPECT_EQ(report->spans, tracer.span_count());
  // One process, one clock: alignment must be the identity, and the
  // rebuilt forest byte-identical (spans, parentage, hop clocks, span
  // counters — everything ToAscii prints).
  for (const double off : report->clock_offsets) EXPECT_EQ(off, 0.0);
  EXPECT_EQ(report->tracer.ToAscii(), tracer.ToAscii());
}

MidasOverlay MakeMidasOverlay(MidasSplitRule rule, bool patterns,
                              uint64_t seed) {
  MidasOptions opt;
  opt.dims = 2;
  opt.seed = seed;
  opt.split_rule = rule;
  opt.border_pattern_links = patterns;
  MidasOverlay overlay(opt);
  Rng rng(seed ^ 0xabcd);
  for (const Tuple& t : data::MakeUniform(700, 2, &rng)) {
    overlay.InsertTuple(t);
  }
  while (overlay.NumPeers() < 48) overlay.Join();
  return overlay;
}

TEST(JournalAssemblyTest, MatchesTracerOnMidasMidpoint) {
  const MidasOverlay overlay =
      MakeMidasOverlay(MidasSplitRule::kMidpoint, false, 101);
  ExpectAssemblyMatchesTracer<AsyncEngine, true>(overlay, 101);
  ExpectAssemblyMatchesTracer<Engine, true>(overlay, 102);
}

TEST(JournalAssemblyTest, MatchesTracerOnMidasDataMedian) {
  const MidasOverlay overlay =
      MakeMidasOverlay(MidasSplitRule::kDataMedian, false, 103);
  ExpectAssemblyMatchesTracer<AsyncEngine, true>(overlay, 103);
  ExpectAssemblyMatchesTracer<Engine, true>(overlay, 104);
}

TEST(JournalAssemblyTest, MatchesTracerOnMidasBorderPatterns) {
  const MidasOverlay overlay =
      MakeMidasOverlay(MidasSplitRule::kDataMedian, true, 105);
  ExpectAssemblyMatchesTracer<AsyncEngine, true>(overlay, 105);
  ExpectAssemblyMatchesTracer<Engine, true>(overlay, 106);
}

TEST(JournalAssemblyTest, MatchesTracerOnChord) {
  ChordOverlay overlay(48, ChordOptions{.dims = 2, .seed = 107});
  Rng rng(107 ^ 0xabcd);
  for (const Tuple& t : data::MakeUniform(700, 2, &rng)) {
    overlay.InsertTuple(t);
  }
  ExpectAssemblyMatchesTracer<AsyncEngine, false>(overlay, 107);
  ExpectAssemblyMatchesTracer<Engine, false>(overlay, 108);
}

// --- Assembly: structural diagnostics ---------------------------------------

TEST(JournalAssemblyTest, MissingEndAndOrphanParentsAreFlagged) {
  obs::JournalSet set;
  obs::JournalEvent begin;
  begin.kind = obs::JournalEventKind::kSpanBegin;
  begin.peer = 1;
  begin.trace_id = 7;
  begin.span = 0;
  begin.parent_span = obs::kNoSpan;
  set.Record(begin);
  // Span 3 claims parent 2, but span 2 never journaled anything.
  obs::JournalEvent orphan = begin;
  orphan.peer = 2;
  orphan.span = 3;
  orphan.parent_span = 2;
  set.Record(orphan);

  const Result<obs::AssembleReport> report =
      obs::AssembleJournals(Snapshots(set));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->spans, 2u);
  EXPECT_EQ(report->missing_end, 2u);
  EXPECT_EQ(report->orphans, 1u);
  EXPECT_FALSE(report->complete);
}

TEST(JournalAssemblyTest, CapacityOverflowMarksAssemblyIncomplete) {
  const MidasOverlay overlay =
      MakeMidasOverlay(MidasSplitRule::kDataMedian, false, 109);
  obs::Tracer tracer;
  obs::JournalSet journal(/*capacity_per_peer=*/2);
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  engine.SetTracer(&tracer);
  engine.SetJournal(&journal);
  Rng rng(109);
  std::vector<double> weights{-0.5, -0.5};
  LinearScorer scorer(weights);
  const auto result = engine.Run({.initiator = overlay.RandomPeer(&rng),
                                  .query = TopKQuery{&scorer, 8},
                                  .ripple = RippleParam::Slow(),
                                  .trace_id = 1});
  EXPECT_TRUE(result.complete);
  EXPECT_GT(journal.TotalDropped(), 0u);

  const Result<obs::AssembleReport> report =
      obs::AssembleJournals(Snapshots(journal));
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->dropped, 0u);
  EXPECT_FALSE(report->complete);
}

// --- Clock alignment --------------------------------------------------------

TEST(JournalAssemblyTest, LamportAlignmentRepairsSkewedClocks) {
  const MidasOverlay overlay =
      MakeMidasOverlay(MidasSplitRule::kDataMedian, false, 111);
  obs::Tracer tracer;
  obs::JournalSet journal;
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  engine.SetTracer(&tracer);
  engine.SetJournal(&journal);
  Rng rng(111);
  std::vector<double> weights{-0.4, -0.6};
  LinearScorer scorer(weights);
  const auto result = engine.Run({.initiator = overlay.RandomPeer(&rng),
                                  .query = TopKQuery{&scorer, 8},
                                  .ripple = RippleParam::Hops(2),
                                  .trace_id = 1});
  ASSERT_TRUE(result.complete);

  const std::vector<obs::PeerJournal> unskewed = Snapshots(journal);
  const Result<obs::AssembleReport> base = obs::AssembleJournals(unskewed);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(base->complete);
  ASSERT_GT(unskewed.size(), 1u);

  // Give every journal but the first its own (badly) skewed clock, as if
  // each peer were a separate process with an unsynchronized clock.
  std::vector<obs::PeerJournal> skewed = unskewed;
  for (size_t j = 1; j < skewed.size(); ++j) {
    const double shift = -100.0 * static_cast<double>(j);
    for (obs::JournalEvent& e : skewed[j].events) {
      e.sim_time += shift;
      e.start += shift;
      e.end += shift;
    }
  }
  const Result<obs::AssembleReport> fixed = obs::AssembleJournals(skewed);
  ASSERT_TRUE(fixed.ok());
  EXPECT_TRUE(fixed->complete);
  EXPECT_EQ(fixed->spans, base->spans);
  // Alignment had to raise at least one journal's clock...
  bool any_offset = false;
  for (const double off : fixed->clock_offsets) {
    EXPECT_GE(off, 0.0);
    if (off > 0.0) any_offset = true;
  }
  EXPECT_TRUE(any_offset);
  // ...and the rebuilt structure (peers, parentage, kinds) must come out
  // identical to the unskewed assembly; only timestamps may differ.
  ASSERT_EQ(fixed->tracer.span_count(), base->tracer.span_count());
  for (size_t i = 0; i < base->tracer.span_count(); ++i) {
    const obs::Span& want = base->tracer.spans()[i];
    const obs::Span& got = fixed->tracer.spans()[i];
    EXPECT_EQ(got.peer, want.peer) << "span " << i;
    EXPECT_EQ(got.parent, want.parent) << "span " << i;
    EXPECT_EQ(got.kind, want.kind) << "span " << i;
    EXPECT_EQ(got.depth, want.depth) << "span " << i;
  }
}

// --- Fault injection --------------------------------------------------------

TEST(JournalFaultTest, LossDupAndJitterKeepTheTreeByteEquivalent) {
  const MidasOverlay overlay =
      MakeMidasOverlay(MidasSplitRule::kDataMedian, false, 113);
  obs::Tracer tracer;
  obs::JournalSet journal;
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  engine.SetTracer(&tracer);
  engine.SetJournal(&journal);
  Rng rng(113);
  std::vector<double> weights{-0.5, -0.5};
  LinearScorer scorer(weights);
  const auto result =
      engine.Run({.initiator = overlay.RandomPeer(&rng),
                  .query = TopKQuery{&scorer, 6},
                  .ripple = RippleParam::Hops(2),
                  .retry = {.timeout = 8.0, .max_retries = 6},
                  .fault = {.loss_rate = 0.2,
                            .dup_rate = 0.15,
                            .delay_jitter = 0.5,
                            .seed = 4},
                  .trace_id = 1});
  ASSERT_TRUE(result.complete);
  EXPECT_GT(result.coverage.messages_lost, 0u);

  // The journal saw the fault layer at work...
  uint64_t retransmits = 0, drops = 0;
  for (const obs::PeerJournal& pj : Snapshots(journal)) {
    for (const obs::JournalEvent& e : pj.events) {
      if (e.kind == obs::JournalEventKind::kRetransmit) ++retransmits;
      if (e.kind == obs::JournalEventKind::kDrop) ++drops;
    }
  }
  EXPECT_GT(drops, 0u);
  EXPECT_GT(retransmits, 0u);

  // ...and the assembled tree is still exactly the tracer's: faults shape
  // the trace's content, never its consistency.
  const Result<obs::AssembleReport> report =
      obs::AssembleJournals(Snapshots(journal));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->complete);
  // Every dropped frame was eventually retransmitted under the same message
  // id, and the assembler pairs the earliest send with the earliest recv per
  // id — so recovered losses leave no unmatched sends behind.
  EXPECT_EQ(report->unmatched_sends, 0u);
  EXPECT_EQ(report->tracer.ToAscii(), tracer.ToAscii());
}

TEST(JournalFaultTest, CrashesFlagTheAssemblyIncomplete) {
  const MidasOverlay overlay =
      MakeMidasOverlay(MidasSplitRule::kDataMedian, false, 115);
  Rng rng(115);
  std::vector<double> weights{-0.5, -0.5};
  LinearScorer scorer(weights);
  const PeerId initiator = overlay.RandomPeer(&rng);
  bool saw_partial = false;
  for (uint64_t seed = 1; seed <= 12 && !saw_partial; ++seed) {
    obs::Tracer tracer;
    obs::JournalSet journal;
    AsyncEngine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
    engine.SetTracer(&tracer);
    engine.SetJournal(&journal);
    const auto result =
        engine.Run({.initiator = initiator,
                    .query = TopKQuery{&scorer, 6},
                    .ripple = RippleParam::Hops(1),
                    .retry = {.timeout = 8.0, .max_retries = 2},
                    .fault = {.crash_rate = 0.08,
                              .crash_window = 16.0,
                              .seed = seed},
                    .trace_id = 1});
    if (result.complete) continue;
    saw_partial = true;
    // A crash made the answer partial; the journals must say so, and the
    // assembler must refuse to call the rebuilt tree complete.
    const Result<obs::AssembleReport> report =
        obs::AssembleJournals(Snapshots(journal));
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report->crashes, 0u);
    EXPECT_FALSE(report->complete);
  }
  EXPECT_TRUE(saw_partial)
      << "no crash schedule produced a partial answer; raise crash_rate";
}

}  // namespace
}  // namespace ripple
