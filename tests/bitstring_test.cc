#include "common/bitstring.h"

#include <gtest/gtest.h>

#include "overlay/midas/patterns.h"

namespace ripple {
namespace {

TEST(BitStringTest, EmptyIsRoot) {
  BitString b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0);
  EXPECT_EQ(b.ToString(), "<root>");
}

TEST(BitStringTest, FromStringRoundTrip) {
  BitString b("0110");
  EXPECT_EQ(b.size(), 4);
  EXPECT_FALSE(b.bit(0));
  EXPECT_TRUE(b.bit(1));
  EXPECT_TRUE(b.bit(2));
  EXPECT_FALSE(b.bit(3));
  EXPECT_EQ(b.ToString(), "0110");
}

TEST(BitStringTest, FromUint) {
  EXPECT_EQ(BitString::FromUint(0b101, 3).ToString(), "101");
  EXPECT_EQ(BitString::FromUint(1, 4).ToString(), "0001");
  EXPECT_EQ(BitString::FromUint(0, 0).ToString(), "<root>");
}

TEST(BitStringTest, ChildParentSibling) {
  BitString b("10");
  EXPECT_EQ(b.Child(true).ToString(), "101");
  EXPECT_EQ(b.Child(false).ToString(), "100");
  EXPECT_EQ(b.Parent().ToString(), "1");
  EXPECT_EQ(b.Sibling().ToString(), "11");
  EXPECT_EQ(BitString("1").Parent().ToString(), "<root>");
}

TEST(BitStringTest, PrefixAndIsPrefixOf) {
  BitString b("110101");
  EXPECT_EQ(b.Prefix(0).ToString(), "<root>");
  EXPECT_EQ(b.Prefix(3).ToString(), "110");
  EXPECT_TRUE(BitString("110").IsPrefixOf(b));
  EXPECT_TRUE(b.IsPrefixOf(b));
  EXPECT_TRUE(BitString().IsPrefixOf(b));
  EXPECT_FALSE(BitString("111").IsPrefixOf(b));
  EXPECT_FALSE(b.IsPrefixOf(BitString("110")));
}

TEST(BitStringTest, CommonPrefixLength) {
  EXPECT_EQ(BitString("1010").CommonPrefixLength(BitString("1001")), 2);
  EXPECT_EQ(BitString("111").CommonPrefixLength(BitString("111")), 3);
  EXPECT_EQ(BitString("0").CommonPrefixLength(BitString("1")), 0);
  EXPECT_EQ(BitString().CommonPrefixLength(BitString("101")), 0);
}

TEST(BitStringTest, DeepStringsBeyondOneWord) {
  BitString b;
  for (int i = 0; i < 200; ++i) b.Append(i % 3 == 0);
  EXPECT_EQ(b.size(), 200);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(b.bit(i), i % 3 == 0);
  // Prefix at a non-word boundary.
  BitString p = b.Prefix(130);
  EXPECT_EQ(p.size(), 130);
  EXPECT_TRUE(p.IsPrefixOf(b));
  // Sibling flips the final bit only.
  BitString s = b.Sibling();
  EXPECT_EQ(s.size(), 200);
  EXPECT_EQ(s.CommonPrefixLength(b), 199);
}

TEST(BitStringTest, EqualityIgnoresStaleHighBits) {
  BitString a("101");
  BitString b2 = BitString("1011").Parent();
  EXPECT_EQ(a, b2);
  EXPECT_TRUE(b2.IsPrefixOf(BitString("1010")));
}

TEST(BitStringTest, LexicographicOrder) {
  EXPECT_LT(BitString("0"), BitString("1"));
  EXPECT_LT(BitString("01"), BitString("10"));
  EXPECT_LT(BitString("1"), BitString("10"));  // prefix first
  EXPECT_FALSE(BitString("10") < BitString("10"));
}

// --- Border patterns (Section 5.2) -----------------------------------------

TEST(PatternsTest, TwoDimensionalPaperPatterns) {
  // p_h = (X0)*X? : free in dim 0, zero at odd positions.
  EXPECT_TRUE(MatchesBorderPattern(BitString("1010"), 2, 0));
  EXPECT_TRUE(MatchesBorderPattern(BitString("00"), 2, 0));
  EXPECT_FALSE(MatchesBorderPattern(BitString("01"), 2, 0));
  // p_v = (0X)*0? : free in dim 1.
  EXPECT_TRUE(MatchesBorderPattern(BitString("0101"), 2, 1));
  EXPECT_FALSE(MatchesBorderPattern(BitString("10"), 2, 1));
}

TEST(PatternsTest, RootMatchesEverything) {
  EXPECT_TRUE(MatchesAnyBorderPattern(BitString(), 2));
  EXPECT_TRUE(MatchesAnyBorderPattern(BitString(), 5));
}

TEST(PatternsTest, AnyPatternIsUnionOfPerDimension) {
  // "11" in 2-d violates both patterns.
  EXPECT_FALSE(MatchesAnyBorderPattern(BitString("11"), 2));
  // "10" matches p_0, "01" matches p_1.
  EXPECT_TRUE(MatchesAnyBorderPattern(BitString("10"), 2));
  EXPECT_TRUE(MatchesAnyBorderPattern(BitString("01"), 2));
}

TEST(PatternsTest, ThreeDimensionalPatterns) {
  // In 3-d, rounds are (b0 b1 b2); p_1 requires b0 = b2 = 0 in each round.
  EXPECT_TRUE(MatchesBorderPattern(BitString("010010"), 3, 1));
  EXPECT_FALSE(MatchesBorderPattern(BitString("010100"), 3, 1));
  // Partial final round.
  EXPECT_TRUE(MatchesBorderPattern(BitString("0100"), 3, 1));
}

TEST(PatternsTest, NonMatchingPrefixNeverRecovers) {
  // Property from the paper: a peer id not matching any pattern prefixes
  // only non-matching ids.
  BitString bad("11");  // matches nothing in 2-d
  ASSERT_FALSE(MatchesAnyBorderPattern(bad, 2));
  for (int ext = 0; ext < 16; ++ext) {
    BitString b = bad;
    for (int i = 0; i < 4; ++i) b.Append((ext >> i) & 1);
    EXPECT_FALSE(MatchesAnyBorderPattern(b, 2)) << b.ToString();
  }
}

TEST(PatternsTest, PrefixCanMatchAgreesWithMatching) {
  for (int v = 0; v < 64; ++v) {
    BitString b = BitString::FromUint(static_cast<uint64_t>(v), 6);
    EXPECT_EQ(PrefixCanMatchBorderPattern(b, 2),
              MatchesAnyBorderPattern(b, 2));
  }
}

}  // namespace
}  // namespace ripple
