// Unit tests for the materialized abstract functions, one algorithm at a
// time (paper Algorithms 4-9: top-k; 10-15: skyline; 16-21:
// diversification), independent of any overlay.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/midas/midas.h"
#include "queries/diversify.h"
#include "queries/skyline.h"
#include "queries/topk.h"
#include "ripple/engine.h"
#include "store/local_algos.h"
#include "store/local_store.h"

namespace ripple {
namespace {

LocalStore StoreWith(std::initializer_list<Tuple> ts) {
  LocalStore s;
  for (const Tuple& t : ts) s.Add(t);
  return s;
}

// --- Top-k: Algorithms 4-9 ----------------------------------------------------

TEST(TopKAlgorithmsTest, Alg4ComputeLocalStateFillsToK) {
  // Line 1: tuples at/above tau; lines 2-3: best of the rest when the
  // global goal is unmet.
  const LocalStore store = StoreWith({Tuple{1, Point{0.9}},   // score -0.9
                                      Tuple{2, Point{0.5}},   // score -0.5
                                      Tuple{3, Point{0.1}}}); // score -0.1
  LinearScorer s({-1.0});
  TopKPolicy policy;
  // Global already has 1 tuple above -0.3; k = 3: one local above tau
  // (-0.1), plus one more of the rest (3 - 1 - 1 = 1 -> the -0.5 tuple).
  const TopKState l = policy.ComputeLocalState(
      store, TopKQuery{&s, 3}, TopKState{1, -0.3});
  EXPECT_EQ(l.m, 2u);
  EXPECT_DOUBLE_EQ(l.tau, -0.5);
}

TEST(TopKAlgorithmsTest, Alg4NoFillWhenGlobalGoalMet) {
  const LocalStore store = StoreWith({Tuple{1, Point{0.9}},
                                      Tuple{2, Point{0.05}}});
  LinearScorer s({-1.0});
  TopKPolicy policy;
  const TopKState l = policy.ComputeLocalState(
      store, TopKQuery{&s, 2}, TopKState{2, -0.3});
  // Only the tuple above tau counts; no filling.
  EXPECT_EQ(l.m, 1u);
  EXPECT_DOUBLE_EQ(l.tau, -0.05);
}

TEST(TopKAlgorithmsTest, Alg5And7MergeTightensWhenWitnessed) {
  TopKPolicy policy;
  const TopKQuery q{nullptr, 3};
  // Local alone witnesses k=3 above -0.2: merged tau must rise to -0.2.
  const TopKState merged = policy.ComputeGlobalState(
      q, TopKState{3, -0.5}, TopKState{3, -0.2});
  EXPECT_GE(merged.m, 3u);
  EXPECT_DOUBLE_EQ(merged.tau, -0.2);
  // Neither side alone suffices: counts add at the lower threshold.
  const TopKState weak = policy.ComputeGlobalState(
      q, TopKState{2, -0.5}, TopKState{2, -0.2});
  EXPECT_EQ(weak.m, 4u);
  EXPECT_DOUBLE_EQ(weak.tau, -0.5);
}

TEST(TopKAlgorithmsTest, Alg6LocalAnswerUsesLocalThreshold) {
  const LocalStore store = StoreWith({Tuple{1, Point{0.9}},
                                      Tuple{2, Point{0.5}},
                                      Tuple{3, Point{0.1}}});
  LinearScorer s({-1.0});
  TopKPolicy policy;
  const TupleVec a = policy.ComputeLocalAnswer(store, TopKQuery{&s, 2},
                                               TopKState{2, -0.5});
  ASSERT_EQ(a.size(), 2u);  // -0.1 and the -0.5 witness, not -0.9
  EXPECT_EQ(a[0].id, 2u);
  EXPECT_EQ(a[1].id, 3u);
}

TEST(TopKAlgorithmsTest, Alg8RelevanceRules) {
  TopKPolicy policy;
  LinearScorer s({-1.0});
  const TopKQuery q{&s, 5};
  const Rect good(Point{0.0}, Point{0.2});  // f+ = 0
  const Rect bad(Point{0.6}, Point{0.9});   // f+ = -0.6
  // m < k: everything is relevant.
  EXPECT_TRUE(policy.IsLinkRelevant(q, TopKState{2, -0.1}, bad));
  // m >= k: only areas whose f+ beats tau.
  EXPECT_TRUE(policy.IsLinkRelevant(q, TopKState{5, -0.1}, good));
  EXPECT_FALSE(policy.IsLinkRelevant(q, TopKState{5, -0.1}, bad));
  // Boundary: f+ == tau stays relevant (ties must not be lost).
  EXPECT_TRUE(policy.IsLinkRelevant(q, TopKState{5, -0.6}, bad));
}

TEST(TopKAlgorithmsTest, Alg9PriorityOrdersByUpperBound) {
  TopKPolicy policy;
  LinearScorer s({-1.0});
  const TopKQuery q{&s, 5};
  const Rect near_origin(Point{0.0}, Point{0.5});
  const Rect far(Point{0.5}, Point{1.0});
  EXPECT_GT(policy.LinkPriority(q, near_origin), policy.LinkPriority(q, far));
}

// --- Skyline: Algorithms 10-15 --------------------------------------------------

TEST(SkylineAlgorithmsTest, Alg10LocalStateKeepsOnlySurvivors) {
  const LocalStore store = StoreWith({Tuple{1, Point{0.2, 0.8}},
                                      Tuple{2, Point{0.8, 0.2}},
                                      Tuple{3, Point{0.9, 0.9}}});
  SkylinePolicy policy;
  // Global state dominates tuple 2 but not tuple 1.
  SkylineState g;
  g.tuples = {Tuple{100, Point{0.5, 0.1}}};
  const SkylineState l =
      policy.ComputeLocalState(store, SkylineQuery{}, g);
  ASSERT_EQ(l.tuples.size(), 1u);
  EXPECT_EQ(l.tuples[0].id, 1u);  // 2 dominated by 100; 3 dominated locally
}

TEST(SkylineAlgorithmsTest, Alg11GlobalStateIsMergedSkyline) {
  SkylinePolicy policy;
  SkylineState g;
  g.tuples = {Tuple{1, Point{0.5, 0.5}}};
  SkylineState l;
  l.tuples = {Tuple{2, Point{0.2, 0.9}}, Tuple{3, Point{0.6, 0.6}}};
  const SkylineState merged =
      policy.ComputeGlobalState(SkylineQuery{}, g, l);
  ASSERT_EQ(merged.tuples.size(), 2u);  // 3 dominated by 1
  EXPECT_EQ(merged.tuples[0].id, 1u);
  EXPECT_EQ(merged.tuples[1].id, 2u);
  EXPECT_FALSE(merged.dominators.empty());
}

TEST(SkylineAlgorithmsTest, Alg14RegionPrunedOnlyWhenFullyDominated) {
  SkylinePolicy policy;
  SkylineState g;
  g.tuples = {Tuple{1, Point{0.3, 0.3}}};
  g.dominators = g.tuples;
  const Rect dominated(Point{0.5, 0.5}, Point{0.9, 0.9});
  const Rect partial(Point{0.2, 0.5}, Point{0.9, 0.9});  // corner beats s_x
  EXPECT_FALSE(policy.IsLinkRelevant(SkylineQuery{}, g, dominated));
  EXPECT_TRUE(policy.IsLinkRelevant(SkylineQuery{}, g, partial));
}

TEST(SkylineAlgorithmsTest, Alg15PrefersRegionsNearOrigin) {
  SkylinePolicy policy;
  const Rect near_origin(Point{0.0, 0.0}, Point{0.4, 0.4});
  const Rect far(Point{0.6, 0.6}, Point{1.0, 1.0});
  EXPECT_GT(policy.LinkPriority(SkylineQuery{}, near_origin),
            policy.LinkPriority(SkylineQuery{}, far));
}

// --- Diversification: Algorithms 16-21 -------------------------------------------

TEST(DivAlgorithmsTest, Alg16LocalStateTakesBetterPhi) {
  const LocalStore store = StoreWith({Tuple{1, Point{0.5, 0.5}}});
  DivPolicy policy;
  const DivQuery q =
      MakeDivQuery(DiversifyObjective{Point{0.5, 0.5}, 1.0, Norm::kL1}, {});
  // Local best phi = lambda * dr = 0 (the tuple sits on the query point).
  const DivState improved =
      policy.ComputeLocalState(store, q, DivState{0.7});
  EXPECT_DOUBLE_EQ(improved.tau, 0.0);
  // Threshold already better than anything local: keep it.
  const DivState kept = policy.ComputeLocalState(store, q, DivState{-1.0});
  EXPECT_DOUBLE_EQ(kept.tau, -1.0);
}

TEST(DivAlgorithmsTest, Alg18AnswerOnlyWhenAttainingThreshold) {
  const LocalStore store = StoreWith({Tuple{1, Point{0.4, 0.6}}});
  DivPolicy policy;
  const DivQuery q =
      MakeDivQuery(DiversifyObjective{Point{0.5, 0.5}, 1.0, Norm::kL1}, {});
  const double phi = q.Phi(Point{0.4, 0.6});
  EXPECT_EQ(policy.ComputeLocalAnswer(store, q, DivState{phi}).size(), 1u);
  EXPECT_TRUE(
      policy.ComputeLocalAnswer(store, q, DivState{phi - 0.01}).empty());
}

TEST(DivAlgorithmsTest, Alg19MergeTakesMinimum) {
  DivPolicy policy;
  const DivQuery q =
      MakeDivQuery(DiversifyObjective{Point{0.5, 0.5}, 0.5, Norm::kL1}, {});
  DivState mine{0.4};
  policy.MergeLocalStates(q, &mine, {DivState{0.7}, DivState{0.2}});
  EXPECT_DOUBLE_EQ(mine.tau, 0.2);
}

TEST(DivAlgorithmsTest, Alg20RelevantOnlyBelowThreshold) {
  DivPolicy policy;
  const DivQuery q =
      MakeDivQuery(DiversifyObjective{Point{0.0, 0.0}, 1.0, Norm::kL1}, {});
  const Rect near_q(Point{0.0, 0.0}, Point{0.2, 0.2});   // phi- = 0
  const Rect far(Point{0.6, 0.6}, Point{1.0, 1.0});      // phi- = 1.2
  EXPECT_TRUE(policy.IsLinkRelevant(q, DivState{0.5}, near_q));
  EXPECT_FALSE(policy.IsLinkRelevant(q, DivState{0.5}, far));
  // Strict: phi- == tau is prunable (nothing strictly better inside).
  EXPECT_FALSE(policy.IsLinkRelevant(q, DivState{1.2}, far));
}

TEST(DivAlgorithmsTest, Alg21PriorityPrefersLowPhiBound) {
  DivPolicy policy;
  const DivQuery q =
      MakeDivQuery(DiversifyObjective{Point{0.0, 0.0}, 1.0, Norm::kL1}, {});
  const Rect near_q(Point{0.0, 0.0}, Point{0.2, 0.2});
  const Rect far(Point{0.6, 0.6}, Point{1.0, 1.0});
  EXPECT_GT(policy.LinkPriority(q, near_q), policy.LinkPriority(q, far));
}

// --- Engine invariant: each peer processes a query at most once -----------------

TEST(EngineInvariantTest, RestrictionAreasVisitEachPeerOnce) {
  MidasOptions opt;
  opt.dims = 3;
  opt.seed = 77;
  MidasOverlay overlay(opt);
  Rng rng(79);
  const TupleVec ts = data::MakeUniform(1500, 3, &rng);
  for (const Tuple& t : ts) overlay.InsertTuple(t);
  while (overlay.NumPeers() < 200) overlay.Join();

  Engine<MidasOverlay, SkylinePolicy> engine(&overlay, SkylinePolicy{});
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Hops(2), RippleParam::Slow()}) {
    std::vector<int> visits(overlay.NumPeers() + 256, 0);
    engine.SetVisitObserver([&](PeerId id) { ++visits[id]; });
    (void)engine.Run({.initiator = overlay.RandomPeer(&rng), .query = SkylineQuery{}, .ripple = r});
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_LE(visits[i], 1) << "peer " << i << " r=" << r;
    }
  }
}

}  // namespace
}  // namespace ripple
