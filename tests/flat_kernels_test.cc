// Property tests for the flat SoA kernels behind the per-peer hot path:
// sweeps dimensionality 2-10 and the three PISA-style score-series shapes
// (increasing, decreasing, random) and asserts the branch-light kernels
// return byte-identical results to the retained scalar oracles. Also
// covers the building blocks (FlatStore, BoundedTopK, Arena, ScoreBlock
// bit-identity) and cross-validates both engines end to end on top of the
// refactored store.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include "common/arena.h"
#include "common/kernel_counters.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "geom/dominance.h"
#include "geom/scoring.h"
#include "overlay/midas/midas.h"
#include "queries/skyline.h"
#include "queries/topk.h"
#include "ripple/engine.h"
#include "sim/async_engine.h"
#include "store/bounded_topk.h"
#include "store/flat_store.h"
#include "store/kd_index.h"
#include "store/local_algos.h"
#include "store/local_store.h"

namespace ripple {
namespace {

// --- workload shapes --------------------------------------------------------

enum class Series { kIncreasing, kDecreasing, kRandom };

const char* Name(Series s) {
  switch (s) {
    case Series::kIncreasing: return "increasing";
    case Series::kDecreasing: return "decreasing";
    case Series::kRandom: return "random";
  }
  return "?";
}

/// Uniform tuples whose rows arrive in the given score order under
/// `scorer` — the adversarial orders for a bounded top-k heap (increasing
/// admits every row; decreasing admits only the first k).
TupleVec ShapedTuples(size_t n, int dims, Series series,
                      const Scorer& scorer, uint64_t seed) {
  Rng rng(seed);
  TupleVec out = data::MakeUniform(n, dims, &rng);
  if (series == Series::kRandom) return out;
  std::stable_sort(out.begin(), out.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     return scorer.Score(a.key) < scorer.Score(b.key);
                   });
  if (series == Series::kDecreasing) std::reverse(out.begin(), out.end());
  return out;
}

LinearScorer PreferenceScorer(int dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w(dims);
  for (double& v : w) v = -rng.UniformDouble();
  return LinearScorer(w);
}

bool BitIdentical(const TupleVec& a, const TupleVec& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id) return false;
    if (a[i].key.dims() != b[i].key.dims()) return false;
    for (int d = 0; d < a[i].key.dims(); ++d) {
      const double x = a[i].key[d];
      const double y = b[i].key[d];
      if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

// --- SoA kernels vs scalar oracles, dims 2-10 x 3 series --------------------

TEST(FlatKernelsProperty, SelectTopKMatchesScalarOracle) {
  for (int dims = 2; dims <= kMaxDims; ++dims) {
    const LinearScorer scorer = PreferenceScorer(dims, 100 + dims);
    for (Series series :
         {Series::kIncreasing, Series::kDecreasing, Series::kRandom}) {
      const TupleVec ts =
          ShapedTuples(300, dims, series, scorer, 200 + dims);
      auto score = [&](const Point& p) { return scorer.Score(p); };
      for (size_t k : {size_t{1}, size_t{7}, size_t{50}, size_t{1000}}) {
        const TupleVec got = SelectTopK(ts, score, k);
        const TupleVec want = SelectTopKScalar(ts, score, k);
        EXPECT_TRUE(BitIdentical(got, want))
            << "dims=" << dims << " series=" << Name(series) << " k=" << k;
      }
    }
  }
}

TEST(FlatKernelsProperty, SkylineKernelsMatchScalarOracles) {
  for (int dims = 2; dims <= kMaxDims; ++dims) {
    const LinearScorer scorer = PreferenceScorer(dims, 300 + dims);
    for (Series series :
         {Series::kIncreasing, Series::kDecreasing, Series::kRandom}) {
      const TupleVec ts =
          ShapedTuples(250, dims, series, scorer, 400 + dims);
      const TupleVec sky = ComputeSkyline(ts);
      EXPECT_TRUE(BitIdentical(sky, ComputeSkylineScalar(ts)))
          << "dims=" << dims << " series=" << Name(series);
      // Merge of two halves' skylines, kernel vs oracle.
      const TupleVec a =
          ComputeSkyline(TupleVec(ts.begin(), ts.begin() + 125));
      const TupleVec b = ComputeSkyline(TupleVec(ts.begin() + 125, ts.end()));
      EXPECT_TRUE(BitIdentical(MergeSkylines(a, b), MergeSkylinesScalar(a, b)))
          << "dims=" << dims << " series=" << Name(series);
    }
  }
}

TEST(FlatKernelsProperty, KdIndexScorerPathsMatchScalarOracle) {
  for (int dims = 2; dims <= kMaxDims; ++dims) {
    const LinearScorer scorer = PreferenceScorer(dims, 500 + dims);
    for (Series series :
         {Series::kIncreasing, Series::kDecreasing, Series::kRandom}) {
      const TupleVec ts =
          ShapedTuples(300, dims, series, scorer, 600 + dims);
      KdIndex idx(ts);
      auto score = [&](const Point& p) { return scorer.Score(p); };
      for (size_t k : {size_t{1}, size_t{13}, size_t{64}}) {
        EXPECT_TRUE(
            BitIdentical(idx.TopK(scorer, k), SelectTopKScalar(ts, score, k)))
            << "dims=" << dims << " series=" << Name(series) << " k=" << k;
      }
      // CollectAtLeast at a tau hitting roughly half the tuples.
      const double tau = scorer.Score(ts[ts.size() / 2].key);
      TupleVec got;
      idx.CollectAtLeast(scorer, tau, &got);
      TupleVec want;
      for (const Tuple& t : ts) {
        if (scorer.Score(t.key) >= tau) want.push_back(t);
      }
      std::sort(got.begin(), got.end(), TupleIdLess());
      std::sort(want.begin(), want.end(), TupleIdLess());
      EXPECT_TRUE(BitIdentical(got, want))
          << "dims=" << dims << " series=" << Name(series);
    }
  }
}

TEST(FlatKernelsProperty, LocalStorePrimitivesMatchOracles) {
  // Both the indexed (>= threshold) and scan (< threshold) store paths
  // against the scalar oracle, on a mixed series shape.
  for (size_t n : {size_t{20}, size_t{400}}) {
    for (int dims : {2, 5, 10}) {
      const LinearScorer scorer = PreferenceScorer(dims, 700 + dims);
      const TupleVec ts =
          ShapedTuples(n, dims, Series::kRandom, scorer, 800 + dims);
      LocalStore store;
      store.AddAll(ts);
      auto score = [&](const Point& p) { return scorer.Score(p); };
      const TupleVec oracle = SelectTopKScalar(ts, score, 9);
      EXPECT_TRUE(BitIdentical(
          store.TopKAbove(scorer, 9, -1e100), oracle))
          << "n=" << n << " dims=" << dims;
      EXPECT_TRUE(BitIdentical(store.LocalSkyline(), ComputeSkylineScalar(ts)))
          << "n=" << n << " dims=" << dims;
    }
  }
}

// --- ScoreBlock bit-identity ------------------------------------------------

TEST(ScoreBlockTest, BitIdenticalToScalarScore) {
  for (int dims = 2; dims <= kMaxDims; ++dims) {
    Rng rng(900 + dims);
    const TupleVec ts = data::MakeUniform(257, dims, &rng);
    store::FlatStore flat;
    flat.AppendAll(ts);
    std::vector<const Scorer*> scorers;
    const LinearScorer lin = PreferenceScorer(dims, 910 + dims);
    Point anchor(dims);
    for (int d = 0; d < dims; ++d) anchor[d] = rng.UniformDouble();
    const NearestScorer l1(anchor, Norm::kL1);
    const NearestScorer l2(anchor, Norm::kL2);
    const NearestScorer linf(anchor, Norm::kLInf);
    scorers = {&lin, &l1, &l2, &linf};
    std::vector<double> block(flat.size());
    for (const Scorer* s : scorers) {
      s->ScoreBlock(flat.cols(), flat.dims(), flat.size(), block.data());
      for (size_t i = 0; i < flat.size(); ++i) {
        const double want = s->Score(ts[i].key);
        EXPECT_EQ(std::memcmp(&block[i], &want, sizeof(double)), 0)
            << "dims=" << dims << " row=" << i;
      }
    }
  }
}

// --- Dominance kernel -------------------------------------------------------

TEST(DominanceKernelTest, ColumnKernelAgreesWithScalarDominates) {
  for (int dims : {2, 4, 7, 10}) {
    Rng rng(1000 + dims);
    const TupleVec sky = ComputeSkyline(data::MakeUniform(200, dims, &rng));
    store::FlatStore flat;
    flat.AppendAll(sky);
    const TupleVec probes = data::MakeUniform(300, dims, &rng);
    for (const Tuple& p : probes) {
      bool want = false;
      for (const Tuple& s : sky) {
        if (Dominates(s.key, p.key)) {
          want = true;
          break;
        }
      }
      EXPECT_EQ(AnyDominatesColumns(flat.cols(), dims, flat.size(), p.key),
                want)
          << "dims=" << dims;
    }
  }
}

// --- FlatStore --------------------------------------------------------------

TEST(FlatStoreTest, AppendMaterializeRoundTrip) {
  Rng rng(31);
  const TupleVec ts = data::MakeUniform(50, 3, &rng);
  store::FlatStore flat;
  flat.AppendAll(ts);
  EXPECT_EQ(flat.size(), 50u);
  EXPECT_EQ(flat.dims(), 3);
  EXPECT_TRUE(BitIdentical(flat.Materialize(), ts));
  EXPECT_EQ(flat.TupleAt(7).id, ts[7].id);
}

TEST(FlatStoreTest, ClearKeepsDimsAndReshapesWhenEmpty) {
  store::FlatStore flat;
  flat.Append(Tuple{1, Point{0.1, 0.2}});
  EXPECT_EQ(flat.dims(), 2);
  flat.Clear();
  EXPECT_EQ(flat.dims(), 2);
  EXPECT_TRUE(flat.empty());
  flat.Append(Tuple{2, Point{0.1, 0.2, 0.3}});  // empty store re-shapes
  EXPECT_EQ(flat.dims(), 3);
  EXPECT_EQ(flat.size(), 1u);
}

TEST(FlatStoreTest, ColumnWiseAbsorbEqualsRowWise) {
  Rng rng(37);
  const TupleVec a = data::MakeUniform(20, 4, &rng);
  const TupleVec b = data::MakeUniform(30, 4, &rng);
  store::FlatStore lhs;
  lhs.AppendAll(a);
  store::FlatStore rhs;
  rhs.AppendAll(b);
  lhs.AppendAll(rhs);
  TupleVec want = a;
  want.insert(want.end(), b.begin(), b.end());
  EXPECT_TRUE(BitIdentical(lhs.Materialize(), want));
}

TEST(FlatStoreTest, ExtractIfSplitsStably) {
  store::FlatStore flat;
  for (uint64_t i = 0; i < 10; ++i) {
    flat.Append(Tuple{i, Point{static_cast<double>(i) / 10.0, 0.5}});
  }
  std::vector<uint8_t> mask(10, 0);
  mask[1] = mask[4] = mask[9] = 1;
  const TupleVec moved = flat.ExtractIf(mask);
  ASSERT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved[0].id, 1u);
  EXPECT_EQ(moved[1].id, 4u);
  EXPECT_EQ(moved[2].id, 9u);
  ASSERT_EQ(flat.size(), 7u);
  EXPECT_EQ(flat.id(0), 0u);
  EXPECT_EQ(flat.id(1), 2u);
  EXPECT_EQ(flat.id(6), 8u);
}

TEST(FlatStoreTest, PermutedGathersRows) {
  store::FlatStore flat;
  for (uint64_t i = 0; i < 5; ++i) {
    flat.Append(Tuple{i, Point{static_cast<double>(i), 1.0 - i}});
  }
  const store::FlatStore out = flat.Permuted({4, 0, 2, 1, 3});
  EXPECT_EQ(out.id(0), 4u);
  EXPECT_EQ(out.id(2), 2u);
  EXPECT_DOUBLE_EQ(out.col(0)[0], 4.0);
  EXPECT_DOUBLE_EQ(out.col(1)[1], 1.0);
}

// --- BoundedTopK ------------------------------------------------------------

TEST(BoundedTopKTest, KeepsBestKWithIdTieBreak) {
  store::BoundedTopK q(3);
  EXPECT_FALSE(q.full());
  q.Insert(1.0, 10, 0);
  q.Insert(2.0, 20, 1);
  q.Insert(2.0, 5, 2);  // ties with id 20; smaller id ranks higher
  EXPECT_TRUE(q.full());
  q.Insert(0.5, 99, 3);  // worse than the current worst: rejected
  EXPECT_EQ(q.size(), 3u);
  q.Insert(3.0, 7, 4);  // displaces the worst (score 1.0)
  const auto sorted = q.SortedDescending();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 7u);
  EXPECT_EQ(sorted[1].id, 5u);  // 2.0 tie: id 5 before id 20
  EXPECT_EQ(sorted[2].id, 20u);
}

TEST(BoundedTopKTest, ThresholdTracksKthScore) {
  store::BoundedTopK q(2);
  EXPECT_LT(q.threshold(), -1e300);  // -inf until full
  q.Insert(1.0, 1, 0);
  q.Insert(5.0, 2, 0);
  EXPECT_DOUBLE_EQ(q.threshold(), 1.0);
  q.Insert(3.0, 3, 0);
  EXPECT_DOUBLE_EQ(q.threshold(), 3.0);
  // Equal score, larger id than the root: not admitted.
  EXPECT_FALSE(q.WouldAdmit(3.0, 100));
  // Equal score, smaller id: admitted (deterministic total order).
  EXPECT_TRUE(q.WouldAdmit(3.0, 1));
}

TEST(BoundedTopKTest, CountsHeapPushes) {
  ResetKernelCounters();
  store::BoundedTopK q(2);
  q.Insert(1.0, 1, 0);
  q.Insert(2.0, 2, 0);
  q.Insert(0.1, 3, 0);  // rejected: no push
  q.Insert(3.0, 4, 0);  // replaces root: push
  EXPECT_EQ(LocalKernelCounters().heap_pushes, 3u);
  ResetKernelCounters();
}

// --- Arena ------------------------------------------------------------------

TEST(ArenaTest, RewindReusesMemoryAndBlocksStayStable) {
  Arena arena;
  const Arena::Mark start = arena.GetMark();
  double* a = arena.AllocateArray<double>(100);
  a[99] = 42.0;
  {
    ArenaScope scope(&arena);
    double* b = arena.AllocateArray<double>(1000);
    b[0] = 1.0;
    // Growing into a new block never moves previous allocations.
    double* c = arena.AllocateArray<double>(100000);
    c[99999] = 7.0;
    EXPECT_EQ(a[99], 42.0);
    EXPECT_EQ(b[0], 1.0);
  }
  // After the scope, the next allocation reuses the rewound space.
  double* d = arena.AllocateArray<double>(1000);
  (void)d;
  EXPECT_EQ(a[99], 42.0);
  arena.Rewind(start);
  EXPECT_GT(arena.TotalCapacity(), 0u);
}

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  for (int i = 0; i < 10; ++i) {
    void* p = arena.Allocate(24, alignof(double));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(double), 0u);
    (void)arena.Allocate(1, 1);  // misalign the bump pointer
  }
}

// --- engines on top of the flat store ---------------------------------------

struct Net {
  MidasOverlay overlay;
  TupleVec all;
};

Net MakeNet(size_t peers, size_t tuples, int dims, uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.split_rule = MidasSplitRule::kDataMedian;
  Net net{MidasOverlay(opt), {}};
  Rng rng(seed ^ 0xabc);
  net.all = data::MakeUniform(tuples, dims, &rng);
  for (const Tuple& t : net.all) net.overlay.InsertTuple(t);
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  return net;
}

template <typename Policy, typename Query>
void CrossValidate(const Net& net, const Query& q, RippleParam r,
                   PeerId initiator) {
  Engine<MidasOverlay, Policy> sync_engine(&net.overlay, Policy{});
  AsyncEngine<MidasOverlay, Policy> async_engine(&net.overlay, Policy{});
  const auto sync =
      sync_engine.Run({.initiator = initiator, .query = q, .ripple = r});
  const auto async =
      async_engine.Run({.initiator = initiator, .query = q, .ripple = r});
  ASSERT_EQ(async.answer.size(), sync.answer.size());
  for (size_t i = 0; i < sync.answer.size(); ++i) {
    EXPECT_EQ(async.answer[i].id, sync.answer[i].id);
  }
  EXPECT_EQ(async.stats.messages, sync.stats.messages);
  EXPECT_EQ(async.stats.bytes_on_wire, sync.stats.bytes_on_wire);
}

TEST(FlatKernelsEngineTest, BothEnginesAgreeOnTopKAndSkyline) {
  Net net = MakeNet(64, 900, 3, 881);
  LinearScorer scorer({-0.5, -0.3, -0.2});
  TopKQuery q{&scorer, 10};
  Rng rng(5);
  for (const RippleParam r :
       {RippleParam::Fast(), RippleParam::Hops(2), RippleParam::Slow()}) {
    CrossValidate<TopKPolicy>(net, q, r, net.overlay.RandomPeer(&rng));
    CrossValidate<SkylinePolicy>(net, SkylineQuery{}, r,
                                 net.overlay.RandomPeer(&rng));
  }
}

TEST(FlatKernelsEngineTest, RunFlushesWorkCountersIntoRegistry) {
  Net net = MakeNet(32, 600, 2, 883);
  LinearScorer scorer({-0.6, -0.4});
  TopKQuery q{&scorer, 5};
  Engine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  obs::Registry::EnableGlobal(true);
  const uint64_t before =
      obs::Registry::Global().GetCounter("kernel.tuples_scanned").value();
  (void)engine.Run({.initiator = 0, .query = q, .ripple = RippleParam::Fast()});
  const uint64_t after =
      obs::Registry::Global().GetCounter("kernel.tuples_scanned").value();
  obs::Registry::EnableGlobal(false);
  EXPECT_GT(after, before);
  // Counters were reset by the flush — the thread-local view is clean.
  EXPECT_EQ(LocalKernelCounters().tuples_scanned, 0u);
}

}  // namespace
}  // namespace ripple
