// Span-tree tracing tests: tree shape against the Lemma 1-3 hop clock,
// span accounting against QueryStats, the zero-cost disabled path, the
// seeded drivers' bootstrap spans and the async engine's simulator-time
// spans.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/datasets.h"
#include "geom/scoring.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "overlay/midas/midas.h"
#include "queries/skyline_driver.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"
#include "sim/async_engine.h"

namespace ripple {
namespace {

struct Net {
  MidasOverlay overlay;
  TupleVec all;
};

Net MakeNet(size_t peers, size_t tuples, int dims, uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.split_rule = MidasSplitRule::kDataMedian;
  Net net{MidasOverlay(opt), {}};
  Rng rng(seed ^ 0xabc);
  net.all = data::MakeUniform(tuples, dims, &rng);
  for (const Tuple& t : net.all) net.overlay.InsertTuple(t);
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  return net;
}

using TopKEngine = Engine<MidasOverlay, TopKPolicy>;

// Structural invariants every engine span forest must satisfy.
void CheckTreeShape(const obs::Tracer& tracer) {
  for (const obs::Span& s : tracer.spans()) {
    EXPECT_GE(s.end, s.start) << "span " << s.id;
    if (s.parent == obs::kNoSpan) {
      EXPECT_EQ(s.depth, 0);
      continue;
    }
    ASSERT_LT(s.parent, tracer.span_count());
    const obs::Span& p = tracer.spans()[s.parent];
    EXPECT_EQ(s.depth, p.depth + 1);
    // A child is reached strictly after its parent starts handling the
    // query, and finishes within the parent's span.
    EXPECT_GT(s.start, p.start);
    EXPECT_LE(s.end, p.end);
  }
}

TEST(TraceTest, FastPhaseSpanTreeShape) {
  Net net = MakeNet(64, 800, 2, 701);
  LinearScorer scorer({-0.5, -0.5});
  TopKQuery q{&scorer, 10};
  TopKEngine engine(&net.overlay, TopKPolicy{});
  obs::Tracer tracer;
  engine.SetTracer(&tracer);
  Rng rng(3);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  const auto result = engine.Run({.initiator = initiator, .query = q, .ripple = RippleParam::Fast()});

  // One engine span per peer visit, every one a fast-phase span.
  ASSERT_EQ(tracer.span_count(), result.stats.peers_visited);
  for (const obs::Span& s : tracer.spans()) {
    EXPECT_EQ(s.kind, obs::SpanKind::kFast);
    EXPECT_EQ(s.r, 0);
  }
  CheckTreeShape(tracer);

  // The root covers the whole query: exactly the Lemma 1 latency.
  const std::vector<uint32_t> roots = tracer.Roots();
  ASSERT_EQ(roots.size(), 1u);
  const obs::Span& root = tracer.spans()[roots[0]];
  EXPECT_EQ(root.peer, initiator);
  EXPECT_DOUBLE_EQ(root.end - root.start,
                   static_cast<double>(result.stats.latency_hops));
  // Fast phase: a child arrives exactly one hop after its parent.
  for (const obs::Span& s : tracer.spans()) {
    if (s.parent == obs::kNoSpan) continue;
    const double parent_start = tracer.spans()[s.parent].start;
    EXPECT_DOUBLE_EQ(s.start, parent_start + 1.0);
  }
}

TEST(TraceTest, SlowPhaseSpanTreeShape) {
  Net net = MakeNet(48, 600, 2, 703);
  LinearScorer scorer({-0.4, -0.6});
  TopKQuery q{&scorer, 10};
  TopKEngine engine(&net.overlay, TopKPolicy{});
  obs::Tracer tracer;
  engine.SetTracer(&tracer);
  Rng rng(5);
  const auto result =
      engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q, .ripple = RippleParam::Slow()});

  ASSERT_EQ(tracer.span_count(), result.stats.peers_visited);
  for (const obs::Span& s : tracer.spans()) {
    EXPECT_EQ(s.kind, obs::SpanKind::kSlow);
    EXPECT_GT(s.r, 0);
  }
  CheckTreeShape(tracer);

  // Slow phase visits are sequential: the root span length is the total
  // latency, and the children of any span never overlap each other.
  const std::vector<uint32_t> roots = tracer.Roots();
  ASSERT_EQ(roots.size(), 1u);
  const obs::Span& root = tracer.spans()[roots[0]];
  EXPECT_DOUBLE_EQ(root.end - root.start,
                   static_cast<double>(result.stats.latency_hops));
  for (const obs::Span& s : tracer.spans()) {
    const std::vector<uint32_t> kids = tracer.ChildrenOf(s.id);
    for (size_t i = 1; i < kids.size(); ++i) {
      const obs::Span& a = tracer.spans()[kids[i - 1]];
      const obs::Span& b = tracer.spans()[kids[i]];
      EXPECT_GE(b.start, a.end) << "overlapping slow siblings";
    }
  }
}

TEST(TraceTest, SpanCountersAccountForTheQuery) {
  Net net = MakeNet(64, 800, 3, 707);
  LinearScorer scorer({-0.3, -0.3, -0.4});
  TopKQuery q{&scorer, 10};
  TopKEngine engine(&net.overlay, TopKPolicy{});
  obs::Tracer tracer;
  engine.SetTracer(&tracer);
  Rng rng(7);
  const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q, .ripple = RippleParam::Hops(2)});

  // Forwarded links == internal tree edges. Every answer tuple ships from
  // some peer, so the spans' shipped totals cover the merged result (fast
  // phase peers over-ship: they cannot see each other's candidates).
  uint64_t forwarded = 0, answers = 0;
  for (const obs::Span& s : tracer.spans()) {
    forwarded += s.links_forwarded;
    answers += s.answer_tuples;
  }
  EXPECT_EQ(forwarded, tracer.span_count() - 1);
  EXPECT_GE(answers, result.answer.size());
}

TEST(TraceTest, DisabledTracerLeavesStatsIdentical) {
  Net net = MakeNet(64, 800, 2, 709);
  LinearScorer scorer({-0.7, -0.3});
  TopKQuery q{&scorer, 10};
  Rng rng(11);
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Hops(2), RippleParam::Slow()}) {
    const PeerId initiator = net.overlay.RandomPeer(&rng);
    TopKEngine plain(&net.overlay, TopKPolicy{});
    const auto without = plain.Run({.initiator = initiator, .query = q, .ripple = r});
    TopKEngine traced(&net.overlay, TopKPolicy{});
    obs::Tracer tracer;
    traced.SetTracer(&tracer);
    const auto with = traced.Run({.initiator = initiator, .query = q, .ripple = r});
    EXPECT_EQ(with.stats.latency_hops, without.stats.latency_hops);
    EXPECT_EQ(with.stats.peers_visited, without.stats.peers_visited);
    EXPECT_EQ(with.stats.messages, without.stats.messages);
    EXPECT_EQ(with.stats.tuples_shipped, without.stats.tuples_shipped);
    ASSERT_EQ(with.answer.size(), without.answer.size());
    for (size_t i = 0; i < with.answer.size(); ++i) {
      EXPECT_EQ(with.answer[i].id, without.answer[i].id);
    }
    EXPECT_GT(tracer.span_count(), 0u);
  }
}

TEST(TraceTest, SeededTopKSpansMatchPeersVisited) {
  // The acceptance check: the seeded driver charges bootstrap routing and
  // the seed walk to peers_visited, and emits kRoute / kWalk spans for
  // them, so spans == peers visited end to end.
  Net net = MakeNet(128, 1500, 3, 711);
  LinearScorer scorer({-0.4, -0.3, -0.3});
  TopKQuery q{&scorer, 10};
  Rng rng(13);
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Slow()}) {
    TopKEngine engine(&net.overlay, TopKPolicy{});
    obs::Tracer tracer;
    engine.SetTracer(&tracer);
    const auto result =
        SeededTopK(net.overlay, engine, {.initiator = net.overlay.RandomPeer(&rng), .query = q, .ripple = r});
    EXPECT_EQ(tracer.span_count(), result.stats.peers_visited) << "r=" << r;
    // The driver restores the tracer offset when it is done.
    EXPECT_DOUBLE_EQ(tracer.time_offset(), 0.0);
  }
}

TEST(TraceTest, SeededSkylineSpansMatchPeersVisited) {
  Net net = MakeNet(96, 1000, 3, 713);
  Rng rng(17);
  Engine<MidasOverlay, SkylinePolicy> engine(&net.overlay, SkylinePolicy{});
  obs::Tracer tracer;
  engine.SetTracer(&tracer);
  const auto result = SeededSkyline(net.overlay, engine, {.initiator = net.overlay.RandomPeer(&rng), .query = SkylineQuery{}, .ripple = RippleParam::Fast()});
  EXPECT_EQ(tracer.span_count(), result.stats.peers_visited);
}

TEST(TraceTest, AsyncEngineSpansMatchPeersVisited) {
  Net net = MakeNet(96, 1000, 3, 717);
  LinearScorer scorer({-0.5, -0.2, -0.3});
  TopKQuery q{&scorer, 10};
  Rng rng(19);
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Slow()}) {
    AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
    obs::Tracer tracer;
    engine.SetTracer(&tracer);
    const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q, .ripple = r});
    EXPECT_EQ(tracer.span_count(), result.stats.peers_visited) << "r=" << r;
    // Spans live in simulator time: none may outlive the run.
    for (const obs::Span& s : tracer.spans()) {
      EXPECT_GE(s.end, s.start);
      EXPECT_LE(s.end, result.completion_time);
    }
  }
}

TEST(TraceTest, ChromeTraceExportOfARealRun) {
  Net net = MakeNet(64, 800, 2, 719);
  LinearScorer scorer({-0.5, -0.5});
  TopKQuery q{&scorer, 5};
  TopKEngine engine(&net.overlay, TopKPolicy{});
  obs::Tracer tracer;
  engine.SetTracer(&tracer);
  Rng rng(23);
  const auto result = SeededTopK(net.overlay, engine, {.initiator = net.overlay.RandomPeer(&rng), .query = q, .ripple = RippleParam::Fast()});
  const std::string path = ::testing::TempDir() + "/trace_real.json";
  ASSERT_TRUE(obs::WriteChromeTrace(tracer, path).ok());
  std::ifstream in(path);
  std::ostringstream text_stream;
  text_stream << in.rdbuf();
  const std::string text = text_stream.str();
  size_t events = 0;
  for (size_t pos = 0;
       (pos = text.find("\"ph\":\"X\"", pos)) != std::string::npos; ++pos) {
    ++events;
  }
  EXPECT_EQ(events, result.stats.peers_visited);
  std::remove(path.c_str());
}

TEST(TraceTest, ClearResetsTheTracer) {
  obs::Tracer tracer;
  const uint32_t id =
      tracer.StartSpan(1, obs::kNoSpan, obs::SpanKind::kFast, 0, 0.0);
  tracer.EndSpan(id, 1.0);
  EXPECT_EQ(tracer.span_count(), 1u);
  tracer.Clear();
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_TRUE(tracer.Roots().empty());
}

TEST(TraceTest, AsciiRenderingMentionsEveryPeer) {
  Net net = MakeNet(32, 400, 2, 723);
  LinearScorer scorer({-0.5, -0.5});
  TopKQuery q{&scorer, 5};
  TopKEngine engine(&net.overlay, TopKPolicy{});
  obs::Tracer tracer;
  engine.SetTracer(&tracer);
  Rng rng(29);
  engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q});
  const std::string ascii = tracer.ToAscii();
  for (const obs::Span& s : tracer.spans()) {
    EXPECT_NE(ascii.find("p" + std::to_string(s.peer) + " ["),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ripple
