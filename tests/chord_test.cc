#include "overlay/chord/chord.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "queries/topk.h"
#include "ripple/engine.h"
#include "store/local_algos.h"

namespace ripple {
namespace {

TEST(ChordTest, StructureInvariants) {
  for (size_t n : {1u, 2u, 5u, 64u, 300u}) {
    ChordOverlay overlay(n, ChordOptions{.dims = 2, .seed = 3});
    ASSERT_TRUE(overlay.Validate().ok())
        << "n=" << n << ": " << overlay.Validate().ToString();
  }
}

TEST(ChordTest, FingerCountIsLogarithmic) {
  ChordOverlay overlay(512, ChordOptions{.dims = 2, .seed = 5});
  size_t total = 0;
  for (PeerId id = 0; id < overlay.NumPeers(); ++id) {
    total += overlay.GetPeer(id).links.size();
  }
  const double avg = static_cast<double>(total) / overlay.NumPeers();
  EXPECT_GE(avg, 5.0);
  EXPECT_LE(avg, 64.0);
}

TEST(ChordTest, RoutingReachesKeyOwner) {
  ChordOverlay overlay(300, ChordOptions{.dims = 3, .seed = 7});
  Rng rng(11);
  uint64_t max_hops = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t key = rng.UniformU64(overlay.zorder().key_space_size());
    uint64_t hops = 0;
    EXPECT_EQ(overlay.RouteToKey(overlay.RandomPeer(&rng), key, &hops),
              overlay.ResponsibleForKey(key));
    max_hops = std::max(max_hops, hops);
  }
  EXPECT_LE(max_hops, 64u);  // Chord: O(log n) w.h.p.
}

TEST(ChordTest, AreaIntersection) {
  ChordOverlay overlay(4, ChordOptions{.dims = 2, .seed = 9});
  ChordArea a{&overlay.zorder(), {{10, 100}, {200, 300}}};
  ChordArea b{&overlay.zorder(), {{50, 250}}};
  ChordArea out;
  ASSERT_TRUE(ChordOverlay::IntersectArea(a, b, &out));
  ASSERT_EQ(out.segments.size(), 2u);
  EXPECT_EQ(out.segments[0], (std::pair<uint64_t, uint64_t>{50, 100}));
  EXPECT_EQ(out.segments[1], (std::pair<uint64_t, uint64_t>{200, 250}));
  ChordArea disjoint{&overlay.zorder(), {{100, 200}}};
  ChordArea c{&overlay.zorder(), {{200, 300}}};
  EXPECT_FALSE(ChordOverlay::IntersectArea(disjoint, c, &out));
}

TEST(ChordTest, AreaForEachRectCoversArcExactly) {
  ChordOverlay overlay(4, ChordOptions{.dims = 2, .seed = 13});
  const ZOrder& z = overlay.zorder();
  // A small arc; decomposed cells must contain exactly the arc's keys.
  ChordArea area{&z, {{5, 37}}};
  uint64_t keys_covered = 0;
  ForEachRect(area, [&](const Rect& r) {
    keys_covered += static_cast<uint64_t>(
        std::llround(r.Volume() * static_cast<double>(z.key_space_size())));
  });
  EXPECT_EQ(keys_covered, 32u);
}

TEST(ChordTest, GenericRippleTopKMatchesOracle) {
  // The paper's genericity claim: the same engine + policy over Chord.
  ChordOverlay overlay(64, ChordOptions{.dims = 2, .seed = 17});
  Rng rng(19);
  TupleVec all;
  for (uint64_t i = 0; i < 800; ++i) {
    Tuple t{i, Point{rng.UniformDouble(), rng.UniformDouble()}};
    all.push_back(t);
    overlay.InsertTuple(t);
  }
  LinearScorer scorer({-0.7, -0.3});
  TopKQuery q{&scorer, 10};
  const TupleVec want = SelectTopK(
      all, [&](const Point& p) { return scorer.Score(p); }, q.k);
  Engine<ChordOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Hops(3), RippleParam::Slow()}) {
    const auto result = engine.Run({.initiator = overlay.RandomPeer(&rng), .query = q, .ripple = r});
    ASSERT_EQ(result.answer.size(), want.size()) << "r=" << r;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(result.answer[i].id, want[i].id) << "r=" << r;
    }
  }
}

TEST(ChordTest, GenericRippleVisitsFewerPeersThanBroadcast) {
  ChordOverlay overlay(128, ChordOptions{.dims = 2, .seed = 23});
  Rng rng(29);
  for (uint64_t i = 0; i < 2000; ++i) {
    overlay.InsertTuple(
        Tuple{i, Point{rng.UniformDouble(), rng.UniformDouble()}});
  }
  LinearScorer scorer({-0.5, -0.5});
  TopKQuery q{&scorer, 5};
  Engine<ChordOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  uint64_t visits = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    visits += engine.Run({.initiator = overlay.RandomPeer(&rng), .query = q, .ripple = RippleParam::Slow()})
                  .stats.peers_visited;
  }
  EXPECT_LT(visits / trials, overlay.NumPeers());
}

}  // namespace
}  // namespace ripple
