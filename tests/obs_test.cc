// Unit tests for the observability subsystem: percentiles, histograms,
// the metrics registry, the JSON exporters and the leveled logger.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "common/json.h"
#include "common/log.h"
#include "obs/bench_report.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace ripple {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON checker — enough to assert the
// exporters emit syntactically valid JSON without pulling a parser dep.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != '}') return false;
    ++pos_;
    return true;
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != ']') return false;
    ++pos_;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// NearestRankPercentile

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile({}, 0), 0.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile({}, 100), 0.0);
}

TEST(PercentileTest, SingleSample) {
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(one, 0), 7.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(one, 50), 7.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(one, 100), 7.0);
}

TEST(PercentileTest, NearestRankSemantics) {
  const std::vector<double> v = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(v, 0), 10.0);    // minimum
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(v, 10), 10.0);   // rank 1
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(v, 50), 50.0);   // rank 5
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(v, 51), 60.0);   // rank 6
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(v, 90), 90.0);   // rank 9
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(v, 99), 100.0);  // rank 10
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(v, 100), 100.0);
}

TEST(PercentileTest, ClampsOutOfRangeP) {
  const std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(v, -10), 1.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(v, 400), 3.0);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, EmptyHistogram) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, PercentilesMatchNearestRank) {
  obs::Histogram h;
  for (int v = 1; v <= 100; ++v) h.Observe(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
}

TEST(HistogramTest, ObserveOutOfOrderStillSorts) {
  obs::Histogram h;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) h.Observe(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
  h.Observe(0.5);  // re-dirty after a sorted read
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.5);
}

TEST(HistogramTest, BucketCountsAreCumulativePerBound) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(1.0);    // bucket 0 (<= 1, inclusive bound)
  h.Observe(5.0);    // bucket 1 (<= 10)
  h.Observe(50.0);   // bucket 2 (<= 100)
  h.Observe(500.0);  // +inf overflow bucket
  ASSERT_EQ(h.bounds().size(), 3u);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(HistogramTest, SummaryMentionsTheHeadlineStats) {
  obs::Histogram h;
  for (int v = 1; v <= 4; ++v) h.Observe(v);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("count=4"), std::string::npos);
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
  EXPECT_NE(s.find("max="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Registry

TEST(RegistryTest, CreateOnFirstUseAndStableIdentity) {
  obs::Registry reg;
  obs::Counter& c = reg.GetCounter("msgs");
  c.Inc(3);
  EXPECT_EQ(&reg.GetCounter("msgs"), &c);
  EXPECT_EQ(reg.GetCounter("msgs").value(), 3u);
  reg.GetGauge("peers").Set(42);
  EXPECT_DOUBLE_EQ(reg.GetGauge("peers").value(), 42.0);
  reg.GetHistogram("hops").Observe(2);
  reg.GetHistogram("hops").Observe(4);
  EXPECT_EQ(reg.GetHistogram("hops").count(), 2u);
  EXPECT_EQ(reg.counters().size(), 1u);
  EXPECT_EQ(reg.gauges().size(), 1u);
  EXPECT_EQ(reg.histograms().size(), 1u);
}

TEST(RegistryTest, CustomBoundsOnlyApplyAtCreation) {
  obs::Registry reg;
  obs::Histogram& h = reg.GetHistogram("sizes", {5.0, 50.0});
  EXPECT_EQ(h.bounds().size(), 2u);
  // Asking again with different bounds returns the existing instrument.
  EXPECT_EQ(&reg.GetHistogram("sizes", {1.0}), &h);
  EXPECT_EQ(h.bounds().size(), 2u);
}

TEST(RegistryTest, GlobalRecordingIsOffByDefault) {
  // Default state: RecordRouteHops must not touch the global registry.
  ASSERT_FALSE(obs::Registry::GlobalEnabled());
  const size_t before = obs::Registry::Global().counters().size();
  obs::RecordRouteHops("testoverlay", 3);
  EXPECT_EQ(obs::Registry::Global().counters().size(), before);

  obs::Registry::EnableGlobal(true);
  obs::RecordRouteHops("testoverlay", 3);
  obs::RecordRouteHops("testoverlay", 5);
  obs::Registry::EnableGlobal(false);
  obs::Registry& g = obs::Registry::Global();
  EXPECT_EQ(g.GetCounter("testoverlay.route.calls").value(), 2u);
  EXPECT_EQ(g.GetHistogram("testoverlay.route.hops").count(), 2u);
  EXPECT_DOUBLE_EQ(g.GetHistogram("testoverlay.route.hops").Percentile(100),
                   5.0);
}

// ---------------------------------------------------------------------------
// Exporters

obs::Tracer MakeSmallTrace() {
  obs::Tracer t;
  const uint32_t root =
      t.StartSpan(/*peer=*/1, obs::kNoSpan, obs::SpanKind::kSlow, 2, 0.0);
  t.span(root).tuples_in = 5;
  const uint32_t child =
      t.StartSpan(/*peer=*/2, root, obs::SpanKind::kFast, 0, 1.0);
  t.span(child).answer_tuples = 3;
  t.EndSpan(child, 2.0);
  t.EndSpan(root, 3.0);
  return t;
}

TEST(ExportTest, SpanToJsonIsValidJson) {
  const obs::Tracer t = MakeSmallTrace();
  for (const obs::Span& s : t.spans()) {
    const std::string json = obs::SpanToJson(s);
    JsonChecker checker(json);
    EXPECT_TRUE(checker.Valid()) << json;
  }
}

TEST(ExportTest, ChromeTraceIsValidJsonWithOneEventPerSpan) {
  const obs::Tracer t = MakeSmallTrace();
  const std::string path = TempPath("obs_chrome_trace.json");
  ASSERT_TRUE(obs::WriteChromeTrace(t, path).ok());
  const std::string text = ReadAll(path);
  JsonChecker checker(text);
  EXPECT_TRUE(checker.Valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  // One complete ("X") event per span.
  size_t events = 0;
  for (size_t pos = 0; (pos = text.find("\"ph\":\"X\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++events;
  }
  EXPECT_EQ(events, t.span_count());
  std::remove(path.c_str());
}

TEST(ExportTest, JsonlHasOneValidObjectPerSpan) {
  const obs::Tracer t = MakeSmallTrace();
  const std::string path = TempPath("obs_trace.jsonl");
  ASSERT_TRUE(obs::WriteTraceJsonl(t, path).ok());
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonChecker checker(line);
    EXPECT_TRUE(checker.Valid()) << line;
    ++lines;
  }
  EXPECT_EQ(lines, t.span_count());
  std::remove(path.c_str());
}

TEST(ExportTest, MetricsJsonIsValidAndCoversAllInstruments) {
  obs::Registry reg;
  reg.GetCounter("q.messages").Inc(12);
  reg.GetGauge("overlay.peers").Set(256);
  obs::Histogram& h = reg.GetHistogram("q.hops");
  for (int v = 1; v <= 16; ++v) h.Observe(v);
  const std::string path = TempPath("obs_metrics.json");
  ASSERT_TRUE(obs::WriteMetricsJson(reg, path).ok());
  const std::string text = ReadAll(path);
  JsonChecker checker(text);
  EXPECT_TRUE(checker.Valid()) << text;
  EXPECT_NE(text.find("\"q.messages\""), std::string::npos);
  EXPECT_NE(text.find("\"overlay.peers\""), std::string::npos);
  EXPECT_NE(text.find("\"q.hops\""), std::string::npos);
  EXPECT_NE(text.find("\"+inf\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExportTest, WriteToUnwritablePathFails) {
  const obs::Tracer t = MakeSmallTrace();
  EXPECT_FALSE(
      obs::WriteChromeTrace(t, "/nonexistent-dir/trace.json").ok());
}

TEST(ExportTest, HistogramJsonKeepsBucketsCumulative) {
  obs::Histogram h({2.0, 4.0});
  h.Observe(1);
  h.Observe(3);
  h.Observe(9);
  const std::string json = obs::HistogramToJson(h);
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  // Cumulative counts: <=2 holds 1 sample, <=4 holds 2, +inf holds 3.
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Counter/Gauge atomicity — the contract documented in obs/metrics.h.

TEST(ObsTest, CounterAndGaugeAreAtomic) {
  obs::Counter counter;
  obs::Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &gauge] {
      for (int i = 0; i < kIters; ++i) {
        counter.Inc();
        gauge.Add(1.0);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // Lost updates would make these land short; relaxed atomics may
  // reorder but never tear or drop.
  EXPECT_EQ(counter.value(), uint64_t{kThreads} * kIters);
  EXPECT_DOUBLE_EQ(gauge.value(),
                   static_cast<double>(kThreads) * kIters);
}

// ---------------------------------------------------------------------------
// Round trips: re-parse emitted artifacts with common/json.h and assert
// the schema survived, not just that the text is syntactically valid.

TEST(RoundTripTest, ChromeTraceParsesWithOneEventPerSpan) {
  const obs::Tracer t = MakeSmallTrace();
  const std::string path = TempPath("obs_chrome_roundtrip.json");
  ASSERT_TRUE(obs::WriteChromeTrace(t, path).ok());
  const Result<JsonValue> doc = ParseJson(ReadAll(path));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  EXPECT_EQ(events->array.size(), t.span_count());
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->StringOr(""), "X");
    EXPECT_NE(e.Find("dur"), nullptr);
    EXPECT_NE(e.Find("pid"), nullptr);
  }
  std::remove(path.c_str());
}

TEST(RoundTripTest, ProfileJsonParsesWithSkewAndHotspots) {
  obs::Profiler p;
  p.SetPeerUniverse(8);
  for (int i = 0; i < 5; ++i) p.OnSpan(3);
  p.OnSpan(1);
  p.OnMessage(3, 1, 10);
  const std::string path = TempPath("obs_profile_roundtrip.json");
  ASSERT_TRUE(obs::WriteProfileJson(p, path).ok());
  const Result<JsonValue> doc = ParseJson(ReadAll(path));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* version = doc->Find("schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->NumberOr(0), 1.0);
  const JsonValue* peers = doc->Find("peers");
  ASSERT_NE(peers, nullptr);
  EXPECT_EQ(peers->NumberOr(0), 8.0);
  const JsonValue* spans = doc->FindPath("totals.spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->NumberOr(0), 6.0);
  // The skew block per tracked field, with the Gini of the span loads.
  const JsonValue* gini = doc->FindPath("skew.spans.gini");
  ASSERT_NE(gini, nullptr);
  EXPECT_GT(gini->NumberOr(0), 0.0);
  const JsonValue* hotspots = doc->Find("hotspots");
  ASSERT_NE(hotspots, nullptr);
  ASSERT_TRUE(hotspots->IsArray());
  ASSERT_FALSE(hotspots->array.empty());
  const JsonValue* top_peer = hotspots->array[0].Find("peer");
  ASSERT_NE(top_peer, nullptr);
  EXPECT_EQ(top_peer->NumberOr(-1), 3.0);  // peer 3 has the most spans
  std::remove(path.c_str());
}

TEST(RoundTripTest, BenchReportSurvivesParseAndMerge) {
  const std::string dir = ::testing::TempDir() + "/bench_roundtrip";
  const std::string path = obs::BenchReporter::FilePath(dir, "figs");
  std::remove(path.c_str());

  obs::BenchMeta meta;
  meta.suite = "figs";
  meta.binary = "alpha";
  meta.git_sha = "abc1234";
  meta.build_type = "RelWithDebInfo";
  meta.seed = 7;
  meta.config = {{"queries", 8.0}};
  obs::BenchReporter alpha(meta);
  alpha.AddMetric("query/n=256/r=0", "latency_hops_mean", 9.125);
  alpha.AddMetric("query/n=256/r=0", "wall_ms_p50", 0.078);
  ASSERT_TRUE(alpha.WriteMerged(dir).ok());

  // A second binary merges into the same suite file without clobbering
  // alpha's cases.
  meta.binary = "beta";
  obs::BenchReporter beta(meta);
  beta.AddMetric("panel/x=1", "series-a", 3.5);
  ASSERT_TRUE(beta.WriteMerged(dir).ok());

  const Result<JsonValue> doc = ParseJson(ReadAll(path));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* version = doc->Find("schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->NumberOr(0),
            static_cast<double>(obs::kBenchSchemaVersion));
  const JsonValue* suite = doc->Find("suite");
  ASSERT_NE(suite, nullptr);
  EXPECT_EQ(suite->StringOr(""), "figs");
  const JsonValue* sha = doc->FindPath("meta.git_sha");
  ASSERT_NE(sha, nullptr);
  EXPECT_EQ(sha->StringOr(""), "abc1234");
  const JsonValue* seed = doc->FindPath("meta.seed");
  ASSERT_NE(seed, nullptr);
  EXPECT_EQ(seed->NumberOr(0), 7.0);
  const JsonValue* queries = doc->FindPath("meta.config.queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->NumberOr(0), 8.0);

  const JsonValue* cases = doc->Find("cases");
  ASSERT_NE(cases, nullptr);
  ASSERT_TRUE(cases->IsObject());
  EXPECT_EQ(cases->object.size(), 2u);
  const JsonValue* alpha_case = cases->Find("alpha/query/n=256/r=0");
  ASSERT_NE(alpha_case, nullptr);
  const JsonValue* hops = alpha_case->Find("latency_hops_mean");
  ASSERT_NE(hops, nullptr);
  EXPECT_DOUBLE_EQ(hops->NumberOr(0), 9.125);
  // The wall percentile survives the write -> parse -> merge cycle.
  const JsonValue* wall = alpha_case->Find("wall_ms_p50");
  ASSERT_NE(wall, nullptr);
  EXPECT_DOUBLE_EQ(wall->NumberOr(0), 0.078);

  // Re-running alpha replaces its cases instead of duplicating them.
  obs::BenchMeta meta2 = alpha.meta();
  obs::BenchReporter alpha2(meta2);
  alpha2.AddMetric("query/n=256/r=0", "latency_hops_mean", 10.0);
  ASSERT_TRUE(alpha2.WriteMerged(dir).ok());
  const Result<JsonValue> doc2 = ParseJson(ReadAll(path));
  ASSERT_TRUE(doc2.ok());
  const JsonValue* cases2 = doc2->Find("cases");
  ASSERT_NE(cases2, nullptr);
  EXPECT_EQ(cases2->object.size(), 2u);
  const JsonValue* replaced = cases2->Find("alpha/query/n=256/r=0");
  ASSERT_NE(replaced, nullptr);
  const JsonValue* hops2 = replaced->Find("latency_hops_mean");
  ASSERT_NE(hops2, nullptr);
  EXPECT_DOUBLE_EQ(hops2->NumberOr(0), 10.0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Logger

TEST(LogTest, ParseLevelNamesAndFallback) {
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("warn", LogLevel::kInfo), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("info", LogLevel::kWarn), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("trace", LogLevel::kWarn), LogLevel::kTrace);
  EXPECT_EQ(ParseLogLevel("bogus", LogLevel::kDebug), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("", LogLevel::kError), LogLevel::kError);
}

TEST(LogTest, LevelGatesEnablement) {
  const LogLevel saved = GlobalLogLevel();
  SetGlobalLogLevel(LogLevel::kWarn);
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_FALSE(LogEnabled(LogLevel::kTrace));
  SetGlobalLogLevel(LogLevel::kTrace);
  EXPECT_TRUE(LogEnabled(LogLevel::kTrace));
  SetGlobalLogLevel(saved);
}

TEST(LogTest, LevelNamesRoundTrip) {
  for (LogLevel level : {LogLevel::kError, LogLevel::kWarn, LogLevel::kInfo,
                         LogLevel::kDebug, LogLevel::kTrace}) {
    EXPECT_EQ(ParseLogLevel(LogLevelName(level), LogLevel::kError), level);
  }
}

}  // namespace
}  // namespace ripple
