#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/midas/midas.h"
#include "queries/skyline.h"
#include "ripple/engine.h"
#include "store/local_algos.h"

namespace ripple {
namespace {

using SkyEngine = Engine<MidasOverlay, SkylinePolicy>;

struct Net {
  MidasOverlay overlay;
  TupleVec all;
};

Net MakeNet(size_t peers, const TupleVec& tuples, int dims, uint64_t seed,
            bool patterns = false) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.border_pattern_links = patterns;
  Net net{MidasOverlay(opt), tuples};
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  for (const Tuple& t : tuples) net.overlay.InsertTuple(t);
  return net;
}

void ExpectSameSet(TupleVec got, TupleVec want) {
  std::sort(got.begin(), got.end(), TupleIdLess());
  std::sort(want.begin(), want.end(), TupleIdLess());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "position " << i;
  }
}

TEST(EngineSkylineTest, MatchesOracleOnUniformData) {
  Rng rng(201);
  const TupleVec tuples = data::MakeUniform(1500, 3, &rng);
  Net net = MakeNet(128, tuples, 3, 301);
  const TupleVec want = ComputeSkyline(tuples);
  SkyEngine engine(&net.overlay, SkylinePolicy{});
  Rng pick(7);
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Hops(3), RippleParam::Slow()}) {
    const auto result =
        engine.Run({.initiator = net.overlay.RandomPeer(&pick), .query = SkylineQuery{}, .ripple = r});
    ExpectSameSet(result.answer, want);
  }
}

TEST(EngineSkylineTest, MatchesOracleOnCorrelatedAndAnticorrelated) {
  Rng rng(203);
  for (const char* name : {"correlated", "anticorrelated"}) {
    const TupleVec tuples = data::MakeByName(name, 800, 4, &rng);
    Net net = MakeNet(64, tuples, 4, 303);
    const TupleVec want = ComputeSkyline(tuples);
    SkyEngine engine(&net.overlay, SkylinePolicy{});
    Rng pick(11);
    const auto fast =
        engine.Run({.initiator = net.overlay.RandomPeer(&pick), .query = SkylineQuery{}});
    ExpectSameSet(fast.answer, want);
    const auto slow = engine.Run({.initiator = net.overlay.RandomPeer(&pick), .query = SkylineQuery{}, .ripple = RippleParam::Slow()});
    ExpectSameSet(slow.answer, want);
  }
}

TEST(EngineSkylineTest, MatchesOracleOnNbaLikeData) {
  Rng rng(205);
  const TupleVec tuples = data::MakeNbaLike(2000, 6, &rng);
  Net net = MakeNet(128, tuples, 6, 307);
  const TupleVec want = ComputeSkyline(tuples);
  SkyEngine engine(&net.overlay, SkylinePolicy{});
  Rng pick(13);
  const auto result =
      engine.Run({.initiator = net.overlay.RandomPeer(&pick), .query = SkylineQuery{}});
  ExpectSameSet(result.answer, want);
}

TEST(EngineSkylineTest, BorderPatternOptimizationPreservesAnswer) {
  Rng rng(207);
  const TupleVec tuples = data::MakeUniform(1000, 2, &rng);
  Net plain = MakeNet(128, tuples, 2, 311, /*patterns=*/false);
  Net optimized = MakeNet(128, tuples, 2, 311, /*patterns=*/true);
  const TupleVec want = ComputeSkyline(tuples);
  SkyEngine e1(&plain.overlay, SkylinePolicy{});
  SkyEngine e2(&optimized.overlay, SkylinePolicy{});
  Rng pick(17);
  const PeerId p1 = plain.overlay.RandomPeer(&pick);
  const PeerId p2 = optimized.overlay.RandomPeer(&pick);
  ExpectSameSet(e1.Run({.initiator = p1, .query = SkylineQuery{}}).answer, want);
  ExpectSameSet(e2.Run({.initiator = p2, .query = SkylineQuery{}}).answer, want);
}

TEST(EngineSkylineTest, SlowVisitsFewerPeersAtHigherLatency) {
  // The paper's skyline claim (Figures 7-8): ripple-slow consumes the
  // least network resources (congestion = peers visited) while ripple-fast
  // wins on latency.
  Rng rng(209);
  const TupleVec tuples = data::MakeUniform(3000, 3, &rng);
  Net net = MakeNet(256, tuples, 3, 313);
  SkyEngine engine(&net.overlay, SkylinePolicy{});
  Rng pick(19);
  uint64_t fast_visits = 0, slow_visits = 0;
  uint64_t fast_latency = 0, slow_latency = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const PeerId initiator = net.overlay.RandomPeer(&pick);
    const auto fast = engine.Run({.initiator = initiator, .query = SkylineQuery{}});
    const auto slow = engine.Run({.initiator = initiator, .query = SkylineQuery{}, .ripple = RippleParam::Slow()});
    fast_visits += fast.stats.peers_visited;
    slow_visits += slow.stats.peers_visited;
    fast_latency += fast.stats.latency_hops;
    slow_latency += slow.stats.latency_hops;
  }
  EXPECT_LT(slow_visits, fast_visits);
  EXPECT_GT(slow_latency, fast_latency);
}

TEST(EngineSkylineTest, PrunedRunVisitsFewPeersOnCorrelatedData) {
  // On correlated data the skyline is tiny and most of the domain is
  // dominated: slow should visit a small fraction of the network.
  Rng rng(211);
  const TupleVec tuples = data::MakeCorrelated(3000, 3, &rng);
  Net net = MakeNet(256, tuples, 3, 317);
  SkyEngine engine(&net.overlay, SkylinePolicy{});
  Rng pick(23);
  const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&pick), .query = SkylineQuery{}, .ripple = RippleParam::Slow()});
  EXPECT_LT(result.stats.peers_visited, net.overlay.NumPeers() / 2);
}

TEST(EngineSkylineTest, SurvivesChurn) {
  Rng rng(213);
  const TupleVec tuples = data::MakeUniform(1200, 3, &rng);
  Net net = MakeNet(128, tuples, 3, 319);
  const TupleVec want = ComputeSkyline(tuples);
  Rng churn(29);
  while (net.overlay.NumPeers() > 24) {
    ASSERT_TRUE(net.overlay.LeaveRandom(&churn).ok());
  }
  SkyEngine engine(&net.overlay, SkylinePolicy{});
  ExpectSameSet(
      engine.Run({.initiator = net.overlay.RandomPeer(&churn), .query = SkylineQuery{}}).answer,
      want);
}

TEST(EngineSkylineTest, SingleTupleNetwork) {
  TupleVec tuples = {Tuple{7, Point{0.5, 0.5}}};
  Net net = MakeNet(16, tuples, 2, 323);
  SkyEngine engine(&net.overlay, SkylinePolicy{});
  Rng pick(31);
  const auto result =
      engine.Run({.initiator = net.overlay.RandomPeer(&pick), .query = SkylineQuery{}});
  ASSERT_EQ(result.answer.size(), 1u);
  EXPECT_EQ(result.answer[0].id, 7u);
}

}  // namespace
}  // namespace ripple
