#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace ripple {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Status FailsThenPropagates(bool fail) {
  RIPPLE_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::AlreadyExists("outer");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  RIPPLE_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ripple
