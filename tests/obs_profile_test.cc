// Unit tests for the per-peer load profiler (obs/profile.h): skew math
// (Gini), aggregation, timers, the router hook, and — the load-bearing
// invariant — that the profiler's message/tuple charges mirror the
// QueryStats cost model exactly in both engines.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "data/datasets.h"
#include "geom/scoring.h"
#include "obs/profile.h"
#include "overlay/midas/midas.h"
#include "queries/skyline.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"
#include "sim/async_engine.h"

namespace ripple {
namespace {

// ---------------------------------------------------------------------------
// ComputeSkew

TEST(SkewTest, EmptyAndAllZeroLoads) {
  const obs::SkewStats empty = obs::ComputeSkew({});
  EXPECT_EQ(empty.peers, 0u);
  EXPECT_EQ(empty.total, 0u);
  EXPECT_DOUBLE_EQ(empty.gini, 0.0);

  const obs::SkewStats idle = obs::ComputeSkew({0, 0, 0});
  EXPECT_EQ(idle.peers, 3u);
  EXPECT_EQ(idle.active, 0u);
  EXPECT_DOUBLE_EQ(idle.idle_fraction, 1.0);
  EXPECT_DOUBLE_EQ(idle.gini, 0.0);
}

TEST(SkewTest, UniformLoadHasZeroGini) {
  const obs::SkewStats s = obs::ComputeSkew({5, 5, 5, 5});
  EXPECT_EQ(s.total, 20u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_EQ(s.max, 5u);
  EXPECT_DOUBLE_EQ(s.peak_to_mean, 1.0);
  EXPECT_NEAR(s.gini, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.idle_fraction, 0.0);
}

TEST(SkewTest, KnownGiniValue) {
  // Sorted ascending {1,2,3,4}: G = 2*(1*1+2*2+3*3+4*4)/(4*10) - 5/4
  //                               = 60/40 - 1.25 = 0.25.
  const obs::SkewStats s = obs::ComputeSkew({3, 1, 4, 2});
  EXPECT_NEAR(s.gini, 0.25, 1e-12);
  EXPECT_EQ(s.max, 4u);
  EXPECT_EQ(s.max_peer, 2u);
  EXPECT_DOUBLE_EQ(s.peak_to_mean, 4.0 / 2.5);
}

TEST(SkewTest, FullyConcentratedLoadApproachesOne) {
  // One of n peers holds everything: G = (n-1)/n.
  const obs::SkewStats s = obs::ComputeSkew({0, 0, 0, 12, 0, 0, 0, 0});
  EXPECT_NEAR(s.gini, 7.0 / 8.0, 1e-12);
  EXPECT_EQ(s.max_peer, 3u);
  EXPECT_DOUBLE_EQ(s.idle_fraction, 7.0 / 8.0);
}

// ---------------------------------------------------------------------------
// Profiler bookkeeping

TEST(ProfilerTest, TotalsTopNAndMerge) {
  obs::Profiler a;
  a.OnSpan(0);
  a.OnSpan(2);
  a.OnSpan(2);
  a.OnMessage(2, 0, 7);
  a.OnQueueDepth(2, 3);
  a.OnQueueDepth(2, 1);  // lower depth must not shrink the HWM

  const obs::PeerLoad totals = a.Totals();
  EXPECT_EQ(totals.spans, 3u);
  EXPECT_EQ(totals.messages_out, 1u);
  EXPECT_EQ(totals.messages_in, 1u);
  EXPECT_EQ(totals.tuples_out, 7u);
  EXPECT_EQ(totals.tuples_in, 7u);
  EXPECT_EQ(a.load(2).queue_depth_hwm, 3u);

  const std::vector<obs::Hotspot> top = a.TopN(&obs::PeerLoad::spans, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].peer, 2u);
  EXPECT_EQ(top[0].load.spans, 2u);
  EXPECT_EQ(top[1].peer, 0u);

  obs::Profiler b;
  b.OnSpan(5);
  b.OnMessage(5, 2, 1);
  b.Merge(a);
  EXPECT_EQ(b.Totals().spans, 4u);
  EXPECT_EQ(b.load(2).spans, 2u);
  EXPECT_EQ(b.load(2).messages_in, 1u);   // from b's own 5 -> 2 send
  EXPECT_EQ(b.load(2).messages_out, 1u);  // merged in from a's 2 -> 0 send
  EXPECT_EQ(b.peer_count(), 6u);
}

TEST(ProfilerTest, ScopedTimerChargesCpuAndNullIsSafe) {
  obs::Profiler p;
  {
    obs::ScopedTimer timer(&p, 4);
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink += i * 0.5;
  }
  EXPECT_GT(p.load(4).cpu_ns, 0u);
  {
    obs::ScopedTimer null_timer(nullptr, 4);  // must not crash
  }
  const uint64_t before = p.load(4).cpu_ns;
  EXPECT_EQ(p.load(4).cpu_ns, before);
}

TEST(ProfilerTest, RouteStepFeedsGlobalOnlyWhenEnabled) {
  ASSERT_FALSE(obs::Profiler::GlobalEnabled());
  obs::Profiler::Global().Clear();
  obs::RecordRouteStep("test", 1, 2);
  EXPECT_EQ(obs::Profiler::Global().Totals().route_hops, 0u);

  obs::Profiler::EnableGlobal(true);
  obs::RecordRouteStep("test", 1, 2);
  obs::RecordRouteStep("test", 2, 3);
  obs::Profiler::EnableGlobal(false);
  const obs::PeerLoad totals = obs::Profiler::Global().Totals();
  EXPECT_EQ(totals.route_hops, 2u);
  // A route hop is also a message (charged at the sender).
  EXPECT_EQ(totals.messages_out, 2u);
  EXPECT_EQ(obs::Profiler::Global().load(1).route_hops, 1u);
  obs::Profiler::Global().Clear();
}

// ---------------------------------------------------------------------------
// The profiler <-> QueryStats invariant. Every message/tuple the engines
// charge to stats is charged once, at the same logical sender, in the
// profiler — so the sums must agree exactly, for every ripple setting.

struct Net {
  MidasOverlay overlay;
  TupleVec all;
};

Net MakeNet(size_t peers, size_t tuples, int dims, uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.split_rule = MidasSplitRule::kDataMedian;
  Net net{MidasOverlay(opt), {}};
  Rng rng(seed ^ 0xabc);
  net.all = data::MakeUniform(tuples, dims, &rng);
  for (const Tuple& t : net.all) net.overlay.InsertTuple(t);
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  return net;
}

TEST(ProfilerInvariantTest, EngineChargesMatchQueryStats) {
  Net net = MakeNet(96, 1500, 3, 904);
  LinearScorer scorer({-0.5, -0.3, -0.2});
  const TopKQuery q{&scorer, 10};
  Engine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  Rng rng(11);
  for (const RippleParam r :
       {RippleParam::Fast(), RippleParam::Hops(2), RippleParam::Slow()}) {
    obs::Profiler profiler;
    profiler.SetPeerUniverse(net.overlay.NumPeers());
    engine.SetProfiler(&profiler);
    QueryStats sum;
    for (int trial = 0; trial < 4; ++trial) {
      const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&rng),
                                      .query = q,
                                      .ripple = r});
      sum += result.stats;
    }
    const obs::PeerLoad totals = profiler.Totals();
    EXPECT_EQ(totals.spans, sum.peers_visited) << r;
    EXPECT_EQ(totals.messages_out, sum.messages) << r;
    EXPECT_EQ(totals.tuples_out, sum.tuples_shipped) << r;
    // Conservation: everything sent was received by a tracked peer.
    EXPECT_EQ(totals.messages_in, totals.messages_out) << r;
    EXPECT_EQ(totals.tuples_in, totals.tuples_out) << r;
  }
  engine.SetProfiler(nullptr);
}

TEST(ProfilerInvariantTest, AsyncEngineChargesMatchQueryStats) {
  Net net = MakeNet(80, 1200, 3, 905);
  LinearScorer scorer({-0.4, -0.4, -0.2});
  const TopKQuery q{&scorer, 8};
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  Rng rng(13);
  for (const RippleParam r :
       {RippleParam::Fast(), RippleParam::Hops(2), RippleParam::Slow()}) {
    obs::Profiler profiler;
    profiler.SetPeerUniverse(net.overlay.NumPeers());
    engine.SetProfiler(&profiler);
    QueryStats sum;
    for (int trial = 0; trial < 4; ++trial) {
      const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&rng),
                                      .query = q,
                                      .ripple = r});
      sum += result.stats;
    }
    const obs::PeerLoad totals = profiler.Totals();
    EXPECT_EQ(totals.spans, sum.peers_visited) << r;
    EXPECT_EQ(totals.messages_out, sum.messages) << r;
    EXPECT_EQ(totals.tuples_out, sum.tuples_shipped) << r;
    EXPECT_EQ(totals.retransmissions, 0u) << r;  // perfect network
  }
  engine.SetProfiler(nullptr);
}

TEST(ProfilerInvariantTest, SkewMatchesVisitObserverShape) {
  // The profiler's span skew must reproduce what the pre-existing
  // SetVisitObserver measurement (bench_abl_load_skew's original
  // mechanism) sees: identical per-peer visit counts.
  Net net = MakeNet(64, 1000, 3, 906);
  LinearScorer scorer({-0.6, -0.2, -0.2});
  const TopKQuery q{&scorer, 5};
  Engine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  obs::Profiler profiler;
  profiler.SetPeerUniverse(net.overlay.NumPeers());
  engine.SetProfiler(&profiler);
  std::vector<uint64_t> visits(net.overlay.NumPeers(), 0);
  engine.SetVisitObserver([&visits](PeerId id) { ++visits[id]; });
  Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    (void)SeededTopK(net.overlay, engine,
                     {.initiator = net.overlay.RandomPeer(&rng), .query = q});
  }
  for (size_t peer = 0; peer < visits.size(); ++peer) {
    EXPECT_EQ(profiler.load(static_cast<uint32_t>(peer)).spans, visits[peer])
        << "peer " << peer;
  }
  const obs::SkewStats skew = profiler.Skew(&obs::PeerLoad::spans);
  const obs::SkewStats direct = obs::ComputeSkew(visits);
  EXPECT_DOUBLE_EQ(skew.gini, direct.gini);
  EXPECT_EQ(skew.max, direct.max);
  EXPECT_DOUBLE_EQ(skew.mean, direct.mean);
}

}  // namespace
}  // namespace ripple
