#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "geom/dominance.h"
#include "geom/scoring.h"
#include "store/kd_index.h"
#include "store/local_algos.h"
#include "store/local_store.h"

namespace ripple {
namespace {

TupleVec RandomTuples(size_t n, int dims, Rng* rng, uint64_t base_id = 0) {
  TupleVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point p(dims);
    for (int d = 0; d < dims; ++d) p[d] = rng->UniformDouble();
    out.push_back(Tuple{base_id + i, p});
  }
  return out;
}

// --- ComputeSkyline ---------------------------------------------------------

TEST(SkylineTest, EmptyAndSingleton) {
  EXPECT_TRUE(ComputeSkyline({}).empty());
  TupleVec one = {Tuple{1, Point{0.5, 0.5}}};
  EXPECT_EQ(ComputeSkyline(one).size(), 1u);
}

TEST(SkylineTest, DominatedTupleRemoved) {
  TupleVec ts = {Tuple{1, Point{0.1, 0.1}}, Tuple{2, Point{0.5, 0.5}},
                 Tuple{3, Point{0.05, 0.9}}};
  const TupleVec sky = ComputeSkyline(ts);
  ASSERT_EQ(sky.size(), 2u);
  EXPECT_EQ(sky[0].id, 1u);
  EXPECT_EQ(sky[1].id, 3u);
}

TEST(SkylineTest, DuplicateIdsCollapsed) {
  TupleVec ts = {Tuple{1, Point{0.1, 0.9}}, Tuple{1, Point{0.1, 0.9}},
                 Tuple{2, Point{0.9, 0.1}}};
  EXPECT_EQ(ComputeSkyline(ts).size(), 2u);
}

TEST(SkylineTest, MatchesBruteForce) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    const TupleVec ts = RandomTuples(200, 3, &rng);
    const TupleVec sky = ComputeSkyline(ts);
    // Brute force.
    std::set<uint64_t> expected;
    for (const Tuple& t : ts) {
      bool dominated = false;
      for (const Tuple& s : ts) {
        if (Dominates(s.key, t.key)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) expected.insert(t.id);
    }
    std::set<uint64_t> got;
    for (const Tuple& t : sky) got.insert(t.id);
    EXPECT_EQ(got, expected);
  }
}

TEST(SkylineTest, SkylineOfSkylineIsIdempotent) {
  Rng rng(43);
  const TupleVec ts = RandomTuples(500, 4, &rng);
  const TupleVec sky = ComputeSkyline(ts);
  EXPECT_EQ(ComputeSkyline(sky), sky);
}

TEST(SkylineTest, EqualPointsBothSurvive) {
  TupleVec ts = {Tuple{1, Point{0.3, 0.3}}, Tuple{2, Point{0.3, 0.3}}};
  EXPECT_EQ(ComputeSkyline(ts).size(), 2u);
}

TEST(SkylineTest, MergeSkylinesEqualsJointSkyline) {
  Rng rng(97);
  for (int trial = 0; trial < 30; ++trial) {
    const TupleVec all = RandomTuples(300, 3, &rng);
    // Split into two halves, skyline each, merge, compare with the oracle.
    TupleVec a(all.begin(), all.begin() + 150);
    TupleVec b(all.begin() + 150, all.end());
    const TupleVec merged =
        MergeSkylines(ComputeSkyline(a), ComputeSkyline(b));
    EXPECT_EQ(merged, ComputeSkyline(all));
  }
}

TEST(SkylineTest, MergeSkylinesHandlesOverlap) {
  Rng rng(101);
  const TupleVec all = RandomTuples(200, 2, &rng);
  const TupleVec sky = ComputeSkyline(all);
  // Merging a skyline with itself (and with a superset-ish overlap) must
  // not duplicate or drop anything.
  EXPECT_EQ(MergeSkylines(sky, sky), sky);
  TupleVec half(sky.begin(), sky.begin() + sky.size() / 2);
  EXPECT_EQ(MergeSkylines(half, sky), sky);
}

TEST(SkylineTest, MergeSkylinesEmptySides) {
  Rng rng(103);
  const TupleVec sky = ComputeSkyline(RandomTuples(50, 2, &rng));
  EXPECT_EQ(MergeSkylines({}, sky), sky);
  EXPECT_EQ(MergeSkylines(sky, {}), sky);
  EXPECT_TRUE(MergeSkylines({}, {}).empty());
}

// --- SelectTopK -------------------------------------------------------------

TEST(SelectTopKTest, OrdersByScoreThenId) {
  LinearScorer s({1.0, 0.0});
  TupleVec ts = {Tuple{5, Point{0.5, 0.0}}, Tuple{2, Point{0.9, 0.0}},
                 Tuple{3, Point{0.5, 0.0}}};
  auto got = SelectTopK(ts, [&](const Point& p) { return s.Score(p); }, 2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 2u);
  EXPECT_EQ(got[1].id, 3u);  // tie with id 5 broken by smaller id
}

TEST(SelectTopKTest, KLargerThanInput) {
  LinearScorer s({1.0});
  TupleVec ts = {Tuple{1, Point{0.5}}, Tuple{2, Point{0.7}}};
  auto got = SelectTopK(ts, [&](const Point& p) { return s.Score(p); }, 10);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 2u);
}

// --- KdIndex ----------------------------------------------------------------

TEST(KdIndexTest, TopKAgreesWithScan) {
  Rng rng(47);
  const TupleVec ts = RandomTuples(400, 3, &rng);
  KdIndex idx(ts);
  LinearScorer s({0.2, 0.5, 0.3});
  auto score = [&](const Point& p) { return s.Score(p); };
  auto upper = [&](const Rect& r) { return s.UpperBound(r); };
  for (size_t k : {1u, 5u, 17u, 100u}) {
    const TupleVec got = idx.TopK(score, upper, k);
    const TupleVec want = SelectTopK(ts, score, k);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "k=" << k << " i=" << i;
    }
  }
}

TEST(KdIndexTest, TopKRespectsFloor) {
  Rng rng(53);
  const TupleVec ts = RandomTuples(300, 2, &rng);
  KdIndex idx(ts);
  LinearScorer s({1.0, 1.0});
  auto score = [&](const Point& p) { return s.Score(p); };
  auto upper = [&](const Rect& r) { return s.UpperBound(r); };
  const double floor = 1.4;
  const TupleVec got = idx.TopK(score, upper, 1000, floor);
  size_t expected = 0;
  for (const Tuple& t : ts) {
    if (score(t.key) > floor) ++expected;
  }
  EXPECT_EQ(got.size(), expected);
  for (const Tuple& t : got) EXPECT_GT(score(t.key), floor);
}

TEST(KdIndexTest, CollectAtLeastAgreesWithScan) {
  Rng rng(59);
  const TupleVec ts = RandomTuples(500, 4, &rng);
  KdIndex idx(ts);
  LinearScorer s({0.25, 0.25, 0.25, 0.25});
  auto score = [&](const Point& p) { return s.Score(p); };
  auto upper = [&](const Rect& r) { return s.UpperBound(r); };
  for (double tau : {0.2, 0.5, 0.8}) {
    TupleVec got;
    idx.CollectAtLeast(score, upper, tau, &got);
    size_t expected = 0;
    for (const Tuple& t : ts) {
      if (score(t.key) >= tau) ++expected;
    }
    EXPECT_EQ(got.size(), expected) << "tau=" << tau;
  }
}

TEST(KdIndexTest, ArgMinAgreesWithScanAndRespectsAdmit) {
  Rng rng(61);
  const TupleVec ts = RandomTuples(400, 3, &rng);
  KdIndex idx(ts);
  const Point q{0.4, 0.4, 0.4};
  auto cost = [&](const Point& p) { return L2Distance(p, q); };
  auto lower = [&](const Rect& r) { return r.MinDist(q, Norm::kL2); };
  std::set<uint64_t> excluded = {ts[0].id, ts[10].id, ts[20].id};
  auto admit = [&](const Tuple& t) { return !excluded.count(t.id); };
  double best_cost = 0;
  const std::optional<Tuple> got = idx.ArgMin(cost, lower, admit, &best_cost);
  ASSERT_TRUE(got.has_value());
  const Tuple* want = nullptr;
  double want_cost = 1e18;
  for (const Tuple& t : ts) {
    if (!admit(t)) continue;
    const double c = cost(t.key);
    if (c < want_cost) {
      want_cost = c;
      want = &t;
    }
  }
  EXPECT_EQ(got->id, want->id);
  EXPECT_DOUBLE_EQ(best_cost, want_cost);
  EXPECT_FALSE(excluded.count(got->id));
}

TEST(KdIndexTest, EmptyIndex) {
  KdIndex idx;
  EXPECT_TRUE(idx.empty());
  auto zero = [](const Point&) { return 0.0; };
  auto zero_r = [](const Rect&) { return 0.0; };
  EXPECT_TRUE(idx.TopK(zero, zero_r, 5).empty());
  double c = 0;
  EXPECT_FALSE(
      idx.ArgMin(zero, zero_r, [](const Tuple&) { return true; }, &c)
          .has_value());
}

// --- LocalStore -------------------------------------------------------------

TEST(LocalStoreTest, ExtractOutsideMovesCorrectTuples) {
  LocalStore store;
  const Rect domain = Rect::Unit(2);
  store.Add(Tuple{1, Point{0.2, 0.2}});
  store.Add(Tuple{2, Point{0.8, 0.8}});
  store.Add(Tuple{3, Point{0.5, 0.1}});  // on the split face -> upper half
  const auto [lower, upper] = domain.Split(0, 0.5);
  TupleVec moved = store.ExtractOutside(lower, domain);
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.flat().id(0), 1u);
}

TEST(LocalStoreTest, TopKAboveIsThresholdInclusive) {
  // Inclusive so a tuple witnessing the threshold itself is selected — the
  // boundary case that would otherwise drop the k-th answer tuple.
  LocalStore store;
  LinearScorer s({1.0});
  store.Add(Tuple{1, Point{0.3}});
  store.Add(Tuple{2, Point{0.5}});
  store.Add(Tuple{3, Point{0.7}});
  TupleVec got = store.TopKAbove(s, 5, 0.5);
  ASSERT_EQ(got.size(), 2u);  // 0.7 and the 0.5 witness
  EXPECT_EQ(got[0].id, 3u);
  EXPECT_EQ(got[1].id, 2u);
}

TEST(LocalStoreTest, BestBelowIsStrict) {
  LocalStore store;
  LinearScorer s({1.0});
  store.Add(Tuple{1, Point{0.3}});
  store.Add(Tuple{2, Point{0.5}});
  store.Add(Tuple{3, Point{0.7}});
  TupleVec got = store.BestBelow(s, 2, 0.5);
  ASSERT_EQ(got.size(), 1u);  // only 0.3: the 0.5 tuple belongs "above"
  EXPECT_EQ(got[0].id, 1u);
}

TEST(LocalStoreTest, ScanAndIndexPathsAgree) {
  // Exercise both the small-store scan path and the indexed path with the
  // same logical data.
  Rng rng(67);
  const TupleVec ts = RandomTuples(200, 3, &rng);  // above index threshold
  LocalStore big;
  big.AddAll(ts);
  LocalStore small;  // split across many small stores would scan; here we
  small.AddAll(TupleVec(ts.begin(), ts.begin() + 20));
  LinearScorer s({0.5, 0.3, 0.2});
  const TupleVec got_big = big.TopKAbove(s, 10, 0.0);
  const TupleVec want_big =
      SelectTopK(ts, [&](const Point& p) { return s.Score(p); }, 10);
  ASSERT_EQ(got_big.size(), want_big.size());
  for (size_t i = 0; i < got_big.size(); ++i) {
    EXPECT_EQ(got_big[i].id, want_big[i].id);
  }
  const TupleVec got_small = small.TopKAbove(s, 3, 0.0);
  const TupleVec want_small =
      SelectTopK(TupleVec(ts.begin(), ts.begin() + 20),
                 [&](const Point& p) { return s.Score(p); }, 3);
  ASSERT_EQ(got_small.size(), want_small.size());
  for (size_t i = 0; i < got_small.size(); ++i) {
    EXPECT_EQ(got_small[i].id, want_small[i].id);
  }
}

TEST(LocalStoreTest, MutationInvalidatesIndex) {
  Rng rng(71);
  LocalStore store;
  store.AddAll(RandomTuples(100, 2, &rng));
  LinearScorer s({1.0, 0.0});
  (void)store.TopKAbove(s, 1, 0.0);  // builds the index
  store.Add(Tuple{9999, Point{0.999, 0.0}});
  const TupleVec got = store.TopKAbove(s, 1, 0.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 9999u);
}

TEST(LocalStoreTest, LocalSkylineMatchesComputeSkyline) {
  Rng rng(73);
  const TupleVec ts = RandomTuples(150, 3, &rng);
  LocalStore store;
  store.AddAll(ts);
  EXPECT_EQ(store.LocalSkyline(), ComputeSkyline(ts));
}

}  // namespace
}  // namespace ripple
