// Failure-injection tests: RIPPLE_CHECK invariants must abort loudly on
// programmer error rather than corrupt state silently.

#include <gtest/gtest.h>

#include "common/bitstring.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "geom/zorder.h"
#include "queries/diversify.h"

namespace ripple {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, RectRejectsInvertedBounds) {
  EXPECT_DEATH(Rect(Point{0.5, 0.5}, Point{0.4, 0.6}), "RIPPLE_CHECK");
}

TEST(DeathTest, RectRejectsMixedDims) {
  EXPECT_DEATH(Rect(Point{0.0, 0.0}, Point{1.0, 1.0, 1.0}), "RIPPLE_CHECK");
}

TEST(DeathTest, RectSplitRejectsOutOfRangeValue) {
  const Rect r = Rect::Unit(2);
  EXPECT_DEATH(r.Split(0, 1.5), "RIPPLE_CHECK");
  EXPECT_DEATH(r.Split(5, 0.5), "RIPPLE_CHECK");
}

TEST(DeathTest, PointRejectsTooManyDims) {
  EXPECT_DEATH(Point(kMaxDims + 1), "RIPPLE_CHECK");
}

TEST(DeathTest, BitStringRejectsBadCharacters) {
  EXPECT_DEATH(BitString("01x"), "RIPPLE_CHECK");
}

TEST(DeathTest, BitStringParentOfRoot) {
  EXPECT_DEATH(BitString().Parent(), "RIPPLE_CHECK");
}

TEST(DeathTest, ZipfRejectsZeroBuckets) {
  EXPECT_DEATH(ZipfSampler(0, 1.0), "RIPPLE_CHECK");
}

TEST(DeathTest, RngRejectsEmptyRange) {
  Rng rng(1);
  EXPECT_DEATH(rng.UniformU64(0), "RIPPLE_CHECK");
  EXPECT_DEATH(rng.UniformInt(3, 2), "RIPPLE_CHECK");
  EXPECT_DEATH(rng.Exponential(0.0), "RIPPLE_CHECK");
}

TEST(DeathTest, ZOrderRejectsBadConfig) {
  EXPECT_DEATH(ZOrder(0, Rect::Unit(2)), "RIPPLE_CHECK");
  EXPECT_DEATH(ZOrder(2, Rect::Unit(3)), "RIPPLE_CHECK");
  EXPECT_DEATH(ZOrder(2, Rect::Unit(2), 40), "RIPPLE_CHECK");  // 80 bits
}

TEST(DeathTest, UnpreparedDivQueryRefusesToScore) {
  DivQuery q;
  q.objective.query = Point{0.5, 0.5};
  // Phi without Precompute would silently use stale stats; it must abort.
  EXPECT_DEATH(q.Phi(Point{0.1, 0.1}), "RIPPLE_CHECK");
  EXPECT_DEATH(q.PhiLowerBound(Rect::Unit(2)), "RIPPLE_CHECK");
}

}  // namespace
}  // namespace ripple
