#include <gtest/gtest.h>

#include "baselines/div_baseline.h"
#include "baselines/dsl.h"
#include "baselines/naive.h"
#include "baselines/ssp.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/midas/midas.h"
#include "queries/topk.h"
#include "ripple/engine.h"
#include "store/local_algos.h"

namespace ripple {
namespace {

void ExpectSameSet(TupleVec got, TupleVec want) {
  std::sort(got.begin(), got.end(), TupleIdLess());
  std::sort(want.begin(), want.end(), TupleIdLess());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "position " << i;
  }
}

// --- Naive broadcast ---------------------------------------------------------

TEST(NaiveTest, MatchesOracleAndVisitsEveryone) {
  MidasOptions opt;
  opt.dims = 3;
  opt.seed = 11;
  MidasOverlay overlay(opt);
  while (overlay.NumPeers() < 64) overlay.Join();
  Rng rng(5);
  TupleVec all = data::MakeUniform(1000, 3, &rng);
  for (const Tuple& t : all) overlay.InsertTuple(t);

  LinearScorer scorer({-0.4, -0.3, -0.3});
  TopKQuery q{&scorer, 10};
  const TupleVec want = SelectTopK(
      all, [&](const Point& p) { return scorer.Score(p); }, q.k);

  Engine<MidasOverlay, NaiveTopKPolicy> naive(&overlay, NaiveTopKPolicy{});
  const auto result = naive.Run({.initiator = overlay.RandomPeer(&rng), .query = q});
  ExpectSameSet(result.answer, want);
  // Broadcast reaches everybody; every non-empty peer ships k tuples.
  EXPECT_EQ(result.stats.peers_visited, overlay.NumPeers());
  EXPECT_GE(result.stats.tuples_shipped, 10u);

  Engine<MidasOverlay, TopKPolicy> smart(&overlay, TopKPolicy{});
  const auto pruned = smart.Run({.initiator = overlay.RandomPeer(&rng), .query = q});
  EXPECT_LT(pruned.stats.tuples_shipped, result.stats.tuples_shipped);
}

// --- DSL ----------------------------------------------------------------------

struct CanNet {
  CanOverlay overlay;
  TupleVec all;
};

CanNet MakeCanNet(size_t peers, const TupleVec& tuples, int dims,
                  uint64_t seed) {
  CanOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  CanNet net{CanOverlay(opt), tuples};
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  for (const Tuple& t : tuples) net.overlay.InsertTuple(t);
  return net;
}

TEST(DslTest, SkylineMatchesOracle) {
  Rng rng(7);
  for (const char* dataset : {"uniform", "correlated", "anticorrelated"}) {
    const TupleVec tuples = data::MakeByName(dataset, 800, 3, &rng);
    CanNet net = MakeCanNet(64, tuples, 3, 13);
    const TupleVec want = ComputeSkyline(tuples);
    Rng pick(17);
    for (int trial = 0; trial < 3; ++trial) {
      const DslResult result =
          RunDslSkyline(net.overlay, net.overlay.RandomPeer(&pick));
      ExpectSameSet(result.skyline, want);
      EXPECT_GT(result.stats.messages, 0u);
    }
  }
}

TEST(DslTest, PrunesDominatedRegionsOnCorrelatedData) {
  Rng rng(19);
  const TupleVec tuples = data::MakeCorrelated(2000, 3, &rng);
  CanNet net = MakeCanNet(128, tuples, 3, 23);
  Rng pick(29);
  const DslResult result =
      RunDslSkyline(net.overlay, net.overlay.RandomPeer(&pick));
  EXPECT_LT(result.stats.peers_visited, net.overlay.NumPeers());
}

// --- SSP -----------------------------------------------------------------------

struct BatonNet {
  BatonOverlay overlay;
  TupleVec all;
};

BatonNet MakeBatonNet(size_t peers, const TupleVec& tuples, int dims) {
  BatonNet net{BatonOverlay(peers, BatonOptions{.dims = dims}), tuples};
  for (const Tuple& t : tuples) net.overlay.InsertTuple(t);
  return net;
}

TEST(SspTest, SkylineMatchesOracle) {
  Rng rng(31);
  for (const char* dataset : {"uniform", "correlated", "anticorrelated"}) {
    const TupleVec tuples = data::MakeByName(dataset, 800, 3, &rng);
    BatonNet net = MakeBatonNet(64, tuples, 3);
    const TupleVec want = ComputeSkyline(tuples);
    Rng pick(37);
    const SspResult result =
        RunSspSkyline(net.overlay, net.overlay.RandomPeer(&pick));
    ExpectSameSet(result.skyline, want);
  }
}

TEST(SspTest, PrunesWithSeedSkyline) {
  Rng rng(41);
  const TupleVec tuples = data::MakeCorrelated(3000, 3, &rng);
  BatonNet net = MakeBatonNet(128, tuples, 3);
  Rng pick(43);
  const SspResult result =
      RunSspSkyline(net.overlay, net.overlay.RandomPeer(&pick));
  // With correlated data the origin-region peer's skyline prunes most of
  // the network (possibly all of it: zero waves is maximal pruning).
  EXPECT_LT(result.stats.peers_visited, net.overlay.NumPeers());
}

// --- Diversification baseline ---------------------------------------------------

TEST(DivBaselineTest, FindsGlobalBestPhi) {
  Rng rng(47);
  const TupleVec tuples = data::MakeMirflickrLike(600, 5, &rng);
  CanNet net = MakeCanNet(48, tuples, 5, 53);
  Rng pick(59);
  CanFloodDivService service(&net.overlay, net.overlay.RandomPeer(&pick));
  DivQuery q;
  q.objective.query = tuples[0].key;
  q.objective.lambda = 0.5;
  q.objective.norm = Norm::kL1;
  q.exclude = TupleVec(tuples.begin() + 1, tuples.begin() + 4);
  q.Precompute();
  QueryStats stats;
  const auto got =
      service.FindBest(q, std::numeric_limits<double>::infinity(), &stats);
  ASSERT_TRUE(got.has_value());
  // Baseline floods everyone.
  EXPECT_EQ(stats.peers_visited, net.overlay.NumPeers());
  // And finds the global minimum phi.
  double want_phi = std::numeric_limits<double>::infinity();
  for (const Tuple& t : tuples) {
    if (q.IsExcluded(t.id)) continue;
    want_phi = std::min(want_phi, q.objective.Phi(t.key, q.exclude));
  }
  EXPECT_DOUBLE_EQ(q.objective.Phi(got->key, q.exclude), want_phi);
}

TEST(DivBaselineTest, RespectsTau) {
  Rng rng(61);
  const TupleVec tuples = data::MakeUniform(300, 2, &rng);
  CanNet net = MakeCanNet(16, tuples, 2, 67);
  Rng pick(71);
  CanFloodDivService service(&net.overlay, net.overlay.RandomPeer(&pick));
  DivQuery q;
  q.objective.query = Point{0.5, 0.5};
  q.objective.lambda = 1.0;
  q.objective.norm = Norm::kL1;
  q.Precompute();
  double best_phi = std::numeric_limits<double>::infinity();
  for (const Tuple& t : tuples) {
    best_phi = std::min(best_phi, q.objective.Phi(t.key, q.exclude));
  }
  QueryStats stats;
  EXPECT_FALSE(service.FindBest(q, best_phi, &stats).has_value());
  EXPECT_TRUE(service.FindBest(q, best_phi + 1e-9, &stats).has_value());
}

TEST(DivBaselineTest, CostsExceedRippleService) {
  // The headline diversification claim of Figures 9-12: the RIPPLE-based
  // service beats flooding on congestion.
  Rng rng(73);
  const TupleVec tuples = data::MakeMirflickrLike(800, 5, &rng);
  CanNet can_net = MakeCanNet(64, tuples, 5, 79);
  MidasOptions mopt;
  mopt.dims = 5;
  mopt.seed = 83;
  MidasOverlay midas(mopt);
  while (midas.NumPeers() < 64) midas.Join();
  for (const Tuple& t : tuples) midas.InsertTuple(t);

  Rng pick(89);
  CanFloodDivService baseline(&can_net.overlay,
                              can_net.overlay.RandomPeer(&pick));
  RippleDivService<MidasOverlay> ripple(&midas, {.initiator = midas.RandomPeer(&pick), .ripple = RippleParam::Slow()});
  const DiversifyObjective obj{tuples[0].key, 0.5, Norm::kL1};
  DiversifyOptions options;
  options.k = 5;
  TupleVec initial(tuples.begin() + 10, tuples.begin() + 15);
  CentralizedDivService reference1(&tuples);
  CentralizedDivService reference2(&tuples);
  ForcedResultService forced_baseline(&baseline, &reference1);
  ForcedResultService forced_ripple(&ripple, &reference2);
  const DiversifyResult base_result =
      Diversify(&forced_baseline, obj, initial, options);
  const DiversifyResult ripple_result =
      Diversify(&forced_ripple, obj, initial, options);
  // Identical trajectories (forced), so costs are directly comparable.
  ExpectSameSet(ripple_result.set, base_result.set);
  EXPECT_LT(ripple_result.stats.peers_visited,
            base_result.stats.peers_visited);
}

}  // namespace
}  // namespace ripple
