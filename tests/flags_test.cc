#include "common/flags.h"

#include <gtest/gtest.h>

namespace ripple {
namespace {

struct Fixture {
  std::string name = "default";
  int64_t count = 7;
  double ratio = 0.5;
  bool verbose = false;
  FlagParser parser{"test program"};

  Fixture() {
    parser.AddString("name", "a name", &name);
    parser.AddInt("count", "a count", &count);
    parser.AddDouble("ratio", "a ratio", &ratio);
    parser.AddBool("verbose", "talk more", &verbose);
  }

  Status Parse(std::vector<const char*> args) {
    args.insert(args.begin(), "prog");
    return parser.Parse(static_cast<int>(args.size()), args.data());
  }
};

TEST(FlagsTest, DefaultsSurviveEmptyParse) {
  Fixture f;
  ASSERT_TRUE(f.Parse({}).ok());
  EXPECT_EQ(f.name, "default");
  EXPECT_EQ(f.count, 7);
  EXPECT_DOUBLE_EQ(f.ratio, 0.5);
  EXPECT_FALSE(f.verbose);
}

TEST(FlagsTest, EqualsSyntax) {
  Fixture f;
  ASSERT_TRUE(
      f.Parse({"--name=widget", "--count=42", "--ratio=0.25"}).ok());
  EXPECT_EQ(f.name, "widget");
  EXPECT_EQ(f.count, 42);
  EXPECT_DOUBLE_EQ(f.ratio, 0.25);
}

TEST(FlagsTest, SpaceSyntax) {
  Fixture f;
  ASSERT_TRUE(f.Parse({"--count", "13", "--name", "x"}).ok());
  EXPECT_EQ(f.count, 13);
  EXPECT_EQ(f.name, "x");
}

TEST(FlagsTest, BoolForms) {
  Fixture f;
  ASSERT_TRUE(f.Parse({"--verbose"}).ok());
  EXPECT_TRUE(f.verbose);
  Fixture g;
  ASSERT_TRUE(g.Parse({"--verbose=true", "--noverbose"}).ok());
  EXPECT_FALSE(g.verbose);
  Fixture h;
  ASSERT_TRUE(h.Parse({"--verbose=false"}).ok());
  EXPECT_FALSE(h.verbose);
}

TEST(FlagsTest, NegativeNumbersAndPositionals) {
  Fixture f;
  ASSERT_TRUE(f.Parse({"--count=-5", "input.txt", "--ratio=-0.5"}).ok());
  EXPECT_EQ(f.count, -5);
  EXPECT_DOUBLE_EQ(f.ratio, -0.5);
  ASSERT_EQ(f.parser.positional().size(), 1u);
  EXPECT_EQ(f.parser.positional()[0], "input.txt");
}

TEST(FlagsTest, ErrorsOnUnknownFlag) {
  Fixture f;
  const Status s = f.Parse({"--bogus=1"});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("bogus"), std::string::npos);
}

TEST(FlagsTest, ErrorsOnBadValues) {
  Fixture f;
  EXPECT_EQ(f.Parse({"--count=abc"}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(f.Parse({"--ratio=xyz"}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(f.Parse({"--verbose=maybe"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(f.Parse({"--count"}).code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, HelpListsFlagsWithDefaults) {
  Fixture f;
  const Status s = f.Parse({"--help"});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("--count"), std::string::npos);
  EXPECT_NE(s.message().find("default 7"), std::string::npos);
  EXPECT_NE(s.message().find("test program"), std::string::npos);
}

}  // namespace
}  // namespace ripple
