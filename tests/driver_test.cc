// Tests for the seeded query drivers: cost accounting, bootstrap
// correctness and cross-overlay behaviour.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/chord/chord.h"
#include "overlay/midas/midas.h"
#include "queries/skyline_driver.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"
#include "sim/async_engine.h"
#include "store/local_algos.h"

namespace ripple {
namespace {

struct Net {
  MidasOverlay overlay;
  TupleVec all;
};

Net MakeNet(size_t peers, size_t tuples, int dims, uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.split_rule = MidasSplitRule::kDataMedian;
  Net net{MidasOverlay(opt), {}};
  Rng rng(seed ^ 0x1111);
  net.all = data::MakeUniform(tuples, dims, &rng);
  for (const Tuple& t : net.all) net.overlay.InsertTuple(t);
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  return net;
}

TEST(SeededTopKTest, BootstrapCostsAreCharged) {
  Net net = MakeNet(128, 400, 3, 701);  // sparse: bootstrap walk needed
  LinearScorer scorer({-0.5, -0.25, -0.25});
  TopKQuery q{&scorer, 10};
  Engine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  Rng rng(7);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  const auto seeded = SeededTopK(net.overlay, engine, {.initiator = initiator, .query = q, .ripple = RippleParam::Fast()});
  // The same query run raw from the peak owner starts with m < k and must
  // flood its first hops; the bootstrap's witnesses are exactly what
  // avoids that, so the seeded run (bootstrap included) is cheaper.
  const PeerId peak_owner =
      net.overlay.ResponsiblePeer(scorer.Peak(net.overlay.domain()));
  const auto raw = engine.Run({.initiator = peak_owner, .query = q});
  EXPECT_LT(seeded.stats.peers_visited, raw.stats.peers_visited);
  // And the bootstrap itself is visible in the accounting: at least the
  // routing to the peak owner plus one gathered peer.
  EXPECT_GE(seeded.stats.latency_hops, 1u);
  ASSERT_EQ(seeded.answer.size(), q.k);
  const TupleVec want = SelectTopK(
      net.all, [&](const Point& p) { return scorer.Score(p); }, q.k);
  for (size_t i = 0; i < q.k; ++i) {
    EXPECT_EQ(seeded.answer[i].id, want[i].id);
  }
}

TEST(SeededTopKTest, InitiatorAtPeakHasMinimalBootstrap) {
  Net net = MakeNet(64, 2000, 2, 703);  // dense: peak owner has >= k
  LinearScorer scorer({-0.7, -0.3});
  TopKQuery q{&scorer, 5};
  Engine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  const PeerId peak_owner =
      net.overlay.ResponsiblePeer(scorer.Peak(net.overlay.domain()));
  const auto result = SeededTopK(net.overlay, engine, {.initiator = peak_owner, .query = q, .ripple = RippleParam::Fast()});
  // Routing is free (already there) and the walk stops at the first peer.
  const TupleVec want = SelectTopK(
      net.all, [&](const Point& p) { return scorer.Score(p); }, q.k);
  ASSERT_EQ(result.answer.size(), want.size());
  EXPECT_EQ(result.answer[0].id, want[0].id);
}

TEST(SeededSkylineTest, ConstraintCornerSeedsTheRun) {
  Net net = MakeNet(96, 1500, 2, 707);
  Engine<MidasOverlay, SkylinePolicy> engine(&net.overlay, SkylinePolicy{});
  Rng rng(11);
  SkylineQuery q;
  q.constraint = Rect(Point{0.5, 0.5}, Point{0.9, 0.9});
  TupleVec inside;
  for (const Tuple& t : net.all) {
    if (q.constraint->Contains(t.key)) inside.push_back(t);
  }
  auto result = SeededSkyline(net.overlay, engine, {.initiator = net.overlay.RandomPeer(&rng), .query = q, .ripple = RippleParam::Fast()});
  std::sort(result.answer.begin(), result.answer.end(), TupleIdLess());
  EXPECT_EQ(result.answer, ComputeSkyline(inside));
}

TEST(AsyncOverChordTest, TopKAgreesWithRecursiveEngine) {
  ChordOverlay overlay(48, ChordOptions{.dims = 2, .seed = 709});
  Rng rng(13);
  TupleVec all = data::MakeUniform(600, 2, &rng);
  for (const Tuple& t : all) overlay.InsertTuple(t);
  LinearScorer scorer({-0.6, -0.4});
  TopKQuery q{&scorer, 8};
  Engine<ChordOverlay, TopKPolicy> sync_engine(&overlay, TopKPolicy{});
  AsyncEngine<ChordOverlay, TopKPolicy> async_engine(&overlay, TopKPolicy{});
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Slow()}) {
    const PeerId initiator = overlay.RandomPeer(&rng);
    const auto s = sync_engine.Run({.initiator = initiator, .query = q, .ripple = r});
    const auto a = async_engine.Run({.initiator = initiator, .query = q, .ripple = r});
    ASSERT_EQ(a.answer.size(), s.answer.size()) << "r=" << r;
    for (size_t i = 0; i < s.answer.size(); ++i) {
      EXPECT_EQ(a.answer[i].id, s.answer[i].id);
    }
    EXPECT_EQ(a.stats.peers_visited, s.stats.peers_visited);
    EXPECT_EQ(a.stats.messages, s.stats.messages);
  }
}

TEST(ApproximateTopKTest, EpsilonInteractsSoundlyWithSeeding) {
  Net net = MakeNet(256, 3000, 3, 711);
  LinearScorer scorer({-0.3, -0.3, -0.4});
  Engine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  Rng rng(17);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  const TupleVec want = SelectTopK(
      net.all, [&](const Point& p) { return scorer.Score(p); }, 10);
  const double exact_kth = scorer.Score(want.back().key);
  for (double eps : {0.0, 0.05, 0.25}) {
    TopKQuery q{&scorer, 10, eps};
    const auto run = SeededTopK(net.overlay, engine, {.initiator = initiator, .query = q, .ripple = RippleParam::Slow()});
    ASSERT_EQ(run.answer.size(), 10u) << "eps=" << eps;
    // The returned k-th score is within eps of the exact k-th.
    EXPECT_GE(scorer.Score(run.answer.back().key) + eps, exact_kth);
  }
}

}  // namespace
}  // namespace ripple
