// Unit tests for the unified engine API surface: the RippleParam value
// type, QueryRequest/QueryResult defaults, and the Coverage report type.

#include "ripple/api.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "queries/topk.h"

namespace ripple {
namespace {

// --- RippleParam -------------------------------------------------------------

TEST(RippleParamTest, ConstructorsAndPredicates) {
  EXPECT_TRUE(RippleParam().is_fast());
  EXPECT_TRUE(RippleParam::Fast().is_fast());
  EXPECT_FALSE(RippleParam::Fast().is_slow());
  EXPECT_TRUE(RippleParam::Slow().is_slow());
  EXPECT_FALSE(RippleParam::Slow().is_fast());
  const RippleParam mid = RippleParam::Hops(3);
  EXPECT_FALSE(mid.is_fast());
  EXPECT_FALSE(mid.is_slow());
  EXPECT_EQ(mid.hops(), 3);
  // Hops(0) is exactly fast, negative clamps to fast.
  EXPECT_EQ(RippleParam::Hops(0), RippleParam::Fast());
  EXPECT_EQ(RippleParam::Hops(-5), RippleParam::Fast());
}

TEST(RippleParamTest, SlowExceedsAnyRealisticDepth) {
  // The engine counts the slow budget down one hop at a time; Slow() must
  // outlast any reachable overlay depth.
  EXPECT_GT(RippleParam::Slow().hops(), 1 << 19);
}

TEST(RippleParamTest, FromLegacyConvention) {
  // The legacy convention: 0 = fast, r >= 1<<20 = slow, else r hops.
  EXPECT_EQ(RippleParam::FromLegacy(0), RippleParam::Fast());
  EXPECT_EQ(RippleParam::FromLegacy(4), RippleParam::Hops(4));
  EXPECT_EQ(RippleParam::FromLegacy(1 << 20), RippleParam::Slow());
  EXPECT_EQ(RippleParam::FromLegacy((1 << 20) + 7), RippleParam::Slow());
}

TEST(RippleParamTest, ToStringForms) {
  EXPECT_EQ(RippleParam::Fast().ToString(), "fast");
  EXPECT_EQ(RippleParam::Slow().ToString(), "slow");
  EXPECT_EQ(RippleParam::Hops(12).ToString(), "12");
}

TEST(RippleParamTest, ParseAcceptsCanonicalSpellings) {
  ASSERT_TRUE(RippleParam::Parse("fast").ok());
  EXPECT_EQ(RippleParam::Parse("fast").value(), RippleParam::Fast());
  ASSERT_TRUE(RippleParam::Parse("slow").ok());
  EXPECT_EQ(RippleParam::Parse("slow").value(), RippleParam::Slow());
  ASSERT_TRUE(RippleParam::Parse("0").ok());
  EXPECT_EQ(RippleParam::Parse("0").value(), RippleParam::Fast());
  ASSERT_TRUE(RippleParam::Parse("7").ok());
  EXPECT_EQ(RippleParam::Parse("7").value(), RippleParam::Hops(7));
  // Huge decimal degenerates to slow, matching FromLegacy.
  ASSERT_TRUE(RippleParam::Parse("1048576").ok());
  EXPECT_EQ(RippleParam::Parse("1048576").value(), RippleParam::Slow());
}

TEST(RippleParamTest, ParseRejectsGarbage) {
  EXPECT_FALSE(RippleParam::Parse("").ok());
  EXPECT_FALSE(RippleParam::Parse("quick").ok());
  EXPECT_FALSE(RippleParam::Parse("-1").ok());
  EXPECT_FALSE(RippleParam::Parse("3 hops").ok());
}

TEST(RippleParamTest, ParseToStringRoundTrips) {
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Hops(1),
                              RippleParam::Hops(42), RippleParam::Slow()}) {
    const auto parsed = RippleParam::Parse(r.ToString());
    ASSERT_TRUE(parsed.ok()) << r.ToString();
    EXPECT_EQ(parsed.value(), r);
  }
}

TEST(RippleParamTest, StreamInsertionUsesToString) {
  std::ostringstream os;
  os << RippleParam::Slow() << "/" << RippleParam::Hops(2);
  EXPECT_EQ(os.str(), "slow/2");
}

// --- QueryRequest / QueryResult ----------------------------------------------

TEST(QueryRequestTest, DefaultsDescribeAPerfectNetworkRun) {
  QueryRequest<TopKPolicy> request;
  EXPECT_EQ(request.initiator, kInvalidPeer);
  EXPECT_TRUE(request.ripple.is_fast());
  EXPECT_FALSE(request.initial_state.has_value());
  EXPECT_TRUE(std::isinf(request.deadline));
  EXPECT_FALSE(request.fault.AnyFault());
}

TEST(QueryRequestTest, DesignatedInitializersCompose) {
  QueryRequest<TopKPolicy> request{.initiator = 3,
                                   .ripple = RippleParam::Slow(),
                                   .deadline = 100.0,
                                   .fault = {.loss_rate = 0.1, .seed = 9}};
  EXPECT_EQ(request.initiator, 3u);
  EXPECT_TRUE(request.ripple.is_slow());
  EXPECT_DOUBLE_EQ(request.deadline, 100.0);
  EXPECT_TRUE(request.fault.AnyFault());
  EXPECT_EQ(request.fault.seed, 9u);
}

TEST(QueryResultTest, DefaultsAreCompleteAndInstant) {
  QueryResult<TupleVec> result;
  EXPECT_TRUE(result.complete);
  EXPECT_DOUBLE_EQ(result.completion_time, 0.0);
  EXPECT_TRUE(result.coverage.complete());
  EXPECT_TRUE(result.coverage.quiet());
}

// --- FaultOptions / Coverage -------------------------------------------------

TEST(FaultOptionsTest, AnyFaultDetectsEveryKnob) {
  EXPECT_FALSE(net::FaultOptions{}.AnyFault());
  EXPECT_TRUE(net::FaultOptions{.loss_rate = 0.01}.AnyFault());
  EXPECT_TRUE(net::FaultOptions{.dup_rate = 0.01}.AnyFault());
  EXPECT_TRUE(net::FaultOptions{.delay_jitter = 0.5}.AnyFault());
  EXPECT_TRUE(net::FaultOptions{.crash_rate = 0.01}.AnyFault());
  net::FaultOptions explicit_crash;
  explicit_crash.crashes.push_back({.peer = 4, .at = 2.0});
  EXPECT_TRUE(explicit_crash.AnyFault());
}

TEST(CoverageTest, CompleteAndQuietTrackTheRightCounters) {
  net::Coverage c;
  EXPECT_TRUE(c.complete());
  EXPECT_TRUE(c.quiet());
  c.retries = 2;  // noisy but still complete
  EXPECT_TRUE(c.complete());
  EXPECT_FALSE(c.quiet());
  c.links_unresolved = 1;
  EXPECT_FALSE(c.complete());
  c.links_unresolved = 0;
  c.answers_lost = 1;
  EXPECT_FALSE(c.complete());
}

TEST(CoverageTest, AccumulationMergesCountersAndPeerSets) {
  net::Coverage a;
  a.retries = 1;
  a.links_unresolved = 1;
  a.unreachable_peers = {2, 5};
  net::Coverage b;
  b.retries = 3;
  b.answers_lost = 1;
  b.unreachable_peers = {5, 9};
  b.crashed_peers = {9};
  a += b;
  EXPECT_EQ(a.retries, 4u);
  EXPECT_EQ(a.links_unresolved, 1u);
  EXPECT_EQ(a.answers_lost, 1u);
  EXPECT_EQ(a.unreachable_peers, (std::vector<PeerId>{2, 5, 9}));
  EXPECT_EQ(a.crashed_peers, (std::vector<PeerId>{9}));
  EXPECT_FALSE(a.complete());
}

TEST(CoverageTest, ToStringShowsOnlyNonZeroCounters) {
  net::Coverage c;
  EXPECT_EQ(c.ToString(), "complete");
  c.retries = 2;
  EXPECT_EQ(c.ToString(), "complete retries=2");
  c.links_unresolved = 1;
  c.unreachable_peers = {7};
  const std::string s = c.ToString();
  EXPECT_NE(s.find("partial("), std::string::npos) << s;
  EXPECT_NE(s.find("links=1"), std::string::npos) << s;
  EXPECT_NE(s.find("retries=2"), std::string::npos) << s;
  EXPECT_EQ(s.find("timeouts"), std::string::npos) << s;
}

}  // namespace
}  // namespace ripple
