// The live monitoring plane (ctest -L monitor): admin payload codecs
// (round trips, truncation and garbage rejection), the registry bridge,
// cluster aggregation, the daemon's admin request handling over a capture
// transport, and a real-UDP scrape of a two-daemon cluster whose totals
// must agree with the daemons' own counters.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/admin.h"
#include "net/bootstrap.h"
#include "net/client.h"
#include "net/daemon.h"
#include "net/monitor.h"
#include "net/peers.h"
#include "net/protocol.h"
#include "net/udp_transport.h"
#include "obs/metrics.h"
#include "queries/range.h"
#include "queries/skyline_driver.h"

namespace ripple {
namespace {

// ---------------------------------------------------------------------------
// Admin payload codecs

/// Fills every field of a ForEach-visitable counter struct with a
/// distinct value so shifted or reordered decodes cannot pass.
template <typename S, typename Visit>
void FillDistinct(S* s, Visit visit, uint64_t base) {
  uint64_t v = base;
  visit(*s, [&](const char*, uint64_t& f) { f = v += 7; });
}

template <typename S, typename Visit>
std::vector<uint64_t> FieldValues(const S& s, Visit visit) {
  std::vector<uint64_t> out;
  visit(s, [&](const char*, const uint64_t& f) { out.push_back(f); });
  return out;
}

const auto kStatVisit = [](auto&& s, auto&& fn) {
  net::ForEachDaemonStatField(s, fn);
};
const auto kTransportVisit = [](auto&& s, auto&& fn) {
  net::ForEachTransportCounterField(s, fn);
};
const auto kDepthVisit = [](auto&& s, auto&& fn) {
  net::ForEachQueueDepthField(s, fn);
};

TEST(AdminCodecTest, CounterStructsRoundTrip) {
  net::DaemonStats stats;
  net::TransportCounters transport;
  net::QueueDepths depths;
  FillDistinct(&stats, kStatVisit, 100);
  FillDistinct(&transport, kTransportVisit, 200);
  FillDistinct(&depths, kDepthVisit, 300);

  wire::Buffer buf;
  net::EncodeDaemonStats(stats, &buf);
  net::EncodeTransportCounters(transport, &buf);
  net::EncodeQueueDepths(depths, &buf);
  const std::vector<uint8_t> bytes = buf.Take();

  wire::Reader r(bytes);
  net::DaemonStats stats2;
  net::TransportCounters transport2;
  net::QueueDepths depths2;
  ASSERT_TRUE(net::DecodeDaemonStats(&r, &stats2));
  ASSERT_TRUE(net::DecodeTransportCounters(&r, &transport2));
  ASSERT_TRUE(net::DecodeQueueDepths(&r, &depths2));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(FieldValues(stats2, kStatVisit), FieldValues(stats, kStatVisit));
  EXPECT_EQ(FieldValues(transport2, kTransportVisit),
            FieldValues(transport, kTransportVisit));
  EXPECT_EQ(FieldValues(depths2, kDepthVisit),
            FieldValues(depths, kDepthVisit));
}

TEST(AdminCodecTest, FieldCountMismatchIsRejected) {
  // A report from a daemon with a shorter field list (older build): the
  // leading count disagrees, so the decode fails instead of misreading.
  wire::Buffer buf;
  buf.PutVarint(3);
  for (int i = 0; i < 3; ++i) buf.PutVarint(9);
  const std::vector<uint8_t> bytes = buf.Take();
  wire::Reader r(bytes);
  net::DaemonStats out;
  EXPECT_FALSE(net::DecodeDaemonStats(&r, &out));
}

TEST(AdminCodecTest, PongStatsReportAndHealthRoundTrip) {
  net::AdminPong pong{12345, 4};
  net::AdminStatsReport report;
  report.uptime_ms = 999;
  report.peer_lo = 3;
  report.peer_hi = 5;
  FillDistinct(&report.stats, kStatVisit, 10);
  FillDistinct(&report.transport, kTransportVisit, 20);
  FillDistinct(&report.queues, kDepthVisit, 30);
  net::AdminHealthReport health;
  health.healthy = true;
  health.uptime_ms = 42;
  health.open_sessions = 2;
  health.pending_requests = 3;
  health.queries_served = 77;

  wire::Buffer buf;
  net::EncodeAdminPong(pong, &buf);
  net::EncodeStatsReport(report, &buf);
  net::EncodeHealthReport(health, &buf);
  const std::vector<uint8_t> bytes = buf.Take();

  wire::Reader r(bytes);
  net::AdminPong pong2;
  net::AdminStatsReport report2;
  net::AdminHealthReport health2;
  ASSERT_TRUE(net::DecodeAdminPong(&r, &pong2));
  ASSERT_TRUE(net::DecodeStatsReport(&r, &report2));
  ASSERT_TRUE(net::DecodeHealthReport(&r, &health2));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(pong2.uptime_ms, pong.uptime_ms);
  EXPECT_EQ(pong2.peers_served, pong.peers_served);
  EXPECT_EQ(report2.uptime_ms, report.uptime_ms);
  EXPECT_EQ(report2.peer_lo, report.peer_lo);
  EXPECT_EQ(report2.peer_hi, report.peer_hi);
  EXPECT_EQ(FieldValues(report2.stats, kStatVisit),
            FieldValues(report.stats, kStatVisit));
  EXPECT_EQ(FieldValues(report2.transport, kTransportVisit),
            FieldValues(report.transport, kTransportVisit));
  EXPECT_EQ(FieldValues(report2.queues, kDepthVisit),
            FieldValues(report.queues, kDepthVisit));
  EXPECT_TRUE(health2.healthy);
  EXPECT_EQ(health2.uptime_ms, health.uptime_ms);
  EXPECT_EQ(health2.open_sessions, health.open_sessions);
  EXPECT_EQ(health2.pending_requests, health.pending_requests);
  EXPECT_EQ(health2.queries_served, health.queries_served);
}

TEST(AdminCodecTest, SnapshotRoundTripsNamesAndValues) {
  obs::Snapshot snap;
  snap.at_ms = 1500.25;
  snap.counters = {{"net.daemon.queries_served", 12},
                   {"overlay.hops", 345678901234567ull}};
  snap.gauges = {{"net.daemon.open_sessions", 2.0},
                 {"net.daemon.uptime_ms", 987.5}};
  wire::Buffer buf;
  net::EncodeSnapshot(snap, &buf);
  const std::vector<uint8_t> bytes = buf.Take();
  wire::Reader r(bytes);
  obs::Snapshot out;
  ASSERT_TRUE(net::DecodeSnapshot(&r, &out));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_DOUBLE_EQ(out.at_ms, snap.at_ms);
  EXPECT_EQ(out.counters, snap.counters);
  EXPECT_EQ(out.gauges, snap.gauges);
}

TEST(AdminCodecTest, EveryTruncationOfAReportIsRejected) {
  net::AdminStatsReport report;
  FillDistinct(&report.stats, kStatVisit, 1000);
  FillDistinct(&report.transport, kTransportVisit, 2000);
  FillDistinct(&report.queues, kDepthVisit, 3000);
  wire::Buffer buf;
  net::EncodeStatsReport(report, &buf);
  const std::vector<uint8_t> bytes = buf.Take();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<long>(cut));
    wire::Reader r(prefix);
    net::AdminStatsReport out;
    EXPECT_FALSE(net::DecodeStatsReport(&r, &out) && r.remaining() == 0)
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(AdminCodecTest, SnapshotRejectsGarbageAndOverlongCounts) {
  // A claimed element count larger than the remaining bytes must fail
  // before any allocation, not attempt a four-billion-entry vector.
  wire::Buffer buf;
  buf.PutF64(1.0);
  buf.PutVarint(0xFFFFFFFFu);
  const std::vector<uint8_t> huge = buf.Take();
  wire::Reader hr(huge);
  obs::Snapshot out;
  EXPECT_FALSE(net::DecodeSnapshot(&hr, &out));

  // Deterministic pseudo-random byte soup: decoding must fail cleanly
  // (or at worst decode and leave residue), never crash.
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int round = 0; round < 64; ++round) {
    std::vector<uint8_t> junk(1 + round * 3);
    for (auto& b : junk) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      b = static_cast<uint8_t>(x);
    }
    wire::Reader r(junk);
    obs::Snapshot s;
    net::DecodeSnapshot(&r, &s);  // must not crash or hang
    wire::Reader r2(junk);
    net::AdminStatsReport rep;
    net::DecodeStatsReport(&r2, &rep);
  }
}

TEST(AdminJsonTest, JsonCarriesTheWireFieldNames) {
  net::AdminStatsReport report;
  report.uptime_ms = 5;
  report.peer_lo = 0;
  report.peer_hi = 2;
  report.stats.queries_served = 17;
  report.transport.datagrams_sent = 9;
  report.queues.open_sessions = 1;
  const std::string json = net::StatsReportJson(report);
  EXPECT_NE(json.find("\"uptime_ms\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queries_served\":17"), std::string::npos);
  EXPECT_NE(json.find("\"datagrams_sent\":9"), std::string::npos);
  EXPECT_NE(json.find("\"open_sessions\":1"), std::string::npos);

  obs::Snapshot snap;
  snap.at_ms = 10.0;
  snap.counters = {{"a.b", 3}};
  snap.gauges = {{"c.d", 1.5}};
  const std::string sj = net::SnapshotJson(snap);
  EXPECT_NE(sj.find("\"a.b\":3"), std::string::npos) << sj;
  EXPECT_NE(sj.find("\"c.d\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Aggregation and the registry bridge

TEST(AdminAggregationTest, AddIntoSumsEveryField) {
  net::DaemonStats a, b, sum;
  FillDistinct(&a, kStatVisit, 0);
  FillDistinct(&b, kStatVisit, 500);
  sum = a;
  net::AddInto(&sum, b);
  const auto av = FieldValues(a, kStatVisit);
  const auto bv = FieldValues(b, kStatVisit);
  const auto sv = FieldValues(sum, kStatVisit);
  ASSERT_EQ(sv.size(), av.size());
  for (size_t i = 0; i < sv.size(); ++i) EXPECT_EQ(sv[i], av[i] + bv[i]);

  net::TransportCounters ta, tb, tsum;
  FillDistinct(&ta, kTransportVisit, 0);
  FillDistinct(&tb, kTransportVisit, 40);
  tsum = ta;
  net::AddInto(&tsum, tb);
  const auto tav = FieldValues(ta, kTransportVisit);
  const auto tbv = FieldValues(tb, kTransportVisit);
  const auto tsv = FieldValues(tsum, kTransportVisit);
  for (size_t i = 0; i < tsv.size(); ++i) EXPECT_EQ(tsv[i], tav[i] + tbv[i]);
}

TEST(StatsBridgeTest, MirrorsCountersMonotonically) {
  obs::Registry registry;
  net::StatsBridge bridge(&registry);
  net::DaemonStats s;
  s.queries_served = 5;
  bridge.SyncStats(s);
  EXPECT_EQ(registry.GetCounter("net.daemon.queries_served").value(), 5u);
  s.queries_served = 9;
  bridge.SyncStats(s);
  EXPECT_EQ(registry.GetCounter("net.daemon.queries_served").value(), 9u);
  // Counters never move backwards: a sync with a smaller value (another
  // writer raced, or a stale report) leaves the registry untouched.
  s.queries_served = 3;
  bridge.SyncStats(s);
  EXPECT_EQ(registry.GetCounter("net.daemon.queries_served").value(), 9u);

  net::TransportCounters t;
  t.datagrams_sent = 4;
  bridge.SyncTransport(t);
  EXPECT_EQ(registry.GetCounter("net.udp.datagrams_sent").value(), 4u);

  net::QueueDepths q;
  q.open_sessions = 2;
  bridge.SyncQueues(q, 123.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("net.daemon.open_sessions").value(),
                   2.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("net.daemon.uptime_ms").value(), 123.0);
  // Gauges are point-in-time: they follow the depth down again.
  q.open_sessions = 0;
  bridge.SyncQueues(q, 130.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("net.daemon.open_sessions").value(),
                   0.0);
}

// ---------------------------------------------------------------------------
// Daemon admin serving (capture transport, datagrams injected directly)

net::NetConfig SmallConfig() {
  net::NetConfig config;
  config.dataset = "uniform";
  config.peers = 6;
  config.dims = 2;
  config.tuples = 400;
  config.seed = 3;
  return config;
}

/// Transport that records every send; nothing is delivered anywhere.
class CaptureTransport : public net::Transport {
 public:
  void Send(const net::Envelope& env, std::vector<uint8_t> bytes) override {
    sent.push_back(net::Datagram{env, std::move(bytes)});
  }
  std::vector<net::Datagram> sent;
};

class AdminDaemonTest : public ::testing::Test {
 protected:
  AdminDaemonTest() : overlay_(net::BuildOverlay(SmallConfig())) {}

  static std::vector<uint8_t> AdminFrame(net::MessageKind kind, uint64_t id,
                                         PeerId from, PeerId to) {
    const net::Envelope env{id, from, to, kind, 0, {}};
    wire::Buffer buf;
    const size_t start = net::BeginEnvelopeFrame(env, &buf);
    wire::EndFrame(&buf, start);
    return buf.Take();
  }

  static net::Datagram AdminDatagram(net::MessageKind kind, uint64_t id,
                                     PeerId from, PeerId to) {
    const net::Envelope env{id, from, to, kind, 0, {}};
    return net::Datagram{env, AdminFrame(kind, id, from, to)};
  }

  std::unique_ptr<MidasOverlay> overlay_;
  const PeerId client_ = net::kClientIdBase | 2;
};

TEST_F(AdminDaemonTest, PingRepliesReuseTagAndId) {
  CaptureTransport wire;
  net::PeerDaemon<MidasOverlay> daemon(overlay_.get(), &wire, {0, 1, 2});
  const uint64_t id = net::MakeMessageId(client_, 1);
  daemon.Dispatch(AdminDatagram(net::MessageKind::kAdminPing, id, client_, 1));
  ASSERT_EQ(wire.sent.size(), 1u);
  const net::Datagram& d = wire.sent[0];
  EXPECT_EQ(d.env.kind, net::MessageKind::kAdminPing);
  EXPECT_EQ(d.env.id, id);
  EXPECT_EQ(d.env.from, 1u);
  EXPECT_EQ(d.env.to, client_);
  wire::Reader r(d.bytes);
  net::Envelope echo;
  ASSERT_TRUE(net::DecodeEnvelopeFrame(&r, &echo));
  net::AdminPong pong;
  ASSERT_TRUE(net::DecodeAdminPong(&r, &pong));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(pong.peers_served, 3u);
  EXPECT_EQ(daemon.stats().admin_requests, 1u);
  EXPECT_EQ(daemon.stats().queries_served, 0u);  // probes open no sessions
}

TEST_F(AdminDaemonTest, StatsReplyMatchesTheDaemonsOwnCounters) {
  CaptureTransport wire;
  net::PeerDaemon<MidasOverlay> daemon(overlay_.get(), &wire,
                                       {0, 1, 2, 3, 4, 5});
  net::TransportCounters fake;
  fake.datagrams_sent = 31;
  fake.bytes_received = 4096;
  daemon.SetTransportCounters([fake] { return fake; });

  // Generate real traffic first: one skyline query pumped to completion
  // over the capture loopback (the daemon serves every peer).
  SkylinePolicy policy;
  const uint64_t qid = net::MakeMessageId(client_, 5);
  const net::Envelope qenv{qid, client_, 0, net::MessageKind::kQuery, 0, {}};
  wire::Buffer qbuf;
  const size_t qstart = net::BeginEnvelopeFrame(qenv, &qbuf);
  qbuf.PutU8(static_cast<uint8_t>(net::PolicyTagOf<SkylinePolicy>::value));
  qbuf.PutZigzag(0);
  policy.EncodeQuery(SkylineQuery{}, &qbuf);
  policy.EncodeState(policy.InitialGlobalState({}), &qbuf);
  overlay_->EncodeArea(overlay_->FullArea(), &qbuf);
  wire::EndFrame(&qbuf, qstart);
  daemon.Dispatch(net::Datagram{qenv, qbuf.Take()});
  for (int round = 0; round < 64 && !wire.sent.empty(); ++round) {
    std::vector<net::Datagram> batch = std::move(wire.sent);
    wire.sent.clear();
    for (auto& d : batch) {
      if (net::IsClientId(d.env.to)) continue;
      daemon.Dispatch(std::move(d));
    }
  }
  ASSERT_GT(daemon.stats().queries_served, 0u);

  const uint64_t id = net::MakeMessageId(client_, 6);
  daemon.Dispatch(
      AdminDatagram(net::MessageKind::kAdminStats, id, client_, 0));
  ASSERT_EQ(wire.sent.size(), 1u);
  wire::Reader r(wire.sent[0].bytes);
  net::Envelope echo;
  ASSERT_TRUE(net::DecodeEnvelopeFrame(&r, &echo));
  net::AdminStatsReport report;
  ASSERT_TRUE(net::DecodeStatsReport(&r, &report));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(report.peer_lo, 0u);
  EXPECT_EQ(report.peer_hi, 5u);
  EXPECT_EQ(report.stats.queries_served, daemon.stats().queries_served);
  EXPECT_EQ(report.stats.answers_finalized, 1u);
  EXPECT_EQ(report.stats.admin_requests, 1u);  // this very probe
  EXPECT_EQ(report.transport.datagrams_sent, 31u);
  EXPECT_EQ(report.transport.bytes_received, 4096u);
  // The query finished, so nothing is in flight right now — but the
  // reply cache remembers every session it opened.
  EXPECT_EQ(report.queues.open_sessions, 0u);
  EXPECT_EQ(report.queues.pending_requests, 0u);
  EXPECT_GT(report.queues.sessions_total, 0u);
  EXPECT_GT(report.queues.dedup_tracked, 0u);
}

TEST_F(AdminDaemonTest, SnapshotReplyCarriesRegistryContents) {
  CaptureTransport wire;
  net::PeerDaemon<MidasOverlay> daemon(overlay_.get(), &wire, {0, 1, 2});
  obs::Registry registry;
  daemon.SetRegistry(&registry);
  registry.GetCounter("custom.probe").Inc(5);

  const uint64_t id = net::MakeMessageId(client_, 7);
  daemon.Dispatch(
      AdminDatagram(net::MessageKind::kAdminSnapshot, id, client_, 2));
  ASSERT_EQ(wire.sent.size(), 1u);
  wire::Reader r(wire.sent[0].bytes);
  net::Envelope echo;
  ASSERT_TRUE(net::DecodeEnvelopeFrame(&r, &echo));
  obs::Snapshot snap;
  ASSERT_TRUE(net::DecodeSnapshot(&r, &snap));
  EXPECT_EQ(r.remaining(), 0u);
  uint64_t custom = 0, admin = 0;
  for (const auto& [name, v] : snap.counters) {
    if (name == "custom.probe") custom = v;
    if (name == "net.daemon.admin_requests") admin = v;
  }
  EXPECT_EQ(custom, 5u);
  EXPECT_EQ(admin, 1u);  // the handler synced after counting this probe
  bool has_uptime = false;
  for (const auto& [name, v] : snap.gauges) {
    if (name == "net.daemon.uptime_ms") has_uptime = v >= 0.0;
  }
  EXPECT_TRUE(has_uptime);
}

TEST_F(AdminDaemonTest, HealthReportsLiveDepths) {
  CaptureTransport wire;
  net::PeerDaemon<MidasOverlay> daemon(overlay_.get(), &wire, {0, 1, 2});
  const uint64_t id = net::MakeMessageId(client_, 8);
  daemon.Dispatch(
      AdminDatagram(net::MessageKind::kAdminHealth, id, client_, 0));
  ASSERT_EQ(wire.sent.size(), 1u);
  wire::Reader r(wire.sent[0].bytes);
  net::Envelope echo;
  ASSERT_TRUE(net::DecodeEnvelopeFrame(&r, &echo));
  net::AdminHealthReport health;
  ASSERT_TRUE(net::DecodeHealthReport(&r, &health));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(health.healthy);
  EXPECT_EQ(health.open_sessions, 0u);
  EXPECT_EQ(health.pending_requests, 0u);
  EXPECT_EQ(health.queries_served, 0u);
}

TEST_F(AdminDaemonTest, DuplicateProbesAreAnsweredWithoutDedup) {
  // Admin reads are idempotent, so the daemon answers every copy instead
  // of suppressing duplicates — a monitor retrying a lost reply must get
  // a fresh one even though the message id repeats.
  CaptureTransport wire;
  net::PeerDaemon<MidasOverlay> daemon(overlay_.get(), &wire, {0, 1, 2});
  const uint64_t id = net::MakeMessageId(client_, 9);
  daemon.Dispatch(AdminDatagram(net::MessageKind::kAdminPing, id, client_, 0));
  daemon.Dispatch(AdminDatagram(net::MessageKind::kAdminPing, id, client_, 0));
  EXPECT_EQ(wire.sent.size(), 2u);
  EXPECT_EQ(daemon.stats().admin_requests, 2u);
  EXPECT_EQ(daemon.stats().duplicates_suppressed, 0u);
}

TEST_F(AdminDaemonTest, RejectsPayloadBearingAndMisdeliveredProbes) {
  CaptureTransport wire;
  net::PeerDaemon<MidasOverlay> daemon(overlay_.get(), &wire, {0, 1, 2});

  // Admin requests are empty-payload by contract; stray bytes mean a
  // confused (or malicious) sender, counted and dropped without a reply.
  const uint64_t id = net::MakeMessageId(client_, 10);
  const net::Envelope env{id, client_, 0, net::MessageKind::kAdminStats, 0,
                          {}};
  wire::Buffer buf;
  const size_t start = net::BeginEnvelopeFrame(env, &buf);
  buf.PutU8(0xAB);
  wire::EndFrame(&buf, start);
  daemon.Dispatch(net::Datagram{env, buf.Take()});
  EXPECT_EQ(daemon.stats().frames_rejected, 1u);
  EXPECT_TRUE(wire.sent.empty());

  // A probe for a peer this process does not serve.
  daemon.Dispatch(
      AdminDatagram(net::MessageKind::kAdminPing, id + 1, client_, 5));
  EXPECT_EQ(daemon.stats().misdelivered, 1u);
  EXPECT_TRUE(wire.sent.empty());
  EXPECT_EQ(daemon.stats().admin_requests, 0u);
}

// ---------------------------------------------------------------------------
// Cluster monitor over real UDP

uint16_t ReserveLocalPort() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

TEST(ClusterMonitorTest, ScrapesALiveTwoDaemonCluster) {
  net::PeersFile pf;
  pf.config = SmallConfig();
  pf.assignments = {
      net::PeerAssignment{0, 2, {"127.0.0.1", ReserveLocalPort()}},
      net::PeerAssignment{3, 5, {"127.0.0.1", ReserveLocalPort()}},
  };
  const std::unique_ptr<MidasOverlay> overlay = net::BuildOverlay(pf.config);
  auto t1 = net::UdpSocketTransport::Open(pf, pf.assignments[0].endpoint);
  auto t2 = net::UdpSocketTransport::Open(pf, pf.assignments[1].endpoint);
  ASSERT_TRUE(t1.ok()) << t1.status().message();
  ASSERT_TRUE(t2.ok()) << t2.status().message();
  net::RetryOptions retry;
  retry.timeout = 100.0;
  retry.timeout_cap = 800.0;
  net::PeerDaemon<MidasOverlay> d1(overlay.get(), t1->get(), {0, 1, 2},
                                   retry);
  net::PeerDaemon<MidasOverlay> d2(overlay.get(), t2->get(), {3, 4, 5},
                                   retry);
  d1.SetTransportCounters([&] { return (*t1)->Counters(); });
  d2.SetTransportCounters([&] { return (*t2)->Counters(); });
  std::atomic<bool> stop{false};
  std::thread th1([&] { d1.ServeLoop(stop, 5); });
  std::thread th2([&] { d2.ServeLoop(stop, 5); });

  auto mon_transport = net::UdpSocketTransport::Open(pf, {"127.0.0.1", 0});
  ASSERT_TRUE(mon_transport.ok());
  net::ClusterMonitor monitor(pf, mon_transport->get(),
                              net::kClientIdBase | 2, {});
  ASSERT_TRUE(monitor.WaitHealthy(5000));

  // One real query so the scrape sees query-protocol counters, not an
  // idle cluster. The client uses a different synthetic id than the
  // monitor, so each gets its own learned return address.
  auto client_transport = net::UdpSocketTransport::Open(pf, {"127.0.0.1", 0});
  ASSERT_TRUE(client_transport.ok());
  net::NetClient<MidasOverlay> client(overlay.get(), client_transport->get(),
                                      net::kClientIdBase | 1, retry);
  RangePolicy policy;
  RangeQuery range;
  range.center = Point(2);
  range.center[0] = 0.4;
  range.center[1] = 0.6;
  range.radius = 0.2;
  const auto live = client.Execute(policy, range, 2, /*r=*/1,
                                   policy.InitialGlobalState(range));
  ASSERT_TRUE(live.complete);

  net::ClusterSample sample = monitor.Scrape(100.0);
  EXPECT_EQ(sample.totals.endpoints, 2u);
  EXPECT_EQ(sample.totals.healthy, 2u);
  ASSERT_EQ(sample.endpoints.size(), 2u);
  uint64_t pong_peers = 0;
  for (const auto& es : sample.endpoints) {
    EXPECT_TRUE(es.healthy);
    EXPECT_GT(es.rtt_ms, 0.0);
    EXPECT_TRUE(es.health.healthy);
    pong_peers += es.pong.peers_served;
  }
  EXPECT_EQ(pong_peers, 6u);
  EXPECT_EQ(sample.totals.stats.answers_finalized, 1u);
  EXPECT_GT(sample.totals.stats.queries_served, 0u);
  EXPECT_GT(sample.totals.transport.datagrams_received, 0u);
  EXPECT_EQ(sample.totals.queues.open_sessions, 0u);
  EXPECT_GT(sample.totals.load_skew.peak_to_mean, 0.0);

  // A second sample windows QPS against the first; nothing ran between
  // them, so the delta is zero.
  const net::ClusterSample again = monitor.Scrape(200.0);
  EXPECT_EQ(again.totals.healthy, 2u);
  EXPECT_DOUBLE_EQ(again.totals.qps, 0.0);

  stop.store(true);
  th1.join();
  th2.join();
  // The scraped totals are the daemons' own counters, summed — exact on
  // every field except admin_requests (the scrape itself bumps it while
  // the probes are in flight).
  const net::DaemonStats sum_after = [&] {
    net::DaemonStats s = d1.stats();
    net::AddInto(&s, d2.stats());
    return s;
  }();
  EXPECT_EQ(sample.totals.stats.queries_served, sum_after.queries_served);
  EXPECT_EQ(sample.totals.stats.answers_finalized,
            sum_after.answers_finalized);
  EXPECT_EQ(sample.totals.stats.replies_sent, sum_after.replies_sent);
  EXPECT_EQ(sample.totals.stats.frames_rejected, sum_after.frames_rejected);

  // The dashboard and JSONL renderings of the live sample.
  const std::string dash = net::ClusterMonitor::Dashboard(sample);
  EXPECT_NE(dash.find("2/2 healthy"), std::string::npos) << dash;
  const std::string json = net::ClusterMonitor::SampleToJson(sample);
  EXPECT_NE(json.find("\"healthy\":true"), std::string::npos);
  EXPECT_NE(json.find("\"totals\":{"), std::string::npos);
  EXPECT_NE(json.find("\"queries_served\":"), std::string::npos);
}

TEST(ClusterMonitorTest, SilentEndpointIsUnhealthyAndWaitTimesOut) {
  // One live daemon, one endpoint where nothing listens: the scrape
  // marks the silent process DOWN and its (zero) counters stay out of
  // the totals; WaitHealthy refuses to declare the cluster ready.
  net::PeersFile pf;
  pf.config = SmallConfig();
  pf.assignments = {
      net::PeerAssignment{0, 2, {"127.0.0.1", ReserveLocalPort()}},
      net::PeerAssignment{3, 5, {"127.0.0.1", ReserveLocalPort()}},
  };
  const std::unique_ptr<MidasOverlay> overlay = net::BuildOverlay(pf.config);
  auto t1 = net::UdpSocketTransport::Open(pf, pf.assignments[0].endpoint);
  ASSERT_TRUE(t1.ok()) << t1.status().message();
  net::PeerDaemon<MidasOverlay> d1(overlay.get(), t1->get(), {0, 1, 2});
  std::atomic<bool> stop{false};
  std::thread th1([&] { d1.ServeLoop(stop, 5); });

  auto mon_transport = net::UdpSocketTransport::Open(pf, {"127.0.0.1", 0});
  ASSERT_TRUE(mon_transport.ok());
  net::MonitorOptions opts;
  opts.probe_timeout_ms = 50;
  opts.probe_attempts = 1;
  net::ClusterMonitor monitor(pf, mon_transport->get(),
                              net::kClientIdBase | 2, opts);
  EXPECT_FALSE(monitor.WaitHealthy(300));

  const net::ClusterSample sample = monitor.Scrape(50.0);
  EXPECT_EQ(sample.totals.endpoints, 2u);
  EXPECT_EQ(sample.totals.healthy, 1u);
  ASSERT_EQ(sample.endpoints.size(), 2u);
  EXPECT_TRUE(sample.endpoints[0].healthy);
  EXPECT_FALSE(sample.endpoints[1].healthy);
  EXPECT_EQ(sample.endpoints[1].report.stats.queries_served, 0u);
  const std::string dash = net::ClusterMonitor::Dashboard(sample);
  EXPECT_NE(dash.find("DOWN"), std::string::npos) << dash;
  EXPECT_NE(dash.find("1/2 healthy"), std::string::npos);
  const std::string json = net::ClusterMonitor::SampleToJson(sample);
  EXPECT_NE(json.find("\"healthy\":false"), std::string::npos);

  stop.store(true);
  th1.join();
}

}  // namespace
}  // namespace ripple
