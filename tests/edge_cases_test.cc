// Edge-case battery: degenerate data shapes, boundary parameters and
// pathological inputs across modules.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/midas/midas.h"
#include "queries/skyband.h"
#include "queries/skyline_driver.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"
#include "store/kd_index.h"
#include "store/local_algos.h"

namespace ripple {
namespace {

// --- Identical / duplicated keys ---------------------------------------------

TupleVec AllSamePoint(size_t n, const Point& p) {
  TupleVec out;
  for (size_t i = 0; i < n; ++i) out.push_back(Tuple{i, p});
  return out;
}

TEST(EdgeCaseTest, KdIndexHandlesIdenticalKeys) {
  const TupleVec ts = AllSamePoint(100, Point{0.5, 0.5});
  KdIndex idx(ts);
  LinearScorer s({-1.0, -1.0});
  auto score = [&](const Point& p) { return s.Score(p); };
  auto upper = [&](const Rect& r) { return s.UpperBound(r); };
  const TupleVec top = idx.TopK(score, upper, 10);
  ASSERT_EQ(top.size(), 10u);
  // All scores tie, so any 10 distinct tuples form a valid top-k (the
  // index's id tie-break is best-effort across subtrees, not global).
  std::set<uint64_t> ids;
  for (const Tuple& t : top) {
    EXPECT_DOUBLE_EQ(score(t.key), -1.0);
    EXPECT_TRUE(ids.insert(t.id).second);
  }
}

TEST(EdgeCaseTest, SkylineOfIdenticalKeysKeepsAll) {
  const TupleVec ts = AllSamePoint(50, Point{0.3, 0.7});
  EXPECT_EQ(ComputeSkyline(ts).size(), 50u);  // equal points never dominate
  EXPECT_EQ(ComputeKSkyband(ts, 3).size(), 50u);
}

TEST(EdgeCaseTest, MidasSplitsDegenerateDataViaMidpointFallback) {
  // All tuples at one point: median == zone edge repeatedly; the overlay
  // must fall back to midpoint splits and stay consistent.
  MidasOptions opt;
  opt.dims = 2;
  opt.seed = 5;
  opt.split_rule = MidasSplitRule::kDataMedian;
  MidasOverlay overlay(opt);
  for (const Tuple& t : AllSamePoint(200, Point{0.25, 0.75})) {
    overlay.InsertTuple(t);
  }
  while (overlay.NumPeers() < 64) overlay.Join();
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
  EXPECT_EQ(overlay.TotalTuples(), 200u);
  // The whole dataset sits in one peer's zone; top-k still works.
  LinearScorer s({-1.0, -1.0});
  TopKQuery q{&s, 5};
  Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  Rng rng(7);
  const auto result =
      SeededTopK(overlay, engine, {.initiator = overlay.RandomPeer(&rng), .query = q, .ripple = RippleParam::Fast()});
  EXPECT_EQ(result.answer.size(), 5u);
}

// --- Boundary parameters -------------------------------------------------------

TEST(EdgeCaseTest, TopKWithKEqualsOne) {
  MidasOptions opt;
  opt.dims = 3;
  opt.seed = 11;
  MidasOverlay overlay(opt);
  Rng rng(13);
  const TupleVec ts = data::MakeUniform(500, 3, &rng);
  for (const Tuple& t : ts) overlay.InsertTuple(t);
  while (overlay.NumPeers() < 32) overlay.Join();
  LinearScorer s({-0.2, -0.3, -0.5});
  TopKQuery q{&s, 1};
  Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  const auto result =
      SeededTopK(overlay, engine, {.initiator = overlay.RandomPeer(&rng), .query = q, .ripple = RippleParam::Fast()});
  const TupleVec want = SelectTopK(
      ts, [&](const Point& p) { return s.Score(p); }, 1);
  ASSERT_EQ(result.answer.size(), 1u);
  EXPECT_EQ(result.answer[0].id, want[0].id);
}

TEST(EdgeCaseTest, OneDimensionalDomain) {
  MidasOptions opt;
  opt.dims = 1;
  opt.seed = 17;
  MidasOverlay overlay(opt);
  Rng rng(19);
  TupleVec ts;
  for (uint64_t i = 0; i < 300; ++i) {
    ts.push_back(Tuple{i, Point{rng.UniformDouble()}});
    overlay.InsertTuple(ts.back());
  }
  while (overlay.NumPeers() < 32) overlay.Join();
  ASSERT_TRUE(overlay.Validate().ok());
  // 1-d skyline == the single minimum (no ties in continuous data).
  Engine<MidasOverlay, SkylinePolicy> engine(&overlay, SkylinePolicy{});
  const auto result = SeededSkyline(overlay, engine, {.initiator = overlay.RandomPeer(&rng), .query = SkylineQuery{}, .ripple = RippleParam::Fast()});
  EXPECT_EQ(result.answer, ComputeSkyline(ts));
  EXPECT_EQ(result.answer.size(), 1u);
}

TEST(EdgeCaseTest, MaxDimensionalDomain) {
  MidasOptions opt;
  opt.dims = kMaxDims;
  opt.seed = 23;
  MidasOverlay overlay(opt);
  Rng rng(29);
  const TupleVec ts = data::MakeUniform(200, kMaxDims, &rng);
  for (const Tuple& t : ts) overlay.InsertTuple(t);
  while (overlay.NumPeers() < 16) overlay.Join();
  ASSERT_TRUE(overlay.Validate().ok());
  LinearScorer s(std::vector<double>(kMaxDims, -0.1));
  TopKQuery q{&s, 3};
  Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  const auto result = engine.Run({.initiator = overlay.RandomPeer(&rng), .query = q, .ripple = RippleParam::Slow()});
  const TupleVec want = SelectTopK(
      ts, [&](const Point& p) { return s.Score(p); }, 3);
  ASSERT_EQ(result.answer.size(), 3u);
  EXPECT_EQ(result.answer[0].id, want[0].id);
}

TEST(EdgeCaseTest, SingleTupleAndSinglePeer) {
  MidasOptions opt;
  opt.dims = 2;
  opt.seed = 31;
  MidasOverlay overlay(opt);
  overlay.InsertTuple(Tuple{1, Point{0.5, 0.5}});
  LinearScorer s({-1.0, -1.0});
  TopKQuery q{&s, 10};
  Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  const auto result = engine.Run({.initiator = overlay.LivePeers()[0], .query = q});
  ASSERT_EQ(result.answer.size(), 1u);
  EXPECT_EQ(result.stats.latency_hops, 0u);
  EXPECT_EQ(result.stats.peers_visited, 1u);
}

// --- Dataset boundary shapes ---------------------------------------------------

TEST(EdgeCaseTest, GeneratorsAtMinimumSizes) {
  Rng rng(37);
  for (const char* name : {"uniform", "synth", "correlated",
                           "anticorrelated", "nba", "mirflickr"}) {
    Rng local = rng.Fork();
    const TupleVec one = data::MakeByName(name, 1, 2, &local);
    ASSERT_EQ(one.size(), 1u) << name;
  }
}

TEST(EdgeCaseTest, ZeroKTopKReturnsEmpty) {
  MidasOptions opt;
  opt.dims = 2;
  opt.seed = 41;
  MidasOverlay overlay(opt);
  Rng rng(43);
  for (uint64_t i = 0; i < 100; ++i) {
    overlay.InsertTuple(
        Tuple{i, Point{rng.UniformDouble(), rng.UniformDouble()}});
  }
  while (overlay.NumPeers() < 8) overlay.Join();
  LinearScorer s({-1.0, -1.0});
  TopKQuery q{&s, 0};
  Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  const auto result = engine.Run({.initiator = overlay.RandomPeer(&rng), .query = q});
  EXPECT_TRUE(result.answer.empty());
}

}  // namespace
}  // namespace ripple
