// Fault-injection tests for the async execution layer: deterministic
// replay under a seed, exactness whenever faults do not destroy
// information (jitter, duplication), flagged-partial degradation when they
// do (loss, crashes, deadlines), and the net.* metrics recording.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "data/datasets.h"
#include "obs/metrics.h"
#include "overlay/midas/midas.h"
#include "queries/skyline.h"
#include "queries/topk.h"
#include "ripple/engine.h"
#include "sim/async_engine.h"
#include "store/local_algos.h"

namespace ripple {
namespace {

struct Net {
  MidasOverlay overlay;
  TupleVec all;
};

Net MakeNet(size_t peers, size_t tuples, int dims, uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.split_rule = MidasSplitRule::kDataMedian;
  Net net{MidasOverlay(opt), {}};
  Rng rng(seed ^ 0xfa17);
  net.all = data::MakeUniform(tuples, dims, &rng);
  for (const Tuple& t : net.all) net.overlay.InsertTuple(t);
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  return net;
}

std::vector<uint64_t> Ids(const TupleVec& v) {
  std::vector<uint64_t> ids;
  ids.reserve(v.size());
  for (const Tuple& t : v) ids.push_back(t.id);
  return ids;
}

// --- Determinism -------------------------------------------------------------

TEST(FaultTest, SameSeedReplaysTheExactSchedule) {
  Net net = MakeNet(64, 800, 3, 701);
  LinearScorer scorer({-0.5, -0.3, -0.2});
  Rng rng(3);
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  const QueryRequest<TopKPolicy> request{
      .initiator = net.overlay.RandomPeer(&rng),
      .query = TopKQuery{&scorer, 10},
      .ripple = RippleParam::Hops(2),
      .fault = {.loss_rate = 0.05,
                .dup_rate = 0.05,
                .delay_jitter = 0.3,
                .seed = 41}};
  const auto a = engine.Run(request);
  const auto b = engine.Run(request);
  EXPECT_EQ(Ids(a.answer), Ids(b.answer));
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.coverage.retries, b.coverage.retries);
  EXPECT_EQ(a.coverage.messages_lost, b.coverage.messages_lost);
  EXPECT_EQ(a.coverage.messages_duplicated, b.coverage.messages_duplicated);
  EXPECT_EQ(a.coverage.unreachable_peers, b.coverage.unreachable_peers);
}

TEST(FaultTest, DifferentSeedsDrawDifferentSchedules) {
  Net net = MakeNet(64, 800, 3, 703);
  LinearScorer scorer({-0.4, -0.4, -0.2});
  Rng rng(5);
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  QueryRequest<TopKPolicy> request{
      .initiator = net.overlay.RandomPeer(&rng),
      .query = TopKQuery{&scorer, 10},
      .fault = {.loss_rate = 0.1, .seed = 1}};
  std::set<uint64_t> losses;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    request.fault.seed = seed;
    losses.insert(engine.Run(request).coverage.messages_lost);
  }
  // Six seeds over a ~100-message query: the loss draws cannot all agree.
  EXPECT_GT(losses.size(), 1u);
}

// --- Faults that preserve exactness ------------------------------------------

TEST(FaultTest, JitterAloneNeverChangesTheAnswer) {
  Net net = MakeNet(64, 800, 3, 707);
  LinearScorer scorer({-0.3, -0.3, -0.4});
  TopKQuery q{&scorer, 10};
  Rng rng(7);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  Engine<MidasOverlay, TopKPolicy> sync_engine(&net.overlay, TopKPolicy{});
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  const auto want =
      sync_engine.Run({.initiator = initiator, .query = q,
                       .ripple = RippleParam::Slow()});
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const auto got = engine.Run({.initiator = initiator,
                                 .query = q,
                                 .ripple = RippleParam::Slow(),
                                 .fault = {.delay_jitter = 0.8,
                                           .seed = seed}});
    EXPECT_TRUE(got.complete);
    EXPECT_EQ(Ids(got.answer), Ids(want.answer)) << "seed=" << seed;
    EXPECT_EQ(got.coverage.messages_lost, 0u);
  }
}

TEST(FaultTest, DuplicationIsSuppressedNotDoubleCounted) {
  Net net = MakeNet(64, 800, 3, 709);
  LinearScorer scorer({-0.5, -0.2, -0.3});
  TopKQuery q{&scorer, 10};
  Rng rng(9);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  Engine<MidasOverlay, TopKPolicy> sync_engine(&net.overlay, TopKPolicy{});
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  for (const RippleParam r :
       {RippleParam::Fast(), RippleParam::Hops(2), RippleParam::Slow()}) {
    const auto want =
        sync_engine.Run({.initiator = initiator, .query = q, .ripple = r});
    // Every single message duplicated: the dedup windows and the answer
    // settlement flags must absorb all of it.
    const auto got = engine.Run({.initiator = initiator,
                                 .query = q,
                                 .ripple = r,
                                 .fault = {.dup_rate = 1.0, .seed = 5}});
    EXPECT_TRUE(got.complete) << r;
    EXPECT_EQ(Ids(got.answer), Ids(want.answer)) << r;
    EXPECT_GT(got.coverage.messages_duplicated, 0u) << r;
    EXPECT_GT(got.coverage.duplicates_suppressed, 0u) << r;
  }
}

TEST(FaultTest, SkylineSurvivesDuplicationExactly) {
  Net net = MakeNet(48, 600, 3, 711);
  Rng rng(11);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  Engine<MidasOverlay, SkylinePolicy> sync_engine(&net.overlay,
                                                  SkylinePolicy{});
  AsyncEngine<MidasOverlay, SkylinePolicy> engine(&net.overlay,
                                                  SkylinePolicy{});
  auto want = sync_engine.Run({.initiator = initiator,
                               .query = SkylineQuery{}});
  auto got = engine.Run({.initiator = initiator,
                         .query = SkylineQuery{},
                         .fault = {.dup_rate = 0.5, .seed = 13}});
  std::sort(want.answer.begin(), want.answer.end(), TupleIdLess());
  std::sort(got.answer.begin(), got.answer.end(), TupleIdLess());
  EXPECT_TRUE(got.complete);
  EXPECT_EQ(Ids(got.answer), Ids(want.answer));
}

// --- Faults that degrade: loss, crashes, deadlines ---------------------------

TEST(FaultTest, LossGivesExactOrFlaggedPartialNeverSilentlyWrong) {
  Net net = MakeNet(64, 800, 3, 713);
  LinearScorer scorer({-0.4, -0.3, -0.3});
  TopKQuery q{&scorer, 10};
  Rng rng(13);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  Engine<MidasOverlay, TopKPolicy> sync_engine(&net.overlay, TopKPolicy{});
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  const auto want = sync_engine.Run({.initiator = initiator, .query = q});
  int complete_runs = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const auto got = engine.Run({.initiator = initiator,
                                 .query = q,
                                 .fault = {.loss_rate = 0.1, .seed = seed}});
    EXPECT_EQ(got.complete, got.coverage.complete()) << "seed=" << seed;
    if (got.complete) {
      ++complete_runs;
      EXPECT_EQ(Ids(got.answer), Ids(want.answer)) << "seed=" << seed;
    } else {
      // Degraded runs must say what they gave up on.
      EXPECT_TRUE(got.coverage.links_unresolved > 0 ||
                  got.coverage.answers_lost > 0)
          << "seed=" << seed;
    }
    // Retransmission has to have fired for 10% loss on this many messages
    // ... unless the network happened to only drop answers' duplicates.
    EXPECT_GT(got.coverage.messages_lost + got.coverage.retries, 0u);
  }
  // The retry layer should rescue most 10%-loss runs outright.
  EXPECT_GT(complete_runs, 0);
}

TEST(FaultTest, ExplicitCrashOfEveryChildFlagsThePartialAnswer) {
  Net net = MakeNet(16, 300, 2, 717);
  LinearScorer scorer({-0.6, -0.4});
  TopKQuery q{&scorer, 5};
  Rng rng(17);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  net::FaultOptions fault;
  // Everyone but the initiator crashes almost immediately: every forwarded
  // link must exhaust its retries and be folded out.
  for (PeerId p = 0; p < net.overlay.NumPeers(); ++p) {
    if (p != initiator) fault.crashes.push_back({.peer = p, .at = 0.5});
  }
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  const auto got = engine.Run({.initiator = initiator,
                               .query = q,
                               .retry = {.timeout = 4.0, .max_retries = 2},
                               .fault = fault});
  EXPECT_FALSE(got.complete);
  EXPECT_GT(got.coverage.links_unresolved, 0u);
  EXPECT_FALSE(got.coverage.unreachable_peers.empty());
  EXPECT_FALSE(got.coverage.crashed_peers.empty());
  EXPECT_GT(got.coverage.timeouts, 0u);
  // What survives is the initiator's own contribution: a sound local
  // answer over its store, still ranked correctly.
  const auto& peer = net.overlay.GetPeer(initiator);
  EXPECT_LE(got.answer.size(), peer.store.size());
}

TEST(FaultTest, RandomCrashesTerminateWithinTheRetryBudget) {
  Net net = MakeNet(64, 800, 3, 719);
  LinearScorer scorer({-0.2, -0.4, -0.4});
  TopKQuery q{&scorer, 10};
  Rng rng(19);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  Engine<MidasOverlay, TopKPolicy> sync_engine(&net.overlay, TopKPolicy{});
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  const auto want = sync_engine.Run({.initiator = initiator, .query = q,
                                     .ripple = RippleParam::Hops(1)});
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const auto got = engine.Run({.initiator = initiator,
                                 .query = q,
                                 .ripple = RippleParam::Hops(1),
                                 .retry = {.timeout = 8.0, .max_retries = 2},
                                 .fault = {.crash_rate = 0.05,
                                           .crash_window = 16.0,
                                           .seed = seed}});
    EXPECT_EQ(got.complete, got.coverage.complete()) << "seed=" << seed;
    if (got.complete) {
      EXPECT_EQ(Ids(got.answer), Ids(want.answer)) << "seed=" << seed;
    } else {
      EXPECT_FALSE(got.coverage.crashed_peers.empty()) << "seed=" << seed;
    }
  }
}

TEST(FaultTest, DeadlineCutsTheRunAndFlagsIt) {
  Net net = MakeNet(96, 1000, 3, 723);
  LinearScorer scorer({-0.3, -0.3, -0.4});
  // k = 300 over ~10 tuples/peer: no pruning until dozens of peers have
  // been folded in, so the sequential slow walk needs far more than 10
  // units of simulated time and the deadline must cut it.
  TopKQuery q{&scorer, 300};
  Rng rng(23);
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  const auto got = engine.Run({.initiator = net.overlay.RandomPeer(&rng),
                               .query = q,
                               .ripple = RippleParam::Slow(),
                               .deadline = 10.0,
                               .fault = {.delay_jitter = 0.01, .seed = 29}});
  EXPECT_FALSE(got.complete);
  EXPECT_LE(got.completion_time, 10.0 + 1e-9);
}

// --- Metrics recording -------------------------------------------------------

TEST(FaultTest, CoverageLandsInTheGlobalRegistry) {
  Net net = MakeNet(48, 600, 3, 727);
  LinearScorer scorer({-0.5, -0.25, -0.25});
  TopKQuery q{&scorer, 8};
  Rng rng(29);
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  obs::Registry& reg = obs::Registry::Global();
  const uint64_t lost_before = reg.GetCounter("net.loss.count").value();
  const uint64_t runs_before =
      reg.GetCounter("net.query.complete").value() +
      reg.GetCounter("net.query.partial").value();
  obs::Registry::EnableGlobal(true);
  (void)engine.Run({.initiator = net.overlay.RandomPeer(&rng),
                    .query = q,
                    .fault = {.loss_rate = 0.2, .seed = 31}});
  obs::Registry::EnableGlobal(false);
  EXPECT_GT(reg.GetCounter("net.loss.count").value(), lost_before);
  EXPECT_EQ(reg.GetCounter("net.query.complete").value() +
                reg.GetCounter("net.query.partial").value(),
            runs_before + 1);
}

TEST(FaultTest, DisabledRegistryStaysUntouched) {
  Net net = MakeNet(32, 400, 2, 731);
  LinearScorer scorer({-0.5, -0.5});
  TopKQuery q{&scorer, 5};
  Rng rng(31);
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  obs::Registry& reg = obs::Registry::Global();
  const uint64_t lost_before = reg.GetCounter("net.loss.count").value();
  ASSERT_FALSE(obs::Registry::GlobalEnabled());
  (void)engine.Run({.initiator = net.overlay.RandomPeer(&rng),
                    .query = q,
                    .fault = {.loss_rate = 0.2, .seed = 37}});
  EXPECT_EQ(reg.GetCounter("net.loss.count").value(), lost_before);
}

}  // namespace
}  // namespace ripple
