#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/midas/midas.h"
#include "queries/diversify.h"
#include "queries/diversify_driver.h"
#include "ripple/engine.h"

namespace ripple {
namespace {

struct Net {
  MidasOverlay overlay;
  TupleVec all;
};

Net MakeNet(size_t peers, const TupleVec& tuples, int dims, uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  Net net{MidasOverlay(opt), tuples};
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  for (const Tuple& t : tuples) net.overlay.InsertTuple(t);
  return net;
}

DiversifyObjective MakeObjective(const Point& q, double lambda) {
  DiversifyObjective obj;
  obj.query = q;
  obj.lambda = lambda;
  obj.norm = Norm::kL1;
  return obj;
}

/// Centralized oracle for the single tuple diversification query.
const Tuple* OracleBest(const TupleVec& all, const DivQuery& q,
                        double* best_phi) {
  const Tuple* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Tuple& t : all) {
    if (q.IsExcluded(t.id)) continue;
    const double c = q.objective.Phi(t.key, q.exclude);
    if (best == nullptr || c < best_cost ||
        (c == best_cost && t.id < best->id)) {
      best_cost = c;
      best = &t;
    }
  }
  if (best_phi != nullptr) *best_phi = best_cost;
  return best;
}

// --- Phi semantics ----------------------------------------------------------

TEST(PhiTest, PhiIsObjectiveDelta) {
  // Eq. 3 must equal f(O ∪ {t}) - f(O) for every |O|.
  Rng rng(401);
  const TupleVec all = data::MakeUniform(50, 3, &rng);
  const DiversifyObjective obj =
      MakeObjective(Point{0.5, 0.5, 0.5}, 0.4);
  for (size_t osize : {0u, 1u, 2u, 5u, 9u}) {
    TupleVec o(all.begin(), all.begin() + osize);
    for (size_t i = osize; i < osize + 20; ++i) {
      const Tuple& t = all[i];
      TupleVec extended = o;
      extended.push_back(t);
      EXPECT_NEAR(obj.Phi(t.key, o), obj.Value(extended) - obj.Value(o),
                  1e-12)
          << "|O|=" << osize << " t=" << t.ToString();
    }
  }
}

TEST(PhiTest, PhiNonNegativeForLargeSets) {
  // For |O| >= 2 appending can only worsen (raise) the objective.
  Rng rng(403);
  const TupleVec all = data::MakeUniform(100, 2, &rng);
  const DiversifyObjective obj = MakeObjective(Point{0.2, 0.8}, 0.7);
  TupleVec o(all.begin(), all.begin() + 4);
  for (size_t i = 4; i < all.size(); ++i) {
    EXPECT_GE(obj.Phi(all[i].key, o), -1e-12);
  }
}

TEST(PhiTest, LowerBoundIsSound) {
  Rng rng(405);
  const TupleVec all = data::MakeUniform(30, 3, &rng);
  const DiversifyObjective obj = MakeObjective(Point{0.3, 0.3, 0.3}, 0.5);
  for (size_t osize : {0u, 1u, 3u, 6u}) {
    TupleVec o(all.begin(), all.begin() + osize);
    for (int trial = 0; trial < 50; ++trial) {
      Point lo{rng.UniformDouble(0, 0.7), rng.UniformDouble(0, 0.7),
               rng.UniformDouble(0, 0.7)};
      Point hi{lo[0] + rng.UniformDouble(0, 0.3),
               lo[1] + rng.UniformDouble(0, 0.3),
               lo[2] + rng.UniformDouble(0, 0.3)};
      const Rect r(lo, hi);
      const double bound = obj.PhiLowerBound(r, o);
      for (int s = 0; s < 20; ++s) {
        Point p{rng.UniformDouble(lo[0], hi[0]),
                rng.UniformDouble(lo[1], hi[1]),
                rng.UniformDouble(lo[2], hi[2])};
        EXPECT_LE(bound, obj.Phi(p, o) + 1e-12);
      }
    }
  }
}

// --- Single tuple query over the network ------------------------------------

TEST(DivEngineTest, SingleTupleMatchesOracle) {
  Rng rng(407);
  const TupleVec tuples = data::MakeMirflickrLike(1000, 5, &rng);
  Net net = MakeNet(64, tuples, 5, 409);
  Engine<MidasOverlay, DivPolicy> engine(&net.overlay, DivPolicy{});
  Rng pick(7);
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Hops(2), RippleParam::Slow()}) {
    for (size_t osize : {0u, 1u, 5u}) {
      const DivQuery q = MakeDivQuery(
          MakeObjective(tuples[3].key, 0.5),
          TupleVec(tuples.begin(), tuples.begin() + osize));
      double want_phi = 0.0;
      const Tuple* want = OracleBest(tuples, q, &want_phi);
      ASSERT_NE(want, nullptr);
      const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&pick), .query = q, .ripple = r});
      ASSERT_EQ(result.answer.size(), 1u) << "r=" << r << " |O|=" << osize;
      // Ties on phi are legitimate (the phi = 0 plateau), so compare the
      // attained phi, not the tuple identity.
      EXPECT_DOUBLE_EQ(q.objective.Phi(result.answer[0].key, q.exclude),
                       want_phi)
          << "r=" << r << " |O|=" << osize;
      EXPECT_FALSE(q.IsExcluded(result.answer[0].id));
    }
  }
}

TEST(DivEngineTest, InitialTauPrunesAndFiltersResults) {
  Rng rng(411);
  const TupleVec tuples = data::MakeUniform(500, 2, &rng);
  Net net = MakeNet(32, tuples, 2, 413);
  Engine<MidasOverlay, DivPolicy> engine(&net.overlay, DivPolicy{});
  const DivQuery q =
      MakeDivQuery(MakeObjective(Point{0.5, 0.5}, 1.0), {});  // pure relevance
  double best_phi = 0.0;
  OracleBest(tuples, q, &best_phi);
  Rng pick(11);
  // tau at the best achievable phi: Algorithm 18 may still emit the
  // threshold-attaining tuple (its == check), but never anything better,
  // and the service layer filters non-improvements to nullopt.
  const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&pick), .query = q, .ripple = RippleParam::Slow(), .initial_state = DivState{best_phi}});
  if (!result.answer.empty()) {
    EXPECT_GE(q.objective.Phi(result.answer[0].key, q.exclude), best_phi);
  }
  RippleDivService<MidasOverlay> service(&net.overlay, {.initiator = net.overlay.RandomPeer(&pick), .ripple = RippleParam::Slow()});
  QueryStats stats;
  EXPECT_FALSE(service.FindBest(q, best_phi, &stats).has_value());
  // tau slightly above: the best tuple is found, with few peers visited.
  const auto result2 = engine.Run({.initiator = net.overlay.RandomPeer(&pick), .query = q, .ripple = RippleParam::Slow(), .initial_state = DivState{best_phi + 1e-9}});
  ASSERT_EQ(result2.answer.size(), 1u);
  EXPECT_LT(result2.stats.peers_visited, net.overlay.NumPeers());
}

// --- Greedy driver -----------------------------------------------------------

TEST(DivDriverTest, ForcedServiceReproducesReferenceTrajectory) {
  // The paper's fairness device: the measured service accrues its costs
  // while the greedy continues with the reference answers, so distributed
  // and centralized drivers produce identical result sets.
  Rng rng(417);
  const TupleVec tuples = data::MakeMirflickrLike(600, 5, &rng);
  Net net = MakeNet(48, tuples, 5, 419);
  const DiversifyObjective obj = MakeObjective(tuples[0].key, 0.5);
  TupleVec initial(tuples.begin() + 100, tuples.begin() + 110);

  CentralizedDivService oracle(&tuples);
  DiversifyOptions options;
  options.k = 10;
  const DiversifyResult want = Diversify(&oracle, obj, initial, options);

  Rng pick(13);
  RippleDivService<MidasOverlay> measured(&net.overlay, {.initiator = net.overlay.RandomPeer(&pick), .ripple = RippleParam::Fast()});
  CentralizedDivService reference(&tuples);
  ForcedResultService forced(&measured, &reference);
  const DiversifyResult got = Diversify(&forced, obj, initial, options);

  ASSERT_EQ(got.set.size(), want.set.size());
  for (size_t i = 0; i < got.set.size(); ++i) {
    EXPECT_EQ(got.set[i].id, want.set[i].id);
  }
  EXPECT_DOUBLE_EQ(got.objective, want.objective);
  EXPECT_EQ(got.improve_rounds, want.improve_rounds);
  // And the measured service's cost was actually accounted.
  EXPECT_GT(got.stats.peers_visited, 0u);
  EXPECT_GT(got.stats.messages, 0u);
}

TEST(DivDriverTest, UnforcedRippleDriverImprovesObjective) {
  Rng rng(418);
  const TupleVec tuples = data::MakeMirflickrLike(500, 5, &rng);
  Net net = MakeNet(32, tuples, 5, 420);
  const DiversifyObjective obj = MakeObjective(tuples[2].key, 0.5);
  TupleVec initial(tuples.begin() + 200, tuples.begin() + 210);
  Rng pick(15);
  RippleDivService<MidasOverlay> service(&net.overlay, {.initiator = net.overlay.RandomPeer(&pick), .ripple = RippleParam::Fast()});
  DiversifyOptions options;
  options.k = 10;
  const DiversifyResult result = Diversify(&service, obj, initial, options);
  EXPECT_LE(result.objective, obj.Value(initial) + 1e-12);
  EXPECT_EQ(result.set.size(), 10u);
}

TEST(DivDriverTest, ObjectiveNeverWorsens) {
  Rng rng(421);
  const TupleVec tuples = data::MakeUniform(400, 3, &rng);
  const DiversifyObjective obj = MakeObjective(Point{0.1, 0.2, 0.3}, 0.3);
  CentralizedDivService oracle(&tuples);
  TupleVec o(tuples.begin(), tuples.begin() + 8);
  double previous = obj.Value(o);
  QueryStats stats;
  for (int pass = 0; pass < 6; ++pass) {
    const bool improved = DivImprove(&oracle, obj, &o, &stats);
    const double now = obj.Value(o);
    EXPECT_LE(now, previous + 1e-12);
    if (!improved) break;
    EXPECT_LT(now, previous);
    previous = now;
  }
  EXPECT_EQ(o.size(), 8u);
}

TEST(DivDriverTest, LambdaExtremesTerminate) {
  Rng rng(423);
  const TupleVec tuples = data::MakeMirflickrLike(300, 5, &rng);
  Net net = MakeNet(32, tuples, 5, 427);
  Rng pick(17);
  for (double lambda : {0.0, 1.0}) {
    const DiversifyObjective obj = MakeObjective(tuples[5].key, lambda);
    RippleDivService<MidasOverlay> service(&net.overlay, {.initiator = net.overlay.RandomPeer(&pick), .ripple = RippleParam::Fast()});
    DiversifyOptions options;
    options.k = 5;
    TupleVec initial(tuples.begin() + 50, tuples.begin() + 55);
    const DiversifyResult result =
        Diversify(&service, obj, initial, options);
    EXPECT_EQ(result.set.size(), 5u);
    EXPECT_LE(result.objective, obj.Value(initial) + 1e-12);
  }
}

}  // namespace
}  // namespace ripple
