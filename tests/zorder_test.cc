#include "geom/zorder.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ripple {
namespace {

TEST(ZOrderTest, KeyWidthDefaults) {
  ZOrder z2(2, Rect::Unit(2));
  EXPECT_EQ(z2.bits_per_dim(), 31);
  EXPECT_EQ(z2.total_bits(), 62);
  ZOrder z5(5, Rect::Unit(5));
  EXPECT_EQ(z5.bits_per_dim(), 12);
  EXPECT_EQ(z5.total_bits(), 60);
}

TEST(ZOrderTest, EncodeCorners2D) {
  ZOrder z(2, Rect::Unit(2), 2);  // 4x4 grid, 16 keys
  EXPECT_EQ(z.Encode(Point{0.0, 0.0}), 0u);
  // The point just inside the top corner maps to the last cell.
  EXPECT_EQ(z.Encode(Point{0.99, 0.99}), 15u);
  // Clamping: the closed upper boundary maps into the last cell too.
  EXPECT_EQ(z.Encode(Point{1.0, 1.0}), 15u);
}

TEST(ZOrderTest, EncodeMatchesManualInterleave) {
  ZOrder z(2, Rect::Unit(2), 2);
  // grid x=2 (binary 10), y=1 (binary 01) -> interleaved x1 y1 x0 y0 = 1001.
  EXPECT_EQ(z.Encode(Point{0.6, 0.3}), 0b1001u);
}

TEST(ZOrderTest, EncodeDecodeCellRoundTrip) {
  Rng rng(3);
  ZOrder z(3, Rect::Unit(3), 5);
  for (int i = 0; i < 500; ++i) {
    Point p{rng.UniformDouble(), rng.UniformDouble(), rng.UniformDouble()};
    const uint64_t key = z.Encode(p);
    const Rect cell = z.DecodeCell(key);
    EXPECT_TRUE(cell.Contains(p))
        << "key=" << key << " p=" << p.ToString() << " cell="
        << cell.ToString();
    // Encoding the cell center returns the same key.
    EXPECT_EQ(z.Encode(cell.Center()), key);
  }
}

TEST(ZOrderTest, PrefixCellNesting) {
  ZOrder z(2, Rect::Unit(2), 4);
  const uint64_t key = z.Encode(Point{0.3, 0.7});
  Rect prev = z.PrefixCell(0, 0);
  EXPECT_EQ(prev, Rect::Unit(2));
  for (int bits = 1; bits <= z.total_bits(); ++bits) {
    Rect cell = z.PrefixCell(key << (64 - z.total_bits()), bits);
    EXPECT_TRUE(prev.Covers(cell));
    EXPECT_NEAR(cell.Volume(), prev.Volume() / 2.0, 1e-12);
    prev = cell;
  }
}

TEST(ZOrderTest, IntervalDecompositionCoversExactlyTheInterval) {
  ZOrder z(2, Rect::Unit(2), 3);  // 64 keys
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t lo = rng.UniformU64(64);
    uint64_t hi = rng.UniformU64(64);
    if (lo > hi) std::swap(lo, hi);
    const std::vector<Rect> rects = z.DecomposeInterval(lo, hi);
    // Every key's cell center lies in exactly the right number of rects.
    for (uint64_t key = 0; key < 64; ++key) {
      const Point c = z.DecodeCenter(key);
      int covered = 0;
      for (const Rect& r : rects) {
        if (r.Contains(c)) ++covered;
      }
      const bool in_interval = key >= lo && key <= hi;
      EXPECT_EQ(covered, in_interval ? 1 : 0)
          << "key=" << key << " lo=" << lo << " hi=" << hi;
    }
  }
}

TEST(ZOrderTest, IntervalDecompositionIsSmall) {
  ZOrder z(2, Rect::Unit(2));  // 62-bit keys
  const uint64_t n = z.key_space_size();
  const auto rects = z.DecomposeInterval(1, n - 2);
  EXPECT_LE(rects.size(), static_cast<size_t>(2 * z.total_bits()));
  EXPECT_GE(rects.size(), 2u);
}

TEST(ZOrderTest, EmptyAndFullIntervals) {
  ZOrder z(2, Rect::Unit(2), 3);
  EXPECT_TRUE(z.DecomposeInterval(5, 4).empty());
  const auto all = z.DecomposeInterval(0, z.key_space_size() - 1);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], Rect::Unit(2));
}

TEST(ZOrderTest, NonUnitDomain) {
  Rect domain(Point{-1.0, 2.0}, Point{1.0, 6.0});
  ZOrder z(2, domain, 3);
  EXPECT_EQ(z.Encode(Point{-1.0, 2.0}), 0u);
  const Rect cell = z.DecodeCell(z.Encode(Point{0.5, 5.0}));
  EXPECT_TRUE(cell.Contains(Point{0.5, 5.0}));
  EXPECT_TRUE(domain.Covers(cell));
}

TEST(ZOrderTest, LocalityOfConsecutiveKeys) {
  // Consecutive z-keys address cells that share a face at least half the
  // time in 2-d; here we just sanity check keys are distinct cells tiling
  // the domain.
  ZOrder z(2, Rect::Unit(2), 2);
  double volume = 0.0;
  for (uint64_t k = 0; k < z.key_space_size(); ++k) {
    volume += z.DecodeCell(k).Volume();
  }
  EXPECT_NEAR(volume, 1.0, 1e-12);
}

}  // namespace
}  // namespace ripple
