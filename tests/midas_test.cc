#include "overlay/midas/midas.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "overlay/midas/patterns.h"

namespace ripple {
namespace {

MidasOverlay GrowOverlay(size_t peers, int dims, uint64_t seed,
                         bool patterns = false) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.border_pattern_links = patterns;
  MidasOverlay overlay(opt);
  while (overlay.NumPeers() < peers) overlay.Join();
  return overlay;
}

TEST(MidasTest, BootstrapSinglePeer) {
  MidasOverlay overlay(MidasOptions{.dims = 2, .seed = 1});
  EXPECT_EQ(overlay.NumPeers(), 1u);
  EXPECT_EQ(overlay.MaxDepth(), 0);
  EXPECT_TRUE(overlay.Validate().ok());
  const auto live = overlay.LivePeers();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(overlay.GetPeer(live[0]).zone, Rect::Unit(2));
  EXPECT_TRUE(overlay.GetPeer(live[0]).links.empty());
}

TEST(MidasTest, FirstJoinSplitsDomain) {
  MidasOverlay overlay(MidasOptions{.dims = 2, .seed = 1});
  const PeerId n = overlay.Join();
  EXPECT_EQ(overlay.NumPeers(), 2u);
  const auto& fresh = overlay.GetPeer(n);
  EXPECT_EQ(fresh.depth(), 1);
  ASSERT_EQ(fresh.links.size(), 1u);
  // The two peers link to each other, with each other's zone as region.
  const PeerId other = fresh.links[0].target;
  const auto& old = overlay.GetPeer(other);
  EXPECT_EQ(fresh.links[0].region, old.zone);
  ASSERT_EQ(old.links.size(), 1u);
  EXPECT_EQ(old.links[0].target, n);
  EXPECT_EQ(old.links[0].region, fresh.zone);
  EXPECT_TRUE(overlay.Validate().ok());
}

TEST(MidasTest, GrowthInvariants) {
  for (int dims : {2, 5}) {
    MidasOverlay overlay = GrowOverlay(256, dims, 42);
    EXPECT_EQ(overlay.NumPeers(), 256u);
    ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
    // Expected depth is O(log n): generous sanity bounds.
    EXPECT_GE(overlay.MaxDepth(), 8);   // at least log2(256)
    EXPECT_LE(overlay.MaxDepth(), 40);
  }
}

TEST(MidasTest, ZonesPartitionDomainPoints) {
  MidasOverlay overlay = GrowOverlay(64, 3, 7);
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    Point p{rng.UniformDouble(), rng.UniformDouble(), rng.UniformDouble()};
    int owners = 0;
    for (PeerId id : overlay.LivePeers()) {
      if (overlay.GetPeer(id).zone.ContainsHalfOpen(p, overlay.domain())) {
        ++owners;
      }
    }
    EXPECT_EQ(owners, 1) << p.ToString();
  }
}

TEST(MidasTest, LinkRegionsPartitionDomain) {
  // A peer's zone plus its link regions tile the whole domain — the
  // property RIPPLE's restriction-area correctness rests on.
  MidasOverlay overlay = GrowOverlay(128, 2, 11);
  Rng rng(5);
  for (PeerId id : overlay.LivePeers()) {
    const auto& peer = overlay.GetPeer(id);
    double volume = peer.zone.Volume();
    for (const auto& link : peer.links) volume += link.region.Volume();
    EXPECT_NEAR(volume, 1.0, 1e-9);
    // Regions must be pairwise disjoint (sample a few points).
    for (int i = 0; i < 20; ++i) {
      Point p{rng.UniformDouble(), rng.UniformDouble()};
      int hits = peer.zone.ContainsHalfOpen(p, overlay.domain()) ? 1 : 0;
      for (const auto& link : peer.links) {
        if (link.region.ContainsHalfOpen(p, overlay.domain())) ++hits;
      }
      EXPECT_EQ(hits, 1);
    }
  }
}

TEST(MidasTest, TupleRoutingAndOwnership) {
  MidasOverlay overlay = GrowOverlay(64, 2, 13);
  Rng rng(3);
  for (uint64_t i = 0; i < 300; ++i) {
    Point p{rng.UniformDouble(), rng.UniformDouble()};
    overlay.InsertTuple(Tuple{i, p});
  }
  EXPECT_EQ(overlay.TotalTuples(), 300u);
  EXPECT_TRUE(overlay.Validate().ok());
}

TEST(MidasTest, PeerLevelRoutingReachesResponsiblePeer) {
  MidasOverlay overlay = GrowOverlay(200, 3, 17);
  Rng rng(23);
  const auto live = overlay.LivePeers();
  for (int trial = 0; trial < 100; ++trial) {
    Point p{rng.UniformDouble(), rng.UniformDouble(), rng.UniformDouble()};
    const PeerId from = live[rng.UniformU64(live.size())];
    uint64_t hops = 0;
    const PeerId got = overlay.RouteFrom(from, p, &hops);
    EXPECT_EQ(got, overlay.ResponsiblePeer(p));
    EXPECT_LE(hops, static_cast<uint64_t>(overlay.MaxDepth()));
  }
}

TEST(MidasTest, SplitsMoveTuplesToNewOwner) {
  MidasOverlay overlay(MidasOptions{.dims = 2, .seed = 5});
  Rng rng(29);
  for (uint64_t i = 0; i < 200; ++i) {
    overlay.InsertTuple(
        Tuple{i, Point{rng.UniformDouble(), rng.UniformDouble()}});
  }
  for (int i = 0; i < 63; ++i) overlay.Join();
  EXPECT_EQ(overlay.TotalTuples(), 200u);
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
}

TEST(MidasTest, LeaveMergesZonesAndKeepsData) {
  MidasOverlay overlay = GrowOverlay(64, 2, 19);
  Rng rng(31);
  for (uint64_t i = 0; i < 500; ++i) {
    overlay.InsertTuple(
        Tuple{i, Point{rng.UniformDouble(), rng.UniformDouble()}});
  }
  Rng churn(37);
  while (overlay.NumPeers() > 8) {
    ASSERT_TRUE(overlay.LeaveRandom(&churn).ok());
    ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
  }
  EXPECT_EQ(overlay.TotalTuples(), 500u);
}

TEST(MidasTest, LeaveLastPeerFails) {
  MidasOverlay overlay(MidasOptions{.dims = 2, .seed = 1});
  const auto live = overlay.LivePeers();
  EXPECT_EQ(overlay.Leave(live[0]).code(), StatusCode::kFailedPrecondition);
}

TEST(MidasTest, LeaveUnknownPeerFails) {
  MidasOverlay overlay = GrowOverlay(4, 2, 3);
  EXPECT_EQ(overlay.Leave(9999).code(), StatusCode::kNotFound);
}

TEST(MidasTest, ChurnCycleIncreaseDecreaseIncrease) {
  // The paper's dynamic topology: grow, shrink, grow again; invariants must
  // hold throughout.
  MidasOverlay overlay(MidasOptions{.dims = 3, .seed = 21});
  Rng rng(41);
  for (uint64_t i = 0; i < 300; ++i) {
    overlay.InsertTuple(Tuple{i, Point{rng.UniformDouble(),
                                       rng.UniformDouble(),
                                       rng.UniformDouble()}});
  }
  while (overlay.NumPeers() < 128) overlay.Join();
  ASSERT_TRUE(overlay.Validate().ok());
  Rng churn(43);
  while (overlay.NumPeers() > 16) ASSERT_TRUE(overlay.LeaveRandom(&churn).ok());
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
  while (overlay.NumPeers() < 64) overlay.Join();
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
  EXPECT_EQ(overlay.TotalTuples(), 300u);
}

TEST(MidasTest, SubtreeRectMatchesZones) {
  MidasOverlay overlay = GrowOverlay(32, 2, 23);
  for (PeerId id : overlay.LivePeers()) {
    const auto& peer = overlay.GetPeer(id);
    EXPECT_EQ(overlay.SubtreeRect(peer.id), peer.zone);
    // Ancestor rects cover the zone.
    for (int depth = 0; depth < peer.depth(); ++depth) {
      EXPECT_TRUE(
          overlay.SubtreeRect(peer.id.Prefix(depth)).Covers(peer.zone));
    }
  }
}

TEST(MidasTest, IntersectAreaRejectsFaceContact) {
  Rect a(Point{0.0, 0.0}, Point{0.5, 1.0});
  Rect b(Point{0.5, 0.0}, Point{1.0, 1.0});
  Rect out;
  EXPECT_FALSE(MidasOverlay::IntersectArea(a, b, &out));
  Rect c(Point{0.25, 0.0}, Point{0.75, 1.0});
  ASSERT_TRUE(MidasOverlay::IntersectArea(a, c, &out));
  EXPECT_EQ(out, Rect(Point{0.25, 0.0}, Point{0.5, 1.0}));
}

TEST(MidasTest, BorderPatternOverlayStaysValid) {
  MidasOverlay overlay = GrowOverlay(256, 2, 47, /*patterns=*/true);
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
  Rng churn(53);
  while (overlay.NumPeers() > 32) {
    ASSERT_TRUE(overlay.LeaveRandom(&churn).ok());
  }
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
}

TEST(MidasTest, BorderPatternLinksPreferPatternPeers) {
  // With the optimization on, links should target border-pattern peers more
  // often than without it.
  auto pattern_link_fraction = [](const MidasOverlay& overlay) {
    size_t pattern_links = 0, total = 0;
    for (PeerId id : overlay.LivePeers()) {
      for (const auto& link : overlay.GetPeer(id).links) {
        ++total;
        if (MatchesAnyBorderPattern(overlay.GetPeer(link.target).id,
                                    overlay.dims())) {
          ++pattern_links;
        }
      }
    }
    return static_cast<double>(pattern_links) / static_cast<double>(total);
  };
  MidasOverlay plain = GrowOverlay(512, 2, 61, /*patterns=*/false);
  MidasOverlay optimized = GrowOverlay(512, 2, 61, /*patterns=*/true);
  EXPECT_GT(pattern_link_fraction(optimized),
            pattern_link_fraction(plain) + 0.05);
}

TEST(MidasTest, RandomPeerIsLive) {
  MidasOverlay overlay = GrowOverlay(50, 2, 67);
  Rng churn(71);
  while (overlay.NumPeers() > 10) ASSERT_TRUE(overlay.LeaveRandom(&churn).ok());
  Rng rng(73);
  for (int i = 0; i < 100; ++i) {
    const PeerId id = overlay.RandomPeer(&rng);
    EXPECT_NO_FATAL_FAILURE(overlay.GetPeer(id));
  }
}

}  // namespace
}  // namespace ripple
