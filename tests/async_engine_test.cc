#include "sim/async_engine.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/midas/midas.h"
#include "queries/range.h"
#include "queries/skyline.h"
#include "queries/topk.h"
#include "ripple/engine.h"
#include "sim/event_sim.h"

namespace ripple {
namespace {

// --- EventSimulator -----------------------------------------------------------

TEST(EventSimTest, FiresInTimestampOrder) {
  EventSimulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(sim.Run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventSimTest, TiesAreFifo) {
  EventSimulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventSimTest, EventsMayScheduleEvents) {
  EventSimulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.Schedule(1.0, chain);
  };
  sim.Schedule(0.0, chain);
  EXPECT_DOUBLE_EQ(sim.Run(), 9.0);
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.events_processed(), 10u);
}

TEST(EventSimTest, ClockOnlyMovesForward) {
  EventSimulator sim;
  double seen = -1;
  sim.Schedule(5.0, [&] { seen = sim.now(); });
  sim.Schedule(2.0, [&] { sim.Schedule(0.5, [&] {}); });
  sim.Run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

// --- Async engine cross-validation ---------------------------------------------

struct Net {
  MidasOverlay overlay;
  TupleVec all;
};

Net MakeNet(size_t peers, size_t tuples, int dims, uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.split_rule = MidasSplitRule::kDataMedian;
  Net net{MidasOverlay(opt), {}};
  Rng rng(seed ^ 0xabc);
  net.all = data::MakeUniform(tuples, dims, &rng);
  for (const Tuple& t : net.all) net.overlay.InsertTuple(t);
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  return net;
}

template <typename Policy, typename Query>
void CrossValidate(const Net& net, const Query& q, RippleParam r,
                   PeerId initiator) {
  Engine<MidasOverlay, Policy> sync_engine(&net.overlay, Policy{});
  AsyncEngine<MidasOverlay, Policy> async_engine(&net.overlay, Policy{});
  const auto sync = sync_engine.Run({.initiator = initiator, .query = q, .ripple = r});
  const auto async = async_engine.Run({.initiator = initiator, .query = q, .ripple = r});
  // Identical answers.
  ASSERT_EQ(async.answer.size(), sync.answer.size()) << "r=" << r;
  for (size_t i = 0; i < sync.answer.size(); ++i) {
    EXPECT_EQ(async.answer[i].id, sync.answer[i].id);
  }
  // Identical work — including the encoded bytes both engines charge
  // through the shared WireCodec.
  EXPECT_EQ(async.stats.peers_visited, sync.stats.peers_visited);
  EXPECT_EQ(async.stats.messages, sync.stats.messages);
  EXPECT_EQ(async.stats.tuples_shipped, sync.stats.tuples_shipped);
  EXPECT_EQ(async.stats.bytes_on_wire, sync.stats.bytes_on_wire);
  EXPECT_GT(async.stats.bytes_on_wire, 0u);
  // Message time covers at least the forward hops the lemmas count.
  EXPECT_GE(async.completion_time,
            static_cast<double>(sync.stats.latency_hops));
}

TEST(AsyncEngineTest, TopKMatchesRecursiveEngine) {
  Net net = MakeNet(96, 1000, 3, 601);
  LinearScorer scorer({-0.5, -0.3, -0.2});
  TopKQuery q{&scorer, 10};
  Rng rng(5);
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Hops(1), RippleParam::Hops(3), RippleParam::Slow()}) {
    CrossValidate<TopKPolicy>(net, q, r, net.overlay.RandomPeer(&rng));
  }
}

TEST(AsyncEngineTest, SkylineMatchesRecursiveEngine) {
  Net net = MakeNet(64, 800, 3, 603);
  Rng rng(7);
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Hops(2), RippleParam::Slow()}) {
    CrossValidate<SkylinePolicy>(net, SkylineQuery{}, r,
                                 net.overlay.RandomPeer(&rng));
  }
}

TEST(AsyncEngineTest, RangeMatchesRecursiveEngine) {
  Net net = MakeNet(64, 900, 2, 607);
  Rng rng(11);
  RangeQuery q{Point{0.4, 0.6}, 0.15, Norm::kL2};
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Slow()}) {
    CrossValidate<RangePolicy>(net, q, r, net.overlay.RandomPeer(&rng));
  }
}

TEST(AsyncEngineTest, SlowModeCompletionTracksSequentialHops) {
  // With unit delays and slow mode, every forward and its response are
  // sequential: completion >= 2 * forward hops.
  Net net = MakeNet(48, 600, 2, 611);
  LinearScorer scorer({-0.6, -0.4});
  TopKQuery q{&scorer, 5};
  Engine<MidasOverlay, TopKPolicy> sync_engine(&net.overlay, TopKPolicy{});
  AsyncEngine<MidasOverlay, TopKPolicy> async_engine(&net.overlay,
                                                     TopKPolicy{});
  Rng rng(13);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  const auto sync = sync_engine.Run({.initiator = initiator, .query = q, .ripple = RippleParam::Slow()});
  const auto async = async_engine.Run({.initiator = initiator, .query = q, .ripple = RippleParam::Slow()});
  EXPECT_GE(async.completion_time,
            2.0 * static_cast<double>(sync.stats.latency_hops));
}

TEST(AsyncEngineTest, HeterogeneousDelaysChangeTimeNotWork) {
  Net net = MakeNet(64, 700, 3, 613);
  LinearScorer scorer({-0.3, -0.4, -0.3});
  TopKQuery q{&scorer, 8};
  Rng rng(17);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  AsyncEngine<MidasOverlay, TopKPolicy> unit(&net.overlay, TopKPolicy{});
  // A deterministic "slow continent" model: crossing between low and high
  // peer ids costs 10x.
  AsyncEngine<MidasOverlay, TopKPolicy> wan(
      &net.overlay, TopKPolicy{}, [](PeerId a, PeerId b) {
        return ((a < 32) != (b < 32)) ? 10.0 : 1.0;
      });
  const auto fast_unit = unit.Run({.initiator = initiator, .query = q});
  const auto fast_wan = wan.Run({.initiator = initiator, .query = q});
  EXPECT_EQ(fast_unit.stats.peers_visited, fast_wan.stats.peers_visited);
  EXPECT_EQ(fast_unit.stats.messages, fast_wan.stats.messages);
  EXPECT_GT(fast_wan.completion_time, fast_unit.completion_time);
  // Answers unaffected by timing.
  ASSERT_EQ(fast_unit.answer.size(), fast_wan.answer.size());
  for (size_t i = 0; i < fast_unit.answer.size(); ++i) {
    EXPECT_EQ(fast_unit.answer[i].id, fast_wan.answer[i].id);
  }
}

TEST(AsyncEngineTest, FastCompletionBeatsSlowCompletion) {
  Net net = MakeNet(128, 1500, 3, 617);
  LinearScorer scorer({-0.2, -0.5, -0.3});
  TopKQuery q{&scorer, 10};
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  Rng rng(19);
  double fast_total = 0, slow_total = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const PeerId initiator = net.overlay.RandomPeer(&rng);
    fast_total += engine.Run({.initiator = initiator, .query = q}).completion_time;
    slow_total += engine.Run({.initiator = initiator, .query = q, .ripple = RippleParam::Slow()}).completion_time;
  }
  EXPECT_LT(fast_total, slow_total);
}

}  // namespace
}  // namespace ripple
