#include "exec/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/datasets.h"
#include "exec/compile.h"
#include "exec/queue.h"
#include "exec/sharded_lock.h"
#include "exec/workload.h"
#include "overlay/midas/midas.h"

namespace ripple::exec {
namespace {

// --- BoundedQueue -------------------------------------------------------------

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99)) << "queue is full";
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));
}

TEST(BoundedQueueTest, CloseDrainsThenStops) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3)) << "closed queue rejects pushes";
  int v = -1;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.Pop(&v)) << "closed and drained";
}

TEST(BoundedQueueTest, PushBlocksUntilPopped) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(0));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(1));  // blocks: capacity 1 and the queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load()) << "Push must block while full";
  int v = -1;
  ASSERT_TRUE(q.Pop(&v));
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(0));
  std::thread producer([&] { EXPECT_FALSE(q.Push(1)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
}

// --- Sharded locks and the load table -----------------------------------------

TEST(ShardedPeerMutexTest, ShardOfIsModulo) {
  ShardedPeerMutex locks(8);
  EXPECT_EQ(locks.shard_count(), 8u);
  EXPECT_EQ(locks.ShardOf(0), 0u);
  EXPECT_EQ(locks.ShardOf(9), 1u);
  EXPECT_EQ(locks.ShardOf(8), locks.ShardOf(16));
  auto lock = locks.Lock(3);
  EXPECT_TRUE(lock.owns_lock());
}

TEST(SharedLoadTableTest, ChargesAndSnapshots) {
  SharedLoadTable table(16, /*shards=*/4);
  table.Charge(3);
  table.Charge(3, 2);
  table.Charge(15);
  table.Charge(999) /* beyond the universe: ignored */;
  EXPECT_EQ(table.load(3), 3u);
  EXPECT_EQ(table.load(15), 1u);
  EXPECT_EQ(table.load(999), 0u);
  EXPECT_EQ(table.Total(), 4u);
  EXPECT_EQ(table.Max(), 3u);
  const std::vector<uint64_t> snap = table.Snapshot();
  ASSERT_EQ(snap.size(), 16u);
  EXPECT_EQ(snap[3], 3u);
}

TEST(SharedLoadTableTest, ConcurrentChargesLoseNoUpdates) {
  // The TSan suite runs this too: many threads hammering few shards, so
  // every lost-update or race would surface.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  SharedLoadTable table(32, /*shards=*/4);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      for (int i = 0; i < kPerThread; ++i) {
        table.Charge(static_cast<PeerId>((t * 7 + i) % 32));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(table.Total(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// --- Workload parsing ---------------------------------------------------------

TEST(WorkloadParseTest, ParsesKindsAndKeys) {
  const auto parsed = ParseWorkload(
      "# a comment\n"
      "topk k=7 epsilon=0.5 r=slow\n"
      "\n"
      "skyline r=3\n"
      "skyband band=4\n"
      "range radius=0.25 deadline=500\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const std::vector<WorkloadItem>& items = *parsed;
  ASSERT_EQ(items.size(), 4u);
  EXPECT_EQ(items[0].kind, WorkloadItem::Kind::kTopK);
  EXPECT_EQ(items[0].k, 7u);
  EXPECT_DOUBLE_EQ(items[0].epsilon, 0.5);
  EXPECT_TRUE(items[0].ripple.is_slow());
  EXPECT_EQ(items[1].kind, WorkloadItem::Kind::kSkyline);
  EXPECT_EQ(items[1].ripple.hops(), 3);
  EXPECT_EQ(items[2].band, 4u);
  EXPECT_DOUBLE_EQ(items[3].radius, 0.25);
  EXPECT_DOUBLE_EQ(items[3].deadline, 500.0);
  EXPECT_EQ(items[0].label, "topk k=7 epsilon=0.5 r=slow");
}

TEST(WorkloadParseTest, CountExpandsIntoDistinctItems) {
  const auto parsed = ParseWorkload("topk k=3 count=5\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 5u);
  for (const WorkloadItem& item : *parsed) EXPECT_EQ(item.k, 3u);
}

TEST(WorkloadParseTest, ErrorsCarryLineNumbers) {
  const auto bad_kind = ParseWorkload("topk k=1\nfrobnicate\n");
  ASSERT_FALSE(bad_kind.ok());
  EXPECT_NE(bad_kind.status().message().find("line 2"), std::string::npos);

  const auto bad_value = ParseWorkload("topk k=zero\n");
  ASSERT_FALSE(bad_value.ok());
  EXPECT_NE(bad_value.status().message().find("line 1"), std::string::npos);

  const auto bad_key = ParseWorkload("skyline knobs=11\n");
  ASSERT_FALSE(bad_key.ok());
  EXPECT_NE(bad_key.status().message().find("unknown key"),
            std::string::npos);

  EXPECT_FALSE(ParseWorkload("# only a comment\n").ok());
}

TEST(WorkloadParseTest, DefaultMixCoversEveryKind) {
  const std::vector<WorkloadItem> mix = DefaultWorkloadMix(16);
  ASSERT_EQ(mix.size(), 16u);
  size_t kinds[4] = {0, 0, 0, 0};
  for (const WorkloadItem& item : mix) {
    kinds[static_cast<int>(item.kind)] += 1;
  }
  for (size_t count : kinds) EXPECT_GT(count, 0u);
}

// --- Executor -----------------------------------------------------------------

struct Net {
  MidasOverlay overlay;
  TupleVec all;
};

Net MakeNet(size_t peers, size_t tuples, int dims, uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.split_rule = MidasSplitRule::kDataMedian;
  Net net{MidasOverlay(opt), {}};
  Rng rng(seed ^ 0xabc);
  net.all = data::MakeUniform(tuples, dims, &rng);
  for (const Tuple& t : net.all) net.overlay.InsertTuple(t);
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  return net;
}

std::vector<uint64_t> AnswerIds(const QueryOutcome& out) {
  std::vector<uint64_t> ids;
  ids.reserve(out.answer.size());
  for (const Tuple& t : out.answer) ids.push_back(t.id);
  return ids;
}

WorkloadResult RunMix(const Net& net, int threads, uint64_t seed,
                      size_t queries, bool async = false,
                      bool collect_spans = false) {
  CompileOptions copts;
  copts.seed = seed;
  copts.async = async;
  CompiledWorkload compiled =
      CompileWorkload(net.overlay, DefaultWorkloadMix(queries), copts);
  ExecutorOptions opts;
  opts.threads = threads;
  opts.seed = seed;
  opts.collect_spans = collect_spans;
  Executor executor(opts);
  return executor.Run(compiled.jobs, net.overlay.NumPeers());
}

TEST(ExecutorTest, RunsEveryQueryOfTheMix) {
  const Net net = MakeNet(48, 3000, 2, 11);
  const WorkloadResult result = RunMix(net, /*threads=*/2, /*seed=*/5, 12);
  ASSERT_EQ(result.queries.size(), 12u);
  EXPECT_EQ(result.completed, 12u);
  EXPECT_EQ(result.shed, 0u);
  EXPECT_EQ(result.partial, 0u);
  EXPECT_TRUE(result.coverage.complete());
  EXPECT_GT(result.total_stats.peers_visited, 0u);
  EXPECT_GT(result.qps, 0.0);
  EXPECT_EQ(result.latency_ms.count(), 12u);
  for (const QueryOutcome& out : result.queries) {
    EXPECT_GE(out.worker, 0);
    EXPECT_LT(out.worker, 2);
    EXPECT_TRUE(out.complete);
    EXPECT_NE(out.initiator, kInvalidPeer);
  }
  EXPECT_NE(result.Summary().find("12 queries"), std::string::npos);
}

TEST(ExecutorTest, DeterministicAcrossRepeatedRuns) {
  const Net net = MakeNet(48, 3000, 2, 11);
  const WorkloadResult base = RunMix(net, /*threads=*/3, /*seed=*/9, 16);
  for (int run = 0; run < 2; ++run) {
    const WorkloadResult again = RunMix(net, /*threads=*/3, /*seed=*/9, 16);
    ASSERT_EQ(again.queries.size(), base.queries.size());
    EXPECT_EQ(again.total_stats.latency_hops, base.total_stats.latency_hops);
    EXPECT_EQ(again.total_stats.peers_visited, base.total_stats.peers_visited);
    EXPECT_EQ(again.total_stats.messages, base.total_stats.messages);
    EXPECT_EQ(again.total_stats.tuples_shipped,
              base.total_stats.tuples_shipped);
    EXPECT_EQ(again.peer_visits, base.peer_visits);
    for (size_t i = 0; i < base.queries.size(); ++i) {
      EXPECT_EQ(again.queries[i].worker, base.queries[i].worker);
      EXPECT_EQ(again.queries[i].initiator, base.queries[i].initiator);
      EXPECT_EQ(AnswerIds(again.queries[i]), AnswerIds(base.queries[i]))
          << "query " << i;
    }
  }
}

TEST(ExecutorTest, AnswersInvariantAcrossThreadCounts) {
  // Queries are materialized from per-item seeds, so pool size only moves
  // work between workers — answers, stats and initiators must not change.
  const Net net = MakeNet(48, 3000, 2, 11);
  const WorkloadResult one = RunMix(net, /*threads=*/1, /*seed=*/4, 12);
  const WorkloadResult four = RunMix(net, /*threads=*/4, /*seed=*/4, 12);
  ASSERT_EQ(one.queries.size(), four.queries.size());
  EXPECT_EQ(one.total_stats.messages, four.total_stats.messages);
  EXPECT_EQ(one.total_stats.peers_visited, four.total_stats.peers_visited);
  EXPECT_EQ(one.peer_visits, four.peer_visits);
  for (size_t i = 0; i < one.queries.size(); ++i) {
    EXPECT_EQ(one.queries[i].initiator, four.queries[i].initiator);
    EXPECT_EQ(AnswerIds(one.queries[i]), AnswerIds(four.queries[i]))
        << "query " << i;
  }
}

TEST(ExecutorTest, AsyncEngineMatchesRecursiveAnswers) {
  // Fault-free async execution keeps the engines' cross-validation
  // contract, so the same compiled workload answers identically.
  const Net net = MakeNet(32, 2000, 2, 3);
  const WorkloadResult sync = RunMix(net, 2, /*seed=*/6, 8, /*async=*/false);
  const WorkloadResult async = RunMix(net, 2, /*seed=*/6, 8, /*async=*/true);
  ASSERT_EQ(sync.queries.size(), async.queries.size());
  EXPECT_EQ(sync.total_stats.peers_visited, async.total_stats.peers_visited);
  for (size_t i = 0; i < sync.queries.size(); ++i) {
    EXPECT_EQ(AnswerIds(sync.queries[i]), AnswerIds(async.queries[i]))
        << "query " << i;
    EXPECT_GT(async.queries[i].completion_time, 0.0);
  }
}

TEST(ExecutorTest, ProfilerAndLoadTableCrossCheck) {
  // Skyband/range jobs run the engine without a bootstrap driver, so the
  // engine's visit observer sees every visited peer: the shared load
  // table, the merged per-worker profilers and QueryStats must agree.
  const Net net = MakeNet(32, 2000, 2, 3);
  const auto items = ParseWorkload("skyband band=2 count=4\nrange radius=0.3 count=4\n");
  ASSERT_TRUE(items.ok());
  CompileOptions copts;
  copts.seed = 13;
  CompiledWorkload compiled = CompileWorkload(net.overlay, *items, copts);
  ExecutorOptions opts;
  opts.threads = 2;
  opts.seed = 13;
  Executor executor(opts);
  const WorkloadResult result =
      executor.Run(compiled.jobs, net.overlay.NumPeers());
  uint64_t table_total = 0;
  for (uint64_t v : result.peer_visits) table_total += v;
  EXPECT_EQ(table_total, result.total_stats.peers_visited);
  EXPECT_EQ(result.profile.Totals().spans, result.total_stats.peers_visited);
  EXPECT_EQ(result.profile.Totals().messages_out,
            result.total_stats.messages);
  EXPECT_EQ(result.profile.peer_count(), net.overlay.NumPeers());
}

TEST(ExecutorTest, DeadlineShedsQueuedQueries) {
  // One slow job blocks the single worker; everything queued behind it
  // carries a microscopic deadline and must be shed un-run.
  std::vector<Job> jobs;
  Job slow;
  slow.run = [](JobContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return JobResult{};
  };
  jobs.push_back(std::move(slow));
  for (int i = 0; i < 4; ++i) {
    Job doomed;
    doomed.deadline_ms = 0.01;
    doomed.run = [](JobContext&) { return JobResult{}; };
    jobs.push_back(std::move(doomed));
  }
  ExecutorOptions opts;
  opts.threads = 1;
  opts.queue_capacity = 16;
  Executor executor(opts);
  const WorkloadResult result = executor.Run(jobs, /*peer_universe=*/1);
  EXPECT_EQ(result.completed + result.shed, 5u);
  EXPECT_GE(result.shed, 4u);
  for (const QueryOutcome& out : result.queries) {
    if (out.shed) {
      EXPECT_TRUE(out.answer.empty());
      EXPECT_FALSE(out.complete);
    }
  }
  EXPECT_EQ(result.latency_ms.count(), result.completed);
}

TEST(ExecutorTest, BackpressureBlocksAdmissionInsteadOfDropping) {
  // queue_capacity 1 with a slow worker: the admission loop must stall on
  // Push, and still every job runs exactly once.
  std::atomic<int> ran{0};
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) {
    Job job;
    job.run = [&ran](JobContext&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ran.fetch_add(1);
      return JobResult{};
    };
    jobs.push_back(std::move(job));
  }
  ExecutorOptions opts;
  opts.threads = 1;
  opts.queue_capacity = 1;
  Executor executor(opts);
  const WorkloadResult result = executor.Run(jobs, 1);
  EXPECT_EQ(ran.load(), 6);
  EXPECT_EQ(result.completed, 6u);
  EXPECT_EQ(result.shed, 0u);
}

TEST(ExecutorTest, RoundRobinAssignmentIsStatic) {
  std::vector<Job> jobs;
  for (int i = 0; i < 9; ++i) {
    Job job;
    job.run = [](JobContext&) { return JobResult{}; };
    jobs.push_back(std::move(job));
  }
  ExecutorOptions opts;
  opts.threads = 3;
  Executor executor(opts);
  const WorkloadResult result = executor.Run(jobs, 1);
  for (size_t i = 0; i < result.queries.size(); ++i) {
    EXPECT_EQ(result.queries[i].worker, static_cast<int>(i % 3));
  }
}

TEST(ExecutorTest, AdmissionSpansCoverExecutedQueries) {
  const Net net = MakeNet(32, 2000, 2, 3);
  CompiledWorkload compiled =
      CompileWorkload(net.overlay, DefaultWorkloadMix(8), {.seed = 2});
  ExecutorOptions opts;
  opts.threads = 2;
  opts.seed = 2;
  opts.collect_spans = true;
  Executor executor(opts);
  const WorkloadResult result =
      executor.Run(compiled.jobs, net.overlay.NumPeers());
  size_t spans = 0;
  for (const obs::Tracer& tracer : executor.worker_tracers()) {
    for (const obs::Span& span : tracer.spans()) {
      EXPECT_EQ(span.kind, obs::SpanKind::kAdmission);
      EXPECT_GE(span.end, span.start);
      ++spans;
    }
  }
  EXPECT_EQ(spans, result.completed);
}

TEST(ExecutorTest, QpsPacingStretchesTheRun) {
  std::vector<Job> jobs;
  for (int i = 0; i < 5; ++i) {
    Job job;
    job.run = [](JobContext&) { return JobResult{}; };
    jobs.push_back(std::move(job));
  }
  ExecutorOptions opts;
  opts.threads = 2;
  opts.qps_target = 100.0;  // 10ms spacing -> >= 40ms for 5 queries
  Executor executor(opts);
  const WorkloadResult result = executor.Run(jobs, 1);
  EXPECT_EQ(result.completed, 5u);
  EXPECT_GE(result.wall_s, 0.035);
}

TEST(ExecutorTest, GlobalObsStaysLiveInsideTheParallelSection) {
  obs::Registry::EnableGlobal(true);
  obs::Profiler::EnableGlobal(true);
  const uint64_t completed_before =
      obs::Registry::Global().GetCounter("exec.completed").value();
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i) {
    Job job;
    job.run = [](JobContext&) {
      // The process-global hooks stay enabled inside the parallel section
      // (metrics are atomic / internally locked now — there is no freeze):
      // worker-side engine runs may record global metrics and route hops.
      EXPECT_TRUE(obs::Profiler::GlobalEnabled());
      EXPECT_TRUE(obs::Registry::GlobalEnabled());
      obs::Registry::Global().GetCounter("exec_test.worker_side").Inc();
      obs::RecordRouteStep("exec_test", 0, 1);
      return JobResult{};
    };
    jobs.push_back(std::move(job));
  }
  ExecutorOptions options;
  options.threads = 4;
  Executor executor(options);
  executor.Run(jobs, 2);
  EXPECT_TRUE(obs::Registry::GlobalEnabled());
  EXPECT_TRUE(obs::Profiler::GlobalEnabled());
  obs::Registry::EnableGlobal(false);
  obs::Profiler::EnableGlobal(false);
  // Worker-side global recording landed instead of being dropped.
  EXPECT_EQ(
      obs::Registry::Global().GetCounter("exec_test.worker_side").value(), 8u);
  EXPECT_GE(obs::Profiler::Global().Totals().route_hops, 8u);
  EXPECT_EQ(obs::Registry::Global().GetCounter("exec.completed").value(),
            completed_before + 8);
}

}  // namespace
}  // namespace ripple::exec
