// Wire-format layer tests (docs/WIRE.md): codec primitives, framing,
// payload codecs for every policy, the transport seam, and end-to-end
// corruption recovery through the async engine's fault machinery.

#include "wire/buffer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "data/datasets.h"
#include "geom/wire.h"
#include "net/envelope.h"
#include "net/frame_cost.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "overlay/chord/chord.h"
#include "overlay/midas/midas.h"
#include "queries/diversify.h"
#include "queries/range.h"
#include "queries/skyband.h"
#include "queries/skyline.h"
#include "queries/topk.h"
#include "ripple/engine.h"
#include "ripple/wire_codec.h"
#include "sim/async_engine.h"
#include "store/wire.h"
#include "wire/frame.h"

namespace ripple {
namespace {

// --- Buffer / Reader primitives -------------------------------------------

TEST(WireBufferTest, VarintRoundTripsEdgeAndRandomValues) {
  std::vector<uint64_t> values = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  std::numeric_limits<uint64_t>::max()};
  Rng rng(41);
  for (int i = 0; i < 200; ++i) values.push_back(rng.NextU64());
  wire::Buffer buf;
  for (uint64_t v : values) buf.PutVarint(v);
  wire::Reader r(buf.bytes());
  for (uint64_t v : values) EXPECT_EQ(r.Varint(), v);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireBufferTest, ZigzagRoundTripsNegatives) {
  std::vector<int64_t> values = {0, -1, 1, -2, 63, -64,
                                 std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max()};
  wire::Buffer buf;
  for (int64_t v : values) buf.PutZigzag(v);
  // Small magnitudes stay small on the wire.
  EXPECT_LE(buf.size(), values.size() * 10);
  wire::Reader r(buf.bytes());
  for (int64_t v : values) EXPECT_EQ(r.Zigzag(), v);
  EXPECT_TRUE(r.ok());
}

TEST(WireBufferTest, F64RoundTripsBitExactly) {
  const std::vector<double> values = {
      0.0, -0.0, 1.5, -3.25, 1e-300, -1e300,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min()};
  wire::Buffer buf;
  for (double v : values) buf.PutF64(v);
  wire::Reader r(buf.bytes());
  for (double v : values) {
    const double got = r.F64();
    EXPECT_EQ(std::signbit(got), std::signbit(v));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(r.ok());
}

TEST(WireBufferTest, UnderrunFailsAndLatches) {
  wire::Buffer buf;
  buf.PutFixed32(7);
  wire::Reader r(buf.bytes());
  EXPECT_EQ(r.Fixed32(), 7u);
  (void)r.Fixed64();  // four bytes short
  EXPECT_FALSE(r.ok());
  // Failure latches: subsequent reads keep failing even within bounds.
  EXPECT_EQ(r.U8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(WireBufferTest, OverlongVarintRejected) {
  std::vector<uint8_t> evil(11, 0x80);  // 11 continuation bytes
  wire::Reader r(evil.data(), evil.size());
  (void)r.Varint();
  EXPECT_FALSE(r.ok());
}

// --- Framing ---------------------------------------------------------------

TEST(WireFrameTest, RoundTripAndPayloadSize) {
  wire::Buffer buf;
  const size_t start = wire::BeginFrame(&buf, /*tag=*/2, /*id=*/42,
                                        /*from=*/7, /*to=*/9);
  buf.PutVarint(12345);
  wire::EndFrame(&buf, start);
  EXPECT_EQ(buf.size(), wire::kFrameHeaderSize + 2);

  wire::Reader r(buf.bytes());
  wire::FrameHeader h;
  ASSERT_TRUE(wire::DecodeFrameHeader(&r, &h));
  EXPECT_EQ(h.version, wire::kWireVersion);
  EXPECT_EQ(h.tag, 2);
  EXPECT_EQ(h.id, 42u);
  EXPECT_EQ(h.from, 7u);
  EXPECT_EQ(h.to, 9u);
  EXPECT_EQ(wire::FramePayloadSize(h), 2u);
  EXPECT_EQ(r.Varint(), 12345u);
  EXPECT_TRUE(r.ok());
}

TEST(WireFrameTest, EveryTruncationRejected) {
  wire::Buffer buf;
  const size_t start = wire::BeginFrame(&buf, 0, 1, 2, 3);
  buf.PutF64(0.5);
  wire::EndFrame(&buf, start);
  for (size_t n = 0; n < buf.size(); ++n) {
    wire::Reader r(buf.data(), n);
    wire::FrameHeader h;
    EXPECT_FALSE(wire::DecodeFrameHeader(&r, &h)) << "prefix " << n;
  }
}

TEST(WireFrameTest, WrongVersionAndTagRejected) {
  wire::Buffer buf;
  const size_t start = wire::BeginFrame(&buf, 1, 5, 0, 1);
  wire::EndFrame(&buf, start);
  {
    std::vector<uint8_t> bytes = buf.bytes();
    bytes[4] = wire::kWireVersion + 1;  // version byte follows the length
    wire::Reader r(bytes.data(), bytes.size());
    wire::FrameHeader h;
    EXPECT_FALSE(wire::DecodeFrameHeader(&r, &h));
  }
  {
    std::vector<uint8_t> bytes = buf.bytes();
    bytes[5] = wire::kMaxMessageTag + 1;  // tag byte follows the version
    wire::Reader r(bytes.data(), bytes.size());
    wire::FrameHeader h;
    EXPECT_FALSE(wire::DecodeFrameHeader(&r, &h));
  }
}

TEST(WireFrameTest, V1FrameDecodesWithEmptyTraceContext) {
  // Hand-build a v1 frame: the 22-byte header (no trace tail) plus one
  // payload byte, as a v1-era peer would ship it.
  wire::Buffer buf;
  buf.PutFixed32(0);  // length, patched below
  buf.PutU8(1);       // version 1
  buf.PutU8(2);       // ack tag
  buf.PutFixed64(77);
  buf.PutFixed32(3);
  buf.PutFixed32(4);
  buf.PutVarint(9);
  wire::EndFrame(&buf, 0);

  wire::Reader r(buf.bytes());
  wire::FrameHeader h;
  EXPECT_EQ(wire::DecodeFrameHeaderEx(&r, &h), wire::FrameError::kOk);
  EXPECT_EQ(h.version, 1);
  EXPECT_EQ(h.id, 77u);
  // The trace context decodes to its empty defaults: no trace, no parent,
  // not sampled.
  EXPECT_EQ(h.trace.trace_id, 0u);
  EXPECT_EQ(h.trace.parent_span, wire::kNoParentSpan);
  EXPECT_FALSE(h.trace.sampled());
  EXPECT_EQ(wire::FramePayloadSize(h), 1u);
  EXPECT_EQ(r.Varint(), 9u);
  EXPECT_TRUE(r.ok());
}

TEST(WireFrameTest, V2TraceContextRoundTripsAndOldDecoderWouldReject) {
  wire::TraceContext trace;
  trace.trace_id = 0xfeedf00dULL;
  trace.parent_span = 12;
  trace.flags = wire::kFrameFlagSampled;
  wire::Buffer buf;
  const size_t start = wire::BeginFrame(&buf, 0, 9, 1, 2, trace);
  wire::EndFrame(&buf, start);

  wire::Reader r(buf.bytes());
  wire::FrameHeader h;
  ASSERT_EQ(wire::DecodeFrameHeaderEx(&r, &h), wire::FrameError::kOk);
  EXPECT_EQ(h.trace.trace_id, 0xfeedf00dULL);
  EXPECT_EQ(h.trace.parent_span, 12u);
  EXPECT_TRUE(h.trace.sampled());

  // A v1-era decoder capped at version 1 rejects version 2 through the
  // same kBadVersion path the current decoder uses for versions above its
  // own: a clean semantic rejection, never a misparse of the tail.
  std::vector<uint8_t> bytes = buf.bytes();
  bytes[4] = wire::kWireVersion + 1;
  wire::Reader future(bytes.data(), bytes.size());
  EXPECT_EQ(wire::DecodeFrameHeaderEx(&future, &h),
            wire::FrameError::kBadVersion);
}

TEST(WireFrameTest, FrameErrorSeparatesTruncationFromSemanticRejects) {
  wire::Buffer buf;
  const size_t start = wire::BeginFrame(&buf, 1, 5, 0, 1);
  buf.PutF64(0.25);
  wire::EndFrame(&buf, start);

  // Every strict prefix is a truncation, from a cut length field through
  // a missing trace tail to a declared-but-absent payload.
  for (size_t n = 0; n < buf.size(); ++n) {
    wire::Reader r(buf.data(), n);
    wire::FrameHeader h;
    EXPECT_EQ(wire::DecodeFrameHeaderEx(&r, &h), wire::FrameError::kTruncated)
        << "prefix " << n;
  }
  // A complete header with an unknown tag is a semantic reject.
  std::vector<uint8_t> bytes = buf.bytes();
  bytes[5] = wire::kMaxMessageTag + 1;
  wire::Reader r(bytes.data(), bytes.size());
  wire::FrameHeader h;
  EXPECT_EQ(wire::DecodeFrameHeaderEx(&r, &h), wire::FrameError::kBadTag);
}

TEST(WireFrameTest, BackToBackFramesWalk) {
  wire::Buffer buf;
  for (uint64_t id = 0; id < 5; ++id) {
    const size_t start = wire::BeginFrame(&buf, 1, id, 10, 11);
    for (uint64_t j = 0; j <= id; ++j) buf.PutVarint(j);
    wire::EndFrame(&buf, start);
  }
  wire::Reader r(buf.bytes());
  uint64_t seen = 0;
  while (r.ok() && r.remaining() > 0) {
    wire::FrameHeader h;
    ASSERT_TRUE(wire::DecodeFrameHeader(&r, &h));
    EXPECT_EQ(h.id, seen);
    ASSERT_TRUE(r.Skip(wire::FramePayloadSize(h)));
    ++seen;
  }
  EXPECT_EQ(seen, 5u);
}

// --- Geometry payloads -----------------------------------------------------

TEST(GeomWireTest, PointAndRectRoundTripSeeded) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const int dims = 1 + static_cast<int>(rng.UniformU64(8));
    Point lo(dims), hi(dims);
    for (int d = 0; d < dims; ++d) {
      const double a = rng.UniformDouble();
      const double b = rng.UniformDouble();
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const Rect rect(lo, hi);
    wire::Buffer buf;
    EncodeRect(rect, &buf);
    wire::Reader r(buf.bytes());
    Rect out;
    ASSERT_TRUE(DecodeRect(&r, &out));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
    ASSERT_EQ(out.dims(), rect.dims());
    for (int d = 0; d < dims; ++d) {
      EXPECT_EQ(out.lo()[d], rect.lo()[d]);
      EXPECT_EQ(out.hi()[d], rect.hi()[d]);
    }
  }
}

TEST(GeomWireTest, InvertedRectRejectedNotChecked) {
  // lo > hi must fail the decode, not trip the Rect constructor check.
  wire::Buffer buf;
  EncodePoint(Point{0.9, 0.5}, &buf);
  EncodePoint(Point{0.1, 0.8}, &buf);
  wire::Reader r(buf.bytes());
  Rect out;
  EXPECT_FALSE(DecodeRect(&r, &out));
  EXPECT_FALSE(r.ok());
}

TEST(GeomWireTest, ScorerRoundTripPreservesScores) {
  const LinearScorer lin({-0.5, -0.3, -0.2});
  const NearestScorer near(Point{0.2, 0.4, 0.9}, Norm::kL1);
  Rng rng(23);
  for (const Scorer* s : std::initializer_list<const Scorer*>{&lin, &near}) {
    wire::Buffer buf;
    EncodeScorer(*s, &buf);
    wire::Reader r(buf.bytes());
    const std::shared_ptr<const Scorer> decoded = DecodeScorer(&r);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(r.remaining(), 0u);
    for (int i = 0; i < 50; ++i) {
      const Point p{rng.UniformDouble(), rng.UniformDouble(),
                    rng.UniformDouble()};
      EXPECT_EQ(decoded->Score(p), s->Score(p));
    }
  }
}

TEST(GeomWireTest, ScorerUnknownKindRejected) {
  wire::Buffer buf;
  buf.PutU8(99);
  wire::Reader r(buf.bytes());
  EXPECT_EQ(DecodeScorer(&r), nullptr);
}

// --- Tuple payloads --------------------------------------------------------

TEST(StoreWireTest, TupleVecRoundTripSeeded) {
  Rng rng(29);
  const TupleVec tuples = data::MakeUniform(500, 4, &rng);
  wire::Buffer buf;
  EncodeTupleVec(tuples, &buf);
  wire::Reader r(buf.bytes());
  TupleVec out;
  ASSERT_TRUE(DecodeTupleVec(&r, &out));
  EXPECT_EQ(r.remaining(), 0u);
  ASSERT_EQ(out.size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(out[i].id, tuples[i].id);
    EXPECT_EQ(out[i].key.dims(), tuples[i].key.dims());
    for (int d = 0; d < tuples[i].key.dims(); ++d) {
      EXPECT_EQ(out[i].key[d], tuples[i].key[d]);
    }
  }
}

TEST(StoreWireTest, HugeCountRejectedWithoutAllocating) {
  wire::Buffer buf;
  buf.PutVarint(1u << 30);  // claims a billion tuples
  buf.PutU8(0);
  wire::Reader r(buf.bytes());
  TupleVec out;
  EXPECT_FALSE(DecodeTupleVec(&r, &out));
  EXPECT_FALSE(r.ok());
}

// --- Policy codecs ---------------------------------------------------------

TEST(PolicyCodecTest, TopKQueryStateAnswerRoundTrip) {
  const TopKPolicy policy;
  const LinearScorer scorer({-0.7, -0.3});
  TopKQuery q{&scorer, 7, 0.125};
  wire::Buffer buf;
  policy.EncodeQuery(q, &buf);
  wire::Reader r(buf.bytes());
  TopKQuery qd{};
  ASSERT_TRUE(policy.DecodeQuery(&r, &qd));
  EXPECT_EQ(qd.k, 7u);
  EXPECT_EQ(qd.epsilon, 0.125);
  ASSERT_NE(qd.scorer, nullptr);
  EXPECT_EQ(qd.scorer, qd.owned_scorer.get());  // self-contained
  EXPECT_EQ(qd.scorer->Score(Point{0.5, 0.5}), scorer.Score(Point{0.5, 0.5}));

  const TopKState state{5, -0.375};
  buf.Clear();
  policy.EncodeState(state, &buf);
  wire::Reader rs(buf.bytes());
  TopKState sd{};
  ASSERT_TRUE(policy.DecodeState(&rs, &sd));
  EXPECT_EQ(sd.m, state.m);
  EXPECT_EQ(sd.tau, state.tau);

  Rng rng(31);
  const TupleVec answer = data::MakeUniform(12, 2, &rng);
  buf.Clear();
  policy.EncodeAnswer(answer, &buf);
  wire::Reader ra(buf.bytes());
  TupleVec ad;
  ASSERT_TRUE(policy.DecodeAnswer(&ra, &ad));
  EXPECT_EQ(ad.size(), answer.size());
}

TEST(PolicyCodecTest, SkylineQueryWithAndWithoutConstraint) {
  const SkylinePolicy policy;
  for (const bool constrained : {false, true}) {
    SkylineQuery q;
    q.norm = Norm::kLInf;
    if (constrained) q.constraint = Rect(Point{0.1, 0.2}, Point{0.8, 0.9});
    wire::Buffer buf;
    policy.EncodeQuery(q, &buf);
    wire::Reader r(buf.bytes());
    SkylineQuery qd;
    ASSERT_TRUE(policy.DecodeQuery(&r, &qd));
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_EQ(qd.norm, q.norm);
    ASSERT_EQ(qd.constraint.has_value(), constrained);
    if (constrained) {
      EXPECT_EQ(qd.constraint->lo()[0], 0.1);
      EXPECT_EQ(qd.constraint->hi()[1], 0.9);
    }
  }
}

TEST(PolicyCodecTest, SkylineAndSkybandStatesRoundTrip) {
  Rng rng(37);
  const TupleVec tuples = data::MakeUniform(40, 3, &rng);
  const TupleVec doms(tuples.begin(), tuples.begin() + 8);
  {
    SkylineState s{tuples, doms};
    wire::Buffer buf;
    SkylinePolicy{}.EncodeState(s, &buf);
    wire::Reader r(buf.bytes());
    SkylineState out;
    ASSERT_TRUE(SkylinePolicy{}.DecodeState(&r, &out));
    EXPECT_EQ(out.tuples.size(), s.tuples.size());
    EXPECT_EQ(out.dominators.size(), s.dominators.size());
  }
  {
    SkybandState s{tuples, doms};
    wire::Buffer buf;
    SkybandPolicy{}.EncodeState(s, &buf);
    wire::Reader r(buf.bytes());
    SkybandState out;
    ASSERT_TRUE(SkybandPolicy{}.DecodeState(&r, &out));
    EXPECT_EQ(out.tuples.size(), s.tuples.size());
    EXPECT_EQ(out.dominators.size(), s.dominators.size());
  }
  {
    const SkybandQuery q{3, Norm::kL1};
    wire::Buffer buf;
    SkybandPolicy{}.EncodeQuery(q, &buf);
    wire::Reader r(buf.bytes());
    SkybandQuery out;
    ASSERT_TRUE(SkybandPolicy{}.DecodeQuery(&r, &out));
    EXPECT_EQ(out.band, 3u);
    EXPECT_EQ(out.norm, Norm::kL1);
  }
}

TEST(PolicyCodecTest, DivQueryDecodePrecomputes) {
  Rng rng(43);
  DivQuery q;
  q.objective.query = Point{0.3, 0.7};
  q.objective.lambda = 0.6;
  q.objective.norm = Norm::kL2;
  q.exclude = data::MakeUniform(5, 2, &rng);
  q.Precompute();
  wire::Buffer buf;
  DivPolicy{}.EncodeQuery(q, &buf);
  wire::Reader r(buf.bytes());
  DivQuery qd;
  ASSERT_TRUE(DivPolicy{}.DecodeQuery(&r, &qd));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(qd.prepared);  // decode re-runs Precompute()
  EXPECT_EQ(qd.exclude.size(), q.exclude.size());
  const Point probe{0.55, 0.45};
  EXPECT_EQ(qd.Phi(probe), q.Phi(probe));
}

TEST(PolicyCodecTest, RangeQueryRoundTripAndEmptyState) {
  const RangePolicy policy;
  const RangeQuery q{Point{0.4, 0.6, 0.1}, 0.25, Norm::kLInf};
  wire::Buffer buf;
  policy.EncodeQuery(q, &buf);
  wire::Reader r(buf.bytes());
  RangeQuery qd;
  ASSERT_TRUE(policy.DecodeQuery(&r, &qd));
  EXPECT_EQ(qd.radius, q.radius);
  EXPECT_EQ(qd.norm, q.norm);
  EXPECT_EQ(qd.center[2], 0.1);

  buf.Clear();
  policy.EncodeState(RangePolicy::Empty{}, &buf);
  EXPECT_TRUE(buf.empty());  // the empty state costs zero payload bytes
  wire::Reader rs(buf.bytes());
  RangePolicy::Empty e;
  EXPECT_TRUE(policy.DecodeState(&rs, &e));
}

// --- Overlay area codecs ---------------------------------------------------

TEST(AreaCodecTest, ChordSegmentsRoundTripAndRebindZorder) {
  ChordOptions opt;
  opt.dims = 2;
  opt.seed = 5;
  ChordOverlay overlay(12, opt);
  ChordOverlay::Area area = overlay.FullArea();
  // A multi-segment area, as restriction intersections produce.
  area.segments.emplace_back(3, 9);
  std::swap(area.segments[0], area.segments[1]);
  area.segments[1].second /= 2;
  wire::Buffer buf;
  overlay.EncodeArea(area, &buf);
  wire::Reader r(buf.bytes());
  ChordOverlay::Area out;
  ASSERT_TRUE(overlay.DecodeArea(&r, &out));
  EXPECT_EQ(r.remaining(), 0u);
  ASSERT_EQ(out.segments.size(), area.segments.size());
  for (size_t i = 0; i < area.segments.size(); ++i) {
    EXPECT_EQ(out.segments[i], area.segments[i]);
  }
  // The decoded area binds to the receiving overlay's z-order curve, not
  // to a pointer that crossed the wire.
  EXPECT_NE(out.zorder, nullptr);
}

TEST(AreaCodecTest, ChordRejectsEmptyAndOverlongSegments) {
  ChordOptions opt;
  opt.dims = 2;
  opt.seed = 6;
  ChordOverlay overlay(8, opt);
  {
    wire::Buffer buf;
    buf.PutVarint(1);
    buf.PutVarint(10);
    buf.PutVarint(0);  // zero-span segment
    wire::Reader r(buf.bytes());
    ChordOverlay::Area out;
    EXPECT_FALSE(overlay.DecodeArea(&r, &out));
  }
  {
    wire::Buffer buf;
    buf.PutVarint(1);
    buf.PutVarint(0);
    buf.PutVarint(std::numeric_limits<uint64_t>::max());  // wraps the ring
    wire::Reader r(buf.bytes());
    ChordOverlay::Area out;
    EXPECT_FALSE(overlay.DecodeArea(&r, &out));
  }
}

// --- WireCodec (full messages) --------------------------------------------

TEST(WireCodecTest, QueryMessageRoundTrip) {
  MidasOptions opt;
  opt.dims = 2;
  opt.seed = 9;
  MidasOverlay overlay(opt);
  for (int i = 0; i < 7; ++i) overlay.Join();
  const TopKPolicy policy;
  const WireCodec<MidasOverlay, TopKPolicy> codec(&overlay, &policy);

  const LinearScorer scorer({-1.0, -0.5});
  const TopKQuery q{&scorer, 4, 0.0};
  const TopKState g{2, 0.75};
  const net::Envelope env{77, 3, 5, net::MessageKind::kQuery, 0};
  wire::Buffer buf;
  const size_t bytes =
      codec.EncodeQueryMessage(env, q, g, overlay.FullArea(), 2, &buf);
  EXPECT_EQ(bytes, buf.size());

  wire::Reader r(buf.bytes());
  net::Envelope got;
  ASSERT_TRUE(net::DecodeEnvelopeFrame(&r, &got));
  EXPECT_EQ(got.id, 77u);
  EXPECT_EQ(got.from, 3u);
  EXPECT_EQ(got.to, 5u);
  EXPECT_EQ(got.kind, net::MessageKind::kQuery);
  TopKQuery qd{};
  TopKState gd{};
  MidasOverlay::Area area;
  int64_t hops = 0;
  ASSERT_TRUE(codec.DecodeQueryPayload(&r, &qd, &gd, &area, &hops));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(hops, 2);
  EXPECT_EQ(qd.k, 4u);
  EXPECT_EQ(gd.m, 2u);
  EXPECT_EQ(gd.tau, 0.75);
}

TEST(WireCodecTest, AckIsBareHeader) {
  MidasOptions opt;
  opt.dims = 2;
  MidasOverlay overlay(opt);
  const TopKPolicy policy;
  const WireCodec<MidasOverlay, TopKPolicy> codec(&overlay, &policy);
  wire::Buffer buf;
  const net::Envelope env{1, 0, 1, net::MessageKind::kAck, 0};
  EXPECT_EQ(codec.EncodeAckMessage(env, &buf), wire::kFrameHeaderSize);
  EXPECT_EQ(net::kBareFrameBytes, wire::kFrameHeaderSize);
}

// --- Transport seam, end to end -------------------------------------------

struct Net {
  MidasOverlay overlay;
  TupleVec all;
};

Net MakeNet(size_t peers, size_t tuples, int dims, uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.split_rule = MidasSplitRule::kDataMedian;
  Net net{MidasOverlay(opt), {}};
  Rng rng(seed ^ 0xabc);
  net.all = data::MakeUniform(tuples, dims, &rng);
  for (const Tuple& t : net.all) net.overlay.InsertTuple(t);
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  return net;
}

TEST(TransportTest, LoopbackCountsEveryShippedFrame) {
  Net net = MakeNet(48, 600, 2, 701);
  const LinearScorer scorer({-0.6, -0.4});
  const TopKQuery q{&scorer, 5};
  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  const auto result = engine.Run({.initiator = 0, .query = q,
                                  .ripple = RippleParam::Hops(2)});
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.stats.bytes_on_wire, 0u);
  // Every charged byte crossed the transport. The transport may carry
  // MORE than the stats charge: fast-phase convergecast responses are
  // shipped but uncharged (docs/WIRE.md).
  EXPECT_GE(engine.loopback().bytes_shipped(), result.stats.bytes_on_wire);
  EXPECT_GT(engine.loopback().frames_shipped(), 0u);
}

/// Flips one payload byte in the first `corrupt` datagrams of `kind`.
class CorruptingTransport : public net::Transport {
 public:
  CorruptingTransport(net::MessageKind kind, int corrupt)
      : kind_(kind), corrupt_(corrupt) {}

  void Send(const net::Envelope& env,
            std::vector<uint8_t> datagram) override {
    if (env.kind == kind_ && corrupted_ < corrupt_ &&
        datagram.size() > wire::kFrameHeaderSize) {
      // The first payload byte is always a varint lead byte (zigzag r,
      // state count, answer count); the flip sets its continuation bit and
      // misaligns everything after it, so the decode must reject. A flip
      // in the middle of an f64 would decode fine — the frame format
      // detects structural corruption, not semantic (docs/WIRE.md).
      datagram[wire::kFrameHeaderSize] ^= 0xff;
      ++corrupted_;
    }
    Deliver(env, std::move(datagram));
  }

  int corrupted() const { return corrupted_; }

 private:
  const net::MessageKind kind_;
  const int corrupt_;
  int corrupted_ = 0;
};

/// Delivers bytes unchanged but swallows the first `n` datagrams whole
/// (never delivering is all a lossy wire does — the sender sees nothing).
class SwallowingTransport : public net::Transport {
 public:
  explicit SwallowingTransport(int n) : swallow_(n) {}
  void Send(const net::Envelope& env,
            std::vector<uint8_t> datagram) override {
    if (swallowed_ < swallow_) {
      ++swallowed_;
      return;
    }
    Deliver(env, std::move(datagram));
  }

 private:
  const int swallow_;
  int swallowed_ = 0;
};

template <typename Policy, typename Query>
void ExpectRecoversFromCorruption(net::MessageKind kind, const Query& q,
                                  RippleParam r) {
  Net net = MakeNet(40, 500, 2, 707);
  Engine<MidasOverlay, Policy> sync_engine(&net.overlay, Policy{});
  const auto want = sync_engine.Run({.initiator = 3, .query = q, .ripple = r});

  AsyncEngine<MidasOverlay, Policy> engine(&net.overlay, Policy{});
  CorruptingTransport corrupting(kind, 1);
  engine.SetTransport(&corrupting);
  const auto got = engine.Run({.initiator = 3, .query = q, .ripple = r});

  // The receiver rejected the corrupted frame; the retransmission (of the
  // byte-identical snapshot, now shipped clean) recovered the message, so
  // the answer is still exact and complete.
  EXPECT_EQ(corrupting.corrupted(), 1);
  EXPECT_GT(got.coverage.retries, 0u);
  EXPECT_TRUE(got.complete);
  ASSERT_EQ(got.answer.size(), want.answer.size());
  for (size_t i = 0; i < want.answer.size(); ++i) {
    EXPECT_EQ(got.answer[i].id, want.answer[i].id);
  }
}

TEST(TransportTest, ByteFlipInQueryIsRejectedAndRetransmitted) {
  const LinearScorer scorer({-0.5, -0.5});
  ExpectRecoversFromCorruption<TopKPolicy>(
      net::MessageKind::kQuery, TopKQuery{&scorer, 6}, RippleParam::Hops(2));
}

TEST(TransportTest, ByteFlipInResponseIsRejectedAndRetransmitted) {
  ExpectRecoversFromCorruption<SkylinePolicy>(
      net::MessageKind::kResponse, SkylineQuery{}, RippleParam::Slow());
}

TEST(TransportTest, ByteFlipInAnswerIsRejectedAndRetransmitted) {
  const LinearScorer scorer({-0.4, -0.6});
  ExpectRecoversFromCorruption<TopKPolicy>(
      net::MessageKind::kAnswer, TopKQuery{&scorer, 4}, RippleParam::Fast());
}

TEST(TransportTest, SwallowedDatagramRecoveredByTimers) {
  Net net = MakeNet(40, 500, 2, 709);
  const LinearScorer scorer({-0.5, -0.5});
  const TopKQuery q{&scorer, 6};
  Engine<MidasOverlay, TopKPolicy> sync_engine(&net.overlay, TopKPolicy{});
  const auto want = sync_engine.Run(
      {.initiator = 1, .query = q, .ripple = RippleParam::Hops(1)});

  AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  SwallowingTransport swallowing(2);
  engine.SetTransport(&swallowing);
  const auto got = engine.Run(
      {.initiator = 1, .query = q, .ripple = RippleParam::Hops(1)});
  // A fire-and-forget sender cannot see the swallow; the loss surfaces
  // as request timeouts whose retransmissions recover the run.
  EXPECT_GE(got.coverage.timeouts, 2u);
  EXPECT_GE(got.coverage.retries, 2u);
  EXPECT_TRUE(got.complete);
  ASSERT_EQ(got.answer.size(), want.answer.size());
  for (size_t i = 0; i < want.answer.size(); ++i) {
    EXPECT_EQ(got.answer[i].id, want.answer[i].id);
  }
}

/// Cuts the first `n` datagrams of `kind` down to `keep` bytes.
class TruncatingTransport : public net::Transport {
 public:
  TruncatingTransport(net::MessageKind kind, int n, size_t keep)
      : kind_(kind), truncate_(n), keep_(keep) {}

  void Send(const net::Envelope& env,
            std::vector<uint8_t> datagram) override {
    if (env.kind == kind_ && truncated_ < truncate_ &&
        datagram.size() > keep_) {
      datagram.resize(keep_);
      ++truncated_;
    }
    Deliver(env, std::move(datagram));
  }

  int truncated() const { return truncated_; }

 private:
  const net::MessageKind kind_;
  const int truncate_;
  const size_t keep_;
  int truncated_ = 0;
};

TEST(TransportTest, TruncationAndCorruptionSplitTheRejectCounters) {
  Net net = MakeNet(40, 500, 2, 715);
  const LinearScorer scorer({-0.5, -0.5});
  const TopKQuery q{&scorer, 6};
  obs::Registry::EnableGlobal(true);
  obs::Registry& reg = obs::Registry::Global();

  // A datagram cut mid-header counts as truncated, not rejected...
  {
    const uint64_t trunc0 = reg.GetCounter("net.frames_truncated").value();
    const uint64_t rej0 = reg.GetCounter("net.frames_rejected").value();
    AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
    TruncatingTransport truncating(net::MessageKind::kQuery, 1, /*keep=*/10);
    engine.SetTransport(&truncating);
    const auto got = engine.Run(
        {.initiator = 3, .query = q, .ripple = RippleParam::Hops(2)});
    EXPECT_EQ(truncating.truncated(), 1);
    EXPECT_TRUE(got.complete);  // the retransmission recovered it
    EXPECT_EQ(reg.GetCounter("net.frames_truncated").value(), trunc0 + 1);
    EXPECT_EQ(reg.GetCounter("net.frames_rejected").value(), rej0);
  }
  // ...while a payload byte flip under an intact header counts as
  // rejected, not truncated.
  {
    const uint64_t trunc0 = reg.GetCounter("net.frames_truncated").value();
    const uint64_t rej0 = reg.GetCounter("net.frames_rejected").value();
    AsyncEngine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
    CorruptingTransport corrupting(net::MessageKind::kQuery, 1);
    engine.SetTransport(&corrupting);
    const auto got = engine.Run(
        {.initiator = 3, .query = q, .ripple = RippleParam::Hops(2)});
    EXPECT_EQ(corrupting.corrupted(), 1);
    EXPECT_TRUE(got.complete);
    EXPECT_EQ(reg.GetCounter("net.frames_rejected").value(), rej0 + 1);
    EXPECT_EQ(reg.GetCounter("net.frames_truncated").value(), trunc0);
  }
  obs::Registry::EnableGlobal(false);
}

// --- Cross-engine byte parity ---------------------------------------------

template <typename Policy, typename Query>
void ExpectByteParity(const Net& net, const Query& q, RippleParam r) {
  Engine<MidasOverlay, Policy> sync_engine(&net.overlay, Policy{});
  AsyncEngine<MidasOverlay, Policy> async_engine(&net.overlay, Policy{});
  const auto sync =
      sync_engine.Run({.initiator = 2, .query = q, .ripple = r});
  const auto async =
      async_engine.Run({.initiator = 2, .query = q, .ripple = r});
  EXPECT_EQ(sync.stats.bytes_on_wire, async.stats.bytes_on_wire) << "r=" << r;
  EXPECT_GT(sync.stats.bytes_on_wire, 0u);
}

TEST(ByteParityTest, RecursiveAndAsyncChargeIdenticalBytes) {
  Net net = MakeNet(64, 800, 3, 711);
  const LinearScorer scorer({-0.5, -0.3, -0.2});
  for (const RippleParam r :
       {RippleParam::Fast(), RippleParam::Hops(2), RippleParam::Slow()}) {
    ExpectByteParity<TopKPolicy>(net, TopKQuery{&scorer, 8}, r);
    ExpectByteParity<SkylinePolicy>(net, SkylineQuery{}, r);
    ExpectByteParity<SkybandPolicy>(net, SkybandQuery{2, Norm::kL2}, r);
  }
}

}  // namespace
}  // namespace ripple
