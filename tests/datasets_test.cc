#include "data/datasets.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "store/local_algos.h"

namespace ripple {
namespace {

using data::MakeByName;

double Correlation(const TupleVec& ts, int d1, int d2) {
  double m1 = 0, m2 = 0;
  for (const Tuple& t : ts) {
    m1 += t.key[d1];
    m2 += t.key[d2];
  }
  m1 /= ts.size();
  m2 /= ts.size();
  double cov = 0, v1 = 0, v2 = 0;
  for (const Tuple& t : ts) {
    cov += (t.key[d1] - m1) * (t.key[d2] - m2);
    v1 += (t.key[d1] - m1) * (t.key[d1] - m1);
    v2 += (t.key[d2] - m2) * (t.key[d2] - m2);
  }
  return cov / std::sqrt(v1 * v2);
}

TEST(DatasetsTest, AllGeneratorsEmitValidTuples) {
  Rng rng(1);
  for (const char* name : {"uniform", "synth", "correlated",
                           "anticorrelated", "nba", "mirflickr"}) {
    Rng local = rng.Fork();
    const TupleVec ts = MakeByName(name, 500, 5, &local);
    ASSERT_EQ(ts.size(), 500u) << name;
    std::set<uint64_t> ids;
    for (const Tuple& t : ts) {
      EXPECT_EQ(t.key.dims(), 5) << name;
      for (int d = 0; d < 5; ++d) {
        EXPECT_GE(t.key[d], 0.0) << name;
        EXPECT_LE(t.key[d], 1.0) << name;
      }
      EXPECT_TRUE(ids.insert(t.id).second) << name;
    }
  }
}

TEST(DatasetsTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  const TupleVec ta = MakeByName("synth", 200, 3, &a);
  const TupleVec tb = MakeByName("synth", 200, 3, &b);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
}

TEST(DatasetsTest, CorrelatedHasHighCorrelation) {
  Rng rng(7);
  const TupleVec ts = data::MakeCorrelated(5000, 3, &rng);
  EXPECT_GT(Correlation(ts, 0, 1), 0.8);
  EXPECT_GT(Correlation(ts, 1, 2), 0.8);
}

TEST(DatasetsTest, AnticorrelatedHasNegativeCorrelation) {
  Rng rng(11);
  const TupleVec ts = data::MakeAnticorrelated(5000, 2, &rng);
  EXPECT_LT(Correlation(ts, 0, 1), -0.3);
}

TEST(DatasetsTest, SkylineSizesOrderAsExpected) {
  // Classic skyline workload fact: |sky(correlated)| << |sky(uniform)| <<
  // |sky(anticorrelated)|.
  Rng rng(13);
  const size_t n = 3000;
  const size_t s_cor = ComputeSkyline(data::MakeCorrelated(n, 3, &rng)).size();
  const size_t s_uni = ComputeSkyline(data::MakeUniform(n, 3, &rng)).size();
  const size_t s_ant =
      ComputeSkyline(data::MakeAnticorrelated(n, 3, &rng)).size();
  EXPECT_LT(s_cor, s_uni);
  EXPECT_LT(s_uni, s_ant);
}

TEST(DatasetsTest, NbaLikeIsCorrelatedWithSmallSkyline) {
  Rng rng(17);
  const TupleVec ts = data::MakeNbaLike(22000, 6, &rng);
  // Stats couple through the latent skill: positive correlation.
  EXPECT_GT(Correlation(ts, 0, 1), 0.25);
  EXPECT_GT(Correlation(ts, 0, 5), 0.35);
  // A small elite: the skyline is a tiny fraction of the dataset, as with
  // the real NBA data.
  const size_t sky = ComputeSkyline(ts).size();
  EXPECT_LT(sky, ts.size() / 20);
  EXPECT_GT(sky, 5u);
}

TEST(DatasetsTest, NbaLikeHasEliteTail) {
  Rng rng(19);
  const TupleVec ts = data::MakeNbaLike(22000, 6, &rng);
  // Count "stars": tuples whose average oriented stat is below 0.25
  // (remember 0 = best). They must exist but be rare.
  size_t stars = 0;
  for (const Tuple& t : ts) {
    double avg = 0;
    for (int d = 0; d < 6; ++d) avg += t.key[d];
    if (avg / 6 < 0.25) ++stars;
  }
  EXPECT_GT(stars, 10u);
  EXPECT_LT(stars, ts.size() / 10);
}

TEST(DatasetsTest, MirflickrLikeLiesOnSimplex) {
  Rng rng(23);
  const TupleVec ts = data::MakeMirflickrLike(2000, 5, &rng);
  for (const Tuple& t : ts) {
    double sum = 0;
    for (int d = 0; d < 5; ++d) sum += t.key[d];
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DatasetsTest, MirflickrLikeIsClustered) {
  // Clustered data: the average L1 distance to the nearest of a sample
  // must be clearly below the all-pairs average.
  Rng rng(29);
  const TupleVec ts = data::MakeMirflickrLike(1000, 5, &rng);
  double all_pairs = 0;
  size_t pairs = 0;
  double nearest_sum = 0;
  for (size_t i = 0; i < 200; ++i) {
    double nearest = 1e18;
    for (size_t j = 0; j < ts.size(); ++j) {
      if (i == j) continue;
      const double d = L1Distance(ts[i].key, ts[j].key);
      nearest = std::min(nearest, d);
      if (j < 200) {
        all_pairs += d;
        ++pairs;
      }
    }
    nearest_sum += nearest;
  }
  EXPECT_LT(nearest_sum / 200, 0.3 * (all_pairs / pairs));
}

TEST(DatasetsTest, SynthClusterCountScalesWithN) {
  Rng rng(31);
  // Just exercise the scaling path: n/20 centers.
  const TupleVec ts = MakeByName("synth", 2000, 4, &rng);
  EXPECT_EQ(ts.size(), 2000u);
}

}  // namespace
}  // namespace ripple
