// The reuse layer (ctest label `cache`): RippleParam::Auto parsing, key
// normalization, the LRU/TTL answer cache and bound index, the adaptive
// controller's determinism, and batched execution returning answers
// byte-identical to cold runs across both engines (docs/CACHING.md).

#include "cache/query_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "cache/adaptive.h"
#include "cache/normalize.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "exec/batch.h"
#include "exec/executor.h"
#include "exec/workload.h"
#include "overlay/midas/midas.h"
#include "queries/topk_driver.h"
#include "ripple/api.h"
#include "ripple/engine.h"
#include "sim/async_engine.h"

namespace ripple {
namespace {

// --- RippleParam::Auto and the Parse/ToString round trip ----------------------

TEST(RippleParamTest, ParseToStringRoundTrip) {
  const RippleParam params[] = {
      RippleParam::Fast(),   RippleParam::Slow(), RippleParam::Auto(),
      RippleParam::Hops(0),  RippleParam::Hops(1), RippleParam::Hops(3),
      RippleParam::Hops(17),
  };
  for (const RippleParam p : params) {
    const Result<RippleParam> back = RippleParam::Parse(p.ToString());
    ASSERT_TRUE(back.ok()) << p.ToString();
    EXPECT_EQ(*back, p) << p.ToString();
  }
}

TEST(RippleParamTest, RejectsGarbage) {
  for (const char* bad : {"auto2", "-3", "", "Fast", "3x", " slow", "1.5"}) {
    EXPECT_FALSE(RippleParam::Parse(bad).ok()) << "'" << bad << "'";
  }
}

TEST(RippleParamTest, AutoIsDistinctAndDegradesToFast) {
  const RippleParam a = RippleParam::Auto();
  EXPECT_TRUE(a.is_auto());
  EXPECT_EQ(a.ToString(), "auto");
  EXPECT_NE(a, RippleParam::Fast());
  EXPECT_NE(a, RippleParam::Slow());
  // An engine handed an unresolved Auto must behave, not crash: hops()
  // degrades to the fast extreme (0 slow hops).
  EXPECT_EQ(a.hops(), 0);
}

// --- Key normalization --------------------------------------------------------

TEST(NormalizeTest, LinearScorersShareKeysUpToScale) {
  const LinearScorer w({-0.5, -0.3, -0.2});
  const LinearScorer w2({-1.25, -0.75, -0.5});  // 2.5x the weights
  const LinearScorer other({-0.2, -0.5, -0.3});
  double s1 = 0.0, s2 = 0.0, s3 = 0.0;
  const std::string k1 = cache::NormalizeScorer(w, &s1);
  const std::string k2 = cache::NormalizeScorer(w2, &s2);
  const std::string k3 = cache::NormalizeScorer(other, &s3);
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_NEAR(s2 / s1, 2.5, 1e-12);
}

TEST(NormalizeTest, ApproximateTopKIsUncacheable) {
  const LinearScorer w({-0.5, -0.5});
  TopKQuery exact{&w, 10};
  TopKQuery approx{&w, 10, 0.25};
  EXPECT_FALSE(cache::TopKAnswerKey(exact).empty());
  EXPECT_TRUE(cache::TopKAnswerKey(approx).empty());
}

TEST(NormalizeTest, BoundKeyIgnoresK) {
  const LinearScorer w({-0.5, -0.5});
  TopKQuery q10{&w, 10};
  TopKQuery q5{&w, 5};
  double s10 = 0.0, s5 = 0.0;
  EXPECT_EQ(cache::TopKBoundKey(q10, &s10), cache::TopKBoundKey(q5, &s5));
  EXPECT_NE(cache::TopKAnswerKey(q10), cache::TopKAnswerKey(q5));
}

TEST(NormalizeTest, LoosenBoundNeverRaises) {
  for (const double tau : {1.0, -1.0, 1e-9, -273.75, 0.0, 1e300}) {
    EXPECT_LT(cache::LoosenBound(tau), tau) << tau;
  }
}

// --- QueryCache ---------------------------------------------------------------

Tuple MakeTuple(uint64_t id) {
  Tuple t;
  t.id = id;
  t.key = Point{0.1, 0.2};
  return t;
}

TEST(QueryCacheTest, LruEvictsOldest) {
  cache::QueryCache c(cache::CacheOptions{2, 0});
  c.Insert("a", {MakeTuple(1)}, {});
  c.Insert("b", {MakeTuple(2)}, {});
  ASSERT_NE(c.Lookup("a"), nullptr);  // bumps "a" ahead of "b"
  c.Insert("c", {MakeTuple(3)}, {});  // evicts the LRU entry: "b"
  EXPECT_EQ(c.Lookup("b"), nullptr);
  ASSERT_NE(c.Lookup("a"), nullptr);
  ASSERT_NE(c.Lookup("c"), nullptr);
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(QueryCacheTest, TtlExpiresByLogicalTicks) {
  cache::QueryCache c(cache::CacheOptions{8, 2});
  c.Insert("a", {MakeTuple(1)}, {});
  c.Tick();
  EXPECT_NE(c.Lookup("a"), nullptr);
  c.Tick();
  c.Tick();
  EXPECT_EQ(c.Lookup("a"), nullptr);  // 3 ticks > ttl 2: expired
  EXPECT_EQ(c.stats().expirations, 1u);
}

TEST(QueryCacheTest, HitsCreditSavedBytes) {
  cache::QueryCache c;
  QueryStats cold;
  cold.bytes_on_wire = 1234;
  c.Insert("a", {MakeTuple(1)}, cold);
  ASSERT_NE(c.Lookup("a"), nullptr);
  ASSERT_NE(c.Lookup("a"), nullptr);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().bytes_saved, 2468u);
}

TEST(QueryCacheTest, BoundKeepsStrongestClaim) {
  cache::QueryCache c;
  c.InsertBound("s", 10, -0.5);
  c.InsertBound("s", 5, -0.1);  // weaker m: ignored
  ASSERT_NE(c.LookupBound("s"), nullptr);
  EXPECT_EQ(c.LookupBound("s")->m, 10u);
  c.InsertBound("s", 10, -0.3);  // same m, tighter tau: wins
  EXPECT_DOUBLE_EQ(c.LookupBound("s")->tau_norm, -0.3);
}

TEST(QueryCacheTest, InvalidateAllDropsEverything) {
  cache::QueryCache c;
  c.Insert("a", {MakeTuple(1)}, {});
  c.InsertBound("s", 10, -0.5);
  c.InvalidateAll();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.bound_size(), 0u);
  EXPECT_EQ(c.Lookup("a"), nullptr);
  EXPECT_EQ(c.LookupBound("s"), nullptr);
  EXPECT_GE(c.stats().invalidations, 1u);
}

// --- Batched execution over a real overlay ------------------------------------

struct Net {
  MidasOverlay overlay;
  TupleVec all;
};

Net MakeNet(size_t peers, size_t tuples, int dims, uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.split_rule = MidasSplitRule::kDataMedian;
  Net net{MidasOverlay(opt), {}};
  Rng rng(seed ^ 0xabc);
  net.all = data::MakeUniform(tuples, dims, &rng);
  for (const Tuple& t : net.all) net.overlay.InsertTuple(t);
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  return net;
}

bool SameAnswer(const TupleVec& a, const TupleVec& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id) return false;
  }
  return true;
}

/// A locality workload: four groups, four members each, mixed kinds.
std::vector<exec::WorkloadItem> LocalityItems() {
  std::vector<exec::WorkloadItem> items;
  for (int g = 0; g < 4; ++g) {
    exec::WorkloadItem item;
    switch (g % 4) {
      case 0: item.kind = exec::WorkloadItem::Kind::kTopK; item.k = 8; break;
      case 1: item.kind = exec::WorkloadItem::Kind::kSkyline; break;
      case 2:
        item.kind = exec::WorkloadItem::Kind::kRange;
        item.radius = 0.2;
        break;
      default:
        item.kind = exec::WorkloadItem::Kind::kSkyband;
        item.band = 2;
        break;
    }
    item.group = g;
    for (int rep = 0; rep < 4; ++rep) items.push_back(item);
  }
  return items;
}

TEST(BatchTest, CacheHitsAreByteIdenticalToColdRunsBothEngines) {
  Net net = MakeNet(64, 1500, 3, 811);
  const std::vector<exec::WorkloadItem> items = LocalityItems();
  for (const bool async : {false, true}) {
    exec::CompileOptions copts;
    copts.seed = 11;
    copts.async = async;
    exec::ExecutorOptions eopts;
    eopts.threads = 2;
    eopts.queue_capacity = 8;

    // Cold: the legacy unbatched path.
    exec::Executor cold_exec(eopts);
    exec::CompiledWorkload compiled =
        exec::CompileWorkload(net.overlay, items, copts);
    const exec::WorkloadResult cold =
        cold_exec.Run(compiled.jobs, net.overlay.NumPeers());

    // Warm: two batched passes over one cache — pass 2 is pure hits.
    cache::QueryCache qcache;
    exec::Executor warm_exec(eopts);
    exec::BatchOptions bopts;
    bopts.cache = &qcache;
    for (int pass = 0; pass < 2; ++pass) {
      exec::BatchPlan plan;
      const exec::WorkloadResult warm = exec::RunBatchedWorkload(
          warm_exec, net.overlay, items, copts, bopts, &plan);
      ASSERT_EQ(warm.queries.size(), cold.queries.size());
      for (size_t i = 0; i < cold.queries.size(); ++i) {
        EXPECT_TRUE(
            SameAnswer(warm.queries[i].answer, cold.queries[i].answer))
            << "async=" << async << " pass=" << pass << " item=" << i;
        EXPECT_TRUE(warm.queries[i].complete);
      }
      if (pass == 1) {
        EXPECT_EQ(plan.hits, items.size());
        EXPECT_EQ(plan.leads, 0u);
        EXPECT_EQ(warm.total_stats.bytes_on_wire, 0u);
      }
    }
    EXPECT_GT(qcache.stats().hits, 0u);
    EXPECT_GT(qcache.stats().bytes_saved, 0u);
  }
}

TEST(BatchTest, MergedFollowersCopyLeaderWithZeroCost) {
  Net net = MakeNet(48, 1000, 2, 823);
  const std::vector<exec::WorkloadItem> items = LocalityItems();
  exec::CompileOptions copts;
  copts.seed = 5;
  exec::ExecutorOptions eopts;
  eopts.threads = 2;
  eopts.queue_capacity = 8;
  exec::Executor executor(eopts);
  cache::QueryCache qcache;
  exec::BatchOptions bopts;
  bopts.cache = &qcache;
  exec::BatchPlan plan;
  const exec::WorkloadResult result = exec::RunBatchedWorkload(
      executor, net.overlay, items, copts, bopts, &plan);
  ASSERT_EQ(plan.slots.size(), items.size());
  EXPECT_GT(plan.follows, 0u);
  EXPECT_EQ(plan.leads + plan.follows + plan.hits, items.size());
  EXPECT_EQ(result.completed, items.size());
  size_t followers_seen = 0;
  for (size_t i = 0; i < plan.slots.size(); ++i) {
    const exec::BatchSlot& slot = plan.slots[i];
    if (slot.role != exec::BatchSlot::Role::kFollow) continue;
    ++followers_seen;
    const exec::QueryOutcome& follow = result.queries[i];
    const exec::QueryOutcome& lead = result.queries[slot.leader];
    EXPECT_TRUE(SameAnswer(follow.answer, lead.answer));
    EXPECT_EQ(follow.worker, -1);
    EXPECT_EQ(follow.stats.messages, 0u);
    EXPECT_EQ(follow.stats.bytes_on_wire, 0u);
  }
  EXPECT_EQ(followers_seen, plan.follows);
}

TEST(BatchTest, BoundSeededTopKCrossValidates) {
  Net net = MakeNet(96, 1200, 3, 901);
  LinearScorer scorer({-0.5, -0.3, -0.2});
  TopKQuery q{&scorer, 10};
  Rng rng(3);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  QueryRequest<TopKPolicy> cold_req;
  cold_req.initiator = initiator;
  cold_req.query = q;
  cold_req.ripple = RippleParam::Hops(2);
  Engine<MidasOverlay, TopKPolicy> sync_engine(&net.overlay, TopKPolicy{});
  AsyncEngine<MidasOverlay, TopKPolicy> async_engine(&net.overlay,
                                                     TopKPolicy{});
  const auto cold = SeededTopK(net.overlay, sync_engine, cold_req);
  ASSERT_TRUE(cold.complete);
  ASSERT_EQ(cold.answer.size(), q.k);

  // Rebuild the bound the cache would store: normalize the witnessed
  // threshold out, rescale it back, loosen. The seeded run must return
  // the byte-identical answer on BOTH engines, for strictly less wire.
  double scale = 1.0;
  (void)cache::TopKBoundKey(q, &scale);
  double tau = std::numeric_limits<double>::infinity();
  for (const Tuple& t : cold.answer) {
    tau = std::min(tau, scorer.Score(t.key));
  }
  QueryRequest<TopKPolicy> seeded = cold_req;
  seeded.initial_state =
      TopKState{cold.answer.size(), cache::LoosenBound((tau / scale) * scale)};

  const auto warm_sync = SeededTopK(net.overlay, sync_engine, seeded);
  const auto warm_async = SeededTopK(net.overlay, async_engine, seeded);
  ASSERT_TRUE(warm_sync.complete);
  EXPECT_TRUE(SameAnswer(warm_sync.answer, cold.answer));
  EXPECT_TRUE(SameAnswer(warm_async.answer, cold.answer));
  // CrossValidate: both engines do identical work on the seeded request.
  EXPECT_EQ(warm_async.stats.peers_visited, warm_sync.stats.peers_visited);
  EXPECT_EQ(warm_async.stats.messages, warm_sync.stats.messages);
  EXPECT_EQ(warm_async.stats.tuples_shipped, warm_sync.stats.tuples_shipped);
  EXPECT_EQ(warm_async.stats.bytes_on_wire, warm_sync.stats.bytes_on_wire);
  // The pre-hop bound can only help.
  EXPECT_LE(warm_sync.stats.bytes_on_wire, cold.stats.bytes_on_wire);
  EXPECT_LE(warm_sync.stats.tuples_shipped, cold.stats.tuples_shipped);
}

TEST(BatchTest, ChurnInvalidationRecomputesFromScratch) {
  Net net = MakeNet(48, 1000, 2, 829);
  const std::vector<exec::WorkloadItem> items = LocalityItems();
  exec::CompileOptions copts;
  copts.seed = 17;
  exec::ExecutorOptions eopts;
  eopts.threads = 1;
  eopts.queue_capacity = 8;
  exec::Executor executor(eopts);
  cache::QueryCache qcache;
  exec::BatchOptions bopts;
  bopts.cache = &qcache;
  (void)exec::RunBatchedWorkload(executor, net.overlay, items, copts, bopts);
  ASSERT_GT(qcache.size(), 0u);

  // Injected churn: a peer joins, redistributing tuples. Cached answers
  // may now be stale — the owner's contract is InvalidateAll, after
  // which nothing hits and every query recomputes against the new
  // topology.
  net.overlay.Join();
  qcache.InvalidateAll();
  EXPECT_EQ(qcache.size(), 0u);
  exec::BatchPlan plan;
  const exec::WorkloadResult fresh = exec::RunBatchedWorkload(
      executor, net.overlay, items, copts, bopts, &plan);
  EXPECT_EQ(plan.hits, 0u);
  EXPECT_EQ(fresh.completed, items.size());
  for (const exec::QueryOutcome& out : fresh.queries) {
    EXPECT_TRUE(out.complete);
  }
}

// --- The adaptive controller --------------------------------------------------

TEST(AdaptiveTest, DepthHintGrowsWithPeers) {
  EXPECT_EQ(cache::DepthHint(1), 0);
  EXPECT_EQ(cache::DepthHint(2), 1);
  EXPECT_EQ(cache::DepthHint(64), 6);
  EXPECT_EQ(cache::DepthHint(65), 7);
}

TEST(AdaptiveTest, ChoiceRespondsToObservedPressure) {
  cache::AdaptiveController c(12);  // depth 12 -> r0 = 4
  const RippleParam r0 = c.Choose();
  EXPECT_EQ(r0, RippleParam::Hops(4));
  // Broadcast-heavy window: many messages per latency hop -> raise r.
  QueryStats flood;
  flood.latency_hops = 2;
  flood.messages = 40;
  for (int i = 0; i < 8; ++i) c.Observe(flood);
  EXPECT_EQ(c.Choose(), RippleParam::Hops(5));
  // Calm window: pruning works -> drift back down toward fast.
  QueryStats calm;
  calm.latency_hops = 10;
  calm.messages = 10;
  for (int i = 0; i < 16; ++i) c.Observe(calm);
  EXPECT_EQ(c.Choose(), RippleParam::Hops(3));
}

TEST(AdaptiveTest, LinkBiasPrefersColdPeers) {
  cache::AdaptiveController c(8);
  c.ObservePeerLoad({10, 0, 5});
  EXPECT_GT(c.LinkBias(1), c.LinkBias(0));
  EXPECT_GT(c.LinkBias(1), c.LinkBias(2));
  EXPECT_EQ(c.LinkBias(99), 0.0);  // unknown peer: neutral
}

TEST(AdaptiveTest, AutoWorkloadDeterministicAcrossRunsAndThreads) {
  Net net = MakeNet(64, 1500, 3, 907);
  std::vector<exec::WorkloadItem> items = LocalityItems();
  for (exec::WorkloadItem& item : items) item.ripple = RippleParam::Auto();

  std::vector<TupleVec> golden_answers;
  QueryStats golden_stats;
  std::vector<RippleParam> golden_resolved;
  bool first = true;
  for (const int threads : {1, 2, 4}) {
    for (int run = 0; run < 3; ++run) {
      exec::CompileOptions copts;
      copts.seed = 23;
      exec::ExecutorOptions eopts;
      eopts.threads = threads;
      eopts.queue_capacity = 8;
      exec::Executor executor(eopts);
      cache::AdaptiveController controller(
          cache::DepthHint(net.overlay.NumPeers()));
      exec::BatchOptions bopts;
      bopts.controller = &controller;
      bopts.merge_duplicates = false;  // every auto item runs
      exec::BatchPlan plan;
      const exec::WorkloadResult result = exec::RunBatchedWorkload(
          executor, net.overlay, items, copts, bopts, &plan);
      ASSERT_EQ(result.completed, items.size());
      std::vector<RippleParam> resolved;
      for (const exec::WorkloadItem& item : plan.items) {
        EXPECT_FALSE(item.ripple.is_auto());
        resolved.push_back(item.ripple);
      }
      if (first) {
        first = false;
        for (const exec::QueryOutcome& out : result.queries) {
          golden_answers.push_back(out.answer);
        }
        golden_stats = result.total_stats;
        golden_resolved = resolved;
        continue;
      }
      ASSERT_EQ(resolved.size(), golden_resolved.size());
      for (size_t i = 0; i < resolved.size(); ++i) {
        EXPECT_EQ(resolved[i], golden_resolved[i]) << i;
      }
      ASSERT_EQ(result.queries.size(), golden_answers.size());
      for (size_t i = 0; i < golden_answers.size(); ++i) {
        EXPECT_TRUE(SameAnswer(result.queries[i].answer, golden_answers[i]))
            << "threads=" << threads << " run=" << run << " item=" << i;
      }
      EXPECT_EQ(result.total_stats.messages, golden_stats.messages);
      EXPECT_EQ(result.total_stats.bytes_on_wire, golden_stats.bytes_on_wire);
      EXPECT_EQ(result.total_stats.peers_visited, golden_stats.peers_visited);
    }
  }
}

TEST(AdaptiveTest, LinkBiasNeverChangesAnswers) {
  Net net = MakeNet(64, 1200, 3, 911);
  LinearScorer scorer({-0.4, -0.4, -0.2});
  TopKQuery q{&scorer, 10};
  Rng rng(9);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  QueryRequest<TopKPolicy> req;
  req.initiator = initiator;
  req.query = q;
  req.ripple = RippleParam::Slow();

  Engine<MidasOverlay, TopKPolicy> plain(&net.overlay, TopKPolicy{});
  const auto baseline = SeededTopK(net.overlay, plain, req);

  cache::AdaptiveController controller(6);
  controller.ObservePeerLoad(
      std::vector<uint64_t>(net.overlay.NumPeers(), 3));
  Engine<MidasOverlay, TopKPolicy> biased(&net.overlay, TopKPolicy{});
  biased.SetLinkBias(
      [&controller](PeerId p) { return controller.LinkBias(p); });
  const auto steered = SeededTopK(net.overlay, biased, req);
  EXPECT_TRUE(SameAnswer(steered.answer, baseline.answer));
  EXPECT_EQ(steered.stats.peers_visited, baseline.stats.peers_visited);
}

}  // namespace
}  // namespace ripple
