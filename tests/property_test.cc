// Property-style parameterized sweeps: distributed answers must equal
// centralized oracles for every (dataset, dimensionality, overlay shape,
// ripple parameter) combination, and structural invariants must hold for
// every overlay seed.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/midas/midas.h"
#include "queries/skyline_driver.h"
#include "queries/topk_driver.h"
#include "store/local_algos.h"

namespace ripple {
namespace {

// --- Distributed == centralized across the configuration grid ---------------

using GridParam = std::tuple<std::string /*dataset*/, int /*dims*/,
                             RippleParam /*ripple*/, bool /*median splits*/>;

class AnswerEquivalenceTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(AnswerEquivalenceTest, TopKAndSkylineMatchOracle) {
  const auto& [dataset, dims, r, median] = GetParam();
  Rng data_rng(static_cast<uint64_t>(dims) * 1000 + r.hops());
  const TupleVec tuples = data::MakeByName(dataset, 600, dims, &data_rng);

  MidasOptions opt;
  opt.dims = dims;
  opt.seed = static_cast<uint64_t>(dims) * 77 + r.hops();
  opt.split_rule =
      median ? MidasSplitRule::kDataMedian : MidasSplitRule::kMidpoint;
  MidasOverlay overlay(opt);
  for (const Tuple& t : tuples) overlay.InsertTuple(t);
  while (overlay.NumPeers() < 96) overlay.Join();
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();

  Rng rng(5);
  // Top-k.
  std::vector<double> weights(dims);
  for (int d = 0; d < dims; ++d) weights[d] = -(1.0 + d) / dims;
  LinearScorer scorer(weights);
  TopKQuery q{&scorer, 10};
  const TupleVec want_topk = SelectTopK(
      tuples, [&](const Point& p) { return scorer.Score(p); }, q.k);
  Engine<MidasOverlay, TopKPolicy> topk_engine(&overlay, TopKPolicy{});
  const auto topk = SeededTopK(overlay, topk_engine, {.initiator = overlay.RandomPeer(&rng), .query = q, .ripple = r});
  ASSERT_EQ(topk.answer.size(), want_topk.size());
  for (size_t i = 0; i < want_topk.size(); ++i) {
    EXPECT_EQ(topk.answer[i].id, want_topk[i].id) << "top-k rank " << i;
  }

  // Skyline.
  TupleVec want_sky = ComputeSkyline(tuples);
  Engine<MidasOverlay, SkylinePolicy> sky_engine(&overlay, SkylinePolicy{});
  auto sky = SeededSkyline(overlay, sky_engine, {.initiator = overlay.RandomPeer(&rng), .query = SkylineQuery{}, .ripple = r});
  std::sort(sky.answer.begin(), sky.answer.end(), TupleIdLess());
  ASSERT_EQ(sky.answer.size(), want_sky.size());
  for (size_t i = 0; i < want_sky.size(); ++i) {
    EXPECT_EQ(sky.answer[i].id, want_sky[i].id) << "skyline member " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnswerEquivalenceTest,
    ::testing::Combine(
        ::testing::Values("uniform", "synth", "correlated", "anticorrelated",
                          "nba"),
        ::testing::Values(2, 4, 6),
        ::testing::Values(RippleParam::Fast(), RippleParam::Hops(2),
                          RippleParam::Slow()),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return std::get<0>(info.param) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::get<2>(info.param).ToString() +
             (std::get<3>(info.param) ? "_median" : "_midpoint");
    });

// --- Overlay invariants across seeds -----------------------------------------

class MidasSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MidasSeedTest, InvariantsHoldThroughChurn) {
  MidasOptions opt;
  opt.dims = 3;
  opt.seed = GetParam();
  opt.split_rule = MidasSplitRule::kDataMedian;
  opt.border_pattern_links = (GetParam() % 2) == 0;
  MidasOverlay overlay(opt);
  Rng rng(GetParam() * 3 + 1);
  for (uint64_t i = 0; i < 400; ++i) {
    overlay.InsertTuple(Tuple{i, Point{rng.UniformDouble(),
                                       rng.UniformDouble(),
                                       rng.UniformDouble()}});
  }
  while (overlay.NumPeers() < 80) overlay.Join();
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
  Rng churn(GetParam() * 7 + 3);
  while (overlay.NumPeers() > 20) {
    ASSERT_TRUE(overlay.LeaveRandom(&churn).ok());
  }
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
  while (overlay.NumPeers() < 50) overlay.Join();
  ASSERT_TRUE(overlay.Validate().ok()) << overlay.Validate().ToString();
  EXPECT_EQ(overlay.TotalTuples(), 400u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MidasSeedTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

// --- State soundness under random merges -------------------------------------

class TopKStateTest : public ::testing::TestWithParam<int> {};

TEST_P(TopKStateTest, MergedStatesRemainTrueClaims) {
  // The Algorithm 7 merge is sound for claims about DISJOINT tuple sets —
  // exactly what the engine feeds it (states describe disjoint subtrees /
  // local stores). Partition a ground score multiset into random groups,
  // let each group claim (its size, its minimum), and check every merge
  // of such claims stays a true statement about the ground set.
  Rng rng(GetParam());
  std::vector<double> scores;
  for (int i = 0; i < 200; ++i) scores.push_back(rng.UniformDouble());
  const size_t k = 10;
  TopKPolicy policy;
  TopKQuery q{nullptr, k};

  auto truthful = [&](const TopKState& s) {
    if (s.m == 0) return true;
    size_t count = 0;
    for (double v : scores) {
      if (v >= s.tau) ++count;
    }
    return count >= s.m;
  };
  // Disjoint claims: deal scores into 12 random groups.
  std::vector<std::vector<double>> groups(12);
  for (double v : scores) groups[rng.UniformU64(groups.size())].push_back(v);
  std::vector<TopKState> claims;
  for (const auto& g : groups) {
    if (g.empty()) continue;
    claims.push_back(
        TopKState{g.size(), *std::min_element(g.begin(), g.end())});
    ASSERT_TRUE(truthful(claims.back()));
  }
  TopKState merged = claims[0];
  for (size_t i = 1; i < claims.size(); ++i) {
    policy.MergeLocalStates(q, &merged, {claims[i]});
    EXPECT_TRUE(truthful(merged)) << "after merge " << i;
  }
  // With all 200 scores witnessed, the merge must guarantee k of them.
  EXPECT_GE(merged.m, k);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKStateTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace ripple
