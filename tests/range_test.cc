#include "queries/range.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/chord/chord.h"
#include "overlay/midas/midas.h"
#include "queries/skyline_driver.h"
#include "ripple/engine.h"
#include "store/local_algos.h"

namespace ripple {
namespace {

struct Net {
  MidasOverlay overlay;
  TupleVec all;
};

Net MakeNet(size_t peers, size_t tuples, int dims, uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  Net net{MidasOverlay(opt), {}};
  Rng rng(seed ^ 0xdeadbeef);
  net.all = data::MakeUniform(tuples, dims, &rng);
  for (const Tuple& t : net.all) net.overlay.InsertTuple(t);
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  return net;
}

TupleVec OracleRange(const TupleVec& all, const RangeQuery& q) {
  TupleVec out;
  for (const Tuple& t : all) {
    if (q.Matches(t.key)) out.push_back(t);
  }
  std::sort(out.begin(), out.end(), TupleIdLess());
  return out;
}

TEST(RangeTest, MatchesOracleAcrossRadiiAndModes) {
  Net net = MakeNet(96, 1200, 3, 501);
  Engine<MidasOverlay, RangePolicy> engine(&net.overlay, RangePolicy{});
  Rng rng(7);
  for (double radius : {0.05, 0.15, 0.4}) {
    for (const RippleParam r : {RippleParam::Fast(), RippleParam::Slow()}) {
      RangeQuery q{Point{rng.UniformDouble(), rng.UniformDouble(),
                         rng.UniformDouble()},
                   radius, Norm::kL2};
      const TupleVec want = OracleRange(net.all, q);
      const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q, .ripple = r});
      ASSERT_EQ(result.answer.size(), want.size())
          << "radius=" << radius << " r=" << r;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(result.answer[i].id, want[i].id);
      }
    }
  }
}

TEST(RangeTest, SmallRadiusVisitsFewPeers) {
  Net net = MakeNet(256, 3000, 3, 503);
  Engine<MidasOverlay, RangePolicy> engine(&net.overlay, RangePolicy{});
  Rng rng(11);
  RangeQuery q{Point{0.5, 0.5, 0.5}, 0.05, Norm::kL2};
  const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q});
  // The explicit search area keeps the visit set near the ball's zones.
  EXPECT_LT(result.stats.peers_visited, net.overlay.NumPeers() / 4);
}

TEST(RangeTest, ZeroRadiusFindsExactPoint) {
  Net net = MakeNet(32, 500, 2, 507);
  Engine<MidasOverlay, RangePolicy> engine(&net.overlay, RangePolicy{});
  Rng rng(13);
  const Tuple& target = net.all[42];
  RangeQuery q{target.key, 0.0, Norm::kL2};
  const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q});
  ASSERT_GE(result.answer.size(), 1u);
  EXPECT_EQ(result.answer[0].id, target.id);
}

TEST(RangeTest, L1AndLInfNorms) {
  Net net = MakeNet(64, 800, 3, 509);
  Engine<MidasOverlay, RangePolicy> engine(&net.overlay, RangePolicy{});
  Rng rng(17);
  for (Norm norm : {Norm::kL1, Norm::kLInf}) {
    RangeQuery q{Point{0.3, 0.6, 0.4}, 0.2, norm};
    const TupleVec want = OracleRange(net.all, q);
    const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q});
    ASSERT_EQ(result.answer.size(), want.size());
  }
}

TEST(RangeTest, WorksOverChord) {
  ChordOverlay overlay(48, ChordOptions{.dims = 2, .seed = 511});
  Rng rng(19);
  const TupleVec all = data::MakeUniform(600, 2, &rng);
  for (const Tuple& t : all) overlay.InsertTuple(t);
  Engine<ChordOverlay, RangePolicy> engine(&overlay, RangePolicy{});
  RangeQuery q{Point{0.5, 0.5}, 0.2, Norm::kL2};
  const TupleVec want = OracleRange(all, q);
  const auto result = engine.Run({.initiator = overlay.RandomPeer(&rng), .query = q});
  ASSERT_EQ(result.answer.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(result.answer[i].id, want[i].id);
  }
}

// --- Constrained skylines -----------------------------------------------------

TEST(ConstrainedSkylineTest, MatchesConstrainedOracle) {
  Net net = MakeNet(96, 1500, 3, 513);
  Engine<MidasOverlay, SkylinePolicy> engine(&net.overlay, SkylinePolicy{});
  Rng rng(23);
  SkylineQuery q;
  q.constraint = Rect(Point{0.3, 0.3, 0.3}, Point{0.8, 0.8, 0.8});
  // Oracle: skyline over the tuples inside the box.
  TupleVec inside;
  for (const Tuple& t : net.all) {
    if (q.constraint->Contains(t.key)) inside.push_back(t);
  }
  const TupleVec want = ComputeSkyline(inside);
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Slow()}) {
    auto result = SeededSkyline(net.overlay, engine, {.initiator = net.overlay.RandomPeer(&rng), .query = q, .ripple = r});
    std::sort(result.answer.begin(), result.answer.end(), TupleIdLess());
    ASSERT_EQ(result.answer.size(), want.size()) << "r=" << r;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(result.answer[i].id, want[i].id);
    }
  }
}

TEST(ConstrainedSkylineTest, ConstraintPrunesVisits) {
  Net net = MakeNet(256, 3000, 3, 517);
  Engine<MidasOverlay, SkylinePolicy> engine(&net.overlay, SkylinePolicy{});
  Rng rng(29);
  SkylineQuery unconstrained;
  SkylineQuery constrained;
  constrained.constraint =
      Rect(Point{0.4, 0.4, 0.4}, Point{0.6, 0.6, 0.6});
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  const auto full = SeededSkyline(net.overlay, engine, {.initiator = initiator, .query = unconstrained, .ripple = RippleParam::Fast()});
  const auto boxed = SeededSkyline(net.overlay, engine, {.initiator = initiator, .query = constrained, .ripple = RippleParam::Fast()});
  EXPECT_LT(boxed.stats.peers_visited, full.stats.peers_visited + 64);
}

TEST(ConstrainedSkylineTest, EmptyConstraintYieldsEmptySkyline) {
  Net net = MakeNet(32, 400, 2, 519);
  Engine<MidasOverlay, SkylinePolicy> engine(&net.overlay, SkylinePolicy{});
  Rng rng(31);
  SkylineQuery q;
  // A box guaranteed empty: zero-volume sliver outside the data range is
  // hard to construct; instead use a tiny corner box and verify against
  // the oracle (which may also be empty).
  q.constraint = Rect(Point{0.0, 0.0}, Point{1e-9, 1e-9});
  TupleVec inside;
  for (const Tuple& t : net.all) {
    if (q.constraint->Contains(t.key)) inside.push_back(t);
  }
  const auto result = SeededSkyline(net.overlay, engine, {.initiator = net.overlay.RandomPeer(&rng), .query = q, .ripple = RippleParam::Fast()});
  EXPECT_EQ(result.answer.size(), ComputeSkyline(inside).size());
}

}  // namespace
}  // namespace ripple
