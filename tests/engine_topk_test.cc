#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/scoring.h"
#include "overlay/midas/midas.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"
#include "store/local_algos.h"

namespace ripple {
namespace {

struct TestNet {
  MidasOverlay overlay;
  TupleVec all_tuples;
};

TestNet MakeNet(size_t peers, size_t tuples, int dims, uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  TestNet net{MidasOverlay(opt), {}};
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  Rng rng(seed ^ 0xabcdef);
  for (uint64_t i = 0; i < tuples; ++i) {
    Point p(dims);
    for (int d = 0; d < dims; ++d) p[d] = rng.UniformDouble();
    Tuple t{i, p};
    net.all_tuples.push_back(t);
    net.overlay.InsertTuple(t);
  }
  return net;
}

using TopKEngine = Engine<MidasOverlay, TopKPolicy>;

void ExpectSameIds(const TupleVec& got, const TupleVec& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "position " << i;
  }
}

TEST(EngineTopKTest, MatchesOracleAcrossModes) {
  TestNet net = MakeNet(128, 2000, 3, 101);
  LinearScorer scorer({-0.5, -0.3, -0.2});  // min-weighted-sum is best
  TopKQuery q{&scorer, 10};
  const TupleVec want = SelectTopK(
      net.all_tuples, [&](const Point& p) { return scorer.Score(p); }, q.k);
  TopKEngine engine(&net.overlay, TopKPolicy{});
  Rng rng(7);
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Hops(2), RippleParam::Hops(5), RippleParam::Slow()}) {
    for (int trial = 0; trial < 5; ++trial) {
      const PeerId initiator = net.overlay.RandomPeer(&rng);
      const auto result = engine.Run({.initiator = initiator, .query = q, .ripple = r});
      ExpectSameIds(result.answer, want);
    }
  }
}

TEST(EngineTopKTest, MatchesOracleForVariousK) {
  TestNet net = MakeNet(64, 1000, 2, 103);
  LinearScorer scorer({-1.0, -1.0});
  TopKEngine engine(&net.overlay, TopKPolicy{});
  Rng rng(11);
  for (size_t k : {1u, 5u, 25u, 100u}) {
    TopKQuery q{&scorer, k};
    const TupleVec want = SelectTopK(
        net.all_tuples, [&](const Point& p) { return scorer.Score(p); }, k);
    const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q});
    ExpectSameIds(result.answer, want);
  }
}

TEST(EngineTopKTest, NearestScorerQueries) {
  TestNet net = MakeNet(64, 1500, 4, 107);
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    Point anchor(4);
    for (int d = 0; d < 4; ++d) anchor[d] = rng.UniformDouble();
    NearestScorer scorer(anchor, Norm::kL2);
    TopKQuery q{&scorer, 10};
    const TupleVec want = SelectTopK(
        net.all_tuples, [&](const Point& p) { return scorer.Score(p); }, q.k);
    TopKEngine engine(&net.overlay, TopKPolicy{});
    const auto fast = engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q});
    const auto slow = engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q, .ripple = RippleParam::Slow()});
    ExpectSameIds(fast.answer, want);
    ExpectSameIds(slow.answer, want);
  }
}

TEST(EngineTopKTest, FastLatencyBoundedByMaxDepth) {
  TestNet net = MakeNet(256, 3000, 3, 109);
  LinearScorer scorer({-0.4, -0.4, -0.2});
  TopKQuery q{&scorer, 10};
  TopKEngine engine(&net.overlay, TopKPolicy{});
  Rng rng(17);
  const uint64_t delta = static_cast<uint64_t>(net.overlay.MaxDepth());
  for (int trial = 0; trial < 10; ++trial) {
    const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q});
    EXPECT_LE(result.stats.latency_hops, delta);  // Lemma 1
    EXPECT_LE(result.stats.peers_visited, net.overlay.NumPeers());
    EXPECT_GE(result.stats.peers_visited, 1u);
  }
}

TEST(EngineTopKTest, SlowVisitsNoMorePeersThanFast) {
  TestNet net = MakeNet(256, 3000, 3, 113);
  LinearScorer scorer({-0.4, -0.4, -0.2});
  TopKQuery q{&scorer, 10};
  TopKEngine engine(&net.overlay, TopKPolicy{});
  Rng rng(19);
  uint64_t fast_visits = 0, slow_visits = 0;
  uint64_t fast_latency = 0, slow_latency = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const PeerId initiator = net.overlay.RandomPeer(&rng);
    const auto fast = engine.Run({.initiator = initiator, .query = q});
    const auto slow = engine.Run({.initiator = initiator, .query = q, .ripple = RippleParam::Slow()});
    fast_visits += fast.stats.peers_visited;
    slow_visits += slow.stats.peers_visited;
    fast_latency += fast.stats.latency_hops;
    slow_latency += slow.stats.latency_hops;
    ExpectSameIds(fast.answer, slow.answer);
  }
  // The paper's trade-off: slow prunes strictly better on average. (Its
  // latency is sequential — equal to its visits — which may still come in
  // under fast's parallel-hop latency when pruning is extreme, so only the
  // congestion ordering is universal.)
  EXPECT_LT(slow_visits, fast_visits);
  // Sequential forwarding: per query, latency = visits - 1 (every visit
  // except the initiator's costs one forward); 20 queries were summed.
  EXPECT_EQ(slow_latency, slow_visits - 20);
}

TEST(EngineTopKTest, RippleParameterInterpolates) {
  TestNet net = MakeNet(512, 5000, 3, 127);
  LinearScorer scorer({-0.3, -0.3, -0.4});
  TopKQuery q{&scorer, 10};
  TopKEngine engine(&net.overlay, TopKPolicy{});
  Rng rng(23);
  const int delta = net.overlay.MaxDepth();
  double visits_r0 = 0, visits_mid = 0, visits_slow = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const PeerId initiator = net.overlay.RandomPeer(&rng);
    visits_r0 += engine.Run({.initiator = initiator, .query = q}).stats.peers_visited;
    visits_mid += engine.Run({.initiator = initiator, .query = q, .ripple = RippleParam::Hops(delta / 2)}).stats.peers_visited;
    visits_slow += engine.Run({.initiator = initiator, .query = q, .ripple = RippleParam::Slow()}).stats.peers_visited;
  }
  EXPECT_LE(visits_slow, visits_mid + 1e-9);
  EXPECT_LE(visits_mid, visits_r0 + 1e-9);
}

TEST(EngineTopKTest, KLargerThanDatasetReturnsEverything) {
  TestNet net = MakeNet(16, 40, 2, 131);
  LinearScorer scorer({-1.0, -0.5});
  TopKQuery q{&scorer, 100};
  TopKEngine engine(&net.overlay, TopKPolicy{});
  Rng rng(29);
  const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q});
  EXPECT_EQ(result.answer.size(), 40u);
}

TEST(EngineTopKTest, EmptyNetworkAnswersEmpty) {
  MidasOptions opt;
  opt.dims = 2;
  opt.seed = 3;
  MidasOverlay overlay(opt);
  while (overlay.NumPeers() < 16) overlay.Join();
  LinearScorer scorer({-1.0, -1.0});
  TopKQuery q{&scorer, 5};
  TopKEngine engine(&overlay, TopKPolicy{});
  Rng rng(31);
  const auto result = engine.Run({.initiator = overlay.RandomPeer(&rng), .query = q});
  EXPECT_TRUE(result.answer.empty());
  EXPECT_EQ(result.stats.tuples_shipped, 0u);
}

TEST(EngineTopKTest, SurvivesChurn) {
  TestNet net = MakeNet(128, 2000, 3, 137);
  LinearScorer scorer({-0.2, -0.5, -0.3});
  TopKQuery q{&scorer, 10};
  const TupleVec want = SelectTopK(
      net.all_tuples, [&](const Point& p) { return scorer.Score(p); }, q.k);
  Rng churn(41);
  // Shrink the network: tuples survive on merged peers.
  while (net.overlay.NumPeers() > 32) {
    ASSERT_TRUE(net.overlay.LeaveRandom(&churn).ok());
  }
  TopKEngine engine(&net.overlay, TopKPolicy{});
  const auto after_shrink = engine.Run({.initiator = net.overlay.RandomPeer(&churn), .query = q});
  ExpectSameIds(after_shrink.answer, want);
  // Grow back and re-check with slow.
  while (net.overlay.NumPeers() < 200) net.overlay.Join();
  const auto after_grow =
      engine.Run({.initiator = net.overlay.RandomPeer(&churn), .query = q, .ripple = RippleParam::Slow()});
  ExpectSameIds(after_grow.answer, want);
}

TEST(EngineTopKTest, SeededRunMatchesOracleAcrossModes) {
  TestNet net = MakeNet(128, 400, 3, 139);  // sparse: ~3 tuples per peer
  LinearScorer scorer({-0.5, -0.25, -0.25});
  TopKQuery q{&scorer, 10};
  const TupleVec want = SelectTopK(
      net.all_tuples, [&](const Point& p) { return scorer.Score(p); }, q.k);
  TopKEngine engine(&net.overlay, TopKPolicy{});
  Rng rng(37);
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Hops(3), RippleParam::Slow()}) {
    const auto result = SeededTopK(net.overlay, engine, {.initiator = net.overlay.RandomPeer(&rng), .query = q, .ripple = r});
    ExpectSameIds(result.answer, want);
  }
}

TEST(EngineTopKTest, SeedingCutsSparseFastCongestion) {
  // At the paper's density (~1.4 tuples/peer) an unseeded fast run floods
  // while m < k; the seeded initiation restores f+ pruning.
  TestNet net = MakeNet(512, 700, 3, 149);
  LinearScorer scorer({-0.4, -0.3, -0.3});
  TopKQuery q{&scorer, 10};
  TopKEngine engine(&net.overlay, TopKPolicy{});
  Rng rng(41);
  uint64_t plain = 0, seeded = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const PeerId initiator = net.overlay.RandomPeer(&rng);
    plain += engine.Run({.initiator = initiator, .query = q}).stats.peers_visited;
    seeded += SeededTopK(net.overlay, engine, {.initiator = initiator, .query = q, .ripple = RippleParam::Fast()})
                  .stats.peers_visited;
  }
  EXPECT_LT(seeded, plain / 2);
}

TEST(EngineTopKTest, SeededRunWorksWithNearestScorer) {
  TestNet net = MakeNet(64, 800, 4, 151);
  Rng rng(43);
  Point anchor{0.3, 0.7, 0.5, 0.2};
  NearestScorer scorer(anchor, Norm::kL2);
  TopKQuery q{&scorer, 15};
  const TupleVec want = SelectTopK(
      net.all_tuples, [&](const Point& p) { return scorer.Score(p); }, q.k);
  TopKEngine engine(&net.overlay, TopKPolicy{});
  const auto result = SeededTopK(net.overlay, engine, {.initiator = net.overlay.RandomPeer(&rng), .query = q, .ripple = RippleParam::Fast()});
  ExpectSameIds(result.answer, want);
}

TEST(EngineTopKTest, ThresholdWitnessTupleIsNotDropped) {
  // Regression: when a state whose threshold equals a tuple's score
  // reaches that tuple's owner, Algorithm 4's "strictly better than tau"
  // selection would drop the witness and the answer would come up one
  // tuple short. The inclusive selection keeps it.
  MidasOptions opt;
  opt.dims = 2;
  opt.seed = 77;
  MidasOverlay overlay(opt);
  while (overlay.NumPeers() < 16) overlay.Join();
  Rng rng(79);
  TupleVec all;
  for (uint64_t i = 0; i < 200; ++i) {
    Tuple t{i, Point{rng.UniformDouble(), rng.UniformDouble()}};
    all.push_back(t);
    overlay.InsertTuple(t);
  }
  LinearScorer scorer({-1.0, -1.0});
  TopKQuery q{&scorer, 5};
  const TupleVec want = SelectTopK(
      all, [&](const Point& p) { return scorer.Score(p); }, q.k);
  // Seed the run with a state whose threshold is EXACTLY the 5th best
  // score, witnessed by the true top-5.
  TopKState seed{5, scorer.Score(want.back().key)};
  Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Slow()}) {
    const auto result = engine.Run({.initiator = overlay.RandomPeer(&rng), .query = q, .ripple = r, .initial_state = seed});
    ASSERT_EQ(result.answer.size(), q.k) << "r=" << r;
    for (size_t i = 0; i < q.k; ++i) {
      EXPECT_EQ(result.answer[i].id, want[i].id);
    }
  }
}

TEST(EngineTopKTest, StatsAccumulatorAggregates) {
  StatsAccumulator acc;
  acc.Add(QueryStats{10, 5, 7, 3});
  acc.Add(QueryStats{20, 15, 9, 5});
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_DOUBLE_EQ(acc.MeanLatency(), 15.0);
  EXPECT_DOUBLE_EQ(acc.MeanCongestion(), 10.0);
  EXPECT_DOUBLE_EQ(acc.MeanMessages(), 8.0);
  EXPECT_DOUBLE_EQ(acc.MeanTuplesShipped(), 4.0);
  EXPECT_EQ(acc.MaxLatency(), 20u);
  EXPECT_EQ(acc.LatencyPercentile(0), 10u);
  EXPECT_EQ(acc.LatencyPercentile(100), 20u);
}

}  // namespace
}  // namespace ripple
