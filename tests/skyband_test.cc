#include "queries/skyband.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/midas/midas.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"

namespace ripple {
namespace {

TupleVec BruteForceBand(const TupleVec& all, size_t k) {
  TupleVec band;
  for (const Tuple& t : all) {
    size_t dominators = 0;
    for (const Tuple& s : all) {
      if (Dominates(s.key, t.key)) ++dominators;
    }
    if (dominators < k) band.push_back(t);
  }
  std::sort(band.begin(), band.end(), TupleIdLess());
  return band;
}

TEST(KSkybandTest, MatchesBruteForce) {
  Rng rng(801);
  const TupleVec all = data::MakeUniform(300, 3, &rng);
  for (size_t k : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(ComputeKSkyband(all, k), BruteForceBand(all, k)) << "k=" << k;
  }
}

TEST(KSkybandTest, OneBandIsSkyline) {
  Rng rng(803);
  const TupleVec all = data::MakeUniform(400, 4, &rng);
  EXPECT_EQ(ComputeKSkyband(all, 1), ComputeSkyline(all));
}

TEST(KSkybandTest, BandsAreNested) {
  Rng rng(805);
  const TupleVec all = data::MakeUniform(300, 2, &rng);
  TupleVec previous;
  for (size_t k = 1; k <= 5; ++k) {
    const TupleVec band = ComputeKSkyband(all, k);
    EXPECT_GE(band.size(), previous.size());
    std::set<uint64_t> ids;
    for (const Tuple& t : band) ids.insert(t.id);
    for (const Tuple& t : previous) EXPECT_TRUE(ids.count(t.id));
    previous = band;
  }
}

TEST(KSkybandTest, ZeroKAndEmptyInput) {
  Rng rng(807);
  const TupleVec all = data::MakeUniform(50, 2, &rng);
  EXPECT_TRUE(ComputeKSkyband(all, 0).empty());
  EXPECT_TRUE(ComputeKSkyband({}, 3).empty());
}

struct Net {
  MidasOverlay overlay;
  TupleVec all;
};

Net MakeNet(size_t peers, size_t tuples, int dims, uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.split_rule = MidasSplitRule::kDataMedian;
  Net net{MidasOverlay(opt), {}};
  Rng rng(seed ^ 0x4444);
  net.all = data::MakeUniform(tuples, dims, &rng);
  for (const Tuple& t : net.all) net.overlay.InsertTuple(t);
  while (net.overlay.NumPeers() < peers) net.overlay.Join();
  return net;
}

TEST(SkybandEngineTest, DistributedBandMatchesOracle) {
  Net net = MakeNet(64, 800, 3, 809);
  Engine<MidasOverlay, SkybandPolicy> engine(&net.overlay, SkybandPolicy{});
  Rng rng(5);
  for (size_t band : {1u, 3u, 5u}) {
    SkybandQuery q;
    q.band = band;
    const TupleVec want = ComputeKSkyband(net.all, band);
    for (const RippleParam r : {RippleParam::Fast(), RippleParam::Slow()}) {
      const auto result = engine.Run({.initiator = net.overlay.RandomPeer(&rng), .query = q, .ripple = r});
      ASSERT_EQ(result.answer.size(), want.size())
          << "band=" << band << " r=" << r;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(result.answer[i].id, want[i].id);
      }
    }
  }
}

TEST(SkybandEngineTest, WiderBandVisitsMorePeers) {
  Net net = MakeNet(128, 2000, 3, 811);
  Engine<MidasOverlay, SkybandPolicy> engine(&net.overlay, SkybandPolicy{});
  Rng rng(7);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  SkybandQuery narrow;
  narrow.band = 1;
  SkybandQuery wide;
  wide.band = 6;
  const auto a = engine.Run({.initiator = initiator, .query = narrow, .ripple = RippleParam::Slow()});
  const auto b = engine.Run({.initiator = initiator, .query = wide, .ripple = RippleParam::Slow()});
  EXPECT_LE(a.stats.peers_visited, b.stats.peers_visited);
  EXPECT_LT(a.answer.size(), b.answer.size());
}

// --- Approximate top-k ----------------------------------------------------------

TEST(ApproxTopKTest, EpsilonZeroIsExactAndSlackIsHonored) {
  Net net = MakeNet(128, 3000, 3, 813);
  LinearScorer scorer({-0.4, -0.3, -0.3});
  Engine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  Rng rng(11);
  const PeerId initiator = net.overlay.RandomPeer(&rng);
  TopKQuery exact{&scorer, 10, 0.0};
  const TupleVec want = SelectTopK(
      net.all, [&](const Point& p) { return scorer.Score(p); }, exact.k);
  const auto exact_run = SeededTopK(net.overlay, engine, {.initiator = initiator, .query = exact, .ripple = RippleParam::Fast()});
  ASSERT_EQ(exact_run.answer.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(exact_run.answer[i].id, want[i].id);
  }
  // Approximate: every returned score within epsilon of the exact rank.
  for (double eps : {0.02, 0.1}) {
    TopKQuery approx{&scorer, 10, eps};
    const auto run = SeededTopK(net.overlay, engine, {.initiator = initiator, .query = approx, .ripple = RippleParam::Fast()});
    ASSERT_EQ(run.answer.size(), want.size()) << "eps=" << eps;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_GE(scorer.Score(run.answer[i].key) + eps,
                scorer.Score(want[i].key))
          << "eps=" << eps << " rank " << i;
    }
    EXPECT_LE(run.stats.peers_visited, exact_run.stats.peers_visited);
  }
}

TEST(ApproxTopKTest, LargerEpsilonNeverVisitsMore) {
  Net net = MakeNet(256, 4000, 3, 817);
  LinearScorer scorer({-0.5, -0.25, -0.25});
  Engine<MidasOverlay, TopKPolicy> engine(&net.overlay, TopKPolicy{});
  Rng rng(13);
  uint64_t prev = std::numeric_limits<uint64_t>::max();
  for (double eps : {0.0, 0.05, 0.2}) {
    TopKQuery q{&scorer, 10, eps};
    uint64_t visits = 0;
    Rng pick(17);
    for (int trial = 0; trial < 5; ++trial) {
      visits += SeededTopK(net.overlay, engine, {.initiator = net.overlay.RandomPeer(&pick), .query = q, .ripple = RippleParam::Fast()})
                    .stats.peers_visited;
    }
    EXPECT_LE(visits, prev) << "eps=" << eps;
    prev = visits;
  }
}

}  // namespace
}  // namespace ripple
