#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/dominance.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "geom/scoring.h"

namespace ripple {
namespace {

TEST(PointTest, ConstructionAndAccess) {
  Point p{0.5, 0.25, 1.0};
  EXPECT_EQ(p.dims(), 3);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[2], 1.0);
  p[1] = 0.75;
  EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(PointTest, OriginAndFill) {
  Point p(4);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(p[i], 0.0);
  p.Fill(2.0);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(p[i], 2.0);
}

TEST(PointTest, Distances) {
  Point a{0.0, 0.0};
  Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(L2Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(L2DistanceSquared(a, b), 25.0);
  EXPECT_DOUBLE_EQ(LInfDistance(a, b), 4.0);
  EXPECT_DOUBLE_EQ(Distance(a, b, Norm::kL1), 7.0);
  EXPECT_DOUBLE_EQ(Distance(a, b, Norm::kL2), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, b, Norm::kLInf), 4.0);
}

TEST(PointTest, Equality) {
  EXPECT_EQ((Point{1.0, 2.0}), (Point{1.0, 2.0}));
  EXPECT_NE((Point{1.0, 2.0}), (Point{1.0, 2.1}));
  EXPECT_NE((Point{1.0}), (Point{1.0, 0.0}));
}

TEST(RectTest, UnitCube) {
  Rect r = Rect::Unit(3);
  EXPECT_EQ(r.dims(), 3);
  EXPECT_DOUBLE_EQ(r.Volume(), 1.0);
  EXPECT_TRUE(r.Contains(Point{0.5, 0.5, 0.5}));
  EXPECT_TRUE(r.Contains(Point{1.0, 1.0, 1.0}));  // closed
  EXPECT_FALSE(r.Contains(Point{1.1, 0.5, 0.5}));
}

TEST(RectTest, HalfOpenContainment) {
  const Rect domain = Rect::Unit(2);
  const auto [left, right] = domain.Split(0, 0.5);
  // The split face belongs to the upper half only.
  EXPECT_FALSE(left.ContainsHalfOpen(Point{0.5, 0.2}, domain));
  EXPECT_TRUE(right.ContainsHalfOpen(Point{0.5, 0.2}, domain));
  // The domain's upper boundary stays inclusive.
  EXPECT_TRUE(right.ContainsHalfOpen(Point{1.0, 1.0}, domain));
  EXPECT_TRUE(left.ContainsHalfOpen(Point{0.0, 1.0}, domain));
}

TEST(RectTest, IntersectionAndCover) {
  Rect a(Point{0.0, 0.0}, Point{0.6, 0.6});
  Rect b(Point{0.4, 0.4}, Point{1.0, 1.0});
  ASSERT_TRUE(a.Intersects(b));
  const Rect i = a.Intersection(b);
  EXPECT_EQ(i, Rect(Point{0.4, 0.4}, Point{0.6, 0.6}));
  EXPECT_TRUE(Rect::Unit(2).Covers(a));
  EXPECT_FALSE(a.Covers(b));
  Rect far(Point{0.7, 0.7}, Point{0.9, 0.9});
  EXPECT_FALSE(a.Intersects(far));
}

TEST(RectTest, DegenerateTouching) {
  Rect a(Point{0.0, 0.0}, Point{0.5, 1.0});
  Rect b(Point{0.5, 0.0}, Point{1.0, 1.0});
  ASSERT_TRUE(a.Intersects(b));  // closed rects share the face
  EXPECT_TRUE(a.Intersection(b).Degenerate());
}

TEST(RectTest, SplitPartitionsVolume) {
  Rect r(Point{0.0, 0.0, 0.0}, Point{2.0, 1.0, 1.0});
  const auto [lo, hi] = r.Split(0, 0.5);
  EXPECT_DOUBLE_EQ(lo.Volume() + hi.Volume(), r.Volume());
  EXPECT_DOUBLE_EQ(lo.hi()[0], 0.5);
  EXPECT_DOUBLE_EQ(hi.lo()[0], 0.5);
}

TEST(RectTest, MinMaxDist) {
  Rect r(Point{1.0, 1.0}, Point{2.0, 2.0});
  Point inside{1.5, 1.5};
  EXPECT_DOUBLE_EQ(r.MinDist(inside, Norm::kL2), 0.0);
  Point outside{0.0, 1.0};
  EXPECT_DOUBLE_EQ(r.MinDist(outside, Norm::kL2), 1.0);
  EXPECT_DOUBLE_EQ(r.MinDist(outside, Norm::kL1), 1.0);
  // Farthest corner from (0,1) is (2,2).
  EXPECT_DOUBLE_EQ(r.MaxDist(outside, Norm::kL1), 3.0);
  EXPECT_DOUBLE_EQ(r.MaxDist(outside, Norm::kL2), std::sqrt(5.0));
}

TEST(RectTest, MinMaxDistBracketsSampledPoints) {
  Rng rng(5);
  Rect r(Point{0.2, 0.3, 0.1}, Point{0.7, 0.9, 0.4});
  for (int trial = 0; trial < 200; ++trial) {
    Point q{rng.UniformDouble(-1, 2), rng.UniformDouble(-1, 2),
            rng.UniformDouble(-1, 2)};
    Point inside{rng.UniformDouble(0.2, 0.7), rng.UniformDouble(0.3, 0.9),
                 rng.UniformDouble(0.1, 0.4)};
    for (Norm norm : {Norm::kL1, Norm::kL2, Norm::kLInf}) {
      const double d = Distance(q, inside, norm);
      EXPECT_LE(r.MinDist(q, norm), d + 1e-12);
      EXPECT_GE(r.MaxDist(q, norm), d - 1e-12);
    }
  }
}

// --- Dominance --------------------------------------------------------------

TEST(DominanceTest, BasicCases) {
  EXPECT_TRUE(Dominates(Point{0.1, 0.1}, Point{0.2, 0.2}));
  EXPECT_TRUE(Dominates(Point{0.1, 0.2}, Point{0.1, 0.3}));
  EXPECT_FALSE(Dominates(Point{0.1, 0.2}, Point{0.1, 0.2}));  // equal
  EXPECT_FALSE(Dominates(Point{0.1, 0.3}, Point{0.2, 0.2}));  // incomparable
  EXPECT_FALSE(Dominates(Point{0.2, 0.2}, Point{0.1, 0.1}));
}

TEST(DominanceTest, IrreflexiveAntisymmetricTransitive) {
  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    Point a{rng.UniformDouble(), rng.UniformDouble(), rng.UniformDouble()};
    Point b{rng.UniformDouble(), rng.UniformDouble(), rng.UniformDouble()};
    Point c{rng.UniformDouble(), rng.UniformDouble(), rng.UniformDouble()};
    EXPECT_FALSE(Dominates(a, a));
    EXPECT_FALSE(Dominates(a, b) && Dominates(b, a));
    if (Dominates(a, b) && Dominates(b, c)) {
      EXPECT_TRUE(Dominates(a, c));
    }
  }
}

TEST(DominanceTest, DominatesRectMeansDominatesEveryPoint) {
  Rng rng(13);
  Rect r(Point{0.4, 0.5}, Point{0.8, 0.9});
  const Point s1{0.1, 0.1};
  ASSERT_TRUE(DominatesRect(s1, r));
  for (int i = 0; i < 200; ++i) {
    Point p{rng.UniformDouble(0.4, 0.8), rng.UniformDouble(0.5, 0.9)};
    EXPECT_TRUE(Dominates(s1, p));
  }
  // A point equal to the rect's lower corner does not dominate the corner.
  EXPECT_FALSE(DominatesRect(Point{0.4, 0.5}, r));
  // A point inside the rect never dominates the whole rect.
  EXPECT_FALSE(DominatesRect(Point{0.5, 0.6}, r));
}

TEST(DominanceTest, RectMayDominate) {
  Rect r(Point{0.4, 0.5}, Point{0.8, 0.9});
  EXPECT_TRUE(RectMayDominate(r, Point{0.9, 0.95}));
  EXPECT_FALSE(RectMayDominate(r, Point{0.1, 0.9}));
  EXPECT_FALSE(RectMayDominate(r, Point{0.4, 0.5}));  // equal to corner
}

// --- Scorers ----------------------------------------------------------------

TEST(ScorerTest, LinearScore) {
  LinearScorer s({1.0, -2.0});
  EXPECT_DOUBLE_EQ(s.Score(Point{0.5, 0.25}), 0.0);
  EXPECT_DOUBLE_EQ(s.Score(Point{1.0, 0.0}), 1.0);
}

TEST(ScorerTest, LinearUpperBoundIsTight) {
  LinearScorer s({1.0, -2.0});
  Rect r(Point{0.0, 0.0}, Point{1.0, 1.0});
  // Max at (1, 0) since the second weight is negative.
  EXPECT_DOUBLE_EQ(s.UpperBound(r), 1.0);
}

TEST(ScorerTest, UpperBoundSoundOverSamples) {
  Rng rng(17);
  LinearScorer lin({0.3, 0.7, -0.2});
  Rect r(Point{0.1, 0.2, 0.3}, Point{0.5, 0.8, 0.6});
  NearestScorer near(Point{0.9, 0.1, 0.2}, Norm::kL2);
  for (int i = 0; i < 300; ++i) {
    Point p{rng.UniformDouble(0.1, 0.5), rng.UniformDouble(0.2, 0.8),
            rng.UniformDouble(0.3, 0.6)};
    EXPECT_LE(lin.Score(p), lin.UpperBound(r) + 1e-12);
    EXPECT_LE(near.Score(p), near.UpperBound(r) + 1e-12);
  }
}

TEST(ScorerTest, NearestScoreIsNegatedDistance) {
  NearestScorer s(Point{0.0, 0.0}, Norm::kL2);
  EXPECT_DOUBLE_EQ(s.Score(Point{3.0, 4.0}), -5.0);
  Rect r(Point{3.0, 0.0}, Point{5.0, 1.0});
  EXPECT_DOUBLE_EQ(s.UpperBound(r), -3.0);
}

}  // namespace
}  // namespace ripple
