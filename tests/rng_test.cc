#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/zipf.h"

namespace ripple {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformU64InRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64CoversAllResidues) {
  Rng rng(7);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[rng.UniformU64(10)];
  for (int h : hits) EXPECT_GT(h, 700);  // expectation 1000 each
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child should not replay the parent stream.
  Rng parent_copy(31);
  parent_copy.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextU64() == parent.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(ZipfTest, SkewZeroIsUniform) {
  ZipfSampler z(4, 0.0);
  for (uint64_t r = 0; r < 4; ++r) EXPECT_NEAR(z.Pmf(r), 0.25, 1e-12);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(1000, 0.8);
  double sum = 0;
  for (uint64_t r = 0; r < 1000; ++r) sum += z.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, LowerRanksMoreLikely) {
  ZipfSampler z(100, 1.0);
  EXPECT_GT(z.Pmf(0), z.Pmf(1));
  EXPECT_GT(z.Pmf(1), z.Pmf(50));
}

TEST(ZipfTest, SamplesMatchPmf) {
  ZipfSampler z(5, 1.0);
  Rng rng(37);
  std::vector<int> hits(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++hits[z.Sample(&rng)];
  for (uint64_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(static_cast<double>(hits[r]) / n, z.Pmf(r), 0.01);
  }
}

TEST(ZipfTest, PaperSkewIsNearlyUniform) {
  // SYNTH uses sigma = 0.1: the most popular cluster should not dwarf the
  // typical one.
  ZipfSampler z(50000, 0.1);
  EXPECT_LT(z.Pmf(0) / z.Pmf(25000), 3.0);
}

}  // namespace
}  // namespace ripple
