// End-to-end integration: combined query mixes over one shared deployment,
// under churn, across engines (recursive and asynchronous), verifying
// every answer against centralized oracles.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/datasets.h"
#include "overlay/midas/midas.h"
#include "queries/diversify_driver.h"
#include "queries/range.h"
#include "queries/skyband.h"
#include "queries/skyline_driver.h"
#include "queries/topk_driver.h"
#include "ripple/engine.h"
#include "sim/async_engine.h"

namespace ripple {
namespace {

struct Deployment {
  MidasOverlay overlay;
  TupleVec all;
};

Deployment Deploy(size_t peers, const TupleVec& tuples, int dims,
                  uint64_t seed) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = seed;
  opt.split_rule = MidasSplitRule::kDataMedian;
  opt.border_pattern_links = true;
  Deployment d{MidasOverlay(opt), tuples};
  for (const Tuple& t : tuples) d.overlay.InsertTuple(t);
  while (d.overlay.NumPeers() < peers) d.overlay.Join();
  return d;
}

void ExpectSameIds(TupleVec got, TupleVec want, const char* what) {
  std::sort(got.begin(), got.end(), TupleIdLess());
  std::sort(want.begin(), want.end(), TupleIdLess());
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << " position " << i;
  }
}

TEST(IntegrationTest, MixedQueriesOverOneDeployment) {
  Rng data_rng(901);
  const TupleVec tuples = data::MakeByName("synth", 3000, 4, &data_rng);
  Deployment d = Deploy(128, tuples, 4, 903);
  Rng rng(7);
  const PeerId me = d.overlay.RandomPeer(&rng);

  // Top-k.
  LinearScorer scorer({-0.4, -0.2, -0.2, -0.2});
  TopKQuery topk{&scorer, 10};
  Engine<MidasOverlay, TopKPolicy> topk_engine(&d.overlay, TopKPolicy{});
  ExpectSameIds(
      SeededTopK(d.overlay, topk_engine, {.initiator = me, .query = topk, .ripple = RippleParam::Fast()}).answer,
      SelectTopK(tuples, [&](const Point& p) { return scorer.Score(p); },
                 topk.k),
      "topk");

  // Skyline.
  Engine<MidasOverlay, SkylinePolicy> sky_engine(&d.overlay,
                                                 SkylinePolicy{});
  ExpectSameIds(
      SeededSkyline(d.overlay, sky_engine, {.initiator = me, .query = SkylineQuery{}, .ripple = RippleParam::Fast()}).answer,
      ComputeSkyline(tuples), "skyline");

  // 3-skyband.
  Engine<MidasOverlay, SkybandPolicy> band_engine(&d.overlay,
                                                  SkybandPolicy{});
  SkybandQuery band;
  band.band = 3;
  ExpectSameIds(band_engine.Run({.initiator = me, .query = band}).answer,
                ComputeKSkyband(tuples, 3), "skyband");

  // Range.
  RangeQuery range{tuples[17].key, 0.15, Norm::kL2};
  Engine<MidasOverlay, RangePolicy> range_engine(&d.overlay, RangePolicy{});
  TupleVec range_want;
  for (const Tuple& t : tuples) {
    if (range.Matches(t.key)) range_want.push_back(t);
  }
  ExpectSameIds(range_engine.Run({.initiator = me, .query = range, .ripple = RippleParam::Slow()}).answer, range_want,
                "range");

  // Diversification (forced to the centralized trajectory).
  DiversifyObjective obj{tuples[3].key, 0.5, Norm::kL1};
  RippleDivService<MidasOverlay> measured(&d.overlay, {.initiator = me, .ripple = RippleParam::Fast()});
  CentralizedDivService reference(&tuples);
  ForcedResultService forced(&measured, &reference);
  CentralizedDivService oracle(&tuples);
  DiversifyOptions options;
  options.k = 8;
  options.service_init = true;
  const auto got = Diversify(&forced, obj, {}, options);
  const auto want = Diversify(&oracle, obj, {}, options);
  ExpectSameIds(got.set, want.set, "diversify");
  EXPECT_DOUBLE_EQ(got.objective, want.objective);
}

TEST(IntegrationTest, AllQueriesSurviveFullChurnCycle) {
  Rng data_rng(907);
  const TupleVec tuples = data::MakeUniform(2000, 3, &data_rng);
  Deployment d = Deploy(128, tuples, 3, 909);
  LinearScorer scorer({-0.5, -0.3, -0.2});
  TopKQuery topk{&scorer, 10};
  const TupleVec want_topk = SelectTopK(
      tuples, [&](const Point& p) { return scorer.Score(p); }, topk.k);
  const TupleVec want_sky = ComputeSkyline(tuples);
  const TupleVec want_band = ComputeKSkyband(tuples, 2);

  Rng churn(11);
  // Shrink, grow, shrink — verifying after each phase.
  for (const size_t target : {32u, 200u, 64u}) {
    while (d.overlay.NumPeers() > target) {
      ASSERT_TRUE(d.overlay.LeaveRandom(&churn).ok());
    }
    while (d.overlay.NumPeers() < target) d.overlay.Join();
    ASSERT_TRUE(d.overlay.Validate().ok());
    const PeerId me = d.overlay.RandomPeer(&churn);
    Engine<MidasOverlay, TopKPolicy> te(&d.overlay, TopKPolicy{});
    ExpectSameIds(SeededTopK(d.overlay, te, {.initiator = me, .query = topk, .ripple = RippleParam::Fast()}).answer, want_topk,
                  "churn topk");
    Engine<MidasOverlay, SkylinePolicy> se(&d.overlay, SkylinePolicy{});
    ExpectSameIds(
        SeededSkyline(d.overlay, se, {.initiator = me, .query = SkylineQuery{}, .ripple = RippleParam::Slow()}).answer,
        want_sky, "churn skyline");
    Engine<MidasOverlay, SkybandPolicy> be(&d.overlay, SkybandPolicy{});
    SkybandQuery band;
    band.band = 2;
    ExpectSameIds(be.Run({.initiator = me, .query = band}).answer, want_band, "churn skyband");
  }
}

TEST(IntegrationTest, AsyncEngineAgreesOnSkybandAndRange) {
  Rng data_rng(911);
  const TupleVec tuples = data::MakeUniform(1200, 3, &data_rng);
  Deployment d = Deploy(96, tuples, 3, 913);
  Rng rng(13);
  const PeerId me = d.overlay.RandomPeer(&rng);

  Engine<MidasOverlay, SkybandPolicy> sync_band(&d.overlay, SkybandPolicy{});
  AsyncEngine<MidasOverlay, SkybandPolicy> async_band(&d.overlay,
                                                      SkybandPolicy{});
  SkybandQuery band;
  band.band = 2;
  for (const RippleParam r : {RippleParam::Fast(), RippleParam::Slow()}) {
    const auto s = sync_band.Run({.initiator = me, .query = band, .ripple = r});
    const auto a = async_band.Run({.initiator = me, .query = band, .ripple = r});
    ExpectSameIds(a.answer, s.answer, "async skyband");
    EXPECT_EQ(a.stats.peers_visited, s.stats.peers_visited);
    EXPECT_EQ(a.stats.messages, s.stats.messages);
  }

  Engine<MidasOverlay, RangePolicy> sync_range(&d.overlay, RangePolicy{});
  AsyncEngine<MidasOverlay, RangePolicy> async_range(&d.overlay,
                                                     RangePolicy{});
  RangeQuery range{Point{0.4, 0.5, 0.6}, 0.2, Norm::kL1};
  const auto s = sync_range.Run({.initiator = me, .query = range, .ripple = RippleParam::Hops(2)});
  const auto a = async_range.Run({.initiator = me, .query = range, .ripple = RippleParam::Hops(2)});
  ExpectSameIds(a.answer, s.answer, "async range");
  EXPECT_EQ(a.stats.tuples_shipped, s.stats.tuples_shipped);
}

TEST(IntegrationTest, VisitObserverCountsMatchStats) {
  Rng data_rng(917);
  const TupleVec tuples = data::MakeUniform(1000, 2, &data_rng);
  Deployment d = Deploy(64, tuples, 2, 919);
  Engine<MidasOverlay, TopKPolicy> engine(&d.overlay, TopKPolicy{});
  uint64_t observed = 0;
  engine.SetVisitObserver([&](PeerId) { ++observed; });
  LinearScorer scorer({-0.6, -0.4});
  TopKQuery q{&scorer, 5};
  Rng rng(17);
  const auto result = engine.Run({.initiator = d.overlay.RandomPeer(&rng), .query = q});
  EXPECT_EQ(observed, result.stats.peers_visited);
  engine.SetVisitObserver(nullptr);
  (void)engine.Run({.initiator = d.overlay.RandomPeer(&rng), .query = q});
  EXPECT_EQ(observed, result.stats.peers_visited);  // unchanged
}

}  // namespace
}  // namespace ripple
