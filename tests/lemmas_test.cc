#include <gtest/gtest.h>

#include <vector>

#include "baselines/naive.h"
#include "common/rng.h"
#include "overlay/midas/midas.h"
#include "queries/topk.h"
#include "ripple/engine.h"

namespace ripple {
namespace {

/// Builds a perfect MIDAS tree of depth `levels` (2^levels peers) by
/// splitting every leaf once per round.
MidasOverlay PerfectMidas(int levels, int dims) {
  MidasOptions opt;
  opt.dims = dims;
  opt.seed = 7;
  MidasOverlay overlay(opt);
  for (int round = 0; round < levels; ++round) {
    std::vector<Point> centers;
    for (PeerId id : overlay.LivePeers()) {
      centers.push_back(overlay.GetPeer(id).zone.Center());
    }
    for (const Point& c : centers) overlay.JoinAt(c);
  }
  return overlay;
}

/// The paper's worst-case latency recurrences for MIDAS:
///   L(delta, 0)    = Delta - delta                  (Lemma 1)
///   L(Delta, r)    = 0
///   L(delta, r)    = sum_{l=delta+1}^{Delta} (1 + L(l, r-1))   (Lemma 3)
/// Lemma 2 (slow) is the r -> infinity fixpoint: 2^(Delta-delta) - 1.
uint64_t LemmaLatency(int delta, int r, int big_delta) {
  if (delta >= big_delta) return 0;
  if (r == 0) return static_cast<uint64_t>(big_delta - delta);
  uint64_t total = 0;
  for (int l = delta + 1; l <= big_delta; ++l) {
    total += 1 + LemmaLatency(l, r - 1, big_delta);
  }
  return total;
}

class LemmaTest : public ::testing::TestWithParam<int> {};

TEST_P(LemmaTest, EngineLatencyMatchesRecurrenceOnPerfectTree) {
  const int levels = GetParam();
  MidasOverlay overlay = PerfectMidas(levels, 2);
  ASSERT_EQ(overlay.NumPeers(), size_t{1} << levels);
  ASSERT_EQ(overlay.MaxDepth(), levels);
  ASSERT_TRUE(overlay.Validate().ok());

  // A broadcast policy (no pruning) realizes the worst case exactly.
  LinearScorer scorer({-1.0, -1.0});
  TopKQuery q{&scorer, 1};
  Engine<MidasOverlay, NaiveTopKPolicy> engine(&overlay, NaiveTopKPolicy{});
  Rng rng(13);
  const PeerId initiator = overlay.RandomPeer(&rng);

  // Lemma 1: fast == Delta.
  EXPECT_EQ(engine.Run({.initiator = initiator, .query = q}).stats.latency_hops,
            static_cast<uint64_t>(levels));
  // Lemma 2: slow == 2^Delta - 1 == n - 1.
  EXPECT_EQ(engine.Run({.initiator = initiator, .query = q, .ripple = RippleParam::Slow()}).stats.latency_hops,
            overlay.NumPeers() - 1);
  // Lemma 3: intermediate r matches the recurrence exactly.
  for (int r = 1; r <= levels; ++r) {
    EXPECT_EQ(engine.Run({.initiator = initiator, .query = q, .ripple = RippleParam::Hops(r)}).stats.latency_hops,
              LemmaLatency(0, r, levels))
        << "r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, LemmaTest, ::testing::Values(2, 3, 4, 5, 6));

TEST(LemmaTest, ClosedFormsOfTheRecurrence) {
  // The paper's closed form for r=1, L(delta,1) = x^2/2 + x/2 with
  // x = Delta - delta, satisfies the Lemma 3 recurrence. Its printed r=2
  // form (x^3/6 - x^2/2 + 4x/3 - 1) does NOT — solving the recurrence
  // yields x^3/6 + 5x/6 instead (documented in EXPERIMENTS.md). Both are
  // Theta(x^{r+1}), so the paper's O(log^{r+1} n) conjecture stands.
  for (int big_delta = 1; big_delta <= 12; ++big_delta) {
    for (int delta = 0; delta < big_delta; ++delta) {
      const double x = big_delta - delta;
      EXPECT_DOUBLE_EQ(
          static_cast<double>(LemmaLatency(delta, 1, big_delta)),
          x * x / 2.0 + x / 2.0);
      EXPECT_DOUBLE_EQ(
          static_cast<double>(LemmaLatency(delta, 2, big_delta)),
          x * x * x / 6.0 + 5.0 * x / 6.0);
    }
  }
}

TEST(LemmaTest, RippleDegeneratesToSlowForLargeR) {
  // r > Delta: only the slow loop executes (paper remark after Lemma 3).
  for (int big_delta = 2; big_delta <= 8; ++big_delta) {
    EXPECT_EQ(LemmaLatency(0, big_delta, big_delta),
              (uint64_t{1} << big_delta) - 1);
    EXPECT_EQ(LemmaLatency(0, big_delta + 5, big_delta),
              (uint64_t{1} << big_delta) - 1);
  }
}

TEST(LemmaTest, FastLatencyBoundHoldsOnRandomTrees) {
  // On arbitrary (non-perfect) trees Lemma 1 is an upper bound.
  MidasOptions opt;
  opt.dims = 3;
  opt.seed = 21;
  MidasOverlay overlay(opt);
  while (overlay.NumPeers() < 300) overlay.Join();
  LinearScorer scorer({-1.0, -1.0, -1.0});
  TopKQuery q{&scorer, 1};
  Engine<MidasOverlay, NaiveTopKPolicy> engine(&overlay, NaiveTopKPolicy{});
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const auto stats =
        engine.Run({.initiator = overlay.RandomPeer(&rng), .query = q}).stats;
    EXPECT_LE(stats.latency_hops,
              static_cast<uint64_t>(overlay.MaxDepth()));
    EXPECT_EQ(stats.peers_visited, overlay.NumPeers());  // broadcast
  }
}

TEST(LemmaTest, SlowLatencyEqualsVisitsMinusOneWithoutPruning) {
  // Sequential forwarding with no pruning: every peer is one forward.
  MidasOptions opt;
  opt.dims = 2;
  opt.seed = 29;
  MidasOverlay overlay(opt);
  while (overlay.NumPeers() < 200) overlay.Join();
  LinearScorer scorer({-1.0, -1.0});
  TopKQuery q{&scorer, 1};
  Engine<MidasOverlay, NaiveTopKPolicy> engine(&overlay, NaiveTopKPolicy{});
  Rng rng(31);
  const auto stats = engine.Run({.initiator = overlay.RandomPeer(&rng), .query = q, .ripple = RippleParam::Slow()}).stats;
  EXPECT_EQ(stats.latency_hops, overlay.NumPeers() - 1);
  EXPECT_EQ(stats.peers_visited, overlay.NumPeers());
}

}  // namespace
}  // namespace ripple
