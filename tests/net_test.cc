// Socket realities for the live overlay (ctest -L net): peers-file
// parsing, wall-clock timers, the UDP transport's drop-and-count
// discipline over real localhost sockets, the daemon's decode path under
// duplication / reordering / truncation / unknown frames, and a
// multi-daemon end-to-end run over UDP whose answers must be
// byte-identical to the same queries on the loopback simulator.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "geom/scoring.h"
#include "gtest/gtest.h"
#include "net/bootstrap.h"
#include "net/client.h"
#include "net/daemon.h"
#include "net/peers.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "net/udp_transport.h"
#include "net/wall_clock.h"
#include "overlay/midas/midas.h"
#include "queries/skyline_driver.h"
#include "queries/topk_driver.h"
#include "sim/async_engine.h"

namespace ripple {
namespace {

// ---------------------------------------------------------------------------
// Peers file

constexpr char kPeersText[] =
    "# three processes\n"
    "config dataset=uniform peers=12 dims=2 tuples=500 seed=7 patterns=0\n"
    "\n"
    "peer 0-3 127.0.0.1:9101\n"
    "peer 4-7 127.0.0.1:9102\n"
    "peer 8-11 127.0.0.1:9103\n";

TEST(PeersFileTest, ParsesConfigAndAssignments) {
  auto pf = net::ParsePeersFile(kPeersText);
  ASSERT_TRUE(pf.ok()) << pf.status().message();
  EXPECT_EQ(pf->config.dataset, "uniform");
  EXPECT_EQ(pf->config.peers, 12u);
  EXPECT_EQ(pf->config.dims, 2);
  EXPECT_EQ(pf->config.tuples, 500u);
  EXPECT_EQ(pf->config.seed, 7u);
  EXPECT_FALSE(pf->config.patterns);
  ASSERT_EQ(pf->assignments.size(), 3u);
  const net::Endpoint* ep = pf->Find(5);
  ASSERT_NE(ep, nullptr);
  EXPECT_EQ(ep->ToString(), "127.0.0.1:9102");
  EXPECT_EQ(pf->Find(12), nullptr);
  EXPECT_EQ(pf->PeersAt({"127.0.0.1", 9103}),
            (std::vector<PeerId>{8, 9, 10, 11}));
  EXPECT_EQ(pf->Processes().size(), 3u);
}

TEST(PeersFileTest, FormatRoundTrips) {
  auto pf = net::ParsePeersFile(kPeersText);
  ASSERT_TRUE(pf.ok());
  auto again = net::ParsePeersFile(pf->Format());
  ASSERT_TRUE(again.ok()) << again.status().message();
  EXPECT_EQ(again->Format(), pf->Format());
  EXPECT_EQ(again->assignments.size(), pf->assignments.size());
}

TEST(PeersFileTest, RejectsCoverageGapAndOverlap) {
  auto gap = net::ParsePeersFile(
      "config peers=4\npeer 0-1 127.0.0.1:1\npeer 3 127.0.0.1:2\n");
  EXPECT_FALSE(gap.ok());
  auto overlap = net::ParsePeersFile(
      "config peers=4\npeer 0-2 127.0.0.1:1\npeer 2-3 127.0.0.1:2\n");
  EXPECT_FALSE(overlap.ok());
}

TEST(PeersFileTest, RejectsMalformedLines) {
  EXPECT_FALSE(net::ParsePeersFile("peer 0-1 nowhere\n").ok());
  EXPECT_FALSE(net::ParsePeersFile("config peers=\n").ok());
  EXPECT_FALSE(net::ParseEndpoint("127.0.0.1").ok());
  EXPECT_FALSE(net::ParseEndpoint("127.0.0.1:notaport").ok());
  auto ep = net::ParseEndpoint("10.0.0.2:19000");
  ASSERT_TRUE(ep.ok());
  EXPECT_EQ(ep->host, "10.0.0.2");
  EXPECT_EQ(ep->port, 19000);
}

// ---------------------------------------------------------------------------
// Wall-clock timers

TEST(WallTimersTest, FiresDueTimersInOrder) {
  net::WallTimers timers;
  std::vector<int> fired;
  timers.Arm(0.0, [&] { fired.push_back(1); });
  timers.Arm(0.0, [&] { fired.push_back(2); });
  EXPECT_EQ(timers.pending(), 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  timers.RunDue();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(timers.pending(), 0u);
  EXPECT_EQ(timers.NextDelayMs(), -1);
}

TEST(WallTimersTest, CancelledTimerNeverFires) {
  net::WallTimers timers;
  bool fired = false;
  const uint64_t id = timers.Arm(0.0, [&] { fired = true; });
  timers.Cancel(id);
  timers.Cancel(id);  // double-cancel is a no-op
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  timers.RunDue();
  EXPECT_FALSE(fired);
  EXPECT_EQ(timers.NextDelayMs(), -1);
}

TEST(WallTimersTest, NextDelayBoundsThePoll) {
  net::WallTimers timers;
  timers.Arm(200.0, [] {});
  const int delay = timers.NextDelayMs();
  EXPECT_GT(delay, 0);
  EXPECT_LE(delay, 201);
}

TEST(WallTimersTest, CallbackMayRearm) {
  net::WallTimers timers;
  int fires = 0;
  std::function<void()> rearm = [&] {
    if (++fires < 3) timers.Arm(0.0, rearm);
  };
  timers.Arm(0.0, rearm);
  for (int i = 0; i < 5 && fires < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    timers.RunDue();
  }
  EXPECT_EQ(fires, 3);
}

// ---------------------------------------------------------------------------
// Shared fixtures

/// Encodes a live client query frame exactly as net::NetClient does.
template <typename Policy>
std::vector<uint8_t> ClientQueryFrame(const MidasOverlay& overlay,
                                      const Policy& policy,
                                      const typename Policy::Query& query,
                                      uint64_t id, PeerId client,
                                      PeerId target, int64_t r) {
  const net::Envelope env{id, client, target, net::MessageKind::kQuery, 0, {}};
  wire::Buffer buf;
  const size_t start = net::BeginEnvelopeFrame(env, &buf);
  buf.PutU8(static_cast<uint8_t>(net::PolicyTagOf<Policy>::value));
  buf.PutZigzag(r);
  policy.EncodeQuery(query, &buf);
  policy.EncodeState(policy.InitialGlobalState(query), &buf);
  overlay.EncodeArea(overlay.FullArea(), &buf);
  wire::EndFrame(&buf, start);
  return buf.Take();
}

net::NetConfig SmallConfig() {
  net::NetConfig config;
  config.dataset = "uniform";
  config.peers = 6;
  config.dims = 2;
  config.tuples = 400;
  config.seed = 3;
  return config;
}

// ---------------------------------------------------------------------------
// UDP transport over real localhost sockets

/// Peers file whose single assignment points every overlay id at `ep`.
net::PeersFile OneProcessFile(const net::Endpoint& ep, uint64_t peers = 6) {
  net::PeersFile pf;
  pf.config = SmallConfig();
  pf.config.peers = peers;
  pf.assignments.push_back(
      net::PeerAssignment{0, static_cast<PeerId>(peers - 1), ep});
  return pf;
}

TEST(UdpTransportTest, RoundTripsFramedDatagrams) {
  // Receiver binds ephemeral; the sender's peers file then points peer 0
  // at the receiver, and the receiver learns the client's return address
  // from the arriving datagram's source.
  auto recv = net::UdpSocketTransport::Open(
      OneProcessFile({"127.0.0.1", 0}), {"127.0.0.1", 0});
  ASSERT_TRUE(recv.ok()) << recv.status().message();
  ASSERT_NE((*recv)->local_endpoint().port, 0);
  auto send = net::UdpSocketTransport::Open(
      OneProcessFile((*recv)->local_endpoint()), {"127.0.0.1", 0});
  ASSERT_TRUE(send.ok()) << send.status().message();

  const PeerId client = net::kClientIdBase | 42;
  const net::Envelope env{net::MakeMessageId(client, 1), client, 0,
                          net::MessageKind::kQuery, 0, {}};
  wire::Buffer buf;
  const size_t start = net::BeginEnvelopeFrame(env, &buf);
  buf.PutU8(7);
  wire::EndFrame(&buf, start);
  const std::vector<uint8_t> frame = buf.Take();
  (*send)->Send(env, std::vector<uint8_t>(frame));
  EXPECT_EQ((*send)->datagrams_sent, 1u);

  net::Datagram d;
  ASSERT_TRUE((*recv)->Poll(&d, 2000));
  EXPECT_EQ(d.env.id, env.id);
  EXPECT_EQ(d.env.from, client);
  EXPECT_EQ(d.env.to, 0u);
  EXPECT_EQ(d.env.kind, net::MessageKind::kQuery);
  EXPECT_EQ(d.bytes, frame);

  // The learned client address resolves the reply path.
  const net::Envelope reply{env.id, 0, client, net::MessageKind::kAck, 0, {}};
  wire::Buffer rbuf;
  const size_t rstart = net::BeginEnvelopeFrame(reply, &rbuf);
  wire::EndFrame(&rbuf, rstart);
  (*recv)->Send(reply, rbuf.Take());
  EXPECT_EQ((*recv)->unknown_peer_dropped, 0u);
  net::Datagram rd;
  ASSERT_TRUE((*send)->Poll(&rd, 2000));
  EXPECT_EQ(rd.env.kind, net::MessageKind::kAck);
}

TEST(UdpTransportTest, DropsAndCountsGarbageAndUnknownSenders) {
  auto recv = net::UdpSocketTransport::Open(
      OneProcessFile({"127.0.0.1", 0}), {"127.0.0.1", 0});
  ASSERT_TRUE(recv.ok());
  auto send = net::UdpSocketTransport::Open(
      OneProcessFile((*recv)->local_endpoint()), {"127.0.0.1", 0});
  ASSERT_TRUE(send.ok());

  // Unframed garbage: arrives, fails the frame decode, dropped.
  const net::Envelope to0{1, net::kClientIdBase | 1, 0,
                          net::MessageKind::kQuery, 0, {}};
  (*send)->Send(to0, {0xde, 0xad, 0xbe, 0xef});

  // A frame whose header declares more payload than the datagram carries
  // (truncation in flight): dropped on the same counter.
  wire::Buffer buf;
  const size_t start = net::BeginEnvelopeFrame(to0, &buf);
  for (int i = 0; i < 64; ++i) buf.PutU8(0);
  wire::EndFrame(&buf, start);
  std::vector<uint8_t> truncated = buf.Take();
  truncated.resize(truncated.size() - 32);
  (*send)->Send(to0, std::move(truncated));

  // A well-formed frame claiming an unknown, non-client sender id.
  const net::Envelope unknown_from{2, 77777, 0, net::MessageKind::kQuery, 0,
                                   {}};
  wire::Buffer ubuf;
  const size_t ustart = net::BeginEnvelopeFrame(unknown_from, &ubuf);
  wire::EndFrame(&ubuf, ustart);
  (*send)->Send(unknown_from, ubuf.Take());

  // Pump until all three arrivals were seen (UDP gives no arrival order
  // guarantee); every one must be dropped, so Poll never yields.
  net::Datagram d;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while ((*recv)->datagrams_received < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    EXPECT_FALSE((*recv)->Poll(&d, 50));
  }
  EXPECT_EQ((*recv)->datagrams_received, 3u);
  EXPECT_EQ((*recv)->malformed_dropped, 2u);
  EXPECT_EQ((*recv)->unknown_peer_dropped, 1u);
}

TEST(UdpTransportTest, RefusesOversizeAndUnresolvableSends) {
  auto t = net::UdpSocketTransport::Open(OneProcessFile({"127.0.0.1", 1}),
                                         {"127.0.0.1", 0});
  ASSERT_TRUE(t.ok());
  const net::Envelope env{1, 0, 0, net::MessageKind::kQuery, 0, {}};
  (*t)->Send(env, std::vector<uint8_t>(net::UdpSocketTransport::kMaxDatagram
                                       + 1));
  EXPECT_EQ((*t)->oversize_dropped, 1u);
  const net::Envelope to_nowhere{1, 0, 999, net::MessageKind::kQuery, 0, {}};
  (*t)->Send(to_nowhere, {1});
  EXPECT_EQ((*t)->unknown_peer_dropped, 1u);
  EXPECT_EQ((*t)->datagrams_sent, 0u);
}

// ---------------------------------------------------------------------------
// Daemon decode path under socket realities (datagrams injected directly)

/// Transport that records every send; nothing is delivered anywhere.
class CaptureTransport : public net::Transport {
 public:
  void Send(const net::Envelope& env, std::vector<uint8_t> bytes) override {
    sent.push_back(net::Datagram{env, std::move(bytes)});
  }
  std::vector<net::Datagram> sent;
};

class DaemonTest : public ::testing::Test {
 protected:
  DaemonTest() : overlay_(net::BuildOverlay(SmallConfig())) {}

  std::unique_ptr<MidasOverlay> overlay_;
  const PeerId client_ = net::kClientIdBase | 9;
};

TEST_F(DaemonTest, DuplicateQueryReplaysTheCachedReply) {
  CaptureTransport wire;
  net::PeerDaemon<MidasOverlay> daemon(overlay_.get(), &wire, {0, 1, 2, 3, 4,
                                                               5});
  SkylinePolicy policy;
  const uint64_t id = net::MakeMessageId(client_, 1);
  std::vector<uint8_t> frame = ClientQueryFrame(
      *overlay_, policy, SkylineQuery{}, id, client_, 0, /*r=*/0);
  const net::Envelope env{id, client_, 0, net::MessageKind::kQuery, 0, {}};

  // Serving every peer over a capture transport: child requests go
  // nowhere, so resolve them by running the retry budget dry... no —
  // r=0 on the daemon serving ALL peers still forwards to link targets
  // it serves itself. Instead loop the captured traffic back in, which
  // is a perfect network with in-order delivery.
  daemon.Dispatch(net::Datagram{env, std::vector<uint8_t>(frame)});
  size_t answers = 0;
  std::vector<uint8_t> first_answer;
  for (int round = 0; round < 64 && !wire.sent.empty(); ++round) {
    std::vector<net::Datagram> batch = std::move(wire.sent);
    wire.sent.clear();
    for (auto& d : batch) {
      if (net::IsClientId(d.env.to)) {
        if (d.env.kind == net::MessageKind::kAnswer && answers++ == 0) {
          first_answer = d.bytes;
        }
        continue;
      }
      daemon.Dispatch(std::move(d));
    }
  }
  ASSERT_EQ(answers, 1u);
  ASSERT_FALSE(first_answer.empty());
  EXPECT_GT(daemon.stats().queries_served, 1u);  // children opened sessions

  // The network duplicates the client's query after the session finished:
  // the daemon replays the byte-identical cached answer, opening nothing.
  const uint64_t served_before = daemon.stats().queries_served;
  daemon.Dispatch(net::Datagram{env, std::vector<uint8_t>(frame)});
  EXPECT_EQ(daemon.stats().queries_served, served_before);
  EXPECT_EQ(daemon.stats().duplicates_suppressed, 1u);
  ASSERT_EQ(wire.sent.size(), 1u);
  EXPECT_EQ(wire.sent[0].env.kind, net::MessageKind::kAnswer);
  EXPECT_EQ(wire.sent[0].bytes, first_answer);
  EXPECT_EQ(daemon.stats().retransmissions, 1u);
}

// A client's synthetic id (kClientIdBase | n) must never index the
// profiler's dense per-peer vector: replying to a client once tried to
// resize it to 2^31 PeerLoad slots and took the daemon down with
// bad_alloc. The reply's load lands on the serving peer only.
TEST_F(DaemonTest, ProfilerIgnoresClientIdsOnReply) {
  CaptureTransport wire;
  net::PeerDaemon<MidasOverlay> daemon(overlay_.get(), &wire,
                                       {0, 1, 2, 3, 4, 5});
  obs::Profiler profiler;
  daemon.SetProfiler(&profiler);
  RangePolicy policy;
  const uint64_t id = net::MakeMessageId(client_, 9);
  const RangeQuery query{overlay_->domain().Center(), 0.25, Norm::kL2};
  std::vector<uint8_t> frame =
      ClientQueryFrame(*overlay_, policy, query, id, client_, 0, /*r=*/0);
  daemon.Dispatch(net::Datagram{
      net::Envelope{id, client_, 0, net::MessageKind::kQuery, 0, {}},
      std::vector<uint8_t>(frame)});
  for (int round = 0; round < 64 && !wire.sent.empty(); ++round) {
    std::vector<net::Datagram> batch = std::move(wire.sent);
    wire.sent.clear();
    for (auto& d : batch) {
      if (net::IsClientId(d.env.to)) continue;
      daemon.Dispatch(std::move(d));
    }
  }
  EXPECT_GT(daemon.stats().replies_sent, 0u);
  EXPECT_LE(profiler.peer_count(), overlay_->NumPeers());
  EXPECT_GT(profiler.Totals().messages_out, 0u);
}

TEST_F(DaemonTest, TruncatedQueryIsRejectedWithoutPoisoningDedup) {
  CaptureTransport wire;
  net::PeerDaemon<MidasOverlay> daemon(overlay_.get(), &wire,
                                       {0, 1, 2, 3, 4, 5});
  RangePolicy policy;
  RangeQuery query;
  query.center = Point(2);
  query.center[0] = query.center[1] = 0.5;
  query.radius = 0.25;
  const uint64_t id = net::MakeMessageId(client_, 2);
  const std::vector<uint8_t> frame =
      ClientQueryFrame(*overlay_, policy, query, id, client_, 1, /*r=*/0);
  const net::Envelope env{id, client_, 1, net::MessageKind::kQuery, 0, {}};

  // Truncated-at-MTU copy first: the frame header survives but the
  // payload is cut. Rejected — and NOT remembered, so the clean
  // retransmission below must open a session, not hit the dedup window.
  std::vector<uint8_t> cut(frame.begin(), frame.begin() + frame.size() / 2);
  daemon.Dispatch(net::Datagram{env, std::move(cut)});
  EXPECT_EQ(daemon.stats().frames_rejected, 1u);
  EXPECT_EQ(daemon.stats().queries_served, 0u);

  daemon.Dispatch(net::Datagram{env, std::vector<uint8_t>(frame)});
  EXPECT_EQ(daemon.stats().duplicates_suppressed, 0u);
  EXPECT_GE(daemon.stats().queries_served, 1u);
}

TEST_F(DaemonTest, RejectsUnknownPolicyTagAndMisdeliveredFrames) {
  CaptureTransport wire;
  net::PeerDaemon<MidasOverlay> daemon(overlay_.get(), &wire, {0, 1, 2});

  // Valid frame, nonsense policy tag byte.
  const uint64_t id = net::MakeMessageId(client_, 3);
  const net::Envelope env{id, client_, 0, net::MessageKind::kQuery, 0, {}};
  wire::Buffer buf;
  const size_t start = net::BeginEnvelopeFrame(env, &buf);
  buf.PutU8(0xee);
  wire::EndFrame(&buf, start);
  daemon.Dispatch(net::Datagram{env, buf.Take()});
  EXPECT_EQ(daemon.stats().frames_rejected, 1u);

  // Query for a peer this process does not serve.
  SkylinePolicy policy;
  const uint64_t id2 = net::MakeMessageId(client_, 4);
  std::vector<uint8_t> other = ClientQueryFrame(
      *overlay_, policy, SkylineQuery{}, id2, client_, 5, /*r=*/0);
  const net::Envelope env2{id2, client_, 5, net::MessageKind::kQuery, 0, {}};
  daemon.Dispatch(net::Datagram{env2, std::move(other)});
  EXPECT_EQ(daemon.stats().misdelivered, 1u);

  // A bare answer datagram addresses clients, never daemons.
  const net::Envelope aenv{id, 0, 1, net::MessageKind::kAnswer, 0, {}};
  daemon.Dispatch(net::Datagram{aenv, {}});
  EXPECT_EQ(daemon.stats().misdelivered, 2u);
  EXPECT_EQ(daemon.stats().queries_served, 0u);
}

TEST_F(DaemonTest, GivingUpOnSilentChildrenCountsLinksUnresolved) {
  // The daemon serves only peer 0; every child forward leaves on a
  // capture transport and is never answered. With a zero retry budget
  // each pending request gives up on its first timeout, the session
  // degrades to a partial answer, and links_unresolved records every
  // abandoned subtree.
  CaptureTransport wire;
  net::RetryOptions retry;
  retry.timeout = 1.0;  // wall-clock ms
  retry.timeout_cap = 2.0;
  retry.max_retries = 0;
  net::PeerDaemon<MidasOverlay> daemon(overlay_.get(), &wire, {0}, retry);
  SkylinePolicy policy;
  const uint64_t id = net::MakeMessageId(client_, 21);
  std::vector<uint8_t> frame = ClientQueryFrame(
      *overlay_, policy, SkylineQuery{}, id, client_, 0, /*r=*/2);
  const net::Envelope env{id, client_, 0, net::MessageKind::kQuery, 0, {}};
  daemon.Dispatch(net::Datagram{env, std::move(frame)});
  ASSERT_GT(daemon.stats().child_requests, 0u);
  EXPECT_EQ(daemon.stats().links_unresolved, 0u);

  // The slow walk forwards to one child at a time, so each give-up can
  // arm the next doomed forward: pump the timer wheel until the session
  // closes, then every forward ever issued must have been abandoned.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (daemon.Depths().open_sessions > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    daemon.timers().RunDue();
  }
  EXPECT_EQ(daemon.Depths().open_sessions, 0u);
  EXPECT_EQ(daemon.stats().links_unresolved, daemon.stats().child_requests);
  EXPECT_EQ(daemon.Depths().pending_requests, 0u);
  EXPECT_EQ(daemon.timers().pending(), 0u);

  // The degraded session still reported: the client got an answer.
  bool answered = false;
  for (const auto& d : wire.sent) {
    answered |= net::IsClientId(d.env.to) &&
                d.env.kind == net::MessageKind::kAnswer;
  }
  EXPECT_TRUE(answered);
  EXPECT_EQ(daemon.stats().answers_finalized, 1u);
}

TEST_F(DaemonTest, GarbageAdminFramesAreCountedNeverAnswered) {
  // The admin plane must survive the same abuse as the query plane: a
  // frame whose envelope says "admin" but whose bytes are truncated or
  // carry stray payload is counted and dropped — no reply, no crash.
  CaptureTransport wire;
  net::PeerDaemon<MidasOverlay> daemon(overlay_.get(), &wire, {0, 1, 2});
  const net::Envelope env{net::MakeMessageId(client_, 31), client_, 0,
                          net::MessageKind::kAdminStats, 0, {}};
  wire::Buffer buf;
  const size_t start = net::BeginEnvelopeFrame(env, &buf);
  wire::EndFrame(&buf, start);
  const std::vector<uint8_t> frame = buf.Take();

  uint64_t rejected = 0;
  // Every strict prefix of a valid probe frame fails the re-decode.
  for (size_t cut = 0; cut < frame.size(); cut += 3) {
    daemon.Dispatch(net::Datagram{
        env, std::vector<uint8_t>(frame.begin(),
                                  frame.begin() + static_cast<long>(cut))});
    rejected += 1;
    EXPECT_EQ(daemon.stats().frames_rejected, rejected);
  }
  // Deterministic byte soup after the envelope: payload on an admin
  // request violates the empty-payload contract.
  uint64_t x = 0x2545F4914F6CDD1Dull;
  for (int round = 0; round < 16; ++round) {
    wire::Buffer b;
    const size_t s = net::BeginEnvelopeFrame(env, &b);
    for (int i = 0; i <= round; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      b.PutU8(static_cast<uint8_t>(x));
    }
    wire::EndFrame(&b, s);
    daemon.Dispatch(net::Datagram{env, b.Take()});
    rejected += 1;
    EXPECT_EQ(daemon.stats().frames_rejected, rejected);
  }
  EXPECT_TRUE(wire.sent.empty());
  EXPECT_EQ(daemon.stats().admin_requests, 0u);

  // And the well-formed probe still works afterwards.
  daemon.Dispatch(net::Datagram{env, std::vector<uint8_t>(frame)});
  EXPECT_EQ(daemon.stats().admin_requests, 1u);
  EXPECT_EQ(wire.sent.size(), 1u);
}

/// Two daemons split the overlay; the test is the network between them,
/// delivering every batch reversed and duplicated. The final answer must
/// be byte-identical to a single daemon serving all peers on an orderly
/// loop — reordering and duplication are invisible in the answer.
TEST_F(DaemonTest, ReorderedAndDuplicatedDeliveryYieldsIdenticalAnswers) {
  TopKPolicy policy;
  LinearScorer scorer(std::vector<double>{0.7, 1.3});
  TopKQuery query;
  query.scorer = &scorer;
  query.k = 8;
  const PeerId target = 1;
  const uint64_t id = net::MakeMessageId(client_, 5);
  const std::vector<uint8_t> frame =
      ClientQueryFrame(*overlay_, policy, query, id, client_, target,
                       /*r=*/2);
  const net::Envelope env{id, client_, target, net::MessageKind::kQuery, 0,
                          {}};

  // Reference: one daemon, all peers, in-order loopback pumping.
  std::vector<uint8_t> reference;
  {
    CaptureTransport wire;
    net::PeerDaemon<MidasOverlay> daemon(overlay_.get(), &wire,
                                         {0, 1, 2, 3, 4, 5});
    daemon.Dispatch(net::Datagram{env, std::vector<uint8_t>(frame)});
    for (int round = 0; round < 64 && !wire.sent.empty(); ++round) {
      std::vector<net::Datagram> batch = std::move(wire.sent);
      wire.sent.clear();
      for (auto& d : batch) {
        if (net::IsClientId(d.env.to)) {
          if (d.env.kind == net::MessageKind::kAnswer) reference = d.bytes;
          continue;
        }
        daemon.Dispatch(std::move(d));
      }
    }
    ASSERT_FALSE(reference.empty());
  }

  CaptureTransport wire_a;
  CaptureTransport wire_b;
  net::PeerDaemon<MidasOverlay> a(overlay_.get(), &wire_a, {0, 1, 2});
  net::PeerDaemon<MidasOverlay> b(overlay_.get(), &wire_b, {3, 4, 5});
  std::vector<uint8_t> live;
  size_t client_answers = 0;
  a.Dispatch(net::Datagram{env, std::vector<uint8_t>(frame)});
  for (int round = 0; round < 128; ++round) {
    std::vector<net::Datagram> batch;
    for (auto* w : {&wire_a, &wire_b}) {
      for (auto& d : w->sent) batch.push_back(std::move(d));
      w->sent.clear();
    }
    if (batch.empty()) break;
    std::reverse(batch.begin(), batch.end());
    for (auto& d : batch) {
      if (net::IsClientId(d.env.to)) {
        if (d.env.kind == net::MessageKind::kAnswer) {
          client_answers += 1;
          if (live.empty()) live = d.bytes;
        }
        continue;
      }
      net::PeerDaemon<MidasOverlay>& dst = d.env.to <= 2 ? a : b;
      dst.Dispatch(net::Datagram{d.env, std::vector<uint8_t>(d.bytes)});
      dst.Dispatch(std::move(d));  // every datagram delivered twice
    }
  }
  ASSERT_FALSE(live.empty());
  EXPECT_EQ(live, reference);
  EXPECT_GE(client_answers, 1u);
  // Duplicates were seen and absorbed, not served as fresh sessions.
  EXPECT_GT(a.stats().duplicates_suppressed + b.stats().duplicates_suppressed,
            0u);
  EXPECT_GT(a.stats().late_responses + b.stats().late_responses, 0u);
}

// ---------------------------------------------------------------------------
// End to end: daemon processes on real UDP vs the loopback simulator

uint16_t ReserveLocalPort() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

bool SameTuples(const TupleVec& a, const TupleVec& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id) return false;
    for (int d = 0; d < a[i].key.dims(); ++d) {
      if (a[i].key[d] != b[i].key[d]) return false;
    }
  }
  return true;
}

TEST(NetEndToEndTest, UdpOverlayMatchesLoopbackSimulator) {
  net::PeersFile pf;
  pf.config = SmallConfig();
  pf.assignments = {
      net::PeerAssignment{0, 2, {"127.0.0.1", ReserveLocalPort()}},
      net::PeerAssignment{3, 5, {"127.0.0.1", ReserveLocalPort()}},
  };
  const std::unique_ptr<MidasOverlay> overlay = net::BuildOverlay(pf.config);

  auto t1 = net::UdpSocketTransport::Open(pf, pf.assignments[0].endpoint);
  auto t2 = net::UdpSocketTransport::Open(pf, pf.assignments[1].endpoint);
  ASSERT_TRUE(t1.ok()) << t1.status().message();
  ASSERT_TRUE(t2.ok()) << t2.status().message();
  net::RetryOptions retry;  // wall-clock ms in the live overlay
  retry.timeout = 100.0;
  retry.timeout_cap = 800.0;
  net::PeerDaemon<MidasOverlay> d1(overlay.get(), t1->get(), {0, 1, 2},
                                   retry);
  net::PeerDaemon<MidasOverlay> d2(overlay.get(), t2->get(), {3, 4, 5},
                                   retry);
  std::atomic<bool> stop{false};
  std::thread th1([&] { d1.ServeLoop(stop, 5); });
  std::thread th2([&] { d2.ServeLoop(stop, 5); });

  auto client_transport =
      net::UdpSocketTransport::Open(pf, {"127.0.0.1", 0});
  ASSERT_TRUE(client_transport.ok());
  net::NetClient<MidasOverlay> client(overlay.get(), client_transport->get(),
                                      net::kClientIdBase | 1, retry);

  // Top-k: the live client reruns the simulator's analytic bootstrap
  // (route to the scorer peak, seed walk), so both executions start at
  // the same peer with the same witnessed seed state.
  LinearScorer scorer(std::vector<double>{0.4, 1.1});
  TopKQuery topk;
  topk.scorer = &scorer;
  topk.k = 6;
  {
    TopKPolicy policy;
    const PeerId initiator = 4;
    uint64_t hops = 0;
    const PeerId start = overlay->RouteFrom(
        initiator, topk.scorer->Peak(overlay->domain()), &hops);
    const TopKState seed =
        TopKSeedWalk(*overlay, policy, topk, start, nullptr);
    const auto live = client.Execute(policy, topk, start, /*r=*/0, seed);
    ASSERT_TRUE(live.complete);

    AsyncEngine<MidasOverlay, TopKPolicy> engine(overlay.get(), policy);
    QueryRequest<TopKPolicy> req;
    req.initiator = initiator;
    req.query = topk;
    req.ripple = RippleParam::Fast();
    const auto ref = SeededTopK(*overlay, engine, req);
    EXPECT_TRUE(ref.complete);
    EXPECT_TRUE(SameTuples(live.answer, ref.answer));
  }

  // Skyline, slow walk (r=2), started at the domain-origin owner.
  {
    SkylinePolicy policy;
    const PeerId initiator = 0;
    uint64_t hops = 0;
    const PeerId start =
        overlay->RouteFrom(initiator, overlay->domain().lo(), &hops);
    const auto live = client.Execute(policy, SkylineQuery{}, start, /*r=*/2,
                                     policy.InitialGlobalState({}));
    ASSERT_TRUE(live.complete);

    AsyncEngine<MidasOverlay, SkylinePolicy> engine(overlay.get(), policy);
    QueryRequest<SkylinePolicy> req;
    req.initiator = initiator;
    req.query = SkylineQuery{};
    req.ripple = RippleParam::Hops(2);
    const auto ref = SeededSkyline(*overlay, engine, req);
    EXPECT_TRUE(ref.complete);
    EXPECT_TRUE(SameTuples(live.answer, ref.answer));
  }

  // Range, no bootstrap: plain initiator, default state.
  {
    RangePolicy policy;
    RangeQuery range;
    range.center = Point(2);
    range.center[0] = 0.4;
    range.center[1] = 0.6;
    range.radius = 0.2;
    const auto live = client.Execute(policy, range, 2, /*r=*/1,
                                     policy.InitialGlobalState(range));
    ASSERT_TRUE(live.complete);

    AsyncEngine<MidasOverlay, RangePolicy> engine(overlay.get(), policy);
    QueryRequest<RangePolicy> req;
    req.initiator = 2;
    req.query = range;
    req.ripple = RippleParam::Hops(1);
    const auto ref = engine.Run(req);
    EXPECT_TRUE(ref.complete);
    EXPECT_TRUE(SameTuples(live.answer, ref.answer));
  }

  stop.store(true);
  th1.join();
  th2.join();
  EXPECT_GT(d1.stats().queries_served + d2.stats().queries_served, 0u);
  EXPECT_EQ((*t1)->malformed_dropped, 0u);
  EXPECT_EQ((*t2)->malformed_dropped, 0u);
}

}  // namespace
}  // namespace ripple
