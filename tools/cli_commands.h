#ifndef RIPPLE_TOOLS_CLI_COMMANDS_H_
#define RIPPLE_TOOLS_CLI_COMMANDS_H_

// The ripple_cli subcommands, one entry point per command, each with its
// own common/flags.h FlagParser (`ripple_cli <cmd> --help` prints it):
//
//   run            one query or a workload against the simulated overlay
//   serve          one live-overlay daemon process (UDP sockets)
//   net-bench      wall-clock workload driver against a live overlay
//   monitor        admin-protocol cluster scraper / readiness probe
//   trace-assemble merge per-peer journals into one span tree
//
// Every entry point receives argv shifted past the subcommand token, so
// argv[0] is the subcommand name (what FlagParser prints as the program).

namespace ripple {

int RunQuery(int argc, char** argv);          // ripple_cli.cc
int RunTraceAssemble(int argc, char** argv);  // ripple_cli.cc
int RunServe(int argc, char** argv);          // ripple_cli_net.cc
int RunNetBench(int argc, char** argv);       // ripple_cli_net.cc
int RunMonitor(int argc, char** argv);        // ripple_cli_monitor.cc

}  // namespace ripple

#endif  // RIPPLE_TOOLS_CLI_COMMANDS_H_
