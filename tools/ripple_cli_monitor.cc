// ripple_cli monitor — live cluster scraper over the admin protocol.
//
//   $ ripple_cli monitor --peers-file=peers.txt --count=5 --interval-ms=1000
//   $ ripple_cli monitor --peers-file=peers.txt --wait-healthy-ms=5000
//
// Resolves the peers file, probes every daemon endpoint (ping, stats,
// snapshot, health) with per-probe timeouts, marks non-responders
// unhealthy, and prints an ASCII dashboard per sample. --series-out
// appends one JSON object per sample to a JSONL file whose cluster
// totals use the exact field names of `serve --stats-out`, so a series'
// final totals are directly comparable to the daemons' shutdown reports.
// --wait-healthy-ms turns the command into a readiness probe: it exits 0
// as soon as every endpoint answers a PING, 1 if the deadline passes —
// the deployment-script replacement for polling daemon logs.

#include <csignal>
#include <cstdio>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cli_commands.h"
#include "common/flags.h"
#include "common/log.h"
#include "net/monitor.h"
#include "net/peers.h"
#include "net/protocol.h"
#include "net/udp_transport.h"

namespace ripple {
namespace {

std::atomic<bool> g_monitor_stop{false};

void OnMonitorSignal(int) {
  g_monitor_stop.store(true, std::memory_order_relaxed);
}

}  // namespace

int RunMonitor(int argc, char** argv) {
  std::string peers_file;
  std::string listen = "127.0.0.1:0";
  std::string series_out;
  std::string log_level;
  int64_t interval_ms = 1000;
  int64_t count = 0;
  int64_t probe_timeout_ms = 250;
  int64_t probe_attempts = 2;
  int64_t wait_healthy_ms = 0;
  bool quiet = false;
  FlagParser flags(
      "ripple_cli monitor — scrapes every daemon of a live overlay over "
      "the admin protocol (ping/stats/snapshot/health), prints an ASCII "
      "dashboard per sample and appends a JSONL time series.");
  flags.AddString("peers-file",
                  "shared topology file naming the daemon endpoints "
                  "(docs/NET.md)",
                  &peers_file);
  flags.AddString("listen", "monitor bind address (port 0 = ephemeral)",
                  &listen);
  flags.AddInt("interval-ms", "delay between samples", &interval_ms);
  flags.AddInt("count", "samples to take (0 = until SIGINT/SIGTERM)",
               &count);
  flags.AddInt("probe-timeout-ms", "per-probe reply patience",
               &probe_timeout_ms);
  flags.AddInt("probe-attempts",
               "probes per endpoint before it is marked unhealthy",
               &probe_attempts);
  flags.AddInt("wait-healthy-ms",
               "readiness mode: ping until every endpoint answers, exit "
               "0/1 (no scraping)",
               &wait_healthy_ms);
  flags.AddString("series-out", "append one JSON object per sample here",
                  &series_out);
  flags.AddBool("quiet", "suppress the dashboard (series/exit code only)",
                &quiet);
  flags.AddString("log-level", "error|warn|info|debug|trace", &log_level);
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    const bool help = st.code() == StatusCode::kFailedPrecondition;
    std::fprintf(help ? stdout : stderr, "%s\n",
                 help ? flags.Help().c_str() : st.message().c_str());
    return help ? 0 : 2;
  }
  if (!log_level.empty()) {
    SetGlobalLogLevel(ParseLogLevel(log_level, GlobalLogLevel()));
  }
  if (peers_file.empty()) {
    std::fprintf(stderr, "--peers-file is required\n");
    return 2;
  }
  auto peers = net::LoadPeersFile(peers_file);
  if (!peers.ok()) {
    std::fprintf(stderr, "%s\n", peers.status().message().c_str());
    return 2;
  }
  auto listen_ep = net::ParseEndpoint(listen);
  if (!listen_ep.ok()) {
    std::fprintf(stderr, "--listen: %s\n",
                 listen_ep.status().message().c_str());
    return 2;
  }
  auto transport = net::UdpSocketTransport::Open(*peers, *listen_ep);
  if (!transport.ok()) {
    std::fprintf(stderr, "%s\n", transport.status().message().c_str());
    return 2;
  }

  net::MonitorOptions opts;
  opts.probe_timeout_ms = static_cast<int>(probe_timeout_ms);
  opts.probe_attempts = static_cast<int>(probe_attempts);
  // Client id 2: distinct from net-bench's driver (kClientIdBase | 1) so
  // a daemon can serve queries and probes to different return addresses.
  net::ClusterMonitor monitor(*peers, transport->get(),
                              net::kClientIdBase | 2, opts);

  if (wait_healthy_ms > 0) {
    const bool up = monitor.WaitHealthy(static_cast<int>(wait_healthy_ms));
    if (!quiet) {
      std::printf("monitor: cluster %s (%zu endpoints)\n",
                  up ? "healthy" : "NOT healthy within deadline",
                  peers->Processes().size());
    }
    return up ? 0 : 1;
  }

  std::FILE* series = nullptr;
  if (!series_out.empty()) {
    series = std::fopen(series_out.c_str(), "a");
    if (series == nullptr) {
      std::fprintf(stderr, "--series-out: cannot open %s\n",
                   series_out.c_str());
      return 2;
    }
  }
  std::signal(SIGTERM, OnMonitorSignal);
  std::signal(SIGINT, OnMonitorSignal);

  const auto t0 = std::chrono::steady_clock::now();
  int exit_code = 0;
  for (int64_t i = 0; count == 0 || i < count; ++i) {
    if (g_monitor_stop.load(std::memory_order_relaxed)) break;
    if (i > 0) {
      // Sleep in small slices so a signal ends the series promptly.
      const auto wake = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(interval_ms);
      while (std::chrono::steady_clock::now() < wake &&
             !g_monitor_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      if (g_monitor_stop.load(std::memory_order_relaxed)) break;
    }
    const double at_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    const net::ClusterSample sample = monitor.Scrape(at_ms);
    if (!quiet) {
      std::fputs(net::ClusterMonitor::Dashboard(sample).c_str(), stdout);
      std::fflush(stdout);
    }
    if (series != nullptr) {
      std::fprintf(series, "%s\n",
                   net::ClusterMonitor::SampleToJson(sample).c_str());
      std::fflush(series);
    }
    if (sample.totals.healthy != sample.totals.endpoints) exit_code = 1;
  }
  if (series != nullptr) std::fclose(series);
  return exit_code;
}

}  // namespace ripple
