#!/usr/bin/env bash
# Keeps the prose honest. Three checks over the repo's documentation:
#
#   1. Internal links resolve: every relative markdown link target in
#      README.md, EXPERIMENTS.md, ROADMAP.md and docs/*.md must exist
#      on disk (anchors are stripped; http(s) links skipped).
#      CHANGES.md is exempt everywhere: it is a historical log, and
#      history legitimately names symbols and files that no longer
#      exist.
#   2. Architecture coverage: docs/ARCHITECTURE.md has a `src/<module>/`
#      section for EVERY top-level directory under src/, discovered
#      dynamically — adding a module without documenting it fails.
#   3. Dead symbols: identifiers that were removed from the tree must not
#      survive in the docs (e.g. kRippleSlow, replaced by
#      RippleParam::Slow() two PRs ago). The denylist below is the
#      graveyard; lint_deprecated.sh keeps the same names out of code.
#
# Usage: tools/lint_docs.sh   (exit 0 clean, 1 on violations)
set -euo pipefail

cd "$(dirname "$0")/.."

FAIL=0

DOC_FILES=(README.md EXPERIMENTS.md ROADMAP.md docs/*.md)

# --- 1. internal link check -------------------------------------------
for doc in "${DOC_FILES[@]}"; do
  [[ -f "$doc" ]] || continue
  dir=$(dirname "$doc")
  # Inline markdown links: [text](target). One per line via grep -o.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"          # drop the anchor
    [[ -n "$path" ]] || continue
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      echo "lint_docs: dead link in $doc -> $target" >&2
      FAIL=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" 2>/dev/null \
           | sed 's/.*(\(.*\))/\1/' || true)
done

# --- 2. every src module has an ARCHITECTURE.md section ----------------
ARCH=docs/ARCHITECTURE.md
if [[ ! -f "$ARCH" ]]; then
  echo "lint_docs: $ARCH is missing" >&2
  FAIL=1
else
  for mod_dir in src/*/; do
    mod=$(basename "$mod_dir")
    if ! grep -q "^#.*src/$mod/" "$ARCH"; then
      echo "lint_docs: $ARCH has no section heading for src/$mod/" >&2
      FAIL=1
    fi
  done
fi

# --- 3. dead symbols ---------------------------------------------------
# Names removed from the tree; docs mentioning them are stale. Extend
# this list whenever an API is deleted or renamed.
DEAD_SYMBOLS=(
  kRippleSlow
  'compat::Run'
  'RunTopK('
  'RunSkyline('
)
for sym in "${DEAD_SYMBOLS[@]}"; do
  hits=$(grep -rnF -- "$sym" "${DOC_FILES[@]}" 2>/dev/null || true)
  if [[ -n "$hits" ]]; then
    echo "lint_docs: dead symbol '$sym' still referenced:" >&2
    echo "$hits" >&2
    FAIL=1
  fi
done

if [[ "$FAIL" -ne 0 ]]; then
  echo "lint_docs: fix the stale documentation above" >&2
  exit 1
fi
echo "lint_docs: clean"
