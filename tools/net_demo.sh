#!/usr/bin/env bash
# tools/net_demo.sh — the 3-process localhost acceptance run.
#
# Forms a 12-peer MIDAS overlay out of three `ripple_cli serve` daemons
# on ephemeral localhost UDP ports, drives the default workload mix
# through `ripple_cli net-bench` (simulator reference first, then the
# live sockets, answers compared byte-for-byte), SIGTERMs the daemons so
# they flush journals/profiles, and gates the resulting BENCH_net.json
# against the committed repo-root baseline.
#
#   tools/net_demo.sh [build_dir] [out_dir]
#
# Defaults: build_dir=build, out_dir=a fresh mktemp dir. Override the
# workload with WORKLOAD=default:32 (or a workload file path) — note the
# baseline gate is skipped then, since `queries` is part of the scale
# config and a different workload is an apples-to-oranges diff.
#
# To refresh the committed baseline after an intentional change:
#   tools/net_demo.sh build out && cp out/BENCH_net.json .
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$(mktemp -d /tmp/ripple_net_demo.XXXXXX)}"
WORKLOAD="${WORKLOAD:-default:16}"
CLI="$BUILD_DIR/tools/ripple_cli"
if [[ ! -x "$CLI" ]]; then
  echo "net_demo: $CLI not built (cmake -B $BUILD_DIR -S . && \
cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi
mkdir -p "$OUT_DIR"

# Three free UDP ports: bind port 0, read the assignment back, release.
# The window between close and the daemons' bind is the usual tiny race;
# ephemeral allocation makes collisions with other services unlikely.
readarray -t PORTS < <(python3 - <<'PY'
import socket
socks = []
for _ in range(3):
    s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    s.bind(("127.0.0.1", 0))
    socks.append(s)
for s in socks:
    print(s.getsockname()[1])
    s.close()
PY
)

PEERS="$OUT_DIR/peers.txt"
cat > "$PEERS" <<EOF
# 12-peer overlay across three localhost daemons (tools/net_demo.sh).
config dataset=uniform peers=12 dims=2 tuples=1000 seed=7 patterns=0
peer 0-3 127.0.0.1:${PORTS[0]}
peer 4-7 127.0.0.1:${PORTS[1]}
peer 8-11 127.0.0.1:${PORTS[2]}
EOF
echo "net_demo: peers file $PEERS"
cat "$PEERS"

PIDS=()
stop_daemons() {
  for pid in "${PIDS[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
  for pid in "${PIDS[@]}"; do wait "$pid" 2>/dev/null || true; done
  PIDS=()
}
trap stop_daemons EXIT

for i in 0 1 2; do
  "$CLI" serve --peers-file="$PEERS" --listen="127.0.0.1:${PORTS[$i]}" \
    --journal-out="$OUT_DIR/journal-$i" \
    --profile-out="$OUT_DIR/profile-$i.json" \
    --stats-out="$OUT_DIR/stats-$i.json" \
    >"$OUT_DIR/serve-$i.log" 2>&1 &
  PIDS+=($!)
done

# Readiness via the admin plane: PING every daemon until the whole
# cluster answers. This probes the actual serve loop over the actual
# socket — a daemon that bound its port but wedged before serving would
# pass a log grep and fail this.
if ! "$CLI" monitor --peers-file="$PEERS" --wait-healthy-ms=10000; then
  echo "net_demo: cluster never became healthy:" >&2
  for i in 0 1 2; do
    if ! kill -0 "${PIDS[$i]}" 2>/dev/null; then
      echo "net_demo: daemon $i died during startup" >&2
    fi
    cat "$OUT_DIR/serve-$i.log" >&2
  done
  exit 1
fi

"$CLI" net-bench --peers-file="$PEERS" --workload="$WORKLOAD" \
  --bench-out="$OUT_DIR" --show

# Same recipe again under --ripple=auto: the adaptive controller picks r
# per item during the simulator pass and the live pass replays it. Gated
# by the binary's own exit status (complete=true, zero mismatches) — the
# JSON goes to a separate dir so the committed BENCH_net.json baseline
# (which pins the per-item r of the default mix) stays comparable.
mkdir -p "$OUT_DIR/auto"
"$CLI" net-bench --peers-file="$PEERS" --workload="$WORKLOAD" \
  --ripple=auto --bench-out="$OUT_DIR/auto"
echo "net_demo: --ripple=auto run complete (exit status gates it)"

# Scrape the cluster while it is still up: two samples (the second
# windows QPS against the first) appended to a JSONL series.
"$CLI" monitor --peers-file="$PEERS" --count=2 --interval-ms=200 \
  --series-out="$OUT_DIR/series.jsonl"

# SIGTERM the daemons and show what they flushed on the way out.
stop_daemons
trap - EXIT
echo
echo "net_demo: daemon shutdown reports"
for i in 0 1 2; do
  sed "s/^/  [s$i] /" "$OUT_DIR/serve-$i.log"
done

# The live scrape and the daemons' own shutdown reports must agree: the
# series' final cluster totals equal the sum of the three stats-out
# files on every protocol counter. Only admin_requests is exempt — the
# scrape itself increments it while the probes are in flight (the
# monitor is an observer of everything else, a participant of that one).
python3 - "$OUT_DIR" <<'PY'
import json, sys
out_dir = sys.argv[1]
with open(f"{out_dir}/series.jsonl", encoding="utf-8") as f:
    last = json.loads(f.readlines()[-1])
scraped = last["totals"]["stats"]
summed = {}
for i in range(3):
    with open(f"{out_dir}/stats-{i}.json", encoding="utf-8") as f:
        for name, value in json.load(f)["stats"].items():
            summed[name] = summed.get(name, 0) + value
bad = [name for name in summed
       if name != "admin_requests" and scraped.get(name) != summed[name]]
if sorted(scraped) != sorted(summed):
    print("net_demo: FAIL — scraped/shutdown field lists differ:",
          sorted(scraped), "vs", sorted(summed), file=sys.stderr)
    sys.exit(1)
if bad:
    for name in bad:
        print(f"net_demo: FAIL — scraped {name}={scraped.get(name)} but "
              f"daemons report {summed[name]}", file=sys.stderr)
    sys.exit(1)
print(f"net_demo: scrape/shutdown totals agree on "
      f"{len(summed) - 1} counters (admin_requests exempt)")
PY

# Gate against the committed baseline — only for the default workload;
# any other scale is not comparable (and bench_check would say so).
if [[ -f BENCH_net.json && "$WORKLOAD" == "default:16" ]]; then
  python3 tools/bench_check.py --baseline . --fresh "$OUT_DIR" --suite net
else
  echo "net_demo: baseline gate skipped (no BENCH_net.json baseline or" \
       "non-default workload)"
fi
echo "net_demo: artifacts in $OUT_DIR"
