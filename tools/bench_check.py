#!/usr/bin/env python3
"""Diff a fresh BENCH_<suite>.json against the committed baseline.

The bench harness (bench/bench_common.*) writes schema-versioned
BENCH_figs.json / BENCH_ablations.json documents; the copies at the repo
root are the committed perf trajectory. This gate re-reads both sides and
fails (exit 1) when any deterministic metric drifts beyond its tolerance,
when a baseline case disappeared, or when the documents are not comparable
(schema version or scale config mismatch).

Metric classes:
  * wall_ms_* and cpu_* metrics are INFORMATIONAL: wall-clock noise across
    machines makes them ungateable, so drift is printed but never fails.
  * everything else (hops, messages, tuples, congestion, peak load, gini)
    is deterministic given seed+config and is gated with --rtol/--atol.
  * exact_ metrics are machine-independent work counts (kernel tuples
    scanned, dominance comparisons, heap pushes — exact functions of
    seed+config, no scheduling or FP-noise component) and are gated with
    ZERO tolerance: any baseline-vs-fresh difference fails. The kernels
    suite uses these so a silent change to a kernel's work profile (a
    pruning bound loosened, a scan made quadratic) trips the gate even
    when wall clock hides it.
  * floor rule: a metric named wall_floor_<X> declares a minimum for the
    sibling metric wall_<X> in the same case OF THE SAME (fresh) document.
    Both carry the wall_ prefix, so they never participate in
    baseline-vs-fresh drift gating, but fresh wall_<X> < wall_floor_<X>
    fails the gate. Benches emit machine-adapted floors (e.g. the
    executor's thread-scaling floor degrades on boxes with fewer cores),
    which keeps the check meaningful on any hardware.
  * ceiling rule: the mirror image — wall_ceiling_<X> declares a maximum
    for the sibling wall_<X> of the same fresh document, and fresh
    wall_<X> > wall_ceiling_<X> fails the gate. Benches emit the ceiling
    from a same-machine reference measurement (e.g. the observability
    bench caps the traced wall clock at a multiple of the untraced one),
    so the rule gates overhead ratios, not absolute machine speed.
  * deterministic bounds: floor_<X> / ceiling_<X> (no wall_ prefix) are
    the same intra-document rules for DETERMINISTIC sibling metrics <X>.
    Unlike the wall_ variants, both the bound and its target also
    participate in baseline-vs-fresh drift gating. The cache bench uses
    these: ceiling_bytes_ratio=1 pins cache-on wire bytes at or below
    cache-off, floor_cache_hit_rate pins the locality workload's hit
    rate, ceiling_answer_mismatch=0 pins byte-identical answers.

Cases present only in the fresh run are reported as additions (a warning,
not a failure) so adding a bench never breaks the gate; removing one does.

Schema v2 adds bytes_on_wire_mean (real serialized frame bytes) to every
query case. The gate enforces the measurement is wired up: a fresh case
that moved messages (messages_mean > 0) must report a non-zero
bytes_on_wire_mean — a frame is never smaller than its 35-byte header,
so zero bytes with non-zero messages means the byte accounting broke.

The `net` suite (BENCH_net.json, written by `ripple_cli net-bench`
against a live UDP overlay) adds its own intra-document rules: every
query must complete (completed == queries) and every answer must match
the loopback simulator byte-for-byte (answer_mismatch == 0). Those hold
on any machine — the wall-clock latency/QPS metrics ride along under the
informational wall_ prefix. The suite also carries mon_* metrics from the
post-run admin-protocol scrape of every daemon: mon_unhealthy,
mon_frames_rejected and mon_transport_dropped must be zero, and
mon_answers_finalized (the daemons' own answer count) must equal the
client's completed count.

Usage:
  tools/bench_check.py --baseline <dir> --fresh <dir> [--suite figs]...
                       [--rtol 0.10] [--atol 0.5] [--list]

Exit codes: 0 ok, 1 regression/mismatch, 2 usage or I/O error.
Stdlib only — no third-party imports.
"""

import argparse
import json
import os
import sys

INFORMATIONAL_PREFIXES = ("wall_", "cpu_")
EXACT_PREFIX = "exact_"
DEFAULT_SUITES = ("figs", "ablations", "net")


def is_informational(metric):
    return metric.startswith(INFORMATIONAL_PREFIXES)


def is_exact(metric):
    return metric.startswith(EXACT_PREFIX)


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_check: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check_comparable(suite, base, fresh, failures):
    """Schema/config gates: a diff across versions or scales is meaningless."""
    if base.get("schema_version") != fresh.get("schema_version"):
        failures.append(
            f"[{suite}] schema_version mismatch: baseline "
            f"{base.get('schema_version')} vs fresh "
            f"{fresh.get('schema_version')}")
        return False
    base_cfg = base.get("meta", {}).get("config", {})
    fresh_cfg = fresh.get("meta", {}).get("config", {})
    if base_cfg != fresh_cfg:
        failures.append(
            f"[{suite}] scale config mismatch (apples-to-oranges diff): "
            f"baseline {base_cfg} vs fresh {fresh_cfg}")
        return False
    base_seed = base.get("meta", {}).get("seed")
    fresh_seed = fresh.get("meta", {}).get("seed")
    if base_seed != fresh_seed:
        failures.append(
            f"[{suite}] seed mismatch: baseline {base_seed} vs fresh "
            f"{fresh_seed}")
        return False
    return True


def within(base_v, fresh_v, rtol, atol):
    return abs(fresh_v - base_v) <= max(atol, rtol * abs(base_v))


FLOOR_PREFIX = "wall_floor_"
CEIL_PREFIX = "wall_ceiling_"


def check_bounds(suite, fresh, failures, notes):
    """Intra-document bound rules on the fresh document:
    wall_floor_<X> <= wall_<X> <= wall_ceiling_<X> for wall metrics, and
    floor_<X> <= <X> <= ceiling_<X> for deterministic ones."""
    for case_id in sorted(fresh.get("cases", {})):
        metrics = fresh["cases"][case_id]
        for metric in sorted(metrics):
            if metric.startswith(FLOOR_PREFIX):
                is_floor = True
                target = "wall_" + metric[len(FLOOR_PREFIX):]
            elif metric.startswith(CEIL_PREFIX):
                is_floor = False
                target = "wall_" + metric[len(CEIL_PREFIX):]
            elif metric.startswith("floor_"):
                is_floor = True
                target = metric[len("floor_"):]
            elif metric.startswith("ceiling_"):
                is_floor = False
                target = metric[len("ceiling_"):]
            else:
                continue
            bound = metrics[metric]
            if not isinstance(bound, (int, float)):
                continue
            if target not in metrics:
                failures.append(
                    f"[{suite}] {case_id}: {metric}={bound:g} declared but "
                    f"{target} is missing from the fresh run")
                continue
            value = metrics[target]
            if is_floor and value < bound:
                failures.append(
                    f"[{suite}] {case_id}: {target}={value:g} below its "
                    f"declared floor {metric}={bound:g}")
            elif not is_floor and value > bound:
                failures.append(
                    f"[{suite}] {case_id}: {target}={value:g} above its "
                    f"declared ceiling {metric}={bound:g}")
            else:
                notes.append(
                    f"[{suite}] {case_id}: {target}={value:g} meets "
                    f"{'floor' if is_floor else 'ceiling'} {bound:g}")


def check_bytes_on_wire(suite, fresh, failures):
    """Intra-document rule: messages moved => bytes were measured."""
    for case_id in sorted(fresh.get("cases", {})):
        metrics = fresh["cases"][case_id]
        messages = metrics.get("messages_mean")
        if not isinstance(messages, (int, float)) or messages <= 0:
            continue
        bytes_mean = metrics.get("bytes_on_wire_mean")
        if not isinstance(bytes_mean, (int, float)) or bytes_mean <= 0:
            failures.append(
                f"[{suite}] {case_id}: messages_mean={messages:g} but "
                f"bytes_on_wire_mean={bytes_mean} — messages moved without "
                f"measured wire bytes")


def check_net_soundness(suite, fresh, failures):
    """Intra-document rules for the live-overlay suite: the run is only
    meaningful if every query completed with the simulator's answer."""
    for case_id in sorted(fresh.get("cases", {})):
        metrics = fresh["cases"][case_id]
        queries = metrics.get("queries")
        completed = metrics.get("completed")
        mismatches = metrics.get("answer_mismatch")
        if isinstance(queries, (int, float)):
            if completed != queries:
                failures.append(
                    f"[{suite}] {case_id}: completed={completed} of "
                    f"queries={queries:g} — the live overlay dropped answers")
        if isinstance(mismatches, (int, float)) and mismatches != 0:
            failures.append(
                f"[{suite}] {case_id}: answer_mismatch={mismatches:g} — "
                f"live answers diverged from the loopback simulator")
        # Monitor-scrape soundness: net-bench scrapes every daemon over
        # the admin protocol after the run. On a clean run against fresh
        # daemons nothing may be unreachable, rejected, or dropped, and
        # the daemons' own answer count must equal the client's.
        unhealthy = metrics.get("mon_unhealthy")
        if isinstance(unhealthy, (int, float)) and unhealthy != 0:
            failures.append(
                f"[{suite}] {case_id}: mon_unhealthy={unhealthy:g} — "
                f"daemon(s) unreachable over the admin protocol")
        rejected = metrics.get("mon_frames_rejected")
        if isinstance(rejected, (int, float)) and rejected != 0:
            failures.append(
                f"[{suite}] {case_id}: mon_frames_rejected={rejected:g} — "
                f"daemons rejected undecodable payloads during the run")
        dropped = metrics.get("mon_transport_dropped")
        if isinstance(dropped, (int, float)) and dropped != 0:
            failures.append(
                f"[{suite}] {case_id}: mon_transport_dropped={dropped:g} — "
                f"transports dropped malformed/oversize/unknown datagrams")
        finalized = metrics.get("mon_answers_finalized")
        if (isinstance(finalized, (int, float))
                and isinstance(completed, (int, float))
                and finalized != completed):
            failures.append(
                f"[{suite}] {case_id}: mon_answers_finalized={finalized:g} "
                f"but completed={completed:g} — daemon and client answer "
                f"counts disagree")


def diff_suite(suite, base, fresh, rtol, atol, failures, notes):
    base_cases = base.get("cases", {})
    fresh_cases = fresh.get("cases", {})

    for case_id in sorted(set(fresh_cases) - set(base_cases)):
        notes.append(f"[{suite}] new case (not in baseline): {case_id}")

    for case_id in sorted(base_cases):
        if case_id not in fresh_cases:
            failures.append(
                f"[{suite}] case missing from fresh run: {case_id}")
            continue
        base_metrics = base_cases[case_id]
        fresh_metrics = fresh_cases[case_id]
        for metric in sorted(base_metrics):
            base_v = base_metrics[metric]
            if not isinstance(base_v, (int, float)):
                continue
            if metric not in fresh_metrics:
                if is_informational(metric):
                    notes.append(
                        f"[{suite}] {case_id}: informational metric "
                        f"{metric} missing from fresh run")
                else:
                    failures.append(
                        f"[{suite}] {case_id}: metric missing from fresh "
                        f"run: {metric}")
                continue
            fresh_v = fresh_metrics[metric]
            if is_exact(metric):
                if fresh_v != base_v:
                    failures.append(
                        f"[{suite}] {case_id}: {metric} baseline={base_v:g} "
                        f"fresh={fresh_v:g} — exact_ metrics allow no drift")
                continue
            if within(base_v, fresh_v, rtol, atol):
                continue
            delta = fresh_v - base_v
            rel = abs(delta) / abs(base_v) if base_v else float("inf")
            line = (f"[{suite}] {case_id}: {metric} baseline={base_v:g} "
                    f"fresh={fresh_v:g} delta={delta:+g} rel={rel:.1%}")
            if is_informational(metric):
                notes.append(line + " (informational, not gated)")
            else:
                failures.append(line)


def main():
    parser = argparse.ArgumentParser(
        description="Gate fresh BENCH_*.json against the committed baseline")
    parser.add_argument("--baseline", default=".",
                        help="directory holding baseline BENCH_<suite>.json")
    parser.add_argument("--fresh", required=True,
                        help="directory holding the fresh run's files")
    parser.add_argument("--suite", action="append", dest="suites",
                        choices=list(DEFAULT_SUITES),
                        help="suite(s) to check; default: all present in "
                             "the baseline directory")
    parser.add_argument("--rtol", type=float, default=0.10,
                        help="relative tolerance for gated metrics")
    parser.add_argument("--atol", type=float, default=0.5,
                        help="absolute tolerance floor for gated metrics")
    parser.add_argument("--list", action="store_true",
                        help="also print every compared case")
    args = parser.parse_args()

    suites = args.suites
    if not suites:
        suites = [s for s in DEFAULT_SUITES
                  if os.path.exists(
                      os.path.join(args.baseline, f"BENCH_{s}.json"))]
        if not suites:
            print(f"bench_check: no BENCH_*.json baselines under "
                  f"{args.baseline}", file=sys.stderr)
            return 2

    failures, notes = [], []
    compared = 0
    for suite in suites:
        base_path = os.path.join(args.baseline, f"BENCH_{suite}.json")
        fresh_path = os.path.join(args.fresh, f"BENCH_{suite}.json")
        base = load_doc(base_path)
        fresh = load_doc(fresh_path)
        if base is None:
            failures.append(f"[{suite}] baseline not found: {base_path}")
            continue
        if fresh is None:
            failures.append(f"[{suite}] fresh run not found: {fresh_path} "
                            f"(did the bench binaries run with "
                            f"RIPPLE_BENCH_JSON_DIR={args.fresh}?)")
            continue
        if not check_comparable(suite, base, fresh, failures):
            continue
        diff_suite(suite, base, fresh, args.rtol, args.atol, failures, notes)
        check_bounds(suite, fresh, failures, notes)
        check_bytes_on_wire(suite, fresh, failures)
        if suite == "net":
            check_net_soundness(suite, fresh, failures)
        compared += len(base.get("cases", {}))
        if args.list:
            for case_id in sorted(base.get("cases", {})):
                print(f"[{suite}] compared {case_id}")

    for line in notes:
        print(f"note: {line}")
    for line in failures:
        print(f"FAIL: {line}")
    if failures:
        print(f"bench_check: {len(failures)} failure(s) across "
              f"{len(suites)} suite(s)")
        return 1
    print(f"bench_check: OK — {compared} case(s) within rtol={args.rtol} "
          f"atol={args.atol} across suites: {', '.join(suites)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
