#!/usr/bin/env bash
# Fails when in-tree code resurrects the deprecated pre-QueryRequest
# compatibility shims. The shims lived in src/ripple/compat.h for exactly
# one migration-window PR and are now deleted; the patterns stay banned so
# they do not creep back in:
#   * including ripple/compat.h (the header no longer exists)
#   * calling through ripple::compat:: (Run shims, kRippleSlow)
#   * the bare kRippleSlow sentinel (replaced by RippleParam::Slow())
#
# Also forbidden: opening ".csv" result files anywhere but
# obs::BenchReporter (src/obs/bench_report.cc). All benchmark result
# emission flows through the reporter so BENCH_<suite>.json, the CSV
# panels and the bench_check.py gate stay consistent.
#
# Usage: tools/lint_deprecated.sh   (exit 0 clean, 1 on violations)
set -euo pipefail

cd "$(dirname "$0")/.."

FAIL=0
check() {
  local pattern="$1" what="$2"
  local hits
  hits=$(grep -rn --include='*.cc' --include='*.h' --include='*.cpp' \
           -e "$pattern" src bench examples tests tools || true)
  if [[ -n "$hits" ]]; then
    echo "lint_deprecated: forbidden $what:" >&2
    echo "$hits" >&2
    FAIL=1
  fi
}

check 'ripple/compat\.h'  'include of the deprecated compat header'
check 'compat::'          'use of the ripple::compat shim namespace'
check '\bkRippleSlow\b'   'legacy kRippleSlow sentinel (use RippleParam::Slow())'

# CSV emission outside the sanctioned reporter: a `.csv` string literal in
# C++ code means someone is hand-rolling result files again.
CSV_HITS=$(grep -rn --include='*.cc' --include='*.h' --include='*.cpp' \
             -e '\.csv"' src bench examples tests tools \
           | grep -v '^src/obs/bench_report\.cc:' || true)
if [[ -n "$CSV_HITS" ]]; then
  echo "lint_deprecated: raw .csv emission outside obs::BenchReporter:" >&2
  echo "$CSV_HITS" >&2
  echo "route results through bench::Reporter() / BenchReporter::WritePanelCsv" >&2
  FAIL=1
fi

if [[ "$FAIL" -ne 0 ]]; then
  echo "lint_deprecated: migrate the callers above to QueryRequest/RippleParam" >&2
  exit 1
fi
echo "lint_deprecated: clean"
