// ripple_cli — run any rank query against a simulated MIDAS deployment
// from the command line.
//
//   $ ripple_cli --query=topk --dataset=nba --peers=4096 --dims=6 --k=5
//   $ ripple_cli --query=skyline --dataset=synth --dims=4
//   $ ripple_cli --query=skyband --band=3
//   $ ripple_cli --query=range --radius=0.1
//   $ ripple_cli --query=diversify --dataset=mirflickr --lambda=0.3
//
// Prints the answer tuples plus the cost metrics the paper reports
// (latency in hops, peers visited, messages, tuples shipped).

#include <cstdio>
#include <map>

#include "common/flags.h"
#include "common/log.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "overlay/midas/midas.h"
#include "queries/diversify_driver.h"
#include "queries/range.h"
#include "queries/skyband.h"
#include "queries/skyline_driver.h"
#include "queries/topk_driver.h"

namespace ripple {
namespace {

int Run(int argc, char** argv) {
  std::string query = "topk";
  std::string dataset = "uniform";
  int64_t peers = 1024;
  int64_t dims = 3;
  int64_t tuples = 20000;
  int64_t k = 10;
  int64_t band = 2;
  int64_t seed = 1;
  std::string ripple_r = "0";
  double lambda = 0.5;
  double radius = 0.1;
  double epsilon = 0.0;
  bool patterns = false;
  int64_t show = 10;
  std::string trace_out;
  std::string metrics_out;
  std::string log_level;

  FlagParser flags(
      "ripple_cli: distributed rank queries over a simulated MIDAS overlay");
  flags.AddString("query",
                  "topk | skyline | skyband | range | diversify", &query);
  flags.AddString("dataset",
                  "uniform | synth | correlated | anticorrelated | nba | "
                  "mirflickr",
                  &dataset);
  flags.AddInt("peers", "overlay size", &peers);
  flags.AddInt("dims", "dimensionality (nba fixes 6, mirflickr 5)", &dims);
  flags.AddInt("tuples", "dataset size (nba fixes 22000)", &tuples);
  flags.AddInt("k", "result size for topk/diversify", &k);
  flags.AddInt("band", "skyband depth", &band);
  flags.AddInt("seed", "master seed", &seed);
  flags.AddString("r", "ripple parameter: 0..Delta or 'slow'", &ripple_r);
  flags.AddDouble("lambda", "diversification relevance weight", &lambda);
  flags.AddDouble("radius", "range query radius (L2)", &radius);
  flags.AddDouble("epsilon", "top-k approximation slack (0 = exact)",
                  &epsilon);
  flags.AddBool("patterns", "enable the border-pattern optimization",
                &patterns);
  flags.AddInt("show", "answer tuples to print", &show);
  flags.AddString("trace-out",
                  "write the query's span tree here: Chrome Trace Event "
                  "JSON, or JSONL when the path ends in .jsonl",
                  &trace_out);
  flags.AddString("metrics-out",
                  "write counters / gauges / histograms here as JSON",
                  &metrics_out);
  flags.AddString("log-level",
                  "error | warn | info | debug | trace (default: "
                  "RIPPLE_LOG_LEVEL or warn)",
                  &log_level);

  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.message().c_str());
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }
  if (dataset == "nba") {
    dims = 6;
    tuples = 22000;
  }
  if (dataset == "mirflickr") dims = 5;
  if (!log_level.empty()) {
    SetGlobalLogLevel(ParseLogLevel(log_level, LogLevel::kWarn));
  }
  // Enable the global registry before the overlay is built so the
  // bootstrap joins' routing shows up under midas.route.* too.
  if (!metrics_out.empty()) obs::Registry::EnableGlobal(true);
  obs::Tracer tracer;
  obs::Tracer* tracer_ptr =
      (!trace_out.empty() || !metrics_out.empty()) ? &tracer : nullptr;

  // Build the network: data first, then joins (median splits follow data).
  Rng data_rng(static_cast<uint64_t>(seed) * 7919);
  const TupleVec data = data::MakeByName(dataset, tuples, dims, &data_rng);
  MidasOptions opt;
  opt.dims = static_cast<int>(dims);
  opt.seed = static_cast<uint64_t>(seed);
  opt.split_rule = MidasSplitRule::kDataMedian;
  opt.border_pattern_links = patterns;
  MidasOverlay overlay(opt);
  for (const Tuple& t : data) overlay.InsertTuple(t);
  while (overlay.NumPeers() < static_cast<size_t>(peers)) overlay.Join();
  const int r = ripple_r == "slow" ? kRippleSlow : std::atoi(ripple_r.c_str());
  std::printf("%s over %zu peers (depth %d), %zu tuples, r=%s\n",
              dataset.c_str(), overlay.NumPeers(), overlay.MaxDepth(),
              overlay.TotalTuples(), ripple_r.c_str());

  Rng rng(static_cast<uint64_t>(seed) ^ 0x5555);
  const PeerId initiator = overlay.RandomPeer(&rng);
  TupleVec answer;
  QueryStats stats;

  if (query == "topk") {
    std::vector<double> weights(dims);
    double sum = 0;
    for (auto& w : weights) sum += (w = 0.1 + rng.UniformDouble());
    for (auto& w : weights) w = -w / sum;
    LinearScorer scorer(weights);
    TopKQuery q{&scorer, static_cast<size_t>(k), epsilon};
    Engine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
    engine.SetTracer(tracer_ptr);
    auto result = SeededTopK(overlay, engine, initiator, q, r);
    std::printf("scoring: %s\n", scorer.ToString().c_str());
    answer = std::move(result.answer);
    stats = result.stats;
  } else if (query == "skyline") {
    Engine<MidasOverlay, SkylinePolicy> engine(&overlay, SkylinePolicy{});
    engine.SetTracer(tracer_ptr);
    auto result = SeededSkyline(overlay, engine, initiator, SkylineQuery{},
                                r);
    answer = std::move(result.answer);
    stats = result.stats;
  } else if (query == "skyband") {
    Engine<MidasOverlay, SkybandPolicy> engine(&overlay, SkybandPolicy{});
    engine.SetTracer(tracer_ptr);
    SkybandQuery q;
    q.band = static_cast<size_t>(band);
    auto result = engine.Run(initiator, q, r);
    answer = std::move(result.answer);
    stats = result.stats;
  } else if (query == "range") {
    RangeQuery q;
    q.center = data[rng.UniformU64(data.size())].key;
    q.radius = radius;
    std::printf("range center: %s radius %.3f\n", q.center.ToString().c_str(),
                radius);
    Engine<MidasOverlay, RangePolicy> engine(&overlay, RangePolicy{});
    engine.SetTracer(tracer_ptr);
    auto result = engine.Run(initiator, q, r);
    answer = std::move(result.answer);
    stats = result.stats;
  } else if (query == "diversify") {
    DiversifyObjective obj;
    obj.query = data[rng.UniformU64(data.size())].key;
    obj.lambda = lambda;
    obj.norm = Norm::kL1;
    std::printf("diversify around %s, lambda %.2f\n",
                obj.query.ToString().c_str(), lambda);
    RippleDivService<MidasOverlay> service(&overlay, initiator, r);
    service.mutable_engine()->SetTracer(tracer_ptr);
    DiversifyOptions options;
    options.k = static_cast<size_t>(k);
    options.service_init = true;
    auto result = Diversify(&service, obj, {}, options);
    std::printf("objective %.4f after %d improve rounds\n", result.objective,
                result.improve_rounds);
    answer = std::move(result.set);
    stats = result.stats;
  } else {
    std::fprintf(stderr, "unknown --query=%s\n%s\n", query.c_str(),
                 flags.Help().c_str());
    return 2;
  }

  std::printf("cost: %s\n", stats.ToString().c_str());
  std::printf("answer: %zu tuples\n", answer.size());
  for (size_t i = 0; i < answer.size() && i < static_cast<size_t>(show);
       ++i) {
    std::printf("  %s\n", answer[i].ToString().c_str());
  }
  if (answer.size() > static_cast<size_t>(show)) {
    std::printf("  ... and %zu more\n",
                answer.size() - static_cast<size_t>(show));
  }

  if (!trace_out.empty()) {
    const bool jsonl = trace_out.size() >= 6 &&
                       trace_out.compare(trace_out.size() - 6, 6, ".jsonl") ==
                           0;
    const Status st = jsonl ? obs::WriteTraceJsonl(tracer, trace_out)
                            : obs::WriteChromeTrace(tracer, trace_out);
    if (!st.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.message().c_str());
      return 1;
    }
    std::printf("trace: %zu spans -> %s (%s)\n", tracer.span_count(),
                trace_out.c_str(), jsonl ? "jsonl" : "chrome-trace");
  }
  if (!metrics_out.empty()) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("query.peers_visited").Inc(stats.peers_visited);
    reg.GetCounter("query.messages").Inc(stats.messages);
    reg.GetCounter("query.tuples_shipped").Inc(stats.tuples_shipped);
    reg.GetGauge("query.latency_hops")
        .Set(static_cast<double>(stats.latency_hops));
    reg.GetGauge("overlay.peers").Set(static_cast<double>(overlay.NumPeers()));
    reg.GetGauge("overlay.depth").Set(static_cast<double>(overlay.MaxDepth()));
    obs::Histogram& arrival = reg.GetHistogram("query.span_arrival_hops");
    obs::Histogram& load = reg.GetHistogram("query.peer_load");
    std::map<uint32_t, uint64_t> visits_per_peer;
    for (const obs::Span& s : tracer.spans()) {
      arrival.Observe(s.start);
      ++visits_per_peer[s.peer];
    }
    for (const auto& [peer, visits] : visits_per_peer) {
      (void)peer;
      load.Observe(static_cast<double>(visits));
    }
    const Status st = obs::WriteMetricsJson(reg, metrics_out);
    if (!st.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   st.message().c_str());
      return 1;
    }
    std::printf("metrics -> %s\n%s", metrics_out.c_str(),
                reg.Summary().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ripple

int main(int argc, char** argv) { return ripple::Run(argc, argv); }
