// ripple_cli — distributed rank queries from the command line, as
// subcommands (tools/cli_commands.h):
//
//   run            one query or a workload on the simulated overlay
//   serve          one live-overlay daemon process (UDP; ripple_cli_net.cc)
//   net-bench      wall-clock driver against a live overlay
//   trace-assemble merge per-peer journals into one span tree
//
//   $ ripple_cli run --query=topk --dataset=nba --peers=4096 --dims=6 --k=5
//   $ ripple_cli run --query=skyline --dataset=synth --dims=4
//   $ ripple_cli run --query=diversify --dataset=mirflickr --lambda=0.3
//   $ ripple_cli run --query=topk --engine=async --loss=0.05 --crash-rate=0.01
//   $ ripple_cli run --workload=default:64 --threads=4 --qps-target=200
//
// Bare invocation (`ripple_cli --query=...`) still works as an alias for
// `run` with a deprecation note on stderr.
//
// Prints the answer tuples plus the cost metrics the paper reports
// (latency in hops, peers visited, messages, tuples shipped). With
// --engine=async the query runs through the discrete-event simulator;
// fault flags then inject message loss / duplication / delay jitter /
// peer crashes, and the coverage report says how the answer degraded.
//
// With --workload the CLI switches from one query to a multi-query
// throughput run through the concurrent executor (src/exec/, see
// docs/EXECUTOR.md): the workload file (or the built-in default mix) is
// compiled against the overlay and driven through a --threads-sized
// worker pool, optionally paced at --qps-target. The export flags keep
// working: --metrics-out additionally carries the exec.* counters,
// --profile-out the per-peer load of the whole workload, --trace-out one
// admission-to-completion span per executed query.
//
// Distributed tracing (docs/OBSERVABILITY.md): --journal-out=DIR flushes
// per-peer event journals (frame sends/receives, span begin/end,
// retransmissions, drops, crashes) as peer-<id>.jsonl files; the
// trace-assemble subcommand merges such a directory back into one global
// span tree offline:
//
//   $ ripple_cli run --query=topk --engine=async --journal-out=/tmp/j
//   $ ripple_cli trace-assemble --journal=/tmp/j
//
// --snapshot-out captures windowed metrics snapshots plus a slow-query
// log (--slow-query-ms) during workload runs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>

#include "cache/adaptive.h"
#include "cache/query_cache.h"
#include "cli_commands.h"
#include "common/flags.h"
#include "common/log.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "exec/batch.h"
#include "exec/compile.h"
#include "exec/executor.h"
#include "exec/workload.h"
#include "obs/assemble.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "overlay/midas/midas.h"
#include "queries/diversify_driver.h"
#include "queries/range.h"
#include "queries/skyband.h"
#include "queries/skyline_driver.h"
#include "queries/topk_driver.h"
#include "sim/async_engine.h"

namespace ripple {
namespace {

/// Splices `from`'s span forest onto the end of `into`, remapping ids.
void MergeSpans(const obs::Tracer& from, obs::Tracer* into) {
  const uint32_t offset = static_cast<uint32_t>(into->span_count());
  for (const obs::Span& s : from.spans()) {
    const uint32_t parent =
        s.parent == obs::kNoSpan ? obs::kNoSpan : s.parent + offset;
    const uint32_t id = into->StartSpan(s.peer, parent, s.kind, s.r, s.start);
    obs::Span copy = s;
    copy.id = id;
    copy.parent = parent;
    into->span(id) = copy;
  }
}

/// Runs `drive` against a freshly built engine of the requested kind; both
/// engines share the QueryRequest/QueryResult API, so the driver callback
/// is written once.
template <typename Policy, typename Driver>
QueryResult<typename Policy::Answer> RunWithEngine(const MidasOverlay& overlay,
                                                   bool async_mode,
                                                   obs::Tracer* tracer,
                                                   obs::Profiler* profiler,
                                                   obs::JournalSet* journal,
                                                   Driver&& drive) {
  if (async_mode) {
    AsyncEngine<MidasOverlay, Policy> engine(&overlay, Policy{});
    engine.SetTracer(tracer);
    engine.SetProfiler(profiler);
    engine.SetJournal(journal);
    return drive(engine);
  }
  Engine<MidasOverlay, Policy> engine(&overlay, Policy{});
  engine.SetTracer(tracer);
  engine.SetProfiler(profiler);
  engine.SetJournal(journal);
  return drive(engine);
}

}  // namespace

/// The `trace-assemble` subcommand: merge per-peer journals written by
/// --journal-out back into one global span forest, offline.
int RunTraceAssemble(int argc, char** argv) {
  std::string journal_path;
  std::string out;
  std::string format = "ascii";
  FlagParser flags(
      "ripple_cli trace-assemble: merge per-peer event journals "
      "(peer-<id>.jsonl, written by --journal-out) into one global span "
      "tree, reconstructing causality from the trace ids the frames "
      "carried and aligning peer clocks Lamport-style from send/recv "
      "pairs");
  flags.AddString("journal",
                  "journal directory (reads every *.jsonl) or one journal "
                  "file",
                  &journal_path);
  flags.AddString("out", "output path (ascii format prints to stdout when "
                  "empty)",
                  &out);
  flags.AddString("format", "ascii | chrome | jsonl", &format);
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.message().c_str());
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }
  if (journal_path.empty()) {
    std::fprintf(stderr, "trace-assemble needs --journal=<dir-or-file>\n");
    return 2;
  }
  const Result<std::vector<obs::PeerJournal>> journals =
      obs::ReadJournals(journal_path);
  if (!journals.ok()) {
    std::fprintf(stderr, "reading journals: %s\n",
                 journals.status().message().c_str());
    return 1;
  }
  const Result<obs::AssembleReport> report = obs::AssembleJournals(*journals);
  if (!report.ok()) {
    std::fprintf(stderr, "assembling: %s\n",
                 report.status().message().c_str());
    return 1;
  }
  std::printf(
      "assembled %zu journal(s): %llu trace(s), %llu span(s)%s\n",
      journals->size(), static_cast<unsigned long long>(report->traces),
      static_cast<unsigned long long>(report->spans),
      report->complete ? "" : " [INCOMPLETE]");
  if (!report->complete) {
    std::printf(
        "  missing_end=%llu orphans=%llu dropped=%llu crashes=%llu\n",
        static_cast<unsigned long long>(report->missing_end),
        static_cast<unsigned long long>(report->orphans),
        static_cast<unsigned long long>(report->dropped),
        static_cast<unsigned long long>(report->crashes));
  }
  for (size_t i = 0; i < report->clock_offsets.size(); ++i) {
    if (report->clock_offsets[i] != 0.0) {
      std::printf("  clock offset journal[%zu] (+%.3f)\n", i,
                  report->clock_offsets[i]);
    }
  }
  Status st;
  if (format == "chrome") {
    st = obs::WriteChromeTrace(report->tracer, out);
  } else if (format == "jsonl") {
    st = obs::WriteTraceJsonl(report->tracer, out);
  } else if (format == "ascii") {
    const std::string tree = report->tracer.ToAscii();
    if (out.empty()) {
      std::fputs(tree.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(out.c_str(), "w");
      if (f == nullptr) {
        st = Status::Internal("cannot open " + out);
      } else {
        std::fputs(tree.c_str(), f);
        std::fclose(f);
      }
    }
  } else {
    std::fprintf(stderr, "unknown --format=%s (ascii | chrome | jsonl)\n",
                 format.c_str());
    return 2;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "writing %s: %s\n", out.c_str(),
                 st.message().c_str());
    return 1;
  }
  if (!out.empty()) {
    std::printf("trace -> %s (%s)\n", out.c_str(), format.c_str());
  }
  return 0;
}

int RunQuery(int argc, char** argv) {
  std::string query = "topk";
  std::string dataset = "uniform";
  std::string engine_kind = "sync";
  int64_t peers = 1024;
  int64_t dims = 3;
  int64_t tuples = 20000;
  int64_t k = 10;
  int64_t band = 2;
  int64_t seed = 1;
  std::string ripple_r = "fast";
  double lambda = 0.5;
  double radius = 0.1;
  double epsilon = 0.0;
  bool patterns = false;
  int64_t show = 10;
  double loss = 0.0;
  double dup = 0.0;
  double jitter = 0.0;
  double crash_rate = 0.0;
  double crash_window = 64.0;
  int64_t fault_seed = 0;
  double timeout = 32.0;
  int64_t max_retries = 3;
  double deadline = 0.0;
  std::string workload;
  int64_t threads = 1;
  double qps_target = 0.0;
  int64_t queue_cap = 64;
  bool cache_on = false;
  int64_t cache_cap = 256;
  int64_t cache_ttl = 0;
  int64_t repeat = 1;
  std::string trace_out;
  std::string metrics_out;
  std::string profile_out;
  std::string journal_out;
  double trace_sample = 0.0;
  std::string snapshot_out;
  double snapshot_every_ms = 50.0;
  double slow_query_ms = 0.0;
  std::string log_level;

  FlagParser flags(
      "ripple_cli: distributed rank queries over a simulated MIDAS overlay");
  flags.AddString("query",
                  "topk | skyline | skyband | range | diversify", &query);
  flags.AddString("dataset",
                  "uniform | synth | correlated | anticorrelated | nba | "
                  "mirflickr",
                  &dataset);
  flags.AddString("engine",
                  "sync (recursive, analytic latency) | async "
                  "(discrete-event messages; honors the fault flags)",
                  &engine_kind);
  flags.AddInt("peers", "overlay size", &peers);
  flags.AddInt("dims", "dimensionality (nba fixes 6, mirflickr 5)", &dims);
  flags.AddInt("tuples", "dataset size (nba fixes 22000)", &tuples);
  flags.AddInt("k", "result size for topk/diversify", &k);
  flags.AddInt("band", "skyband depth", &band);
  flags.AddInt("seed", "master seed", &seed);
  flags.AddString("r",
                  "ripple parameter: 'fast', 'slow', a hop count, or "
                  "'auto' (adaptive controller, docs/CACHING.md)",
                  &ripple_r);
  flags.AddDouble("lambda", "diversification relevance weight", &lambda);
  flags.AddDouble("radius", "range query radius (L2)", &radius);
  flags.AddDouble("epsilon", "top-k approximation slack (0 = exact)",
                  &epsilon);
  flags.AddBool("patterns", "enable the border-pattern optimization",
                &patterns);
  flags.AddInt("show", "answer tuples to print", &show);
  flags.AddDouble("loss", "message loss probability (async engine)", &loss);
  flags.AddDouble("dup", "message duplication probability (async)", &dup);
  flags.AddDouble("jitter", "max extra delay fraction per message (async)",
                  &jitter);
  flags.AddDouble("crash-rate", "per-peer crash probability (async)",
                  &crash_rate);
  flags.AddDouble("crash-window", "crashes drawn in [0, window) sim time",
                  &crash_window);
  flags.AddInt("fault-seed", "fault stream seed (default: --seed)",
               &fault_seed);
  flags.AddDouble("timeout", "initial per-message retry timeout (async)",
                  &timeout);
  flags.AddInt("max-retries", "retransmissions before giving a link up",
               &max_retries);
  flags.AddDouble("deadline",
                  "return a flagged partial answer after this much sim "
                  "time (0 = none; async)",
                  &deadline);
  flags.AddString("workload",
                  "run a multi-query workload through the concurrent "
                  "executor instead of one --query: a workload file path "
                  "(one query per line, see docs/EXECUTOR.md), or "
                  "'default:<N>' for the built-in N-query mix",
                  &workload);
  flags.AddInt("threads", "executor worker-pool size (workload mode)",
               &threads);
  flags.AddDouble("qps-target",
                  "admission pacing in queries/second, 0 = as fast as "
                  "backpressure allows (workload mode)",
                  &qps_target);
  flags.AddInt("queue-cap",
               "bounded admission-queue capacity per worker (workload "
               "mode)",
               &queue_cap);
  flags.AddBool("cache",
                "initiator-side answer/bound cache + duplicate batching "
                "(workload mode; incompatible with fault injection — a "
                "cached answer would mask the degradation)",
                &cache_on);
  flags.AddInt("cache-cap", "cache capacity in entries (LRU beyond it)",
               &cache_cap);
  flags.AddInt("cache-ttl",
               "cache TTL in logical ticks (one tick per executed query; "
               "0 = no expiry)",
               &cache_ttl);
  flags.AddInt("repeat",
               "run the workload this many times through the same cache/"
               "controller (workload mode; later passes hit what earlier "
               "passes inserted)",
               &repeat);
  flags.AddString("trace-out",
                  "write the query's span tree here: Chrome Trace Event "
                  "JSON, or JSONL when the path ends in .jsonl",
                  &trace_out);
  flags.AddString("metrics-out",
                  "write counters / gauges / histograms here as JSON "
                  "(includes a per-peer profile section)",
                  &metrics_out);
  flags.AddString("profile-out",
                  "write the per-peer load profile here as JSON: totals, "
                  "skew stats (Gini, peak/mean) and the hotspot table",
                  &profile_out);
  flags.AddString("journal-out",
                  "write per-peer event journals (peer-<id>.jsonl) into "
                  "this directory; reassemble offline with the "
                  "trace-assemble subcommand. Single-query mode "
                  "force-samples the query; workload mode samples per "
                  "--trace-sample (defaulting it to 1.0)",
                  &journal_out);
  flags.AddDouble("trace-sample",
                  "head-based trace sampling probability in [0,1] for "
                  "workload mode (decided once per query at the "
                  "initiator; the decision rides the v2 frame header)",
                  &trace_sample);
  flags.AddString("snapshot-out",
                  "write windowed metrics snapshots plus the slow-query "
                  "log here as JSON (workload mode)",
                  &snapshot_out);
  flags.AddDouble("snapshot-every-ms",
                  "snapshot capture period in wall-clock ms",
                  &snapshot_every_ms);
  flags.AddDouble("slow-query-ms",
                  "record executed queries slower than this admission-to-"
                  "completion latency into the slow-query log, force-"
                  "sampling ones head sampling skipped (0 = off)",
                  &slow_query_ms);
  flags.AddString("log-level",
                  "error | warn | info | debug | trace (default: "
                  "RIPPLE_LOG_LEVEL or warn)",
                  &log_level);

  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.message().c_str());
    return parsed.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }
  if (dataset == "nba") {
    dims = 6;
    tuples = 22000;
  }
  if (dataset == "mirflickr") dims = 5;
  if (!log_level.empty()) {
    SetGlobalLogLevel(ParseLogLevel(log_level, LogLevel::kWarn));
  }
  const bool async_mode = engine_kind == "async";
  if (!async_mode && engine_kind != "sync") {
    std::fprintf(stderr, "unknown --engine=%s (sync | async)\n",
                 engine_kind.c_str());
    return 2;
  }
  const Result<RippleParam> ripple = RippleParam::Parse(ripple_r);
  if (!ripple.ok()) {
    std::fprintf(stderr, "bad --r: %s\n",
                 ripple.status().message().c_str());
    return 2;
  }
  // Enable the global registry before the overlay is built so the
  // bootstrap joins' routing shows up under midas.route.* too.
  if (!metrics_out.empty() || !snapshot_out.empty()) {
    obs::Registry::EnableGlobal(true);
  }
  obs::Tracer tracer;
  obs::Tracer* tracer_ptr =
      (!trace_out.empty() || !metrics_out.empty() || !journal_out.empty())
          ? &tracer
          : nullptr;
  // Distributed tracing: one JournalSet shared by the tracer (span
  // mirroring) and every engine (frame events). Single-query mode
  // force-samples the query — head sampling is a workload-scale tool —
  // so qtrace is nonzero exactly when journaling is on.
  obs::JournalSet journal;
  obs::JournalSet* journal_ptr = journal_out.empty() ? nullptr : &journal;
  // The engines attach the journal (and the trace id) to their tracer
  // inside Run(); the main tracer must NOT be pre-attached, or workload
  // mode's span merge would re-journal every worker span as a begin
  // without an end.
  const uint64_t qtrace =
      journal_out.empty() ? 0 : (static_cast<uint64_t>(seed) | 1ULL);
  // Same for the global profiler: enabling it before the joins run means
  // RecordRouteStep charges the bootstrap routing hops to the peers that
  // forwarded them, alongside the query-time load the engines record.
  const bool want_profile = !profile_out.empty() || !metrics_out.empty();
  obs::Profiler* profiler_ptr = nullptr;
  if (want_profile) {
    obs::Profiler::Global().Clear();
    obs::Profiler::EnableGlobal(true);
    profiler_ptr = &obs::Profiler::Global();
  }

  // Build the network: data first, then joins (median splits follow data).
  Rng data_rng(static_cast<uint64_t>(seed) * 7919);
  const TupleVec data = data::MakeByName(dataset, tuples, dims, &data_rng);
  MidasOptions opt;
  opt.dims = static_cast<int>(dims);
  opt.seed = static_cast<uint64_t>(seed);
  opt.split_rule = MidasSplitRule::kDataMedian;
  opt.border_pattern_links = patterns;
  MidasOverlay overlay(opt);
  for (const Tuple& t : data) overlay.InsertTuple(t);
  while (overlay.NumPeers() < static_cast<size_t>(peers)) overlay.Join();
  std::printf("%s over %zu peers (depth %d), %zu tuples, r=%s, engine=%s\n",
              dataset.c_str(), overlay.NumPeers(), overlay.MaxDepth(),
              overlay.TotalTuples(), ripple->ToString().c_str(),
              async_mode ? "async" : "sync");

  net::FaultOptions fault;
  fault.loss_rate = loss;
  fault.dup_rate = dup;
  fault.delay_jitter = jitter;
  fault.crash_rate = crash_rate;
  fault.crash_window = crash_window;
  fault.seed = static_cast<uint64_t>(fault_seed != 0 ? fault_seed : seed);
  net::RetryOptions retry;
  retry.timeout = timeout;
  retry.max_retries = static_cast<int>(max_retries);
  if (fault.AnyFault() && !async_mode) {
    std::fprintf(stderr,
                 "fault flags need --engine=async (the sync engine models "
                 "a perfect network)\n");
    return 2;
  }
  if (cache_on && fault.AnyFault()) {
    std::fprintf(stderr,
                 "--cache is incompatible with fault injection: a cached "
                 "answer would mask the degradation the faults produce "
                 "(and churn/crash events invalidate the cache anyway)\n");
    return 2;
  }

  // The adaptive ripple controller behind --r=auto / r=auto workload
  // items: deterministic, seeded, fed sequentially (docs/CACHING.md).
  cache::AdaptiveController controller(
      cache::DepthHint(overlay.NumPeers()));

  RippleParam ripple_param = *ripple;
  if (ripple_param.is_auto()) {
    ripple_param = controller.Choose();
    std::printf("r=auto -> %s (%s)\n", ripple_param.ToString().c_str(),
                controller.Summary().c_str());
  }

  Rng rng(static_cast<uint64_t>(seed) ^ 0x5555);
  const PeerId initiator = overlay.RandomPeer(&rng);
  const double deadline_or_inf =
      deadline > 0 ? deadline : std::numeric_limits<double>::infinity();
  TupleVec answer;
  QueryStats stats;
  net::Coverage coverage;
  bool complete = true;
  double completion_time = 0.0;
  const bool workload_mode = !workload.empty();

  if (workload_mode) {
    // Multi-query throughput mode: compile the workload and drive it
    // through the concurrent executor (--query is ignored here; the mix
    // comes from the workload spec).
    std::vector<exec::WorkloadItem> items;
    if (workload == "default" || workload.rfind("default:", 0) == 0) {
      int64_t n = 16;
      if (workload.rfind("default:", 0) == 0) {
        n = std::atoll(workload.c_str() + 8);
      }
      if (n <= 0) {
        std::fprintf(stderr, "bad --workload=%s (want default:<N>, N > 0)\n",
                     workload.c_str());
        return 2;
      }
      items = exec::DefaultWorkloadMix(static_cast<size_t>(n));
    } else {
      Result<std::vector<exec::WorkloadItem>> loaded =
          exec::LoadWorkloadFile(workload);
      if (!loaded.ok()) {
        std::fprintf(stderr, "--workload: %s\n",
                     loaded.status().message().c_str());
        return 2;
      }
      items = std::move(*loaded);
    }

    exec::CompileOptions copts;
    copts.seed = static_cast<uint64_t>(seed);
    copts.async = async_mode;
    copts.fault = fault;
    copts.retry = retry;
    // Head sampling: an explicit --trace-sample wins; otherwise journaling
    // implies sampling everything (a journal of zero traces is useless).
    copts.trace_sample =
        trace_sample > 0.0 ? trace_sample
                           : (journal_ptr != nullptr ? 1.0 : 0.0);
    obs::SnapshotSeries snapshots(&obs::Registry::Global());
    obs::SlowQueryLog slow_log(slow_query_ms);
    exec::ExecutorOptions eopts;
    eopts.threads = static_cast<int>(threads);
    eopts.queue_capacity = static_cast<size_t>(queue_cap > 0 ? queue_cap : 1);
    eopts.seed = static_cast<uint64_t>(seed);
    eopts.qps_target = qps_target;
    eopts.collect_spans = tracer_ptr != nullptr;
    eopts.journal = journal_ptr;
    if (!snapshot_out.empty()) {
      eopts.snapshots = &snapshots;
      eopts.snapshot_every_ms = snapshot_every_ms > 0 ? snapshot_every_ms : 50;
    }
    if (slow_query_ms > 0.0) eopts.slow_log = &slow_log;
    exec::Executor executor(eopts);
    std::printf("executing %zu queries on %lld thread(s)%s\n", items.size(),
                static_cast<long long>(eopts.threads),
                qps_target > 0 ? " (paced)" : "");

    // Batched execution engages when the cache is on (answer/bound reuse
    // plus duplicate merging) or any item asked for r=auto (the engines
    // treat unresolved Auto as fast, so the plan must resolve it).
    // Plain workloads keep the legacy compile-and-run path so their
    // duplicate items still execute individually.
    const bool any_auto = std::any_of(
        items.begin(), items.end(),
        [](const exec::WorkloadItem& it) { return it.ripple.is_auto(); });
    cache::CacheOptions cache_copts;
    cache_copts.capacity =
        static_cast<size_t>(cache_cap > 0 ? cache_cap : 1);
    cache_copts.ttl_ticks =
        cache_ttl > 0 ? static_cast<uint64_t>(cache_ttl) : 0;
    cache::QueryCache qcache(cache_copts);
    exec::WorkloadResult result;
    const int64_t passes = repeat > 0 ? repeat : 1;
    if (cache_on || any_auto) {
      exec::BatchOptions bopts;
      bopts.cache = cache_on ? &qcache : nullptr;
      bopts.controller = &controller;
      bopts.merge_duplicates = cache_on;
      for (int64_t pass = 0; pass < passes; ++pass) {
        exec::BatchPlan plan;
        result = exec::RunBatchedWorkload(executor, overlay, items, copts,
                                          bopts, &plan);
        std::printf("pass %lld/%lld: %zu lead, %zu merged, %zu cache hit\n",
                    static_cast<long long>(pass + 1),
                    static_cast<long long>(passes), plan.leads, plan.follows,
                    plan.hits);
      }
      if (cache_on) {
        std::printf("cache: %s\n", qcache.stats().ToString().c_str());
        cache::RecordCacheMetrics(qcache.stats());
      }
      if (any_auto) {
        std::printf("controller: %s\n", controller.Summary().c_str());
      }
    } else {
      exec::CompiledWorkload compiled =
          exec::CompileWorkload(overlay, items, copts);
      for (int64_t pass = 0; pass < passes; ++pass) {
        result = executor.Run(compiled.jobs, overlay.NumPeers());
      }
    }

    std::printf("%s\n", result.Summary().c_str());
    std::map<std::string, std::pair<size_t, size_t>> by_kind;  // {ran, shed}
    std::map<std::string, double> kind_ms;
    for (const exec::QueryOutcome& out : result.queries) {
      const std::string kind =
          exec::WorkloadKindName(items[out.index].kind);
      auto& slot = by_kind[kind];
      if (out.shed) {
        ++slot.second;
        continue;
      }
      ++slot.first;
      kind_ms[kind] += out.total_ms;
    }
    for (const auto& [kind, counts] : by_kind) {
      std::printf("  %-8s %4zu ran, %zu shed, mean latency %.2f ms\n",
                  kind.c_str(), counts.first, counts.second,
                  counts.first > 0 ? kind_ms[kind] / counts.first : 0.0);
    }
    if (result.partial > 0) {
      std::printf("WARNING: %zu partial answers — sound digests of what "
                  "was reachable, not exact results\n",
                  result.partial);
    }

    // Feed the shared export paths below: totals into the metrics block,
    // admission spans into --trace-out, the merged per-peer load of the
    // whole workload into the global profiler next to the bootstrap
    // routing charges it already holds.
    stats = result.total_stats;
    coverage = result.coverage;
    complete = result.partial == 0 && result.shed == 0;
    for (const exec::QueryOutcome& out : result.queries) {
      completion_time = std::max(completion_time, out.completion_time);
    }
    for (const obs::Tracer& t : executor.worker_tracers()) {
      MergeSpans(t, &tracer);
    }
    if (want_profile) obs::Profiler::Global().Merge(result.profile);
    if (slow_query_ms > 0.0) {
      std::printf("slow queries (>= %.1f ms): %zu recorded, %llu dropped\n",
                  slow_query_ms, slow_log.Entries().size(),
                  static_cast<unsigned long long>(slow_log.dropped()));
    }
    if (!snapshot_out.empty()) {
      const Status st = obs::WriteSnapshotJson(
          &snapshots, slow_query_ms > 0.0 ? &slow_log : nullptr,
          snapshot_out);
      if (!st.ok()) {
        std::fprintf(stderr, "snapshot export failed: %s\n",
                     st.message().c_str());
        return 1;
      }
      std::printf("snapshots: %zu windows -> %s\n", snapshots.size(),
                  snapshot_out.c_str());
    }
  } else if (query == "topk") {
    std::vector<double> weights(dims);
    double sum = 0;
    for (auto& w : weights) sum += (w = 0.1 + rng.UniformDouble());
    for (auto& w : weights) w = -w / sum;
    LinearScorer scorer(weights);
    const QueryRequest<TopKPolicy> request{
        .initiator = initiator,
        .query = TopKQuery{&scorer, static_cast<size_t>(k), epsilon},
        .ripple = ripple_param,
        .deadline = deadline_or_inf,
        .retry = retry,
        .fault = fault,
        .trace_id = qtrace};
    auto result = RunWithEngine<TopKPolicy>(
        overlay, async_mode, tracer_ptr, profiler_ptr, journal_ptr,
        [&](auto& engine) { return SeededTopK(overlay, engine, request); });
    std::printf("scoring: %s\n", scorer.ToString().c_str());
    answer = std::move(result.answer);
    stats = result.stats;
    coverage = result.coverage;
    complete = result.complete;
    completion_time = result.completion_time;
  } else if (query == "skyline") {
    const QueryRequest<SkylinePolicy> request{.initiator = initiator,
                                              .ripple = ripple_param,
                                              .deadline = deadline_or_inf,
                                              .retry = retry,
                                              .fault = fault,
                                              .trace_id = qtrace};
    auto result = RunWithEngine<SkylinePolicy>(
        overlay, async_mode, tracer_ptr, profiler_ptr, journal_ptr,
        [&](auto& engine) { return SeededSkyline(overlay, engine, request); });
    answer = std::move(result.answer);
    stats = result.stats;
    coverage = result.coverage;
    complete = result.complete;
    completion_time = result.completion_time;
  } else if (query == "skyband") {
    SkybandQuery q;
    q.band = static_cast<size_t>(band);
    const QueryRequest<SkybandPolicy> request{.initiator = initiator,
                                              .query = q,
                                              .ripple = ripple_param,
                                              .deadline = deadline_or_inf,
                                              .retry = retry,
                                              .fault = fault,
                                              .trace_id = qtrace};
    auto result = RunWithEngine<SkybandPolicy>(
        overlay, async_mode, tracer_ptr, profiler_ptr, journal_ptr,
        [&](auto& engine) { return engine.Run(request); });
    answer = std::move(result.answer);
    stats = result.stats;
    coverage = result.coverage;
    complete = result.complete;
    completion_time = result.completion_time;
  } else if (query == "range") {
    RangeQuery q;
    q.center = data[rng.UniformU64(data.size())].key;
    q.radius = radius;
    std::printf("range center: %s radius %.3f\n", q.center.ToString().c_str(),
                radius);
    const QueryRequest<RangePolicy> request{.initiator = initiator,
                                            .query = q,
                                            .ripple = ripple_param,
                                            .deadline = deadline_or_inf,
                                            .retry = retry,
                                            .fault = fault,
                                            .trace_id = qtrace};
    auto result = RunWithEngine<RangePolicy>(
        overlay, async_mode, tracer_ptr, profiler_ptr, journal_ptr,
        [&](auto& engine) { return engine.Run(request); });
    answer = std::move(result.answer);
    stats = result.stats;
    coverage = result.coverage;
    complete = result.complete;
    completion_time = result.completion_time;
  } else if (query == "diversify") {
    DiversifyObjective obj;
    obj.query = data[rng.UniformU64(data.size())].key;
    obj.lambda = lambda;
    obj.norm = Norm::kL1;
    std::printf("diversify around %s, lambda %.2f\n",
                obj.query.ToString().c_str(), lambda);
    const QueryRequest<DivPolicy> base{.initiator = initiator,
                                       .ripple = ripple_param,
                                       .deadline = deadline_or_inf,
                                       .retry = retry,
                                       .fault = fault,
                                       .trace_id = qtrace};
    std::unique_ptr<SingleTupleService> service;
    if (async_mode) {
      auto s = std::make_unique<
          RippleDivService<MidasOverlay, AsyncEngine<MidasOverlay, DivPolicy>>>(
          &overlay, base);
      s->mutable_engine()->SetTracer(tracer_ptr);
      s->mutable_engine()->SetProfiler(profiler_ptr);
      s->mutable_engine()->SetJournal(journal_ptr);
      service = std::move(s);
    } else {
      auto s = std::make_unique<RippleDivService<MidasOverlay>>(&overlay,
                                                                base);
      s->mutable_engine()->SetTracer(tracer_ptr);
      s->mutable_engine()->SetProfiler(profiler_ptr);
      s->mutable_engine()->SetJournal(journal_ptr);
      service = std::move(s);
    }
    DiversifyOptions options;
    options.k = static_cast<size_t>(k);
    options.service_init = true;
    auto result = Diversify(service.get(), obj, {}, options);
    std::printf("objective %.4f after %d improve rounds\n", result.objective,
                result.improve_rounds);
    answer = std::move(result.set);
    stats = result.stats;
    coverage = result.coverage;
    complete = result.complete;
  } else {
    std::fprintf(stderr, "unknown --query=%s\n%s\n", query.c_str(),
                 flags.Help().c_str());
    return 2;
  }

  std::printf("cost: %s\n", stats.ToString().c_str());
  if (async_mode) {
    std::printf("completion: %.1f sim time units%s\n", completion_time,
                workload_mode ? " (last query)" : "");
    std::printf("coverage: %s\n", coverage.ToString().c_str());
    if (!complete && !workload_mode) {
      std::printf("WARNING: partial answer — a sound digest of what was "
                  "reachable, not the exact result\n");
    }
  }
  if (!workload_mode) {
    std::printf("answer: %zu tuples\n", answer.size());
    for (size_t i = 0; i < answer.size() && i < static_cast<size_t>(show);
         ++i) {
      std::printf("  %s\n", answer[i].ToString().c_str());
    }
    if (answer.size() > static_cast<size_t>(show)) {
      std::printf("  ... and %zu more\n",
                  answer.size() - static_cast<size_t>(show));
    }
  }

  if (journal_ptr != nullptr) {
    const Status st = journal.WriteDir(journal_out);
    if (!st.ok()) {
      std::fprintf(stderr, "journal export failed: %s\n",
                   st.message().c_str());
      return 1;
    }
    std::printf("journal: %zu peer file(s), %llu event(s) (%llu dropped) "
                "-> %s\n",
                journal.Peers().size(),
                static_cast<unsigned long long>(journal.TotalEvents()),
                static_cast<unsigned long long>(journal.TotalDropped()),
                journal_out.c_str());
  }
  if (!trace_out.empty()) {
    const bool jsonl = trace_out.size() >= 6 &&
                       trace_out.compare(trace_out.size() - 6, 6, ".jsonl") ==
                           0;
    const Status st = jsonl ? obs::WriteTraceJsonl(tracer, trace_out)
                            : obs::WriteChromeTrace(tracer, trace_out);
    if (!st.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.message().c_str());
      return 1;
    }
    std::printf("trace: %zu spans -> %s (%s)\n", tracer.span_count(),
                trace_out.c_str(), jsonl ? "jsonl" : "chrome-trace");
  }
  if (want_profile) {
    // Declare the whole overlay tracked so idle_fraction / Gini use the
    // true peer count, then freeze recording before export.
    obs::Profiler::Global().SetPeerUniverse(overlay.NumPeers());
    obs::Profiler::EnableGlobal(false);
  }
  if (!profile_out.empty()) {
    const obs::Profiler& prof = obs::Profiler::Global();
    const Status st = obs::WriteProfileJson(prof, profile_out);
    if (!st.ok()) {
      std::fprintf(stderr, "profile export failed: %s\n",
                   st.message().c_str());
      return 1;
    }
    std::printf("profile: %zu peers -> %s\n%s", prof.peer_count(),
                profile_out.c_str(), prof.Summary().c_str());
  }
  if (!metrics_out.empty()) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("query.peers_visited").Inc(stats.peers_visited);
    reg.GetCounter("query.messages").Inc(stats.messages);
    reg.GetCounter("query.tuples_shipped").Inc(stats.tuples_shipped);
    reg.GetGauge("query.latency_hops")
        .Set(static_cast<double>(stats.latency_hops));
    reg.GetGauge("overlay.peers").Set(static_cast<double>(overlay.NumPeers()));
    reg.GetGauge("overlay.depth").Set(static_cast<double>(overlay.MaxDepth()));
    obs::Histogram& arrival = reg.GetHistogram("query.span_arrival_hops");
    obs::Histogram& load = reg.GetHistogram("query.peer_load");
    std::map<uint32_t, uint64_t> visits_per_peer;
    for (const obs::Span& s : tracer.spans()) {
      arrival.Observe(s.start);
      ++visits_per_peer[s.peer];
    }
    for (const auto& [peer, visits] : visits_per_peer) {
      (void)peer;
      load.Observe(static_cast<double>(visits));
    }
    const Status st =
        obs::WriteMetricsJson(reg, metrics_out, &obs::Profiler::Global());
    if (!st.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   st.message().c_str());
      return 1;
    }
    std::printf("metrics -> %s\n%s", metrics_out.c_str(),
                reg.Summary().c_str());
  }
  return 0;
}

}  // namespace ripple

namespace {

constexpr char kUsage[] =
    "usage: ripple_cli <command> [flags]  (`ripple_cli <command> --help`)\n"
    "\n"
    "  run            one query or a workload on the simulated overlay\n"
    "  serve          one live-overlay daemon process (UDP sockets)\n"
    "  net-bench      wall-clock workload driver against a live overlay\n"
    "  monitor        admin-protocol cluster scraper / readiness probe\n"
    "  trace-assemble merge per-peer journals into one span tree\n";

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && argv[1][0] != '-') {
    const std::string cmd = argv[1];
    if (cmd == "run") return ripple::RunQuery(argc - 1, argv + 1);
    if (cmd == "serve") return ripple::RunServe(argc - 1, argv + 1);
    if (cmd == "net-bench") return ripple::RunNetBench(argc - 1, argv + 1);
    if (cmd == "monitor") return ripple::RunMonitor(argc - 1, argv + 1);
    if (cmd == "trace-assemble") {
      return ripple::RunTraceAssemble(argc - 1, argv + 1);
    }
    if (cmd == "help") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    std::fprintf(stderr, "unknown command '%s'\n\n%s", argv[1], kUsage);
    return 2;
  }
  if (argc >= 2) {
    // Flags with no subcommand: the pre-subcommand invocation style.
    std::fprintf(stderr,
                 "note: bare `ripple_cli --flags` is deprecated; use "
                 "`ripple_cli run --flags`\n");
    return ripple::RunQuery(argc, argv);
  }
  std::fputs(kUsage, stdout);
  return 0;
}
