#!/usr/bin/env python3
"""Demonstrates that tools/bench_check.py actually gates.

Builds a synthetic baseline BENCH_figs.json in a temp dir, then checks:
  1. an identical fresh run passes (exit 0);
  2. a deterministic-metric perturbation beyond tolerance fails (exit 1);
  3. a wall-clock perturbation is informational only (exit 0);
  4. a missing case fails (exit 1);
  5. a scale-config mismatch fails (exit 1);
  6. an extra new case is a warning only (exit 0);
  7. a fresh wall metric meeting its wall_floor_ sibling passes (exit 0);
  8. a fresh wall metric below its wall_floor_ sibling fails (exit 1);
  9. a declared floor whose target metric is absent fails (exit 1);
  10. a case that moved messages but reports zero bytes_on_wire_mean
      fails (exit 1);
  11. a case that moved messages with bytes_on_wire_mean absent
      entirely fails (exit 1);
  12. a fresh wall metric under its wall_ceiling_ sibling passes
      (exit 0);
  13. a fresh wall metric above its wall_ceiling_ sibling fails
      (exit 1);
  14. a net-suite run with every query completed and zero mismatches
      passes, even with wild wall-clock drift (exit 0);
  15. a net-suite run where the live overlay dropped answers
      (completed < queries) fails (exit 1);
  16. a net-suite run whose answers diverged from the simulator
      (answer_mismatch > 0) fails (exit 1);
  17. a net-suite run whose post-run admin scrape found an unreachable
      daemon (mon_unhealthy > 0) fails (exit 1);
  18. a net-suite run whose daemons rejected frames during the run
      (mon_frames_rejected > 0) fails (exit 1);
  19. a net-suite run where the daemons' own answer count disagrees
      with the client's (mon_answers_finalized != completed) fails
      (exit 1);
  20. a cache gate case whose deterministic metrics sit inside their
      floor_/ceiling_ bounds passes (exit 0);
  21. a cache run whose cache-on wire bytes exceed cache-off
      (bytes_ratio > ceiling_bytes_ratio) fails, even against a
      baseline with the identical regression (exit 1);
  22. a cache run whose hit rate fell below its declared floor
      (cache_hit_rate < floor_cache_hit_rate) fails (exit 1);
  23. an exact_ work-count metric identical to baseline passes (exit 0);
  24. an exact_ work-count metric off by even one count fails — a drift
      far inside the default rtol/atol tolerances (exit 1).

Registered in ctest (label: unit) so the regression gate itself is under
test. Stdlib only.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "bench_check.py")

BASELINE = {
    "schema_version": 2,
    "suite": "figs",
    "meta": {
        "git_sha": "deadbee",
        "build_type": "RelWithDebInfo",
        "seed": 1,
        "config": {"min_log_n": 8, "max_log_n": 9, "queries": 8},
    },
    "cases": {
        "figure-4/query/n=256/r=0": {
            "latency_hops_mean": 9.125,
            "messages_mean": 28.625,
            "bytes_on_wire_mean": 2216.5,
            "load_gini": 0.871,
            "wall_ms_p50": 0.078,
        },
        "figure-4/query/n=256/r=D": {
            "latency_hops_mean": 23.75,
            "messages_mean": 48.0,
            "bytes_on_wire_mean": 3511.25,
        },
    },
}


NET_BASELINE = {
    "schema_version": 2,
    "suite": "net",
    "meta": {
        "git_sha": "deadbee",
        "build_type": "RelWithDebInfo",
        "seed": 7,
        "config": {"peers": 12, "dims": 2, "tuples": 1000, "queries": 16,
                   "processes": 3},
    },
    "cases": {
        "net-bench/live": {
            "queries": 16,
            "completed": 16,
            "answer_mismatch": 0,
            "mon_endpoints": 3,
            "mon_unhealthy": 0,
            "mon_frames_rejected": 0,
            "mon_transport_dropped": 0,
            "mon_answers_finalized": 16,
            "mon_queries_served": 170,
            "wall_mon_retransmissions": 0,
            "wall_latency_p50_ms": 1.8,
            "wall_latency_p99_ms": 6.2,
            "wall_qps": 310.0,
            "wall_client_bytes": 48211,
        },
    },
}


def write(dirname, doc, suite="figs"):
    os.makedirs(dirname, exist_ok=True)
    with open(os.path.join(dirname, f"BENCH_{suite}.json"), "w",
              encoding="utf-8") as f:
        json.dump(doc, f)


def run_check(base_dir, fresh_dir, suite="figs"):
    proc = subprocess.run(
        [sys.executable, CHECKER, "--baseline", base_dir, "--fresh",
         fresh_dir, "--suite", suite],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def expect(name, got, want, output):
    if got != want:
        print(f"bench_gate_test FAIL: {name}: exit {got}, wanted {want}\n"
              f"--- checker output ---\n{output}")
        sys.exit(1)
    print(f"bench_gate_test ok: {name} (exit {got})")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "baseline")
        write(base_dir, BASELINE)

        fresh = copy.deepcopy(BASELINE)
        fresh_dir = os.path.join(tmp, "identical")
        write(fresh_dir, fresh)
        code, out = run_check(base_dir, fresh_dir)
        expect("identical run passes", code, 0, out)

        # messages_mean 28.625 -> 40: +40%, far beyond rtol=0.10 and
        # atol=0.5 — must fail.
        fresh = copy.deepcopy(BASELINE)
        fresh["cases"]["figure-4/query/n=256/r=0"]["messages_mean"] = 40.0
        fresh_dir = os.path.join(tmp, "perturbed")
        write(fresh_dir, fresh)
        code, out = run_check(base_dir, fresh_dir)
        expect("deterministic perturbation fails", code, 1, out)
        if "messages_mean" not in out:
            print(f"bench_gate_test FAIL: failure output does not name the "
                  f"drifted metric\n{out}")
            sys.exit(1)

        # Wall clock 0.078 -> 50ms: huge, but informational only.
        fresh = copy.deepcopy(BASELINE)
        fresh["cases"]["figure-4/query/n=256/r=0"]["wall_ms_p50"] = 50.0
        fresh_dir = os.path.join(tmp, "wall")
        write(fresh_dir, fresh)
        code, out = run_check(base_dir, fresh_dir)
        expect("wall-clock drift is informational", code, 0, out)

        fresh = copy.deepcopy(BASELINE)
        del fresh["cases"]["figure-4/query/n=256/r=D"]
        fresh_dir = os.path.join(tmp, "missing")
        write(fresh_dir, fresh)
        code, out = run_check(base_dir, fresh_dir)
        expect("missing case fails", code, 1, out)

        fresh = copy.deepcopy(BASELINE)
        fresh["meta"]["config"]["queries"] = 64
        fresh_dir = os.path.join(tmp, "config")
        write(fresh_dir, fresh)
        code, out = run_check(base_dir, fresh_dir)
        expect("scale config mismatch fails", code, 1, out)

        fresh = copy.deepcopy(BASELINE)
        fresh["cases"]["figure-4/query/n=512/r=0"] = {
            "messages_mean": 1.0,
            "bytes_on_wire_mean": 117.0,
        }
        fresh_dir = os.path.join(tmp, "extra")
        write(fresh_dir, fresh)
        code, out = run_check(base_dir, fresh_dir)
        expect("new case is a warning only", code, 0, out)

        # Floor rule: wall_speedup_t4 >= wall_floor_speedup_t4 within the
        # FRESH document. Both sides carry the floor case (the baseline's
        # copy is itself floor-checked, so keep it consistent too).
        floored = copy.deepcopy(BASELINE)
        floored["cases"]["figure-t/workload/speedup"] = {
            "wall_speedup_t4": 2.8,
            "wall_floor_speedup_t4": 2.5,
        }
        floor_base = os.path.join(tmp, "floor_base")
        write(floor_base, floored)
        fresh_dir = os.path.join(tmp, "floor_ok")
        write(fresh_dir, copy.deepcopy(floored))
        code, out = run_check(floor_base, fresh_dir)
        expect("speedup meeting its floor passes", code, 0, out)

        fresh = copy.deepcopy(floored)
        fresh["cases"]["figure-t/workload/speedup"]["wall_speedup_t4"] = 1.2
        fresh_dir = os.path.join(tmp, "floor_fail")
        write(fresh_dir, fresh)
        code, out = run_check(floor_base, fresh_dir)
        expect("speedup below its floor fails", code, 1, out)
        if "wall_floor_speedup_t4" not in out:
            print(f"bench_gate_test FAIL: floor failure does not name the "
                  f"floor metric\n{out}")
            sys.exit(1)

        fresh = copy.deepcopy(floored)
        del fresh["cases"]["figure-t/workload/speedup"]["wall_speedup_t4"]
        fresh_dir = os.path.join(tmp, "floor_orphan")
        write(fresh_dir, fresh)
        code, out = run_check(floor_base, fresh_dir)
        expect("floor without its target metric fails", code, 1, out)

        # Bytes rule: messages moved => non-zero bytes_on_wire_mean. Zero
        # bytes means the measurement broke (a frame is never free); only
        # the within-tolerance drift check would miss it if the baseline
        # were also zero, so the gate checks the fresh document directly.
        fresh = copy.deepcopy(BASELINE)
        case = fresh["cases"]["figure-4/query/n=256/r=0"]
        case["bytes_on_wire_mean"] = 0.0
        fresh_dir = os.path.join(tmp, "bytes_zero")
        write(fresh_dir, fresh)
        code, out = run_check(base_dir, fresh_dir)
        expect("messages without wire bytes fails", code, 1, out)
        if "bytes_on_wire_mean" not in out:
            print(f"bench_gate_test FAIL: bytes failure does not name the "
                  f"metric\n{out}")
            sys.exit(1)

        fresh = copy.deepcopy(BASELINE)
        del fresh["cases"]["figure-4/query/n=256/r=D"]["bytes_on_wire_mean"]
        fresh_dir = os.path.join(tmp, "bytes_absent")
        write(fresh_dir, fresh)
        code, out = run_check(base_dir, fresh_dir)
        expect("absent bytes_on_wire_mean fails", code, 1, out)

        # Ceiling rule: wall_traced_ms <= wall_ceiling_traced_ms within the
        # fresh document — the observability bench's overhead gate.
        ceiled = copy.deepcopy(BASELINE)
        ceiled["cases"]["figure-o/obs/overhead"] = {
            "wall_traced_ms": 0.4,
            "wall_ceiling_traced_ms": 1.0,
        }
        ceil_base = os.path.join(tmp, "ceil_base")
        write(ceil_base, ceiled)
        fresh_dir = os.path.join(tmp, "ceil_ok")
        write(fresh_dir, copy.deepcopy(ceiled))
        code, out = run_check(ceil_base, fresh_dir)
        expect("traced wall under its ceiling passes", code, 0, out)

        fresh = copy.deepcopy(ceiled)
        fresh["cases"]["figure-o/obs/overhead"]["wall_traced_ms"] = 3.7
        fresh_dir = os.path.join(tmp, "ceil_fail")
        write(fresh_dir, fresh)
        code, out = run_check(ceil_base, fresh_dir)
        expect("traced wall above its ceiling fails", code, 1, out)
        if "wall_ceiling_traced_ms" not in out:
            print(f"bench_gate_test FAIL: ceiling failure does not name the "
                  f"ceiling metric\n{out}")
            sys.exit(1)

        # Cache gate: deterministic bounds (floor_/ceiling_ without the
        # wall_ prefix, bench_fig_cache's contract). Intra-document, so
        # a cache that started costing more bytes than cache-off fails
        # even when the committed baseline regressed identically.
        cached = copy.deepcopy(BASELINE)
        cached["cases"]["cache/locality/gate"] = {
            "bytes_ratio": 0.07,
            "ceiling_bytes_ratio": 1.0,
            "cache_hit_rate": 0.5,
            "floor_cache_hit_rate": 0.45,
            "answer_mismatch": 0.0,
            "ceiling_answer_mismatch": 0.0,
        }
        cache_base = os.path.join(tmp, "cache_base")
        write(cache_base, cached)
        fresh_dir = os.path.join(tmp, "cache_ok")
        write(fresh_dir, copy.deepcopy(cached))
        code, out = run_check(cache_base, fresh_dir)
        expect("cache gate within bounds passes", code, 0, out)

        broken = copy.deepcopy(cached)
        broken["cases"]["cache/locality/gate"]["bytes_ratio"] = 1.3
        bloat_base = os.path.join(tmp, "cache_bloat_base")
        write(bloat_base, broken)
        fresh_dir = os.path.join(tmp, "cache_bloat")
        write(fresh_dir, copy.deepcopy(broken))
        code, out = run_check(bloat_base, fresh_dir)
        expect("cache-on byte regression fails", code, 1, out)
        if "ceiling_bytes_ratio" not in out:
            print(f"bench_gate_test FAIL: bytes_ratio failure does not "
                  f"name the ceiling metric\n{out}")
            sys.exit(1)

        broken = copy.deepcopy(cached)
        broken["cases"]["cache/locality/gate"]["cache_hit_rate"] = 0.1
        cold_base = os.path.join(tmp, "cache_cold_base")
        write(cold_base, broken)
        fresh_dir = os.path.join(tmp, "cache_cold")
        write(fresh_dir, copy.deepcopy(broken))
        code, out = run_check(cold_base, fresh_dir)
        expect("cache hit rate below its floor fails", code, 1, out)
        if "floor_cache_hit_rate" not in out:
            print(f"bench_gate_test FAIL: hit-rate failure does not name "
                  f"the floor metric\n{out}")
            sys.exit(1)

        # Exact rule: kernel work counts are machine-independent functions
        # of seed+config, so the gate allows zero drift — a single count
        # of difference (well inside rtol=0.10/atol=0.5) must fail.
        exact = copy.deepcopy(BASELINE)
        exact["cases"]["kernels/d=4/random"] = {
            "exact_topk_heap_pushes": 111.0,
            "exact_skyline_dominance_cmps": 70656.0,
            "wall_soa_ms": 0.21,
        }
        exact_base = os.path.join(tmp, "exact_base")
        write(exact_base, exact)
        fresh_dir = os.path.join(tmp, "exact_ok")
        write(fresh_dir, copy.deepcopy(exact))
        code, out = run_check(exact_base, fresh_dir)
        expect("identical exact work counts pass", code, 0, out)

        fresh = copy.deepcopy(exact)
        fresh["cases"]["kernels/d=4/random"]["exact_topk_heap_pushes"] = 112.0
        fresh_dir = os.path.join(tmp, "exact_off_by_one")
        write(fresh_dir, fresh)
        code, out = run_check(exact_base, fresh_dir)
        expect("exact work count off by one fails", code, 1, out)
        if "exact_topk_heap_pushes" not in out:
            print(f"bench_gate_test FAIL: exact failure does not name the "
                  f"metric\n{out}")
            sys.exit(1)

        # Net suite: the soundness rules are intra-document, so a broken
        # fresh run fails even when the baseline is identically broken —
        # drift gating alone could never catch that.
        net_base = os.path.join(tmp, "net_base")
        write(net_base, NET_BASELINE, suite="net")

        fresh = copy.deepcopy(NET_BASELINE)
        fresh["cases"]["net-bench/live"]["wall_latency_p50_ms"] = 900.0
        fresh["cases"]["net-bench/live"]["wall_qps"] = 1.5
        fresh_dir = os.path.join(tmp, "net_ok")
        write(fresh_dir, fresh, suite="net")
        code, out = run_check(net_base, fresh_dir, suite="net")
        expect("sound net run passes despite wall drift", code, 0, out)

        broken = copy.deepcopy(NET_BASELINE)
        broken["cases"]["net-bench/live"]["completed"] = 12
        dropped_base = os.path.join(tmp, "net_dropped_base")
        write(dropped_base, broken, suite="net")
        fresh_dir = os.path.join(tmp, "net_dropped")
        write(fresh_dir, copy.deepcopy(broken), suite="net")
        code, out = run_check(dropped_base, fresh_dir, suite="net")
        expect("net run with dropped answers fails", code, 1, out)
        if "dropped answers" not in out:
            print(f"bench_gate_test FAIL: completed<queries failure does "
                  f"not explain itself\n{out}")
            sys.exit(1)

        broken = copy.deepcopy(NET_BASELINE)
        broken["cases"]["net-bench/live"]["answer_mismatch"] = 2
        mismatch_base = os.path.join(tmp, "net_mismatch_base")
        write(mismatch_base, broken, suite="net")
        fresh_dir = os.path.join(tmp, "net_mismatch")
        write(fresh_dir, copy.deepcopy(broken), suite="net")
        code, out = run_check(mismatch_base, fresh_dir, suite="net")
        expect("net run with diverged answers fails", code, 1, out)
        if "diverged" not in out:
            print(f"bench_gate_test FAIL: answer_mismatch failure does "
                  f"not explain itself\n{out}")
            sys.exit(1)

        # Monitor soundness rules: intra-document like the answer rules,
        # so a broken scrape fails even against an identically broken
        # baseline.
        broken = copy.deepcopy(NET_BASELINE)
        broken["cases"]["net-bench/live"]["mon_unhealthy"] = 1
        unhealthy_base = os.path.join(tmp, "net_unhealthy_base")
        write(unhealthy_base, broken, suite="net")
        fresh_dir = os.path.join(tmp, "net_unhealthy")
        write(fresh_dir, copy.deepcopy(broken), suite="net")
        code, out = run_check(unhealthy_base, fresh_dir, suite="net")
        expect("net run with an unscrapeable daemon fails", code, 1, out)
        if "mon_unhealthy" not in out:
            print(f"bench_gate_test FAIL: mon_unhealthy failure does not "
                  f"name the metric\n{out}")
            sys.exit(1)

        broken = copy.deepcopy(NET_BASELINE)
        broken["cases"]["net-bench/live"]["mon_frames_rejected"] = 3
        rej_base = os.path.join(tmp, "net_rejected_base")
        write(rej_base, broken, suite="net")
        fresh_dir = os.path.join(tmp, "net_rejected")
        write(fresh_dir, copy.deepcopy(broken), suite="net")
        code, out = run_check(rej_base, fresh_dir, suite="net")
        expect("net run with rejected frames fails", code, 1, out)
        if "mon_frames_rejected" not in out:
            print(f"bench_gate_test FAIL: mon_frames_rejected failure does "
                  f"not name the metric\n{out}")
            sys.exit(1)

        # The daemons finalized fewer answers than the client says it
        # received — counter accounting and reality disagree.
        broken = copy.deepcopy(NET_BASELINE)
        broken["cases"]["net-bench/live"]["mon_answers_finalized"] = 14
        dis_base = os.path.join(tmp, "net_disagree_base")
        write(dis_base, broken, suite="net")
        fresh_dir = os.path.join(tmp, "net_disagree")
        write(fresh_dir, copy.deepcopy(broken), suite="net")
        code, out = run_check(dis_base, fresh_dir, suite="net")
        expect("daemon/client answer disagreement fails", code, 1, out)
        if "disagree" not in out:
            print(f"bench_gate_test FAIL: mon_answers_finalized failure "
                  f"does not explain itself\n{out}")
            sys.exit(1)

    print("bench_gate_test: all scenarios behaved")


if __name__ == "__main__":
    main()
