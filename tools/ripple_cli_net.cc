// ripple_cli serve / net-bench — the live-overlay subcommands.
//
//   $ ripple_cli serve --peers-file=peers.txt --listen=127.0.0.1:9101
//   $ ripple_cli net-bench --peers-file=peers.txt --workload=default:16
//
// `serve` turns this process into one daemon of the overlay: it rebuilds
// the shared MIDAS structure from the peers file's config line, binds a
// UDP socket at --listen, and answers the rank-query protocol for the
// peers assigned to that endpoint until SIGTERM/SIGINT, then flushes its
// obs journal/profile exports and prints its counters. N processes with
// the same peers file form the whole overlay (docs/NET.md).
//
// `net-bench` drives the workload-file format from src/exec/ against the
// live overlay and gates the result: it executes the byte-identical
// query instances on an in-process LoopbackTransport simulator first,
// then over the sockets, compares answers, and emits BENCH_net.json
// (deterministic completeness/match metrics gated by tools/bench_check.py;
// wall-clock latency/QPS as informational `wall_*` metrics).

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "cache/adaptive.h"
#include "cli_commands.h"
#include "common/flags.h"
#include "common/log.h"
#include "exec/compile.h"
#include "exec/workload.h"
#include "net/admin.h"
#include "net/bootstrap.h"
#include "net/client.h"
#include "net/daemon.h"
#include "net/monitor.h"
#include "net/peers.h"
#include "net/udp_transport.h"
#include "obs/bench_report.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/snapshot.h"
#include "queries/skyline_driver.h"
#include "queries/topk_driver.h"
#include "sim/async_engine.h"

#ifndef RIPPLE_GIT_SHA
#define RIPPLE_GIT_SHA "unknown"
#endif
#ifndef RIPPLE_BUILD_TYPE
#define RIPPLE_BUILD_TYPE "unknown"
#endif

namespace ripple {
namespace {

std::atomic<bool> g_stop{false};

void OnStopSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

/// Shared net flags: every live-overlay subcommand takes the peers file
/// and the wall-clock retry discipline.
struct NetFlags {
  std::string peers_file;
  double timeout_ms = 200.0;
  double timeout_cap_ms = 1600.0;
  int64_t max_retries = 5;
  std::string log_level;

  void Register(FlagParser* flags) {
    flags->AddString("peers-file",
                     "shared topology file: the overlay recipe plus the "
                     "peer-id -> host:port table (docs/NET.md)",
                     &peers_file);
    flags->AddDouble("timeout-ms",
                     "initial per-request patience before retransmitting",
                     &timeout_ms);
    flags->AddDouble("timeout-cap-ms", "backoff ceiling for the patience",
                     &timeout_cap_ms);
    flags->AddInt("max-retries",
                  "retransmissions before a request is abandoned",
                  &max_retries);
    flags->AddString("log-level", "error|warn|info|debug|trace", &log_level);
  }

  net::RetryOptions Retry() const {
    net::RetryOptions r;
    r.timeout = timeout_ms;
    r.timeout_cap = timeout_cap_ms;
    r.max_retries = static_cast<int>(max_retries);
    return r;
  }

  bool Finish(const Status& parse_status, const FlagParser& flags) const {
    if (!parse_status.ok()) {
      const bool help = parse_status.code() == StatusCode::kFailedPrecondition;
      std::fprintf(help ? stdout : stderr, "%s\n",
                   help ? flags.Help().c_str()
                        : parse_status.message().c_str());
      return false;
    }
    if (!log_level.empty()) {
      SetGlobalLogLevel(ParseLogLevel(log_level, GlobalLogLevel()));
    }
    if (peers_file.empty()) {
      std::fprintf(stderr, "--peers-file is required\n");
      return false;
    }
    return true;
  }
};

bool SameAnswer(const TupleVec& a, const TupleVec& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id) return false;
    if (a[i].key.dims() != b[i].key.dims()) return false;
    for (int d = 0; d < a[i].key.dims(); ++d) {
      if (a[i].key[d] != b[i].key[d]) return false;
    }
  }
  return true;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Result<std::vector<exec::WorkloadItem>> LoadWorkloadSpec(
    const std::string& spec) {
  if (spec == "default" || spec.rfind("default:", 0) == 0) {
    int64_t n = 16;
    if (spec.rfind("default:", 0) == 0) n = std::atoll(spec.c_str() + 8);
    if (n <= 0) {
      return Status::InvalidArgument("bad workload spec '" + spec +
                                     "' (want default:<N>, N > 0)");
    }
    return exec::DefaultWorkloadMix(static_cast<size_t>(n));
  }
  return exec::LoadWorkloadFile(spec);
}

}  // namespace

int RunServe(int argc, char** argv) {
  NetFlags net_flags;
  std::string listen;
  int64_t tick_ms = 50;
  std::string journal_out;
  std::string profile_out;
  std::string stats_out;
  std::string metrics_out;
  std::string snapshot_out;
  int64_t snapshot_every_ms = 1000;
  FlagParser flags(
      "ripple_cli serve — one live-overlay daemon: rebuilds the overlay "
      "from the peers file, serves its assigned peers over UDP until "
      "SIGTERM/SIGINT, then flushes exports and prints counters.");
  net_flags.Register(&flags);
  flags.AddString("listen",
                  "ip:port to bind; must be one of the peers file's "
                  "endpoints (selects which peers this process serves)",
                  &listen);
  flags.AddInt("tick-ms", "serve-loop poll granularity", &tick_ms);
  flags.AddString("journal-out",
                  "flush per-peer frame journals here on shutdown",
                  &journal_out);
  flags.AddString("profile-out",
                  "write this daemon's per-peer load profile here on "
                  "shutdown",
                  &profile_out);
  flags.AddString("stats-out",
                  "write the shutdown counter report as JSON here (same "
                  "fields as a kAdminStats reply)",
                  &stats_out);
  flags.AddString("metrics-out",
                  "write the net.daemon.*/net.udp.* registry as JSON "
                  "here on shutdown",
                  &metrics_out);
  flags.AddString("snapshot-out",
                  "write windowed registry snapshots here on shutdown",
                  &snapshot_out);
  flags.AddInt("snapshot-every-ms",
               "snapshot capture period (with --snapshot-out)",
               &snapshot_every_ms);
  const Status st = flags.Parse(argc, argv);
  if (!net_flags.Finish(st, flags)) {
    return st.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }
  if (listen.empty()) {
    std::fprintf(stderr, "--listen is required\n");
    return 2;
  }
  auto listen_ep = net::ParseEndpoint(listen);
  if (!listen_ep.ok()) {
    std::fprintf(stderr, "--listen: %s\n", listen_ep.status().message().c_str());
    return 2;
  }
  auto peers = net::LoadPeersFile(net_flags.peers_file);
  if (!peers.ok()) {
    std::fprintf(stderr, "%s\n", peers.status().message().c_str());
    return 2;
  }
  const std::vector<PeerId> local = peers->PeersAt(*listen_ep);
  if (local.empty()) {
    std::fprintf(stderr,
                 "endpoint %s serves no peers in %s (peers file endpoints "
                 "must match --listen exactly)\n",
                 listen_ep->ToString().c_str(), net_flags.peers_file.c_str());
    return 2;
  }

  const std::unique_ptr<MidasOverlay> overlay =
      net::BuildOverlay(peers->config);
  auto transport = net::UdpSocketTransport::Open(*peers, *listen_ep);
  if (!transport.ok()) {
    std::fprintf(stderr, "%s\n", transport.status().message().c_str());
    return 2;
  }
  net::PeerDaemon<MidasOverlay> daemon(overlay.get(), transport->get(), local,
                                       net_flags.Retry());
  obs::JournalSet journal;
  obs::Profiler profiler;
  if (!journal_out.empty()) daemon.SetJournal(&journal);
  if (!profile_out.empty()) daemon.SetProfiler(&profiler);
  // Always bridged: kAdminSnapshot replies and the shutdown
  // --metrics-out/--snapshot-out exports all read this registry.
  obs::Registry registry;
  daemon.SetRegistry(&registry);
  net::UdpSocketTransport* udp_ptr = transport->get();
  daemon.SetTransportCounters([udp_ptr] { return udp_ptr->Counters(); });
  obs::SnapshotSeries series(&registry);

  std::signal(SIGTERM, OnStopSignal);
  std::signal(SIGINT, OnStopSignal);
  std::printf("serving peers %u-%u at %s (%zu peers, overlay depth %d)\n",
              local.front(), local.back(),
              (*transport)->local_endpoint().ToString().c_str(), local.size(),
              overlay->MaxDepth());
  std::fflush(stdout);
  const auto serve_start = std::chrono::steady_clock::now();
  double next_snap_ms = 0.0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    daemon.ServeOnce(static_cast<int>(tick_ms));
    if (!snapshot_out.empty()) {
      const double now_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - serve_start)
              .count();
      if (now_ms >= next_snap_ms) {
        daemon.SyncRegistry();
        series.Capture(now_ms);
        next_snap_ms = now_ms + static_cast<double>(snapshot_every_ms);
      }
    }
  }

  // SIGTERM/SIGINT: flush observability, report, exit cleanly.
  if (!journal_out.empty()) {
    const Status js = journal.WriteDir(journal_out);
    if (!js.ok()) std::fprintf(stderr, "journal: %s\n", js.message().c_str());
  }
  if (!profile_out.empty()) {
    const Status ps = obs::WriteProfileJson(profiler, profile_out);
    if (!ps.ok()) std::fprintf(stderr, "profile: %s\n", ps.message().c_str());
  }
  if (!stats_out.empty()) {
    std::FILE* f = std::fopen(stats_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "stats-out: cannot open %s\n", stats_out.c_str());
    } else {
      std::fprintf(f, "%s\n",
                   net::StatsReportJson(daemon.StatsReport()).c_str());
      std::fclose(f);
    }
  }
  if (!metrics_out.empty()) {
    daemon.SyncRegistry();
    const Status ms = obs::WriteMetricsJson(registry, metrics_out, nullptr);
    if (!ms.ok()) std::fprintf(stderr, "metrics: %s\n", ms.message().c_str());
  }
  if (!snapshot_out.empty()) {
    const Status ss = obs::WriteSnapshotJson(&series, nullptr, snapshot_out);
    if (!ss.ok()) {
      std::fprintf(stderr, "snapshot: %s\n", ss.message().c_str());
    }
  }
  const net::DaemonStats& ds = daemon.stats();
  const net::UdpSocketTransport& udp = **transport;
  std::printf(
      "served %llu queries (%llu replies, %llu answers finalized, %llu "
      "child requests, %llu retransmissions)\n",
      static_cast<unsigned long long>(ds.queries_served),
      static_cast<unsigned long long>(ds.replies_sent),
      static_cast<unsigned long long>(ds.answers_finalized),
      static_cast<unsigned long long>(ds.child_requests),
      static_cast<unsigned long long>(ds.retransmissions));
  std::printf(
      "wire: %llu in / %llu out datagrams, %llu/%llu bytes; dropped: %llu "
      "malformed, %llu oversize, %llu unknown-sender, %llu misdelivered\n",
      static_cast<unsigned long long>(udp.datagrams_received),
      static_cast<unsigned long long>(udp.datagrams_sent),
      static_cast<unsigned long long>(udp.bytes_received),
      static_cast<unsigned long long>(udp.bytes_sent),
      static_cast<unsigned long long>(udp.malformed_dropped),
      static_cast<unsigned long long>(udp.oversize_dropped),
      static_cast<unsigned long long>(udp.unknown_peer_dropped),
      static_cast<unsigned long long>(ds.misdelivered));
  return 0;
}

namespace {

/// One workload item's reference (simulator) outcome.
struct ReferenceRun {
  TupleVec answer;
  bool complete = false;
};

/// Runs every instance on an in-process AsyncEngine over loopback — the
/// gold answers live results must match byte-for-byte. Items carrying
/// r=auto are resolved IN PLACE as the pass proceeds (resolve, run,
/// Observe — so each decision sees the stats of everything before it),
/// which is what lets the live pass replay the exact same parameters.
std::vector<ReferenceRun> RunReference(
    const MidasOverlay& overlay, std::vector<exec::WorkloadItem>& items,
    uint64_t seed, std::vector<std::unique_ptr<Scorer>>* scorers,
    cache::AdaptiveController* controller) {
  std::vector<ReferenceRun> out(items.size());
  exec::ForEachWorkloadInstance(
      overlay, items, seed, scorers,
      [&](size_t i, const exec::WorkloadItem&, PeerId initiator, auto query) {
        using Q = std::decay_t<decltype(query)>;
        exec::WorkloadItem& item = items[i];
        if (item.ripple.is_auto()) {
          item.ripple = controller != nullptr ? controller->Choose()
                                              : RippleParam::Fast();
        }
        auto record = [&](auto result) {
          out[i].answer = std::move(result.answer);
          out[i].complete = result.complete;
          if (controller != nullptr) controller->Observe(result.stats);
        };
        if constexpr (std::is_same_v<Q, TopKQuery>) {
          AsyncEngine<MidasOverlay, TopKPolicy> engine(&overlay, TopKPolicy{});
          QueryRequest<TopKPolicy> req;
          req.initiator = initiator;
          req.query = std::move(query);
          req.ripple = item.ripple;
          record(SeededTopK(overlay, engine, req));
        } else if constexpr (std::is_same_v<Q, SkylineQuery>) {
          AsyncEngine<MidasOverlay, SkylinePolicy> engine(&overlay,
                                                          SkylinePolicy{});
          QueryRequest<SkylinePolicy> req;
          req.initiator = initiator;
          req.query = std::move(query);
          req.ripple = item.ripple;
          record(SeededSkyline(overlay, engine, req));
        } else if constexpr (std::is_same_v<Q, SkybandQuery>) {
          AsyncEngine<MidasOverlay, SkybandPolicy> engine(&overlay,
                                                          SkybandPolicy{});
          QueryRequest<SkybandPolicy> req;
          req.initiator = initiator;
          req.query = std::move(query);
          req.ripple = item.ripple;
          record(engine.Run(req));
        } else {
          AsyncEngine<MidasOverlay, RangePolicy> engine(&overlay,
                                                        RangePolicy{});
          QueryRequest<RangePolicy> req;
          req.initiator = initiator;
          req.query = std::move(query);
          req.ripple = item.ripple;
          record(engine.Run(req));
        }
      });
  return out;
}

}  // namespace

int RunNetBench(int argc, char** argv) {
  NetFlags net_flags;
  std::string workload = "default:16";
  std::string listen = "127.0.0.1:0";
  std::string bench_out = ".";
  std::string ripple_override;
  bool show = false;
  FlagParser flags(
      "ripple_cli net-bench — wall-clock workload driver against a live "
      "overlay: runs the same query instances on an in-process simulator "
      "(LoopbackTransport) and over the sockets, compares answers "
      "byte-for-byte, and writes gated BENCH_net.json.");
  net_flags.Register(&flags);
  flags.AddString("workload", "workload file path, or default:<N>", &workload);
  flags.AddString("listen", "client bind address (port 0 = ephemeral)",
                  &listen);
  flags.AddString("bench-out", "directory receiving BENCH_net.json",
                  &bench_out);
  flags.AddString("ripple",
                  "override every workload item's r: fast | slow | auto | "
                  "<hops>. 'auto' resolves through the adaptive controller "
                  "during the simulator pass, and the live pass replays the "
                  "identical resolved parameters (docs/CACHING.md)",
                  &ripple_override);
  flags.AddBool("show", "print one line per query", &show);
  const Status st = flags.Parse(argc, argv);
  if (!net_flags.Finish(st, flags)) {
    return st.code() == StatusCode::kFailedPrecondition ? 0 : 2;
  }
  auto peers = net::LoadPeersFile(net_flags.peers_file);
  if (!peers.ok()) {
    std::fprintf(stderr, "%s\n", peers.status().message().c_str());
    return 2;
  }
  auto listen_ep = net::ParseEndpoint(listen);
  if (!listen_ep.ok()) {
    std::fprintf(stderr, "--listen: %s\n", listen_ep.status().message().c_str());
    return 2;
  }
  auto items = LoadWorkloadSpec(workload);
  if (!items.ok()) {
    std::fprintf(stderr, "--workload: %s\n", items.status().message().c_str());
    return 2;
  }

  const net::NetConfig& config = peers->config;
  const std::unique_ptr<MidasOverlay> overlay = net::BuildOverlay(config);
  std::printf("net-bench: %s over %zu peers in %zu processes, %zu queries\n",
              config.dataset.c_str(), overlay->NumPeers(),
              peers->Processes().size(), items->size());

  if (!ripple_override.empty()) {
    const Result<RippleParam> rp = RippleParam::Parse(ripple_override);
    if (!rp.ok()) {
      std::fprintf(stderr, "--ripple: %s\n", rp.status().message().c_str());
      return 2;
    }
    for (exec::WorkloadItem& item : *items) item.ripple = *rp;
  }
  const bool any_auto = std::any_of(
      items->begin(), items->end(),
      [](const exec::WorkloadItem& it) { return it.ripple.is_auto(); });
  cache::AdaptiveController controller(
      cache::DepthHint(overlay->NumPeers()));

  // Phase 1: the simulator reference (identical instances by seed).
  // Resolves any r=auto in place, so phase 2 replays the same parameters.
  std::vector<std::unique_ptr<Scorer>> scorers;
  const std::vector<ReferenceRun> reference = RunReference(
      *overlay, *items, config.seed, &scorers, any_auto ? &controller : nullptr);
  if (any_auto) {
    std::printf("ripple=auto resolved per item (%s)\n",
                controller.Summary().c_str());
  }

  // Phase 2: the same instances against the live overlay. The client
  // replica runs the seeded drivers' analytic bootstrap (route + seed
  // walk) before addressing the serving peer, exactly as the simulator's
  // drivers do, so answers depend on the same (start, seed, query, r).
  auto transport = net::UdpSocketTransport::Open(*peers, *listen_ep);
  if (!transport.ok()) {
    std::fprintf(stderr, "%s\n", transport.status().message().c_str());
    return 2;
  }
  net::NetClient<MidasOverlay> client(overlay.get(), transport->get(),
                                      net::kClientIdBase | 1,
                                      net_flags.Retry());
  scorers.clear();
  uint64_t completed = 0;
  uint64_t mismatches = 0;
  std::vector<double> latencies_ms;
  const auto bench_start = std::chrono::steady_clock::now();
  exec::ForEachWorkloadInstance(
      *overlay, *items, config.seed, &scorers,
      [&](size_t i, const exec::WorkloadItem& item, PeerId initiator,
          auto query) {
        using Q = std::decay_t<decltype(query)>;
        const int64_t r = item.ripple.hops();
        auto outcome = [&] {
          if constexpr (std::is_same_v<Q, TopKQuery>) {
            TopKPolicy policy;
            uint64_t hops = 0;
            const PeerId start = overlay->RouteFrom(
                initiator, query.scorer->Peak(overlay->domain()), &hops);
            const TopKState seed =
                TopKSeedWalk(*overlay, policy, query, start, nullptr);
            return client.Execute(policy, query, start, r, seed);
          } else if constexpr (std::is_same_v<Q, SkylineQuery>) {
            SkylinePolicy policy;
            const Point corner = query.constraint.has_value()
                                     ? query.constraint->lo()
                                     : overlay->domain().lo();
            uint64_t hops = 0;
            const PeerId start = overlay->RouteFrom(initiator, corner, &hops);
            return client.Execute(policy, query, start, r,
                                  policy.InitialGlobalState(query));
          } else if constexpr (std::is_same_v<Q, SkybandQuery>) {
            SkybandPolicy policy;
            return client.Execute(policy, query, initiator, r,
                                  policy.InitialGlobalState(query));
          } else {
            RangePolicy policy;
            return client.Execute(policy, query, initiator, r,
                                  policy.InitialGlobalState(query));
          }
        }();
        const bool match =
            outcome.complete && SameAnswer(outcome.answer, reference[i].answer);
        completed += outcome.complete ? 1 : 0;
        mismatches += (outcome.complete && !match) ? 1 : 0;
        if (outcome.complete) latencies_ms.push_back(outcome.latency_ms);
        if (show || !outcome.complete || !match) {
          std::printf("  [%zu] %s complete=%s match=%s tuples=%zu "
                      "latency=%.2fms attempts=%d\n",
                      i, exec::WorkloadKindName(item.kind),
                      outcome.complete ? "true" : "false",
                      match ? "true" : "false", outcome.answer.size(),
                      outcome.latency_ms, outcome.attempts);
        }
      });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();

  const net::UdpSocketTransport& udp = **transport;
  const double p50 = Percentile(latencies_ms, 0.50);
  const double p99 = Percentile(latencies_ms, 0.99);
  const double qps = wall_s > 0 ? static_cast<double>(items->size()) / wall_s
                                : 0.0;
  std::printf(
      "net-bench: %llu/%zu complete, %llu mismatches | p50=%.2fms "
      "p99=%.2fms qps=%.1f | client wire: %llu bytes out, %llu bytes in\n",
      static_cast<unsigned long long>(completed), items->size(),
      static_cast<unsigned long long>(mismatches), p50, p99, qps,
      static_cast<unsigned long long>(udp.bytes_sent),
      static_cast<unsigned long long>(udp.bytes_received));

  // Post-run admin scrape: the cluster's own account of the run. On a
  // clean localhost run nothing is rejected or dropped and the daemons'
  // answers_finalized agrees with the client's completed count — all
  // gated below via bench_check.py's monitor rules. Counters are
  // process-lifetime, so the gated values assume fresh daemons (the
  // tools/net_demo.sh arrangement).
  const net::Endpoint mon_ep{listen_ep->host, 0};
  auto mon_transport = net::UdpSocketTransport::Open(*peers, mon_ep);
  if (!mon_transport.ok()) {
    std::fprintf(stderr, "monitor: %s\n",
                 mon_transport.status().message().c_str());
    return 2;
  }
  net::ClusterMonitor monitor(*peers, mon_transport->get(),
                              net::kClientIdBase | 2, {});
  const net::ClusterSample scrape = monitor.Scrape(wall_s * 1000.0);
  std::fputs(net::ClusterMonitor::Dashboard(scrape).c_str(), stdout);
  const uint64_t mon_unhealthy =
      scrape.totals.endpoints - scrape.totals.healthy;
  const uint64_t mon_transport_dropped =
      scrape.totals.transport.malformed_dropped +
      scrape.totals.transport.oversize_dropped +
      scrape.totals.transport.unknown_peer_dropped;

  obs::BenchMeta meta;
  meta.suite = "net";
  meta.binary = "net-bench";
  meta.git_sha = RIPPLE_GIT_SHA;
  meta.build_type = RIPPLE_BUILD_TYPE;
  meta.seed = config.seed;
  meta.config = {
      {"peers", static_cast<double>(config.peers)},
      {"dims", static_cast<double>(config.dims)},
      {"tuples", static_cast<double>(config.tuples)},
      {"queries", static_cast<double>(items->size())},
      {"processes", static_cast<double>(peers->Processes().size())},
  };
  obs::BenchReporter reporter(meta);
  // Deterministic (gated): a live overlay must complete every query with
  // the simulator's exact answers, whatever the wall clock did. The
  // reporter prefixes case ids with meta.binary, so "live" lands as
  // "net-bench/live".
  reporter.AddMetric("live", "queries", static_cast<double>(items->size()));
  reporter.AddMetric("live", "completed", static_cast<double>(completed));
  reporter.AddMetric("live", "answer_mismatch",
                     static_cast<double>(mismatches));
  // Monitor soundness counters (gated, deterministic on a clean run):
  // every endpoint scraped, nothing rejected or dropped anywhere in the
  // cluster, and the daemons' own answer count agrees with the client's.
  reporter.AddMetric("live", "mon_endpoints",
                     static_cast<double>(scrape.totals.endpoints));
  reporter.AddMetric("live", "mon_unhealthy",
                     static_cast<double>(mon_unhealthy));
  reporter.AddMetric("live", "mon_frames_rejected",
                     static_cast<double>(scrape.totals.stats.frames_rejected));
  reporter.AddMetric("live", "mon_transport_dropped",
                     static_cast<double>(mon_transport_dropped));
  reporter.AddMetric("live", "mon_answers_finalized",
                     static_cast<double>(
                         scrape.totals.stats.answers_finalized));
  reporter.AddMetric("live", "mon_queries_served",
                     static_cast<double>(scrape.totals.stats.queries_served));
  // Retransmissions are timing-dependent (a slow box acks late), so they
  // ride under the informational prefix.
  reporter.AddMetric("live", "wall_mon_retransmissions",
                     static_cast<double>(
                         scrape.totals.stats.retransmissions));
  // Wall-clock (informational `wall_` prefix, tools/bench_check.py).
  reporter.AddMetric("live", "wall_latency_p50_ms", p50);
  reporter.AddMetric("live", "wall_latency_p99_ms", p99);
  reporter.AddMetric("live", "wall_qps", qps);
  reporter.AddMetric("live", "wall_client_bytes",
                     static_cast<double>(udp.bytes_sent + udp.bytes_received));
  const Status ws = reporter.WriteMerged(bench_out);
  if (!ws.ok()) {
    std::fprintf(stderr, "bench-out: %s\n", ws.message().c_str());
    return 2;
  }
  std::printf("wrote %s\n",
              obs::BenchReporter::FilePath(bench_out, "net").c_str());
  const bool ok = completed == items->size() && mismatches == 0;
  if (!ok) {
    std::fprintf(stderr,
                 "net-bench FAILED: incomplete or mismatched answers\n");
  }
  return ok ? 0 : 1;
}

}  // namespace ripple
