#!/usr/bin/env bash
# Lints, builds the tree under a sanitizer and runs the test suite. The
# fault-injection tests (ctest label `fault`) are re-run separately so a
# sanitizer report there is attributed to the fault layer at a glance.
#
#   tools/check.sh            # ASan + UBSan-less default: address
#   tools/check.sh undefined  # UBSan
#   tools/check.sh thread     # TSan over the concurrent executor tests
#   tools/check.sh address tests/obs_test   # limit ctest to a regex
#   tools/check.sh wire       # wire codec/transport suite, ASan then UBSan
#   tools/check.sh net        # live-overlay suite (sockets), ASan then UBSan
#   tools/check.sh monitor    # admin/monitoring plane, ASan then UBSan
#   tools/check.sh cache      # cache/controller/batching, ASan then UBSan
#   tools/check.sh obs        # observability suite (obs+exec labels), TSan
#   tools/check.sh micro      # google-benchmark micro suite, smoke run
#   tools/check.sh --bench    # bench smoke suite + BENCH_*.json gate
#
# The sanitized build lives in build-san-<kind> next to the regular
# build directory, so it never disturbs an existing configure; --bench
# uses build-bench (plain RelWithDebInfo, benchmarks on).
set -euo pipefail

cd "$(dirname "$0")/.."

tools/lint_deprecated.sh
tools/lint_docs.sh

# --bench: run every bench binary at smoke scale (ctest label
# bench_smoke, serialized writes into build-bench/bench_json/) and gate
# the merged BENCH_*.json against the committed repo-root baseline.
# Regenerate the baseline after an intentional perf change with:
#   ctest --test-dir build-bench -L bench_smoke
#   cp build-bench/bench_json/BENCH_*.json .
# (see docs/OBSERVABILITY.md) and commit the diff.
if [[ "${1:-}" == "--bench" ]]; then
  BUILD_DIR="build-bench"
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRIPPLE_BUILD_BENCHMARKS=ON \
    -DRIPPLE_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  rm -rf "$BUILD_DIR/bench_json" "$BUILD_DIR/net_demo"
  mkdir -p "$BUILD_DIR/bench_json"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L bench_smoke
  # The net suite's fresh document comes from the live 3-process demo,
  # not a ctest binary: real daemons, real sockets, gated completeness.
  tools/net_demo.sh "$BUILD_DIR" "$BUILD_DIR/net_demo"
  cp "$BUILD_DIR/net_demo/BENCH_net.json" "$BUILD_DIR/bench_json/"
  python3 tools/bench_check.py --baseline . --fresh "$BUILD_DIR/bench_json"
  echo "check.sh: bench gate clean"
  exit 0
fi

# wire: the serialization/transport suite (ctest label `wire`) under
# both memory-facing sanitizers. Decoders are the code that reads
# attacker-shaped bytes, so they get the strictest harness: ASan for
# the buffer-overrun class, UBSan for the integer/shift class.
if [[ "${1:-}" == "wire" ]]; then
  for kind in address undefined; do
    BUILD_DIR="build-san-$kind"
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DRIPPLE_SANITIZE="$kind" \
      -DRIPPLE_BUILD_BENCHMARKS=OFF \
      -DRIPPLE_BUILD_EXAMPLES=OFF
    cmake --build "$BUILD_DIR" -j "$(nproc)"
    ctest --test-dir "$BUILD_DIR" --output-on-failure -L wire
  done
  echo "check.sh: wire suite clean under address+undefined"
  exit 0
fi

# net: the live-overlay suite (ctest label `net`: peers file, UDP
# transport, wall timers, daemon protocol, end-to-end over real
# sockets). Same two-sanitizer harness as `wire` — the daemon's decode
# path reads whatever the socket hands it, so it earns ASan for the
# buffer class and UBSan for the integer class.
if [[ "${1:-}" == "net" ]]; then
  for kind in address undefined; do
    BUILD_DIR="build-san-$kind"
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DRIPPLE_SANITIZE="$kind" \
      -DRIPPLE_BUILD_BENCHMARKS=OFF \
      -DRIPPLE_BUILD_EXAMPLES=OFF
    cmake --build "$BUILD_DIR" -j "$(nproc)"
    ctest --test-dir "$BUILD_DIR" --output-on-failure -L net
  done
  echo "check.sh: net suite clean under address+undefined"
  exit 0
fi

# monitor: the admin/monitoring plane (ctest label `monitor`: admin
# payload codecs, registry bridge, daemon probe handling, cluster scrape
# over real sockets). Same harness as `net` — the codecs decode bytes a
# scraped daemon (or an impostor) sent, so they earn both memory-facing
# sanitizers.
if [[ "${1:-}" == "monitor" ]]; then
  for kind in address undefined; do
    BUILD_DIR="build-san-$kind"
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DRIPPLE_SANITIZE="$kind" \
      -DRIPPLE_BUILD_BENCHMARKS=OFF \
      -DRIPPLE_BUILD_EXAMPLES=OFF
    cmake --build "$BUILD_DIR" -j "$(nproc)"
    ctest --test-dir "$BUILD_DIR" --output-on-failure -L monitor
  done
  echo "check.sh: monitor suite clean under address+undefined"
  exit 0
fi

# cache: the reuse layer (ctest label `cache`: answer/bound cache,
# adaptive controller, batched execution). Same two-sanitizer harness:
# ASan because the cache hands out copies of stored answers (lifetime
# bugs would surface as use-after-evict), UBSan for the key
# normalization's float/integer handling.
if [[ "${1:-}" == "cache" ]]; then
  for kind in address undefined; do
    BUILD_DIR="build-san-$kind"
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DRIPPLE_SANITIZE="$kind" \
      -DRIPPLE_BUILD_BENCHMARKS=OFF \
      -DRIPPLE_BUILD_EXAMPLES=OFF
    cmake --build "$BUILD_DIR" -j "$(nproc)"
    ctest --test-dir "$BUILD_DIR" --output-on-failure -L cache
  done
  echo "check.sh: cache suite clean under address+undefined"
  exit 0
fi

# micro: the google-benchmark micro suite (ctest label `micro`) at
# smoke scale — one repetition, minimal timing — in the plain bench
# build. This proves every registered micro benchmark (SoA kernels,
# scalar oracles, k-d index, Z-order, frame encode/decode, overlay
# maintenance) still runs to completion; timings are not gated here.
if [[ "${1:-}" == "micro" ]]; then
  BUILD_DIR="build-bench"
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRIPPLE_BUILD_BENCHMARKS=ON \
    -DRIPPLE_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L micro
  echo "check.sh: micro bench suite clean"
  exit 0
fi

# obs: the observability suite (ctest label `obs`: metrics registry,
# tracer, profiler, journal/assembler) under TSan. The registry stays
# live inside the executor's parallel section and the journal is a
# multi-writer sink, so the race detector — not ASan — is the sanitizer
# that can falsify those contracts. The exec label rides along because
# the executor's worker threads are what actually drive the obs layer
# concurrently.
if [[ "${1:-}" == "obs" ]]; then
  BUILD_DIR="build-san-thread"
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRIPPLE_SANITIZE=thread \
    -DRIPPLE_BUILD_BENCHMARKS=OFF \
    -DRIPPLE_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L 'obs|exec'
  echo "check.sh: obs suite clean under thread"
  exit 0
fi

SANITIZER="${1:-address}"
FILTER="${2:-}"
case "$SANITIZER" in
  address|undefined|thread) ;;
  *)
    echo "usage: tools/check.sh [address|undefined|thread] [ctest -R regex]" >&2
    exit 2
    ;;
esac

BUILD_DIR="build-san-$SANITIZER"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRIPPLE_SANITIZE="$SANITIZER" \
  -DRIPPLE_BUILD_BENCHMARKS=OFF \
  -DRIPPLE_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

CTEST_ARGS=(--test-dir "$BUILD_DIR" --output-on-failure)
if [[ "$SANITIZER" == "thread" ]]; then
  # TSan targets the code that actually runs threads: the concurrent
  # executor suite (ctest label `exec`). The engines themselves are
  # single-threaded by design; ASan/UBSan cover them.
  if [[ -n "$FILTER" ]]; then
    CTEST_ARGS+=(-R "$FILTER")
  else
    CTEST_ARGS+=(-L exec)
  fi
  ctest "${CTEST_ARGS[@]}"
  echo "check.sh: $SANITIZER build clean"
  exit 0
fi
if [[ -n "$FILTER" ]]; then
  CTEST_ARGS+=(-R "$FILTER")
fi
ctest "${CTEST_ARGS[@]}"

# The fault-injection suite exercises the retry/dedup/crash machinery the
# hardest; run it again by label so its sanitizer verdict is explicit.
if [[ -z "$FILTER" ]]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L fault
fi
echo "check.sh: $SANITIZER build clean"
