#!/usr/bin/env bash
# Builds the tree under a sanitizer and runs the test suite.
#
#   tools/check.sh            # ASan + UBSan-less default: address
#   tools/check.sh undefined  # UBSan
#   tools/check.sh address tests/obs_test   # limit ctest to a regex
#
# The sanitized build lives in build-san-<kind> next to the regular
# build directory, so it never disturbs an existing configure.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${1:-address}"
FILTER="${2:-}"
case "$SANITIZER" in
  address|undefined) ;;
  *)
    echo "usage: tools/check.sh [address|undefined] [ctest -R regex]" >&2
    exit 2
    ;;
esac

BUILD_DIR="build-san-$SANITIZER"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRIPPLE_SANITIZE="$SANITIZER" \
  -DRIPPLE_BUILD_BENCHMARKS=OFF \
  -DRIPPLE_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

CTEST_ARGS=(--test-dir "$BUILD_DIR" --output-on-failure)
if [[ -n "$FILTER" ]]; then
  CTEST_ARGS+=(-R "$FILTER")
fi
ctest "${CTEST_ARGS[@]}"
echo "check.sh: $SANITIZER build clean"
