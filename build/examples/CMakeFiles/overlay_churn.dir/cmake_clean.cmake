file(REMOVE_RECURSE
  "CMakeFiles/overlay_churn.dir/overlay_churn.cpp.o"
  "CMakeFiles/overlay_churn.dir/overlay_churn.cpp.o.d"
  "overlay_churn"
  "overlay_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
