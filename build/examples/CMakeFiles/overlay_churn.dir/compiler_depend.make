# Empty compiler generated dependencies file for overlay_churn.
# This may be replaced when dependencies are built.
