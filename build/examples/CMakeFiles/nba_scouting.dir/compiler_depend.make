# Empty compiler generated dependencies file for nba_scouting.
# This may be replaced when dependencies are built.
