# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/bitstring_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/zorder_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/midas_test[1]_include.cmake")
include("/root/repo/build/tests/can_test[1]_include.cmake")
include("/root/repo/build/tests/baton_test[1]_include.cmake")
include("/root/repo/build/tests/chord_test[1]_include.cmake")
include("/root/repo/build/tests/engine_topk_test[1]_include.cmake")
include("/root/repo/build/tests/engine_skyline_test[1]_include.cmake")
include("/root/repo/build/tests/engine_diversify_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_test[1]_include.cmake")
include("/root/repo/build/tests/lemmas_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/range_test[1]_include.cmake")
include("/root/repo/build/tests/async_engine_test[1]_include.cmake")
include("/root/repo/build/tests/skyband_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/death_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/policy_unit_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
