# Empty compiler generated dependencies file for engine_topk_test.
# This may be replaced when dependencies are built.
