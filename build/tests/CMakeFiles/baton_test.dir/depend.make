# Empty dependencies file for baton_test.
# This may be replaced when dependencies are built.
