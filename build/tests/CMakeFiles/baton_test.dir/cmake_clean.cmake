file(REMOVE_RECURSE
  "CMakeFiles/baton_test.dir/baton_test.cc.o"
  "CMakeFiles/baton_test.dir/baton_test.cc.o.d"
  "baton_test"
  "baton_test.pdb"
  "baton_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
