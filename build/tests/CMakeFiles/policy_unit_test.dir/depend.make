# Empty dependencies file for policy_unit_test.
# This may be replaced when dependencies are built.
