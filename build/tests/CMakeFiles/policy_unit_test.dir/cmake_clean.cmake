file(REMOVE_RECURSE
  "CMakeFiles/policy_unit_test.dir/policy_unit_test.cc.o"
  "CMakeFiles/policy_unit_test.dir/policy_unit_test.cc.o.d"
  "policy_unit_test"
  "policy_unit_test.pdb"
  "policy_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
