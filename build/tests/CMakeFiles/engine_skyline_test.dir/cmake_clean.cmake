file(REMOVE_RECURSE
  "CMakeFiles/engine_skyline_test.dir/engine_skyline_test.cc.o"
  "CMakeFiles/engine_skyline_test.dir/engine_skyline_test.cc.o.d"
  "engine_skyline_test"
  "engine_skyline_test.pdb"
  "engine_skyline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
