# Empty compiler generated dependencies file for engine_skyline_test.
# This may be replaced when dependencies are built.
