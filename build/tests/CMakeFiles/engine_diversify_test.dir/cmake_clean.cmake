file(REMOVE_RECURSE
  "CMakeFiles/engine_diversify_test.dir/engine_diversify_test.cc.o"
  "CMakeFiles/engine_diversify_test.dir/engine_diversify_test.cc.o.d"
  "engine_diversify_test"
  "engine_diversify_test.pdb"
  "engine_diversify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_diversify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
