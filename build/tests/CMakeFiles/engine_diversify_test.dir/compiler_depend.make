# Empty compiler generated dependencies file for engine_diversify_test.
# This may be replaced when dependencies are built.
