# Empty compiler generated dependencies file for ripple_cli.
# This may be replaced when dependencies are built.
