
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/div_baseline.cc" "src/CMakeFiles/ripple.dir/baselines/div_baseline.cc.o" "gcc" "src/CMakeFiles/ripple.dir/baselines/div_baseline.cc.o.d"
  "/root/repo/src/baselines/dsl.cc" "src/CMakeFiles/ripple.dir/baselines/dsl.cc.o" "gcc" "src/CMakeFiles/ripple.dir/baselines/dsl.cc.o.d"
  "/root/repo/src/baselines/ssp.cc" "src/CMakeFiles/ripple.dir/baselines/ssp.cc.o" "gcc" "src/CMakeFiles/ripple.dir/baselines/ssp.cc.o.d"
  "/root/repo/src/common/bitstring.cc" "src/CMakeFiles/ripple.dir/common/bitstring.cc.o" "gcc" "src/CMakeFiles/ripple.dir/common/bitstring.cc.o.d"
  "/root/repo/src/common/env.cc" "src/CMakeFiles/ripple.dir/common/env.cc.o" "gcc" "src/CMakeFiles/ripple.dir/common/env.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/ripple.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/ripple.dir/common/flags.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/ripple.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/ripple.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/ripple.dir/common/status.cc.o" "gcc" "src/CMakeFiles/ripple.dir/common/status.cc.o.d"
  "/root/repo/src/common/zipf.cc" "src/CMakeFiles/ripple.dir/common/zipf.cc.o" "gcc" "src/CMakeFiles/ripple.dir/common/zipf.cc.o.d"
  "/root/repo/src/data/datasets.cc" "src/CMakeFiles/ripple.dir/data/datasets.cc.o" "gcc" "src/CMakeFiles/ripple.dir/data/datasets.cc.o.d"
  "/root/repo/src/geom/dominance.cc" "src/CMakeFiles/ripple.dir/geom/dominance.cc.o" "gcc" "src/CMakeFiles/ripple.dir/geom/dominance.cc.o.d"
  "/root/repo/src/geom/point.cc" "src/CMakeFiles/ripple.dir/geom/point.cc.o" "gcc" "src/CMakeFiles/ripple.dir/geom/point.cc.o.d"
  "/root/repo/src/geom/rect.cc" "src/CMakeFiles/ripple.dir/geom/rect.cc.o" "gcc" "src/CMakeFiles/ripple.dir/geom/rect.cc.o.d"
  "/root/repo/src/geom/scoring.cc" "src/CMakeFiles/ripple.dir/geom/scoring.cc.o" "gcc" "src/CMakeFiles/ripple.dir/geom/scoring.cc.o.d"
  "/root/repo/src/geom/zorder.cc" "src/CMakeFiles/ripple.dir/geom/zorder.cc.o" "gcc" "src/CMakeFiles/ripple.dir/geom/zorder.cc.o.d"
  "/root/repo/src/net/metrics.cc" "src/CMakeFiles/ripple.dir/net/metrics.cc.o" "gcc" "src/CMakeFiles/ripple.dir/net/metrics.cc.o.d"
  "/root/repo/src/overlay/baton/baton.cc" "src/CMakeFiles/ripple.dir/overlay/baton/baton.cc.o" "gcc" "src/CMakeFiles/ripple.dir/overlay/baton/baton.cc.o.d"
  "/root/repo/src/overlay/can/can.cc" "src/CMakeFiles/ripple.dir/overlay/can/can.cc.o" "gcc" "src/CMakeFiles/ripple.dir/overlay/can/can.cc.o.d"
  "/root/repo/src/overlay/chord/chord.cc" "src/CMakeFiles/ripple.dir/overlay/chord/chord.cc.o" "gcc" "src/CMakeFiles/ripple.dir/overlay/chord/chord.cc.o.d"
  "/root/repo/src/overlay/midas/midas.cc" "src/CMakeFiles/ripple.dir/overlay/midas/midas.cc.o" "gcc" "src/CMakeFiles/ripple.dir/overlay/midas/midas.cc.o.d"
  "/root/repo/src/overlay/midas/patterns.cc" "src/CMakeFiles/ripple.dir/overlay/midas/patterns.cc.o" "gcc" "src/CMakeFiles/ripple.dir/overlay/midas/patterns.cc.o.d"
  "/root/repo/src/queries/diversify.cc" "src/CMakeFiles/ripple.dir/queries/diversify.cc.o" "gcc" "src/CMakeFiles/ripple.dir/queries/diversify.cc.o.d"
  "/root/repo/src/queries/diversify_driver.cc" "src/CMakeFiles/ripple.dir/queries/diversify_driver.cc.o" "gcc" "src/CMakeFiles/ripple.dir/queries/diversify_driver.cc.o.d"
  "/root/repo/src/queries/skyband.cc" "src/CMakeFiles/ripple.dir/queries/skyband.cc.o" "gcc" "src/CMakeFiles/ripple.dir/queries/skyband.cc.o.d"
  "/root/repo/src/queries/skyline.cc" "src/CMakeFiles/ripple.dir/queries/skyline.cc.o" "gcc" "src/CMakeFiles/ripple.dir/queries/skyline.cc.o.d"
  "/root/repo/src/queries/topk.cc" "src/CMakeFiles/ripple.dir/queries/topk.cc.o" "gcc" "src/CMakeFiles/ripple.dir/queries/topk.cc.o.d"
  "/root/repo/src/store/kd_index.cc" "src/CMakeFiles/ripple.dir/store/kd_index.cc.o" "gcc" "src/CMakeFiles/ripple.dir/store/kd_index.cc.o.d"
  "/root/repo/src/store/local_algos.cc" "src/CMakeFiles/ripple.dir/store/local_algos.cc.o" "gcc" "src/CMakeFiles/ripple.dir/store/local_algos.cc.o.d"
  "/root/repo/src/store/local_store.cc" "src/CMakeFiles/ripple.dir/store/local_store.cc.o" "gcc" "src/CMakeFiles/ripple.dir/store/local_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
