file(REMOVE_RECURSE
  "libripple.a"
)
