# Empty compiler generated dependencies file for bench_abl_async.
# This may be replaced when dependencies are built.
