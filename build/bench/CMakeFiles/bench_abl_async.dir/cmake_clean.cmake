file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_async.dir/bench_abl_async.cc.o"
  "CMakeFiles/bench_abl_async.dir/bench_abl_async.cc.o.d"
  "bench_abl_async"
  "bench_abl_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
