file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_topk_dims.dir/bench_fig05_topk_dims.cc.o"
  "CMakeFiles/bench_fig05_topk_dims.dir/bench_fig05_topk_dims.cc.o.d"
  "bench_fig05_topk_dims"
  "bench_fig05_topk_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_topk_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
