# Empty compiler generated dependencies file for bench_abl_lemmas.
# This may be replaced when dependencies are built.
