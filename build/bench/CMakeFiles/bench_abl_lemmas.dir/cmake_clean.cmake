file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_lemmas.dir/bench_abl_lemmas.cc.o"
  "CMakeFiles/bench_abl_lemmas.dir/bench_abl_lemmas.cc.o.d"
  "bench_abl_lemmas"
  "bench_abl_lemmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_lemmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
