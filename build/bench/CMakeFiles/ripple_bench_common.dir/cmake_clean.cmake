file(REMOVE_RECURSE
  "CMakeFiles/ripple_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/ripple_bench_common.dir/bench_common.cc.o.d"
  "libripple_bench_common.a"
  "libripple_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
