file(REMOVE_RECURSE
  "libripple_bench_common.a"
)
