# Empty compiler generated dependencies file for ripple_bench_common.
# This may be replaced when dependencies are built.
