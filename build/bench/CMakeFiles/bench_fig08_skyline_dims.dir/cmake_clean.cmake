file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_skyline_dims.dir/bench_fig08_skyline_dims.cc.o"
  "CMakeFiles/bench_fig08_skyline_dims.dir/bench_fig08_skyline_dims.cc.o.d"
  "bench_fig08_skyline_dims"
  "bench_fig08_skyline_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_skyline_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
