# Empty dependencies file for bench_fig08_skyline_dims.
# This may be replaced when dependencies are built.
