file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_naive.dir/bench_abl_naive.cc.o"
  "CMakeFiles/bench_abl_naive.dir/bench_abl_naive.cc.o.d"
  "bench_abl_naive"
  "bench_abl_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
