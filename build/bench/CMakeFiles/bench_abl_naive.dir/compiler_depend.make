# Empty compiler generated dependencies file for bench_abl_naive.
# This may be replaced when dependencies are built.
