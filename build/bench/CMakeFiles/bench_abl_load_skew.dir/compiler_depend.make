# Empty compiler generated dependencies file for bench_abl_load_skew.
# This may be replaced when dependencies are built.
