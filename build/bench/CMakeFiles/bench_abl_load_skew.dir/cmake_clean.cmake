file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_load_skew.dir/bench_abl_load_skew.cc.o"
  "CMakeFiles/bench_abl_load_skew.dir/bench_abl_load_skew.cc.o.d"
  "bench_abl_load_skew"
  "bench_abl_load_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_load_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
