# Empty compiler generated dependencies file for bench_fig09_div_network.
# This may be replaced when dependencies are built.
