file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_ripple_sweep.dir/bench_abl_ripple_sweep.cc.o"
  "CMakeFiles/bench_abl_ripple_sweep.dir/bench_abl_ripple_sweep.cc.o.d"
  "bench_abl_ripple_sweep"
  "bench_abl_ripple_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_ripple_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
