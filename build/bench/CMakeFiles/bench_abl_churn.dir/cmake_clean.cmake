file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_churn.dir/bench_abl_churn.cc.o"
  "CMakeFiles/bench_abl_churn.dir/bench_abl_churn.cc.o.d"
  "bench_abl_churn"
  "bench_abl_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
