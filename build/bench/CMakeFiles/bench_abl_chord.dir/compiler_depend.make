# Empty compiler generated dependencies file for bench_abl_chord.
# This may be replaced when dependencies are built.
