file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_chord.dir/bench_abl_chord.cc.o"
  "CMakeFiles/bench_abl_chord.dir/bench_abl_chord.cc.o.d"
  "bench_abl_chord"
  "bench_abl_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
