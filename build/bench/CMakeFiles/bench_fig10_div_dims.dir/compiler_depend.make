# Empty compiler generated dependencies file for bench_fig10_div_dims.
# This may be replaced when dependencies are built.
