# Empty dependencies file for bench_fig07_skyline_network.
# This may be replaced when dependencies are built.
