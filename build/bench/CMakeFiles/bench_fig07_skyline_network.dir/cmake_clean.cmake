file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_skyline_network.dir/bench_fig07_skyline_network.cc.o"
  "CMakeFiles/bench_fig07_skyline_network.dir/bench_fig07_skyline_network.cc.o.d"
  "bench_fig07_skyline_network"
  "bench_fig07_skyline_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_skyline_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
