# Empty dependencies file for bench_fig11_div_k.
# This may be replaced when dependencies are built.
