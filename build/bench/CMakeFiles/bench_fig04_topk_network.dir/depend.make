# Empty dependencies file for bench_fig04_topk_network.
# This may be replaced when dependencies are built.
