#ifndef RIPPLE_WIRE_FRAME_H_
#define RIPPLE_WIRE_FRAME_H_

#include <cstddef>
#include <cstdint>

#include "wire/buffer.h"

namespace ripple::wire {

/// Schema version stamped into every frame. Bump on any incompatible
/// change to a payload format (docs/WIRE.md is the spec). Version 2 added
/// the trace-context tail; v1 frames are still decodable (the trace
/// context decodes as empty), everything else is rejected.
inline constexpr uint8_t kWireVersion = 2;

/// Oldest version the decoder still accepts.
inline constexpr uint8_t kMinWireVersion = 1;

/// Highest message-type tag a frame may carry. The values mirror
/// net::MessageKind (query=0, response=1, ack=2, answer=3, plus the
/// admin plane: ping=4, stats=5, snapshot=6, health=7); envelope.h
/// static_asserts the two stay in sync. The admin tags widened this
/// range within wire version 2 — a pre-admin v2 decoder rejects them as
/// kBadTag, which degrades a mixed fleet to "unmonitorable", never to
/// wrong answers (the query protocol's tags are untouched).
inline constexpr uint8_t kMaxMessageTag = 7;

/// Sentinel parent span id: "this frame starts a new root span". Matches
/// obs::kNoSpan bit-for-bit, but wire/ must not depend on obs/ (the
/// static_assert lives in obs/journal.h).
inline constexpr uint32_t kNoParentSpan = 0xffffffffu;

/// Frame flags (the v2 flags byte). Bit 0 is the head-based sampling
/// decision taken once at the query initiator; every downstream peer
/// honors it, so a trace is either complete or absent, never partial.
inline constexpr uint8_t kFrameFlagSampled = 0x01;

/// Trace context carried by every v2 frame. A v1 frame decodes with the
/// defaults below: no trace, no parent, not sampled.
struct TraceContext {
  uint64_t trace_id = 0;               // 0 = unsampled / no trace
  uint32_t parent_span = kNoParentSpan;
  uint8_t flags = 0;

  bool sampled() const { return (flags & kFrameFlagSampled) != 0; }
};

/// Fixed frame header, in wire order:
///
///   [u32 length][u8 version][u8 tag][u64 msg id][u32 from][u32 to]
///   [u8 flags][u64 trace id][u32 parent span]          (v2 tail)
///
/// `length` counts every byte after the length field itself (header tail +
/// payload), so a datagram of concatenated frames can be walked without
/// knowing the payload formats. Ids, peer ids and the trace tail are
/// fixed-width on purpose: frame sizes must not depend on how an engine
/// assigns message ids or span ids, or the two engines' byte accounting
/// would diverge.
inline constexpr size_t kFrameHeaderSizeV1 = 4 + 1 + 1 + 8 + 4 + 4;
inline constexpr size_t kTraceTailSize = 1 + 8 + 4;
inline constexpr size_t kFrameHeaderSize = kFrameHeaderSizeV1 + kTraceTailSize;

struct FrameHeader {
  uint32_t length = 0;  // bytes after the length field
  uint8_t version = kWireVersion;
  uint8_t tag = 0;
  uint64_t id = 0;
  uint32_t from = 0;
  uint32_t to = 0;
  TraceContext trace;   // empty when version == 1
};

/// Why a frame header failed to decode. kTruncated covers every "not
/// enough bytes" shape (short buffer, length below the header tail,
/// declared payload absent); kBadVersion / kBadTag are semantic
/// rejections of complete headers.
enum class FrameError : uint8_t {
  kOk = 0,
  kTruncated,
  kBadVersion,
  kBadTag,
};

/// Appends a frame header with a zero length placeholder; returns the
/// frame's start offset for EndFrame. The caller appends the payload, then
/// calls EndFrame to patch the length. `trace` is the context stamped into
/// the v2 tail (default: unsampled, no parent).
size_t BeginFrame(Buffer* buf, uint8_t tag, uint64_t id, uint32_t from,
                  uint32_t to, const TraceContext& trace = {});

/// Patches the length field of the frame begun at `frame_start` to cover
/// everything appended since.
void EndFrame(Buffer* buf, size_t frame_start);

/// Reads and validates one frame header: enough bytes for the fixed
/// header, an accepted version (v1 decodes with an empty trace context),
/// a known tag, and a length the buffer actually holds. On success the
/// reader is positioned at the payload and the declared payload is
/// guaranteed present; on failure the reader is failed and the reason is
/// returned.
FrameError DecodeFrameHeaderEx(Reader* r, FrameHeader* out);

/// Boolean wrapper for callers that do not need the failure reason.
inline bool DecodeFrameHeader(Reader* r, FrameHeader* out) {
  return DecodeFrameHeaderEx(r, out) == FrameError::kOk;
}

/// Bytes of header tail (everything after the length field that is not
/// payload) for a given frame version.
inline size_t FrameHeaderTailSize(uint8_t version) {
  return (version >= 2 ? kFrameHeaderSize : kFrameHeaderSizeV1) - 4;
}

/// Payload bytes of a decoded header (length minus the header tail).
inline size_t FramePayloadSize(const FrameHeader& h) {
  return h.length - FrameHeaderTailSize(h.version);
}

}  // namespace ripple::wire

#endif  // RIPPLE_WIRE_FRAME_H_
