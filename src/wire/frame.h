#ifndef RIPPLE_WIRE_FRAME_H_
#define RIPPLE_WIRE_FRAME_H_

#include <cstddef>
#include <cstdint>

#include "wire/buffer.h"

namespace ripple::wire {

/// Schema version stamped into every frame. Bump on any incompatible
/// change to a payload format (docs/WIRE.md is the spec); decoders reject
/// frames from other versions.
inline constexpr uint8_t kWireVersion = 1;

/// Highest message-type tag a frame may carry. The values mirror
/// net::MessageKind (query=0, response=1, ack=2, answer=3); envelope.h
/// static_asserts the two stay in sync.
inline constexpr uint8_t kMaxMessageTag = 3;

/// Fixed frame header, in wire order:
///
///   [u32 length][u8 version][u8 tag][u64 msg id][u32 from][u32 to]
///
/// `length` counts every byte after the length field itself (header tail +
/// payload), so a datagram of concatenated frames can be walked without
/// knowing the payload formats. Ids and peer ids are fixed-width on
/// purpose: frame sizes must not depend on how an engine assigns message
/// ids, or the two engines' byte accounting would diverge.
inline constexpr size_t kFrameHeaderSize = 4 + 1 + 1 + 8 + 4 + 4;

struct FrameHeader {
  uint32_t length = 0;  // bytes after the length field
  uint8_t version = kWireVersion;
  uint8_t tag = 0;
  uint64_t id = 0;
  uint32_t from = 0;
  uint32_t to = 0;
};

/// Appends a frame header with a zero length placeholder; returns the
/// frame's start offset for EndFrame. The caller appends the payload, then
/// calls EndFrame to patch the length.
size_t BeginFrame(Buffer* buf, uint8_t tag, uint64_t id, uint32_t from,
                  uint32_t to);

/// Patches the length field of the frame begun at `frame_start` to cover
/// everything appended since.
void EndFrame(Buffer* buf, size_t frame_start);

/// Reads and validates one frame header: enough bytes for the fixed
/// header, a known version, a known tag, and a length the buffer actually
/// holds. On success the reader is positioned at the payload and the
/// declared payload is guaranteed present; on failure the reader is
/// failed. Returns Reader::ok().
bool DecodeFrameHeader(Reader* r, FrameHeader* out);

/// Payload bytes of a decoded header (length minus the header tail).
inline size_t FramePayloadSize(const FrameHeader& h) {
  return h.length - (kFrameHeaderSize - 4);
}

}  // namespace ripple::wire

#endif  // RIPPLE_WIRE_FRAME_H_
