#ifndef RIPPLE_WIRE_BUFFER_H_
#define RIPPLE_WIRE_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ripple::wire {

/// A growable byte buffer every wire encoder appends to. Explicit
/// little-endian byte order for the fixed-width encodings, LEB128 varints
/// for counts, zigzag for signed values and bit-exact doubles — so an
/// encode/decode round trip preserves every value exactly (including
/// infinities and the sign of zero), which the engines' determinism
/// contract depends on.
class Buffer {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  /// Unsigned LEB128: 7 value bits per byte, high bit = continuation.
  void PutVarint(uint64_t v);
  /// Zigzag-mapped varint for signed values ((v << 1) ^ (v >> 63)).
  void PutZigzag(int64_t v);
  /// The double's IEEE-754 bit pattern as a Fixed64 (exact round trip).
  void PutF64(double v);
  void PutBytes(const uint8_t* data, size_t n);

  /// Overwrites 4 bytes at `offset` in place — how frame encoders patch a
  /// length field once the payload size is known. Requires offset + 4 <=
  /// size().
  void WriteFixed32At(size_t offset, uint32_t v);

  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  const uint8_t* data() const { return bytes_.data(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

  void Clear() { bytes_.clear(); }
  /// Moves the accumulated bytes out, leaving the buffer empty.
  std::vector<uint8_t> Take() { return std::exchange(bytes_, {}); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Cursor over received bytes. Decoders never trust the wire: every read
/// checks the remaining length and a failed read latches `ok() == false`
/// and returns 0, so decoding a truncated or corrupted buffer degrades to
/// a rejected message instead of undefined behavior. Callers check ok()
/// once at the end (reads after a failure stay failed).
class Reader {
 public:
  Reader(const uint8_t* data, size_t n) : data_(data), end_(n) {}
  explicit Reader(const std::vector<uint8_t>& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  uint8_t U8();
  uint32_t Fixed32();
  uint64_t Fixed64();
  uint64_t Varint();
  int64_t Zigzag();
  double F64();
  bool Skip(size_t n);

  bool ok() const { return ok_; }
  /// Latches the failure state (decoders use this for semantic rejections:
  /// bad tag, out-of-range dimension, ...).
  void Fail() { ok_ = false; }

  size_t remaining() const { return end_ - pos_; }
  size_t position() const { return pos_; }
  /// Pointer to the next unread byte (frame walkers slice sub-readers).
  const uint8_t* cursor() const { return data_ + pos_; }

 private:
  bool Need(size_t n) {
    if (!ok_ || end_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t pos_ = 0;
  size_t end_;
  bool ok_ = true;
};

}  // namespace ripple::wire

#endif  // RIPPLE_WIRE_BUFFER_H_
