#include "wire/frame.h"

namespace ripple::wire {

size_t BeginFrame(Buffer* buf, uint8_t tag, uint64_t id, uint32_t from,
                  uint32_t to) {
  const size_t start = buf->size();
  buf->PutFixed32(0);  // length, patched by EndFrame
  buf->PutU8(kWireVersion);
  buf->PutU8(tag);
  buf->PutFixed64(id);
  buf->PutFixed32(from);
  buf->PutFixed32(to);
  return start;
}

void EndFrame(Buffer* buf, size_t frame_start) {
  buf->WriteFixed32At(frame_start,
                      static_cast<uint32_t>(buf->size() - frame_start - 4));
}

bool DecodeFrameHeader(Reader* r, FrameHeader* out) {
  out->length = r->Fixed32();
  out->version = r->U8();
  out->tag = r->U8();
  out->id = r->Fixed64();
  out->from = r->Fixed32();
  out->to = r->Fixed32();
  if (!r->ok()) return false;
  if (out->version != kWireVersion || out->tag > kMaxMessageTag ||
      out->length < kFrameHeaderSize - 4 ||
      out->length - (kFrameHeaderSize - 4) > r->remaining()) {
    r->Fail();
    return false;
  }
  return true;
}

}  // namespace ripple::wire
