#include "wire/frame.h"

namespace ripple::wire {

size_t BeginFrame(Buffer* buf, uint8_t tag, uint64_t id, uint32_t from,
                  uint32_t to, const TraceContext& trace) {
  const size_t start = buf->size();
  buf->PutFixed32(0);  // length, patched by EndFrame
  buf->PutU8(kWireVersion);
  buf->PutU8(tag);
  buf->PutFixed64(id);
  buf->PutFixed32(from);
  buf->PutFixed32(to);
  buf->PutU8(trace.flags);
  buf->PutFixed64(trace.trace_id);
  buf->PutFixed32(trace.parent_span);
  return start;
}

void EndFrame(Buffer* buf, size_t frame_start) {
  buf->WriteFixed32At(frame_start,
                      static_cast<uint32_t>(buf->size() - frame_start - 4));
}

FrameError DecodeFrameHeaderEx(Reader* r, FrameHeader* out) {
  out->length = r->Fixed32();
  out->version = r->U8();
  out->tag = r->U8();
  out->id = r->Fixed64();
  out->from = r->Fixed32();
  out->to = r->Fixed32();
  if (!r->ok()) return FrameError::kTruncated;
  if (out->version < kMinWireVersion || out->version > kWireVersion) {
    r->Fail();
    return FrameError::kBadVersion;
  }
  if (out->tag > kMaxMessageTag) {
    r->Fail();
    return FrameError::kBadTag;
  }
  out->trace = TraceContext{};
  if (out->version >= 2) {
    out->trace.flags = r->U8();
    out->trace.trace_id = r->Fixed64();
    out->trace.parent_span = r->Fixed32();
    if (!r->ok()) return FrameError::kTruncated;
  }
  if (out->length < FrameHeaderTailSize(out->version) ||
      FramePayloadSize(*out) > r->remaining()) {
    r->Fail();
    return FrameError::kTruncated;
  }
  return FrameError::kOk;
}

}  // namespace ripple::wire
