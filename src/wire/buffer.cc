#include "wire/buffer.h"

#include <bit>

#include "common/check.h"

namespace ripple::wire {

void Buffer::PutFixed32(uint32_t v) {
  bytes_.push_back(static_cast<uint8_t>(v));
  bytes_.push_back(static_cast<uint8_t>(v >> 8));
  bytes_.push_back(static_cast<uint8_t>(v >> 16));
  bytes_.push_back(static_cast<uint8_t>(v >> 24));
}

void Buffer::PutFixed64(uint64_t v) {
  PutFixed32(static_cast<uint32_t>(v));
  PutFixed32(static_cast<uint32_t>(v >> 32));
}

void Buffer::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<uint8_t>(v));
}

void Buffer::PutZigzag(int64_t v) {
  PutVarint((static_cast<uint64_t>(v) << 1) ^
            static_cast<uint64_t>(v >> 63));
}

void Buffer::PutF64(double v) { PutFixed64(std::bit_cast<uint64_t>(v)); }

void Buffer::PutBytes(const uint8_t* data, size_t n) {
  bytes_.insert(bytes_.end(), data, data + n);
}

void Buffer::WriteFixed32At(size_t offset, uint32_t v) {
  RIPPLE_CHECK(offset + 4 <= bytes_.size());
  bytes_[offset] = static_cast<uint8_t>(v);
  bytes_[offset + 1] = static_cast<uint8_t>(v >> 8);
  bytes_[offset + 2] = static_cast<uint8_t>(v >> 16);
  bytes_[offset + 3] = static_cast<uint8_t>(v >> 24);
}

uint8_t Reader::U8() {
  if (!Need(1)) return 0;
  return data_[pos_++];
}

uint32_t Reader::Fixed32() {
  if (!Need(4)) return 0;
  const uint32_t v = static_cast<uint32_t>(data_[pos_]) |
                     static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
                     static_cast<uint32_t>(data_[pos_ + 2]) << 16 |
                     static_cast<uint32_t>(data_[pos_ + 3]) << 24;
  pos_ += 4;
  return v;
}

uint64_t Reader::Fixed64() {
  const uint64_t lo = Fixed32();
  const uint64_t hi = Fixed32();
  return lo | hi << 32;
}

uint64_t Reader::Varint() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (!Need(1)) return 0;
    const uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  ok_ = false;  // continuation bit past 10 bytes: not a valid varint
  return 0;
}

int64_t Reader::Zigzag() {
  const uint64_t v = Varint();
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

double Reader::F64() { return std::bit_cast<double>(Fixed64()); }

bool Reader::Skip(size_t n) {
  if (!Need(n)) return false;
  pos_ += n;
  return true;
}

}  // namespace ripple::wire
