#include "geom/scoring.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace ripple {

void Scorer::ScoreBlock(const double* const* cols, int dims, size_t n,
                        double* out) const {
  Point p(dims);
  for (size_t i = 0; i < n; ++i) {
    for (int c = 0; c < dims; ++c) p[c] = cols[c][i];
    out[i] = Score(p);
  }
}

LinearScorer::LinearScorer(std::vector<double> weights)
    : weights_(std::move(weights)) {
  RIPPLE_CHECK(!weights_.empty());
  RIPPLE_CHECK(weights_.size() <= static_cast<size_t>(kMaxDims));
}

double LinearScorer::Score(const Point& p) const {
  RIPPLE_DCHECK(p.dims() == static_cast<int>(weights_.size()));
  double s = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) {
    s += weights_[i] * p[static_cast<int>(i)];
  }
  return s;
}

void LinearScorer::ScoreBlock(const double* const* cols, int dims, size_t n,
                              double* out) const {
  RIPPLE_DCHECK(dims == static_cast<int>(weights_.size()));
  (void)dims;
  // Column-outer accumulation: per element the additions happen in
  // dimension order, the exact chain scalar Score builds — required for
  // the bit-identity contract.
  for (size_t i = 0; i < n; ++i) out[i] = 0.0;
  for (size_t c = 0; c < weights_.size(); ++c) {
    const double w = weights_[c];
    const double* col = cols[c];
    for (size_t i = 0; i < n; ++i) out[i] += w * col[i];
  }
}

double LinearScorer::UpperBound(const Rect& r) const {
  RIPPLE_DCHECK(r.dims() == static_cast<int>(weights_.size()));
  double s = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) {
    const int d = static_cast<int>(i);
    s += weights_[i] * (weights_[i] >= 0 ? r.hi()[d] : r.lo()[d]);
  }
  return s;
}

Point LinearScorer::Peak(const Rect& domain) const {
  Point p(domain.dims());
  for (size_t i = 0; i < weights_.size(); ++i) {
    const int d = static_cast<int>(i);
    p[d] = weights_[i] >= 0 ? domain.hi()[d] : domain.lo()[d];
  }
  return p;
}

std::string LinearScorer::ToString() const {
  std::string out = "linear(";
  char buf[32];
  for (size_t i = 0; i < weights_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.3g", weights_[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  return out + ")";
}

NearestScorer::NearestScorer(const Point& anchor, Norm norm)
    : anchor_(anchor), norm_(norm) {}

double NearestScorer::Score(const Point& p) const {
  return -Distance(p, anchor_, norm_);
}

void NearestScorer::ScoreBlock(const double* const* cols, int dims, size_t n,
                               double* out) const {
  RIPPLE_DCHECK(dims == anchor_.dims());
  // Mirrors the per-norm accumulation order of Distance() exactly
  // (dimension-ordered additions / maxes), then negates — the same chain
  // scalar Score(-Distance) produces, bit for bit.
  switch (norm_) {
    case Norm::kL1:
      for (size_t i = 0; i < n; ++i) out[i] = 0.0;
      for (int c = 0; c < dims; ++c) {
        const double a = anchor_[c];
        const double* col = cols[c];
        for (size_t i = 0; i < n; ++i) out[i] += std::fabs(col[i] - a);
      }
      for (size_t i = 0; i < n; ++i) out[i] = -out[i];
      return;
    case Norm::kL2:
      for (size_t i = 0; i < n; ++i) out[i] = 0.0;
      for (int c = 0; c < dims; ++c) {
        const double a = anchor_[c];
        const double* col = cols[c];
        for (size_t i = 0; i < n; ++i) {
          const double d = col[i] - a;
          out[i] += d * d;
        }
      }
      for (size_t i = 0; i < n; ++i) out[i] = -std::sqrt(out[i]);
      return;
    case Norm::kLInf:
      for (size_t i = 0; i < n; ++i) out[i] = 0.0;
      for (int c = 0; c < dims; ++c) {
        const double a = anchor_[c];
        const double* col = cols[c];
        for (size_t i = 0; i < n; ++i) {
          out[i] = std::max(out[i], std::fabs(col[i] - a));
        }
      }
      for (size_t i = 0; i < n; ++i) out[i] = -out[i];
      return;
  }
}

double NearestScorer::UpperBound(const Rect& r) const {
  return -r.MinDist(anchor_, norm_);
}

Point NearestScorer::Peak(const Rect& domain) const {
  return domain.ClosestPointTo(anchor_);
}

std::string NearestScorer::ToString() const {
  return "nearest" + anchor_.ToString();
}

}  // namespace ripple
