#include "geom/scoring.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace ripple {

LinearScorer::LinearScorer(std::vector<double> weights)
    : weights_(std::move(weights)) {
  RIPPLE_CHECK(!weights_.empty());
  RIPPLE_CHECK(weights_.size() <= static_cast<size_t>(kMaxDims));
}

double LinearScorer::Score(const Point& p) const {
  RIPPLE_DCHECK(p.dims() == static_cast<int>(weights_.size()));
  double s = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) {
    s += weights_[i] * p[static_cast<int>(i)];
  }
  return s;
}

double LinearScorer::UpperBound(const Rect& r) const {
  RIPPLE_DCHECK(r.dims() == static_cast<int>(weights_.size()));
  double s = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) {
    const int d = static_cast<int>(i);
    s += weights_[i] * (weights_[i] >= 0 ? r.hi()[d] : r.lo()[d]);
  }
  return s;
}

Point LinearScorer::Peak(const Rect& domain) const {
  Point p(domain.dims());
  for (size_t i = 0; i < weights_.size(); ++i) {
    const int d = static_cast<int>(i);
    p[d] = weights_[i] >= 0 ? domain.hi()[d] : domain.lo()[d];
  }
  return p;
}

std::string LinearScorer::ToString() const {
  std::string out = "linear(";
  char buf[32];
  for (size_t i = 0; i < weights_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.3g", weights_[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  return out + ")";
}

NearestScorer::NearestScorer(const Point& anchor, Norm norm)
    : anchor_(anchor), norm_(norm) {}

double NearestScorer::Score(const Point& p) const {
  return -Distance(p, anchor_, norm_);
}

double NearestScorer::UpperBound(const Rect& r) const {
  return -r.MinDist(anchor_, norm_);
}

Point NearestScorer::Peak(const Rect& domain) const {
  return domain.ClosestPointTo(anchor_);
}

std::string NearestScorer::ToString() const {
  return "nearest" + anchor_.ToString();
}

}  // namespace ripple
