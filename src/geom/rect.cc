#include "geom/rect.h"

#include <algorithm>
#include <cmath>

namespace ripple {

Rect::Rect(const Point& lo, const Point& hi) : lo_(lo), hi_(hi) {
  RIPPLE_CHECK(lo.dims() == hi.dims());
  for (int i = 0; i < lo.dims(); ++i) RIPPLE_CHECK(lo[i] <= hi[i]);
}

Rect Rect::Unit(int dims) {
  Point lo(dims);
  Point hi(dims);
  hi.Fill(1.0);
  return Rect(lo, hi);
}

bool Rect::Contains(const Point& p) const {
  RIPPLE_DCHECK(p.dims() == dims());
  for (int i = 0; i < dims(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::ContainsHalfOpen(const Point& p, const Rect& domain) const {
  RIPPLE_DCHECK(p.dims() == dims());
  for (int i = 0; i < dims(); ++i) {
    if (p[i] < lo_[i]) return false;
    const bool at_domain_edge = hi_[i] >= domain.hi()[i];
    if (at_domain_edge ? (p[i] > hi_[i]) : (p[i] >= hi_[i])) return false;
  }
  return true;
}

bool Rect::Intersects(const Rect& other) const {
  RIPPLE_DCHECK(other.dims() == dims());
  for (int i = 0; i < dims(); ++i) {
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::Covers(const Rect& other) const {
  RIPPLE_DCHECK(other.dims() == dims());
  for (int i = 0; i < dims(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

Rect Rect::Intersection(const Rect& other) const {
  RIPPLE_DCHECK(Intersects(other));
  Point lo(dims());
  Point hi(dims());
  for (int i = 0; i < dims(); ++i) {
    lo[i] = std::max(lo_[i], other.lo_[i]);
    hi[i] = std::min(hi_[i], other.hi_[i]);
  }
  return Rect(lo, hi);
}

bool Rect::Degenerate() const {
  for (int i = 0; i < dims(); ++i) {
    if (hi_[i] == lo_[i]) return true;
  }
  return false;
}

double Rect::Volume() const {
  double v = 1.0;
  for (int i = 0; i < dims(); ++i) v *= hi_[i] - lo_[i];
  return v;
}

Point Rect::Center() const {
  Point c(dims());
  for (int i = 0; i < dims(); ++i) c[i] = 0.5 * (lo_[i] + hi_[i]);
  return c;
}

std::pair<Rect, Rect> Rect::Split(int dim, double value) const {
  RIPPLE_CHECK(dim >= 0 && dim < dims());
  RIPPLE_CHECK(value >= lo_[dim] && value <= hi_[dim]);
  Point lower_hi = hi_;
  lower_hi[dim] = value;
  Point upper_lo = lo_;
  upper_lo[dim] = value;
  return {Rect(lo_, lower_hi), Rect(upper_lo, hi_)};
}

Point Rect::ClosestPointTo(const Point& p) const {
  RIPPLE_DCHECK(p.dims() == dims());
  Point c(dims());
  for (int i = 0; i < dims(); ++i) {
    c[i] = std::clamp(p[i], lo_[i], hi_[i]);
  }
  return c;
}

double Rect::MinDist(const Point& p, Norm norm) const {
  return Distance(p, ClosestPointTo(p), norm);
}

double Rect::MaxDist(const Point& p, Norm norm) const {
  RIPPLE_DCHECK(p.dims() == dims());
  // Per dimension the farthest coordinate is whichever end of the interval
  // is farther from p; combine per the norm.
  double l1 = 0.0, l2 = 0.0, linf = 0.0;
  for (int i = 0; i < dims(); ++i) {
    const double d = std::max(std::fabs(p[i] - lo_[i]),
                              std::fabs(p[i] - hi_[i]));
    l1 += d;
    l2 += d * d;
    linf = std::max(linf, d);
  }
  switch (norm) {
    case Norm::kL1:
      return l1;
    case Norm::kL2:
      return std::sqrt(l2);
    case Norm::kLInf:
      return linf;
  }
  return 0.0;
}

std::string Rect::ToString() const {
  return "[" + lo_.ToString() + " .. " + hi_.ToString() + "]";
}

}  // namespace ripple
