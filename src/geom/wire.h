#ifndef RIPPLE_GEOM_WIRE_H_
#define RIPPLE_GEOM_WIRE_H_

#include <memory>

#include "geom/point.h"
#include "geom/rect.h"
#include "geom/scoring.h"
#include "wire/buffer.h"

namespace ripple {

/// Wire codecs for the geometry vocabulary (docs/WIRE.md, "geom
/// payloads"). Encoders never fail; decoders validate everything the
/// value types RIPPLE_CHECK on construction (dimension caps, lo <= hi),
/// fail the reader and return false on bad bytes — corruption becomes a
/// rejected message, never an aborted process.

/// Point: [u8 dims][dims x f64].
void EncodePoint(const Point& p, wire::Buffer* buf);
bool DecodePoint(wire::Reader* r, Point* out);

/// Rect: lo point, hi point. Rejects mismatched dims and lo > hi.
void EncodeRect(const Rect& rect, wire::Buffer* buf);
bool DecodeRect(wire::Reader* r, Rect* out);

/// Norm enum as one byte. Rejects unknown values.
void EncodeNorm(Norm norm, wire::Buffer* buf);
bool DecodeNorm(wire::Reader* r, Norm* out);

/// Scorer: [u8 kind][kind-specific payload]. Kind 1 = LinearScorer
/// (varint weight count + f64 weights), kind 2 = NearestScorer (anchor
/// point + norm). Encoding an unknown Scorer subclass is a programming
/// error (checked); decoding returns null on bad bytes. The decoded
/// scorer is heap-owned — queries carrying one keep it alive via
/// shared_ptr.
void EncodeScorer(const Scorer& s, wire::Buffer* buf);
std::shared_ptr<const Scorer> DecodeScorer(wire::Reader* r);

}  // namespace ripple

#endif  // RIPPLE_GEOM_WIRE_H_
