#include "geom/point.h"

#include <cmath>
#include <cstdio>

namespace ripple {

std::string Point::ToString() const {
  std::string out = "(";
  char buf[32];
  for (int i = 0; i < dims_; ++i) {
    std::snprintf(buf, sizeof(buf), "%.6g", coords_[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  out += ")";
  return out;
}

double L1Distance(const Point& a, const Point& b) {
  RIPPLE_DCHECK(a.dims() == b.dims());
  double sum = 0.0;
  for (int i = 0; i < a.dims(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

double L2DistanceSquared(const Point& a, const Point& b) {
  RIPPLE_DCHECK(a.dims() == b.dims());
  double sum = 0.0;
  for (int i = 0; i < a.dims(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double L2Distance(const Point& a, const Point& b) {
  return std::sqrt(L2DistanceSquared(a, b));
}

double LInfDistance(const Point& a, const Point& b) {
  RIPPLE_DCHECK(a.dims() == b.dims());
  double best = 0.0;
  for (int i = 0; i < a.dims(); ++i) {
    best = std::max(best, std::fabs(a[i] - b[i]));
  }
  return best;
}

double Distance(const Point& a, const Point& b, Norm norm) {
  switch (norm) {
    case Norm::kL1:
      return L1Distance(a, b);
    case Norm::kL2:
      return L2Distance(a, b);
    case Norm::kLInf:
      return LInfDistance(a, b);
  }
  return 0.0;
}

}  // namespace ripple
