#include "geom/wire.h"

#include <utility>
#include <vector>

#include "common/check.h"

namespace ripple {

void EncodePoint(const Point& p, wire::Buffer* buf) {
  buf->PutU8(static_cast<uint8_t>(p.dims()));
  for (int i = 0; i < p.dims(); ++i) buf->PutF64(p[i]);
}

bool DecodePoint(wire::Reader* r, Point* out) {
  const uint8_t dims = r->U8();
  if (!r->ok() || dims > kMaxDims) {
    r->Fail();
    return false;
  }
  Point p(dims);
  for (int i = 0; i < dims; ++i) p[i] = r->F64();
  if (!r->ok()) return false;
  *out = p;
  return true;
}

void EncodeRect(const Rect& rect, wire::Buffer* buf) {
  EncodePoint(rect.lo(), buf);
  EncodePoint(rect.hi(), buf);
}

bool DecodeRect(wire::Reader* r, Rect* out) {
  Point lo, hi;
  if (!DecodePoint(r, &lo) || !DecodePoint(r, &hi)) return false;
  // Validate what the Rect constructor checks, so corrupted bytes reject
  // instead of aborting the process.
  if (lo.dims() != hi.dims()) {
    r->Fail();
    return false;
  }
  for (int i = 0; i < lo.dims(); ++i) {
    if (!(lo[i] <= hi[i])) {  // catches NaN too
      r->Fail();
      return false;
    }
  }
  *out = Rect(lo, hi);
  return true;
}

namespace {

constexpr uint8_t kNormL1 = 0;
constexpr uint8_t kNormL2 = 1;
constexpr uint8_t kNormLInf = 2;

constexpr uint8_t kScorerLinear = 1;
constexpr uint8_t kScorerNearest = 2;

}  // namespace

void EncodeNorm(Norm norm, wire::Buffer* buf) {
  switch (norm) {
    case Norm::kL1: buf->PutU8(kNormL1); return;
    case Norm::kL2: buf->PutU8(kNormL2); return;
    case Norm::kLInf: buf->PutU8(kNormLInf); return;
  }
  RIPPLE_CHECK(false && "unknown Norm");
}

bool DecodeNorm(wire::Reader* r, Norm* out) {
  switch (r->U8()) {
    case kNormL1: *out = Norm::kL1; break;
    case kNormL2: *out = Norm::kL2; break;
    case kNormLInf: *out = Norm::kLInf; break;
    default:
      r->Fail();
      return false;
  }
  return r->ok();
}

void EncodeScorer(const Scorer& s, wire::Buffer* buf) {
  if (const auto* linear = dynamic_cast<const LinearScorer*>(&s)) {
    buf->PutU8(kScorerLinear);
    buf->PutVarint(linear->weights().size());
    for (double w : linear->weights()) buf->PutF64(w);
    return;
  }
  if (const auto* nearest = dynamic_cast<const NearestScorer*>(&s)) {
    buf->PutU8(kScorerNearest);
    EncodePoint(nearest->anchor(), buf);
    EncodeNorm(nearest->norm(), buf);
    return;
  }
  RIPPLE_CHECK(false && "scorer type has no wire encoding");
}

std::shared_ptr<const Scorer> DecodeScorer(wire::Reader* r) {
  switch (r->U8()) {
    case kScorerLinear: {
      const uint64_t count = r->Varint();
      // Each weight takes 8 bytes; a count the buffer cannot hold is
      // corruption, not a huge allocation request.
      if (!r->ok() || count > r->remaining() / 8) {
        r->Fail();
        return nullptr;
      }
      std::vector<double> weights(count);
      for (uint64_t i = 0; i < count; ++i) weights[i] = r->F64();
      if (!r->ok()) return nullptr;
      return std::make_shared<LinearScorer>(std::move(weights));
    }
    case kScorerNearest: {
      Point anchor;
      Norm norm = Norm::kL2;
      if (!DecodePoint(r, &anchor) || !DecodeNorm(r, &norm)) return nullptr;
      return std::make_shared<NearestScorer>(anchor, norm);
    }
    default:
      r->Fail();
      return nullptr;
  }
}

}  // namespace ripple
