#ifndef RIPPLE_GEOM_SCORING_H_
#define RIPPLE_GEOM_SCORING_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace ripple {

/// A monotone/unimodal scoring function for top-k queries (paper, Section 4).
/// Scores are "higher is better". Implementations must provide a sound upper
/// bound over any rectangle: UpperBound(r) >= Score(p) for every p in r —
/// this is the paper's f+ used by isLinkRelevant (Alg. 8) and comp (Alg. 9).
class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Score of a single tuple key.
  virtual double Score(const Point& p) const = 0;

  /// Batched scoring over n rows stored column-wise (`cols` is dims
  /// column arrays of n values each; out receives n scores). The contract
  /// is BIT-IDENTICAL results to calling Score on each row's point —
  /// overrides must accumulate per element in the same operation order as
  /// their scalar Score, so the distributed answers cannot drift when the
  /// flat paths switch to block evaluation. The base implementation
  /// materializes one point per row and delegates to Score.
  virtual void ScoreBlock(const double* const* cols, int dims, size_t n,
                          double* out) const;

  /// f+: upper bound of Score over the rectangle.
  virtual double UpperBound(const Rect& r) const = 0;

  /// The domain point maximizing the score (unimodal functions have exactly
  /// one). Used to seed query processing near the best tuples.
  virtual Point Peak(const Rect& domain) const = 0;

  virtual std::string ToString() const = 0;
};

/// Weighted linear aggregation: Score(p) = sum_i w_i * p_i. Monotone for
/// non-negative weights; the paper's NBA top-k "aggregates individual
/// statistics by the scoring function".
class LinearScorer : public Scorer {
 public:
  explicit LinearScorer(std::vector<double> weights);

  double Score(const Point& p) const override;
  void ScoreBlock(const double* const* cols, int dims, size_t n,
                  double* out) const override;
  double UpperBound(const Rect& r) const override;
  Point Peak(const Rect& domain) const override;
  std::string ToString() const override;

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
};

/// Unimodal "closeness to an anchor" score: Score(p) = -dist(p, anchor).
/// Its unique maximum is at the anchor, matching the paper's definition of
/// a unimodal multivariate function with a single local maximum.
class NearestScorer : public Scorer {
 public:
  NearestScorer(const Point& anchor, Norm norm);

  double Score(const Point& p) const override;
  void ScoreBlock(const double* const* cols, int dims, size_t n,
                  double* out) const override;
  double UpperBound(const Rect& r) const override;
  Point Peak(const Rect& domain) const override;
  std::string ToString() const override;

  const Point& anchor() const { return anchor_; }
  Norm norm() const { return norm_; }

 private:
  Point anchor_;
  Norm norm_;
};

}  // namespace ripple

#endif  // RIPPLE_GEOM_SCORING_H_
