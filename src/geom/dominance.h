#ifndef RIPPLE_GEOM_DOMINANCE_H_
#define RIPPLE_GEOM_DOMINANCE_H_

#include <cstddef>

#include "geom/point.h"
#include "geom/rect.h"

namespace ripple {

/// Pareto dominance with min-is-better semantics on every attribute,
/// matching the paper's Section 5 convention ("lower values are better").
///
/// `a` dominates `b` iff a <= b componentwise and a < b in at least one
/// component.
bool Dominates(const Point& a, const Point& b);

/// True when point `s` dominates *every* point of the rectangle `r`,
/// i.e. s dominates the rect's lower corner (Algorithm 14's region test:
/// a region is prunable when some skyline point dominates all tuples it
/// could possibly contain).
bool DominatesRect(const Point& s, const Rect& r);

/// True when *some* point of `r` could dominate `p` — equivalently, the
/// rect's lower corner dominates `p`. Used to decide whether a region can
/// still contribute to the skyline given current results.
bool RectMayDominate(const Rect& r, const Point& p);

/// Column-wise dominance kernel: true when any of the `m` points stored
/// column-wise in `cols` (dims column arrays of m values each) dominates
/// `p`. The first (possibly partial) block is scanned row-at-a-time with
/// short-circuit — callers keep candidates in ascending-coordinate-sum
/// order, so the strongest dominators sit up front. The remaining rows
/// run the branch-light path: per block, a byte mask le[i] (<= everywhere
/// so far) is narrowed one column at a time with straight-line compares
/// the compiler can auto-vectorize, a block is abandoned as soon as no
/// lane survives the prefix, and strictness is resolved scalar for the
/// rare all-<= survivors. The dominance_cmps kernel counter advances by
/// the rows of every block actually tested, which makes it independent of
/// WHERE in a block the dominator sits: exact-gateable given the same
/// data.
bool AnyDominatesColumns(const double* const* cols, int dims, size_t m,
                         const Point& p);

}  // namespace ripple

#endif  // RIPPLE_GEOM_DOMINANCE_H_
