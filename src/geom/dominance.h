#ifndef RIPPLE_GEOM_DOMINANCE_H_
#define RIPPLE_GEOM_DOMINANCE_H_

#include "geom/point.h"
#include "geom/rect.h"

namespace ripple {

/// Pareto dominance with min-is-better semantics on every attribute,
/// matching the paper's Section 5 convention ("lower values are better").
///
/// `a` dominates `b` iff a <= b componentwise and a < b in at least one
/// component.
bool Dominates(const Point& a, const Point& b);

/// True when point `s` dominates *every* point of the rectangle `r`,
/// i.e. s dominates the rect's lower corner (Algorithm 14's region test:
/// a region is prunable when some skyline point dominates all tuples it
/// could possibly contain).
bool DominatesRect(const Point& s, const Rect& r);

/// True when *some* point of `r` could dominate `p` — equivalently, the
/// rect's lower corner dominates `p`. Used to decide whether a region can
/// still contribute to the skyline given current results.
bool RectMayDominate(const Rect& r, const Point& p);

}  // namespace ripple

#endif  // RIPPLE_GEOM_DOMINANCE_H_
