#include "geom/zorder.h"

#include <algorithm>
#include <cmath>

namespace ripple {

ZOrder::ZOrder(int dims, const Rect& domain, int bits_per_dim)
    : dims_(dims), domain_(domain) {
  RIPPLE_CHECK(dims >= 1 && dims <= kMaxDims);
  RIPPLE_CHECK(domain.dims() == dims);
  bits_per_dim_ = bits_per_dim > 0 ? bits_per_dim : 62 / dims;
  RIPPLE_CHECK(bits_per_dim_ >= 1 && dims_ * bits_per_dim_ <= 62);
}

uint64_t ZOrder::Encode(const Point& p) const {
  RIPPLE_DCHECK(p.dims() == dims_);
  const uint64_t cells = uint64_t{1} << bits_per_dim_;
  uint64_t grid[kMaxDims];
  for (int d = 0; d < dims_; ++d) {
    const double span = domain_.hi()[d] - domain_.lo()[d];
    double frac = span > 0 ? (p[d] - domain_.lo()[d]) / span : 0.0;
    frac = std::clamp(frac, 0.0, 1.0);
    uint64_t g = static_cast<uint64_t>(frac * static_cast<double>(cells));
    grid[d] = std::min(g, cells - 1);
  }
  uint64_t key = 0;
  // Interleave most significant bits first, dimension-major round robin.
  for (int b = bits_per_dim_ - 1; b >= 0; --b) {
    for (int d = 0; d < dims_; ++d) {
      key = (key << 1) | ((grid[d] >> b) & 1u);
    }
  }
  return key;
}

Rect ZOrder::DecodeCell(uint64_t key) const {
  return PrefixCell(key << (64 - total_bits()), total_bits());
}

Point ZOrder::DecodeCenter(uint64_t key) const {
  return DecodeCell(key).Center();
}

Rect ZOrder::PrefixCell(uint64_t prefix, int prefix_bits) const {
  RIPPLE_CHECK(prefix_bits >= 0 && prefix_bits <= total_bits());
  Point lo = domain_.lo();
  Point hi = domain_.hi();
  for (int i = 0; i < prefix_bits; ++i) {
    const int d = i % dims_;
    const bool bit = (prefix >> (63 - i)) & 1u;
    const double mid = 0.5 * (lo[d] + hi[d]);
    if (bit) {
      lo[d] = mid;
    } else {
      hi[d] = mid;
    }
  }
  return Rect(lo, hi);
}

void ZOrder::DecomposeRec(uint64_t node_lo, int level, uint64_t lo,
                          uint64_t hi, std::vector<Rect>* out) const {
  const int total = total_bits();
  const uint64_t node_size = uint64_t{1} << (total - level);
  const uint64_t node_hi = node_lo + node_size - 1;
  if (node_hi < lo || node_lo > hi) return;
  if (lo <= node_lo && node_hi <= hi) {
    out->push_back(PrefixCell(node_lo << (64 - total), level));
    return;
  }
  RIPPLE_DCHECK(level < total);
  const uint64_t half = node_size >> 1;
  DecomposeRec(node_lo, level + 1, lo, hi, out);
  DecomposeRec(node_lo + half, level + 1, lo, hi, out);
}

std::vector<Rect> ZOrder::DecomposeInterval(uint64_t lo, uint64_t hi) const {
  std::vector<Rect> out;
  if (lo > hi) return out;
  hi = std::min(hi, key_space_size() - 1);
  DecomposeRec(0, 0, lo, hi, &out);
  return out;
}

}  // namespace ripple
