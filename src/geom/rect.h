#ifndef RIPPLE_GEOM_RECT_H_
#define RIPPLE_GEOM_RECT_H_

#include <string>

#include "geom/point.h"

namespace ripple {

/// An axis-aligned hyper-rectangle [lo, hi] in a d-dimensional domain.
///
/// Rects represent peer zones, MIDAS sibling-subtree regions and RIPPLE
/// restriction areas. Intervals are treated as closed on both ends for
/// geometric bound computations; zone ownership uses half-open semantics
/// via ContainsHalfOpen so that zones partition the domain exactly.
class Rect {
 public:
  Rect() = default;

  /// Requires lo.dims() == hi.dims() and lo <= hi componentwise.
  Rect(const Point& lo, const Point& hi);

  /// The unit hyper-cube [0,1]^d, the paper's default domain.
  static Rect Unit(int dims);

  int dims() const { return lo_.dims(); }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  /// Closed-interval membership test.
  bool Contains(const Point& p) const;

  /// Half-open membership: lo <= p < hi, except that the upper face is
  /// inclusive along dimensions where hi equals the domain boundary given
  /// by `domain`. Zones tested this way tile the domain with no overlap.
  bool ContainsHalfOpen(const Point& p, const Rect& domain) const;

  /// True when the closed rectangles share at least one point.
  bool Intersects(const Rect& other) const;

  /// True when `other` lies entirely inside *this (closed semantics).
  bool Covers(const Rect& other) const;

  /// The intersection rectangle; valid only when Intersects(other).
  Rect Intersection(const Rect& other) const;

  /// True when some edge has zero length, i.e. the rect has no volume.
  bool Degenerate() const;

  /// Product of edge lengths.
  double Volume() const;

  /// Center point.
  Point Center() const;

  /// Splits into (lower, upper) halves at `value` along `dim`.
  /// Requires lo()[dim] <= value <= hi()[dim].
  std::pair<Rect, Rect> Split(int dim, double value) const;

  /// Minimum distance from `p` to any point of the rect (0 when inside).
  double MinDist(const Point& p, Norm norm) const;

  /// Maximum distance from `p` to any point of the rect.
  double MaxDist(const Point& p, Norm norm) const;

  /// The corner of the rect closest to / farthest from `p`.
  Point ClosestPointTo(const Point& p) const;

  /// "[lo .. hi]".
  std::string ToString() const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }
  friend bool operator!=(const Rect& a, const Rect& b) { return !(a == b); }

 private:
  Point lo_;
  Point hi_;
};

/// Uniform "iterate the rectangles of an area" protocol used by query
/// policies to compute bounds over overlay regions. A Rect is its own
/// single-rectangle area; composite areas (e.g. Chord arcs) provide their
/// own overload decomposing into rectangles.
template <typename F>
void ForEachRect(const Rect& area, F&& fn) {
  fn(area);
}

}  // namespace ripple

#endif  // RIPPLE_GEOM_RECT_H_
