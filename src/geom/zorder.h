#ifndef RIPPLE_GEOM_ZORDER_H_
#define RIPPLE_GEOM_ZORDER_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace ripple {

/// Z-order (Morton) space-filling curve over a d-dimensional domain.
///
/// SSP over BATON maps multi-dimensional keys onto a one-dimensional key
/// space with a Z-curve (paper, Section 2.2); our Chord instantiation of
/// generic RIPPLE uses the same mapping. Bits are interleaved
/// round-robin across dimensions, most significant first, with
/// bits_per_dim resolution per axis; the total key width is
/// dims * bits_per_dim <= 62 bits.
class ZOrder {
 public:
  /// Requires 1 <= dims <= kMaxDims; bits_per_dim defaults to the largest
  /// resolution that keeps the key in 62 bits.
  explicit ZOrder(int dims, const Rect& domain, int bits_per_dim = 0);

  int dims() const { return dims_; }
  int bits_per_dim() const { return bits_per_dim_; }
  int total_bits() const { return dims_ * bits_per_dim_; }
  /// One past the largest key: 2^total_bits.
  uint64_t key_space_size() const { return uint64_t{1} << total_bits(); }
  const Rect& domain() const { return domain_; }

  /// Maps a point of the domain to its Z-order key.
  uint64_t Encode(const Point& p) const;

  /// The center of the grid cell addressed by `key`.
  Point DecodeCenter(uint64_t key) const;

  /// The grid cell rectangle addressed by `key`.
  Rect DecodeCell(uint64_t key) const;

  /// Decomposes the key interval [lo, hi] (inclusive) into the maximal
  /// aligned Z-cells it covers, returned as their rectangles. The result is
  /// an exact cover: its union contains precisely the points whose keys fall
  /// in the interval. At most 2 * total_bits rectangles are produced.
  std::vector<Rect> DecomposeInterval(uint64_t lo, uint64_t hi) const;

  /// The rectangle of the aligned trie cell whose key prefix is the top
  /// `prefix_bits` bits of `prefix` (prefix_bits <= total_bits).
  Rect PrefixCell(uint64_t prefix, int prefix_bits) const;

 private:
  void DecomposeRec(uint64_t node_lo, int level, uint64_t lo, uint64_t hi,
                    std::vector<Rect>* out) const;

  int dims_;
  int bits_per_dim_;
  Rect domain_;
};

}  // namespace ripple

#endif  // RIPPLE_GEOM_ZORDER_H_
