#ifndef RIPPLE_GEOM_POINT_H_
#define RIPPLE_GEOM_POINT_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "common/check.h"

namespace ripple {

/// Maximum dimensionality supported by the library. The paper evaluates
/// d = 2..10; fixed inline storage keeps tuples allocation-free.
inline constexpr int kMaxDims = 10;

/// A point in a d-dimensional domain, d <= kMaxDims. Value type with inline
/// storage; dimensionality is a runtime property checked on access.
class Point {
 public:
  /// A zero-dimensional point; usable only after SetDims or assignment.
  Point() = default;

  /// A point at the origin of a d-dimensional space.
  explicit Point(int dims) : dims_(static_cast<uint8_t>(dims)) {
    RIPPLE_CHECK(dims >= 0 && dims <= kMaxDims);
    coords_.fill(0.0);
  }

  /// Point{0.3, 0.7} style construction.
  Point(std::initializer_list<double> values) {
    RIPPLE_CHECK(values.size() <= static_cast<size_t>(kMaxDims));
    dims_ = static_cast<uint8_t>(values.size());
    int i = 0;
    for (double v : values) coords_[i++] = v;
  }

  int dims() const { return dims_; }

  double operator[](int i) const {
    RIPPLE_DCHECK(i >= 0 && i < dims_);
    return coords_[i];
  }
  double& operator[](int i) {
    RIPPLE_DCHECK(i >= 0 && i < dims_);
    return coords_[i];
  }

  /// Fills every coordinate with `value`.
  void Fill(double value) {
    for (int i = 0; i < dims_; ++i) coords_[i] = value;
  }

  /// "(x0, x1, ...)" with 6 significant digits.
  std::string ToString() const;

  friend bool operator==(const Point& a, const Point& b) {
    if (a.dims_ != b.dims_) return false;
    for (int i = 0; i < a.dims_; ++i) {
      if (a.coords_[i] != b.coords_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }

 private:
  std::array<double, kMaxDims> coords_{};
  uint8_t dims_ = 0;
};

/// Lp distances between equal-dimensional points.
double L1Distance(const Point& a, const Point& b);
double L2Distance(const Point& a, const Point& b);
double L2DistanceSquared(const Point& a, const Point& b);
double LInfDistance(const Point& a, const Point& b);

/// Distance norms selectable at runtime (the paper uses L1 for the
/// MIRFLICKR edge-histogram features and L2-style geometry elsewhere).
enum class Norm { kL1, kL2, kLInf };

/// Distance between points under the selected norm.
double Distance(const Point& a, const Point& b, Norm norm);

}  // namespace ripple

#endif  // RIPPLE_GEOM_POINT_H_
