#include "geom/dominance.h"

#include <algorithm>
#include <cstring>

#include "common/kernel_counters.h"

namespace ripple {

bool Dominates(const Point& a, const Point& b) {
  RIPPLE_DCHECK(a.dims() == b.dims());
  bool strictly_better_somewhere = false;
  for (int i = 0; i < a.dims(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

bool DominatesRect(const Point& s, const Rect& r) {
  RIPPLE_DCHECK(s.dims() == r.dims());
  // s must be <= the rect's lower corner everywhere, and strictly less in at
  // least one dimension: then for any p in r, s <= lo <= p with strictness
  // carried through, so s dominates every point of the closed rect.
  bool strict = false;
  for (int i = 0; i < s.dims(); ++i) {
    if (s[i] > r.lo()[i]) return false;
    if (s[i] < r.lo()[i]) strict = true;
  }
  return strict;
}

bool RectMayDominate(const Rect& r, const Point& p) {
  RIPPLE_DCHECK(p.dims() == r.dims());
  // The most dominating candidate inside r is its lower corner.
  return Dominates(r.lo(), p);
}

bool AnyDominatesColumns(const double* const* cols, int dims, size_t m,
                         const Point& p) {
  RIPPLE_DCHECK(p.dims() == dims);
  constexpr size_t kBlock = 16;
  double pv[kMaxDims];
  for (int c = 0; c < dims; ++c) pv[c] = p[c];
  uint8_t le[kBlock];
  KernelCounters& kc = LocalKernelCounters();
  // Head block, row-at-a-time with short-circuit: callers keep their
  // candidate sets in ascending-coordinate-sum order, so the strongest
  // dominators sit in the first rows and most dominated probes die here
  // after a couple of comparisons. Counter accounting matches the block
  // path (one possibly-partial block, head candidates examined).
  const size_t head = std::min(m, kBlock);
  kc.dominance_cmps += head;
  for (size_t i = 0; i < head; ++i) {
    bool le_all = true;
    bool lt_any = false;
    for (int c = 0; c < dims; ++c) {
      const double v = cols[c][i];
      if (v > pv[c]) {
        le_all = false;
        break;
      }
      lt_any |= v < pv[c];
    }
    if (le_all && lt_any) return true;
  }
  for (size_t base = head; base < m; base += kBlock) {
    const size_t n = std::min(kBlock, m - base);
    kc.dominance_cmps += n;
    // Narrow the "every coordinate <= p" mask one column at a time; the
    // inner loop is branch-free and auto-vectorizable. Once no lane
    // survives the prefix, later columns cannot resurrect one.
    std::memset(le, 1, n);
    uint8_t any = 1;
    for (int c = 0; c < dims && any; ++c) {
      const double pc = pv[c];
      const double* col = cols[c] + base;
      any = 0;
      for (size_t i = 0; i < n; ++i) {
        le[i] &= static_cast<uint8_t>(col[i] <= pc);
        any |= le[i];
      }
    }
    if (!any) continue;
    // A survivor is <= p in every dimension, so it dominates p unless it
    // IS p coordinate-for-coordinate. Survivors are rare; resolving the
    // strictness scalar keeps the hot loop to one compare per lane-column.
    for (size_t i = 0; i < n; ++i) {
      if (!le[i]) continue;
      for (int c = 0; c < dims; ++c) {
        if (cols[c][base + i] < pv[c]) return true;
      }
    }
  }
  return false;
}

}  // namespace ripple
