#include "geom/dominance.h"

namespace ripple {

bool Dominates(const Point& a, const Point& b) {
  RIPPLE_DCHECK(a.dims() == b.dims());
  bool strictly_better_somewhere = false;
  for (int i = 0; i < a.dims(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

bool DominatesRect(const Point& s, const Rect& r) {
  RIPPLE_DCHECK(s.dims() == r.dims());
  // s must be <= the rect's lower corner everywhere, and strictly less in at
  // least one dimension: then for any p in r, s <= lo <= p with strictness
  // carried through, so s dominates every point of the closed rect.
  bool strict = false;
  for (int i = 0; i < s.dims(); ++i) {
    if (s[i] > r.lo()[i]) return false;
    if (s[i] < r.lo()[i]) strict = true;
  }
  return strict;
}

bool RectMayDominate(const Rect& r, const Point& p) {
  RIPPLE_DCHECK(p.dims() == r.dims());
  // The most dominating candidate inside r is its lower corner.
  return Dominates(r.lo(), p);
}

}  // namespace ripple
