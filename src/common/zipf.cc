#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ripple {

ZipfSampler::ZipfSampler(uint64_t n, double skew) : n_(n), skew_(skew) {
  RIPPLE_CHECK(n > 0);
  RIPPLE_CHECK(skew >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(uint64_t rank) const {
  RIPPLE_CHECK(rank < n_);
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace ripple
