#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace ripple {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t n) {
  RIPPLE_CHECK(n > 0);
  // Rejection sampling over the largest multiple of n below 2^64.
  const uint64_t threshold = (0 - n) % n;  // (2^64 - n) mod n
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  RIPPLE_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (span == UINT64_MAX) return static_cast<int64_t>(NextU64());
  return lo + static_cast<int64_t>(UniformU64(span + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double rate) {
  RIPPLE_CHECK(rate > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace ripple
