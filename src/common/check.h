#ifndef RIPPLE_COMMON_CHECK_H_
#define RIPPLE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ripple::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "RIPPLE_CHECK failed at %s:%d: %s\n", file, line,
               condition);
  std::abort();
}

}  // namespace ripple::internal_check

/// Invariant check that is active in all build types. Use for conditions
/// whose violation means the process state is corrupt; there is no sensible
/// recovery, so we abort with a location message.
#define RIPPLE_CHECK(condition)                                         \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::ripple::internal_check::CheckFailed(__FILE__, __LINE__,         \
                                            #condition);                \
    }                                                                   \
  } while (0)

/// Debug-only variant of RIPPLE_CHECK for hot paths.
#ifndef NDEBUG
#define RIPPLE_DCHECK(condition) RIPPLE_CHECK(condition)
#else
#define RIPPLE_DCHECK(condition) \
  do {                           \
  } while (0)
#endif

#endif  // RIPPLE_COMMON_CHECK_H_
