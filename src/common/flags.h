#ifndef RIPPLE_COMMON_FLAGS_H_
#define RIPPLE_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ripple {

/// A small command-line flag parser for the tools and benches:
/// `--name=value` or `--name value`; bools also accept bare `--name` and
/// `--noname`. Unknown flags and malformed values produce errors rather
/// than being ignored. Not a general-purpose library — just enough for
/// self-contained binaries with helpful `--help` output.
class FlagParser {
 public:
  explicit FlagParser(std::string program_description)
      : description_(std::move(program_description)) {}

  /// Registers a flag bound to `*out`, which also holds the default.
  void AddString(const std::string& name, const std::string& help,
                 std::string* out);
  void AddInt(const std::string& name, const std::string& help,
              int64_t* out);
  void AddDouble(const std::string& name, const std::string& help,
                 double* out);
  void AddBool(const std::string& name, const std::string& help, bool* out);

  /// Parses argv; on success positional (non-flag) arguments are available
  /// via positional(). `--help` produces a kFailedPrecondition status whose
  /// message is the usage text.
  Status Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// The usage text.
  std::string Help() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    std::string name;
    std::string help;
    Type type;
    void* target;
    std::string default_repr;
  };

  Status Assign(const Flag& flag, const std::string& value);
  const Flag* Find(const std::string& name) const;

  std::string description_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ripple

#endif  // RIPPLE_COMMON_FLAGS_H_
