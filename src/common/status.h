#ifndef RIPPLE_COMMON_STATUS_H_
#define RIPPLE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace ripple {

/// Error codes used throughout the library. The library does not throw
/// exceptions; fallible operations return a Status (or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success/error value in the style of rocksdb::Status /
/// absl::Status. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define RIPPLE_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::ripple::Status _status = (expr);            \
    if (!_status.ok()) return _status;            \
  } while (0)

}  // namespace ripple

#endif  // RIPPLE_COMMON_STATUS_H_
