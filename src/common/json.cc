#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ripple {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!IsObject()) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue* JsonValue::Find(const std::string& key) {
  return const_cast<JsonValue*>(
      static_cast<const JsonValue*>(this)->Find(key));
}

const JsonValue* JsonValue::FindPath(const std::string& dotted_path) const {
  const JsonValue* cur = this;
  size_t start = 0;
  while (cur != nullptr && start <= dotted_path.size()) {
    const size_t dot = dotted_path.find('.', start);
    const std::string key =
        dotted_path.substr(start, dot == std::string::npos ? std::string::npos
                                                           : dot - start);
    cur = cur->Find(key);
    if (dot == std::string::npos) return cur;
    start = dot + 1;
  }
  return cur;
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type = Type::kBool;
  v.bool_value = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double n) {
  JsonValue v;
  v.type = Type::kNumber;
  v.number = n;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type = Type::kString;
  v.string = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.type = Type::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.type = Type::kObject;
  return v;
}

JsonValue& JsonValue::Add(const std::string& key, JsonValue v) {
  object.emplace_back(key, std::move(v));
  return object.back().second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    Status st = Value(&root, /*depth=*/0);
    if (!st.ok()) return st;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return Object(out, depth);
      case '[':
        return Array(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return String(&out->string);
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = JsonValue::MakeBool(true);
          return Status::OK();
        }
        return Error("bad literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = JsonValue::MakeBool(false);
          return Status::OK();
        }
        return Error("bad literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = JsonValue::MakeNull();
          return Status::OK();
        }
        return Error("bad literal");
      default:
        return Number(out);
    }
  }

  Status Object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::MakeObject();
    SkipSpace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipSpace();
      std::string key;
      Status st = String(&key);
      if (!st.ok()) return st;
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' in object");
      JsonValue member;
      st = Value(&member, depth + 1);
      if (!st.ok()) return st;
      out->object.emplace_back(std::move(key), std::move(member));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status Array(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::MakeArray();
    SkipSpace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue element;
      Status st = Value(&element, depth + 1);
      if (!st.ok()) return st;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status String(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are beyond
          // what our own artifacts ever contain; encode them raw).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status Number(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number");
    *out = JsonValue::MakeNumber(v);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void DumpTo(const JsonValue& v, std::string* out) {
  switch (v.type) {
    case JsonValue::Type::kNull:
      *out += "null";
      return;
    case JsonValue::Type::kBool:
      *out += v.bool_value ? "true" : "false";
      return;
    case JsonValue::Type::kNumber: {
      double d = v.number;
      if (!std::isfinite(d)) d = d > 0 ? 1e308 : -1e308;
      char buf[40];
      if (d == std::floor(d) && std::fabs(d) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", d);
      } else {
        std::snprintf(buf, sizeof(buf), "%.10g", d);
      }
      *out += buf;
      return;
    }
    case JsonValue::Type::kString:
      *out += '"';
      *out += JsonEscape(v.string);
      *out += '"';
      return;
    case JsonValue::Type::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& e : v.array) {
        if (!first) *out += ',';
        first = false;
        DumpTo(e, out);
      }
      *out += ']';
      return;
    }
    case JsonValue::Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, member] : v.object) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += JsonEscape(k);
        *out += "\":";
        DumpTo(member, out);
      }
      *out += '}';
      return;
    }
  }
}

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

std::string DumpJson(const JsonValue& value) {
  std::string out;
  DumpTo(value, &out);
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace ripple
