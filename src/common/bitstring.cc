#include "common/bitstring.h"

#include <algorithm>

#include "common/check.h"

namespace ripple {

BitString::BitString(const std::string& bits) {
  for (char c : bits) {
    RIPPLE_CHECK(c == '0' || c == '1');
    Append(c == '1');
  }
}

BitString BitString::FromUint(uint64_t value, int length) {
  RIPPLE_CHECK(length >= 0 && length <= 64);
  BitString out;
  for (int i = length - 1; i >= 0; --i) {
    out.Append((value >> i) & 1u);
  }
  return out;
}

bool BitString::bit(int i) const {
  RIPPLE_DCHECK(i >= 0 && i < size_);
  return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1u;
}

BitString& BitString::Append(bool b) {
  const int word = size_ / kBitsPerWord;
  const int offset = size_ % kBitsPerWord;
  if (offset == 0) words_.push_back(0);
  if (b) words_[word] |= (uint64_t{1} << offset);
  ++size_;
  return *this;
}

BitString BitString::Child(bool b) const {
  BitString out = *this;
  out.Append(b);
  return out;
}

BitString BitString::Parent() const {
  RIPPLE_CHECK(size_ > 0);
  return Prefix(size_ - 1);
}

BitString BitString::Sibling() const {
  RIPPLE_CHECK(size_ > 0);
  BitString out = Prefix(size_ - 1);
  out.Append(!bit(size_ - 1));
  return out;
}

BitString BitString::Prefix(int n) const {
  RIPPLE_CHECK(n >= 0 && n <= size_);
  BitString out;
  out.size_ = n;
  const int words = (n + kBitsPerWord - 1) / kBitsPerWord;
  out.words_.assign(words_.begin(), words_.begin() + words);
  const int tail = n % kBitsPerWord;
  if (words > 0 && tail != 0) {
    out.words_.back() &= (uint64_t{1} << tail) - 1;
  }
  return out;
}

bool BitString::IsPrefixOf(const BitString& other) const {
  if (size_ > other.size_) return false;
  return CommonPrefixLength(other) == size_;
}

int BitString::CommonPrefixLength(const BitString& other) const {
  const int limit = std::min(size_, other.size_);
  int i = 0;
  // Word-at-a-time comparison for speed on deep trees.
  const int full_words = limit / kBitsPerWord;
  int w = 0;
  for (; w < full_words; ++w) {
    if (words_[w] != other.words_[w]) break;
    i += kBitsPerWord;
  }
  while (i < limit && bit(i) == other.bit(i)) ++i;
  return i;
}

std::string BitString::ToString() const {
  if (size_ == 0) return "<root>";
  std::string out;
  out.reserve(size_);
  for (int i = 0; i < size_; ++i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

bool operator==(const BitString& a, const BitString& b) {
  return a.size_ == b.size_ && a.CommonPrefixLength(b) == a.size_;
}

bool operator<(const BitString& a, const BitString& b) {
  const int common = a.CommonPrefixLength(b);
  if (common == a.size() && common == b.size()) return false;  // equal
  if (common == a.size()) return true;   // a is a proper prefix of b
  if (common == b.size()) return false;  // b is a proper prefix of a
  return !a.bit(common) && b.bit(common);
}

}  // namespace ripple
