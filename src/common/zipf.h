#ifndef RIPPLE_COMMON_ZIPF_H_
#define RIPPLE_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ripple {

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^skew.
///
/// Used by the SYNTH dataset generator: cluster centers are drawn from a
/// Zipf distribution with skew sigma = 0.1, following the paper's setup.
/// Implementation: precomputed CDF with binary search; O(n) memory,
/// O(log n) per sample, exact.
class ZipfSampler {
 public:
  /// Requires n > 0 and skew >= 0 (skew = 0 degenerates to uniform).
  ZipfSampler(uint64_t n, double skew);

  /// Draws a rank in [0, n).
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double skew() const { return skew_; }

  /// Probability mass of the given rank.
  double Pmf(uint64_t rank) const;

 private:
  uint64_t n_;
  double skew_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i), cdf_.back() == 1.
};

}  // namespace ripple

#endif  // RIPPLE_COMMON_ZIPF_H_
