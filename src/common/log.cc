#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdio>

#include "common/env.h"

namespace ripple {
namespace {

/// -1 = not yet initialized from the environment.
std::atomic<int> g_level{-1};

int LoadLevelFromEnv() {
  const std::string name = GetEnvString("RIPPLE_LOG_LEVEL", "warn");
  return static_cast<int>(ParseLogLevel(name, LogLevel::kWarn));
}

}  // namespace

LogLevel ParseLogLevel(const std::string& name, LogLevel fallback) {
  if (name == "error" || name == "e") return LogLevel::kError;
  if (name == "warn" || name == "warning" || name == "w") {
    return LogLevel::kWarn;
  }
  if (name == "info" || name == "i") return LogLevel::kInfo;
  if (name == "debug" || name == "d") return LogLevel::kDebug;
  if (name == "trace" || name == "t") return LogLevel::kTrace;
  return fallback;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
  }
  return "?";
}

LogLevel GlobalLogLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = LoadLevelFromEnv();
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void SetGlobalLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(GlobalLogLevel());
}

void LogMessage(LogLevel level, const char* fmt, ...) {
  char buf[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[ripple %c] %s\n",
               static_cast<char>(std::toupper(LogLevelName(level)[0])), buf);
}

}  // namespace ripple
