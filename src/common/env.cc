#include "common/env.h"

#include <cstdlib>

namespace ripple {

int64_t GetEnvInt(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int64_t>(value);
}

double GetEnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  return std::string(raw);
}

}  // namespace ripple
