#ifndef RIPPLE_COMMON_KERNEL_COUNTERS_H_
#define RIPPLE_COMMON_KERNEL_COUNTERS_H_

#include <cstdint>

namespace ripple {

/// Machine-independent work tallies for the per-peer kernels. Unlike wall
/// clock these are exact functions of (data, query, k): the same seeded
/// bench run produces the same counts on any machine, so they gate in
/// BENCH_figs.json with zero tolerance where wall clock can only inform.
///
/// The counters are thread-local and non-atomic — each kernel invocation
/// runs on one thread; cross-thread aggregation happens only at flush
/// time (obs::FlushKernelCounters folds them into the global registry).
struct KernelCounters {
  /// Rows visited by scan loops: flat top-k/collect scans, k-d leaf
  /// ranges, skyline candidate passes.
  uint64_t tuples_scanned = 0;
  /// Candidate-vs-skyline pair tests performed by the column-wise
  /// dominance kernel (block granularity: every row of a tested block
  /// counts, early-out happens between blocks).
  uint64_t dominance_cmps = 0;
  /// Successful insertions into a BoundedTopK (entries that entered the
  /// heap, whether or not they were later displaced).
  uint64_t heap_pushes = 0;
};

inline KernelCounters& LocalKernelCounters() {
  thread_local KernelCounters counters;
  return counters;
}

inline void ResetKernelCounters() { LocalKernelCounters() = KernelCounters{}; }

}  // namespace ripple

#endif  // RIPPLE_COMMON_KERNEL_COUNTERS_H_
