#ifndef RIPPLE_COMMON_RESULT_H_
#define RIPPLE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ripple {

/// Holds either a value of type T or an error Status, in the style of
/// arrow::Result / absl::StatusOr. Accessing the value of an errored
/// Result is a programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (the error path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define RIPPLE_ASSIGN_OR_RETURN(lhs, expr)        \
  do {                                            \
    auto _result = (expr);                        \
    if (!_result.ok()) return _result.status();   \
    lhs = std::move(_result).value();             \
  } while (0)

}  // namespace ripple

#endif  // RIPPLE_COMMON_RESULT_H_
