#ifndef RIPPLE_COMMON_JSON_H_
#define RIPPLE_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace ripple {

/// A parsed JSON document node. Deliberately minimal — just enough for
/// the repo's own machine-readable artifacts (BENCH_*.json merging, the
/// exporter round-trip tests) without an external dependency. Objects
/// keep insertion order so Dump() round-trips deterministically.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return type == Type::kNull; }
  bool IsBool() const { return type == Type::kBool; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsObject() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  JsonValue* Find(const std::string& key);

  /// `Find` through a dotted path ("meta.seed"); nullptr when any hop is
  /// missing.
  const JsonValue* FindPath(const std::string& dotted_path) const;

  /// Convenience accessors with fallbacks (wrong type -> fallback).
  double NumberOr(double fallback) const {
    return IsNumber() ? number : fallback;
  }
  std::string StringOr(const std::string& fallback) const {
    return IsString() ? string : fallback;
  }

  static JsonValue MakeNull() { return JsonValue{}; }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  /// Appends (object) — no duplicate-key checking, matching the parser.
  JsonValue& Add(const std::string& key, JsonValue v);
};

/// Parses a complete JSON document (trailing garbage is an error).
/// Accepts the interchange subset: no comments, no trailing commas.
Result<JsonValue> ParseJson(const std::string& text);

/// Compact single-line serialization; numbers use %.10g (integers print
/// without a decimal point). Non-finite numbers clamp to +/-1e308 like
/// the exporters in obs/export.cc.
std::string DumpJson(const JsonValue& value);

/// JSON string escaping for ", \ and control characters (the exporters'
/// names are tame, but bench case ids may contain anything).
std::string JsonEscape(const std::string& s);

}  // namespace ripple

#endif  // RIPPLE_COMMON_JSON_H_
