#ifndef RIPPLE_COMMON_RNG_H_
#define RIPPLE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ripple {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All randomness in the library flows through this class so that overlay
/// construction, datasets and query workloads are exactly reproducible from
/// a single seed. Not cryptographically secure; not thread-safe (use one
/// instance per thread).
class Rng {
 public:
  /// Seeds the generator; the seed is expanded with splitmix64 so that
  /// small consecutive seeds produce unrelated streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, n). Requires n > 0. Uses rejection to avoid modulo bias.
  uint64_t UniformU64(uint64_t n);

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal deviate (Marsaglia polar method).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential deviate with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformU64(i + 1));
      using std::swap;
      swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator; useful to give each peer or
  /// each dataset its own stream while keeping global determinism.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ripple

#endif  // RIPPLE_COMMON_RNG_H_
