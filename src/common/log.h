#ifndef RIPPLE_COMMON_LOG_H_
#define RIPPLE_COMMON_LOG_H_

#include <string>

namespace ripple {

/// Leveled diagnostic logging to stderr.
///
/// The level is read once from the RIPPLE_LOG_LEVEL environment variable
/// (error | warn | info | debug | trace; default warn) and can be
/// overridden programmatically (the CLI's --log-level flag does). Logging
/// never writes to stdout, so tool and bench output stays byte-identical
/// whatever the level.
enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

/// Parses a level name; returns `fallback` for unknown strings. Accepts
/// the canonical names and single-letter abbreviations (e/w/i/d/t).
LogLevel ParseLogLevel(const std::string& name, LogLevel fallback);

/// Canonical name of a level ("error", "warn", ...).
const char* LogLevelName(LogLevel level);

/// The active level. Initialized lazily from RIPPLE_LOG_LEVEL.
LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

/// True when a message at `level` would be emitted. Callers building
/// expensive log arguments should gate on this (the RIPPLE_LOG macro
/// does).
bool LogEnabled(LogLevel level);

/// Emits one formatted line to stderr: "[ripple <L>] <message>". Prefer
/// the RIPPLE_LOG macro, which skips argument evaluation when disabled.
void LogMessage(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace ripple

/// RIPPLE_LOG(kInfo, "joined peer %u at depth %d", id, depth);
#define RIPPLE_LOG(level, ...)                          \
  do {                                                  \
    if (::ripple::LogEnabled(::ripple::LogLevel::level)) \
      ::ripple::LogMessage(::ripple::LogLevel::level, __VA_ARGS__); \
  } while (0)

#endif  // RIPPLE_COMMON_LOG_H_
