#ifndef RIPPLE_COMMON_ARENA_H_
#define RIPPLE_COMMON_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/check.h"

namespace ripple {

/// A bump allocator for per-query scratch buffers (score blocks, skyline
/// columns, median copies). The per-peer kernels run thousands of times
/// per distributed query; carving their transient arrays out of a
/// reusable arena keeps the hot loop off the general-purpose allocator.
///
/// Blocks never move once allocated, so pointers handed out stay valid
/// until the position they were allocated at is rewound. Typical use is
/// an ArenaScope per kernel invocation (allocate freely, release on scope
/// exit) over the thread-local PerQueryArena(), which the engines Reset()
/// at the start of every query so capacity is reused run over run.
class Arena {
 public:
  explicit Arena(size_t first_block_bytes = size_t{1} << 16)
      : first_block_bytes_(first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A rewind position: the block index plus the bytes used within it.
  struct Mark {
    size_t block = 0;
    size_t used = 0;
  };

  void* Allocate(size_t bytes, size_t align) {
    RIPPLE_DCHECK(align > 0 && (align & (align - 1)) == 0);
    while (true) {
      if (block_ < blocks_.size()) {
        const size_t aligned = (used_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= blocks_[block_].size) {
          used_ = aligned + bytes;
          return blocks_[block_].data.get() + aligned;
        }
        // Current block exhausted: advance (an earlier Rewind may have
        // left later blocks ready for reuse).
        ++block_;
        used_ = 0;
        continue;
      }
      AppendBlock(bytes + align);
    }
  }

  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  Mark GetMark() const { return {block_, used_}; }

  /// Releases everything allocated after `m`; block capacity is kept.
  void Rewind(Mark m) {
    RIPPLE_DCHECK(m.block < blocks_.size() ||
                  (m.block == blocks_.size() && m.used == 0) ||
                  blocks_.empty());
    block_ = m.block;
    used_ = m.used;
  }

  /// Releases every allocation; block capacity is kept for reuse.
  void Reset() {
    block_ = 0;
    used_ = 0;
  }

  /// Total bytes held across all blocks (capacity, not live bytes).
  size_t TotalCapacity() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    struct Free {
      void operator()(char* p) const { ::operator delete(p); }
    };
    explicit Block(size_t n)
        : data(static_cast<char*>(::operator new(n))), size(n) {}
    std::unique_ptr<char, Free> data;
    size_t size;
  };

  void AppendBlock(size_t at_least) {
    size_t n = blocks_.empty() ? first_block_bytes_ : blocks_.back().size * 2;
    if (n < at_least) n = at_least;
    blocks_.emplace_back(n);
    block_ = blocks_.size() - 1;
    used_ = 0;
  }

  std::vector<Block> blocks_;
  size_t block_ = 0;  // current block index (== blocks_.size() when empty)
  size_t used_ = 0;   // bytes consumed in the current block
  size_t first_block_bytes_;
};

/// RAII mark/rewind: everything the guarded code allocates from the arena
/// is released when the scope exits.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena) : arena_(arena), mark_(arena->GetMark()) {}
  ~ArenaScope() { arena_->Rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

/// The calling thread's query-scratch arena. The engines Reset() it at
/// the start of every Run so one query's peak footprint is the steady
/// state, not the sum over all queries.
inline Arena& PerQueryArena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace ripple

#endif  // RIPPLE_COMMON_ARENA_H_
