#ifndef RIPPLE_COMMON_ENV_H_
#define RIPPLE_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace ripple {

/// Reads an integer environment variable, returning `fallback` when unset
/// or unparsable. Used by the bench harness for scale knobs such as
/// RIPPLE_BENCH_SCALE.
int64_t GetEnvInt(const char* name, int64_t fallback);

/// Reads a floating-point environment variable with fallback.
double GetEnvDouble(const char* name, double fallback);

/// Reads a string environment variable with fallback.
std::string GetEnvString(const char* name, const std::string& fallback);

}  // namespace ripple

#endif  // RIPPLE_COMMON_ENV_H_
