#include "common/flags.h"

#include <cstdio>
#include <cstdlib>

namespace ripple {

namespace {

std::string BoolRepr(bool v) { return v ? "true" : "false"; }

}  // namespace

void FlagParser::AddString(const std::string& name, const std::string& help,
                           std::string* out) {
  flags_.push_back(Flag{name, help, Type::kString, out, *out});
}

void FlagParser::AddInt(const std::string& name, const std::string& help,
                        int64_t* out) {
  flags_.push_back(Flag{name, help, Type::kInt, out, std::to_string(*out)});
}

void FlagParser::AddDouble(const std::string& name, const std::string& help,
                           double* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", *out);
  flags_.push_back(Flag{name, help, Type::kDouble, out, buf});
}

void FlagParser::AddBool(const std::string& name, const std::string& help,
                         bool* out) {
  flags_.push_back(Flag{name, help, Type::kBool, out, BoolRepr(*out)});
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status FlagParser::Assign(const Flag& flag, const std::string& value) {
  switch (flag.type) {
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
    case Type::kInt: {
      char* end = nullptr;
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + flag.name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      *static_cast<int64_t*>(flag.target) = v;
      return Status::OK();
    }
    case Type::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + flag.name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      *static_cast<double*>(flag.target) = v;
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("--" + flag.name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled flag type");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    if (arg == "help") return Status::FailedPrecondition(Help());
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const Flag* flag = Find(arg);
    if (flag == nullptr && arg.rfind("no", 0) == 0) {
      // --noflag for bools.
      const Flag* inner = Find(arg.substr(2));
      if (inner != nullptr && inner->type == Type::kBool && !has_value) {
        *static_cast<bool*>(inner->target) = false;
        continue;
      }
    }
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + arg + "\n" + Help());
    }
    if (!has_value) {
      if (flag->type == Type::kBool) {
        *static_cast<bool*>(flag->target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("--" + arg + " needs a value");
      }
      value = argv[++i];
    }
    RIPPLE_RETURN_IF_ERROR(Assign(*flag, value));
  }
  return Status::OK();
}

std::string FlagParser::Help() const {
  std::string out = description_ + "\n\nFlags:\n";
  for (const Flag& f : flags_) {
    out += "  --" + f.name;
    out += "  (default " + f.default_repr + ")\n      " + f.help + "\n";
  }
  return out;
}

}  // namespace ripple
