#ifndef RIPPLE_COMMON_BITSTRING_H_
#define RIPPLE_COMMON_BITSTRING_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ripple {

/// A variable-length string of bits, used for MIDAS virtual k-d tree node
/// identifiers: the root has the empty id; the left (resp. right) child of a
/// node has the parent's id with 0 (resp. 1) appended (paper, Section 2.3).
///
/// Supports arbitrary lengths (deep, skewed overlays exceed 64 bits), cheap
/// append/truncate at the tail, prefix tests, and lexicographic comparison.
class BitString {
 public:
  /// The empty (root) id.
  BitString() = default;

  /// Builds from a string of '0'/'1' characters, e.g. BitString("0110").
  explicit BitString(const std::string& bits);

  /// Builds from the low `length` bits of `value`, most significant first.
  static BitString FromUint(uint64_t value, int length);

  /// Number of bits (== tree depth of the identified node).
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The i-th bit, 0-indexed from the root end. Requires 0 <= i < size().
  bool bit(int i) const;

  /// Appends one bit; returns *this for chaining.
  BitString& Append(bool b);

  /// Returns a copy with one bit appended (child id in the virtual tree).
  BitString Child(bool b) const;

  /// Returns the id of the parent node (one bit shorter). Requires !empty().
  BitString Parent() const;

  /// Returns the id of the sibling node (last bit flipped). Requires !empty().
  BitString Sibling() const;

  /// Returns the first `n` bits. Requires 0 <= n <= size().
  BitString Prefix(int n) const;

  /// True when *this is a (non-strict) prefix of `other`.
  bool IsPrefixOf(const BitString& other) const;

  /// Length of the longest common prefix with `other`.
  int CommonPrefixLength(const BitString& other) const;

  /// "0110..." representation; the empty id renders as "<root>".
  std::string ToString() const;

  friend bool operator==(const BitString& a, const BitString& b);
  friend bool operator!=(const BitString& a, const BitString& b) {
    return !(a == b);
  }
  /// Lexicographic order with shorter-prefix-first tie break.
  friend bool operator<(const BitString& a, const BitString& b);

 private:
  static constexpr int kBitsPerWord = 64;
  std::vector<uint64_t> words_;
  int size_ = 0;
};

}  // namespace ripple

#endif  // RIPPLE_COMMON_BITSTRING_H_
