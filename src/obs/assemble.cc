#include "obs/assemble.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <unordered_map>

namespace ripple::obs {

namespace {

// Key for matching a frame's send events against its recv events. The
// message id alone is not enough: a query and its response reuse ids in
// some engines' numbering, so the kind disambiguates.
struct MsgKey {
  uint64_t id;
  uint8_t kind;

  bool operator<(const MsgKey& o) const {
    return id != o.id ? id < o.id : kind < o.kind;
  }
};

// One span under reconstruction: where its begin/end events were seen
// (journal index, for clock offsets) and the events themselves.
struct PendingSpan {
  const JournalEvent* begin = nullptr;
  const JournalEvent* end = nullptr;
  size_t begin_journal = 0;
  size_t end_journal = 0;
};

}  // namespace

Result<AssembleReport> AssembleJournals(
    const std::vector<PeerJournal>& journals) {
  AssembleReport report;
  report.clock_offsets.assign(journals.size(), 0.0);

  // --- 1. Lamport clock alignment over matched send/recv pairs. -------
  // For every (msg id, kind) take the earliest send and earliest recv
  // (retransmissions and injected duplicates make later copies
  // ambiguous; the earliest pair is always causally ordered). Raise the
  // receiver journal's offset until recv >= send, to a fixpoint. On
  // journals that already share one clock every constraint holds at
  // offset 0 and timestamps pass through bit-identical.
  struct SendRecv {
    double send_t = 0.0, recv_t = 0.0;
    size_t send_j = 0, recv_j = 0;
    bool has_send = false, has_recv = false;
  };
  std::map<MsgKey, SendRecv> pairs;
  for (size_t j = 0; j < journals.size(); ++j) {
    report.dropped += journals[j].dropped;
    for (const JournalEvent& e : journals[j].events) {
      if (e.kind == JournalEventKind::kCrash) report.crashes += 1;
      if (e.trace_id == 0) continue;
      if (e.kind == JournalEventKind::kFrameSend ||
          e.kind == JournalEventKind::kRetransmit) {
        SendRecv& sr = pairs[{e.msg_id, e.msg_kind}];
        if (!sr.has_send || e.sim_time < sr.send_t) {
          sr.send_t = e.sim_time;
          sr.send_j = j;
          sr.has_send = true;
        }
      } else if (e.kind == JournalEventKind::kFrameRecv) {
        SendRecv& sr = pairs[{e.msg_id, e.msg_kind}];
        if (!sr.has_recv || e.sim_time < sr.recv_t) {
          sr.recv_t = e.sim_time;
          sr.recv_j = j;
          sr.has_recv = true;
        }
      }
    }
  }
  for (const auto& [key, sr] : pairs) {
    if (sr.has_send && !sr.has_recv) report.unmatched_sends += 1;
  }
  for (int pass = 0; pass < 64; ++pass) {
    bool changed = false;
    for (const auto& [key, sr] : pairs) {
      if (!sr.has_send || !sr.has_recv || sr.send_j == sr.recv_j) continue;
      const double send = sr.send_t + report.clock_offsets[sr.send_j];
      const double recv = sr.recv_t + report.clock_offsets[sr.recv_j];
      if (recv < send) {
        report.clock_offsets[sr.recv_j] += send - recv;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // --- 2. Collect spans keyed (trace id, span id). --------------------
  // A span that ended twice keeps the last end event, matching the
  // tracer's overwrite semantics.
  std::map<uint64_t, std::map<uint32_t, PendingSpan>> traces;
  for (size_t j = 0; j < journals.size(); ++j) {
    for (const JournalEvent& e : journals[j].events) {
      if (e.trace_id == 0) continue;
      if (e.kind == JournalEventKind::kSpanBegin) {
        PendingSpan& p = traces[e.trace_id][e.span];
        if (p.begin == nullptr) {
          p.begin = &e;
          p.begin_journal = j;
        }
      } else if (e.kind == JournalEventKind::kSpanEnd) {
        PendingSpan& p = traces[e.trace_id][e.span];
        p.end = &e;
        p.end_journal = j;
      }
    }
  }

  // --- 3. Rebuild the forest in (trace id, span id) order. ------------
  // Parent span ids are always smaller than their children's (the tracer
  // assigns ids in recording order), so an ascending walk sees every
  // parent before its children and the rebuilt ids come out in the
  // original pre-order.
  for (const auto& [trace_id, spans] : traces) {
    report.traces += 1;
    std::unordered_map<uint32_t, uint32_t> remap;  // original id -> rebuilt
    for (const auto& [span_id, p] : spans) {
      const JournalEvent* anchor = p.begin != nullptr ? p.begin : p.end;
      const size_t anchor_journal =
          p.begin != nullptr ? p.begin_journal : p.end_journal;
      const double off = report.clock_offsets[anchor_journal];
      uint32_t parent = kNoSpan;
      if (anchor->parent_span != kNoSpan) {
        auto it = remap.find(anchor->parent_span);
        if (it != remap.end()) {
          parent = it->second;
        } else {
          report.orphans += 1;
        }
      }
      const uint32_t id = report.tracer.StartSpan(
          anchor->peer, parent, static_cast<SpanKind>(anchor->span_kind),
          anchor->r, anchor->start + off);
      remap[span_id] = id;
      report.spans += 1;
      if (p.end == nullptr) {
        report.missing_end += 1;
        continue;
      }
      const double end_off = report.clock_offsets[p.end_journal];
      Span& s = report.tracer.span(id);
      s.tuples_in = p.end->tuples_in;
      s.links_pruned = p.end->links_pruned;
      s.links_forwarded = p.end->links_forwarded;
      s.states_merged = p.end->states_merged;
      s.state_tuples = p.end->state_tuples;
      s.answer_tuples = p.end->answer_tuples;
      s.retries = p.end->retries;
      s.timeouts = p.end->timeouts;
      report.tracer.EndSpan(id, p.end->end + end_off);
    }
  }

  report.complete = report.missing_end == 0 && report.orphans == 0 &&
                    report.dropped == 0 && report.crashes == 0;
  return report;
}

}  // namespace ripple::obs
