#ifndef RIPPLE_OBS_METRICS_H_
#define RIPPLE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ripple::obs {

/// Nearest-rank percentile over an ascending-sorted sample vector:
/// the smallest sample such that at least p percent of the data is <= it
/// (rank = ceil(p/100 * N), 1-based; p is clamped to [0, 100]). Returns 0
/// for an empty vector. p = 0 yields the minimum, p = 100 the maximum.
///
/// This is the single percentile implementation in the codebase —
/// Histogram and StatsAccumulator both route through it.
double NearestRankPercentile(const std::vector<double>& sorted, double p);

/// A monotonically increasing count (messages sent, spans recorded, ...).
///
/// Genuinely atomic (relaxed): instruments may be fed concurrently from
/// future threaded engines and per-worker profilers without tearing.
/// Relaxed ordering is the whole contract — counters are statistics, not
/// synchronization; readers may observe mid-batch values. Enforced by
/// ObsTest.CounterAndGaugeAreAtomic.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time value (overlay size, tree depth, ...). Same atomicity
/// contract as Counter; Add() uses a CAS loop because fetch_add on
/// atomic<double> is not universally available pre-C++20 libstdc++.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A distribution: fixed upper-bound buckets for cheap aggregated export
/// plus the raw samples for exact nearest-rank percentiles (the paper's
/// workloads are small enough that keeping samples is the right
/// trade-off; bucket counts survive export even if a consumer drops the
/// samples).
///
/// Observe() is thread-safe: bucket/count/sum mutation is per-bucket
/// relaxed atomics (same contract as Counter/Gauge — statistics, not
/// synchronization), the sample vector is guarded by a mutex. Readers
/// racing writers see consistent values per field, not a consistent
/// cross-field snapshot.
class Histogram {
 public:
  /// `bounds` are ascending bucket upper bounds; a final +inf bucket is
  /// implicit. An empty list uses DefaultBounds().
  explicit Histogram(std::vector<double> bounds = {});

  /// Copyable (WorkloadResult holds histograms by value); the copy is a
  /// point-in-time snapshot. Moves fall back to these.
  Histogram(const Histogram& o);
  Histogram& operator=(const Histogram& o);

  /// 1, 2, 4, ... 65536: powers of two covering hop counts, peer loads
  /// and message sizes at the paper's scales.
  static std::vector<double> DefaultBounds();

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Exact nearest-rank percentile of everything observed so far.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Snapshot of the bucket counts: [i] counts samples <= bounds()[i];
  /// the last entry (index bounds().size()) is the +inf overflow bucket.
  std::vector<uint64_t> bucket_counts() const;

  /// "count=12 mean=3.41 p50=3 p90=6 p99=8 max=9" — the one-line form the
  /// bench harness appends to its panels.
  std::string Summary() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  mutable std::mutex samples_mu_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// A named collection of metrics. Instruments are created on first use
/// and live as long as the registry; returned references stay valid.
/// Iteration order is the lexicographic name order, so exports are
/// deterministic.
///
/// Get* lookup/creation is mutex-guarded, so concurrent workers may
/// create instruments by name (the executor's engine runs record
/// coverage/traffic metrics from worker threads). The raw map accessors
/// are NOT locked: use them only when no thread can be inserting
/// (exports after a join); concurrent readers use CounterValues() /
/// GaugeValues() / Summary().
class Registry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` only applies on first creation of `name`.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms()
      const {
    return histograms_;
  }

  /// Locked point-in-time captures, name-sorted — safe against
  /// concurrent Get* creation (what obs::SnapshotSeries uses).
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;

  /// Multi-line human-readable dump (one metric per line).
  std::string Summary() const;

  /// The process-wide registry instrumented library code (overlay
  /// routing, ...) records into. Recording is off unless explicitly
  /// enabled, so the hot paths only pay one relaxed atomic load.
  static Registry& Global();
  static bool GlobalEnabled() {
    return g_global_enabled.load(std::memory_order_relaxed);
  }
  static void EnableGlobal(bool on) {
    g_global_enabled.store(on, std::memory_order_relaxed);
  }

 private:
  static std::atomic<bool> g_global_enabled;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Instrumentation hook for the overlays' routing loops: records one
/// completed route (path length in hops) under `<overlay>.route.*` in the
/// global registry. No-op unless Registry::EnableGlobal(true) was called.
void RecordRouteHops(const char* overlay, uint64_t hops);

/// Publishes this thread's accumulated kernel work counters (see
/// common/kernel_counters.h) into the global registry under `kernel.*`
/// (kernel.tuples_scanned, kernel.dominance_cmps, kernel.heap_pushes) and
/// zeroes them. The engines call this at the end of every Run(), after
/// resetting the counters at the start, so each flush adds exactly one
/// query's machine-independent work. No-op (counters still zeroed) unless
/// Registry::EnableGlobal(true) was called.
void FlushKernelCounters();

}  // namespace ripple::obs

#endif  // RIPPLE_OBS_METRICS_H_
