#include "obs/snapshot.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/json.h"

namespace ripple::obs {

const Snapshot& SnapshotSeries::Capture(double at_ms) {
  Snapshot s;
  s.at_ms = at_ms;
  s.counters = registry_->CounterValues();
  s.gauges = registry_->GaugeValues();
  snapshots_.push_back(std::move(s));
  return snapshots_.back();
}

std::vector<uint64_t> SnapshotSeries::Deltas(const std::string& name) const {
  auto value_in = [&name](const Snapshot& s) -> uint64_t {
    for (const auto& [n, v] : s.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  std::vector<uint64_t> out;
  for (size_t i = 1; i < snapshots_.size(); ++i) {
    const uint64_t prev = value_in(snapshots_[i - 1]);
    const uint64_t cur = value_in(snapshots_[i]);
    out.push_back(cur >= prev ? cur - prev : 0);
  }
  return out;
}

std::string SnapshotSeries::ToJson() const {
  std::string out = "[";
  char buf[96];
  for (size_t i = 0; i < snapshots_.size(); ++i) {
    const Snapshot& s = snapshots_[i];
    if (i > 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "{\"at_ms\": %.3f, \"counters\": {",
                  s.at_ms);
    out += buf;
    for (size_t c = 0; c < s.counters.size(); ++c) {
      if (c > 0) out += ", ";
      std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64,
                    JsonEscape(s.counters[c].first).c_str(),
                    s.counters[c].second);
      out += buf;
    }
    out += "}, \"gauges\": {";
    for (size_t g = 0; g < s.gauges.size(); ++g) {
      if (g > 0) out += ", ";
      std::snprintf(buf, sizeof(buf), "\"%s\": %.10g",
                    JsonEscape(s.gauges[g].first).c_str(),
                    s.gauges[g].second);
      out += buf;
    }
    out += "}}";
  }
  out += "]";
  return out;
}

bool SlowQueryLog::Observe(const std::string& label, uint64_t trace_id,
                           double latency_ms, double at_ms, bool sampled) {
  if (latency_ms < threshold_ms_) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ != 0 && entries_.size() >= capacity_) {
    dropped_ += 1;
    return true;
  }
  SlowQueryEntry e;
  e.label = label;
  e.trace_id = trace_id;
  e.latency_ms = latency_ms;
  e.at_ms = at_ms;
  e.force_sampled = !sampled;
  entries_.push_back(std::move(e));
  return true;
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

uint64_t SlowQueryLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string SlowQueryLog::ToJson() const {
  std::string out = "[";
  char buf[128];
  const std::vector<SlowQueryEntry> entries = Entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const SlowQueryEntry& e = entries[i];
    if (i > 0) out += ", ";
    out += "{\"label\": \"" + JsonEscape(e.label) + "\"";
    std::snprintf(buf, sizeof(buf),
                  ", \"trace_id\": \"%" PRIu64
                  "\", \"latency_ms\": %.3f, \"at_ms\": %.3f, "
                  "\"force_sampled\": %s}",
                  e.trace_id, e.latency_ms, e.at_ms,
                  e.force_sampled ? "true" : "false");
    out += buf;
  }
  out += "]";
  return out;
}

Status WriteSnapshotJson(const SnapshotSeries* series,
                         const SlowQueryLog* slow, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path);
  out << "{\"snapshots\": "
      << (series != nullptr ? series->ToJson() : std::string("[]"))
      << ", \"slow_queries\": "
      << (slow != nullptr ? slow->ToJson() : std::string("[]")) << "}\n";
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

}  // namespace ripple::obs
