#ifndef RIPPLE_OBS_ASSEMBLE_H_
#define RIPPLE_OBS_ASSEMBLE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace ripple::obs {

/// The result of merging per-peer journals back into one span forest.
/// `tracer` holds the rebuilt tree; the counters say how trustworthy it
/// is. `complete` is true iff nothing structural was lost: every span
/// that began also ended, every parent was found, no journal hit its
/// capacity bound, and no crash interrupted a traced query.
struct AssembleReport {
  Tracer tracer;
  uint64_t traces = 0;       // distinct trace ids assembled
  uint64_t spans = 0;        // spans in the rebuilt forest
  uint64_t missing_end = 0;  // spans with a begin but no end event
  uint64_t orphans = 0;      // spans whose parent span never appeared
  uint64_t dropped = 0;      // events lost to journal capacity bounds
  uint64_t crashes = 0;      // crash events observed in any journal
  uint64_t unmatched_sends = 0;  // frame sends with no matching recv
  bool complete = true;

  /// Per-journal clock corrections applied (parallel to the input order).
  std::vector<double> clock_offsets;
};

/// Merges N per-peer journals into one global span forest.
///
/// Causality comes from trace ids: events with trace_id == 0 are skipped.
/// Span identity is (trace_id, span id); traces are emitted in ascending
/// trace-id order, spans within a trace in ascending span-id order (span
/// ids are assigned in recording order, so this reproduces the original
/// tracer's pre-order layout — on a journal set produced against one
/// shared tracer the rebuilt tree is byte-identical under ToAscii()).
///
/// Clocks are aligned Lamport-style before any span is rebuilt: each
/// journal gets one additive offset, raised until every matched frame
/// send/recv pair is causally ordered (a message is never received before
/// it was sent). Journals that already share a clock get offset 0 and
/// timestamps pass through untouched.
Result<AssembleReport> AssembleJournals(
    const std::vector<PeerJournal>& journals);

}  // namespace ripple::obs

#endif  // RIPPLE_OBS_ASSEMBLE_H_
