#include "obs/trace.h"

#include <cstdio>

#include "common/check.h"

namespace ripple::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kFast: return "fast";
    case SpanKind::kSlow: return "slow";
    case SpanKind::kRoute: return "route";
    case SpanKind::kWalk: return "walk";
    case SpanKind::kAdmission: return "admission";
  }
  return "?";
}

uint32_t Tracer::StartSpan(uint32_t peer, uint32_t parent, SpanKind kind,
                           int r, double start) {
  const uint32_t id = static_cast<uint32_t>(spans_.size());
  Span s;
  s.id = id;
  s.parent = parent;
  s.peer = peer;
  s.kind = kind;
  s.r = r;
  s.depth = parent == kNoSpan ? 0 : spans_[parent].depth + 1;
  s.start = start + time_offset_;
  s.end = s.start;
  spans_.push_back(s);
  return id;
}

void Tracer::EndSpan(uint32_t id, double end) {
  RIPPLE_CHECK(id < spans_.size());
  spans_[id].end = end + time_offset_;
}

std::vector<uint32_t> Tracer::Roots() const {
  std::vector<uint32_t> out;
  for (const Span& s : spans_) {
    if (s.parent == kNoSpan) out.push_back(s.id);
  }
  return out;
}

std::vector<uint32_t> Tracer::ChildrenOf(uint32_t id) const {
  std::vector<uint32_t> out;
  for (const Span& s : spans_) {
    if (s.parent == id) out.push_back(s.id);
  }
  return out;
}

std::string Tracer::ToAscii() const {
  std::string out;
  char buf[256];
  // Recording order is a pre-order walk per root, so indenting by depth
  // renders the forest without extra bookkeeping.
  for (const Span& s : spans_) {
    std::snprintf(buf, sizeof(buf),
                  "%*s%s p%u [%g,%g] r=%d fwd=%llu pruned=%llu merged=%llu "
                  "answer=%llu\n",
                  2 * s.depth, "", SpanKindName(s.kind), s.peer, s.start,
                  s.end, s.r,
                  static_cast<unsigned long long>(s.links_forwarded),
                  static_cast<unsigned long long>(s.links_pruned),
                  static_cast<unsigned long long>(s.states_merged),
                  static_cast<unsigned long long>(s.answer_tuples));
    out += buf;
  }
  return out;
}

}  // namespace ripple::obs
