#include "obs/trace.h"

#include <cstdio>

#include "common/check.h"
#include "obs/journal.h"

namespace ripple::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kFast: return "fast";
    case SpanKind::kSlow: return "slow";
    case SpanKind::kRoute: return "route";
    case SpanKind::kWalk: return "walk";
    case SpanKind::kAdmission: return "admission";
  }
  return "?";
}

uint32_t Tracer::StartSpan(uint32_t peer, uint32_t parent, SpanKind kind,
                           int r, double start) {
  const uint32_t id = static_cast<uint32_t>(spans_.size());
  Span s;
  s.id = id;
  s.parent = parent;
  s.peer = peer;
  s.kind = kind;
  s.r = r;
  s.depth = parent == kNoSpan ? 0 : spans_[parent].depth + 1;
  s.start = start + time_offset_;
  s.end = s.start;
  spans_.push_back(s);
  if (journal_ != nullptr && trace_id_ != 0) {
    JournalEvent e;
    e.kind = JournalEventKind::kSpanBegin;
    e.peer = peer;
    e.sim_time = s.start;
    e.trace_id = trace_id_;
    e.span = id;
    e.parent_span = parent;
    e.span_kind = static_cast<uint8_t>(kind);
    e.r = r;
    e.start = s.start;
    journal_->Record(std::move(e));
  }
  return id;
}

void Tracer::EndSpan(uint32_t id, double end) {
  RIPPLE_CHECK(id < spans_.size());
  spans_[id].end = end + time_offset_;
  if (journal_ != nullptr && trace_id_ != 0) {
    const Span& s = spans_[id];
    JournalEvent e;
    e.kind = JournalEventKind::kSpanEnd;
    e.peer = s.peer;
    e.sim_time = s.end;
    e.trace_id = trace_id_;
    e.span = id;
    e.parent_span = s.parent;
    e.span_kind = static_cast<uint8_t>(s.kind);
    e.r = s.r;
    e.start = s.start;
    e.end = s.end;
    e.tuples_in = s.tuples_in;
    e.links_pruned = s.links_pruned;
    e.links_forwarded = s.links_forwarded;
    e.states_merged = s.states_merged;
    e.state_tuples = s.state_tuples;
    e.answer_tuples = s.answer_tuples;
    e.retries = s.retries;
    e.timeouts = s.timeouts;
    journal_->Record(std::move(e));
  }
}

std::vector<uint32_t> Tracer::Roots() const {
  std::vector<uint32_t> out;
  for (const Span& s : spans_) {
    if (s.parent == kNoSpan) out.push_back(s.id);
  }
  return out;
}

std::vector<uint32_t> Tracer::ChildrenOf(uint32_t id) const {
  std::vector<uint32_t> out;
  for (const Span& s : spans_) {
    if (s.parent == id) out.push_back(s.id);
  }
  return out;
}

std::string Tracer::ToAscii() const {
  std::string out;
  char buf[256];
  // Recording order is a pre-order walk per root, so indenting by depth
  // renders the forest without extra bookkeeping.
  for (const Span& s : spans_) {
    std::snprintf(buf, sizeof(buf),
                  "%*s%s p%u [%g,%g] r=%d fwd=%llu pruned=%llu merged=%llu "
                  "answer=%llu\n",
                  2 * s.depth, "", SpanKindName(s.kind), s.peer, s.start,
                  s.end, s.r,
                  static_cast<unsigned long long>(s.links_forwarded),
                  static_cast<unsigned long long>(s.links_pruned),
                  static_cast<unsigned long long>(s.states_merged),
                  static_cast<unsigned long long>(s.answer_tuples));
    out += buf;
  }
  return out;
}

}  // namespace ripple::obs
