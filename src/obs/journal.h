#ifndef RIPPLE_OBS_JOURNAL_H_
#define RIPPLE_OBS_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "obs/trace.h"
#include "wire/frame.h"

namespace ripple::obs {

// The wire's "no parent" sentinel and the tracer's root sentinel must be
// the same bit pattern: a frame header's parent_span field is consumed
// directly as a span parent.
static_assert(wire::kNoParentSpan == kNoSpan);

/// What one journal entry records. Frame events carry message identity
/// and byte counts; span events mirror the tracer; kRetransmit / kDrop /
/// kCrash record the fault layer's interventions.
enum class JournalEventKind : uint8_t {
  kFrameSend,   // a frame left this peer
  kFrameRecv,   // a frame was decoded at this peer
  kSpanBegin,   // the tracer opened a span at this peer
  kSpanEnd,     // the tracer closed a span at this peer
  kRetransmit,  // the reliability layer re-sent a frame from this peer
  kDrop,        // the simulated network dropped a frame sent by this peer
  kCrash,       // a delivery was addressed to this peer after it crashed
};

const char* JournalEventKindName(JournalEventKind kind);

/// One append-only journal entry. A single flat record type keeps the
/// JSONL format trivial; fields irrelevant to a kind stay at their
/// defaults and are omitted from the serialized line.
struct JournalEvent {
  JournalEventKind kind = JournalEventKind::kFrameSend;
  uint32_t peer = 0;      // whose journal this entry belongs to
  double sim_time = 0.0;  // engine clock: logical hops or simulator time
  uint64_t wall_ns = 0;   // monotonic wall stamp taken at record time
  uint64_t trace_id = 0;  // 0 = unsampled (assembler ignores the entry)

  // Frame events.
  uint64_t msg_id = 0;
  uint8_t msg_kind = 0;  // net::MessageKind value
  uint32_t parent_span = kNoSpan;  // trace context the frame carried
  uint64_t bytes = 0;
  int attempt = 0;

  // Span events (kSpanBegin carries identity/start; kSpanEnd additionally
  // carries the final counters).
  uint32_t span = kNoSpan;
  uint8_t span_kind = 0;  // obs::SpanKind value
  int r = 0;
  double start = 0.0;
  double end = 0.0;
  uint64_t tuples_in = 0;
  uint64_t links_pruned = 0;
  uint64_t links_forwarded = 0;
  uint64_t states_merged = 0;
  uint64_t state_tuples = 0;
  uint64_t answer_tuples = 0;
  uint64_t retries = 0;
  uint64_t timeouts = 0;
};

/// One JSONL line per event; the inverse of ParseJournalLine.
std::string JournalEventToJson(const JournalEvent& e);

/// Parses one serialized journal line. Unknown keys are ignored (forward
/// compatibility); a malformed line or unknown event kind is an error.
Result<JournalEvent> ParseJournalLine(const std::string& line);

/// The parsed content of one per-peer journal file.
struct PeerJournal {
  uint32_t peer = 0;
  uint64_t dropped = 0;  // events lost to the capacity bound
  std::vector<JournalEvent> events;
};

/// Bounded append-only event logs, one per peer. Thread-safe: executor
/// workers running independent queries may share one set. Events keep
/// insertion order per peer; once a peer's journal is full further events
/// are counted in dropped() instead of recorded — append-only means no
/// eviction, so the *front* of a trace survives truncation.
class JournalSet {
 public:
  /// `capacity_per_peer` bounds each peer's event count (0 = unbounded).
  explicit JournalSet(size_t capacity_per_peer = 1 << 16)
      : capacity_(capacity_per_peer) {}

  /// Appends `e` to peer `e.peer`'s journal, stamping wall_ns with the
  /// monotonic clock. Drops (and counts) the event when full.
  void Record(JournalEvent e);

  /// Peers with at least one recorded or dropped event, ascending.
  std::vector<uint32_t> Peers() const;

  /// Snapshot of one peer's journal (empty journal when untouched).
  PeerJournal Snapshot(uint32_t peer) const;

  uint64_t TotalEvents() const;
  uint64_t TotalDropped() const;
  size_t capacity_per_peer() const { return capacity_; }

  void Clear();

  /// Writes `peer-<id>.jsonl` under `dir` for every touched peer: a meta
  /// line (`{"journal": {...}}`) then one event per line. Creates `dir`.
  Status WriteDir(const std::string& dir) const;

 private:
  struct Log {
    uint64_t dropped = 0;
    std::vector<JournalEvent> events;
  };

  size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<uint32_t, Log> logs_;
};

/// Reads one per-peer journal file written by WriteDir (meta line
/// optional, so hand-built event streams parse too).
Result<PeerJournal> ReadJournalFile(const std::string& path);

/// Reads every `*.jsonl` in `dir` (or just `path` when it is a file).
Result<std::vector<PeerJournal>> ReadJournals(const std::string& path);

}  // namespace ripple::obs

#endif  // RIPPLE_OBS_JOURNAL_H_
