#ifndef RIPPLE_OBS_EXPORT_H_
#define RIPPLE_OBS_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace ripple::obs {

/// Writes the tracer's span forest in the Chrome Trace Event format
/// (JSON object form, "traceEvents" array of complete events), openable
/// in chrome://tracing and Perfetto. One "X" event per span; pid 0 is the
/// query, tid is the peer id, and one logical time unit (a hop) renders
/// as 1 ms. Span counters travel in the event's "args".
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

/// Writes one JSON object per span, one per line (JSONL) — the format for
/// programmatic post-processing (jq, pandas).
Status WriteTraceJsonl(const Tracer& tracer, const std::string& path);

/// Writes a registry as one JSON object: counters and gauges as scalars,
/// histograms with count/sum/min/max, nearest-rank p50/p90/p99, and the
/// fixed cumulative buckets. When `profile` is non-null, the object gains
/// a "profile" section (see ProfileToJson).
Status WriteMetricsJson(const Registry& registry, const std::string& path,
                        const Profiler* profile = nullptr);

/// Writes one profiler as a standalone JSON object (the --profile-out
/// payload): totals, per-metric skew statistics and the top-N hotspot
/// table.
Status WriteProfileJson(const Profiler& profiler, const std::string& path,
                        size_t top_n = 10);

/// The JSON fragments the writers above are built from (exposed for reuse
/// and tests).
std::string SpanToJson(const Span& span);
std::string HistogramToJson(const Histogram& histogram);
std::string SkewToJson(const SkewStats& skew);
std::string ProfileToJson(const Profiler& profiler, size_t top_n = 10);

}  // namespace ripple::obs

#endif  // RIPPLE_OBS_EXPORT_H_
