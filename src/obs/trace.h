#ifndef RIPPLE_OBS_TRACE_H_
#define RIPPLE_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ripple::obs {

/// Sentinel parent for root spans.
inline constexpr uint32_t kNoSpan = 0xffffffffu;

/// What a span represents within one query execution.
enum class SpanKind : uint8_t {
  kFast,   // fast-phase peer visit (Algorithm 1 / Alg. 3 second loop)
  kSlow,   // slow-phase peer visit (Algorithm 2 / Alg. 3 first loop)
  kRoute,  // a forwarding hop of an overlay point-routing (bootstrap)
  kWalk,   // a seed-walk visit of the top-k driver's bootstrap
  kAdmission,  // executor admission-to-completion envelope of one query
};

const char* SpanKindName(SpanKind kind);

class JournalSet;  // obs/journal.h

/// One node of a query's span tree: a single peer handling the query.
/// Times are logical — forwarding hops for the recursive engine (one hop
/// = one time unit, exactly the Lemma 1-3 clock) and simulator time for
/// the async engine.
struct Span {
  uint32_t id = kNoSpan;
  uint32_t parent = kNoSpan;
  uint32_t peer = 0;
  SpanKind kind = SpanKind::kFast;
  /// Remaining ripple budget when the peer was visited (engine spans).
  int r = 0;
  /// Distance from the span-tree root.
  int depth = 0;
  double start = 0.0;
  double end = 0.0;
  /// Tuples in the global state this peer received with the query.
  uint64_t tuples_in = 0;
  /// Links whose area intersected but that the policy pruned (f+ checks).
  uint64_t links_pruned = 0;
  /// Links the query was forwarded over.
  uint64_t links_forwarded = 0;
  /// Child local states merged at this peer (slow phase only).
  uint64_t states_merged = 0;
  /// Tuples in the local state this peer reported to its ancestor.
  uint64_t state_tuples = 0;
  /// Qualifying tuples shipped to the initiator from this peer.
  uint64_t answer_tuples = 0;
  /// Retransmissions this peer issued for its pending forwards (fault
  /// layer; zero on a perfect network).
  uint64_t retries = 0;
  /// Timeouts that fired on this peer's pending forwards (fault layer).
  uint64_t timeouts = 0;
};

/// Records the span tree(s) of one or more query executions. Not
/// thread-safe; one tracer per query stream. The engines take a Tracer*
/// and skip all recording when it is null — the disabled path costs one
/// pointer test per peer visit.
class Tracer {
 public:
  /// Opens a span; `start` is in the caller's clock plus time_offset().
  uint32_t StartSpan(uint32_t peer, uint32_t parent, SpanKind kind, int r,
                     double start);
  /// Closes a span. `end` gets the same offset treatment as `start`.
  void EndSpan(uint32_t id, double end);

  /// Mutable access for filling the per-span counters mid-flight.
  Span& span(uint32_t id) { return spans_[id]; }
  const std::vector<Span>& spans() const { return spans_; }
  size_t span_count() const { return spans_.size(); }

  void Clear() { spans_.clear(); }

  /// Added to every start/end passed in. Lets a driver splice phases that
  /// each count time from zero (bootstrap routing, then the engine run)
  /// into one sequential timeline.
  double time_offset() const { return time_offset_; }
  void set_time_offset(double offset) { time_offset_ = offset; }

  /// Ids of root spans (parent == kNoSpan), in recording order.
  std::vector<uint32_t> Roots() const;
  /// Ids of `id`'s children, in recording order.
  std::vector<uint32_t> ChildrenOf(uint32_t id) const;

  /// Indented ASCII rendering of the span forest, for logs and debugging.
  std::string ToAscii() const;

  /// Attaches a journal: every span begin/end is additionally recorded as
  /// a per-peer journal event stamped with trace_id(), which is what lets
  /// the offline assembler rebuild this tracer's tree from the journals
  /// alone. nullptr detaches. While trace_id() is 0 (unsampled) nothing
  /// is mirrored.
  void SetJournal(JournalSet* journal) { journal_ = journal; }
  JournalSet* journal() const { return journal_; }

  /// The trace identity stamped on mirrored journal events. Set it before
  /// recording any span of the query (the seeded drivers record bootstrap
  /// spans before the engine runs).
  void set_trace_id(uint64_t id) { trace_id_ = id; }
  uint64_t trace_id() const { return trace_id_; }

 private:
  std::vector<Span> spans_;
  double time_offset_ = 0.0;
  JournalSet* journal_ = nullptr;
  uint64_t trace_id_ = 0;
};

}  // namespace ripple::obs

#endif  // RIPPLE_OBS_TRACE_H_
