#include "obs/profile.h"

#include <algorithm>
#include <cstdio>

namespace ripple::obs {

PeerLoad& PeerLoad::operator+=(const PeerLoad& o) {
  spans += o.spans;
  messages_in += o.messages_in;
  messages_out += o.messages_out;
  tuples_in += o.tuples_in;
  tuples_out += o.tuples_out;
  bytes_in += o.bytes_in;
  bytes_out += o.bytes_out;
  retransmissions += o.retransmissions;
  queue_depth_hwm = std::max(queue_depth_hwm, o.queue_depth_hwm);
  route_hops += o.route_hops;
  cpu_ns += o.cpu_ns;
  return *this;
}

std::string SkewStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "peers=%zu active=%zu total=%llu mean=%.2f max=%llu@%u "
                "peak/mean=%.1f gini=%.3f idle=%.0f%%",
                peers, active, static_cast<unsigned long long>(total), mean,
                static_cast<unsigned long long>(max), max_peer, peak_to_mean,
                gini, idle_fraction * 100.0);
  return buf;
}

SkewStats ComputeSkew(const std::vector<uint64_t>& loads) {
  SkewStats s;
  s.peers = loads.size();
  if (loads.empty()) return s;
  for (size_t i = 0; i < loads.size(); ++i) {
    const uint64_t v = loads[i];
    s.total += v;
    if (v > 0) s.active += 1;
    if (v > s.max) {
      s.max = v;
      s.max_peer = static_cast<uint32_t>(i);
    }
  }
  s.mean = static_cast<double>(s.total) / static_cast<double>(s.peers);
  s.peak_to_mean = s.mean > 0 ? static_cast<double>(s.max) / s.mean : 0.0;
  s.idle_fraction =
      static_cast<double>(s.peers - s.active) / static_cast<double>(s.peers);
  if (s.total > 0) {
    // Gini over the sorted loads: G = (2 * sum_i i*x_i) / (n * total)
    // - (n + 1) / n, with 1-based ranks i over ascending x.
    std::vector<uint64_t> sorted = loads;
    std::sort(sorted.begin(), sorted.end());
    double weighted = 0.0;
    for (size_t i = 0; i < sorted.size(); ++i) {
      weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
    }
    const double n = static_cast<double>(sorted.size());
    s.gini = 2.0 * weighted / (n * static_cast<double>(s.total)) -
             (n + 1.0) / n;
    if (s.gini < 0.0) s.gini = 0.0;
  }
  return s;
}

const PeerLoad& Profiler::load(uint32_t peer) const {
  static const PeerLoad kEmpty{};
  return peer < loads_.size() ? loads_[peer] : kEmpty;
}

PeerLoad Profiler::Totals() const {
  PeerLoad total;
  for (const PeerLoad& l : loads_) total += l;
  return total;
}

SkewStats Profiler::Skew(uint64_t PeerLoad::* field) const {
  std::vector<uint64_t> values(loads_.size());
  for (size_t i = 0; i < loads_.size(); ++i) values[i] = loads_[i].*field;
  return ComputeSkew(values);
}

std::vector<Hotspot> Profiler::TopN(uint64_t PeerLoad::* field,
                                    size_t n) const {
  std::vector<uint32_t> ids;
  ids.reserve(loads_.size());
  for (uint32_t i = 0; i < loads_.size(); ++i) {
    if (loads_[i].*field > 0) ids.push_back(i);
  }
  const size_t keep = std::min(n, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(keep),
                    ids.end(), [&](uint32_t a, uint32_t b) {
                      if (loads_[a].*field != loads_[b].*field) {
                        return loads_[a].*field > loads_[b].*field;
                      }
                      return a < b;
                    });
  std::vector<Hotspot> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    out.push_back(Hotspot{ids[i], loads_[ids[i]]});
  }
  return out;
}

void Profiler::Merge(const Profiler& other) {
  if (other.loads_.size() > loads_.size()) loads_.resize(other.loads_.size());
  for (size_t i = 0; i < other.loads_.size(); ++i) {
    loads_[i] += other.loads_[i];
  }
}

std::string Profiler::Summary() const {
  std::string out;
  out += "profile spans:    " + Skew(&PeerLoad::spans).ToString() + "\n";
  out += "profile msgs_out: " + Skew(&PeerLoad::messages_out).ToString() +
         "\n";
  out += "profile cpu_ns:   " + Skew(&PeerLoad::cpu_ns).ToString() + "\n";
  return out;
}

std::atomic<bool> Profiler::g_global_enabled{false};

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();  // leaked: process lifetime
  return *profiler;
}

std::mutex& Profiler::GlobalMutex() {
  static std::mutex* mu = new std::mutex();  // leaked: process lifetime
  return *mu;
}

}  // namespace ripple::obs
