#include "obs/journal.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/json.h"

namespace ripple::obs {

namespace {

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Doubles print with %.17g so sim clocks survive the JSONL round trip
// bit-exactly (DumpJson's %.10g is for human-facing exports); u64 ids
// print as strings because JSON numbers lose precision past 2^53.
void AppendKeyDouble(std::string* out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%.17g", key, v);
  *out += buf;
}

void AppendKeyU64(std::string* out, const char* key, uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":\"%" PRIu64 "\"", key, v);
  *out += buf;
}

void AppendKeyInt(std::string* out, const char* key, int64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRId64 "", key, v);
  *out += buf;
}

uint64_t ReadU64(const JsonValue& obj, const char* key, uint64_t fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (v->IsString()) return std::strtoull(v->string.c_str(), nullptr, 10);
  if (v->IsNumber()) return static_cast<uint64_t>(v->number);
  return fallback;
}

double ReadDouble(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.Find(key);
  return v == nullptr ? fallback : v->NumberOr(fallback);
}

bool KindFromName(const std::string& name, JournalEventKind* out) {
  static constexpr JournalEventKind kAll[] = {
      JournalEventKind::kFrameSend, JournalEventKind::kFrameRecv,
      JournalEventKind::kSpanBegin, JournalEventKind::kSpanEnd,
      JournalEventKind::kRetransmit, JournalEventKind::kDrop,
      JournalEventKind::kCrash,
  };
  for (JournalEventKind k : kAll) {
    if (name == JournalEventKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool IsSpanEvent(JournalEventKind k) {
  return k == JournalEventKind::kSpanBegin || k == JournalEventKind::kSpanEnd;
}

}  // namespace

const char* JournalEventKindName(JournalEventKind kind) {
  switch (kind) {
    case JournalEventKind::kFrameSend: return "send";
    case JournalEventKind::kFrameRecv: return "recv";
    case JournalEventKind::kSpanBegin: return "span_begin";
    case JournalEventKind::kSpanEnd: return "span_end";
    case JournalEventKind::kRetransmit: return "retransmit";
    case JournalEventKind::kDrop: return "drop";
    case JournalEventKind::kCrash: return "crash";
  }
  return "?";
}

std::string JournalEventToJson(const JournalEvent& e) {
  std::string out = "{\"ev\":\"";
  out += JournalEventKindName(e.kind);
  out += "\"";
  AppendKeyInt(&out, "peer", e.peer);
  AppendKeyDouble(&out, "t", e.sim_time);
  AppendKeyU64(&out, "wall", e.wall_ns);
  if (e.trace_id != 0) AppendKeyU64(&out, "trace", e.trace_id);
  if (IsSpanEvent(e.kind)) {
    AppendKeyInt(&out, "span", e.span);
    out += ",\"skind\":\"";
    out += SpanKindName(static_cast<SpanKind>(e.span_kind));
    out += "\"";
    if (e.parent_span != kNoSpan) AppendKeyInt(&out, "parent", e.parent_span);
    if (e.r != 0) AppendKeyInt(&out, "r", e.r);
    AppendKeyDouble(&out, "start", e.start);
    if (e.kind == JournalEventKind::kSpanEnd) {
      AppendKeyDouble(&out, "end", e.end);
      if (e.tuples_in != 0) AppendKeyU64(&out, "tuples_in", e.tuples_in);
      if (e.links_pruned != 0) AppendKeyU64(&out, "pruned", e.links_pruned);
      if (e.links_forwarded != 0) AppendKeyU64(&out, "fwd", e.links_forwarded);
      if (e.states_merged != 0) AppendKeyU64(&out, "merged", e.states_merged);
      if (e.state_tuples != 0)
        AppendKeyU64(&out, "state_tuples", e.state_tuples);
      if (e.answer_tuples != 0) AppendKeyU64(&out, "answer", e.answer_tuples);
      if (e.retries != 0) AppendKeyU64(&out, "retries", e.retries);
      if (e.timeouts != 0) AppendKeyU64(&out, "timeouts", e.timeouts);
    }
  } else {
    AppendKeyU64(&out, "msg", e.msg_id);
    AppendKeyInt(&out, "mkind", e.msg_kind);
    if (e.parent_span != kNoSpan) AppendKeyInt(&out, "parent", e.parent_span);
    if (e.bytes != 0) AppendKeyU64(&out, "bytes", e.bytes);
    if (e.attempt != 0) AppendKeyInt(&out, "attempt", e.attempt);
  }
  out += "}";
  return out;
}

Result<JournalEvent> ParseJournalLine(const std::string& line) {
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& obj = *parsed;
  if (!obj.IsObject()) {
    return Status::InvalidArgument("journal line is not a JSON object");
  }
  const JsonValue* ev = obj.Find("ev");
  if (ev == nullptr || !ev->IsString()) {
    return Status::InvalidArgument("journal line lacks an \"ev\" kind");
  }
  JournalEvent e;
  if (!KindFromName(ev->string, &e.kind)) {
    return Status::InvalidArgument("unknown journal event kind: " +
                                   ev->string);
  }
  e.peer = static_cast<uint32_t>(ReadU64(obj, "peer", 0));
  e.sim_time = ReadDouble(obj, "t", 0.0);
  e.wall_ns = ReadU64(obj, "wall", 0);
  e.trace_id = ReadU64(obj, "trace", 0);
  if (IsSpanEvent(e.kind)) {
    e.span = static_cast<uint32_t>(ReadU64(obj, "span", kNoSpan));
    const JsonValue* sk = obj.Find("skind");
    if (sk != nullptr && sk->IsString()) {
      for (uint8_t k = 0; k <= static_cast<uint8_t>(SpanKind::kAdmission);
           ++k) {
        if (sk->string == SpanKindName(static_cast<SpanKind>(k))) {
          e.span_kind = k;
          break;
        }
      }
    }
    e.parent_span = static_cast<uint32_t>(ReadU64(obj, "parent", kNoSpan));
    e.r = static_cast<int>(ReadDouble(obj, "r", 0.0));
    e.start = ReadDouble(obj, "start", 0.0);
    e.end = ReadDouble(obj, "end", 0.0);
    e.tuples_in = ReadU64(obj, "tuples_in", 0);
    e.links_pruned = ReadU64(obj, "pruned", 0);
    e.links_forwarded = ReadU64(obj, "fwd", 0);
    e.states_merged = ReadU64(obj, "merged", 0);
    e.state_tuples = ReadU64(obj, "state_tuples", 0);
    e.answer_tuples = ReadU64(obj, "answer", 0);
    e.retries = ReadU64(obj, "retries", 0);
    e.timeouts = ReadU64(obj, "timeouts", 0);
  } else {
    e.msg_id = ReadU64(obj, "msg", 0);
    e.msg_kind = static_cast<uint8_t>(ReadU64(obj, "mkind", 0));
    e.parent_span = static_cast<uint32_t>(ReadU64(obj, "parent", kNoSpan));
    e.bytes = ReadU64(obj, "bytes", 0);
    e.attempt = static_cast<int>(ReadDouble(obj, "attempt", 0.0));
  }
  return e;
}

void JournalSet::Record(JournalEvent e) {
  if (e.wall_ns == 0) e.wall_ns = MonotonicNowNs();
  std::lock_guard<std::mutex> lock(mu_);
  Log& log = logs_[e.peer];
  if (capacity_ != 0 && log.events.size() >= capacity_) {
    log.dropped += 1;
    return;
  }
  log.events.push_back(std::move(e));
}

std::vector<uint32_t> JournalSet::Peers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> out;
  out.reserve(logs_.size());
  for (const auto& [peer, log] : logs_) out.push_back(peer);
  std::sort(out.begin(), out.end());
  return out;
}

PeerJournal JournalSet::Snapshot(uint32_t peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  PeerJournal out;
  out.peer = peer;
  auto it = logs_.find(peer);
  if (it != logs_.end()) {
    out.dropped = it->second.dropped;
    out.events = it->second.events;
  }
  return out;
}

uint64_t JournalSet::TotalEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [peer, log] : logs_) n += log.events.size();
  return n;
}

uint64_t JournalSet::TotalDropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [peer, log] : logs_) n += log.dropped;
  return n;
}

void JournalSet::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  logs_.clear();
}

Status JournalSet::WriteDir(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create journal dir " + dir + ": " +
                            ec.message());
  }
  for (uint32_t peer : Peers()) {
    const PeerJournal pj = Snapshot(peer);
    char name[64];
    std::snprintf(name, sizeof(name), "peer-%u.jsonl", peer);
    const std::string path = dir + "/" + name;
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Status::Internal("cannot open " + path);
    char meta[160];
    std::snprintf(meta, sizeof(meta),
                  "{\"journal\":{\"peer\":%u,\"events\":%zu,"
                  "\"dropped\":%" PRIu64 "}}\n",
                  peer, pj.events.size(), pj.dropped);
    out << meta;
    for (const JournalEvent& e : pj.events) {
      out << JournalEventToJson(e) << "\n";
    }
    if (!out) return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Result<PeerJournal> ReadJournalFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open journal " + path);
  PeerJournal out;
  bool peer_known = false;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (lineno == 1) {
      // Optional meta line.
      Result<JsonValue> meta = ParseJson(line);
      if (meta.ok()) {
        const JsonValue* j = meta->Find("journal");
        if (j != nullptr && j->IsObject()) {
          out.peer = static_cast<uint32_t>(ReadU64(*j, "peer", 0));
          out.dropped = ReadU64(*j, "dropped", 0);
          peer_known = true;
          continue;
        }
      }
    }
    Result<JournalEvent> e = ParseJournalLine(line);
    if (!e.ok()) {
      char where[32];
      std::snprintf(where, sizeof(where), " (line %zu in ", lineno);
      return Status(e.status().code(),
                    e.status().message() + where + path + ")");
    }
    if (!peer_known) {
      out.peer = e->peer;
      peer_known = true;
    }
    out.events.push_back(std::move(*e));
  }
  return out;
}

Result<std::vector<PeerJournal>> ReadJournals(const std::string& path) {
  std::vector<PeerJournal> out;
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      if (entry.path().extension() == ".jsonl") {
        files.push_back(entry.path().string());
      }
    }
    if (ec) {
      return Status::Internal("cannot list " + path + ": " + ec.message());
    }
    std::sort(files.begin(), files.end());
    for (const std::string& file : files) {
      Result<PeerJournal> pj = ReadJournalFile(file);
      if (!pj.ok()) return pj.status();
      out.push_back(std::move(*pj));
    }
  } else {
    Result<PeerJournal> pj = ReadJournalFile(path);
    if (!pj.ok()) return pj.status();
    out.push_back(std::move(*pj));
  }
  return out;
}

}  // namespace ripple::obs
