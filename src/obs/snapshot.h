#ifndef RIPPLE_OBS_SNAPSHOT_H_
#define RIPPLE_OBS_SNAPSHOT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace ripple::obs {

/// A timestamped capture of a registry's counters and gauges. The feed
/// for the future adaptive-r controller: consecutive snapshots turn the
/// monotone counters into windowed rates.
struct Snapshot {
  double at_ms = 0.0;  // caller's clock (wall ms since series start)
  std::vector<std::pair<std::string, uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;
};

/// Periodic snapshots over one registry. Capture() is safe against
/// concurrent instrument creation/mutation (it goes through the
/// registry's locked value captures), but the series itself is meant to
/// be driven from one thread — the executor's admission loop, or a
/// driver's main loop.
class SnapshotSeries {
 public:
  explicit SnapshotSeries(Registry* registry) : registry_(registry) {}

  const Snapshot& Capture(double at_ms);

  const std::vector<Snapshot>& snapshots() const { return snapshots_; }
  size_t size() const { return snapshots_.size(); }

  /// Windowed deltas of counter `name` between consecutive snapshots
  /// (size() - 1 entries; a counter absent from a snapshot reads 0).
  std::vector<uint64_t> Deltas(const std::string& name) const;

  /// JSON array fragment: one `{"at_ms":..., "counters": {...},
  /// "gauges": {...}}` object per snapshot.
  std::string ToJson() const;

 private:
  Registry* registry_;
  std::vector<Snapshot> snapshots_;
};

/// One slow query. `force_sampled` marks entries whose query was NOT
/// head-sampled: the slow-query log records them anyway (that is its
/// job — tail latency must be visible even at low sampling rates),
/// flagged so a consumer knows no distributed trace exists for them.
struct SlowQueryEntry {
  std::string label;
  uint64_t trace_id = 0;
  double latency_ms = 0.0;
  double at_ms = 0.0;
  bool force_sampled = false;
};

/// Bounded log of queries over a latency threshold. Thread-safe:
/// executor workers report completions concurrently.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(double threshold_ms, size_t capacity = 256)
      : threshold_ms_(threshold_ms), capacity_(capacity) {}

  /// Records when `latency_ms >= threshold_ms()`; returns whether the
  /// query was slow (recorded or dropped for capacity).
  bool Observe(const std::string& label, uint64_t trace_id,
               double latency_ms, double at_ms, bool sampled);

  double threshold_ms() const { return threshold_ms_; }
  std::vector<SlowQueryEntry> Entries() const;
  uint64_t dropped() const;

  /// JSON array fragment, one object per entry.
  std::string ToJson() const;

 private:
  double threshold_ms_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> entries_;
  uint64_t dropped_ = 0;
};

/// Writes `{"snapshots": [...], "slow_queries": [...]}` to `path`.
/// Either part may be null (emitted as an empty list).
Status WriteSnapshotJson(const SnapshotSeries* series,
                         const SlowQueryLog* slow, const std::string& path);

}  // namespace ripple::obs

#endif  // RIPPLE_OBS_SNAPSHOT_H_
