#include "obs/bench_report.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.h"

namespace ripple::obs {

std::string Slug(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(std::tolower(c)));
    } else if (!out.empty() && out.back() != '-') {
      out.push_back('-');
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

void BenchReporter::AddMetric(const std::string& case_id,
                              const std::string& metric, double value) {
  cases_[meta_.binary + "/" + case_id][metric] = value;
}

std::string BenchReporter::FilePath(const std::string& dir,
                                    const std::string& suite) {
  return (dir.empty() ? std::string(".") : dir) + "/BENCH_" + suite +
         ".json";
}

namespace {

std::string NumToJson(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e308" : "-1e308";
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

}  // namespace

std::string BenchReporter::JsonDocument(
    const std::vector<std::pair<std::string, std::string>>& foreign_cases)
    const {
  std::string out = "{\n";
  out += "\"schema_version\":" + std::to_string(kBenchSchemaVersion) + ",\n";
  out += "\"suite\":\"" + JsonEscape(meta_.suite) + "\",\n";
  out += "\"meta\":{";
  out += "\"git_sha\":\"" + JsonEscape(meta_.git_sha) + "\"";
  out += ",\"build_type\":\"" + JsonEscape(meta_.build_type) + "\"";
  out += ",\"seed\":" + NumToJson(static_cast<double>(meta_.seed));
  out += ",\"config\":{";
  bool first = true;
  for (const auto& [k, v] : meta_.config) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(k) + "\":" + NumToJson(v);
  }
  out += "}},\n";
  out += "\"cases\":{";

  // Foreign cases (other binaries) and ours, interleaved in one sorted
  // key order so the file is deterministic no matter the run order.
  auto foreign_it = foreign_cases.begin();
  auto ours_it = cases_.begin();
  first = true;
  auto emit = [&](const std::string& id, const std::string& body) {
    if (!first) out += ",";
    first = false;
    out += "\n\"" + JsonEscape(id) + "\":" + body;
  };
  auto ours_body = [&](const std::map<std::string, double>& metrics) {
    std::string body = "{";
    bool m_first = true;
    for (const auto& [name, value] : metrics) {
      if (!m_first) body += ",";
      m_first = false;
      body += "\"" + JsonEscape(name) + "\":" + NumToJson(value);
    }
    body += "}";
    return body;
  };
  while (foreign_it != foreign_cases.end() || ours_it != cases_.end()) {
    if (ours_it == cases_.end() ||
        (foreign_it != foreign_cases.end() &&
         foreign_it->first < ours_it->first)) {
      emit(foreign_it->first, foreign_it->second);
      ++foreign_it;
    } else {
      emit(ours_it->first, ours_body(ours_it->second));
      ++ours_it;
    }
  }
  out += "\n}\n}\n";
  return out;
}

std::string BenchReporter::ToJson() const { return JsonDocument({}); }

Status BenchReporter::WriteMerged(const std::string& dir) const {
  const std::string path = FilePath(dir, meta_.suite);

  // Retain other binaries' cases from an existing file; ours (prefix
  // `<binary>/`) are replaced wholesale. A corrupt file is overwritten.
  std::vector<std::pair<std::string, std::string>> foreign;
  {
    std::ifstream in(path);
    if (in.good()) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      const Result<JsonValue> parsed = ParseJson(buffer.str());
      if (parsed.ok()) {
        const std::string prefix = meta_.binary + "/";
        if (const JsonValue* cases = parsed->Find("cases");
            cases != nullptr && cases->IsObject()) {
          for (const auto& [id, body] : cases->object) {
            if (id.compare(0, prefix.size(), prefix) == 0) continue;
            foreign.emplace_back(id, DumpJson(body));
          }
        }
        std::sort(foreign.begin(), foreign.end());
      }
    }
  }

  const std::string doc = JsonDocument(foreign);
  std::error_code ec;
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = std::ferror(f) == 0;
  if (std::fclose(f) != 0 || !ok) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

Status BenchReporter::WritePanelCsv(
    const std::string& dir, const std::string& title,
    const std::string& x_label, const std::vector<std::string>& x_values,
    const std::vector<std::string>& series_names,
    const std::vector<std::vector<double>>& series_values) const {
  const std::filesystem::path suite_dir =
      std::filesystem::path(dir.empty() ? "." : dir) / meta_.suite;
  std::error_code ec;
  std::filesystem::create_directories(suite_dir, ec);
  const std::string path =
      (suite_dir / (meta_.binary + "-" + Slug(title) + ".csv")).string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  std::fprintf(f, "%s", x_label.c_str());
  for (const std::string& name : series_names) {
    std::fprintf(f, ",%s", name.c_str());
  }
  std::fprintf(f, "\n");
  for (size_t row = 0; row < x_values.size(); ++row) {
    std::fprintf(f, "%s", x_values[row].c_str());
    for (const std::vector<double>& values : series_values) {
      if (row < values.size()) {
        std::fprintf(f, ",%.6g", values[row]);
      } else {
        std::fprintf(f, ",");
      }
    }
    std::fprintf(f, "\n");
  }
  const bool ok = std::ferror(f) == 0;
  if (std::fclose(f) != 0 || !ok) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace ripple::obs
