#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <string>

namespace ripple::obs {
namespace {

/// JSON-legal rendering of a double (JSON has no inf/nan literals).
std::string Num(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e308" : "-1e308";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string Num(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

class FileWriter {
 public:
  explicit FileWriter(const std::string& path)
      : path_(path), file_(std::fopen(path.c_str(), "w")) {}
  ~FileWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  bool ok() const { return file_ != nullptr; }
  void Write(const std::string& s) {
    std::fwrite(s.data(), 1, s.size(), file_);
  }

  Status Close() {
    const bool had_error = std::ferror(file_) != 0;
    const bool close_ok = std::fclose(file_) == 0;
    file_ = nullptr;
    if (had_error || !close_ok) {
      return Status::Internal("write failed: " + path_);
    }
    return Status::OK();
  }

 private:
  std::string path_;
  std::FILE* file_;
};

Status CannotOpen(const std::string& path) {
  return Status::InvalidArgument("cannot open for writing: " + path);
}

}  // namespace

std::string SpanToJson(const Span& s) {
  std::string out = "{";
  out += "\"span\":" + Num(uint64_t{s.id});
  out += ",\"parent\":";
  out += s.parent == kNoSpan ? std::string("null")
                             : Num(uint64_t{s.parent});
  out += ",\"peer\":" + Num(uint64_t{s.peer});
  out += ",\"kind\":\"" + std::string(SpanKindName(s.kind)) + "\"";
  out += ",\"r\":" + std::to_string(s.r);
  out += ",\"depth\":" + std::to_string(s.depth);
  out += ",\"start\":" + Num(s.start);
  out += ",\"end\":" + Num(s.end);
  out += ",\"tuples_in\":" + Num(s.tuples_in);
  out += ",\"links_pruned\":" + Num(s.links_pruned);
  out += ",\"links_forwarded\":" + Num(s.links_forwarded);
  out += ",\"states_merged\":" + Num(s.states_merged);
  out += ",\"state_tuples\":" + Num(s.state_tuples);
  out += ",\"answer_tuples\":" + Num(s.answer_tuples);
  if (s.retries > 0) out += ",\"retries\":" + Num(s.retries);
  if (s.timeouts > 0) out += ",\"timeouts\":" + Num(s.timeouts);
  out += "}";
  return out;
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  FileWriter f(path);
  if (!f.ok()) return CannotOpen(path);
  f.Write("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  char buf[256];
  for (const Span& s : tracer.spans()) {
    if (!first) f.Write(",");
    first = false;
    // 1 hop = 1 ms = 1000 trace microseconds; zero-latency leaf visits
    // get a sliver of 1 us so every span is visible.
    const double ts = s.start * 1000.0;
    const double dur = std::max((s.end - s.start) * 1000.0, 1.0);
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s p%u\",\"cat\":\"ripple\",\"ph\":\"X\","
                  "\"pid\":0,\"tid\":%u,\"ts\":%s,\"dur\":%s,\"args\":",
                  SpanKindName(s.kind), s.peer, s.peer, Num(ts).c_str(),
                  Num(dur).c_str());
    f.Write(buf);
    f.Write(SpanToJson(s));
    f.Write("}");
  }
  f.Write("\n]}\n");
  return f.Close();
}

Status WriteTraceJsonl(const Tracer& tracer, const std::string& path) {
  FileWriter f(path);
  if (!f.ok()) return CannotOpen(path);
  for (const Span& s : tracer.spans()) {
    f.Write(SpanToJson(s));
    f.Write("\n");
  }
  return f.Close();
}

std::string HistogramToJson(const Histogram& h) {
  std::string out = "{";
  out += "\"count\":" + Num(h.count());
  out += ",\"sum\":" + Num(h.sum());
  out += ",\"min\":" + Num(h.min());
  out += ",\"max\":" + Num(h.max());
  out += ",\"mean\":" + Num(h.mean());
  out += ",\"p50\":" + Num(h.Percentile(50));
  out += ",\"p90\":" + Num(h.Percentile(90));
  out += ",\"p99\":" + Num(h.Percentile(99));
  out += ",\"buckets\":[";
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.bucket_counts().size(); ++i) {
    if (i > 0) out += ",";
    cumulative += h.bucket_counts()[i];
    const std::string le =
        i < h.bounds().size() ? Num(h.bounds()[i]) : "\"+inf\"";
    out += "{\"le\":" + le + ",\"count\":" + Num(cumulative) + "}";
  }
  out += "]}";
  return out;
}

std::string SkewToJson(const SkewStats& s) {
  std::string out = "{";
  out += "\"peers\":" + Num(uint64_t{s.peers});
  out += ",\"active\":" + Num(uint64_t{s.active});
  out += ",\"total\":" + Num(s.total);
  out += ",\"mean\":" + Num(s.mean);
  out += ",\"max\":" + Num(s.max);
  out += ",\"max_peer\":" + Num(uint64_t{s.max_peer});
  out += ",\"peak_to_mean\":" + Num(s.peak_to_mean);
  out += ",\"gini\":" + Num(s.gini);
  out += ",\"idle_fraction\":" + Num(s.idle_fraction);
  out += "}";
  return out;
}

namespace {

std::string PeerLoadToJson(const PeerLoad& l) {
  std::string out = "{";
  out += "\"spans\":" + Num(l.spans);
  out += ",\"messages_in\":" + Num(l.messages_in);
  out += ",\"messages_out\":" + Num(l.messages_out);
  out += ",\"tuples_in\":" + Num(l.tuples_in);
  out += ",\"tuples_out\":" + Num(l.tuples_out);
  out += ",\"bytes_in\":" + Num(l.bytes_in);
  out += ",\"bytes_out\":" + Num(l.bytes_out);
  out += ",\"retransmissions\":" + Num(l.retransmissions);
  out += ",\"queue_depth_hwm\":" + Num(l.queue_depth_hwm);
  out += ",\"route_hops\":" + Num(l.route_hops);
  out += ",\"cpu_ms\":" + Num(static_cast<double>(l.cpu_ns) / 1e6);
  out += "}";
  return out;
}

}  // namespace

std::string ProfileToJson(const Profiler& profiler, size_t top_n) {
  std::string out = "{";
  out += "\"schema_version\":1";
  out += ",\"peers\":" + Num(uint64_t{profiler.peer_count()});
  out += ",\"totals\":" + PeerLoadToJson(profiler.Totals());
  out += ",\"skew\":{";
  static constexpr struct {
    const char* name;
    uint64_t PeerLoad::* field;
  } kSkewFields[] = {
      {"spans", &PeerLoad::spans},
      {"messages_in", &PeerLoad::messages_in},
      {"messages_out", &PeerLoad::messages_out},
      {"tuples_out", &PeerLoad::tuples_out},
      {"bytes_out", &PeerLoad::bytes_out},
      {"route_hops", &PeerLoad::route_hops},
      {"cpu_ns", &PeerLoad::cpu_ns},
  };
  bool first = true;
  for (const auto& f : kSkewFields) {
    if (!first) out += ",";
    first = false;
    out += "\"" + std::string(f.name) +
           "\":" + SkewToJson(profiler.Skew(f.field));
  }
  out += "},\"hotspots\":[";
  first = true;
  for (const Hotspot& h : profiler.TopN(&PeerLoad::spans, top_n)) {
    if (!first) out += ",";
    first = false;
    out += "{\"peer\":" + Num(uint64_t{h.peer}) +
           ",\"load\":" + PeerLoadToJson(h.load) + "}";
  }
  out += "]}";
  return out;
}

Status WriteProfileJson(const Profiler& profiler, const std::string& path,
                        size_t top_n) {
  FileWriter f(path);
  if (!f.ok()) return CannotOpen(path);
  f.Write(ProfileToJson(profiler, top_n));
  f.Write("\n");
  return f.Close();
}

Status WriteMetricsJson(const Registry& registry, const std::string& path,
                        const Profiler* profile) {
  FileWriter f(path);
  if (!f.ok()) return CannotOpen(path);
  f.Write("{\n\"counters\":{");
  bool first = true;
  for (const auto& [name, c] : registry.counters()) {
    if (!first) f.Write(",");
    first = false;
    f.Write("\n\"" + name + "\":" + Num(c->value()));
  }
  f.Write("},\n\"gauges\":{");
  first = true;
  for (const auto& [name, g] : registry.gauges()) {
    if (!first) f.Write(",");
    first = false;
    f.Write("\n\"" + name + "\":" + Num(g->value()));
  }
  f.Write("},\n\"histograms\":{");
  first = true;
  for (const auto& [name, h] : registry.histograms()) {
    if (!first) f.Write(",");
    first = false;
    f.Write("\n\"" + name + "\":" + HistogramToJson(*h));
  }
  f.Write("}");
  if (profile != nullptr) {
    f.Write(",\n\"profile\":");
    f.Write(ProfileToJson(*profile));
  }
  f.Write("\n}\n");
  return f.Close();
}

}  // namespace ripple::obs
