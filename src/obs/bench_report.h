#ifndef RIPPLE_OBS_BENCH_REPORT_H_
#define RIPPLE_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ripple::obs {

/// Version of the BENCH_<suite>.json document layout. Bump on any
/// incompatible change and teach tools/bench_check.py the migration.
/// The schema is documented field-by-field in docs/OBSERVABILITY.md.
inline constexpr int kBenchSchemaVersion = 2;

/// Lower-cased, dash-separated identifier ("Figure 4" -> "figure-4").
std::string Slug(const std::string& s);

/// Run-level metadata stamped into every BENCH_<suite>.json this
/// reporter touches — enough to reproduce the run and to refuse
/// apples-to-oranges diffs (tools/bench_check.py compares config).
struct BenchMeta {
  std::string suite;       // "figs" | "ablations" — selects the file
  std::string binary;      // case-id prefix, e.g. "figure-4"
  std::string git_sha;     // build-time HEAD (RIPPLE_GIT_SHA)
  std::string build_type;  // CMAKE_BUILD_TYPE at configure time
  uint64_t seed = 0;       // master bench seed
  /// Scale knobs in effect (min_log_n, queries, ...), recorded so a
  /// baseline diff against a differently-scaled run fails loudly.
  std::vector<std::pair<std::string, double>> config;
};

/// Collects benchmark results as (case id -> metric name -> value) and
/// writes them into a schema-versioned, machine-readable
/// `BENCH_<suite>.json`, merging with cases other binaries already wrote
/// there (each binary owns the id prefix `<binary>/`). This is the one
/// sanctioned path for bench result emission — tools/lint_deprecated.sh
/// rejects raw fprintf-to-CSV elsewhere — and the document it writes is
/// the perf trajectory tools/bench_check.py gates regressions against.
class BenchReporter {
 public:
  explicit BenchReporter(BenchMeta meta) : meta_(std::move(meta)) {}

  const BenchMeta& meta() const { return meta_; }

  /// Records one metric of one case. The full case id is
  /// `<binary>/<case_id>`; re-adding a metric overwrites it.
  void AddMetric(const std::string& case_id, const std::string& metric,
                 double value);

  /// All cases recorded so far, keyed by full id.
  const std::map<std::string, std::map<std::string, double>>& cases() const {
    return cases_;
  }

  /// The standalone JSON document for this reporter's cases only.
  std::string ToJson() const;

  /// Reads `<dir>/BENCH_<suite>.json` if present, replaces every case
  /// under this binary's prefix with ours, keeps other binaries' cases,
  /// and rewrites the file (meta is stamped fresh). An unparseable
  /// existing file is overwritten rather than failing the bench.
  Status WriteMerged(const std::string& dir) const;

  /// `<dir>/BENCH_<suite>.json`.
  static std::string FilePath(const std::string& dir,
                              const std::string& suite);

  /// Writes one result panel as CSV to
  /// `<dir>/<suite>/<binary>-<slug(title)>.csv` (directories created),
  /// one row per x value, one column per series — the plotting-friendly
  /// sibling of the JSON cases.
  Status WritePanelCsv(const std::string& dir, const std::string& title,
                       const std::string& x_label,
                       const std::vector<std::string>& x_values,
                       const std::vector<std::string>& series_names,
                       const std::vector<std::vector<double>>& series_values)
      const;

 private:
  std::string JsonDocument(
      const std::vector<std::pair<std::string, std::string>>& foreign_cases)
      const;

  BenchMeta meta_;
  std::map<std::string, std::map<std::string, double>> cases_;
};

}  // namespace ripple::obs

#endif  // RIPPLE_OBS_BENCH_REPORT_H_
