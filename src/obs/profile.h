#ifndef RIPPLE_OBS_PROFILE_H_
#define RIPPLE_OBS_PROFILE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ripple::obs {

/// What one peer did while queries ran through it. The counters mirror
/// the QueryStats cost model (messages/tuples are charged at the sender,
/// exactly where stats.messages is charged), so summing a field across
/// peers cross-checks the per-query accounting; on top of that the
/// profiler adds what QueryStats cannot express: WHERE the load landed,
/// retransmission pressure, per-peer fan-out and real CPU time.
struct PeerLoad {
  /// Query activations handled (engine visits / async sessions). The sum
  /// over peers equals QueryStats::peers_visited summed over queries.
  uint64_t spans = 0;
  /// Messages received: query forwards, state responses, answers, acks.
  uint64_t messages_in = 0;
  /// Messages sent. The sum over peers equals QueryStats::messages.
  uint64_t messages_out = 0;
  /// Tuples carried by messages this peer received / sent. The sent sum
  /// equals QueryStats::tuples_shipped.
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  /// Bytes of encoded wire frames this peer received / sent (docs/WIRE.md).
  /// Charged alongside messages_in/out; the sent sum equals
  /// QueryStats::bytes_on_wire summed over queries.
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  /// Retransmissions this peer issued (fault layer; 0 on perfect nets).
  uint64_t retransmissions = 0;
  /// High-water mark of simultaneously outstanding forwards at this peer
  /// (fast phase: relevant links contacted at once; slow phase: 1).
  uint64_t queue_depth_hwm = 0;
  /// Point-routing hops forwarded through this peer (overlay bootstrap
  /// traffic: joins, seeded initiations).
  uint64_t route_hops = 0;
  /// Wall-clock CPU spent in policy code attributed to this peer, via
  /// ScopedTimer on a steady clock. The seed only counted logical hops;
  /// this is the real-time cost of the local computations.
  uint64_t cpu_ns = 0;

  PeerLoad& operator+=(const PeerLoad& o);
};

/// Distribution summary of one load metric across peers — the paper's
/// congestion metric reports the mean; these expose the skew the mean
/// hides (Figures 4-12 argue about load distributions, not scalars).
struct SkewStats {
  size_t peers = 0;        // peers the profiler tracked (incl. idle)
  size_t active = 0;       // peers with a non-zero value
  uint64_t total = 0;
  double mean = 0.0;       // total / peers
  uint64_t max = 0;
  uint32_t max_peer = 0;   // arg-max peer id
  /// max/mean; 1.0 = perfectly balanced, >> 1 = hotspots. 0 when idle.
  double peak_to_mean = 0.0;
  /// Gini coefficient in [0, 1): 0 = all peers equally loaded, -> 1 as
  /// the load concentrates on a vanishing fraction of peers.
  double gini = 0.0;
  double idle_fraction = 0.0;

  std::string ToString() const;
};

/// Computes SkewStats over a dense per-peer load vector (index == peer).
SkewStats ComputeSkew(const std::vector<uint64_t>& loads);

/// One row of the hotspot table: a peer and its full load record.
struct Hotspot {
  uint32_t peer = 0;
  PeerLoad load;
};

/// Per-peer load accounting across one or many query executions.
///
/// Not thread-safe by itself (one profiler per query stream, like
/// Tracer); the *feeding* counters in metrics.h are atomic so a future
/// threaded engine can keep one Profiler per worker and Merge() them.
/// All record paths are no-ops through a null pointer test at the call
/// sites, so an unattached profiler costs nothing.
class Profiler {
 public:
  /// Peer ids are dense (vector-backed overlays), so loads are a dense
  /// vector too; it grows on demand.
  void OnSpan(uint32_t peer) { At(peer).spans += 1; }
  void OnMessage(uint32_t from, uint32_t to, uint64_t tuples,
                 uint64_t bytes = 0) {
    OnMessageOut(from, tuples, bytes);
    OnMessageIn(to, tuples, bytes);
  }
  /// One-sided charges, for edges whose other end is not an overlay peer
  /// (e.g. a live client's synthetic id — indexing it into the dense
  /// per-peer vector would try to allocate 2^31 PeerLoad slots).
  void OnMessageOut(uint32_t from, uint64_t tuples, uint64_t bytes = 0) {
    PeerLoad& f = At(from);
    f.messages_out += 1;
    f.tuples_out += tuples;
    f.bytes_out += bytes;
  }
  void OnMessageIn(uint32_t to, uint64_t tuples, uint64_t bytes = 0) {
    PeerLoad& t = At(to);
    t.messages_in += 1;
    t.tuples_in += tuples;
    t.bytes_in += bytes;
  }
  void OnRetransmission(uint32_t peer) { At(peer).retransmissions += 1; }
  void OnQueueDepth(uint32_t peer, uint64_t depth) {
    PeerLoad& l = At(peer);
    if (depth > l.queue_depth_hwm) l.queue_depth_hwm = depth;
  }
  void OnRouteHop(uint32_t from, uint32_t to) {
    At(from).route_hops += 1;
    OnMessage(from, to, 0);
  }
  void AddCpuNs(uint32_t peer, uint64_t ns) { At(peer).cpu_ns += ns; }

  /// Declares `peers` tracked even if idle, so idle_fraction and Gini
  /// denominators cover the whole overlay, not just touched peers.
  void SetPeerUniverse(size_t peers) {
    if (peers > loads_.size()) loads_.resize(peers);
  }

  size_t peer_count() const { return loads_.size(); }
  const PeerLoad& load(uint32_t peer) const;
  const std::vector<PeerLoad>& loads() const { return loads_; }

  /// Aggregates every tracked peer into one PeerLoad.
  PeerLoad Totals() const;

  /// Skew of one metric across all tracked peers, e.g.
  /// `profiler.Skew(&PeerLoad::spans)`.
  SkewStats Skew(uint64_t PeerLoad::* field) const;

  /// The `n` most loaded peers by `field`, descending (ties by peer id).
  std::vector<Hotspot> TopN(uint64_t PeerLoad::* field, size_t n) const;

  void Merge(const Profiler& other);
  void Clear() { loads_.clear(); }

  /// Human-readable skew table (spans / messages / cpu), for logs.
  std::string Summary() const;

  /// Process-wide profiler the overlay routers feed (bootstrap routing
  /// happens deep inside Join()/SeededTopK where no engine profiler is
  /// in scope). Off unless EnableGlobal(true); the disabled hot path is
  /// one relaxed atomic load, same contract as Registry::Global().
  static Profiler& Global();
  static bool GlobalEnabled() {
    return g_global_enabled.load(std::memory_order_relaxed);
  }
  static void EnableGlobal(bool on) {
    g_global_enabled.store(on, std::memory_order_relaxed);
  }

  /// Serializes feeds into Global() (the dense PeerLoad vector resizes;
  /// it cannot be atomic). Executor workers route bootstrap traffic
  /// concurrently, so the routing hook locks this; per-engine profilers
  /// stay single-threaded by construction and never take it.
  static std::mutex& GlobalMutex();

 private:
  PeerLoad& At(uint32_t peer) {
    if (peer >= loads_.size()) loads_.resize(peer + 1);
    return loads_[peer];
  }

  static std::atomic<bool> g_global_enabled;
  std::vector<PeerLoad> loads_;
};

/// Charges wall-clock time on a steady clock to one peer's cpu_ns for
/// the scope's lifetime. A null profiler disarms it (no clock reads).
class ScopedTimer {
 public:
  ScopedTimer(Profiler* profiler, uint32_t peer)
      : profiler_(profiler), peer_(peer) {
    if (profiler_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (profiler_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_);
      profiler_->AddCpuNs(peer_, static_cast<uint64_t>(ns.count()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler* profiler_;
  uint32_t peer_;
  std::chrono::steady_clock::time_point start_{};
};

/// Hook for the overlays' point-routing loops: one forwarding hop
/// `from -> to`. Feeds the global profiler; no-op unless enabled.
/// (The `overlay` tag matches RecordRouteHops and exists for symmetry /
/// future per-overlay splits.)
inline void RecordRouteStep(const char* overlay, uint32_t from, uint32_t to) {
  (void)overlay;
  if (!Profiler::GlobalEnabled()) return;
  std::lock_guard<std::mutex> lock(Profiler::GlobalMutex());
  Profiler::Global().OnRouteHop(from, to);
}

// Declared in obs/metrics.h; re-declared here so RouteRecorder stays
// header-only without dragging the metrics registry into every router.
void RecordRouteHops(const char* overlay, uint64_t hops);

/// The bootstrap-routing observability pattern shared by all overlay
/// routers (MIDAS, CAN, Chord, BATON): record every forwarding hop into
/// the gated global profiler and the caller's optional `path`, then the
/// hop total on arrival. Routing loops read
///
///   current = rec.Step(current, next);   // one forward
///   ...
///   return rec.Arrive(current, hops);    // destination reached
class RouteRecorder {
 public:
  /// `overlay` tags the metrics ("<overlay>.route.*"); `path` (optional)
  /// receives the forwarding peers in order, destination excluded.
  RouteRecorder(const char* overlay, std::vector<uint32_t>* path)
      : overlay_(overlay), path_(path) {}

  /// Records the hop `from -> to` and returns `to`.
  uint32_t Step(uint32_t from, uint32_t to) {
    if (path_ != nullptr) path_->push_back(from);
    RecordRouteStep(overlay_, from, to);
    ++hops_;
    return to;
  }

  /// Reports the completed route: writes the hop count through `hops`
  /// (when provided) and into the global metrics, returns the destination.
  uint32_t Arrive(uint32_t at, uint64_t* hops) const {
    if (hops != nullptr) *hops = hops_;
    RecordRouteHops(overlay_, hops_);
    return at;
  }

  uint64_t hops() const { return hops_; }

 private:
  const char* overlay_;
  std::vector<uint32_t>* path_;
  uint64_t hops_ = 0;
};

}  // namespace ripple::obs

#endif  // RIPPLE_OBS_PROFILE_H_
