#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ripple::obs {

double NearestRankPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  const double n = static_cast<double>(sorted.size());
  size_t rank = static_cast<size_t>(std::ceil(clamped / 100.0 * n));
  if (rank < 1) rank = 1;                // p = 0 -> minimum
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

Histogram::Histogram(std::vector<double> bounds) {
  bounds_ = bounds.empty() ? DefaultBounds() : std::move(bounds);
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::DefaultBounds() {
  std::vector<double> b;
  for (double v = 1.0; v <= 65536.0; v *= 2.0) b.push_back(v);
  return b;
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<size_t>(it - bounds_.begin())] += 1;
  if (!samples_.empty() && v < samples_.back()) sorted_ = false;
  samples_.push_back(v);
  count_ += 1;
  sum_ += v;
}

double Histogram::min() const {
  if (samples_.empty()) return 0.0;
  if (sorted_) return samples_.front();
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  if (samples_.empty()) return 0.0;
  if (sorted_) return samples_.back();
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::Percentile(double p) const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return NearestRankPercentile(samples_, p);
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%g p90=%g p99=%g max=%g",
                static_cast<unsigned long long>(count_), mean(),
                Percentile(50), Percentile(90), Percentile(99), max());
  return buf;
}

Counter& Registry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::string Registry::Summary() const {
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "counter %s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "gauge %s = %g\n", name.c_str(),
                  g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf), "histogram %s: %s\n", name.c_str(),
                  h->Summary().c_str());
    out += buf;
  }
  return out;
}

std::atomic<bool> Registry::g_global_enabled{false};

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked: process lifetime
  return *registry;
}

void RecordRouteHops(const char* overlay, uint64_t hops) {
  if (!Registry::GlobalEnabled()) return;
  Registry& r = Registry::Global();
  const std::string prefix(overlay);
  r.GetCounter(prefix + ".route.calls").Inc();
  r.GetHistogram(prefix + ".route.hops").Observe(static_cast<double>(hops));
}

}  // namespace ripple::obs
