#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/kernel_counters.h"

namespace ripple::obs {

double NearestRankPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  const double n = static_cast<double>(sorted.size());
  size_t rank = static_cast<size_t>(std::ceil(clamped / 100.0 * n));
  if (rank < 1) rank = 1;                // p = 0 -> minimum
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

Histogram::Histogram(std::vector<double> bounds) {
  bounds_ = bounds.empty() ? DefaultBounds() : std::move(bounds);
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
}

Histogram::Histogram(const Histogram& o) : bounds_(o.bounds_) {
  buckets_ = std::vector<std::atomic<uint64_t>>(o.buckets_.size());
  for (size_t i = 0; i < o.buckets_.size(); ++i) {
    buckets_[i].store(o.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  count_.store(o.count(), std::memory_order_relaxed);
  sum_.store(o.sum(), std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(o.samples_mu_);
  samples_ = o.samples_;
  sorted_ = o.sorted_;
}

Histogram& Histogram::operator=(const Histogram& o) {
  if (this == &o) return *this;
  Histogram copy(o);
  bounds_ = std::move(copy.bounds_);
  buckets_ = std::move(copy.buckets_);
  count_.store(copy.count(), std::memory_order_relaxed);
  sum_.store(copy.sum(), std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(samples_mu_);
  samples_ = std::move(copy.samples_);
  sorted_ = copy.sorted_;
  return *this;
}

std::vector<double> Histogram::DefaultBounds() {
  std::vector<double> b;
  for (double v = 1.0; v <= 65536.0; v *= 2.0) b.push_back(v);
  return b;
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
  std::lock_guard<std::mutex> lock(samples_mu_);
  if (!samples_.empty() && v < samples_.back()) sorted_ = false;
  samples_.push_back(v);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(samples_mu_);
  if (samples_.empty()) return 0.0;
  if (sorted_) return samples_.front();
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(samples_mu_);
  if (samples_.empty()) return 0.0;
  if (sorted_) return samples_.back();
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(samples_mu_);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return NearestRankPercentile(samples_, p);
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%g p90=%g p99=%g max=%g",
                static_cast<unsigned long long>(count()), mean(),
                Percentile(50), Percentile(90), Percentile(99), max());
  return buf;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::vector<std::pair<std::string, uint64_t>> Registry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::GaugeValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::string Registry::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "counter %s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "gauge %s = %g\n", name.c_str(),
                  g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf), "histogram %s: %s\n", name.c_str(),
                  h->Summary().c_str());
    out += buf;
  }
  return out;
}

std::atomic<bool> Registry::g_global_enabled{false};

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked: process lifetime
  return *registry;
}

void RecordRouteHops(const char* overlay, uint64_t hops) {
  if (!Registry::GlobalEnabled()) return;
  Registry& r = Registry::Global();
  const std::string prefix(overlay);
  r.GetCounter(prefix + ".route.calls").Inc();
  r.GetHistogram(prefix + ".route.hops").Observe(static_cast<double>(hops));
}

void FlushKernelCounters() {
  KernelCounters& kc = LocalKernelCounters();
  if (Registry::GlobalEnabled()) {
    Registry& r = Registry::Global();
    if (kc.tuples_scanned != 0) {
      r.GetCounter("kernel.tuples_scanned").Inc(kc.tuples_scanned);
    }
    if (kc.dominance_cmps != 0) {
      r.GetCounter("kernel.dominance_cmps").Inc(kc.dominance_cmps);
    }
    if (kc.heap_pushes != 0) {
      r.GetCounter("kernel.heap_pushes").Inc(kc.heap_pushes);
    }
  }
  kc = KernelCounters{};
}

}  // namespace ripple::obs
