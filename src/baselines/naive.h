#ifndef RIPPLE_BASELINES_NAIVE_H_
#define RIPPLE_BASELINES_NAIVE_H_

#include <vector>

#include "queries/topk.h"
#include "ripple/policy.h"

namespace ripple {

/// The naive broadcast strategy of the paper's introduction: flood the
/// query to the entire network; every peer transmits its local top-k
/// (using only local knowledge, nothing can be pruned) and the initiator
/// merges. Implemented as a RIPPLE policy with no state and no pruning and
/// executed with r = 0, which makes the engine perform exactly a broadcast
/// along the overlay's partition tree with diameter-optimal latency.
class NaiveTopKPolicy {
 public:
  using Query = TopKQuery;
  struct Empty {};
  using LocalState = Empty;
  using GlobalState = Empty;
  using Answer = TupleVec;

  GlobalState InitialGlobalState(const Query&) const { return {}; }
  LocalState ComputeLocalState(const LocalStore&, const Query&,
                               const GlobalState&) const {
    return {};
  }
  GlobalState ComputeGlobalState(const Query&, const GlobalState&,
                                 const LocalState&) const {
    return {};
  }
  void MergeLocalStates(const Query&, LocalState*,
                        const std::vector<LocalState>&) const {}

  /// Each peer ships its local top-k — the k-tuples-per-peer overhead the
  /// paper calls out.
  Answer ComputeLocalAnswer(const LocalStore& store, const Query& q,
                            const LocalState&) const {
    return store.TopKAbove(*q.scorer, q.k,
                           -std::numeric_limits<double>::infinity());
  }

  template <typename Area>
  bool IsLinkRelevant(const Query&, const GlobalState&, const Area&) const {
    return true;  // broadcast: nothing is ever pruned
  }
  template <typename Area>
  double LinkPriority(const Query&, const Area&) const {
    return 0.0;
  }

  size_t StateTupleCount(const LocalState&) const { return 0; }
  size_t GlobalStateTupleCount(const GlobalState&) const { return 0; }
  size_t AnswerTupleCount(const Answer& a) const { return a.size(); }

  void MergeAnswer(Answer* acc, Answer&& local, const Query&) const {
    acc->insert(acc->end(), std::make_move_iterator(local.begin()),
                std::make_move_iterator(local.end()));
  }
  void FinalizeAnswer(Answer* acc, const Query& q) const {
    *acc = SelectTopK(std::move(*acc),
                      [&](const Point& p) { return q.scorer->Score(p); },
                      q.k);
  }

  // Wire codecs: the query is a TopKQuery — reuse its codec so both
  // policies put identical query bytes on the wire; states are empty.
  void EncodeQuery(const Query& q, wire::Buffer* buf) const {
    TopKPolicy{}.EncodeQuery(q, buf);
  }
  bool DecodeQuery(wire::Reader* r, Query* out) const {
    return TopKPolicy{}.DecodeQuery(r, out);
  }
  void EncodeState(const Empty&, wire::Buffer*) const {}
  bool DecodeState(wire::Reader* r, Empty*) const { return r->ok(); }
  void EncodeAnswer(const Answer& a, wire::Buffer* buf) const {
    EncodeTupleVec(a, buf);
  }
  bool DecodeAnswer(wire::Reader* r, Answer* out) const {
    return DecodeTupleVec(r, out);
  }
};

static_assert(QueryPolicy<NaiveTopKPolicy, Rect>);

}  // namespace ripple

#endif  // RIPPLE_BASELINES_NAIVE_H_
