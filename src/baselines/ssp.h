#ifndef RIPPLE_BASELINES_SSP_H_
#define RIPPLE_BASELINES_SSP_H_

#include "net/metrics.h"
#include "overlay/baton/baton.h"
#include "store/tuple.h"

namespace ripple {

/// Result of an SSP skyline computation.
struct SspResult {
  TupleVec skyline;
  QueryStats stats;
  int waves = 0;
};

/// SSP — Skyline Space Partitioning (Wang et al., ICDE 2007) over BATON,
/// as described in the paper's Section 2.2. The multi-dimensional space is
/// mapped to one-dimensional keys with a Z-curve (a BATON limitation the
/// paper calls out). Processing starts at the peer owning the region that
/// contains the origin of the data space; it computes its local skyline
/// and uses the most dominating point to prune peers whose entire region
/// is dominated. The querying peer then contacts the surviving peers in
/// parallel waves, gathering local skylines and re-pruning between waves.
///
/// Because peer regions are Z-curve intervals rather than boxes, pruning
/// tests run over each region's rectangle decomposition — the source of
/// the false positives the paper attributes to SSP.
SspResult RunSspSkyline(const BatonOverlay& overlay, PeerId initiator);

}  // namespace ripple

#endif  // RIPPLE_BASELINES_SSP_H_
