#ifndef RIPPLE_BASELINES_DIV_BASELINE_H_
#define RIPPLE_BASELINES_DIV_BASELINE_H_

#include <optional>

#include "overlay/can/can.h"
#include "queries/diversify_driver.h"

namespace ripple {

/// The diversification baseline of the paper's Section 7.1: the streaming
/// incremental diversification of Minack et al. [12], adapted to a
/// distributed setting over CAN. Each single-tuple step floods the whole
/// network: every peer streams its local tuples through the phi scorer and
/// replies with its best candidate; the initiator keeps the minimum.
///
/// Plugged into the same greedy driver (Algorithms 22/23) as the
/// RIPPLE-based service, so both methods produce identical result sets and
/// the metrics isolate pure processing cost — the paper's methodology.
class CanFloodDivService : public SingleTupleService {
 public:
  CanFloodDivService(const CanOverlay* overlay, PeerId initiator)
      : overlay_(overlay), initiator_(initiator) {}

  std::optional<Tuple> FindBest(const DivQuery& query, double tau,
                                QueryStats* stats,
                                net::Coverage* coverage = nullptr) override;

 private:
  const CanOverlay* overlay_;
  PeerId initiator_;
};

}  // namespace ripple

#endif  // RIPPLE_BASELINES_DIV_BASELINE_H_
