#include "baselines/ssp.h"

#include <algorithm>

#include "geom/dominance.h"
#include "net/frame_cost.h"
#include "queries/skyline.h"
#include "store/local_algos.h"
#include "store/wire.h"

namespace ripple {

namespace {

/// A region (union of rectangles) is prunable when every rectangle is
/// fully dominated by some skyline point.
bool RegionDominated(const TupleVec& sky, const std::vector<Rect>& region) {
  if (region.empty()) return false;
  for (const Rect& r : region) {
    bool rect_dominated = false;
    for (const Tuple& s : sky) {
      if (DominatesRect(s.key, r)) {
        rect_dominated = true;
        break;
      }
    }
    if (!rect_dominated) return false;
  }
  return true;
}

}  // namespace

SspResult RunSspSkyline(const BatonOverlay& overlay, PeerId initiator) {
  SspResult result;
  QueryStats& stats = result.stats;

  // The query starts at the peer responsible for the region containing the
  // origin of the data space (Z-key 0).
  uint64_t route_hops = 0;
  const PeerId start = overlay.RouteToKey(initiator, 0, &route_hops);
  stats.latency_hops += route_hops;
  stats.messages += route_hops;
  stats.peers_visited += route_hops + 1;  // path peers plus the start peer
  stats.bytes_on_wire += route_hops * net::kBareFrameBytes;

  // The start peer's local skyline seeds the global set; its points (led
  // by the most dominating one) define the pruned search space. We prune
  // with the full seed skyline — a superset of most-dominating-point
  // pruning.
  TupleVec sky = overlay.GetPeer(start).store.LocalSkyline();

  std::vector<PeerId> pending;
  pending.reserve(overlay.NumPeers());
  for (PeerId id = 0; id < overlay.NumPeers(); ++id) {
    if (id != start) pending.push_back(id);
  }

  while (!pending.empty()) {
    // Prune peers whose entire region is dominated by the current skyline
    // (tested against the bounded min-sum subset — sound).
    const TupleVec dominators =
        SelectDominators(sky, SkylineState::kMaxDominators);
    std::vector<PeerId> wave;
    for (PeerId id : pending) {
      if (!RegionDominated(dominators, overlay.RegionOf(id))) {
        wave.push_back(id);
      }
    }
    if (wave.empty()) break;
    ++result.waves;

    // Query the wave in parallel from the start peer; gather local
    // skylines. Wave latency is the longest forwarding path.
    uint64_t wave_latency = 0;
    for (PeerId id : wave) {
      uint64_t hops = 0;
      const PeerId arrived =
          overlay.RouteToKey(start, overlay.GetPeer(id).range_lo, &hops);
      (void)arrived;
      stats.messages += hops;       // query forwards along the path
      stats.peers_visited += hops;  // forwarding peers plus the target
      stats.bytes_on_wire += hops * net::kBareFrameBytes;
      wave_latency = std::max(wave_latency, hops);
      const TupleVec local_sky = overlay.GetPeer(id).store.LocalSkyline();
      if (!local_sky.empty()) {
        stats.messages += 1;  // reply to the querying peer
        stats.tuples_shipped += local_sky.size();
        stats.bytes_on_wire += net::MeasureFrameBytes(
            net::MessageKind::kAnswer,
            [&](wire::Buffer* buf) { EncodeTupleVec(local_sky, buf); });
        sky = MergeSkylines(std::move(sky), local_sky);
      }
    }
    stats.latency_hops += wave_latency;

    // Anything already queried leaves the pending set; peers pruned by the
    // enriched skyline will be dropped on the next iteration (pruning only
    // grows with the skyline, so the loop ends after this pass).
    std::vector<uint8_t> queried(overlay.NumPeers(), 0);
    for (PeerId id : wave) queried[id] = 1;
    std::vector<PeerId> still_pending;
    for (PeerId id : pending) {
      if (!queried[id]) still_pending.push_back(id);
    }
    pending = std::move(still_pending);
  }

  result.skyline = std::move(sky);
  return result;
}

}  // namespace ripple
