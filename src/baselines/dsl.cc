#include "baselines/dsl.h"

#include <algorithm>
#include <queue>

#include "geom/dominance.h"
#include "net/frame_cost.h"
#include "queries/skyline.h"
#include "store/local_algos.h"
#include "store/wire.h"

namespace ripple {

namespace {

/// Wire cost of one DSL message carrying a tuple set (the DSL skyline
/// query itself has no parameters, so payloads are all tuples).
uint64_t TupleFrameBytes(net::MessageKind kind, const TupleVec& tuples) {
  return net::MeasureFrameBytes(
      kind, [&](wire::Buffer* buf) { EncodeTupleVec(tuples, buf); });
}

/// True when `s` contains a point dominating the entire zone.
bool ZoneDominated(const TupleVec& s, const Rect& zone) {
  for (const Tuple& t : s) {
    if (DominatesRect(t.key, zone)) return true;
  }
  return false;
}

/// Upper neighbors: the neighbor's zone abuts this zone on the hi side of
/// the (single) abutting dimension — the direction the DSL hierarchy grows.
bool IsUpperNeighbor(const Rect& mine, const Rect& other) {
  for (int d = 0; d < mine.dims(); ++d) {
    if (other.lo()[d] == mine.hi()[d]) return true;
    if (other.hi()[d] == mine.lo()[d]) return false;
  }
  return false;
}

}  // namespace

DslResult RunDslSkyline(const CanOverlay& overlay, PeerId initiator) {
  DslResult result;
  QueryStats& stats = result.stats;

  // Phase 1: route the query to the peer owning the origin of the domain.
  const Point origin = overlay.domain().lo();
  uint64_t route_hops = 0;
  const PeerId root = overlay.RouteFrom(initiator, origin, &route_hops);
  stats.latency_hops += route_hops;
  stats.messages += route_hops;
  stats.peers_visited += route_hops;  // forwarding peers handle the query
  stats.bytes_on_wire += route_hops * net::kBareFrameBytes;

  // Phase 2: breadth-first multicast waves from the root.
  struct Incoming {
    TupleVec points;
    uint64_t wave = 0;
    bool reached = false;
    bool processed = false;
  };
  std::vector<Incoming> state;
  // Peer ids may be sparse; size by the max live id + 1.
  PeerId max_id = 0;
  for (PeerId id : overlay.LivePeers()) max_id = std::max(max_id, id);
  state.resize(max_id + 1);

  std::priority_queue<std::pair<uint64_t, PeerId>,
                      std::vector<std::pair<uint64_t, PeerId>>,
                      std::greater<>>
      queue;
  state[root].reached = true;
  state[root].wave = 0;
  queue.emplace(0, root);
  uint64_t max_wave = 0;

  while (!queue.empty()) {
    const auto [wave, id] = queue.top();
    queue.pop();
    if (state[id].processed) continue;
    state[id].processed = true;
    stats.peers_visited += 1;
    max_wave = std::max(max_wave, wave);

    const auto& peer = overlay.GetPeer(id);
    // Merge the local skyline with everything received so far (the inbox
    // is folded into a skyline on arrival).
    TupleVec local_sky = peer.store.LocalSkyline();
    const TupleVec merged = MergeSkylines(local_sky, state[id].points);

    // The local contribution: local skyline points that survive the merge.
    TupleVec contribution;
    for (const Tuple& t : local_sky) {
      const auto it = std::lower_bound(
          merged.begin(), merged.end(), t.id,
          [](const Tuple& m, uint64_t v) { return m.id < v; });
      if (it != merged.end() && it->id == t.id) contribution.push_back(t);
    }
    if (!contribution.empty()) {
      stats.messages += 1;  // answer delivery to the initiator
      stats.tuples_shipped += contribution.size();
      stats.bytes_on_wire +=
          TupleFrameBytes(net::MessageKind::kAnswer, contribution);
      result.skyline = MergeSkylines(std::move(result.skyline),
                                     contribution);
    }

    // Forward the surviving local skyline points ("the local skyline
    // points are forwarded to the peers responsible for neighboring
    // regions" — §2.2) together with the bounded most-dominating subset of
    // everything known, so pruning power cascades without shipping
    // skyline-sized payloads per edge (at d = 10 the merged set holds
    // thousands of tuples; the dominator subset carries its full zone-
    // pruning strength in O(1) tuples).
    const TupleVec dominators =
        SelectDominators(merged, SkylineState::kMaxDominators);
    const TupleVec payload = MergeSkylines(contribution, dominators);
    const uint64_t payload_bytes =
        TupleFrameBytes(net::MessageKind::kQuery, payload);
    for (PeerId nb : peer.neighbors) {
      const auto& other = overlay.GetPeer(nb);
      if (!IsUpperNeighbor(peer.zone, other.zone)) continue;
      if (ZoneDominated(dominators, other.zone)) continue;  // pruned
      stats.messages += 1;
      stats.tuples_shipped += payload.size();
      stats.bytes_on_wire += payload_bytes;
      Incoming& in = state[nb];
      in.points = MergeSkylines(std::move(in.points), payload);
      if (!in.reached) {
        in.reached = true;
        in.wave = wave + 1;
        queue.emplace(wave + 1, nb);
      }
    }
  }

  stats.latency_hops += max_wave;
  std::sort(result.skyline.begin(), result.skyline.end(), TupleIdLess());
  return result;
}

}  // namespace ripple
