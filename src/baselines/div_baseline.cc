#include "baselines/div_baseline.h"

#include "net/frame_cost.h"
#include "queries/diversify.h"
#include "store/wire.h"

namespace ripple {

std::optional<Tuple> CanFloodDivService::FindBest(const DivQuery& query,
                                                  double tau,
                                                  QueryStats* stats,
                                                  net::Coverage*) {
  std::optional<Tuple> best;
  double best_phi = tau;
  uint64_t flood_messages = 0;
  uint64_t replies = 0;
  // Every flood forward carries the query; every reply carries one tuple.
  const uint64_t forward_bytes = net::MeasureFrameBytes(
      net::MessageKind::kQuery,
      [&](wire::Buffer* buf) { DivPolicy{}.EncodeQuery(query, buf); });
  uint64_t reply_bytes = 0;
  const uint64_t depth = overlay_->Flood(
      initiator_, [&](PeerId id, uint64_t) {
        stats->peers_visited += 1;
        if (id != initiator_) ++flood_messages;  // one forward reaches it
        // The peer streams its local tuples through phi and replies with
        // its best admissible candidate.
        const auto& store = overlay_->GetPeer(id).store;
        double phi = 0.0;
        auto cost = [&](const Point& p) { return query.Phi(p); };
        auto rect_lower = [&](const Rect& r) {
          return query.PhiLowerBound(r);
        };
        auto admit = [&](const Tuple& t) { return !query.IsExcluded(t.id); };
        const std::optional<Tuple> local =
            store.ArgMin(cost, rect_lower, admit, &phi);
        if (!local.has_value()) return;
        ++replies;
        stats->tuples_shipped += 1;
        reply_bytes += net::MeasureFrameBytes(
            net::MessageKind::kAnswer,
            [&](wire::Buffer* buf) { EncodeTuple(*local, buf); });
        if (phi < best_phi ||
            (best.has_value() && phi == best_phi && local->id < best->id)) {
          best_phi = phi;
          best = *local;
        }
      });
  stats->messages += flood_messages + replies;
  stats->bytes_on_wire += flood_messages * forward_bytes + reply_bytes;
  stats->latency_hops += depth;
  return best;
}

}  // namespace ripple
