#ifndef RIPPLE_BASELINES_DSL_H_
#define RIPPLE_BASELINES_DSL_H_

#include "net/metrics.h"
#include "overlay/can/can.h"
#include "store/tuple.h"

namespace ripple {

/// Result of a DSL skyline computation.
struct DslResult {
  TupleVec skyline;
  QueryStats stats;
};

/// DSL (Wu et al., EDBT 2006) over CAN, as described in the paper's
/// Section 2.2: the query is routed to the peer owning the domain origin,
/// which roots a multicast hierarchy. Each reached peer merges the skyline
/// points it received with its local skyline, forwards the merged set to
/// its not-yet-dominated "upper" neighbors (zones abutting its zone on the
/// greater side of some dimension), and sends its surviving local points
/// to the initiator. Peers whose whole zone is dominated are pruned.
/// Upper-neighbor forwarding keeps mutually non-dominating peers queried
/// in parallel; latency is the longest forwarding chain plus the initial
/// routing.
///
/// Simulation note: the hierarchy is executed as breadth-first waves; a
/// peer processes at its first arrival wave with everything received so
/// far (the real protocol waits for all predecessors — same reachability
/// and answer, slightly weaker pruning, no effect on correctness).
DslResult RunDslSkyline(const CanOverlay& overlay, PeerId initiator);

}  // namespace ripple

#endif  // RIPPLE_BASELINES_DSL_H_
