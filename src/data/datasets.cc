#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/zipf.h"

namespace ripple::data {

namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Gamma(shape, 1) via Marsaglia-Tsang, used for Dirichlet sampling.
double SampleGamma(double shape, Rng* rng) {
  RIPPLE_CHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boosting: Gamma(a) = Gamma(a + 1) * U^(1/a).
    const double u = std::max(rng->UniformDouble(), 1e-300);
    return SampleGamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng->Gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng->UniformDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

Point SampleDirichlet(const std::vector<double>& alpha, Rng* rng) {
  Point p(static_cast<int>(alpha.size()));
  double sum = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    p[static_cast<int>(i)] = SampleGamma(alpha[i], rng);
    sum += p[static_cast<int>(i)];
  }
  for (int i = 0; i < p.dims(); ++i) p[i] /= sum;
  return p;
}

}  // namespace

TupleVec MakeUniform(size_t n, int dims, Rng* rng) {
  TupleVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point p(dims);
    for (int d = 0; d < dims; ++d) p[d] = rng->UniformDouble();
    out.push_back(Tuple{i, p});
  }
  return out;
}

TupleVec MakeClusteredZipf(size_t n, int dims, size_t clusters, double skew,
                           double sigma, Rng* rng, double correlation) {
  RIPPLE_CHECK(clusters >= 1);
  RIPPLE_CHECK(correlation >= 0.0 && correlation <= 1.0);
  std::vector<Point> centers;
  centers.reserve(clusters);
  for (size_t c = 0; c < clusters; ++c) {
    const double base = rng->UniformDouble();
    Point p(dims);
    for (int d = 0; d < dims; ++d) {
      p[d] = correlation * base + (1.0 - correlation) * rng->UniformDouble();
    }
    centers.push_back(p);
  }
  ZipfSampler zipf(clusters, skew);
  TupleVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point& c = centers[zipf.Sample(rng)];
    Point p(dims);
    for (int d = 0; d < dims; ++d) {
      p[d] = Clamp01(c[d] + rng->Gaussian(0.0, sigma));
    }
    out.push_back(Tuple{i, p});
  }
  return out;
}

TupleVec MakeCorrelated(size_t n, int dims, Rng* rng) {
  TupleVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double base = rng->UniformDouble();
    Point p(dims);
    for (int d = 0; d < dims; ++d) {
      p[d] = Clamp01(base + rng->Gaussian(0.0, 0.05));
    }
    out.push_back(Tuple{i, p});
  }
  return out;
}

TupleVec MakeAnticorrelated(size_t n, int dims, Rng* rng) {
  TupleVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Points near the hyperplane sum = dims/2, spread across it so that
    // attributes trade off against each other.
    Point p(dims);
    double sum = 0.0;
    for (int d = 0; d < dims; ++d) {
      p[d] = rng->UniformDouble();
      sum += p[d];
    }
    const double target = 0.5 * dims + rng->Gaussian(0.0, 0.05 * dims);
    const double shift = (target - sum) / dims;
    for (int d = 0; d < dims; ++d) p[d] = Clamp01(p[d] + shift);
    out.push_back(Tuple{i, p});
  }
  return out;
}

TupleVec MakeNbaLike(size_t n, int dims, Rng* rng) {
  // Latent per-player skill plus per-stat log-normal noise. Stat ceilings
  // mimic per-game ranges (points, rebounds, assists, steals, blocks,
  // minutes); only the first `dims` are used.
  static constexpr double kCeil[kMaxDims] = {36.0, 16.0, 11.0, 2.5,
                                             3.5,  42.0, 10.0, 10.0,
                                             10.0, 10.0};
  // How strongly each stat couples to overall skill.
  static constexpr double kSkillWeight[kMaxDims] = {0.85, 0.6, 0.55, 0.5,
                                                    0.45, 0.9, 0.5,  0.5,
                                                    0.5,  0.5};
  TupleVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Skill: logistic of a Gaussian — most players average, few elite.
    const double skill = 1.0 / (1.0 + std::exp(-rng->Gaussian(-0.8, 1.1)));
    Point p(dims);
    for (int d = 0; d < dims; ++d) {
      const double coupling = kSkillWeight[d];
      const double level =
          coupling * skill + (1.0 - coupling) * rng->UniformDouble();
      const double noise = std::exp(rng->Gaussian(0.0, 0.35));
      const double stat = std::min(level * noise, 1.0) * kCeil[d];
      // Orientation: 0 = best (stat at ceiling), 1 = worst.
      p[d] = Clamp01(1.0 - stat / kCeil[d]);
    }
    out.push_back(Tuple{i, p});
  }
  return out;
}

TupleVec MakeMirflickrLike(size_t n, int dims, Rng* rng) {
  // A Dirichlet mixture: cluster centers are themselves Dirichlet(1) draws
  // ("image types" with distinct edge-orientation profiles); members
  // concentrate around their center.
  const size_t kClusters = std::max<size_t>(8, n / 2000);
  const double kConcentration = 60.0;
  std::vector<std::vector<double>> cluster_alpha;
  cluster_alpha.reserve(kClusters);
  const std::vector<double> unit_alpha(dims, 1.0);
  for (size_t c = 0; c < kClusters; ++c) {
    const Point center = SampleDirichlet(unit_alpha, rng);
    std::vector<double> alpha(dims);
    for (int d = 0; d < dims; ++d) {
      alpha[d] = std::max(center[d] * kConcentration, 0.05);
    }
    cluster_alpha.push_back(std::move(alpha));
  }
  TupleVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& alpha = cluster_alpha[rng->UniformU64(kClusters)];
    out.push_back(Tuple{i, SampleDirichlet(alpha, rng)});
  }
  return out;
}

TupleVec MakeByName(const std::string& name, size_t n, int dims, Rng* rng) {
  if (name == "uniform") return MakeUniform(n, dims, rng);
  if (name == "synth") {
    // The paper's SYNTH: cluster count scales with n (50k centers for 1M
    // tuples), skew 0.1, attribute correlation 0.65 (see MakeClusteredZipf
    // on why the correlation is required to match the paper's Figure 8).
    const size_t clusters = std::max<size_t>(1, n / 20);
    return MakeClusteredZipf(n, dims, clusters, 0.1, 0.05, rng, 0.65);
  }
  if (name == "correlated") return MakeCorrelated(n, dims, rng);
  if (name == "anticorrelated") return MakeAnticorrelated(n, dims, rng);
  if (name == "nba") return MakeNbaLike(n, dims, rng);
  if (name == "mirflickr") return MakeMirflickrLike(n, dims, rng);
  RIPPLE_CHECK(false && "unknown dataset name");
  return {};
}

}  // namespace ripple::data
