#ifndef RIPPLE_DATA_DATASETS_H_
#define RIPPLE_DATA_DATASETS_H_

#include <cstdint>

#include "common/rng.h"
#include "store/tuple.h"

namespace ripple::data {

/// All generators emit keys in [0,1]^dims with the library-wide convention
/// that SMALLER coordinates are BETTER (skyline minimization; top-k
/// benches use scorers with negative weights or nearest-anchor scoring).
/// Tuple ids are 0..n-1 and generation is deterministic given the Rng.

/// Independent uniform attributes.
TupleVec MakeUniform(size_t n, int dims, Rng* rng);

/// The paper's SYNTH recipe: clustered points around `clusters` centers;
/// cluster membership follows a Zipf distribution with the given skew
/// (paper: 50,000 centers, skew 0.1); points are Gaussian around their
/// center with `sigma` per-axis spread, clamped to the cube.
///
/// `correlation` in [0, 1] blends each center between a shared per-cluster
/// level and independent uniforms (center_d = c*base + (1-c)*u_d). The
/// paper's text does not state a correlation, but its Figure 8 congestion
/// (hundreds of relevant peers at d = 10) is only achievable when the
/// skyline stays sub-linear in the data — i.e. the attributes correlate;
/// with fully independent centers half the dataset is a skyline member at
/// d = 10 and every distributed method would have to touch nearly every
/// peer. The "synth" preset uses 0.65, which reproduces the reported
/// skyline scale (see EXPERIMENTS.md).
TupleVec MakeClusteredZipf(size_t n, int dims, size_t clusters, double skew,
                           double sigma, Rng* rng, double correlation = 0.0);

/// Standard skyline stress workloads (Börzsönyi et al.): correlated
/// attributes (tiny skyline) and anti-correlated attributes (huge skyline).
TupleVec MakeCorrelated(size_t n, int dims, Rng* rng);
TupleVec MakeAnticorrelated(size_t n, int dims, Rng* rng);

/// A synthetic stand-in for the paper's NBA dataset (22,000 six-attribute
/// per-game stat lines, 1946-2009): a correlated log-normal mixture with a
/// dense cloud of role players and a thin elite tail. Attributes are
/// normalized to [0,1] and ORIENTED so that 0 is the best (an "excellent"
/// stat maps near 0), preserving what drives top-k/skyline cost — strong
/// positive correlation between attributes and a small skyline of stars.
TupleVec MakeNbaLike(size_t n, int dims, Rng* rng);

/// A synthetic stand-in for MIRFLICKR MPEG-7 edge histogram descriptors
/// (five-bucket histograms, L1 metric): a Dirichlet mixture on the
/// probability simplex — vectors are non-negative and sum to 1, clustered
/// by "image type", reproducing the geometry diversification cost depends
/// on. `dims` is the histogram bucket count (paper: 5).
TupleVec MakeMirflickrLike(size_t n, int dims, Rng* rng);

/// Selects among the generators by name ("uniform", "synth", "correlated",
/// "anticorrelated", "nba", "mirflickr"); used by the bench harness.
TupleVec MakeByName(const std::string& name, size_t n, int dims, Rng* rng);

}  // namespace ripple::data

#endif  // RIPPLE_DATA_DATASETS_H_
