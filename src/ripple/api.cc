#include "ripple/api.h"

#include <cctype>
#include <cstdlib>

namespace ripple {

std::string RippleParam::ToString() const {
  if (is_auto()) return "auto";
  if (is_fast()) return "fast";
  if (is_slow()) return "slow";
  return std::to_string(hops_);
}

Result<RippleParam> RippleParam::Parse(const std::string& text) {
  if (text == "fast") return RippleParam::Fast();
  if (text == "slow") return RippleParam::Slow();
  if (text == "auto") return RippleParam::Auto();
  if (text.empty()) {
    return Status::InvalidArgument("empty ripple parameter");
  }
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(
          "ripple parameter must be 'fast', 'slow', 'auto' or a "
          "non-negative integer, got '" +
          text + "'");
    }
  }
  const long v = std::strtol(text.c_str(), nullptr, 10);
  if (v >= kSlowHops) return RippleParam::Slow();
  return RippleParam::Hops(static_cast<int>(v));
}

}  // namespace ripple
