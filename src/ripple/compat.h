#ifndef RIPPLE_RIPPLE_COMPAT_H_
#define RIPPLE_RIPPLE_COMPAT_H_

// DEPRECATED pre-QueryRequest entry points, kept as thin shims for exactly
// one PR so out-of-tree callers can migrate. Nothing in this repository
// may include this header or call ripple::compat::* — tools/
// lint_deprecated.sh fails the build on any in-tree use outside this file.
//
// Migration:
//   engine.Run(initiator, q, r)            -> engine.Run({.initiator = initiator,
//                                                         .query = q,
//                                                         .ripple = RippleParam::FromLegacy(r)})
//   engine.Run(initiator, q, r, state)     -> add .initial_state = state
//   kRippleSlow                            -> RippleParam::Slow()

#include <utility>

#include "ripple/api.h"

namespace ripple::compat {

/// The legacy "larger than any overlay depth" sentinel that used to mean
/// `slow`. New code writes RippleParam::Slow().
inline constexpr int kRippleSlow = 1 << 20;

/// Shim for the old `engine.Run(initiator, query, r)` overload. Works for
/// both Engine and AsyncEngine.
template <typename EngineT>
[[deprecated("build a QueryRequest and call engine.Run(request)")]]
typename EngineT::Result Run(const EngineT& engine, PeerId initiator,
                             const typename EngineT::Query& query, int r) {
  typename EngineT::Request request;
  request.initiator = initiator;
  request.query = query;
  request.ripple = RippleParam::FromLegacy(r);
  return engine.Run(request);
}

/// Shim for the old explicit-initial-state overload.
template <typename EngineT>
[[deprecated("build a QueryRequest and call engine.Run(request)")]]
typename EngineT::Result Run(const EngineT& engine, PeerId initiator,
                             const typename EngineT::Query& query, int r,
                             typename EngineT::GlobalState initial_state) {
  typename EngineT::Request request;
  request.initiator = initiator;
  request.query = query;
  request.ripple = RippleParam::FromLegacy(r);
  request.initial_state = std::move(initial_state);
  return engine.Run(request);
}

}  // namespace ripple::compat

#endif  // RIPPLE_RIPPLE_COMPAT_H_
