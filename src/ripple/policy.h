#ifndef RIPPLE_RIPPLE_POLICY_H_
#define RIPPLE_RIPPLE_POLICY_H_

#include <concepts>
#include <cstddef>
#include <vector>

#include "store/local_store.h"
#include "wire/buffer.h"

namespace ripple {

/// The RIPPLE framework's abstract functions (paper, Section 3.1) as a
/// C++20 policy concept. A query type plugs into the generic engine by
/// providing:
///
///   using Query        — the query description (paper's Q);
///   using LocalState   — information collected at a peer (S^L);
///   using GlobalState  — state forwarded along with the query (S^G);
///   using Answer       — what the initiator assembles.
///
/// and the operations below. `Area` is the overlay's region/restriction
/// representation (a Rect for MIDAS/CAN, an arc for Chord); policies are
/// written against any Area offering ForEachRect so that one policy serves
/// every overlay.
///
/// Soundness contracts (what correctness proofs rely on):
///  * IsLinkRelevant must return true whenever the area may contain a tuple
///    that the final answer needs, given the global state.
///  * ComputeGlobalState/MergeLocalStates must never fabricate knowledge:
///    states must remain true statements about already-seen tuples.
template <typename P, typename Area>
concept QueryPolicy = requires(
    const P p, const typename P::Query q, typename P::GlobalState g,
    typename P::LocalState l, std::vector<typename P::LocalState> ls,
    typename P::Answer a, const LocalStore store, const Area area,
    wire::Buffer* buf, wire::Reader* reader, typename P::Query* q_out,
    typename P::LocalState* l_out, typename P::GlobalState* g_out,
    typename P::Answer* a_out) {
  /// The neutral state an initiator starts from (unless the caller supplies
  /// one explicitly, as diversification's div-improve does).
  { p.InitialGlobalState(q) } -> std::same_as<typename P::GlobalState>;

  /// computeLocalState: derive this peer's local state from local tuples
  /// and the received global state.
  { p.ComputeLocalState(store, q, g) } -> std::same_as<typename P::LocalState>;

  /// computeGlobalState: fold the local state into the received global one.
  { p.ComputeGlobalState(q, g, l) } -> std::same_as<typename P::GlobalState>;

  /// updateLocalState: merge remote local states into this peer's own.
  { p.MergeLocalStates(q, &l, ls) } -> std::same_as<void>;

  /// computeLocalAnswer: the local qualifying tuples under the final state.
  { p.ComputeLocalAnswer(store, q, l) } -> std::same_as<typename P::Answer>;

  /// isLinkRelevant: may the (already restriction-intersected) area still
  /// contribute, given the global state?
  { p.IsLinkRelevant(q, g, area) } -> std::same_as<bool>;

  /// comp: prioritization key; larger values are visited first.
  { p.LinkPriority(q, area) } -> std::same_as<double>;

  /// Tuples carried by a state/answer message (communication accounting).
  { p.StateTupleCount(l) } -> std::same_as<size_t>;
  { p.GlobalStateTupleCount(g) } -> std::same_as<size_t>;
  { p.AnswerTupleCount(a) } -> std::same_as<size_t>;

  /// Initiator-side accumulation of per-peer answers, then final extraction.
  { p.MergeAnswer(&a, std::move(a), q) } -> std::same_as<void>;
  { p.FinalizeAnswer(&a, q) } -> std::same_as<void>;

  /// Wire codecs (docs/WIRE.md): the serialized forms of everything a
  /// message can carry. Encoders append to the buffer and cannot fail;
  /// decoders validate, returning false (with the reader failed) on
  /// truncated or corrupted bytes. Decoded values must be semantically
  /// identical to what was encoded — both engines run policies on decoded
  /// messages, and their determinism contract rides on it. EncodeState /
  /// DecodeState must cover the local AND global state types (one
  /// overload when they coincide, as in every in-tree policy).
  { p.EncodeQuery(q, buf) } -> std::same_as<void>;
  { p.DecodeQuery(reader, q_out) } -> std::same_as<bool>;
  { p.EncodeState(l, buf) } -> std::same_as<void>;
  { p.DecodeState(reader, l_out) } -> std::same_as<bool>;
  { p.EncodeState(g, buf) } -> std::same_as<void>;
  { p.DecodeState(reader, g_out) } -> std::same_as<bool>;
  { p.EncodeAnswer(a, buf) } -> std::same_as<void>;
  { p.DecodeAnswer(reader, a_out) } -> std::same_as<bool>;
};

}  // namespace ripple

#endif  // RIPPLE_RIPPLE_POLICY_H_
