#ifndef RIPPLE_RIPPLE_ENGINE_H_
#define RIPPLE_RIPPLE_ENGINE_H_

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "common/kernel_counters.h"
#include "net/envelope.h"
#include "net/metrics.h"
#include "net/traffic.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "overlay/types.h"
#include "ripple/api.h"
#include "ripple/policy.h"
#include "ripple/wire_codec.h"
#include "wire/buffer.h"

namespace ripple {

/// The generic RIPPLE engine: one implementation of the paper's
/// Algorithms 1 (fast), 2 (slow) and 3 (ripple), shared by every query
/// policy and every overlay.
///
/// The engine executes the recursive RPCs of the paper as recursive calls
/// over in-process peers, while accounting latency exactly as Lemmas 1-3
/// do: `fast` contacts all relevant links at once, so children combine
/// with 1 + max; `slow`/`ripple` wait for each prioritized link's response
/// before the next forward, so children combine additively.
///
/// This engine is the analytic model of a *perfect* network: it ignores
/// the fault/retry/deadline fields of the QueryRequest and always returns
/// complete results (AsyncEngine in sim/async_engine.h honors them).
///
/// Overlay requirements: `Area`, `GetPeer(PeerId)` exposing `.links`
/// (each with `.target` and `.region`) and `.store`, `FullArea()`, and
/// `static bool IntersectArea(a, b, out)` returning false for empty
/// intersections.
template <typename Overlay, typename Policy>
  requires QueryPolicy<Policy, typename Overlay::Area>
class Engine {
 public:
  using Area = typename Overlay::Area;
  using Query = typename Policy::Query;
  using LocalState = typename Policy::LocalState;
  using GlobalState = typename Policy::GlobalState;
  using Answer = typename Policy::Answer;
  using Request = QueryRequest<Policy>;
  using Result = QueryResult<Answer>;

  /// The overlay must outlive the engine.
  Engine(const Overlay* overlay, Policy policy)
      : overlay_(overlay), policy_(std::move(policy)) {}

  /// Processes `request.query` from `request.initiator` with the given
  /// ripple parameter and optional initial global state.
  Result Run(const Request& request) const {
    // Fresh per-query scratch: the arena backing the kernels' temporary
    // columns rewinds to empty, and the work counters start from zero so
    // the flush below attributes exactly this query's work.
    PerQueryArena().Reset();
    ResetKernelCounters();
    RunContext ctx;
    ctx.initiator = request.initiator;
    ctx.trace.trace_id = request.trace_id;
    if (request.trace_id != 0) ctx.trace.flags = wire::kFrameFlagSampled;
    // Head sampling: the tracer follows the request's sampling decision,
    // so journal mirroring (when a JournalSet is attached) records exactly
    // the sampled queries. Idempotent when the caller already stamped it.
    if (tracer_) {
      tracer_->set_trace_id(request.trace_id);
      if (journal_) tracer_->SetJournal(journal_);
    }
    const GlobalState initial =
        request.initial_state.has_value()
            ? *request.initial_state
            : policy_.InitialGlobalState(request.query);
    const NodeOutcome outcome =
        Process(request.initiator, request.query, initial,
                overlay_->FullArea(), request.ripple.hops(), &ctx);
    ctx.stats.latency_hops = outcome.latency;
    policy_.FinalizeAnswer(&ctx.answer, request.query);
    net::RecordTrafficMetrics(ctx.traffic);
    obs::FlushKernelCounters();
    Result result;
    result.answer = std::move(ctx.answer);
    result.stats = ctx.stats;
    return result;
  }

  const Policy& policy() const { return policy_; }

  /// Observer invoked for every peer that processes a query (visits).
  /// Used to study per-peer load distribution across query batches — the
  /// paper's congestion metric reports the mean; the observer exposes the
  /// skew. Pass nullptr to clear.
  void SetVisitObserver(std::function<void(PeerId)> observer) {
    visit_observer_ = std::move(observer);
  }

  /// Secondary slow-phase contact order: among links whose policy
  /// priorities TIE, larger bias goes first (the adaptive controller feeds
  /// decayed per-peer load here so colder peers are contacted earlier).
  /// Never overrides the policy's LinkPriority and never changes which
  /// links are contacted, so answers and stats totals are unaffected; only
  /// tie order (and therefore per-peer load timing) moves. nullptr clears.
  void SetLinkBias(std::function<double(PeerId)> bias) {
    link_bias_ = std::move(bias);
  }

  /// Attaches a per-query tracer recording one span per peer visit (phase,
  /// remaining r, links pruned/forwarded, states merged, tuples carried)
  /// with logical hop timestamps matching the Lemma 1-3 accounting. Pass
  /// nullptr to disable; the disabled path costs one pointer test per
  /// visit and leaves QueryStats untouched either way. The tracer must
  /// outlive all Run() calls and is not owned.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Attaches a per-peer event journal. The recursive engine ships no
  /// frames (it only measures them), so journaling here means mirroring
  /// the attached tracer's span begin/end events: Run() points the tracer
  /// at this journal, and head sampling (request.trace_id != 0) gates
  /// what gets written. nullptr detaches; not owned.
  void SetJournal(obs::JournalSet* journal) { journal_ = journal; }
  obs::JournalSet* journal() const { return journal_; }

  /// Attaches a per-peer load profiler. Message/tuple charges mirror the
  /// QueryStats accounting exactly (each message charged once, at its
  /// sender), so `profiler.Totals().messages_out` summed over runs equals
  /// the summed `stats.messages` — asserted by ProfileTest. On top the
  /// profiler records per-peer spans, fan-out high-water marks and
  /// wall-clock CPU in the policy code (ScopedTimer). nullptr disables;
  /// the disabled path is one pointer test per charge. Not owned.
  void SetProfiler(obs::Profiler* profiler) { profiler_ = profiler; }
  obs::Profiler* profiler() const { return profiler_; }

 private:
  struct RunContext {
    Answer answer{};
    QueryStats stats;
    net::WireTraffic traffic;
    wire::Buffer scratch;  // frame measurement buffer, reused per charge
    PeerId initiator = kInvalidPeer;
    /// The query's trace context, stamped into every measured frame so the
    /// recursive engine's bytes_on_wire prices the v2 header exactly like
    /// the async engine ships it (header fields are fixed-width, so only
    /// presence matters, not values).
    wire::TraceContext trace;
  };

  // Byte charges. The recursive engine never ships bytes — it is the
  // analytic model — but it *measures* them by encoding each charged
  // message through the same WireCodec the async engine transmits with,
  // so bytes_on_wire agrees between the engines by construction
  // (asserted by the cross-validation tests). Envelope ids are synthetic:
  // frame headers are fixed-width, so sizes do not depend on them.

  uint64_t QueryFrameBytes(const Query& query, const GlobalState& g,
                           const Area& area, int r, PeerId from, PeerId to,
                           RunContext* ctx) const {
    ctx->scratch.Clear();
    const net::Envelope env{0, from, to, net::MessageKind::kQuery, 0,
                            ctx->trace};
    return WireCodec<Overlay, Policy>(overlay_, &policy_)
        .EncodeQueryMessage(env, query, g, area, r, &ctx->scratch);
  }

  uint64_t ResponseFrameBytes(const LocalState& s, PeerId from, PeerId to,
                              RunContext* ctx) const {
    ctx->scratch.Clear();
    const net::Envelope env{0, from, to, net::MessageKind::kResponse, 0,
                            ctx->trace};
    return WireCodec<Overlay, Policy>(overlay_, &policy_)
        .EncodeResponseFrame(env, s, &ctx->scratch);
  }

  uint64_t AnswerFrameBytes(const Answer& a, PeerId from, PeerId to,
                            RunContext* ctx) const {
    ctx->scratch.Clear();
    const net::Envelope env{0, from, to, net::MessageKind::kAnswer, 0,
                            ctx->trace};
    return WireCodec<Overlay, Policy>(overlay_, &policy_)
        .EncodeAnswerMessage(env, a, &ctx->scratch);
  }

  /// What a processed peer reports back towards its nearest slow-phase
  /// ancestor: one merged state for slow-phase peers, or the bundle of all
  /// per-peer states in a fast-phase subtree (Alg. 3 keeps forwarding the
  /// same ancestor address `u` through the fast phase, so every state in
  /// the subtree flows to that ancestor).
  struct NodeOutcome {
    std::vector<LocalState> states;
    uint64_t latency = 0;
  };

  NodeOutcome Process(PeerId w, const Query& query, const GlobalState& sg,
                      const Area& restrict_area, int r, RunContext* ctx,
                      uint32_t parent_span = obs::kNoSpan,
                      double arrival = 0.0) const {
    const auto& peer = overlay_->GetPeer(w);
    ctx->stats.peers_visited += 1;
    if (visit_observer_) visit_observer_(w);
    if (profiler_) profiler_->OnSpan(w);

    // `arrival` is this visit's position on the logical hop clock (the
    // Lemma 1-3 clock: 1 hop per forward); it exists purely for tracing
    // and never feeds back into stats or results.
    uint32_t span = obs::kNoSpan;
    if (tracer_) {
      span = tracer_->StartSpan(
          w, parent_span, r > 0 ? obs::SpanKind::kSlow : obs::SpanKind::kFast,
          r, arrival);
      tracer_->span(span).tuples_in = policy_.GlobalStateTupleCount(sg);
    }

    // Lines 1-2 of Algorithms 1/2/3. Local policy work is timed per peer
    // (recursion below is excluded — each peer pays for its own scopes).
    LocalState local;
    GlobalState global;
    {
      obs::ScopedTimer cpu(profiler_, w);
      local = policy_.ComputeLocalState(peer.store, query, sg);
      global = policy_.ComputeGlobalState(query, sg, local);
    }

    NodeOutcome out;
    if (r > 0) {
      // Slow phase (Alg. 3 lines 4-11; degenerates to Alg. 2): prioritized
      // sequential forwarding with state feedback between iterations.
      struct Candidate {
        PeerId target;
        Area area;
        double priority;
      };
      std::vector<Candidate> candidates;
      candidates.reserve(peer.links.size());
      for (const auto& link : peer.links) {
        Area area;
        if (!Overlay::IntersectArea(link.region, restrict_area, &area)) {
          continue;
        }
        candidates.push_back(
            Candidate{link.target, area, policy_.LinkPriority(query, area)});
      }
      std::stable_sort(candidates.begin(), candidates.end(),
                       [this](const Candidate& a, const Candidate& b) {
                         if (a.priority != b.priority) {
                           return a.priority > b.priority;
                         }
                         if (link_bias_) {
                           return link_bias_(a.target) > link_bias_(b.target);
                         }
                         return false;
                       });
      for (const Candidate& c : candidates) {
        // Relevance is re-evaluated with the state updated so far: links
        // pruned by knowledge from earlier iterations are never contacted.
        if (!policy_.IsLinkRelevant(query, global, c.area)) {
          if (tracer_) tracer_->span(span).links_pruned += 1;
          continue;
        }
        const uint64_t fwd_tuples = policy_.GlobalStateTupleCount(global);
        const uint64_t fwd_bytes =
            QueryFrameBytes(query, global, c.area, r - 1, w, c.target, ctx);
        ctx->stats.messages += 1;  // query forward
        ctx->stats.tuples_shipped += fwd_tuples;
        ctx->stats.bytes_on_wire += fwd_bytes;
        ctx->traffic.bytes_query += fwd_bytes;
        ctx->traffic.frames += 1;
        if (tracer_) tracer_->span(span).links_forwarded += 1;
        if (profiler_) {
          profiler_->OnMessage(w, c.target, fwd_tuples, fwd_bytes);
          profiler_->OnQueueDepth(w, 1);  // slow phase is sequential
        }
        // The child receives the query one hop after everything forwarded
        // so far has come back: slow-phase children are sequential.
        NodeOutcome child =
            Process(c.target, query, global, c.area, r - 1, ctx, span,
                    arrival + static_cast<double>(out.latency) + 1.0);
        out.latency += 1 + child.latency;
        // Response messages: one per state flowing back to us, charged to
        // the direct child (the convergecast representative of its
        // subtree, matching the protocol's state addressing).
        ctx->stats.messages += child.states.size();
        for (const LocalState& s : child.states) {
          const uint64_t state_tuples = policy_.StateTupleCount(s);
          const uint64_t state_bytes = ResponseFrameBytes(s, c.target, w, ctx);
          ctx->stats.tuples_shipped += state_tuples;
          ctx->stats.bytes_on_wire += state_bytes;
          ctx->traffic.bytes_response += state_bytes;
          ctx->traffic.frames += 1;
          if (profiler_) {
            profiler_->OnMessage(c.target, w, state_tuples, state_bytes);
          }
        }
        if (tracer_) tracer_->span(span).states_merged += child.states.size();
        {
          obs::ScopedTimer cpu(profiler_, w);
          policy_.MergeLocalStates(query, &local, child.states);
          global = policy_.ComputeGlobalState(query, sg, local);
        }
      }
      out.states.push_back(local);
    } else {
      // Fast phase (Alg. 3 lines 13-17 == Alg. 1): contact all relevant
      // links at once; no feedback between siblings, so the state snapshot
      // taken above is what every child receives.
      uint64_t max_child_latency = 0;
      uint64_t forwarded = 0;
      for (const auto& link : peer.links) {
        Area area;
        if (!Overlay::IntersectArea(link.region, restrict_area, &area)) {
          continue;
        }
        if (!policy_.IsLinkRelevant(query, global, area)) {
          if (tracer_) tracer_->span(span).links_pruned += 1;
          continue;
        }
        const uint64_t fwd_tuples = policy_.GlobalStateTupleCount(global);
        const uint64_t fwd_bytes =
            QueryFrameBytes(query, global, area, 0, w, link.target, ctx);
        ctx->stats.messages += 1;
        ctx->stats.tuples_shipped += fwd_tuples;
        ctx->stats.bytes_on_wire += fwd_bytes;
        ctx->traffic.bytes_query += fwd_bytes;
        ctx->traffic.frames += 1;
        if (tracer_) tracer_->span(span).links_forwarded += 1;
        if (profiler_) {
          profiler_->OnMessage(w, link.target, fwd_tuples, fwd_bytes);
        }
        // Fast-phase children are contacted at once: all arrive one hop
        // after us.
        NodeOutcome child = Process(link.target, query, global, area, 0, ctx,
                                    span, arrival + 1.0);
        forwarded += 1;
        max_child_latency = std::max(max_child_latency, 1 + child.latency);
        // Fast-phase states pass through to the nearest slow ancestor.
        for (LocalState& s : child.states) {
          out.states.push_back(std::move(s));
        }
      }
      // Fast-phase fan-out: every relevant link is outstanding at once.
      if (profiler_ && forwarded > 0) profiler_->OnQueueDepth(w, forwarded);
      out.latency = forwarded > 0 ? max_child_latency : 0;
      out.states.push_back(local);
    }

    // Lines 12-13 / 20-21: extract and ship the local qualifying tuples.
    // The final (post-merge) local state drives the extraction, which is
    // precisely how slow-phase knowledge suppresses non-answers.
    Answer answer;
    {
      obs::ScopedTimer cpu(profiler_, w);
      answer = policy_.ComputeLocalAnswer(peer.store, query,
                                          out.states.back());
    }
    const size_t answer_tuples = policy_.AnswerTupleCount(answer);
    if (answer_tuples > 0) {
      const uint64_t answer_bytes =
          AnswerFrameBytes(answer, w, ctx->initiator, ctx);
      ctx->stats.messages += 1;  // answer delivery to the initiator
      ctx->stats.tuples_shipped += answer_tuples;
      ctx->stats.bytes_on_wire += answer_bytes;
      ctx->traffic.bytes_answer += answer_bytes;
      ctx->traffic.frames += 1;
      if (profiler_) {
        profiler_->OnMessage(w, ctx->initiator, answer_tuples, answer_bytes);
      }
    }
    if (tracer_) {
      obs::Span& s = tracer_->span(span);
      s.state_tuples = policy_.StateTupleCount(out.states.back());
      s.answer_tuples = answer_tuples;
      tracer_->EndSpan(span, arrival + static_cast<double>(out.latency));
    }
    policy_.MergeAnswer(&ctx->answer, std::move(answer), query);
    return out;
  }

  const Overlay* overlay_;
  Policy policy_;
  std::function<void(PeerId)> visit_observer_;
  std::function<double(PeerId)> link_bias_;
  obs::Tracer* tracer_ = nullptr;
  obs::JournalSet* journal_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
};

}  // namespace ripple

#endif  // RIPPLE_RIPPLE_ENGINE_H_
