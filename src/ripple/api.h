#ifndef RIPPLE_RIPPLE_API_H_
#define RIPPLE_RIPPLE_API_H_

#include <limits>
#include <optional>
#include <ostream>
#include <string>

#include "common/result.h"
#include "net/coverage.h"
#include "net/fault.h"
#include "net/metrics.h"
#include "overlay/types.h"

namespace ripple {

/// The paper's single tuning knob as a value type. `Fast()` contacts all
/// relevant links at once (Algorithm 1), `Slow()` contacts one prioritized
/// link at a time for the whole run (Algorithm 2), `Hops(r)` runs the slow
/// discipline for the first r hops and switches to fast below (Algorithm
/// 3). Replaces the former magic `int r` and its slow-sentinel constant.
class RippleParam {
 public:
  /// Default-constructed parameter is `fast` — the latency-optimal extreme.
  constexpr RippleParam() = default;

  static constexpr RippleParam Fast() { return RippleParam(0); }
  static constexpr RippleParam Slow() { return RippleParam(kSlowHops); }
  /// r >= 0; values at or above any overlay depth degenerate to Slow().
  static constexpr RippleParam Hops(int r) {
    return RippleParam(r < 0 ? 0 : r);
  }
  /// "Choose r for me": a placeholder the adaptive controller
  /// (cache/adaptive.h) resolves into a concrete Fast/Slow/Hops value per
  /// query. Engines never see Auto — drivers resolve it first; an
  /// unresolved Auto degrades to Fast (hops() == 0) so nothing deadlocks.
  static constexpr RippleParam Auto() { return RippleParam(kAutoHops); }
  /// Adapter for the legacy integer convention (r >= 1<<20 meant "slow").
  static constexpr RippleParam FromLegacy(int r) {
    return r >= kSlowHops ? Slow() : Hops(r);
  }

  /// The slow-phase hop budget the engine counts down. Slow() returns a
  /// value exceeding every reachable overlay depth; an unresolved Auto()
  /// reads as 0 (fast).
  constexpr int hops() const { return hops_ < 0 ? 0 : hops_; }
  constexpr bool is_fast() const { return hops_ == 0; }
  constexpr bool is_slow() const { return hops_ >= kSlowHops; }
  constexpr bool is_auto() const { return hops_ == kAutoHops; }

  friend constexpr bool operator==(RippleParam a, RippleParam b) {
    return a.hops_ == b.hops_;
  }
  friend constexpr bool operator!=(RippleParam a, RippleParam b) {
    return !(a == b);
  }

  /// "fast", "slow", "auto" or the decimal hop count. Round-trips through
  /// Parse: `Parse(ToString(x)) == x` for every representable value.
  std::string ToString() const;

  /// Parses "fast" | "slow" | "auto" | a non-negative decimal ("0" ==
  /// fast). Anything else — "auto2", "-3", "" — is rejected. Used by CLI
  /// flags and bench headers.
  static Result<RippleParam> Parse(const std::string& text);

  friend std::ostream& operator<<(std::ostream& os, RippleParam r) {
    return os << r.ToString();
  }

 private:
  static constexpr int kSlowHops = 1 << 20;
  static constexpr int kAutoHops = -1;

  constexpr explicit RippleParam(int hops) : hops_(hops) {}

  int hops_ = 0;
};

/// One rank-query execution request — the single entry point shared by the
/// recursive `Engine`, the discrete-event `AsyncEngine` and every driver
/// built on them (`SeededTopK`, `SeededSkyline`, `RippleDivService`).
///
/// Engines read what applies to them: the recursive engine is the analytic
/// model of a perfect network and ignores `retry`, `fault` and `deadline`;
/// the async engine honors all fields.
template <typename Policy>
struct QueryRequest {
  using Query = typename Policy::Query;
  using GlobalState = typename Policy::GlobalState;

  /// The peer the query enters the network at.
  PeerId initiator = kInvalidPeer;
  /// The policy-specific query description.
  Query query{};
  /// The fast/slow/ripple trade-off knob.
  RippleParam ripple = RippleParam::Fast();
  /// Optional pre-seeded global state (the diversification driver's
  /// explicit tau, the seeded top-k driver's witness state). Defaults to
  /// the policy's neutral InitialGlobalState.
  std::optional<GlobalState> initial_state;
  /// Give-up time (simulated units) for the async engine: when it fires,
  /// the initiator folds what it has and returns a flagged partial result.
  /// infinity = no deadline.
  double deadline = std::numeric_limits<double>::infinity();
  /// Timeout/retry discipline (async engine, only when faults are on).
  net::RetryOptions retry;
  /// Fault injection model for the simulated network (async engine).
  net::FaultOptions fault;
  /// Distributed-tracing identity, decided once at the initiator (head
  /// sampling): 0 = unsampled. A nonzero id is stamped into every v2
  /// frame the query causes, so per-peer journals can be assembled back
  /// into one span tree offline (docs/OBSERVABILITY.md).
  uint64_t trace_id = 0;
};

/// What every engine and driver returns. `answer`/`stats` keep their
/// pre-redesign meaning; `coverage`/`complete` report fault-layer
/// degradation (always complete for the recursive engine), and
/// `completion_time` is simulated wall-clock (0 for the recursive engine,
/// whose clock is `stats.latency_hops`).
template <typename AnswerT>
struct QueryResult {
  AnswerT answer{};
  QueryStats stats;
  net::Coverage coverage;
  /// True iff nothing the answer may depend on was abandoned: every
  /// forward resolved, every answer delivery landed. A `false` means the
  /// answer is a sound digest of what was reachable, not the exact result.
  bool complete = true;
  double completion_time = 0.0;
};

}  // namespace ripple

#endif  // RIPPLE_RIPPLE_API_H_
