#ifndef RIPPLE_RIPPLE_WIRE_CODEC_H_
#define RIPPLE_RIPPLE_WIRE_CODEC_H_

#include <cstddef>
#include <cstdint>

#include "net/envelope.h"
#include "wire/buffer.h"
#include "wire/frame.h"

namespace ripple {

/// Serializes the four message kinds RIPPLE engines exchange (docs/WIRE.md):
///
///   query    payload = [zigzag r][query][global state][area]
///   response payload = [local state]            (one state per frame; a
///                      response datagram is a concatenation of frames all
///                      sharing the request's message id)
///   answer   payload = [answer]
///   ack      payload = empty (a bare frame header)
///
/// Both the recursive and the async engine charge bytes through this one
/// class, so their bytes_on_wire agree by construction: same policy, same
/// overlay, same payload bytes. All Encode* return the size of the frame
/// just appended. Decode*Payload assume the caller already consumed the
/// frame header (net::DecodeEnvelopeFrame) and is positioned at the
/// payload; the caller owns verifying the frame's declared length against
/// the bytes actually consumed.
template <typename Overlay, typename Policy>
class WireCodec {
 public:
  using Query = typename Policy::Query;
  using LocalState = typename Policy::LocalState;
  using GlobalState = typename Policy::GlobalState;
  using Answer = typename Policy::Answer;
  using Area = typename Overlay::Area;

  WireCodec(const Overlay* overlay, const Policy* policy)
      : overlay_(overlay), policy_(policy) {}

  size_t EncodeQueryMessage(const net::Envelope& env, const Query& q,
                            const GlobalState& g, const Area& area,
                            int64_t r, wire::Buffer* buf) const {
    const size_t start = net::BeginEnvelopeFrame(env, buf);
    buf->PutZigzag(r);
    policy_->EncodeQuery(q, buf);
    policy_->EncodeState(g, buf);
    overlay_->EncodeArea(area, buf);
    wire::EndFrame(buf, start);
    return buf->size() - start;
  }
  bool DecodeQueryPayload(wire::Reader* r, Query* q, GlobalState* g,
                          Area* area, int64_t* hops) const {
    *hops = r->Zigzag();
    return r->ok() && policy_->DecodeQuery(r, q) &&
           policy_->DecodeState(r, g) && overlay_->DecodeArea(r, area);
  }

  size_t EncodeResponseFrame(const net::Envelope& env, const LocalState& s,
                             wire::Buffer* buf) const {
    const size_t start = net::BeginEnvelopeFrame(env, buf);
    policy_->EncodeState(s, buf);
    wire::EndFrame(buf, start);
    return buf->size() - start;
  }
  bool DecodeResponsePayload(wire::Reader* r, LocalState* s) const {
    return policy_->DecodeState(r, s);
  }

  size_t EncodeAnswerMessage(const net::Envelope& env, const Answer& a,
                             wire::Buffer* buf) const {
    const size_t start = net::BeginEnvelopeFrame(env, buf);
    policy_->EncodeAnswer(a, buf);
    wire::EndFrame(buf, start);
    return buf->size() - start;
  }
  bool DecodeAnswerPayload(wire::Reader* r, Answer* a) const {
    return policy_->DecodeAnswer(r, a);
  }

  size_t EncodeAckMessage(const net::Envelope& env, wire::Buffer* buf) const {
    const size_t start = net::BeginEnvelopeFrame(env, buf);
    wire::EndFrame(buf, start);
    return buf->size() - start;
  }

 private:
  const Overlay* overlay_;
  const Policy* policy_;
};

}  // namespace ripple

#endif  // RIPPLE_RIPPLE_WIRE_CODEC_H_
