#include "queries/diversify.h"

#include <algorithm>

#include "common/check.h"

namespace ripple {

DiversifyObjective::SetStats DiversifyObjective::ComputeStats(
    const TupleVec& o) const {
  SetStats s;
  for (const Tuple& x : o) {
    s.r_max = std::max(s.r_max, Distance(x.key, query, norm));
  }
  if (o.size() >= 2) {
    s.d_min = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < o.size(); ++i) {
      for (size_t j = i + 1; j < o.size(); ++j) {
        s.d_min = std::min(s.d_min, Distance(o[i].key, o[j].key, norm));
      }
    }
  }
  return s;
}

double DiversifyObjective::Value(const TupleVec& o) const {
  if (o.empty()) return 0.0;
  const SetStats s = ComputeStats(o);
  return lambda * s.r_max - (1.0 - lambda) * s.d_min;
}

double DiversifyObjective::Phi(const Point& t, const TupleVec& o) const {
  return Phi(t, o, ComputeStats(o));
}

double DiversifyObjective::Phi(const Point& t, const TupleVec& o,
                               const SetStats& stats) const {
  const double dr_t = Distance(t, query, norm);
  if (o.empty()) {
    // f({t}) - f({}) = lambda * dr(t, q).
    return lambda * dr_t;
  }
  if (o.size() == 1) {
    // f({x, t}) - f({x}): the pairwise-diversity term appears.
    const double dv = Distance(t, o[0].key, norm);
    return lambda * std::max(dr_t - stats.r_max, 0.0) -
           (1.0 - lambda) * dv;
  }
  // |O| >= 2: the closed form of Eq. 3 — equivalently
  //   lambda * max(dr(t,q) - Rmax, 0) + (1-lambda) * max(Dmin - dvmin, 0),
  // whose four sign combinations are exactly the paper's four clauses.
  double dv_min = std::numeric_limits<double>::infinity();
  for (const Tuple& x : o) {
    dv_min = std::min(dv_min, Distance(t, x.key, norm));
  }
  return lambda * std::max(dr_t - stats.r_max, 0.0) +
         (1.0 - lambda) * std::max(stats.d_min - dv_min, 0.0);
}

double DiversifyObjective::PhiLowerBound(const Rect& r,
                                         const TupleVec& o) const {
  return PhiLowerBound(r, o, ComputeStats(o));
}

double DiversifyObjective::PhiLowerBound(const Rect& r, const TupleVec& o,
                                         const SetStats& stats) const {
  const double dr_lo = r.MinDist(query, norm);
  if (o.empty()) {
    return lambda * dr_lo;
  }
  if (o.size() == 1) {
    const double dv_hi = r.MaxDist(o[0].key, norm);
    return lambda * std::max(dr_lo - stats.r_max, 0.0) -
           (1.0 - lambda) * dv_hi;
  }
  // For any t in r: dvmin(t) <= min_x MaxDist(r, x), so
  // Dmin - dvmin(t) >= Dmin - min_x MaxDist(r, x).
  double dv_min_hi = std::numeric_limits<double>::infinity();
  for (const Tuple& x : o) {
    dv_min_hi = std::min(dv_min_hi, r.MaxDist(x.key, norm));
  }
  return lambda * std::max(dr_lo - stats.r_max, 0.0) +
         (1.0 - lambda) * std::max(stats.d_min - dv_min_hi, 0.0);
}

std::optional<Tuple> DivPolicy::BestLocal(const LocalStore& store,
                                          const Query& q, double* phi) const {
  auto cost = [&](const Point& p) { return q.Phi(p); };
  auto rect_lower = [&](const Rect& r) { return q.PhiLowerBound(r); };
  auto admit = [&](const Tuple& t) { return !q.IsExcluded(t.id); };
  return store.ArgMin(cost, rect_lower, admit, phi);
}

DivPolicy::LocalState DivPolicy::ComputeLocalState(
    const LocalStore& store, const Query& q, const GlobalState& g) const {
  double phi = 0.0;
  const std::optional<Tuple> best = BestLocal(store, q, &phi);
  // Algorithm 16: adopt the local minimizer's score when it improves on
  // the received threshold.
  if (best.has_value() && phi < g.tau) return LocalState{phi};
  return LocalState{g.tau};
}

DivPolicy::Answer DivPolicy::ComputeLocalAnswer(const LocalStore& store,
                                                const Query& q,
                                                const LocalState& l) const {
  double phi = 0.0;
  const std::optional<Tuple> best = BestLocal(store, q, &phi);
  // Algorithm 18: the local tuple is the current best answer only when it
  // attains the (possibly remotely improved) threshold.
  if (best.has_value() && phi == l.tau) return Answer{*best};
  return Answer{};
}

void DivPolicy::MergeAnswer(Answer* acc, Answer&& local,
                            const Query& q) const {
  if (local.empty()) return;
  if (acc->empty()) {
    *acc = std::move(local);
    return;
  }
  const double phi_acc = q.Phi((*acc)[0].key);
  const double phi_new = q.Phi(local[0].key);
  if (phi_new < phi_acc ||
      (phi_new == phi_acc && local[0].id < (*acc)[0].id)) {
    *acc = std::move(local);
  }
}

}  // namespace ripple
