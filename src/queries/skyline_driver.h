#ifndef RIPPLE_QUERIES_SKYLINE_DRIVER_H_
#define RIPPLE_QUERIES_SKYLINE_DRIVER_H_

#include <vector>

#include "net/frame_cost.h"
#include "obs/trace.h"
#include "queries/skyline.h"
#include "ripple/api.h"
#include "ripple/engine.h"

namespace ripple {

/// Seeded skyline initiation.
///
/// A skyline run started at an arbitrary peer forwards with an empty state
/// on its first hops — nothing is dominated yet, so nothing is pruned and
/// the fast mode degenerates towards a broadcast. Both distributed-skyline
/// baselines the paper compares against avoid this by construction: DSL
/// roots its hierarchy at the peer owning the domain origin and SSP starts
/// at the origin's region. We give RIPPLE the same standard opening: route
/// the query to the peer responsible for the domain's lower corner (whose
/// zone reaches into the most dominating area, so its local skyline prunes
/// aggressively) and initiate processing there. Routing hops are charged
/// to the query.
/// Generic over the engine, like SeededTopK: the request's `initiator` is
/// where the bootstrap routing starts; the run proper is initiated at the
/// corner owner. Fault/retry/deadline fields pass through to the engine.
template <typename Overlay, typename EngineT>
typename EngineT::Result SeededSkyline(
    const Overlay& overlay, const EngineT& engine,
    const QueryRequest<SkylinePolicy>& request) {
  uint64_t hops = 0;
  obs::Tracer* tracer = engine.tracer();
  const SkylineQuery& query = request.query;
  // Attach the engine's journal before the bootstrap route spans are
  // recorded: the engine only wires tracer-to-journal mirroring inside
  // Run(), and a sampled trace must cover the bootstrap too.
  if (tracer != nullptr && engine.journal() != nullptr &&
      request.trace_id != 0) {
    tracer->SetJournal(engine.journal());
    tracer->set_trace_id(request.trace_id);
  }
  // Constrained queries aim at the constraint's lower corner (the spot DSL
  // roots its hierarchy at); unconstrained ones at the domain origin.
  const Point corner = query.constraint.has_value()
                           ? query.constraint->lo()
                           : overlay.domain().lo();
  std::vector<PeerId> route_path;
  const PeerId start = overlay.RouteFrom(request.initiator, corner, &hops,
                                         tracer ? &route_path : nullptr);
  double saved_offset = 0.0;
  if (tracer) {
    // One route span per forwarding peer, so the trace covers exactly the
    // peers the stats charge; the engine's clock starts after them.
    uint32_t last_span = obs::kNoSpan;
    double t = 0.0;
    for (PeerId p : route_path) {
      last_span =
          tracer->StartSpan(p, last_span, obs::SpanKind::kRoute, /*r=*/0, t);
      tracer->span(last_span).links_forwarded = 1;
      tracer->EndSpan(last_span, t + 1.0);
      t += 1.0;
    }
    saved_offset = tracer->time_offset();
    tracer->set_time_offset(saved_offset + static_cast<double>(hops));
  }
  QueryRequest<SkylinePolicy> seeded = request;
  seeded.initiator = start;
  auto result = engine.Run(seeded);
  if (tracer) tracer->set_time_offset(saved_offset);
  result.stats.latency_hops += hops;
  result.stats.messages += hops;
  result.stats.peers_visited += hops;  // forwarding peers handle the query
  // Each route forward carries the query: one query-only frame per hop.
  result.stats.bytes_on_wire +=
      hops * net::MeasureFrameBytes(net::MessageKind::kQuery,
                                    [&](wire::Buffer* buf) {
                                      engine.policy().EncodeQuery(query, buf);
                                    });
  if (result.completion_time > 0) {
    result.completion_time += static_cast<double>(hops);
  }
  return result;
}

}  // namespace ripple

#endif  // RIPPLE_QUERIES_SKYLINE_DRIVER_H_
