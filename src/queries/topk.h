#ifndef RIPPLE_QUERIES_TOPK_H_
#define RIPPLE_QUERIES_TOPK_H_

#include <limits>
#include <memory>
#include <vector>

#include "geom/scoring.h"
#include "geom/wire.h"
#include "ripple/policy.h"
#include "store/local_algos.h"
#include "store/local_store.h"
#include "store/tuple.h"
#include "store/wire.h"

namespace ripple {

/// A top-k query: the k tuples maximizing `scorer` (paper, Section 4).
///
/// `epsilon` >= 0 enables approximate retrieval in the spirit of KLEE
/// (cited in Section 2.1): regions whose upper bound cannot beat the
/// current threshold by more than epsilon are pruned, so every tuple the
/// exact answer would contain is either returned or within epsilon of the
/// returned k-th score. epsilon = 0 is exact.
struct TopKQuery {
  const Scorer* scorer = nullptr;  // not owned; must outlive the query
  size_t k = 10;
  double epsilon = 0.0;
  /// Set by DecodeQuery: a query decoded off the wire owns its scorer
  /// (scorer == owned_scorer.get()), so it is self-contained. Queries
  /// built in-process leave it null and borrow the caller's scorer.
  std::shared_ptr<const Scorer> owned_scorer;
};

/// Top-k state (m, tau): "m tuples with score above tau have already been
/// retrieved". The neutral state is (0, +inf).
struct TopKState {
  size_t m = 0;
  double tau = std::numeric_limits<double>::infinity();
};

/// RIPPLE policy for top-k queries — the materialization of the abstract
/// functions in Algorithms 4-9. Works over any overlay whose Area offers
/// ForEachRect (f+ over an area is the max of f+ over its rectangles).
class TopKPolicy {
 public:
  using Query = TopKQuery;
  using LocalState = TopKState;
  using GlobalState = TopKState;
  using Answer = TupleVec;

  GlobalState InitialGlobalState(const Query&) const { return TopKState{}; }

  /// Algorithm 4: grab up to k local tuples above the global threshold and,
  /// if the global count still falls short of k, the best of the rest.
  LocalState ComputeLocalState(const LocalStore& store, const Query& q,
                               const GlobalState& g) const;

  /// Algorithm 5: (m_G + m_L, min(tau_G, tau_L)).
  GlobalState ComputeGlobalState(const Query& q, const GlobalState& g,
                                 const LocalState& l) const;

  /// Algorithm 7: the tightest threshold guaranteeing >= k tuples, found by
  /// scanning the states in descending threshold order. Sound only for
  /// states describing disjoint tuple sets (counts add up) — which the
  /// engine guarantees: merged states always come from disjoint subtrees
  /// or the peer's own store.
  void MergeLocalStates(const Query& q, LocalState* mine,
                        const std::vector<LocalState>& received) const;

  /// Algorithm 6: every local tuple scoring at least the local threshold.
  Answer ComputeLocalAnswer(const LocalStore& store, const Query& q,
                            const LocalState& l) const;

  /// Algorithm 8: relevant while fewer than k tuples are known or the area
  /// may contain tuples above the global threshold (f+ >= tau; with
  /// approximation, f+ >= tau + epsilon).
  template <typename Area>
  bool IsLinkRelevant(const Query& q, const GlobalState& g,
                      const Area& area) const {
    if (g.m < q.k) return true;
    return AreaUpperBound(q, area) >= g.tau + q.epsilon;
  }

  /// Algorithm 9: prefer areas with larger f+.
  template <typename Area>
  double LinkPriority(const Query& q, const Area& area) const {
    return AreaUpperBound(q, area);
  }

  size_t StateTupleCount(const LocalState&) const { return 0; }
  size_t GlobalStateTupleCount(const GlobalState&) const { return 0; }
  size_t AnswerTupleCount(const Answer& a) const { return a.size(); }

  void MergeAnswer(Answer* acc, Answer&& local, const Query& q) const;
  /// Keeps the k best of everything the initiator received.
  void FinalizeAnswer(Answer* acc, const Query& q) const;

  // Wire codecs: [scorer][varint k][f64 epsilon]; (m, tau); tuple vector.
  void EncodeQuery(const Query& q, wire::Buffer* buf) const {
    EncodeScorer(*q.scorer, buf);
    buf->PutVarint(q.k);
    buf->PutF64(q.epsilon);
  }
  bool DecodeQuery(wire::Reader* r, Query* out) const {
    out->owned_scorer = DecodeScorer(r);
    if (out->owned_scorer == nullptr) return false;
    out->scorer = out->owned_scorer.get();
    out->k = static_cast<size_t>(r->Varint());
    out->epsilon = r->F64();
    return r->ok();
  }
  void EncodeState(const TopKState& s, wire::Buffer* buf) const {
    buf->PutVarint(s.m);
    buf->PutF64(s.tau);
  }
  bool DecodeState(wire::Reader* r, TopKState* out) const {
    out->m = static_cast<size_t>(r->Varint());
    out->tau = r->F64();
    return r->ok();
  }
  void EncodeAnswer(const Answer& a, wire::Buffer* buf) const {
    EncodeTupleVec(a, buf);
  }
  bool DecodeAnswer(wire::Reader* r, Answer* out) const {
    return DecodeTupleVec(r, out);
  }

 private:
  template <typename Area>
  double AreaUpperBound(const Query& q, const Area& area) const {
    double best = -std::numeric_limits<double>::infinity();
    ForEachRect(area, [&](const Rect& r) {
      best = std::max(best, q.scorer->UpperBound(r));
    });
    return best;
  }
};

static_assert(QueryPolicy<TopKPolicy, Rect>);

}  // namespace ripple

#endif  // RIPPLE_QUERIES_TOPK_H_
