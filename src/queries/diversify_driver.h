#ifndef RIPPLE_QUERIES_DIVERSIFY_DRIVER_H_
#define RIPPLE_QUERIES_DIVERSIFY_DRIVER_H_

#include <optional>
#include <utility>

#include "net/coverage.h"
#include "net/metrics.h"
#include "queries/diversify.h"
#include "ripple/api.h"
#include "ripple/engine.h"

namespace ripple {

/// Abstract "single tuple diversification query" service: finds the tuple
/// t* not in `query.exclude` minimizing phi, given the initial threshold
/// `tau` (only tuples with phi < tau qualify; Alg. 23 line 10 passes an
/// explicit tau to prune the search). Implementations add their network
/// costs to `stats`, with latency accumulated sequentially by the caller.
///
/// Both the RIPPLE-based solution and the CAN flooding baseline implement
/// this interface, so the surrounding greedy driver — and therefore the
/// produced result — is identical for both, as the paper's evaluation
/// mandates ("we force both heuristic diversification algorithms to
/// produce the same result at each step").
/// `coverage`, when non-null, accumulates fault-layer degradation of the
/// underlying network operations (always untouched by centralized and
/// perfect-network services): a non-complete() coverage means some
/// FindBest answer may have missed reachable tuples.
class SingleTupleService {
 public:
  virtual ~SingleTupleService() = default;

  virtual std::optional<Tuple> FindBest(const DivQuery& query, double tau,
                                        QueryStats* stats,
                                        net::Coverage* coverage = nullptr) = 0;
};

/// Options for the greedy k-diversification driver.
struct DiversifyOptions {
  size_t k = 10;
  /// MAX_ITERS of Algorithm 22.
  int max_iters = 10;
  /// Section 6.3 offers two initializations: "as simple as retrieving k
  /// random tuples, or more elaborate solving k times the single tuple
  /// diversification query". When true, the driver builds the initial set
  /// with k service calls (their network cost is part of the query); the
  /// caller's `initial` argument is then ignored.
  bool service_init = false;
};

/// Result of a k-diversification query.
struct DiversifyResult {
  TupleVec set;
  double objective = 0.0;
  QueryStats stats;
  int improve_rounds = 0;  // iterations of Alg. 22 actually executed
  /// Accumulated fault-layer degradation across every service call.
  net::Coverage coverage;
  /// False when any underlying run was partial: the greedy refinement is
  /// then a sound walk over what was reachable, not the exact heuristic.
  bool complete = true;
};

/// Algorithm 23 (div-improve): one greedy pass trying to swap a tuple of
/// `*o` for a better outside tuple. Returns true when `*o` improved.
///
/// Follows the paper's structure: members are examined in descending
/// phi(t_i, q, O \ {t_i}) order and the distributed threshold tau is set
/// per lines 5-9; acceptance additionally verifies the actual objective
/// delta so that every accepted swap strictly improves f (keeping Alg. 22
/// monotone, which the pseudocode's threshold alone does not guarantee).
bool DivImprove(SingleTupleService* service, const DiversifyObjective& obj,
                TupleVec* o, QueryStats* stats,
                net::Coverage* coverage = nullptr);

/// Algorithm 22 (diversify): greedy refinement from `initial` (which must
/// hold k tuples; see the drivers in bench/ and examples/ for how the
/// initial set is fetched) until no pass improves or max_iters is reached.
DiversifyResult Diversify(SingleTupleService* service,
                          const DiversifyObjective& obj, TupleVec initial,
                          const DiversifyOptions& options);

/// Centralized single-tuple oracle over a full tuple collection. Used as
/// the ground truth in tests and as the reference result for
/// ForcedResultService.
class CentralizedDivService : public SingleTupleService {
 public:
  /// `all` must outlive the service.
  explicit CentralizedDivService(const TupleVec* all) : all_(all) {}

  std::optional<Tuple> FindBest(const DivQuery& query, double tau,
                                QueryStats* stats,
                                net::Coverage* coverage = nullptr) override;

 private:
  const TupleVec* all_;
};

/// The paper's fairness device (Section 7.1): "we force both heuristic
/// diversification algorithms to produce the same result at each step.
/// Hence our metrics capture directly the cost/performance of methods and
/// are not affected by the quality of the result."
///
/// Each step runs the measured service — accruing its real network costs —
/// but continues the greedy driver with the reference answer, so RIPPLE
/// and the baseline walk the exact same query sequence. The reference
/// matters when several tuples tie on phi (the phi = 0 plateau of Eq. 3's
/// first clause): the distributed argmin may return any tie, the reference
/// pins one.
class ForcedResultService : public SingleTupleService {
 public:
  ForcedResultService(SingleTupleService* measured,
                      SingleTupleService* reference)
      : measured_(measured), reference_(reference) {}

  std::optional<Tuple> FindBest(const DivQuery& query, double tau,
                                QueryStats* stats,
                                net::Coverage* coverage = nullptr) override {
    QueryStats discard;
    (void)measured_->FindBest(query, tau, stats, coverage);
    return reference_->FindBest(query, tau, &discard, nullptr);
  }

 private:
  SingleTupleService* measured_;
  SingleTupleService* reference_;
};

/// The RIPPLE-based service (Section 6.2): each FindBest call is one
/// div-ripple run over the overlay. `base` carries everything but the
/// per-call query and threshold: initiator, ripple parameter, and (for an
/// async engine) fault/retry/deadline options, which apply to every
/// FindBest call independently. Generic over the engine, like the seeded
/// drivers: EngineT is the recursive Engine by default; instantiate with
/// AsyncEngine<Overlay, DivPolicy> for message-level (and fault-injected)
/// execution.
template <typename Overlay, typename EngineT = Engine<Overlay, DivPolicy>>
class RippleDivService : public SingleTupleService {
 public:
  RippleDivService(const Overlay* overlay, QueryRequest<DivPolicy> base)
      : engine_(overlay, DivPolicy{}), base_(std::move(base)) {}

  std::optional<Tuple> FindBest(const DivQuery& query, double tau,
                                QueryStats* stats,
                                net::Coverage* coverage = nullptr) override {
    QueryRequest<DivPolicy> request = base_;
    request.query = query;
    request.initial_state = DivState{tau};
    auto result = engine_.Run(request);
    *stats += result.stats;
    if (coverage != nullptr) *coverage += result.coverage;
    if (result.answer.empty()) return std::nullopt;
    // Guard against threshold-equality answers (Alg. 18 emits on phi ==
    // tau_L, which can match the initial tau itself): require strict
    // improvement.
    const Tuple& t = result.answer[0];
    if (query.Phi(t.key) >= tau) return std::nullopt;
    return t;
  }

  /// The underlying engine, e.g. to attach a tracer (SetTracer); spans of
  /// successive FindBest calls accumulate in recording order.
  EngineT* mutable_engine() { return &engine_; }

 private:
  EngineT engine_;
  QueryRequest<DivPolicy> base_;
};

}  // namespace ripple

#endif  // RIPPLE_QUERIES_DIVERSIFY_DRIVER_H_
