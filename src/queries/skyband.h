#ifndef RIPPLE_QUERIES_SKYBAND_H_
#define RIPPLE_QUERIES_SKYBAND_H_

#include <limits>
#include <vector>

#include "geom/dominance.h"
#include "geom/wire.h"
#include "ripple/policy.h"
#include "store/local_algos.h"
#include "store/local_store.h"
#include "store/tuple.h"
#include "store/wire.h"

namespace ripple {

/// Computes the k-skyband: the tuples dominated by fewer than `k` others
/// (k = 1 is the skyline). Deterministic, sorted by id. This is the
/// structure SPEERTO precomputes per peer (paper, Section 2.1); we also
/// expose it as a distributed query.
TupleVec ComputeKSkyband(TupleVec tuples, size_t k);

/// A k-skyband query: all tuples dominated by fewer than `band` others.
struct SkybandQuery {
  size_t band = 2;
  Norm norm = Norm::kL2;
};

/// Partial-band state: tuples that, as far as the query has seen, are
/// dominated by fewer than `band` others. Counting within a partial set
/// can only undercount dominators, so the state is a superset of the true
/// band restricted to seen tuples — pruning stays sound.
struct SkybandState {
  TupleVec tuples;
  TupleVec dominators;  // bounded min-sum subset for region tests

  static constexpr size_t kMaxDominators = 64;
};

/// RIPPLE policy for distributed k-skyband retrieval — a generalization of
/// the Section 5 skyline policy: a region is prunable only when at least
/// `band` state tuples dominate all of it, because every tuple inside
/// would then have >= band dominators.
class SkybandPolicy {
 public:
  using Query = SkybandQuery;
  using LocalState = SkybandState;
  using GlobalState = SkybandState;
  using Answer = TupleVec;

  GlobalState InitialGlobalState(const Query&) const { return {}; }

  LocalState ComputeLocalState(const LocalStore& store, const Query& q,
                               const GlobalState& g) const;
  GlobalState ComputeGlobalState(const Query& q, const GlobalState& g,
                                 const LocalState& l) const;
  void MergeLocalStates(const Query& q, LocalState* mine,
                        const std::vector<LocalState>& received) const;
  Answer ComputeLocalAnswer(const LocalStore& store, const Query& q,
                            const LocalState& l) const;

  template <typename Area>
  bool IsLinkRelevant(const Query& q, const GlobalState& g,
                      const Area& area) const {
    const TupleVec& candidates =
        g.dominators.empty() ? g.tuples : g.dominators;
    bool prunable = true;
    ForEachRect(area, [&](const Rect& r) {
      size_t count = 0;
      for (const Tuple& s : candidates) {
        if (DominatesRect(s.key, r) && ++count >= q.band) break;
      }
      if (count < q.band) prunable = false;
    });
    return !prunable;
  }

  template <typename Area>
  double LinkPriority(const Query& q, const Area& area) const {
    double best = std::numeric_limits<double>::infinity();
    ForEachRect(area, [&](const Rect& r) {
      best = std::min(best, r.MinDist(Point(r.dims()), q.norm));
    });
    return -best;
  }

  size_t StateTupleCount(const LocalState& l) const { return l.tuples.size(); }
  size_t GlobalStateTupleCount(const GlobalState& g) const {
    return g.tuples.size();
  }
  size_t AnswerTupleCount(const Answer& a) const { return a.size(); }

  void MergeAnswer(Answer* acc, Answer&& local, const Query& q) const;
  /// Exact extraction: the k-skyband of everything collected. Correct
  /// because any tuple with >= band global dominators has >= band
  /// dominators inside the band itself (dominators of dominators also
  /// dominate, so dominator counts are self-contained), and the collected
  /// set is a superset of the band.
  void FinalizeAnswer(Answer* acc, const Query& q) const;

  // Wire codecs: [varint band][norm]; two tuple vectors; tuple vector.
  void EncodeQuery(const Query& q, wire::Buffer* buf) const {
    buf->PutVarint(q.band);
    EncodeNorm(q.norm, buf);
  }
  bool DecodeQuery(wire::Reader* r, Query* out) const {
    out->band = static_cast<size_t>(r->Varint());
    return r->ok() && DecodeNorm(r, &out->norm);
  }
  void EncodeState(const SkybandState& s, wire::Buffer* buf) const {
    EncodeTupleVec(s.tuples, buf);
    EncodeTupleVec(s.dominators, buf);
  }
  bool DecodeState(wire::Reader* r, SkybandState* out) const {
    return DecodeTupleVec(r, &out->tuples) &&
           DecodeTupleVec(r, &out->dominators);
  }
  void EncodeAnswer(const Answer& a, wire::Buffer* buf) const {
    EncodeTupleVec(a, buf);
  }
  bool DecodeAnswer(wire::Reader* r, Answer* out) const {
    return DecodeTupleVec(r, out);
  }
};

static_assert(QueryPolicy<SkybandPolicy, Rect>);

}  // namespace ripple

#endif  // RIPPLE_QUERIES_SKYBAND_H_
