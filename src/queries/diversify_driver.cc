#include "queries/diversify_driver.h"

#include <algorithm>

#include "common/check.h"

namespace ripple {

std::optional<Tuple> CentralizedDivService::FindBest(const DivQuery& query,
                                                     double tau, QueryStats*,
                                                     net::Coverage*) {
  const Tuple* best = nullptr;
  double best_phi = std::numeric_limits<double>::infinity();
  for (const Tuple& t : *all_) {
    if (query.IsExcluded(t.id)) continue;
    const double phi = query.objective.Phi(t.key, query.exclude);
    if (best == nullptr || phi < best_phi ||
        (phi == best_phi && t.id < best->id)) {
      best_phi = phi;
      best = &t;
    }
  }
  if (best == nullptr || best_phi >= tau) return std::nullopt;
  return *best;
}

namespace {

/// O \ {victim}, preserving order.
TupleVec Without(const TupleVec& o, uint64_t victim_id) {
  TupleVec out;
  out.reserve(o.size() - 1);
  for (const Tuple& t : o) {
    if (t.id != victim_id) out.push_back(t);
  }
  return out;
}

}  // namespace

bool DivImprove(SingleTupleService* service, const DiversifyObjective& obj,
                TupleVec* o, QueryStats* stats, net::Coverage* coverage) {
  RIPPLE_CHECK(!o->empty());
  const double f_o = obj.Value(*o);

  // Line 3: order members by descending phi(t_i, q, O \ {t_i}); removing
  // the first yields the best residual set, so good replacements are found
  // early (paper's derivation after Alg. 23).
  struct Member {
    Tuple tuple;
    double phi;
  };
  std::vector<Member> members;
  members.reserve(o->size());
  for (const Tuple& t : *o) {
    members.push_back(Member{t, obj.Phi(t.key, Without(*o, t.id))});
  }
  std::stable_sort(members.begin(), members.end(),
                   [](const Member& a, const Member& b) {
                     return a.phi > b.phi;
                   });

  std::optional<Tuple> t_in;
  std::optional<Tuple> t_out;
  double best_delta = 0.0;  // f(new) - f(O) of the best swap found

  for (const Member& m : members) {
    const TupleVec residual = Without(*o, m.tuple.id);
    // Lines 5-9: the distributed threshold.
    double tau;
    if (!t_in.has_value()) {
      tau = m.phi;  // require phi(cand) < phi(t_i): a strict improvement
    } else {
      tau = best_delta;  // require beating the current best swap
    }
    const DivQuery query = MakeDivQuery(obj, residual);
    const std::optional<Tuple> cand =
        service->FindBest(query, tau, stats, coverage);
    if (!cand.has_value()) continue;
    // Acceptance on the actual objective delta (see header comment).
    TupleVec swapped = residual;
    swapped.push_back(*cand);
    const double delta = obj.Value(swapped) - f_o;
    // best_delta starts at 0, so the first acceptance already requires a
    // strict improvement over f(O).
    if (delta < best_delta) {
      best_delta = delta;
      t_in = *cand;
      t_out = m.tuple;
    }
  }

  if (!t_in.has_value()) return false;
  *o = Without(*o, t_out->id);
  o->push_back(*t_in);
  return true;
}

DiversifyResult Diversify(SingleTupleService* service,
                          const DiversifyObjective& obj, TupleVec initial,
                          const DiversifyOptions& options) {
  DiversifyResult result;
  if (options.service_init) {
    // The elaborate initialization: greedily extend the set with k single
    // tuple diversification queries (each is a real network operation).
    result.set.clear();
    while (result.set.size() < options.k) {
      const DivQuery query = MakeDivQuery(obj, result.set);
      const std::optional<Tuple> next = service->FindBest(
          query, std::numeric_limits<double>::infinity(), &result.stats,
          &result.coverage);
      if (!next.has_value()) break;  // fewer than k tuples in the network
      result.set.push_back(*next);
    }
    if (result.set.size() < options.k) {
      result.objective = obj.Value(result.set);
      result.complete = result.coverage.complete();
      return result;
    }
  } else {
    RIPPLE_CHECK(initial.size() == options.k);
    result.set = std::move(initial);
  }
  for (int i = 0; i < options.max_iters; ++i) {
    if (!DivImprove(service, obj, &result.set, &result.stats,
                    &result.coverage)) {
      break;
    }
    result.improve_rounds = i + 1;
  }
  std::sort(result.set.begin(), result.set.end(), TupleIdLess());
  result.objective = obj.Value(result.set);
  result.complete = result.coverage.complete();
  return result;
}

}  // namespace ripple
