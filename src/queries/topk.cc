#include "queries/topk.h"

#include <algorithm>

#include "common/check.h"

namespace ripple {

TopKPolicy::LocalState TopKPolicy::ComputeLocalState(
    const LocalStore& store, const Query& q, const GlobalState& g) const {
  RIPPLE_DCHECK(q.scorer != nullptr);
  // Line 1: up to k local tuples scoring above the received threshold.
  TupleVec a = store.TopKAbove(*q.scorer, q.k, g.tau);
  // Lines 2-3: if the global goal of k tuples is still unmet, add the
  // highest ranking remaining local tuples.
  if (g.m + a.size() < q.k) {
    const size_t missing = q.k - g.m - a.size();
    TupleVec extra = store.BestBelow(*q.scorer, missing, g.tau);
    a.insert(a.end(), extra.begin(), extra.end());
  }
  LocalState l;
  l.m = a.size();
  l.tau = std::numeric_limits<double>::infinity();
  for (const Tuple& t : a) {
    l.tau = std::min(l.tau, q.scorer->Score(t.key));
  }
  return l;
}

namespace {

/// The Algorithm 7 aggregation: the tightest threshold guaranteeing >= k
/// tuples, found by scanning states in descending threshold order. Each
/// input state is a true claim "m tuples with score >= tau exist", so the
/// output is one too.
TopKState MergeStates(std::vector<TopKState> all, size_t k) {
  std::sort(all.begin(), all.end(), [](const TopKState& a,
                                       const TopKState& b) {
    return a.tau > b.tau;
  });
  TopKState merged;
  for (const TopKState& s : all) {
    merged.m += s.m;
    merged.tau = s.tau;
    if (merged.m >= k) break;
  }
  return merged;
}

}  // namespace

TopKPolicy::GlobalState TopKPolicy::ComputeGlobalState(
    const Query& q, const GlobalState& g, const LocalState& l) const {
  // Algorithm 5 as printed combines with (m_G + m_L, min(tau_G, tau_L)),
  // which can only weaken the threshold along a forwarding path and makes
  // the Figure 4 congestion levels unreachable. We combine with the
  // paper's own Algorithm 7 rule instead — the same aggregation
  // updateLocalState uses — which tightens the threshold whenever either
  // side alone already witnesses k tuples (deviation documented in
  // DESIGN.md).
  return MergeStates({g, l}, q.k);
}

void TopKPolicy::MergeLocalStates(
    const Query& q, LocalState* mine,
    const std::vector<LocalState>& received) const {
  std::vector<LocalState> all;
  all.reserve(received.size() + 1);
  all.push_back(*mine);
  all.insert(all.end(), received.begin(), received.end());
  *mine = MergeStates(std::move(all), q.k);
}

TopKPolicy::Answer TopKPolicy::ComputeLocalAnswer(const LocalStore& store,
                                                  const Query& q,
                                                  const LocalState& l) const {
  if (l.m == 0) return {};
  // Tuples at or above the local threshold; tau is the score of an actual
  // tuple, so >= keeps the witness itself.
  return store.AllAtLeast(*q.scorer, l.tau);
}

void TopKPolicy::MergeAnswer(Answer* acc, Answer&& local,
                             const Query&) const {
  acc->insert(acc->end(), std::make_move_iterator(local.begin()),
              std::make_move_iterator(local.end()));
}

void TopKPolicy::FinalizeAnswer(Answer* acc, const Query& q) const {
  *acc = SelectTopK(std::move(*acc),
                    [&](const Point& p) { return q.scorer->Score(p); }, q.k);
}

}  // namespace ripple
