#include "queries/skyline.h"

#include <algorithm>

namespace ripple {

namespace {

/// Sorted-by-id membership test: inputs come out of ComputeSkyline /
/// MergeSkylines, which sort by id.
bool ContainsId(const TupleVec& sorted, uint64_t id) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), id,
                             [](const Tuple& t, uint64_t v) {
                               return t.id < v;
                             });
  return it != sorted.end() && it->id == id;
}

}  // namespace

SkylinePolicy::LocalState SkylinePolicy::ComputeLocalState(
    const LocalStore& store, const Query& q, const GlobalState& g) const {
  // Line 1: the local skyline (over the constraint box, if any).
  TupleVec local_sky;
  if (q.constraint.has_value()) {
    TupleVec admitted;
    store.ForEach([&](const Tuple& t) {
      if (q.Admits(t.key)) admitted.push_back(t);
    });
    local_sky = ComputeSkyline(std::move(admitted));
  } else {
    local_sky = store.LocalSkyline();
  }
  // Line 2: merge with the received global state (already a skyline).
  const TupleVec merged = MergeSkylines(local_sky, g.tuples);
  // Line 3: keep only local-skyline tuples that survived the merge.
  LocalState l;
  for (const Tuple& t : local_sky) {
    if (ContainsId(merged, t.id)) l.tuples.push_back(t);
  }
  return l;
}

SkylinePolicy::GlobalState SkylinePolicy::ComputeGlobalState(
    const Query&, const GlobalState& g, const LocalState& l) const {
  GlobalState out;
  out.tuples = MergeSkylines(l.tuples, g.tuples);
  // Refresh the bounded dominator subset: the min-sum tuples are the only
  // ones that can dominate whole regions.
  out.dominators = SelectDominators(out.tuples,
                                    SkylineState::kMaxDominators);
  return out;
}

void SkylinePolicy::MergeLocalStates(
    const Query&, LocalState* mine,
    const std::vector<LocalState>& received) const {
  TupleVec merged = std::move(mine->tuples);
  for (const LocalState& s : received) {
    merged = MergeSkylines(std::move(merged), s.tuples);
  }
  mine->tuples = std::move(merged);
}

SkylinePolicy::Answer SkylinePolicy::ComputeLocalAnswer(
    const LocalStore& store, const Query&, const LocalState& l) const {
  // Algorithm 12: the *local* tuples among the state. After slow-phase
  // merges the state may contain remote tuples; only tuples this peer
  // stores are its contribution to the answer.
  Answer a;
  for (const Tuple& t : l.tuples) {
    if (store.ContainsId(t.id)) a.push_back(t);
  }
  return a;
}

void SkylinePolicy::MergeAnswer(Answer* acc, Answer&& local,
                                const Query&) const {
  // Every per-peer contribution is itself mutually non-dominated, so the
  // accumulator can stay a skyline throughout.
  *acc = MergeSkylines(std::move(*acc), local);
}

void SkylinePolicy::FinalizeAnswer(Answer* acc, const Query&) const {
  std::sort(acc->begin(), acc->end(), TupleIdLess());
}

}  // namespace ripple
