#ifndef RIPPLE_QUERIES_SKYLINE_H_
#define RIPPLE_QUERIES_SKYLINE_H_

#include <limits>
#include <optional>
#include <vector>

#include "geom/dominance.h"
#include "geom/wire.h"
#include "ripple/policy.h"
#include "store/local_algos.h"
#include "store/local_store.h"
#include "store/tuple.h"
#include "store/wire.h"

namespace ripple {

/// A skyline query: min-is-better dominance on every attribute (paper,
/// Section 5). `norm` selects the distance used by the prioritization
/// heuristic d- (Alg. 15). An optional `constraint` box restricts the
/// skyline to tuples inside it (the constrained skylines DSL was designed
/// for — its hierarchy roots at "the region containing the lower-left
/// corner of the constraint").
struct SkylineQuery {
  Norm norm = Norm::kL2;
  std::optional<Rect> constraint;

  bool Admits(const Point& p) const {
    return !constraint.has_value() || constraint->Contains(p);
  }
  /// The reference corner prioritization aims at (Alg. 15's origin, or the
  /// constraint's lower corner).
  Point Origin(int dims) const {
    return constraint.has_value() ? constraint->lo() : Point(dims);
  }
};

/// Skyline state: a set of mutually non-dominated tuples (partial skyline).
/// Global states additionally carry `dominators` — a small min-coordinate-
/// sum subset used for the Algorithm 14 region test. At high
/// dimensionality states hold thousands of tuples, but only the ones with
/// uniformly small coordinates can ever dominate a whole region, and those
/// have the smallest sums; checking a bounded subset keeps pruning sound
/// (never prunes more, may prune less) at O(1) tuples per link.
struct SkylineState {
  TupleVec tuples;
  TupleVec dominators;

  static constexpr size_t kMaxDominators = 32;
};

/// RIPPLE policy for skyline queries — Algorithms 10-15.
class SkylinePolicy {
 public:
  using Query = SkylineQuery;
  using LocalState = SkylineState;
  using GlobalState = SkylineState;
  using Answer = TupleVec;

  GlobalState InitialGlobalState(const Query&) const { return {}; }

  /// Algorithm 10: local skyline, intersected with the skyline of (received
  /// global state ∪ local skyline) — only local tuples that survive the
  /// global merge stay in the local state.
  LocalState ComputeLocalState(const LocalStore& store, const Query& q,
                               const GlobalState& g) const;

  /// Algorithm 11: skyline of (global ∪ local).
  GlobalState ComputeGlobalState(const Query& q, const GlobalState& g,
                                 const LocalState& l) const;

  /// Algorithm 13: skyline of the union of all states.
  void MergeLocalStates(const Query& q, LocalState* mine,
                        const std::vector<LocalState>& received) const;

  /// Algorithm 12: the local tuples of the local state.
  Answer ComputeLocalAnswer(const LocalStore& store, const Query& q,
                            const LocalState& l) const;

  /// Algorithm 14: prune an area when some state tuple dominates all of
  /// it; constrained queries additionally prune areas outside the box.
  template <typename Area>
  bool IsLinkRelevant(const Query& q, const GlobalState& g,
                      const Area& area) const {
    if (q.constraint.has_value()) {
      bool touches = false;
      ForEachRect(area, [&](const Rect& r) {
        if (r.Intersects(*q.constraint)) touches = true;
      });
      if (!touches) return false;
    }
    const TupleVec& candidates =
        g.dominators.empty() ? g.tuples : g.dominators;
    for (const Tuple& s : candidates) {
      bool dominates_all = true;
      ForEachRect(area, [&](const Rect& r) {
        if (!DominatesRect(s.key, r)) dominates_all = false;
      });
      if (dominates_all) return false;
    }
    return true;
  }

  /// Algorithm 15: areas closer to the reference corner first (larger
  /// priority == visited earlier, so priority = -d-(area, origin)).
  template <typename Area>
  double LinkPriority(const Query& q, const Area& area) const {
    double best = std::numeric_limits<double>::infinity();
    ForEachRect(area, [&](const Rect& r) {
      best = std::min(best, r.MinDist(q.Origin(r.dims()), q.norm));
    });
    return -best;
  }

  size_t StateTupleCount(const LocalState& l) const { return l.tuples.size(); }
  size_t GlobalStateTupleCount(const GlobalState& g) const {
    return g.tuples.size();
  }
  size_t AnswerTupleCount(const Answer& a) const { return a.size(); }

  void MergeAnswer(Answer* acc, Answer&& local, const Query& q) const;
  /// The initiator's final skyline over everything received.
  void FinalizeAnswer(Answer* acc, const Query& q) const;

  // Wire codecs: [norm][u8 has_constraint][rect?]; two tuple vectors
  // (tuples, dominators); tuple vector.
  void EncodeQuery(const Query& q, wire::Buffer* buf) const {
    EncodeNorm(q.norm, buf);
    buf->PutU8(q.constraint.has_value() ? 1 : 0);
    if (q.constraint.has_value()) EncodeRect(*q.constraint, buf);
  }
  bool DecodeQuery(wire::Reader* r, Query* out) const {
    if (!DecodeNorm(r, &out->norm)) return false;
    const uint8_t has_constraint = r->U8();
    if (!r->ok() || has_constraint > 1) {
      r->Fail();
      return false;
    }
    out->constraint.reset();
    if (has_constraint != 0) {
      Rect c;
      if (!DecodeRect(r, &c)) return false;
      out->constraint = c;
    }
    return true;
  }
  void EncodeState(const SkylineState& s, wire::Buffer* buf) const {
    EncodeTupleVec(s.tuples, buf);
    EncodeTupleVec(s.dominators, buf);
  }
  bool DecodeState(wire::Reader* r, SkylineState* out) const {
    return DecodeTupleVec(r, &out->tuples) &&
           DecodeTupleVec(r, &out->dominators);
  }
  void EncodeAnswer(const Answer& a, wire::Buffer* buf) const {
    EncodeTupleVec(a, buf);
  }
  bool DecodeAnswer(wire::Reader* r, Answer* out) const {
    return DecodeTupleVec(r, out);
  }
};

static_assert(QueryPolicy<SkylinePolicy, Rect>);

}  // namespace ripple

#endif  // RIPPLE_QUERIES_SKYLINE_H_
