#ifndef RIPPLE_QUERIES_DIVERSIFY_H_
#define RIPPLE_QUERIES_DIVERSIFY_H_

#include <limits>
#include <optional>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "geom/wire.h"
#include "ripple/policy.h"
#include "store/local_store.h"
#include "store/tuple.h"
#include "store/wire.h"

namespace ripple {

/// Parameters of the k-diversification objective (paper, Eq. 1):
///   f(O, q) = lambda * max_{x in O} dr(x, q)
///           - (1 - lambda) * min_{y != z in O} dv(y, z),
/// to be *minimized*: low maximum distance to the query (relevant set) and
/// high minimum pairwise distance (diverse set) both lower f. Boundary
/// conventions: the max over an empty set is 0 and the pairwise min of a
/// set with fewer than two tuples is 0.
struct DiversifyObjective {
  Point query;          // the query point q
  double lambda = 0.5;  // relevance/diversity trade-off in [0, 1]
  Norm norm = Norm::kL1;

  /// Quantities of O that Eq. 3 reuses for every candidate: the maximum
  /// relevance distance (Rmax) and the minimum pairwise diversity (Dmin).
  /// Computing them once per query turns each phi evaluation from O(|O|^2)
  /// into O(|O|).
  struct SetStats {
    double r_max = 0.0;
    double d_min = 0.0;  // 0 when |O| < 2 (no pairs)
  };
  SetStats ComputeStats(const TupleVec& o) const;

  /// f(O, q).
  double Value(const TupleVec& o) const;

  /// phi(t, q, O) = f(O ∪ {t}, q) - f(O, q): the cost of appending t.
  /// For |O| >= 2 this equals the closed form of Eq. 3.
  double Phi(const Point& t, const TupleVec& o) const;
  double Phi(const Point& t, const TupleVec& o, const SetStats& stats) const;

  /// phi-: a sound lower bound of Phi over every point of `r`
  /// (used by Algorithms 20-21 to prune and prioritize regions).
  double PhiLowerBound(const Rect& r, const TupleVec& o) const;
  double PhiLowerBound(const Rect& r, const TupleVec& o,
                       const SetStats& stats) const;
};

/// The single tuple diversification query (paper, Eq. 2): find t* not in O
/// minimizing phi. `objective` and `exclude` describe the problem;
/// tuples whose ids appear in `exclude` are never returned.
struct DivQuery {
  DiversifyObjective objective;
  TupleVec exclude;  // the current set O
  DiversifyObjective::SetStats stats;  // set by Precompute()
  bool prepared = false;

  /// Caches the exclusion set's Rmax/Dmin; call after filling `exclude`
  /// (MakeDivQuery does this for you). Phi/PhiLowerBound refuse to run on
  /// an unprepared query — stale cached stats would be silently wrong.
  void Precompute() {
    stats = objective.ComputeStats(exclude);
    prepared = true;
  }

  double Phi(const Point& t) const {
    RIPPLE_CHECK(prepared);
    return objective.Phi(t, exclude, stats);
  }
  double PhiLowerBound(const Rect& r) const {
    RIPPLE_CHECK(prepared);
    return objective.PhiLowerBound(r, exclude, stats);
  }

  bool IsExcluded(uint64_t id) const {
    for (const Tuple& t : exclude) {
      if (t.id == id) return true;
    }
    return false;
  }
};

/// Builds a ready-to-run single tuple diversification query.
inline DivQuery MakeDivQuery(DiversifyObjective objective, TupleVec exclude) {
  DivQuery q;
  q.objective = std::move(objective);
  q.exclude = std::move(exclude);
  q.Precompute();
  return q;
}

/// Diversification state: the best (lowest) phi seen so far (a threshold).
struct DivState {
  double tau = std::numeric_limits<double>::infinity();
};

/// RIPPLE policy for the single tuple diversification query —
/// Algorithms 16-21. The answer is the minimizing tuple (empty when the
/// network holds no admissible tuple, or none beats the initial tau).
class DivPolicy {
 public:
  using Query = DivQuery;
  using LocalState = DivState;
  using GlobalState = DivState;
  using Answer = TupleVec;  // zero or one tuple

  GlobalState InitialGlobalState(const Query&) const { return {}; }

  /// Algorithm 16: tau_L = min(phi of best local tuple, tau_G).
  LocalState ComputeLocalState(const LocalStore& store, const Query& q,
                               const GlobalState& g) const;

  /// Algorithm 17: the global state becomes the local state.
  GlobalState ComputeGlobalState(const Query&, const GlobalState&,
                                 const LocalState& l) const {
    return GlobalState{l.tau};
  }

  /// Algorithm 19: the minimum of all thresholds.
  void MergeLocalStates(const Query&, LocalState* mine,
                        const std::vector<LocalState>& received) const {
    for (const LocalState& s : received) {
      mine->tau = std::min(mine->tau, s.tau);
    }
  }

  /// Algorithm 18: the local minimizer, if it attains the local threshold.
  Answer ComputeLocalAnswer(const LocalStore& store, const Query& q,
                            const LocalState& l) const;

  /// Algorithm 20: visit areas whose phi- undercuts the global threshold.
  template <typename Area>
  bool IsLinkRelevant(const Query& q, const GlobalState& g,
                      const Area& area) const {
    return AreaLowerBound(q, area) < g.tau;
  }

  /// Algorithm 21: lowest phi- first.
  template <typename Area>
  double LinkPriority(const Query& q, const Area& area) const {
    return -AreaLowerBound(q, area);
  }

  size_t StateTupleCount(const LocalState&) const { return 0; }
  size_t GlobalStateTupleCount(const GlobalState&) const { return 0; }
  size_t AnswerTupleCount(const Answer& a) const { return a.size(); }

  /// Keeps the phi-minimizing tuple (ties broken by id).
  void MergeAnswer(Answer* acc, Answer&& local, const Query& q) const;
  void FinalizeAnswer(Answer*, const Query&) const {}

  // Wire codecs: [query point][f64 lambda][norm][exclude tuples]; decode
  // re-runs Precompute() so the cached SetStats never travel (they are
  // derived data and would go stale undetectably). State is a bare f64.
  void EncodeQuery(const Query& q, wire::Buffer* buf) const {
    EncodePoint(q.objective.query, buf);
    buf->PutF64(q.objective.lambda);
    EncodeNorm(q.objective.norm, buf);
    EncodeTupleVec(q.exclude, buf);
  }
  bool DecodeQuery(wire::Reader* r, Query* out) const {
    if (!DecodePoint(r, &out->objective.query)) return false;
    out->objective.lambda = r->F64();
    if (!r->ok() || !DecodeNorm(r, &out->objective.norm)) return false;
    if (!DecodeTupleVec(r, &out->exclude)) return false;
    out->Precompute();
    return true;
  }
  void EncodeState(const DivState& s, wire::Buffer* buf) const {
    buf->PutF64(s.tau);
  }
  bool DecodeState(wire::Reader* r, DivState* out) const {
    out->tau = r->F64();
    return r->ok();
  }
  void EncodeAnswer(const Answer& a, wire::Buffer* buf) const {
    EncodeTupleVec(a, buf);
  }
  bool DecodeAnswer(wire::Reader* r, Answer* out) const {
    return DecodeTupleVec(r, out);
  }

 private:
  /// The best local tuple outside the exclusion set, if any.
  std::optional<Tuple> BestLocal(const LocalStore& store, const Query& q,
                                 double* phi) const;

  template <typename Area>
  double AreaLowerBound(const Query& q, const Area& area) const {
    double best = std::numeric_limits<double>::infinity();
    ForEachRect(area, [&](const Rect& r) {
      best = std::min(best, q.PhiLowerBound(r));
    });
    return best;
  }
};

static_assert(QueryPolicy<DivPolicy, Rect>);

}  // namespace ripple

#endif  // RIPPLE_QUERIES_DIVERSIFY_H_
